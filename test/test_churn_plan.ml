(* Declarative topology churn: grammar, validation, seed-deterministic
   compilation to fault plans, and the bit-identity guarantees the whole
   design rests on — an inert plan compiles to nothing at all, and a
   churned run is an ordinary faulted run, byte-identical across region
   counts. *)

module Churn_plan = Gcs_sim.Churn_plan
module Fault_plan = Gcs_sim.Fault_plan
module Topology = Gcs_graph.Topology
module Graph = Gcs_graph.Graph
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner

let ring8 = Topology.ring 8

let plan_of_string s =
  match Churn_plan.of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "churn plan %S rejected: %s" s msg

let all_kinds_plan =
  Churn_plan.of_processes
    [
      Churn_plan.Edge_down { at = 10.; edges = Fault_plan.Edges [ (0, 1) ] };
      Churn_plan.Edge_up { at = 30.; edges = Fault_plan.Edges [ (0, 1) ] };
      Churn_plan.Flap
        {
          from_ = 5.;
          until = 50.;
          up_mean = 8.;
          down_mean = 2.;
          edges = Fault_plan.Edges [ (4, 5) ];
        };
      Churn_plan.Grow
        { from_ = 0.; until = 20.; edges = Fault_plan.Edges [ (2, 3) ] };
      Churn_plan.Shrink
        { from_ = 40.; until = 60.; edges = Fault_plan.Cut [ 7 ] };
    ]

let test_round_trip () =
  let s = Churn_plan.to_string all_kinds_plan in
  match Churn_plan.of_string s with
  | Error msg -> Alcotest.failf "re-parse failed: %s (spec %S)" msg s
  | Ok p ->
      Alcotest.(check bool)
        (Printf.sprintf "processes preserved through %S" s)
        true
        (Churn_plan.processes p = Churn_plan.processes all_kinds_plan)

let test_of_string_examples () =
  (match Churn_plan.processes (plan_of_string "edge-down@20:edges=0-1,2-3") with
  | [ Churn_plan.Edge_down { at = 20.; edges = Edges [ (0, 1); (2, 3) ] } ] ->
      ()
  | _ -> Alcotest.fail "edge-down parse");
  (match Churn_plan.processes (plan_of_string "edge-up@35.5:cut=0") with
  | [ Churn_plan.Edge_up { at = 35.5; edges = Cut [ 0 ] } ] -> ()
  | _ -> Alcotest.fail "edge-up parse");
  (* flap defaults to all edges when no edge set is named *)
  (match Churn_plan.processes (plan_of_string "flap@10..60:up=8:down=2") with
  | [
   Churn_plan.Flap
     { from_ = 10.; until = 60.; up_mean = 8.; down_mean = 2.; edges = All_edges };
  ] ->
      ()
  | _ -> Alcotest.fail "flap parse");
  (match Churn_plan.processes (plan_of_string "grow@0..15:edges=1-2") with
  | [ Churn_plan.Grow { from_ = 0.; until = 15.; edges = Edges [ (1, 2) ] } ] ->
      ()
  | _ -> Alcotest.fail "grow parse");
  (match Churn_plan.processes (plan_of_string "shrink@40..80:all") with
  | [ Churn_plan.Shrink { from_ = 40.; until = 80.; edges = All_edges } ] -> ()
  | _ -> Alcotest.fail "shrink parse");
  (* processes sort by start time, stable on ties *)
  match
    Churn_plan.processes
      (plan_of_string "edge-up@30:edges=0-1; edge-down@10:edges=0-1")
  with
  | [ Churn_plan.Edge_down { at = 10.; _ }; Churn_plan.Edge_up { at = 30.; _ } ]
    ->
      ()
  | _ -> Alcotest.fail "sorted by start time"

let test_of_string_rejects () =
  let bad s =
    match Churn_plan.of_string s with
    | Ok _ -> Alcotest.failf "%S should have been rejected" s
    | Error _ -> ()
  in
  bad "";
  bad "teleport@10:all";
  bad "edge-up@10";
  (* missing edge set *)
  bad "edge-down@20:0-1";
  (* bare pair: the edges= prefix is required *)
  bad "edge-up@ten:all";
  bad "flap@10..60:up=8";
  (* missing down= *)
  bad "flap@10:up=8:down=2";
  (* flap needs a window *)
  bad "grow@0..20";
  bad "edge-up@10:edges=1:2"

let test_validate () =
  let check_err plan =
    match Churn_plan.validate plan ring8 with
    | Ok () -> Alcotest.fail "expected validation error"
    | Error _ -> ()
  in
  (* non-adjacent pair, out-of-range node *)
  check_err (plan_of_string "edge-up@10:edges=0-4");
  check_err (plan_of_string "edge-down@10:cut=9");
  (* backwards / empty windows, nonpositive holding means, negative time *)
  check_err (plan_of_string "flap@60..10:up=8:down=2");
  check_err (plan_of_string "flap@10..60:up=0:down=2");
  check_err (plan_of_string "flap@10..60:up=8:down=-1");
  check_err (plan_of_string "grow@5..5:edges=0-1");
  check_err (plan_of_string "edge-up@-3:all");
  (* contradictory explicit events at one instant *)
  check_err (plan_of_string "edge-up@10:edges=0-1; edge-down@10:edges=0-1");
  (* an explicit event inside a generative claim on the same edge *)
  check_err (plan_of_string "flap@10..60:up=8:down=2:edges=0-1; \
                             edge-down@30:edges=0-1");
  (* overlapping generative claims; grow owns its edges from t = 0 *)
  check_err (plan_of_string "flap@10..60:up=8:down=2:edges=0-1; \
                             shrink@50..70:edges=0-1");
  check_err (plan_of_string "grow@20..40:edges=0-1; \
                             flap@5..15:up=2:down=2:edges=0-1");
  (* the same shapes on disjoint edges or disjoint times are fine *)
  Alcotest.(check bool) "disjoint edges validate" true
    (Churn_plan.validate
       (plan_of_string "flap@10..60:up=8:down=2:edges=0-1; \
                        shrink@50..70:edges=2-3")
       ring8
    = Ok ());
  Alcotest.(check bool) "same edge, disjoint instants" true
    (Churn_plan.validate
       (plan_of_string "edge-down@10:edges=0-1; edge-up@30:edges=0-1")
       ring8
    = Ok ());
  Alcotest.(check bool) "good plan validates" true
    (Churn_plan.validate all_kinds_plan ring8 = Ok ())

let compile_exn plan ~horizon =
  Churn_plan.compile plan ~graph:ring8 ~seed:11 ~horizon

let test_compile_elision () =
  (* Re-forming an edge that is already up is a no-op; so is a transition
     past the horizon. Inert plans must compile to nothing at all. *)
  Alcotest.(check bool) "edge-up of an up edge is inert" true
    (compile_exn (plan_of_string "edge-up@10:all") ~horizon:80. = None);
  Alcotest.(check bool) "events past the horizon are elided" true
    (compile_exn (plan_of_string "edge-down@200:edges=0-1") ~horizon:80. = None);
  (* A real down/up pair survives as partition + heal. *)
  (match compile_exn (plan_of_string "edge-down@20:edges=0-1; \
                                      edge-up@50:edges=0-1") ~horizon:80. with
  | Some p -> (
      match Fault_plan.events p with
      | [
       Fault_plan.Link_partition { at = 20.; _ };
       Fault_plan.Link_heal { at = 50.; _ };
      ] ->
          ()
      | evs -> Alcotest.failf "expected partition+heal, got %d events"
                 (List.length evs))
  | None -> Alcotest.fail "down/up pair compiled to nothing");
  (* Downing a down edge twice compiles to a single partition. *)
  (match compile_exn (plan_of_string "edge-down@20:edges=0-1; \
                                      edge-down@40:edges=0-1") ~horizon:80. with
  | Some p -> Alcotest.(check int) "one partition" 1
                (List.length (Fault_plan.events p))
  | None -> Alcotest.fail "down compiled to nothing");
  (* Grown edges are absent from t = 0 and appear inside the window. *)
  match compile_exn (plan_of_string "grow@10..30:edges=0-1,2-3") ~horizon:80.
  with
  | Some p ->
      let parts, heals =
        List.partition
          (function Fault_plan.Link_partition _ -> true | _ -> false)
          (Fault_plan.events p)
      in
      Alcotest.(check int) "absent from t=0" 2 (List.length parts);
      List.iter
        (function
          | Fault_plan.Link_partition { at; _ } ->
              Alcotest.(check (float 0.)) "partition at 0" 0. at
          | _ -> ())
        parts;
      Alcotest.(check int) "each appears once" 2 (List.length heals);
      List.iter
        (function
          | Fault_plan.Link_heal { at; _ } ->
              Alcotest.(check bool) "inside the window" true
                (at > 10. && at < 30.)
          | _ -> ())
        heals
  | None -> Alcotest.fail "grow compiled to nothing"

let test_compile_deterministic () =
  let spec = "flap@5..70:up=6:down=3:edges=0-1,3-4; edge-down@75:cut=6" in
  let compile seed =
    match
      Churn_plan.compile (plan_of_string spec) ~graph:ring8 ~seed ~horizon:80.
    with
    | Some p -> Fault_plan.to_string p
    | None -> Alcotest.fail "flap plan compiled to nothing"
  in
  Alcotest.(check string) "same seed, same expansion" (compile 42) (compile 42);
  Alcotest.(check bool) "different seed, different flap schedule" true
    (compile 42 <> compile 43);
  (* A flap leaves every edge up at its window end, whatever the draws. *)
  match
    Churn_plan.compile
      (plan_of_string "flap@5..40:up=4:down=4:edges=0-1")
      ~graph:ring8 ~seed:7 ~horizon:80.
  with
  | None -> () (* no transition fired inside the window: vacuously up *)
  | Some p ->
      let up = ref true in
      List.iter
        (function
          | Fault_plan.Link_partition { at; _ } ->
              Alcotest.(check bool) "inside window" true (at >= 5. && at <= 40.);
              up := false
          | Fault_plan.Link_heal { at; _ } ->
              Alcotest.(check bool) "inside window" true (at >= 5. && at <= 40.);
              up := true
          | _ -> ())
        (Fault_plan.events p);
      Alcotest.(check bool) "up again at window end" true !up

let test_up_windows () =
  let horizon = 80. in
  let plan =
    match
      compile_exn
        (plan_of_string
           "edge-down@20:edges=0-1; edge-up@50:edges=0-1; \
            edge-down@60:edges=4-5")
        ~horizon
    with
    | Some p -> p
    | None -> Alcotest.fail "plan compiled to nothing"
  in
  let wins = Churn_plan.up_windows plan ~graph:ring8 ~horizon in
  Alcotest.(check int) "only touched pairs listed" 2 (List.length wins);
  (match List.assoc_opt (0, 1) wins with
  | Some [ (0., 20.); (50., 80.) ] -> ()
  | Some ivs ->
      Alcotest.failf "unexpected intervals for 0-1 (%d)" (List.length ivs)
  | None -> Alcotest.fail "pair 0-1 missing");
  match List.assoc_opt (4, 5) wins with
  | Some [ (0., 60.) ] -> () (* still down at the horizon: interval closed *)
  | Some ivs ->
      Alcotest.failf "unexpected intervals for 4-5 (%d)" (List.length ivs)
  | None -> Alcotest.fail "pair 4-5 missing"

(* The golden config of test_golden.ml (ring:8, kappa 0.5, split extreme
   drift, horizon 80, seed 7), optionally faulted and region-parallel. *)
let golden_cfg ?fault_plan ?(regions = 1) algo =
  Runner.config
    ~spec:(Spec.make ~kappa:0.5 ())
    ~algo
    ~drift_of_node:(fun v ->
      if v < 4 then Drift.Extreme_high else Drift.Extreme_low)
    ~horizon:80. ~seed:7 ?fault_plan ~regions ring8

(* An inert plan leaves the config without any fault plan at all, so a
   "churned" run is *structurally* the static run — same store key, same
   schedule, same bits — not merely an equivalent one. *)
let test_inert_churn_is_static () =
  List.iter
    (fun algo ->
      let static = Runner.run (golden_cfg algo) in
      let churned =
        let fault_plan =
          Churn_plan.compile
            (plan_of_string "edge-up@10:all; edge-up@42.5:edges=0-1")
            ~graph:ring8 ~seed:7 ~horizon:80.
        in
        Runner.run (golden_cfg ?fault_plan algo)
      in
      Alcotest.(check bool) "outcome identical" true
        (Runner.outcome static = Runner.outcome churned);
      Alcotest.(check bool) "samples identical" true
        (static.Runner.samples = churned.Runner.samples))
    [ Algorithm.Gradient_sync; Algorithm.Dynamic_gradient_sync ]

(* A genuinely churned run is an ordinary faulted run: region-parallel
   execution reproduces the serial one bit for bit. *)
let test_churned_regions_identical () =
  let fault_plan =
    match
      Churn_plan.compile
        (plan_of_string
           "edge-down@20:edges=2-3; edge-up@50:edges=2-3; \
            flap@10..60:up=8:down=4:edges=6-7")
        ~graph:ring8 ~seed:7 ~horizon:80.
    with
    | Some p -> Some p
    | None -> Alcotest.fail "churn plan compiled to nothing"
  in
  List.iter
    (fun algo ->
      let serial = Runner.run (golden_cfg ?fault_plan algo) in
      List.iter
        (fun regions ->
          let par = Runner.run (golden_cfg ?fault_plan ~regions algo) in
          let label = Printf.sprintf "regions=%d" regions in
          Alcotest.(check bool) (label ^ ": outcome identical") true
            (Runner.outcome serial = Runner.outcome par);
          Alcotest.(check bool) (label ^ ": samples identical") true
            (serial.Runner.samples = par.Runner.samples);
          Alcotest.(check int) (label ^ ": events") serial.Runner.events
            par.Runner.events)
        [ 2; 4 ])
    [ Algorithm.Gradient_sync; Algorithm.Dynamic_gradient_sync ]

(* Random plans round-trip through the textual syntax. *)
let qcheck_round_trip =
  let open QCheck in
  let time = Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 0 320) in
  let edge_spec_gen =
    Gen.oneof
      [
        Gen.return Fault_plan.All_edges;
        Gen.map (fun v -> Fault_plan.Cut [ v ]) (Gen.int_range 0 7);
        Gen.map
          (fun v -> Fault_plan.Edges [ (v, (v + 1) mod 8) ])
          (Gen.int_range 0 6);
      ]
  in
  let window =
    Gen.map2
      (fun from_ d -> (from_, from_ +. (1. +. d)))
      time
      (Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 0 200))
  in
  let mean = Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 1 40) in
  let process_gen =
    Gen.oneof
      [
        Gen.map2 (fun at edges -> Churn_plan.Edge_up { at; edges }) time
          edge_spec_gen;
        Gen.map2 (fun at edges -> Churn_plan.Edge_down { at; edges }) time
          edge_spec_gen;
        Gen.map3
          (fun (from_, until) (up_mean, down_mean) edges ->
            Churn_plan.Flap { from_; until; up_mean; down_mean; edges })
          window (Gen.pair mean mean) edge_spec_gen;
        Gen.map2
          (fun (from_, until) edges -> Churn_plan.Grow { from_; until; edges })
          window edge_spec_gen;
        Gen.map2
          (fun (from_, until) edges ->
            Churn_plan.Shrink { from_; until; edges })
          window edge_spec_gen;
      ]
  in
  let plan_gen =
    Gen.map Churn_plan.of_processes
      (Gen.list_size (Gen.int_range 1 6) process_gen)
  in
  let arb = QCheck.make plan_gen ~print:Churn_plan.to_string in
  QCheck.Test.make ~count:100 ~name:"textual syntax round-trips" arb (fun p ->
      match Churn_plan.of_string (Churn_plan.to_string p) with
      | Ok p' -> Churn_plan.processes p' = Churn_plan.processes p
      | Error _ -> false)

(* Any all-edges-up plan — whatever the times — is inert: it compiles to
   [None], so the config cannot even tell churn was mentioned. *)
let qcheck_inert =
  let open QCheck in
  let time = Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 0 320) in
  let edge_spec_gen =
    Gen.oneof
      [
        Gen.return Fault_plan.All_edges;
        Gen.map (fun v -> Fault_plan.Cut [ v ]) (Gen.int_range 0 7);
        Gen.map
          (fun v -> Fault_plan.Edges [ (v, (v + 1) mod 8) ])
          (Gen.int_range 0 6);
      ]
  in
  let plan_gen =
    Gen.map Churn_plan.of_processes
      (Gen.list_size (Gen.int_range 1 6)
         (Gen.map2
            (fun at edges -> Churn_plan.Edge_up { at; edges })
            time edge_spec_gen))
  in
  let arb = QCheck.make plan_gen ~print:Churn_plan.to_string in
  QCheck.Test.make ~count:100 ~name:"all-edges-up plans compile to None" arb
    (fun p ->
      match Churn_plan.compile p ~graph:ring8 ~seed:3 ~horizon:80. with
      | None -> true
      | Some _ -> false)

let suite =
  [
    Alcotest.test_case "round trip (all kinds)" `Quick test_round_trip;
    Alcotest.test_case "of_string examples" `Quick test_of_string_examples;
    Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "compile elision" `Quick test_compile_elision;
    Alcotest.test_case "compile deterministic" `Quick test_compile_deterministic;
    Alcotest.test_case "up_windows" `Quick test_up_windows;
    Alcotest.test_case "inert churn is the static run" `Quick
      test_inert_churn_is_static;
    Alcotest.test_case "churned run identical across regions" `Quick
      test_churned_regions_identical;
    QCheck_alcotest.to_alcotest qcheck_round_trip;
    QCheck_alcotest.to_alcotest qcheck_inert;
  ]
