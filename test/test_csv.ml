module Csv = Gcs_util.Csv

let test_escape () =
  Alcotest.(check string) "plain" "abc" (Csv.escape_cell "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Csv.escape_cell "a,b");
  Alcotest.(check string) "quote doubled" "\"a\"\"b\"" (Csv.escape_cell "a\"b");
  Alcotest.(check string) "newline" "\"a\nb\"" (Csv.escape_cell "a\nb")

let test_render () =
  let out =
    Csv.render ~header:[ "x"; "y" ] ~rows:[ [ "1"; "2" ]; [ "3"; "4,5" ] ]
  in
  Alcotest.(check string) "rfc shape" "x,y\n1,2\n3,\"4,5\"\n" out

let test_write_roundtrip () =
  let path = Filename.temp_file "gcs_csv" ".csv" in
  Csv.write ~path ~header:[ "a" ] ~rows:[ [ "1" ]; [ "2" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "file content" "a\n1\n2\n" content

let test_escape_edge_cases () =
  Alcotest.(check string) "empty stays bare" "" (Csv.escape_cell "");
  Alcotest.(check string) "lone quote" "\"\"\"\"" (Csv.escape_cell "\"");
  Alcotest.(check string)
    "quotes and commas together" "\"he said \"\"a,b\"\"\""
    (Csv.escape_cell "he said \"a,b\"");
  Alcotest.(check string) "crlf" "\"a\r\nb\"" (Csv.escape_cell "a\r\nb");
  Alcotest.(check string)
    "row with empty fields" ",," (Csv.render_row [ ""; ""; "" ]);
  Alcotest.(check string)
    "empty field between quoted" "\"a,b\",,c"
    (Csv.render_row [ "a,b"; ""; "c" ])

let check_parse = Alcotest.(result (list string) string)

let test_parse_line () =
  Alcotest.check check_parse "plain" (Ok [ "a"; "b"; "c" ])
    (Csv.parse_line "a,b,c");
  Alcotest.check check_parse "empty line is one empty cell" (Ok [ "" ])
    (Csv.parse_line "");
  Alcotest.check check_parse "empty fields" (Ok [ ""; ""; "" ])
    (Csv.parse_line ",,");
  Alcotest.check check_parse "quoted comma" (Ok [ "a,b"; "c" ])
    (Csv.parse_line "\"a,b\",c");
  Alcotest.check check_parse "escaped quote" (Ok [ "a\"b" ])
    (Csv.parse_line "\"a\"\"b\"");
  Alcotest.check check_parse "embedded newline" (Ok [ "a\nb"; "c" ])
    (Csv.parse_line "\"a\nb\",c");
  Alcotest.check check_parse "quoted empty cell" (Ok [ ""; "x" ])
    (Csv.parse_line "\"\",x")

let test_parse_line_rejects () =
  let fails s =
    match Csv.parse_line s with
    | Error _ -> ()
    | Ok cells ->
        Alcotest.failf "%S parsed as %s" s (String.concat "|" cells)
  in
  fails "a\"b";
  fails "\"ab\"c";
  fails "\"unterminated";
  fails "\"a\"\"";
  ()

(* parse_line inverts render_row for arbitrary cell contents. *)
let qcheck_parse_inverts_render =
  let open QCheck in
  let cell_gen =
    Gen.string_size ~gen:(Gen.oneofl [ 'a'; 'z'; ','; '"'; '\n'; '\r'; ' ' ])
      (Gen.int_range 0 6)
  in
  let row_gen = Gen.list_size (Gen.int_range 1 6) cell_gen in
  let arb = QCheck.make row_gen ~print:(String.concat "|") in
  QCheck.Test.make ~count:500 ~name:"parse_line inverts render_row" arb
    (fun row -> Csv.parse_line (Csv.render_row row) = Ok row)

let test_write_atomic () =
  let path = Filename.temp_file "gcs_csv" ".csv" in
  (* Overwrite an existing file: the old content must be fully replaced
     and no .tmp sibling may survive the rename. *)
  Csv.write ~path ~header:[ "a" ] ~rows:[ [ "old" ] ];
  Csv.write ~path ~header:[ "a" ] ~rows:[ [ "new" ] ];
  let ic = open_in path in
  let content = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let tmp_left = Sys.file_exists (path ^ ".tmp") in
  Sys.remove path;
  Alcotest.(check string) "replaced" "a\nnew\n" content;
  Alcotest.(check bool) "no tmp file left" false tmp_left

let suite =
  [
    Alcotest.test_case "escape" `Quick test_escape;
    Alcotest.test_case "escape edge cases" `Quick test_escape_edge_cases;
    Alcotest.test_case "render" `Quick test_render;
    Alcotest.test_case "write roundtrip" `Quick test_write_roundtrip;
    Alcotest.test_case "write atomic" `Quick test_write_atomic;
    Alcotest.test_case "parse_line" `Quick test_parse_line;
    Alcotest.test_case "parse_line rejects" `Quick test_parse_line_rejects;
    QCheck_alcotest.to_alcotest qcheck_parse_inverts_render;
  ]
