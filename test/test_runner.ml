module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Engine = Gcs_sim.Engine

let spec = Spec.make ()

let base_cfg ?(algo = Algorithm.Gradient_sync) ?(seed = 9) () =
  Runner.config ~spec ~algo ~horizon:100. ~sample_period:1. ~seed
    (Topology.ring 6)

let test_sampling_cadence () =
  let r = Runner.run (base_cfg ()) in
  (* t0 = 0 through horizon 100 inclusive, every 1.0. *)
  Alcotest.(check int) "sample count" 101 (Array.length r.Runner.samples);
  Alcotest.(check (float 1e-9)) "first at 0" 0. r.Runner.samples.(0).Metrics.time;
  Alcotest.(check (float 1e-9)) "last at horizon" 100.
    r.Runner.samples.(100).Metrics.time

let test_determinism_across_runs () =
  let run () =
    let r = Runner.run (base_cfg ()) in
    ( r.Runner.summary.Metrics.max_local,
      r.Runner.summary.Metrics.max_global,
      r.Runner.messages,
      r.Runner.events )
  in
  Alcotest.(check bool) "identical replay" true (run () = run ())

let test_seed_changes_execution () =
  let result seed = (Runner.run (base_cfg ~seed ())).Runner.summary in
  Alcotest.(check bool) "different seeds, different skews" true
    (result 1 <> result 2)

let test_prepare_complete_equals_run () =
  let direct = Runner.run (base_cfg ()) in
  let split = Runner.complete (Runner.prepare (base_cfg ())) in
  Alcotest.(check bool) "same summary" true
    (direct.Runner.summary = split.Runner.summary)

let test_snapshot_live () =
  let live = Runner.prepare (base_cfg ()) in
  Engine.run_until live.Runner.engine 50.;
  let s = Runner.snapshot live in
  Alcotest.(check (float 1e-9)) "snapshot time" 50. s.Metrics.time;
  Alcotest.(check int) "snapshot width" 6 (Array.length s.Metrics.values);
  (* Clocks progressed roughly with real time. *)
  Array.iter
    (fun v -> Alcotest.(check bool) "progressed" true (v > 40. && v < 60.))
    s.Metrics.values

let test_config_validation () =
  let g = Topology.ring 4 in
  (match Runner.config ~horizon:0. g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero horizon");
  match Runner.config ~sample_period:0. g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero sample period"

let test_bad_spec_rejected () =
  let g = Topology.ring 4 in
  let bad_spec = { spec with Spec.mu = spec.Spec.rho /. 2. } in
  let cfg = Runner.config ~spec:bad_spec g in
  match Runner.prepare cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted mu <= rho"

let test_delay_kinds_all_run () =
  List.iter
    (fun delay_kind ->
      let cfg =
        Runner.config ~spec ~algo:Algorithm.Gradient_sync ~delay_kind
          ~horizon:50. ~seed:3 (Topology.line 4)
      in
      let r = Runner.run cfg in
      Alcotest.(check bool) "produced samples" true
        (Array.length r.Runner.samples > 0))
    [
      Runner.Uniform_delays;
      Runner.Fixed_delays;
      Runner.Midpoint_delays;
      Runner.Controlled_delays;
    ]

let test_warmup_excludes_transient () =
  (* Start with a huge initial skew; the post-warm-up summary of a gradient
     run must not include the initial value. *)
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~initial_value_of_node:(fun v -> if v = 0 then 50. else 0.)
      ~horizon:600. ~warmup:500. ~seed:5 (Topology.line 4)
  in
  let r = Runner.run cfg in
  Alcotest.(check bool) "transient excluded" true
    (r.Runner.summary.Metrics.max_global < 50.)

let test_warmup_past_horizon () =
  (* A warm-up at or beyond the horizon leaves no qualifying samples; the
     runner must fall back to summarizing everything, not trap. *)
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:20.
      ~warmup:50. ~seed:4 (Topology.ring 5)
  in
  let r = Runner.run cfg in
  Alcotest.(check int) "all samples summarized" 21
    r.Runner.summary.Metrics.samples_used

let test_obs_empty_by_default () =
  let r = Runner.run (base_cfg ()) in
  Alcotest.(check bool) "no sinks captured" true
    (r.Runner.obs = Gcs_obs.Capture.empty)

let test_per_edge_delay_kind () =
  let bounds e =
    if e = 0 then Gcs_sim.Delay_model.bounds ~d_min:0.1 ~d_max:0.2
    else Gcs_sim.Delay_model.bounds ~d_min:1. ~d_max:1.5
  in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~delay_kind:(Runner.Per_edge_delays bounds) ~horizon:50. ~seed:3
      (Topology.line 4)
  in
  let r = Runner.run cfg in
  Alcotest.(check bool) "runs" true (Array.length r.Runner.samples > 0)

let test_override_used () =
  (* An override that never sends anything must behave like free-run even
     though algo says gradient. *)
  let silent =
    {
      Gcs_core.Algorithm.name = "silent";
      prepare =
        (fun _ _ ->
          {
            Gcs_sim.Engine.on_init = (fun _ -> ());
            on_message = (fun _ ~port:_ _ -> ());
            on_timer = (fun _ ~tag:_ -> ());
          });
    }
  in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:silent
      ~horizon:50. ~seed:3 (Topology.ring 5)
  in
  let r = Runner.run cfg in
  Alcotest.(check int) "no messages" 0 r.Runner.messages

let suite =
  [
    Alcotest.test_case "sampling cadence" `Quick test_sampling_cadence;
    Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_execution;
    Alcotest.test_case "prepare/complete = run" `Quick test_prepare_complete_equals_run;
    Alcotest.test_case "snapshot" `Quick test_snapshot_live;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "bad spec rejected" `Quick test_bad_spec_rejected;
    Alcotest.test_case "all delay kinds" `Quick test_delay_kinds_all_run;
    Alcotest.test_case "warmup excludes transient" `Quick test_warmup_excludes_transient;
    Alcotest.test_case "warmup past horizon" `Quick test_warmup_past_horizon;
    Alcotest.test_case "obs empty by default" `Quick test_obs_empty_by_default;
    Alcotest.test_case "per-edge delays" `Quick test_per_edge_delay_kind;
    Alcotest.test_case "override used" `Quick test_override_used;
  ]
