module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Engine = Gcs_sim.Engine

let spec = Spec.make ()

let base_cfg ?(algo = Algorithm.Gradient_sync) ?(seed = 9) () =
  Runner.config ~spec ~algo ~horizon:100. ~sample_period:1. ~seed
    (Topology.ring 6)

let test_sampling_cadence () =
  let r = Runner.run (base_cfg ()) in
  (* t0 = 0 through horizon 100 inclusive, every 1.0. *)
  Alcotest.(check int) "sample count" 101 (Array.length r.Runner.samples);
  Alcotest.(check (float 1e-9)) "first at 0" 0. r.Runner.samples.(0).Metrics.time;
  Alcotest.(check (float 1e-9)) "last at horizon" 100.
    r.Runner.samples.(100).Metrics.time

let test_determinism_across_runs () =
  let run () =
    let r = Runner.run (base_cfg ()) in
    ( r.Runner.summary.Metrics.max_local,
      r.Runner.summary.Metrics.max_global,
      r.Runner.messages,
      r.Runner.events )
  in
  Alcotest.(check bool) "identical replay" true (run () = run ())

let test_seed_changes_execution () =
  let result seed = (Runner.run (base_cfg ~seed ())).Runner.summary in
  Alcotest.(check bool) "different seeds, different skews" true
    (result 1 <> result 2)

let test_prepare_complete_equals_run () =
  let direct = Runner.run (base_cfg ()) in
  let split = Runner.complete (Runner.prepare (base_cfg ())) in
  Alcotest.(check bool) "same summary" true
    (direct.Runner.summary = split.Runner.summary)

let test_snapshot_live () =
  let live = Runner.prepare (base_cfg ()) in
  Engine.run_until live.Runner.engine 50.;
  let s = Runner.snapshot live in
  Alcotest.(check (float 1e-9)) "snapshot time" 50. s.Metrics.time;
  Alcotest.(check int) "snapshot width" 6 (Array.length s.Metrics.values);
  (* Clocks progressed roughly with real time. *)
  Array.iter
    (fun v -> Alcotest.(check bool) "progressed" true (v > 40. && v < 60.))
    s.Metrics.values

let test_config_validation () =
  let g = Topology.ring 4 in
  (match Runner.config ~horizon:0. g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero horizon");
  match Runner.config ~sample_period:0. g with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted zero sample period"

let test_bad_spec_rejected () =
  let g = Topology.ring 4 in
  let bad_spec = { spec with Spec.mu = spec.Spec.rho /. 2. } in
  let cfg = Runner.config ~spec:bad_spec g in
  match Runner.prepare cfg with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted mu <= rho"

let test_delay_kinds_all_run () =
  List.iter
    (fun delay_kind ->
      let cfg =
        Runner.config ~spec ~algo:Algorithm.Gradient_sync ~delay_kind
          ~horizon:50. ~seed:3 (Topology.line 4)
      in
      let r = Runner.run cfg in
      Alcotest.(check bool) "produced samples" true
        (Array.length r.Runner.samples > 0))
    [
      Runner.Uniform_delays;
      Runner.Fixed_delays;
      Runner.Midpoint_delays;
      Runner.Controlled_delays;
    ]

let test_warmup_excludes_transient () =
  (* Start with a huge initial skew; the post-warm-up summary of a gradient
     run must not include the initial value. *)
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~initial_value_of_node:(fun v -> if v = 0 then 50. else 0.)
      ~horizon:600. ~warmup:500. ~seed:5 (Topology.line 4)
  in
  let r = Runner.run cfg in
  Alcotest.(check bool) "transient excluded" true
    (r.Runner.summary.Metrics.max_global < 50.)

let test_warmup_past_horizon () =
  (* A warm-up at or beyond the horizon leaves no qualifying samples; the
     runner must fall back to summarizing everything, not trap. *)
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:20.
      ~warmup:50. ~seed:4 (Topology.ring 5)
  in
  let r = Runner.run cfg in
  Alcotest.(check int) "all samples summarized" 21
    r.Runner.summary.Metrics.samples_used

let test_chooser_cleared_after_complete () =
  (* The chooser's lifetime ends with the run it was installed for:
     [complete] must reset the cell so the closure the delay model captured
     can never fire in a later reuse of the engine. *)
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~delay_kind:Runner.Controlled_delays ~horizon:20. ~seed:3
      (Topology.line 3)
  in
  let live = Runner.prepare cfg in
  live.Runner.chooser := Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 1.5);
  let _ = Runner.complete live in
  Alcotest.(check bool) "chooser reset to None" true
    (!(live.Runner.chooser) = None)

let test_controlled_then_default_identical () =
  (* Regression for the chooser-ref lifecycle: an adversarial controlled
     run sandwiched between two plain controlled runs must leave the second
     plain run bit-identical to the first. Max-sync because its jumps make
     the samples delay-sensitive (gradient's multiplier trigger never
     engages at this scale, so delays cannot move its samples). *)
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Max_sync
      ~delay_kind:Runner.Controlled_delays ~horizon:50. ~seed:7
      (Topology.line 4)
  in
  let baseline = Runner.run cfg in
  let live = Runner.prepare cfg in
  live.Runner.chooser := Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 1.5);
  let adversarial = Runner.complete live in
  let after = Runner.run cfg in
  Alcotest.(check bool) "adversary actually changed the run" true
    (adversarial.Runner.summary <> baseline.Runner.summary);
  Alcotest.(check bool) "default behavior bit-identical afterwards" true
    (after.Runner.summary = baseline.Runner.summary
    && after.Runner.samples = baseline.Runner.samples
    && after.Runner.messages = baseline.Runner.messages)

let test_stop_during_fault_episode () =
  (* Stopping mid-fault-episode, before the warm-up: no dispatch happens
     after the stop, and the partial-summary fallback summarizes every
     collected sample instead of trapping on an empty window. *)
  let plan =
    Gcs_sim.Fault_plan.of_events
      [
        Gcs_sim.Fault_plan.Node_crash { at = 10.; node = 0 };
        Gcs_sim.Fault_plan.Node_recover { at = 30.; node = 0; wipe = false };
      ]
  in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:100.
      ~warmup:50. ~seed:3 ~fault_plan:plan (Topology.ring 5)
  in
  let live = Runner.prepare cfg in
  let engine = live.Runner.engine in
  Engine.schedule_control engine ~at:15. (fun () ->
      Engine.request_stop engine);
  let r = Runner.complete live in
  Alcotest.(check bool) "stopped inside the episode" true
    (Engine.now engine >= 10. && Engine.now engine <= 15.);
  let events = Engine.events_processed engine in
  Engine.run_until engine 100.;
  Alcotest.(check int) "no dispatches after stop" events
    (Engine.events_processed engine);
  Alcotest.(check bool) "some samples collected" true
    (Array.length r.Runner.samples > 0);
  Alcotest.(check int) "fallback summarized every collected sample"
    (Array.length r.Runner.samples)
    r.Runner.summary.Metrics.samples_used;
  Array.iter
    (fun s ->
      Alcotest.(check bool) "all samples pre-warmup" true
        (s.Metrics.time < 50.))
    r.Runner.samples

let test_obs_empty_by_default () =
  let r = Runner.run (base_cfg ()) in
  Alcotest.(check bool) "no sinks captured" true
    (r.Runner.obs = Gcs_obs.Capture.empty)

let test_per_edge_delay_kind () =
  let bounds e =
    if e = 0 then Gcs_sim.Delay_model.bounds ~d_min:0.1 ~d_max:0.2
    else Gcs_sim.Delay_model.bounds ~d_min:1. ~d_max:1.5
  in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync
      ~delay_kind:(Runner.Per_edge_delays bounds) ~horizon:50. ~seed:3
      (Topology.line 4)
  in
  let r = Runner.run cfg in
  Alcotest.(check bool) "runs" true (Array.length r.Runner.samples > 0)

let test_override_used () =
  (* An override that never sends anything must behave like free-run even
     though algo says gradient. *)
  let silent =
    {
      Gcs_core.Algorithm.name = "silent";
      prepare =
        (fun _ _ ->
          {
            Gcs_sim.Engine.on_init = (fun _ -> ());
            on_message = (fun _ ~port:_ _ -> ());
            on_timer = (fun _ ~tag:_ -> ());
          });
    }
  in
  let cfg =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:silent
      ~horizon:50. ~seed:3 (Topology.ring 5)
  in
  let r = Runner.run cfg in
  Alcotest.(check int) "no messages" 0 r.Runner.messages

let suite =
  [
    Alcotest.test_case "sampling cadence" `Quick test_sampling_cadence;
    Alcotest.test_case "determinism" `Quick test_determinism_across_runs;
    Alcotest.test_case "seed sensitivity" `Quick test_seed_changes_execution;
    Alcotest.test_case "prepare/complete = run" `Quick test_prepare_complete_equals_run;
    Alcotest.test_case "snapshot" `Quick test_snapshot_live;
    Alcotest.test_case "config validation" `Quick test_config_validation;
    Alcotest.test_case "bad spec rejected" `Quick test_bad_spec_rejected;
    Alcotest.test_case "all delay kinds" `Quick test_delay_kinds_all_run;
    Alcotest.test_case "warmup excludes transient" `Quick test_warmup_excludes_transient;
    Alcotest.test_case "warmup past horizon" `Quick test_warmup_past_horizon;
    Alcotest.test_case "chooser cleared after complete" `Quick
      test_chooser_cleared_after_complete;
    Alcotest.test_case "controlled then default identical" `Quick
      test_controlled_then_default_identical;
    Alcotest.test_case "stop during fault episode" `Quick
      test_stop_during_fault_episode;
    Alcotest.test_case "obs empty by default" `Quick test_obs_empty_by_default;
    Alcotest.test_case "per-edge delays" `Quick test_per_edge_delay_kind;
    Alcotest.test_case "override used" `Quick test_override_used;
  ]
