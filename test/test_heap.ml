module Heap = Gcs_util.Heap

let test_empty () =
  let h = Heap.create () in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check bool) "pop none" true (Heap.pop h = None);
  Alcotest.(check bool) "peek none" true (Heap.peek h = None)

let test_ordering () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p p) [ 3.; 1.; 2.; 0.5; 2.5 ];
  let order = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        order := v :: !order;
        drain ()
  in
  drain ();
  Alcotest.(check (list (float 0.)))
    "sorted" [ 0.5; 1.; 2.; 2.5; 3. ] (List.rev !order)

let test_fifo_ties () =
  let h = Heap.create () in
  List.iter (fun v -> Heap.push h ~prio:1. v) [ "a"; "b"; "c" ];
  Heap.push h ~prio:0. "first";
  let popped = ref [] in
  let rec drain () =
    match Heap.pop h with
    | None -> ()
    | Some (_, v) ->
        popped := v :: !popped;
        drain ()
  in
  drain ();
  Alcotest.(check (list string))
    "ties pop in insertion order"
    [ "first"; "a"; "b"; "c" ]
    (List.rev !popped)

let test_peek_does_not_remove () =
  let h = Heap.create () in
  Heap.push h ~prio:1. "x";
  Alcotest.(check bool) "peek sees" true (Heap.peek h = Some (1., "x"));
  Alcotest.(check int) "size unchanged" 1 (Heap.size h)

let test_interleaved () =
  let h = Heap.create () in
  Heap.push h ~prio:5. 5;
  Heap.push h ~prio:1. 1;
  Alcotest.(check bool) "pop min" true (Heap.pop h = Some (1., 1));
  Heap.push h ~prio:0. 0;
  Heap.push h ~prio:7. 7;
  Alcotest.(check bool) "pop new min" true (Heap.pop h = Some (0., 0));
  Alcotest.(check bool) "then 5" true (Heap.pop h = Some (5., 5));
  Alcotest.(check bool) "then 7" true (Heap.pop h = Some (7., 7));
  Alcotest.(check bool) "empty" true (Heap.is_empty h)

let test_clear () =
  let h = Heap.create () in
  for i = 1 to 10 do
    Heap.push h ~prio:(float_of_int i) i
  done;
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h)

let test_to_sorted_list_pure () =
  let h = Heap.create () in
  List.iter (fun p -> Heap.push h ~prio:p ()) [ 2.; 1.; 3. ];
  let sorted = Heap.to_sorted_list h in
  Alcotest.(check (list (float 0.)))
    "sorted copy" [ 1.; 2.; 3. ] (List.map fst sorted);
  Alcotest.(check int) "original intact" 3 (Heap.size h)

let prop_heap_sort =
  QCheck.Test.make ~name:"heap drains any multiset in sorted order" ~count:300
    QCheck.(list (float_range (-1000.) 1000.))
    (fun xs ->
      let h = Heap.create () in
      List.iter (fun x -> Heap.push h ~prio:x x) xs;
      let rec drain acc =
        match Heap.pop h with None -> List.rev acc | Some (p, _) -> drain (p :: acc)
      in
      let drained = drain [] in
      drained = List.sort compare xs)

let prop_size =
  QCheck.Test.make ~name:"size tracks pushes and pops" ~count:200
    QCheck.(list (float_range 0. 10.))
    (fun xs ->
      let h = Heap.create () in
      List.iteri (fun i x -> Heap.push h ~prio:x i) xs;
      let n = List.length xs in
      let ok1 = Heap.size h = n in
      let rec pop_k k = if k = 0 then () else (ignore (Heap.pop h); pop_k (k - 1)) in
      let half = n / 2 in
      pop_k half;
      ok1 && Heap.size h = n - half)

(* Model-based property: drive the heap with a random interleaving of
   pushes and pops and check it against a sorted-association-list model.
   The model mirrors the heap's full contract — min-priority order with
   FIFO tie-breaking — which is what makes engine event order (and thus
   whole simulations) deterministic. *)
type op = Push of float | Pop

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (3, map (fun p -> Push p) (float_range (-50.) 50.));
        (2, return Pop);
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat " "
        (List.map
           (function Push p -> Printf.sprintf "push %g" p | Pop -> "pop")
           ops))
    QCheck.Gen.(list_size (int_range 0 60) op_gen)

let prop_model =
  QCheck.Test.make
    ~name:"random push/pop interleavings match the sorted-list model"
    ~count:500 ops_arb (fun ops ->
      let h = Heap.create () in
      (* Model: (priority, insertion sequence number) list, kept sorted by
         priority then sequence — exactly the heap's documented order. *)
      let model = ref [] in
      let next_seq = ref 0 in
      let ok = ref true in
      List.iter
        (fun op ->
          match op with
          | Push p ->
              Heap.push h ~prio:p !next_seq;
              model := List.merge compare !model [ (p, !next_seq) ];
              incr next_seq
          | Pop -> (
              match (Heap.pop h, !model) with
              | None, [] -> ()
              | Some (p, v), (mp, mv) :: rest ->
                  if p <> mp || v <> mv then ok := false else model := rest
              | Some _, [] | None, _ :: _ -> ok := false))
        ops;
      (* Drain whatever is left: the tail must also pop in model order, and
         sizes must agree along the way. *)
      let rec drain () =
        if Heap.size h <> List.length !model then ok := false
        else
          match (Heap.pop h, !model) with
          | None, [] -> ()
          | Some (p, v), (mp, mv) :: rest ->
              if p <> mp || v <> mv then ok := false
              else begin
                model := rest;
                drain ()
              end
          | Some _, [] | None, _ :: _ -> ok := false
      in
      drain ();
      !ok)

let prop_pop_nondecreasing =
  QCheck.Test.make
    ~name:"pops between pushes come out in nondecreasing priority" ~count:300
    ops_arb (fun ops ->
      (* Within any maximal run of pops, priorities must not decrease. *)
      let h = Heap.create () in
      let ok = ref true in
      let last_pop = ref neg_infinity in
      List.iter
        (function
          | Push p ->
              Heap.push h ~prio:p ();
              last_pop := neg_infinity
          | Pop -> (
              match Heap.pop h with
              | None -> ()
              | Some (p, ()) ->
                  if p < !last_pop then ok := false;
                  last_pop := p))
        ops;
      !ok)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "fifo ties" `Quick test_fifo_ties;
    Alcotest.test_case "peek" `Quick test_peek_does_not_remove;
    Alcotest.test_case "interleaved" `Quick test_interleaved;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "to_sorted_list pure" `Quick test_to_sorted_list_pure;
    QCheck_alcotest.to_alcotest prop_heap_sort;
    QCheck_alcotest.to_alcotest prop_size;
    QCheck_alcotest.to_alcotest prop_model;
    QCheck_alcotest.to_alcotest prop_pop_nondecreasing;
  ]
