module Choice = Gcs_explore.Choice
module Instance = Gcs_explore.Instance
module Explorer = Gcs_explore.Explorer
module Verdict = Gcs_explore.Verdict
module Canon = Gcs_explore.Canon
module Monitor = Gcs_check.Monitor
module Check_run = Gcs_check.Check_run
module Repro = Gcs_check.Repro
module Shrink = Gcs_check.Shrink
module Runner = Gcs_core.Runner
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Topology = Gcs_graph.Topology
module Search = Gcs_adversary.Search

let spec = Spec.make ()

(* A monitor whose rate ceiling sits below vartheta (1.01): any decision
   that puts a node on the fast half of the drift split violates it in the
   node's first segment, so the explorer must find a depth-1 trace. *)
let tight_monitor () =
  {
    (Check_run.default_spec ~mode:`Abort spec Algorithm.Gradient_sync) with
    Monitor.rate_hi = 1.005;
  }

(* ---------------------------------------------------------------- *)
(* Alphabets and the decision codec                                 *)

let test_alphabet_sizes () =
  Alcotest.(check int) "all" 9 (List.length Choice.all);
  Alcotest.(check int) "drift" 3 (List.length Choice.drift_only);
  Alcotest.(check int) "delay" 3 (List.length Choice.delay_only);
  Alcotest.(check int) "extremes" 4 (List.length Choice.extremes)

let test_alphabet_parsing () =
  let ok name expected =
    match Choice.alphabet_of_string name with
    | Ok l -> Alcotest.(check bool) name true (l = expected)
    | Error e -> Alcotest.failf "%s: %s" name e
  in
  ok "all" Choice.all;
  ok "drift" Choice.drift_only;
  ok "delay" Choice.delay_only;
  ok "extreme" Choice.extremes;
  ok "extremes" Choice.extremes;
  (match Choice.alphabet_of_string "LF;RB" with
  | Ok [ m1; m2 ] ->
      Alcotest.(check string) "LF" "LF" (Choice.to_string m1);
      Alcotest.(check string) "RB" "RB" (Choice.to_string m2)
  | _ -> Alcotest.fail "explicit move list did not parse");
  (match Choice.alphabet_of_string "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty alphabet accepted");
  match Choice.alphabet_of_string "XZ" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "garbage alphabet accepted"

let test_alphabet_rendering () =
  Alcotest.(check string) "named" "all" (Choice.alphabet_to_string Choice.all);
  Alcotest.(check string) "named" "extreme"
    (Choice.alphabet_to_string Choice.extremes);
  let custom = [ List.hd Choice.all ] in
  match Choice.alphabet_of_string (Choice.alphabet_to_string custom) with
  | Ok l -> Alcotest.(check bool) "custom roundtrip" true (l = custom)
  | Error e -> Alcotest.fail e

let test_trace_codec_roundtrip () =
  let trace = Choice.extremes @ List.rev Choice.extremes in
  match Choice.trace_of_string (Choice.trace_to_string trace) with
  | Ok t -> Alcotest.(check bool) "roundtrip" true (t = trace)
  | Error e -> Alcotest.fail e

let test_discretization () =
  Alcotest.(check (list (float 1e-12))) "delay points" [ 0.5; 1.0; 1.5 ]
    (Choice.delay_points spec);
  Alcotest.(check (list (float 1e-12))) "rate lattice" [ 1.; 1.01 ]
    (Choice.rate_lattice spec)

(* ---------------------------------------------------------------- *)
(* Instance validation and space arithmetic                         *)

let test_instance_validation () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  raises "depth 0" (fun () -> Instance.make ~depth:0 ());
  raises "segment 0" (fun () -> Instance.make ~segment_len:0. ());
  raises "empty alphabet" (fun () -> Instance.make ~alphabet:[] ());
  raises "too many nodes" (fun () ->
      Instance.make ~topology:(Topology.Ring 8) ());
  raises "too few nodes" (fun () ->
      Instance.make ~topology:(Topology.Line 1) ())

let test_instance_space_arithmetic () =
  let inst = Instance.make () in
  (* Defaults: ring:3, extremes (4 moves), depth 3. *)
  Alcotest.(check int) "nodes" 3 (Instance.nodes inst);
  Alcotest.(check int) "executions" 64 (Instance.executions inst);
  Alcotest.(check int) "prefixes" 84 (Instance.prefixes inst);
  Alcotest.(check (float 1e-9)) "horizon" 24. (Instance.horizon inst ~depth:3);
  let dup = Instance.make ~alphabet:(Choice.extremes @ Choice.extremes) () in
  Alcotest.(check int) "alphabet deduplicated" 4
    (List.length dup.Instance.alphabet)

let test_instance_key_is_perfect_drift () =
  let inst = Instance.make () in
  let key = Instance.key inst ~depth:2 in
  Alcotest.(check string) "drift pinned" "perfect" key.Gcs_store.Key.drift;
  Alcotest.(check (float 1e-9)) "horizon at depth" 16.
    key.Gcs_store.Key.horizon

(* ---------------------------------------------------------------- *)
(* Golden exhaustiveness counts                                     *)

let test_golden_line2_delay () =
  let inst =
    Instance.make ~topology:(Topology.Line 2) ~alphabet:Choice.delay_only ()
  in
  let o = Explorer.explore inst in
  Alcotest.(check bool) "proved" true (o.Explorer.verdict = Explorer.Proved);
  let s = o.Explorer.stats in
  Alcotest.(check int) "visited = prefixes" 39 s.Explorer.states_visited;
  Alcotest.(check int) "executions" 27 s.Explorer.executions;
  Alcotest.(check int) "nothing pruned" 0 s.Explorer.pruned;
  Alcotest.(check int) "max depth" 3 s.Explorer.max_depth;
  Alcotest.(check int) "frontier high water" 27 s.Explorer.frontier_high_water;
  Alcotest.(check int) "events checked" 6424 s.Explorer.events_checked

let test_golden_ring3_extremes () =
  let inst = Instance.make () in
  let o = Explorer.explore inst in
  Alcotest.(check bool) "proved" true (o.Explorer.verdict = Explorer.Proved);
  let s = o.Explorer.stats in
  Alcotest.(check int) "visited = prefixes" 84 s.Explorer.states_visited;
  Alcotest.(check int) "executions" 64 s.Explorer.executions;
  Alcotest.(check int) "frontier high water" 64 s.Explorer.frontier_high_water;
  Alcotest.(check int) "events checked" 26920 s.Explorer.events_checked

let test_golden_ring3_dedup () =
  let inst = Instance.make () in
  let o = Explorer.explore ~dedup:true inst in
  Alcotest.(check bool) "still proved" true
    (o.Explorer.verdict = Explorer.Proved);
  let s = o.Explorer.stats in
  Alcotest.(check int) "visited" 52 s.Explorer.states_visited;
  Alcotest.(check int) "executions" 32 s.Explorer.executions;
  Alcotest.(check int) "pruned" 8 s.Explorer.pruned;
  Alcotest.(check int) "distinct states" 12 s.Explorer.distinct_states

let test_dfs_same_space_smaller_frontier () =
  let inst = Instance.make () in
  let bfs = Explorer.explore ~strategy:Explorer.Bfs inst in
  let dfs = Explorer.explore ~strategy:Explorer.Dfs inst in
  Alcotest.(check bool) "both proved" true
    (bfs.Explorer.verdict = Explorer.Proved
    && dfs.Explorer.verdict = Explorer.Proved);
  Alcotest.(check int) "same prefixes visited"
    bfs.Explorer.stats.Explorer.states_visited
    dfs.Explorer.stats.Explorer.states_visited;
  Alcotest.(check int) "same executions"
    bfs.Explorer.stats.Explorer.executions
    dfs.Explorer.stats.Explorer.executions;
  Alcotest.(check int) "same events checked"
    bfs.Explorer.stats.Explorer.events_checked
    dfs.Explorer.stats.Explorer.events_checked;
  Alcotest.(check int) "dfs frontier high water" 10
    dfs.Explorer.stats.Explorer.frontier_high_water

let test_budget_exhausted () =
  let inst = Instance.make () in
  let o = Explorer.explore ~max_states:10 inst in
  Alcotest.(check bool) "budget verdict" true
    (o.Explorer.verdict = Explorer.Budget_exhausted);
  Alcotest.(check int) "stopped at the budget" 10
    o.Explorer.stats.Explorer.states_visited

(* ---------------------------------------------------------------- *)
(* Violations: shallowest trace, shrink, repro interop              *)

let test_violation_shallowest_first () =
  let inst = Instance.make ~monitor:(tight_monitor ()) () in
  let o = Explorer.explore inst in
  match o.Explorer.verdict with
  | Explorer.Violated { trace; violation } ->
      Alcotest.(check int) "depth-1 trace" 1 (List.length trace);
      Alcotest.(check string) "first alphabet move" "LF"
        (Choice.trace_to_string trace);
      Alcotest.(check bool) "rate violation" true
        (violation.Monitor.kind = Monitor.Rate);
      Alcotest.(check int) "only one prefix needed" 1
        o.Explorer.stats.Explorer.states_visited
  | _ -> Alcotest.fail "expected a violation under rate_hi = 1.005"

let test_violation_shrinks_and_replays () =
  let inst = Instance.make ~monitor:(tight_monitor ()) () in
  match (Explorer.explore inst).Explorer.verdict with
  | Explorer.Violated { trace; violation } -> (
      (* Unshrunk repro replays. *)
      let r = Verdict.repro inst ~trace ~violation in
      (match Repro.replay r with
      | Ok Repro.Reproduced -> ()
      | Ok _ -> Alcotest.fail "unshrunk replay diverged"
      | Error e -> Alcotest.fail e);
      (* Shrink, package the minimized candidate, replay byte-identically. *)
      match Verdict.shrink inst ~trace with
      | None -> Alcotest.fail "shrinker lost the violation"
      | Some o ->
          Alcotest.(check bool) "no growth" true
            (List.length o.Shrink.minimized.Shrink.moves
            <= List.length trace);
          let r' =
            Verdict.repro_of_candidate inst o.Shrink.minimized
              ~violation:o.Shrink.violation
          in
          let bytes = Repro.to_string r' in
          Alcotest.(check string) "deterministic encoding" bytes
            (Repro.to_string r');
          (match Repro.of_string bytes with
          | Error e -> Alcotest.fail e
          | Ok loaded -> (
              match Repro.replay loaded with
              | Ok Repro.Reproduced -> ()
              | Ok _ -> Alcotest.fail "shrunk replay diverged"
              | Error e -> Alcotest.fail e)))
  | _ -> Alcotest.fail "expected a violation under rate_hi = 1.005"

(* ---------------------------------------------------------------- *)
(* Cross-validation: one sampled execution == the enumerator's view *)

let prop_simulate_matches_check_run =
  QCheck.Test.make ~name:"explorer simulate = check_run pipeline" ~count:30
    QCheck.(list_of_size Gen.(int_range 1 3) (int_bound 8))
    (fun picks ->
      QCheck.assume (picks <> []);
      let trace = List.map (fun i -> List.nth Choice.all i) picks in
      let check inst =
        let sim =
          match Explorer.simulate inst trace with
          | Ok s -> s
          | Error e -> QCheck.Test.fail_report e
        in
        let cfg =
          match
            Runner.config_of_key
              (Instance.key inst ~depth:(List.length trace))
          with
          | Ok c -> c
          | Error e -> QCheck.Test.fail_report e
        in
        let direct =
          Check_run.run ~monitor:inst.Instance.monitor ~moves:trace
            ~segment_len:inst.Instance.segment_len cfg
        in
        sim.Explorer.violation = direct.Check_run.violation
        && sim.Explorer.events_checked = direct.Check_run.events_checked
        && sim.Explorer.result.Runner.summary
           = direct.Check_run.result.Runner.summary
      in
      check (Instance.make ~alphabet:Choice.all ())
      && check (Instance.make ~alphabet:Choice.all ~monitor:(tight_monitor ()) ()))

(* ---------------------------------------------------------------- *)
(* Canonicalization and edges of simulate                           *)

let test_canon_deterministic_and_discriminating () =
  let inst = Instance.make () in
  let canon trace =
    match Explorer.simulate inst trace with
    | Ok s -> Canon.state s.Explorer.live
    | Error e -> Alcotest.fail e
  in
  let lf = [ { Search.fast_side = `Left; bias = `Forward } ] in
  let rb = [ { Search.fast_side = `Right; bias = `Backward } ] in
  Alcotest.(check string) "same trace, same canon" (canon lf) (canon lf);
  Alcotest.(check bool) "different trace, different canon" true
    (canon lf <> canon rb)

let test_simulate_rejects_empty_trace () =
  match Explorer.simulate (Instance.make ()) [] with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty trace accepted"

let test_json_deterministic () =
  let inst = Instance.make ~topology:(Topology.Line 2) ~depth:2 () in
  let o = Explorer.explore inst in
  let j = Verdict.to_json inst o in
  Alcotest.(check string) "same outcome, same bytes" j
    (Verdict.to_json inst o);
  Alcotest.(check bool) "status present" true
    (let needle = "\"status\":\"proved\"" in
     let rec find i =
       i + String.length needle <= String.length j
       && (String.sub j i (String.length needle) = needle || find (i + 1))
     in
     find 0)

let suite =
  [
    Alcotest.test_case "alphabet sizes" `Quick test_alphabet_sizes;
    Alcotest.test_case "alphabet parsing" `Quick test_alphabet_parsing;
    Alcotest.test_case "alphabet rendering" `Quick test_alphabet_rendering;
    Alcotest.test_case "trace codec roundtrip" `Quick test_trace_codec_roundtrip;
    Alcotest.test_case "discretization" `Quick test_discretization;
    Alcotest.test_case "instance validation" `Quick test_instance_validation;
    Alcotest.test_case "space arithmetic" `Quick test_instance_space_arithmetic;
    Alcotest.test_case "key pins perfect drift" `Quick
      test_instance_key_is_perfect_drift;
    Alcotest.test_case "golden: line2/delay" `Quick test_golden_line2_delay;
    Alcotest.test_case "golden: ring3/extremes" `Quick
      test_golden_ring3_extremes;
    Alcotest.test_case "golden: ring3 dedup" `Quick test_golden_ring3_dedup;
    Alcotest.test_case "dfs same space, smaller frontier" `Quick
      test_dfs_same_space_smaller_frontier;
    Alcotest.test_case "budget exhausted" `Quick test_budget_exhausted;
    Alcotest.test_case "violation: shallowest first" `Quick
      test_violation_shallowest_first;
    Alcotest.test_case "violation: shrink and replay" `Quick
      test_violation_shrinks_and_replays;
    QCheck_alcotest.to_alcotest prop_simulate_matches_check_run;
    Alcotest.test_case "canon deterministic" `Quick
      test_canon_deterministic_and_discriminating;
    Alcotest.test_case "simulate rejects empty trace" `Quick
      test_simulate_rejects_empty_trace;
    Alcotest.test_case "json deterministic" `Quick test_json_deterministic;
  ]
