module Metrics = Gcs_core.Metrics
module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Sp = Gcs_graph.Shortest_path
module Prng = Gcs_util.Prng

let checkf = Alcotest.(check (float 1e-9))

let test_global_skew () =
  checkf "spread" 7. (Metrics.global_skew [| 3.; 10.; 5. |]);
  checkf "uniform" 0. (Metrics.global_skew [| 4.; 4. |])

let test_local_skew () =
  let g = Topology.line 3 in
  (* edges 0-1 and 1-2 *)
  checkf "max edge gap" 5. (Metrics.local_skew g [| 0.; 5.; 4. |]);
  let per_edge = Metrics.local_skew_edges g [| 0.; 5.; 4. |] in
  Alcotest.(check (array (float 1e-9))) "per edge" [| 5.; 1. |] per_edge

let test_local_le_global =
  QCheck.Test.make ~name:"local skew <= global skew" ~count:200
    QCheck.(pair (int_range 2 20) small_nat)
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let g = Topology.random_gnp ~n ~p:0.4 ~rng in
      let values = Array.init n (fun _ -> Prng.uniform rng ~lo:(-10.) ~hi:10.) in
      Metrics.local_skew g values <= Metrics.global_skew values +. 1e-12)

let test_real_time_skew () =
  checkf "max |L - t|" 3. (Metrics.real_time_skew ~time:10. [| 7.; 11.; 10. |])

let test_gradient_profile_line () =
  let g = Topology.line 4 in
  let dist = Sp.all_pairs g in
  (* values 0, 1, 3, 6: distance-1 max gap 3 (2-3), distance-2 max 5 (1-3),
     distance-3 gap 6. *)
  let p = Metrics.gradient_profile ~dist [| 0.; 1.; 3.; 6. |] in
  Alcotest.(check (array (float 1e-9))) "profile" [| 3.; 5.; 6. |] p

let test_gradient_profile_dominates_local =
  QCheck.Test.make ~name:"profile.(0) = local skew" ~count:100
    QCheck.(pair (int_range 2 15) small_nat)
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let g = Topology.random_gnp ~n ~p:0.5 ~rng in
      let values = Array.init n (fun _ -> Prng.uniform rng ~lo:0. ~hi:10.) in
      let dist = Sp.all_pairs g in
      let p = Metrics.gradient_profile ~dist values in
      Float.abs (p.(0) -. Metrics.local_skew g values) < 1e-9)

let test_alive_masking () =
  let g = Topology.line 3 in
  let values = [| 0.; 100.; 1. |] in
  checkf "global masked" 1.
    (Metrics.global_skew_alive ~alive:(fun v -> v <> 1) values);
  checkf "local masked (no live-live edges)" 0.
    (Metrics.local_skew_alive g ~alive:(fun v -> v <> 1) values);
  checkf "all dead is zero" 0.
    (Metrics.global_skew_alive ~alive:(fun _ -> false) values)

let test_summarize_alive () =
  let g = Topology.line 3 in
  let samples =
    [| { Metrics.time = 10.; values = [| 0.; 50.; 2. |] } |]
  in
  let s = Metrics.summarize ~alive:(fun v -> v <> 1) g samples ~after:0. in
  checkf "masked max global" 2. s.Metrics.max_global;
  checkf "masked final global" 2. s.Metrics.final_global

let sample t values = { Metrics.time = t; values }

let test_summarize () =
  let g = Topology.line 2 in
  let samples =
    [|
      sample 0. [| 0.; 100. |] (* warm-up junk, must be ignored *);
      sample 10. [| 0.; 1. |];
      sample 20. [| 0.; 3. |];
      sample 30. [| 0.; 2. |];
    |]
  in
  let s = Metrics.summarize g samples ~after:5. in
  Alcotest.(check int) "samples used" 3 s.Metrics.samples_used;
  checkf "max local" 3. s.Metrics.max_local;
  checkf "max global" 3. s.Metrics.max_global;
  checkf "mean local" 2. s.Metrics.mean_local;
  checkf "final local" 2. s.Metrics.final_local

let test_summarize_requires_samples () =
  let g = Topology.line 2 in
  Alcotest.check_raises "empty"
    (Invalid_argument "Metrics.summarize: no samples after warm-up")
    (fun () ->
      ignore (Metrics.summarize g [| sample 0. [| 0.; 0. |] |] ~after:5.))

let test_summarize_opt () =
  let g = Topology.line 2 in
  let samples = [| sample 0. [| 0.; 7. |]; sample 10. [| 0.; 2. |] |] in
  (match Metrics.summarize_opt g samples ~after:5. with
  | Some s -> checkf "post-warm-up summary" 2. s.Metrics.max_global
  | None -> Alcotest.fail "expected a summary");
  match Metrics.summarize_opt g samples ~after:50. with
  | None -> ()
  | Some _ -> Alcotest.fail "expected None when nothing survives warm-up"

(* The reusable profile context must agree exactly with the one-shot
   gradient_profile on arbitrary graphs and values. *)
let test_profile_ctx_equivalence =
  QCheck.Test.make ~name:"gradient_profile_ctx = gradient_profile" ~count:100
    QCheck.(pair (int_range 2 15) small_nat)
    (fun (n, seed) ->
      let rng = Prng.create ~seed in
      let g = Topology.random_gnp ~n ~p:0.4 ~rng in
      let dist = Sp.all_pairs g in
      let ctx = Metrics.profile_ctx ~dist in
      let values = Array.init n (fun _ -> Prng.uniform rng ~lo:(-5.) ~hi:5.) in
      Metrics.gradient_profile_ctx ctx values
      = Metrics.gradient_profile ~dist values)

let test_max_gradient_profile () =
  let g = Topology.line 3 in
  let samples =
    [| sample 10. [| 0.; 1.; 0. |]; sample 20. [| 0.; 0.; 4. |] |]
  in
  let p = Metrics.max_gradient_profile g samples ~after:0. in
  Alcotest.(check (array (float 1e-9))) "pointwise max" [| 4.; 4. |] p

let suite =
  [
    Alcotest.test_case "global skew" `Quick test_global_skew;
    Alcotest.test_case "local skew" `Quick test_local_skew;
    Alcotest.test_case "real-time skew" `Quick test_real_time_skew;
    Alcotest.test_case "gradient profile" `Quick test_gradient_profile_line;
    Alcotest.test_case "summarize" `Quick test_summarize;
    Alcotest.test_case "summarize empty" `Quick test_summarize_requires_samples;
    Alcotest.test_case "summarize_opt" `Quick test_summarize_opt;
    Alcotest.test_case "max gradient profile" `Quick test_max_gradient_profile;
    Alcotest.test_case "alive masking" `Quick test_alive_masking;
    Alcotest.test_case "summarize alive" `Quick test_summarize_alive;
    QCheck_alcotest.to_alcotest test_local_le_global;
    QCheck_alcotest.to_alcotest test_gradient_profile_dominates_local;
    QCheck_alcotest.to_alcotest test_profile_ctx_equivalence;
  ]
