module Engine = Gcs_sim.Engine
module Trace = Gcs_sim.Trace
module Dm = Gcs_sim.Delay_model
module Topology = Gcs_graph.Topology
module Hc = Gcs_clock.Hardware_clock
module Prng = Gcs_util.Prng

let send_obs time = (time, Engine.Obs_send { src = 0; dst = 1; edge = 0; delay = 1. })

let test_ring_buffer_eviction () =
  let t = Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    let time, obs = send_obs (float_of_int i) in
    Trace.record t time obs
  done;
  Alcotest.(check int) "retained" 3 (Trace.length t);
  Alcotest.(check int) "total" 5 (Trace.total t);
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  Alcotest.(check (list (float 0.))) "oldest evicted" [ 3.; 4.; 5. ] times

let test_counts_by_kind () =
  let t = Trace.create () in
  Trace.record t 0. (Engine.Obs_send { src = 0; dst = 1; edge = 0; delay = 1. });
  Trace.record t 1. (Engine.Obs_drop { src = 0; dst = 1; edge = 0 });
  Trace.record t 2. (Engine.Obs_deliver { dst = 1; port = 0 });
  Trace.record t 3. (Engine.Obs_timer { node = 0; tag = 7 });
  Trace.record t 4. (Engine.Obs_rate_change { node = 0; rate = 1.01 });
  Trace.record t 5. (Engine.Obs_node_down { node = 0 });
  let c = Trace.counts t in
  Alcotest.(check int) "sends" 1 c.Trace.sends;
  Alcotest.(check int) "drops" 1 c.Trace.drops;
  Alcotest.(check int) "delivers" 1 c.Trace.delivers;
  Alcotest.(check int) "timers" 1 c.Trace.timers;
  Alcotest.(check int) "rate changes" 1 c.Trace.rate_changes;
  Alcotest.(check int) "fault events" 1 c.Trace.fault_events

(* Wraparound exactly at the capacity boundary: the ring is full but
   nothing has been evicted yet, then one more record evicts the oldest. *)
let test_ring_exact_capacity () =
  let t = Trace.create ~capacity:4 () in
  for i = 1 to 4 do
    let time, obs = send_obs (float_of_int i) in
    Trace.record t time obs
  done;
  Alcotest.(check int) "retained at boundary" 4 (Trace.length t);
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  Alcotest.(check (list (float 0.))) "all retained" [ 1.; 2.; 3.; 4. ] times;
  let time, obs = send_obs 5. in
  Trace.record t time obs;
  let times = List.map (fun e -> e.Trace.time) (Trace.entries t) in
  Alcotest.(check (list (float 0.))) "oldest evicted" [ 2.; 3.; 4.; 5. ] times

let test_ring_capacity_one () =
  let t = Trace.create ~capacity:1 () in
  for i = 1 to 3 do
    let time, obs = send_obs (float_of_int i) in
    Trace.record t time obs
  done;
  Alcotest.(check int) "retained" 1 (Trace.length t);
  Alcotest.(check int) "total" 3 (Trace.total t);
  match Trace.entries t with
  | [ e ] -> Alcotest.(check (float 0.)) "newest kept" 3. e.Trace.time
  | _ -> Alcotest.fail "expected exactly one entry"

let test_clear () =
  let t = Trace.create () in
  Trace.record t 0. (Engine.Obs_timer { node = 0; tag = 0 });
  Trace.clear t;
  Alcotest.(check int) "length" 0 (Trace.length t);
  Alcotest.(check int) "total" 0 (Trace.total t);
  Alcotest.(check int) "counts" 0 (Trace.counts t).Trace.timers

let test_attached_to_engine () =
  (* One message 0 -> 1: trace must see the send and the delivery. *)
  let graph = Topology.line 2 in
  let clocks = Array.init 2 (fun _ -> Hc.create ~t0:0. ~rate:1. ()) in
  let engine =
    Engine.create ~graph ~clocks
      ~delays:(Dm.fixed (Dm.bounds ~d_min:1. ~d_max:1.))
      ~rng:(Prng.create ~seed:1) ~t0:0.
      ~make_node:(fun v ->
        {
          Engine.on_init = (fun api -> if v = 0 then api.Engine.send ~port:0 ());
          on_message = (fun _ ~port:_ () -> ());
          on_timer = (fun _ ~tag:_ -> ());
        })
  in
  let t = Trace.create () in
  Trace.attach t engine;
  Engine.run_until engine 5.;
  Alcotest.(check int) "send observed" 1 (Trace.counts t).Trace.sends;
  Alcotest.(check int) "deliver observed" 1 (Trace.counts t).Trace.delivers;
  match Trace.entries t with
  | [ { Trace.obs = Engine.Obs_send { delay; _ }; time = t0 };
      { Trace.obs = Engine.Obs_deliver _; time = t1 } ] ->
      Alcotest.(check (float 1e-9)) "delivery lag" delay (t1 -. t0)
  | _ -> Alcotest.fail "unexpected trace shape"

let test_drop_observed () =
  let graph = Topology.line 2 in
  let clocks = Array.init 2 (fun _ -> Hc.create ~t0:0. ~rate:1. ()) in
  let delays =
    Dm.with_loss (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 1.)
      (Dm.fixed (Dm.bounds ~d_min:1. ~d_max:1.))
  in
  let engine =
    Engine.create ~graph ~clocks ~delays ~rng:(Prng.create ~seed:1) ~t0:0.
      ~make_node:(fun v ->
        {
          Engine.on_init = (fun api -> if v = 0 then api.Engine.send ~port:0 ());
          on_message = (fun _ ~port:_ () -> ());
          on_timer = (fun _ ~tag:_ -> ());
        })
  in
  let t = Trace.create () in
  Trace.attach t engine;
  Engine.run_until engine 5.;
  Alcotest.(check int) "drop observed" 1 (Trace.counts t).Trace.drops;
  Alcotest.(check int) "nothing delivered" 0 (Trace.counts t).Trace.delivers;
  Alcotest.(check int) "engine counter" 1 (Engine.messages_dropped engine)

let test_pp_renders_lines () =
  let t = Trace.create () in
  Trace.record t 0. (Engine.Obs_timer { node = 0; tag = 1 });
  Trace.record t 1. (Engine.Obs_deliver { dst = 1; port = 0 });
  let buf = Buffer.create 64 in
  let ppf = Format.formatter_of_buffer buf in
  Trace.pp ppf t;
  Format.pp_print_flush ppf ();
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (Buffer.contents buf))
  in
  Alcotest.(check int) "two lines" 2 (List.length lines)

let test_entry_formatting () =
  let entry = { Trace.time = 1.5; obs = Engine.Obs_timer { node = 3; tag = 2 } } in
  let s = Trace.entry_to_string entry in
  Alcotest.(check bool) "mentions node" true
    (String.length s > 0 && String.contains s '3')

let suite =
  [
    Alcotest.test_case "ring eviction" `Quick test_ring_buffer_eviction;
    Alcotest.test_case "counts by kind" `Quick test_counts_by_kind;
    Alcotest.test_case "ring exact capacity" `Quick test_ring_exact_capacity;
    Alcotest.test_case "ring capacity one" `Quick test_ring_capacity_one;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "attach to engine" `Quick test_attached_to_engine;
    Alcotest.test_case "drop observed" `Quick test_drop_observed;
    Alcotest.test_case "formatting" `Quick test_entry_formatting;
    Alcotest.test_case "pp" `Quick test_pp_renders_lines;
  ]
