(* Tests for the gcs.check conformance harness: online invariant
   monitors, the delta-debugging shrinker, .repro artifacts, and the
   conformance battery. *)

module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Topology = Gcs_graph.Topology
module Fault_plan = Gcs_sim.Fault_plan
module Search = Gcs_adversary.Search
module Monitor = Gcs_check.Monitor
module Check_run = Gcs_check.Check_run
module Shrink = Gcs_check.Shrink
module Repro = Gcs_check.Repro
module Key = Gcs_store.Key

let spec = Spec.make ()

let plan s =
  match Fault_plan.of_string s with
  | Ok p -> p
  | Error e -> Alcotest.failf "bad plan %S: %s" s e

let key ?fault_plan ?(topology = Topology.Ring 8)
    ?(algo = Algorithm.Gradient_sync) ?(horizon = 100.) ?(seed = 42) () =
  Runner.store_key ?fault_plan ~spec ~topology ~algo ~horizon ~seed ()

let config k =
  match Runner.config_of_key k with
  | Ok c -> c
  | Error e -> Alcotest.failf "config_of_key: %s" e

let algo_of_key k =
  match Algorithm.kind_of_string k.Key.algo with
  | Ok a -> a
  | Error e -> Alcotest.failf "algo_of_string: %s" e

let kind = Alcotest.testable
    (fun ppf k -> Format.pp_print_string ppf (Monitor.kind_name k))
    ( = )

let violation_of (checked : Check_run.checked) =
  match checked.Check_run.violation with
  | Some v -> v
  | None -> Alcotest.fail "expected a violation, run was clean"

(* A negative clock jump is exactly what the monotonicity monitor must
   catch: the engine observation fires before the handler, so detection
   lands on the node's next event after the jump. *)
let test_monitor_detects_jump () =
  let k = key ~fault_plan:(plan "jump@50:node=3:delta=-5") () in
  let v = violation_of (Check_run.run (config k)) in
  Alcotest.check kind "kind" Monitor.Monotonic v.Monitor.kind;
  Alcotest.(check int) "node" 3 v.Monitor.node;
  Alcotest.(check bool) "after the jump" true (v.Monitor.time >= 50.);
  Alcotest.(check bool) "went backwards" true
    (v.Monitor.observed < v.Monitor.bound)

let test_monitor_detects_rate_fault () =
  let k = key ~fault_plan:(plan "rate@25:node=2:rate=2.0") () in
  let v = violation_of (Check_run.run (config k)) in
  Alcotest.check kind "kind" Monitor.Rate v.Monitor.kind;
  Alcotest.(check int) "node" 2 v.Monitor.node;
  Alcotest.(check bool) "rate above envelope" true
    (v.Monitor.observed > v.Monitor.bound)

(* Flight-recorder promise: monitoring a conforming run reports nothing
   and perturbs nothing — the monitored summary is identical to the bare
   run's. *)
let test_clean_run_identical_summary () =
  let k = key () in
  let bare = Runner.run (config k) in
  let monitor =
    Check_run.default_spec ~skew_bound:10. spec Algorithm.Gradient_sync
  in
  let checked = Check_run.run ~monitor (config k) in
  (match checked.Check_run.violation with
  | None -> ()
  | Some v -> Alcotest.failf "clean run violated: %s" (Monitor.violation_to_string v));
  Alcotest.(check bool) "events were checked" true
    (checked.Check_run.events_checked > 0);
  Alcotest.(check bool) "summary identical" true
    (bare.Runner.summary = checked.Check_run.result.Runner.summary)

(* Abort mode must find the *same* first violation as record mode (the
   run is deterministic, the monitor sees the same event stream) while
   processing strictly fewer events afterwards. *)
let test_abort_stops_early () =
  let k = key ~fault_plan:(plan "jump@30:node=1:delta=-4") ~horizon:200. () in
  let record = Check_run.run (config k) in
  let monitor =
    Check_run.default_spec ~mode:`Abort spec Algorithm.Gradient_sync
  in
  let abort = Check_run.run ~monitor (config k) in
  Alcotest.(check bool) "same first violation" true
    (record.Check_run.violation = abort.Check_run.violation);
  (* The monitor stops *checking* at the first violation in both modes;
     abort additionally stops the *engine*, so the run itself dispatches
     fewer events. *)
  Alcotest.(check bool) "abort dispatched fewer events" true
    (abort.Check_run.result.Runner.dispatches
    < record.Check_run.result.Runner.dispatches)

let test_skew_monitor_fires () =
  let monitor =
    Check_run.default_spec ~skew_bound:1e-9 spec Algorithm.Gradient_sync
  in
  let v = violation_of (Check_run.run ~monitor (config (key ()))) in
  Alcotest.check kind "kind" Monitor.Skew v.Monitor.kind;
  (match v.Monitor.peer with
  | Some p -> Alcotest.(check bool) "pair ordered" true (v.Monitor.node < p)
  | None -> Alcotest.fail "skew violation must name a pair")

(* [config_of_key] must be a true inverse of [store_key] over the
   describable subset: rebuilding the config from the key reproduces the
   original run bit-for-bit. *)
let test_config_of_key_roundtrip () =
  let graph =
    Topology.build (Topology.Ring 8)
      ~rng:(Gcs_util.Prng.create ~seed:(42 lxor 0x5eed))
  in
  let direct =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:100. ~seed:42
      graph
  in
  let rebuilt = config (key ()) in
  Alcotest.(check bool) "same summary" true
    ((Runner.run direct).Runner.summary = (Runner.run rebuilt).Runner.summary)

(* The ISSUE's acceptance bar: on the seeded violating configuration the
   shrinker must cut the size measure by at least half. *)
let test_shrink_halves_seeded_config () =
  let fault_plan =
    plan
      "partition@20:cut=5;heal@40:cut=5;dup@10..60:all:p=0.3;jump@50:node=3:delta=-5"
  in
  let k = key ~topology:(Topology.Ring 32) ~horizon:200. ~fault_plan () in
  let monitor = Check_run.default_spec spec Algorithm.Gradient_sync in
  let c0 = { Shrink.key = k; segment_len = 0.; moves = [] } in
  match Shrink.shrink ~monitor c0 with
  | None -> Alcotest.fail "seeded config did not violate"
  | Some o ->
      Alcotest.(check bool) "reduced by >= 50%" true
        (2 * o.Shrink.final_size <= o.Shrink.initial_size);
      Alcotest.check kind "violation kind preserved" Monitor.Monotonic
        o.Shrink.violation.Monitor.kind;
      (* The minimized candidate is replayable on its own: re-running it
         cold reproduces the recorded violation exactly. *)
      let fresh =
        Check_run.run
          ~monitor:{ monitor with Monitor.mode = `Record }
          ~moves:o.Shrink.minimized.Shrink.moves
          ~segment_len:o.Shrink.minimized.Shrink.segment_len
          (config o.Shrink.minimized.Shrink.key)
      in
      Alcotest.(check bool) "minimized violation reproduces" true
        (fresh.Check_run.violation = Some o.Shrink.violation)

(* Shrinker soundness, property-tested over seeded violating configs: the
   minimized candidate still violates with the same kind, is strictly no
   larger, and the greedy loop terminates within its budget. *)
let prop_shrink_sound =
  QCheck.Test.make ~name:"shrink: still violates, no larger, terminates"
    ~count:6 QCheck.small_nat (fun i ->
      let n = 6 + (i mod 5) in
      let node = i mod n in
      let at = 20. +. float_of_int (i mod 3) *. 10. in
      let horizon = 60. +. float_of_int (i mod 3) *. 20. in
      let fault_plan =
        plan
          (Printf.sprintf "dup@5..30:all:p=0.4;jump@%g:node=%d:delta=-%d" at
             node
             (2 + (i mod 3)))
      in
      let k =
        key ~topology:(Topology.Ring n) ~horizon ~seed:(100 + i) ~fault_plan ()
      in
      let monitor = Check_run.default_spec spec Algorithm.Gradient_sync in
      let c0 = { Shrink.key = k; segment_len = 0.; moves = [] } in
      match Shrink.shrink ~max_evaluations:120 ~monitor c0 with
      | None -> QCheck.Test.fail_report "seeded config did not violate"
      | Some o ->
          if o.Shrink.final_size > o.Shrink.initial_size then
            QCheck.Test.fail_report "minimized candidate grew";
          if o.Shrink.evaluations > 120 then
            QCheck.Test.fail_report "budget exceeded";
          let fresh =
            Check_run.run ~monitor (config o.Shrink.minimized.Shrink.key)
          in
          (match fresh.Check_run.violation with
          | Some v when v.Monitor.kind = o.Shrink.violation.Monitor.kind -> ()
          | Some _ -> QCheck.Test.fail_report "violation kind changed"
          | None -> QCheck.Test.fail_report "minimized candidate ran clean");
          true)

let test_moves_codec () =
  let all = Search.all_moves in
  let s = Repro.moves_to_string all in
  (match Repro.moves_of_string s with
  | Ok ms -> Alcotest.(check bool) "roundtrip" true (ms = all)
  | Error e -> Alcotest.failf "decode: %s" e);
  (match Repro.moves_of_string "" with
  | Ok [] -> ()
  | Ok _ | Error _ -> Alcotest.fail "empty string is the empty sequence");
  match Repro.moves_of_string "XQ" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "bad move must not parse"

let test_repro_roundtrip () =
  let k = key ~fault_plan:(plan "jump@50:node=3:delta=-5") () in
  let v = violation_of (Check_run.run (config k)) in
  let t =
    {
      Repro.monitor =
        Check_run.default_spec ~skew_bound:3.25 ~after:25.
          spec Algorithm.Gradient_sync;
      expected = v;
      segment_len = 20.;
      moves =
        [
          { Search.fast_side = `Left; bias = `Forward };
          { Search.fast_side = `None; bias = `Neutral };
        ];
      key = k;
    }
  in
  match Repro.of_string (Repro.to_string t) with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok t' ->
      Alcotest.(check bool) "roundtrip" true (t = t');
      Alcotest.(check string) "re-encoding is canonical" (Repro.to_string t)
        (Repro.to_string t')

let test_replay_reproduces () =
  let k = key ~fault_plan:(plan "jump@50:node=3:delta=-5") () in
  let monitor = Check_run.default_spec spec Algorithm.Gradient_sync in
  let v = violation_of (Check_run.run ~monitor (config k)) in
  let t =
    { Repro.monitor; expected = v; segment_len = 0.; moves = []; key = k }
  in
  (match Repro.replay t with
  | Ok Repro.Reproduced -> ()
  | Ok (Repro.Diverged v') ->
      Alcotest.failf "diverged: %s" (Monitor.violation_to_string v')
  | Ok Repro.Missing -> Alcotest.fail "replay ran clean"
  | Error e -> Alcotest.failf "replay: %s" e);
  (* A tampered expectation must be flagged, not blindly accepted. *)
  let tampered = { t with Repro.expected = { v with Monitor.node = 99 } } in
  match Repro.replay tampered with
  | Ok (Repro.Diverged _) -> ()
  | Ok Repro.Reproduced -> Alcotest.fail "tampered repro reproduced"
  | Ok Repro.Missing -> Alcotest.fail "tampered replay ran clean"
  | Error e -> Alcotest.failf "replay: %s" e

(* Shared Byzantine scenario: plain gradient on ring:16 under the battery's
   own adversarial plan (an equivocating liar), monitored against the
   weakened containment bound. Computed once, forced by several tests. *)
let containment_scenario =
  lazy
    (let aspec = Check_run.attack_spec () in
     let horizon = 300. in
     let fault_plan =
       Check_run.byz_plan ~seed:7920 ~horizon ~nodes:16 ~f:1
         ~kappa:aspec.Spec.kappa
     in
     let byz = Fault_plan.byzantine_nodes fault_plan in
     let k =
       Runner.store_key ~fault_plan ~spec:aspec ~topology:(Topology.Ring 16)
         ~algo:Algorithm.Gradient_sync ~horizon ~seed:7920 ()
     in
     let monitor =
       Check_run.default_spec ~byzantine:byz
         ~containment_bound:(Check_run.containment_bound aspec ~f:1)
         aspec Algorithm.Gradient_sync
     in
     (k, monitor, byz, violation_of (Check_run.run ~monitor (config k))))

(* Plain gradient chases the equivocating liar across the containment
   bound, and the violation is between two *correct* nodes — the monitor
   never scores a pair against the liar's own clock. *)
let test_containment_monitor_fires () =
  let _, _, byz, v = Lazy.force containment_scenario in
  Alcotest.check kind "kind" Monitor.Containment v.Monitor.kind;
  Alcotest.(check bool) "plan has a liar" true (byz <> []);
  let peer =
    match v.Monitor.peer with
    | Some p -> p
    | None -> Alcotest.fail "containment violation must name a pair"
  in
  List.iter
    (fun liar ->
      Alcotest.(check bool) "violating pair is correct-correct" true
        (v.Monitor.node <> liar && peer <> liar))
    byz

(* The Byzantine monitor fields survive the .repro text codec, and the
   re-encoding is canonical (byte-stable artifacts). *)
let test_repro_roundtrip_byzantine () =
  let k, monitor, _, v = Lazy.force containment_scenario in
  let t =
    { Repro.monitor; expected = v; segment_len = 0.; moves = []; key = k }
  in
  match Repro.of_string (Repro.to_string t) with
  | Error e -> Alcotest.failf "of_string: %s" e
  | Ok t' ->
      Alcotest.(check bool) "roundtrip" true (t = t');
      Alcotest.(check string) "re-encoding is canonical" (Repro.to_string t)
        (Repro.to_string t');
      Alcotest.(check (list int)) "byzantine preserved"
        t.Repro.monitor.Monitor.byzantine t'.Repro.monitor.Monitor.byzantine

(* The violation replays through the ordinary pipeline: key + monitor
   rebuild the run (liar included) and reproduce the exact violation. *)
let test_containment_violation_replays () =
  let k, monitor, _, v = Lazy.force containment_scenario in
  let t =
    { Repro.monitor; expected = v; segment_len = 0.; moves = []; key = k }
  in
  match Repro.replay t with
  | Ok Repro.Reproduced -> ()
  | Ok (Repro.Diverged v') ->
      Alcotest.failf "diverged: %s" (Monitor.violation_to_string v')
  | Ok Repro.Missing -> Alcotest.fail "replay ran clean"
  | Error e -> Alcotest.failf "replay: %s" e

(* The containment acceptance bar: the ft gradient survives the full
   adversarial battery — line, ring, and grid, under f = 1 and f = 2 liars
   with 20x-kappa lies — with zero violations. *)
let test_ft_containment_battery_clean () =
  List.iter
    (fun f ->
      let cells =
        Check_run.containment_battery ~jobs:2 ~f
          ~topologies:[ Topology.Line 8; Topology.Ring 16 ]
          ~seeds:2 ~horizon:300. ()
      in
      Alcotest.(check int) "grid size" 4 (List.length cells);
      List.iter
        (fun c ->
          Alcotest.(check bool) "events were checked" true
            (c.Check_run.events_checked > 0))
        cells;
      match Check_run.violations cells with
      | [] -> ()
      | c :: _ ->
          let v = Option.get c.Check_run.violation in
          Alcotest.failf "f=%d: %s seed %d: %s" f
            (Topology.spec_name c.Check_run.key.Key.topology)
            c.Check_run.key.Key.seed
            (Monitor.violation_to_string v))
    [ 1; 2 ]

(* The deliberate-failure half of the same battery: plain gradient run
   through containment_battery violates, and the failing cell's key +
   monitor round-trip into a reproducing artifact. *)
let test_plain_gradient_battery_violates () =
  let cells =
    Check_run.containment_battery ~algos:[ Algorithm.Gradient_sync ] ~f:1
      ~base_seed:7920 ~topologies:[ Topology.Ring 16 ] ~seeds:1 ~horizon:300.
      ()
  in
  match Check_run.violations cells with
  | [] -> Alcotest.fail "plain gradient survived the adversarial liar"
  | c :: _ ->
      let v = Option.get c.Check_run.violation in
      Alcotest.check kind "kind" Monitor.Containment v.Monitor.kind;
      let t =
        {
          Repro.monitor = c.Check_run.monitor;
          expected = v;
          segment_len = 0.;
          moves = [];
          key = c.Check_run.key;
        }
      in
      (match Repro.replay t with
      | Ok Repro.Reproduced -> ()
      | _ -> Alcotest.fail "violating battery cell did not replay")

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* The committed minimized fixtures: each must parse, re-encode to the
   exact committed bytes, replay to [Reproduced], and render the exact
   committed report. This is the CI contract for repro artifacts. *)
let check_fixture name =
  let raw = read_file (Filename.concat "fixtures" (name ^ ".repro")) in
  match Repro.of_string raw with
  | Error e -> Alcotest.failf "%s: %s" name e
  | Ok t ->
      Alcotest.(check string) "artifact bytes are canonical" raw
        (Repro.to_string t);
      let outcome = Repro.replay t in
      (match outcome with
      | Ok Repro.Reproduced -> ()
      | Ok (Repro.Diverged v) ->
          Alcotest.failf "%s diverged: %s" name (Monitor.violation_to_string v)
      | Ok Repro.Missing -> Alcotest.failf "%s ran clean" name
      | Error e -> Alcotest.failf "%s: %s" name e);
      Alcotest.(check string) "report bytes"
        (read_file (Filename.concat "fixtures" (name ^ ".report")))
        (Repro.report t outcome)

let test_golden_monotonic () = check_fixture "monotonic-jump"
let test_golden_rate () = check_fixture "rate-fault"
let test_golden_byzantine () = check_fixture "byzantine-containment"
let test_golden_dynamic_edge () = check_fixture "dynamic-edge"

(* The conformance battery as a tier-1 gate: every registered algorithm,
   over a randomized topology mix, deterministic seeds, and benign fault
   plans on odd seed indices, must pass its own expected envelope. *)
let test_battery_conforms () =
  let cells =
    Check_run.battery ~jobs:2
      ~topologies:
        [ Topology.Ring 6; Topology.Line 5; Topology.Random_gnp (8, 0.5) ]
      ~seeds:2 ~horizon:60. ()
  in
  Alcotest.(check int) "grid size"
    (3 * List.length Algorithm.all_kinds * 2)
    (List.length cells);
  match Check_run.violations cells with
  | [] -> ()
  | c :: _ ->
      let v = Option.get c.Check_run.violation in
      Alcotest.failf "%s %s seed %d: %s"
        (Topology.spec_name c.Check_run.key.Key.topology)
        c.Check_run.key.Key.algo c.Check_run.key.Key.seed
        (Monitor.violation_to_string v)

(* Battery results are a pure function of the grid — sharding across
   domains must not change a single cell. *)
let test_battery_jobs_invariant () =
  let run jobs =
    Check_run.battery ~jobs ~topologies:[ Topology.Ring 6 ] ~seeds:2
      ~horizon:40. ()
  in
  Alcotest.(check bool) "jobs=1 = jobs=4" true (run 1 = run 4)

(* Battery cells violate like any other config: seeding a clock-rate
   fault through a cell's key yields a Rate violation that the cell's own
   monitor catches, and the key round-trips into a working repro. *)
let test_battery_cell_violation_is_reproable () =
  let fault_plan = plan "rate@20:node=1:rate=2.0" in
  let k = key ~topology:(Topology.Line 5) ~horizon:60. ~fault_plan () in
  let monitor = Check_run.default_spec spec (algo_of_key k) in
  let v = violation_of (Check_run.run ~monitor (config k)) in
  let t =
    { Repro.monitor; expected = v; segment_len = 0.; moves = []; key = k }
  in
  match Repro.replay t with
  | Ok Repro.Reproduced -> ()
  | _ -> Alcotest.fail "battery-style cell did not replay"

let suite =
  [
    Alcotest.test_case "monitor detects negative jump" `Quick
      test_monitor_detects_jump;
    Alcotest.test_case "monitor detects rate fault" `Quick
      test_monitor_detects_rate_fault;
    Alcotest.test_case "clean run: no violation, identical summary" `Quick
      test_clean_run_identical_summary;
    Alcotest.test_case "abort mode stops early, same violation" `Quick
      test_abort_stops_early;
    Alcotest.test_case "skew monitor reports a pair" `Quick
      test_skew_monitor_fires;
    Alcotest.test_case "config_of_key inverts store_key" `Quick
      test_config_of_key_roundtrip;
    Alcotest.test_case "shrinker halves the seeded config" `Quick
      test_shrink_halves_seeded_config;
    QCheck_alcotest.to_alcotest prop_shrink_sound;
    Alcotest.test_case "move codec roundtrip" `Quick test_moves_codec;
    Alcotest.test_case "repro encoding roundtrip" `Quick test_repro_roundtrip;
    Alcotest.test_case "replay reproduces, tampering diverges" `Quick
      test_replay_reproduces;
    Alcotest.test_case "golden fixture: monotonic jump" `Quick
      test_golden_monotonic;
    Alcotest.test_case "golden fixture: rate fault" `Quick test_golden_rate;
    Alcotest.test_case "golden fixture: byzantine containment" `Quick
      test_golden_byzantine;
    Alcotest.test_case "golden fixture: dynamic edge age" `Quick
      test_golden_dynamic_edge;
    Alcotest.test_case "conformance battery passes" `Quick
      test_battery_conforms;
    Alcotest.test_case "battery is jobs-invariant" `Quick
      test_battery_jobs_invariant;
    Alcotest.test_case "violating cell round-trips to a repro" `Quick
      test_battery_cell_violation_is_reproable;
    Alcotest.test_case "containment monitor fires on plain gradient" `Quick
      test_containment_monitor_fires;
    Alcotest.test_case "repro roundtrip with byzantine fields" `Quick
      test_repro_roundtrip_byzantine;
    Alcotest.test_case "containment violation replays" `Quick
      test_containment_violation_replays;
    Alcotest.test_case "ft containment battery clean (f=1,2)" `Quick
      test_ft_containment_battery_clean;
    Alcotest.test_case "plain gradient violates containment" `Quick
      test_plain_gradient_battery_violates;
  ]
