(* Byte-identity of conservative region-parallel execution.

   The region-parallel engine is an execution strategy, not a semantics:
   for every supported configuration and every domain count it must
   reproduce the serial engine's results *bit for bit* — summaries,
   samples, counters, and the full observation stream. These tests pin
   that equivalence on the golden configs (every registered algorithm,
   plus the faulted and Byzantine golden rows) and on randomized
   faulted/Byzantine configurations, at several region counts.

   Each parallel run asserts it actually executed with [regions > 1]
   (via [Engine.regions]) so a silent serial fallback can never
   masquerade as a passing identity check. *)

module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Engine = Gcs_sim.Engine
module Fault_plan = Gcs_sim.Fault_plan
module Capture = Gcs_obs.Capture
module Event_log = Gcs_obs.Event_log
module Scheduler = Gcs_util.Scheduler

let region_counts = [ 2; 3; 4 ]

(* The golden config of test_golden.ml: ring:8, kappa 0.5, split extreme
   drift, horizon 80, seed 7. *)
let golden_cfg ?fault_plan ?obs ?(scheduler = Scheduler.Binary_heap)
    ?(regions = 1) algo =
  Runner.config
    ~spec:(Spec.make ~kappa:0.5 ())
    ~algo
    ~drift_of_node:(fun v ->
      if v < 4 then Drift.Extreme_high else Drift.Extreme_low)
    ~horizon:80. ~seed:7 ?fault_plan ?obs ~scheduler ~regions
    (Topology.ring 8)

let plan_of_string s =
  match Fault_plan.of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan did not parse: %s (%s)" s msg

let faulted_plan () =
  plan_of_string
    "partition@20:cut=0; heal@40:cut=0; crash@50:node=5; \
     recover@60:node=5:wipe; corrupt@30..45:p=0.3:mag=1"

let byzantine_plan () =
  plan_of_string "byz@20..60:node=5:equiv=3; byz@30..50:node=2:mag=2"

(* Run a config and also report the engine's *effective* region count. *)
let run_with cfg =
  let live = Runner.prepare cfg in
  let eff = Engine.regions live.Runner.engine in
  (eff, Runner.complete live)

(* Exact equality — no tolerance anywhere: identity means identical bits.
   [Runner.outcome] flattens the summary, message/drop/jump counters, and
   the fault report into a closure-free record, so structural equality
   covers all of it; samples and event counts are checked on top. *)
let check_identical label (serial : Runner.result) (par : Runner.result) =
  Alcotest.(check bool)
    (label ^ ": outcome identical")
    true
    (Runner.outcome serial = Runner.outcome par);
  Alcotest.(check bool)
    (label ^ ": samples identical")
    true
    (serial.Runner.samples = par.Runner.samples);
  Alcotest.(check int) (label ^ ": events") serial.Runner.events
    par.Runner.events;
  Alcotest.(check int) (label ^ ": dispatches") serial.Runner.dispatches
    par.Runner.dispatches

let test_golden_rows_identical () =
  let rows =
    List.map (fun algo -> (Algorithm.kind_name algo, algo, None))
      Algorithm.all_kinds
    @ [
        ("gradient+faults", Algorithm.Gradient_sync, Some (faulted_plan ()));
        ( "ft-gradient+byz",
          Algorithm.Ft_gradient_sync 1,
          Some (byzantine_plan ()) );
      ]
  in
  List.iter
    (fun (name, algo, fault_plan) ->
      let _, serial = run_with (golden_cfg ?fault_plan algo) in
      List.iter
        (fun regions ->
          let label = Printf.sprintf "%s x%d" name regions in
          let eff, par = run_with (golden_cfg ?fault_plan ~regions algo) in
          Alcotest.(check int) (label ^ ": ran parallel") regions eff;
          check_identical label serial par)
        region_counts)
    rows

(* The full observation stream — rendered through the event log, the same
   bytes the trace exporter and conformance monitors consume — must be
   identical too: not just the same multiset of observations, but the same
   serial order. *)
let test_event_log_identical () =
  let obs = { Capture.none with Capture.events = true } in
  List.iter
    (fun (name, plan) ->
      let log_string r =
        match r.Runner.obs.Capture.event_log with
        | Some log -> Event_log.to_string log
        | None -> Alcotest.fail "event log missing"
      in
      let _, serial =
        run_with (golden_cfg ~fault_plan:(plan ()) ~obs Algorithm.Gradient_sync)
      in
      let sbytes = log_string serial in
      Alcotest.(check bool) (name ^ ": serial log nonempty") true
        (String.length sbytes > 0);
      List.iter
        (fun regions ->
          let eff, par =
            run_with
              (golden_cfg ~fault_plan:(plan ()) ~obs ~regions
                 Algorithm.Gradient_sync)
          in
          Alcotest.(check int)
            (Printf.sprintf "%s x%d: ran parallel" name regions)
            regions eff;
          Alcotest.(check bool)
            (Printf.sprintf "%s x%d: event log byte-identical" name regions)
            true
            (String.equal sbytes (log_string par)))
        region_counts)
    [ ("faulted", faulted_plan); ("byzantine", byzantine_plan) ]

(* The calendar queue must be just as invisible as the region partition:
   same golden run, every (scheduler x regions) combination, same bits. *)
let test_scheduler_kind_identical () =
  let _, reference = run_with (golden_cfg Algorithm.Gradient_sync) in
  List.iter
    (fun regions ->
      let label = Printf.sprintf "calendar x%d" regions in
      let _, r =
        run_with (golden_cfg ~scheduler:Scheduler.Calendar ~regions
                    Algorithm.Gradient_sync)
      in
      check_identical label reference r)
    (1 :: region_counts)

(* Fallback gating: configurations the parallel engine cannot reproduce
   bit-for-bit must resolve to one region; plain ones must not. *)
let test_fallback_gates () =
  let eff cfg = fst (run_with cfg) in
  Alcotest.(check int) "plain config runs parallel" 4
    (eff (golden_cfg ~regions:4 Algorithm.Gradient_sync));
  Alcotest.(check int) "profiled run falls back to serial" 1
    (eff
       (golden_cfg ~regions:4
          ~obs:{ Capture.none with Capture.profile = true }
          Algorithm.Gradient_sync));
  let controlled =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~delay_kind:Runner.Controlled_delays ~horizon:20. ~seed:7 ~regions:4
      (Topology.ring 8)
  in
  Alcotest.(check int) "controlled delays fall back to serial" 1
    (eff controlled);
  let byz_lossy =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~algo:(Algorithm.Ft_gradient_sync 1)
      ~loss:(Runner.Uniform_loss 0.1) ~horizon:20. ~seed:7 ~regions:4
      ~fault_plan:(byzantine_plan ()) (Topology.ring 8)
  in
  Alcotest.(check int) "byzantine + loss falls back to serial" 1
    (eff byz_lossy);
  let byz_lossless =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~algo:(Algorithm.Ft_gradient_sync 1)
      ~horizon:20. ~seed:7 ~regions:4 ~fault_plan:(byzantine_plan ())
      (Topology.ring 8)
  in
  Alcotest.(check int) "byzantine without loss runs parallel" 4
    (eff byz_lossless)

(* ------------------------------------------------------------------ *)
(* Randomized identity: arbitrary faulted and Byzantine configurations  *)
(* across topologies, seeds, loss laws, and domain counts.              *)
(* ------------------------------------------------------------------ *)

type scenario = {
  topo : int; (* 0: ring, 1: grid, 2: line *)
  nodes : int;
  seed : int;
  algo_ft : bool;
  loss : bool;
  plan : int; (* 0: none, 1: faulted battery, 2: byzantine *)
  regions : int;
}

let scenario_gen =
  QCheck.Gen.(
    map
      (fun (topo, nodes, seed, algo_ft, loss, plan, regions) ->
        { topo; nodes; seed; algo_ft; loss; plan; regions })
      (tup7 (int_range 0 2) (int_range 6 14) (int_range 0 10_000) bool bool
         (int_range 0 2) (int_range 2 4)))

let scenario_print s =
  Printf.sprintf "{topo=%d; nodes=%d; seed=%d; ft=%b; loss=%b; plan=%d; x%d}"
    s.topo s.nodes s.seed s.algo_ft s.loss s.plan s.regions

let scenario_cfg s ~regions =
  let graph =
    match s.topo with
    | 0 -> Topology.ring s.nodes
    | 1 -> Topology.grid ~rows:2 ~cols:((s.nodes + 1) / 2)
    | _ -> Topology.line s.nodes
  in
  let fault_plan =
    match s.plan with
    | 0 -> None
    | 1 ->
        Some
          (plan_of_string
             (Printf.sprintf
                "partition@10:edges=0-1; heal@25:edges=0-1; crash@15:node=%d; \
                 recover@30:node=%d:wipe; corrupt@5..20:p=0.25:mag=0.5; \
                 dup@10..30:p=0.2; reorder@12..28:p=0.2:extra=0.7"
                (s.nodes - 1) (s.nodes - 1)))
    | _ ->
        Some
          (plan_of_string
             (Printf.sprintf "byz@5..30:node=1:equiv=2; byz@10..25:node=%d:mag=1"
                (s.nodes - 2)))
  in
  let loss =
    if s.loss then Runner.Uniform_loss 0.15 else Runner.No_loss
  in
  Runner.config
    ~spec:(Spec.make ~kappa:0.5 ())
    ~algo:(if s.algo_ft then Algorithm.Ft_gradient_sync 1
           else Algorithm.Gradient_sync)
    ~drift_of_node:(fun v -> if v mod 2 = 0 then Drift.Extreme_high
                             else Drift.Random_constant)
    ~loss ~horizon:40. ~seed:s.seed ?fault_plan ~regions graph

let prop_random_configs_identical =
  QCheck.Test.make ~name:"random faulted/byzantine configs: parallel = serial"
    ~count:40
    (QCheck.make ~print:scenario_print scenario_gen)
    (fun s ->
      let _, serial = run_with (scenario_cfg s ~regions:1) in
      let _, par = run_with (scenario_cfg s ~regions:s.regions) in
      Runner.outcome serial = Runner.outcome par
      && serial.Runner.samples = par.Runner.samples
      && serial.Runner.events = par.Runner.events
      && serial.Runner.dispatches = par.Runner.dispatches)

let suite =
  [
    Alcotest.test_case "golden rows identical at 2/3/4 regions" `Quick
      test_golden_rows_identical;
    Alcotest.test_case "event log byte-identical (faulted, byzantine)" `Quick
      test_event_log_identical;
    Alcotest.test_case "calendar scheduler identical at every region count"
      `Quick test_scheduler_kind_identical;
    Alcotest.test_case "fallback gates" `Quick test_fallback_gates;
    QCheck_alcotest.to_alcotest prop_random_configs_identical;
  ]
