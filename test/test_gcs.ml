(* Test entry point: one alcotest suite per module of the library. *)

let () =
  Alcotest.run "gcs"
    [
      ("util.prng", Test_prng.suite);
      ("util.stats", Test_stats.suite);
      ("util.heap", Test_heap.suite);
      ("util.scheduler", Test_scheduler.suite);
      ("util.pool", Test_pool.suite);
      ("util.table", Test_table.suite);
      ("util.csv", Test_csv.suite);
      ("graph.graph", Test_graph.suite);
      ("graph.topology", Test_topology.suite);
      ("graph.shortest_path", Test_shortest_path.suite);
      ("graph.spanning_tree", Test_spanning_tree.suite);
      ("clock.hardware", Test_hardware_clock.suite);
      ("clock.drift", Test_drift.suite);
      ("clock.logical", Test_logical_clock.suite);
      ("sim.delay_model", Test_delay_model.suite);
      ("sim.fault_plan", Test_fault_plan.suite);
      ("sim.churn_plan", Test_churn_plan.suite);
      ("sim.engine", Test_engine.suite);
      ("sim.trace", Test_trace.suite);
      ("obs.sinks", Test_obs.suite);
      ("store", Test_store.suite);
      ("sim.mobility", Test_mobility.suite);
      ("core.spec", Test_spec.suite);
      ("core.offset_estimator", Test_offset_estimator.suite);
      ("core.triggers", Test_triggers.suite);
      ("core.metrics", Test_metrics.suite);
      ("core.bounds", Test_bounds.suite);
      ("core.message", Test_message.suite);
      ("core.algorithms", Test_algorithms.suite);
      ("core.max_slew", Test_max_slew.suite);
      ("core.runner", Test_runner.suite);
      ("core.gradient_hetero", Test_gradient_hetero.suite);
      ("core.gradient_rtt", Test_gradient_rtt.suite);
      ("core.stabilize", Test_stabilize.suite);
      ("core.external_sync", Test_external_sync.suite);
      ("adversary", Test_adversary.suite);
      ("adversary.churn", Test_churn.suite);
      ("adversary.search", Test_search.suite);
      ("adversary.crash", Test_crash.suite);
      ("core.invariant", Test_invariant.suite);
      ("core.replicate", Test_replicate.suite);
      ("core.parallel_run", Test_parallel_run.suite);
      ("core.faults", Test_faults.suite);
      ("core.golden", Test_golden.suite);
      ("core.region_parallel", Test_region_parallel.suite);
      ("check", Test_check.suite);
      ("explore", Test_explore.suite);
      ("integration", Test_integration.suite);
      ("adversarial.random", Test_adversarial_random.suite);
      ("net", Test_net.suite);
    ]
