module Crash = Gcs_adversary.Crash
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Oe = Gcs_core.Offset_estimator

let graph = Topology.ring 16
let drift v = if v < 8 then Drift.Extreme_high else Drift.Extreme_low

let run ?(spec = Spec.make ()) crashes =
  Crash.run
    (Crash.default_config ~spec ~drift_of_node:drift ~crashes ~graph
       ~horizon:1000. ~seed:89 ())

let test_estimator_expiry () =
  let e = Oe.create () in
  Oe.update e ~h_local:10. ~remote_value:100. ~elapsed_guess:0.;
  Alcotest.(check bool) "fresh estimate available" true
    (Oe.offset ~max_age:4. e ~h_local:12. ~own_value:0. <> None);
  Alcotest.(check bool) "stale estimate expired" true
    (Oe.offset ~max_age:4. e ~h_local:15. ~own_value:0. = None);
  Alcotest.(check bool) "no max_age keeps it" true
    (Oe.offset e ~h_local:1000. ~own_value:0. <> None)

let test_out_of_range_rejected () =
  match run [ (99, 10.) ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "accepted bogus node id"

let test_no_crashes_baseline () =
  let r = run [] in
  Array.iter
    (fun v -> Alcotest.(check bool) "all alive" true (r.Crash.alive v))
    (Array.init 16 (fun i -> i));
  Alcotest.(check bool) "sane skew" true (r.Crash.live_local < 5.)

let test_survivors_unaffected_with_expiry () =
  let baseline = run [] in
  let crashed = run [ (12, 200.) ] in
  Alcotest.(check bool) "dead node marked" false (crashed.Crash.alive 12);
  Alcotest.(check bool)
    (Printf.sprintf "live skew preserved (%.3f vs %.3f)"
       crashed.Crash.live_local baseline.Crash.live_local)
    true
    (crashed.Crash.live_local < baseline.Crash.live_local +. 0.5)

let test_phantom_hurts_without_expiry () =
  let with_expiry = run [ (12, 200.) ] in
  let without =
    run ~spec:(Spec.make ~staleness_limit:1e9 ()) [ (12, 200.) ]
  in
  Alcotest.(check bool)
    (Printf.sprintf "phantom costs skew (%.3f vs %.3f)"
       without.Crash.live_local with_expiry.Crash.live_local)
    true
    (without.Crash.live_local > with_expiry.Crash.live_local +. 0.2)

let test_crashed_node_sends_nothing_after () =
  (* A crash-stopped node sends nothing, and everything addressed to it is
     counted as a fault drop: fault drops must be positive and grow with
     earlier crash times. The loss-law counter stays untouched. *)
  let late = run [ (12, 900.) ] in
  let early = run [ (12, 100.) ] in
  Alcotest.(check bool) "fault drops recorded" true
    (late.Crash.result.Gcs_core.Runner.dropped_faults > 0);
  Alcotest.(check int) "no loss-law drops" 0
    late.Crash.result.Gcs_core.Runner.dropped;
  Alcotest.(check bool) "earlier crash, more drops" true
    (early.Crash.result.Gcs_core.Runner.dropped_faults
    > late.Crash.result.Gcs_core.Runner.dropped_faults)

let suite =
  [
    Alcotest.test_case "estimator expiry" `Quick test_estimator_expiry;
    Alcotest.test_case "out of range" `Quick test_out_of_range_rejected;
    Alcotest.test_case "no crashes" `Quick test_no_crashes_baseline;
    Alcotest.test_case "survivors ok with expiry" `Quick test_survivors_unaffected_with_expiry;
    Alcotest.test_case "phantom without expiry" `Quick test_phantom_hurts_without_expiry;
    Alcotest.test_case "silenced after crash" `Quick test_crashed_node_sends_nothing_after;
  ]
