module Fault_plan = Gcs_sim.Fault_plan
module Topology = Gcs_graph.Topology
module Graph = Gcs_graph.Graph

let ring8 = Topology.ring 8

let all_kinds_plan =
  Fault_plan.of_events
    [
      Fault_plan.Link_partition
        { at = 10.; edges = Fault_plan.Edges [ (0, 1); (2, 3) ] };
      Fault_plan.Link_heal { at = 20.; edges = Fault_plan.Edges [ (0, 1); (2, 3) ] };
      Fault_plan.Node_crash { at = 15.; node = 5 };
      Fault_plan.Node_recover { at = 30.; node = 5; wipe = true };
      Fault_plan.Msg_duplicate
        { from_ = 5.; until = 12.; edges = Fault_plan.All_edges; prob = 0.25 };
      Fault_plan.Msg_reorder
        {
          from_ = 6.;
          until = 13.;
          edges = Fault_plan.Cut [ 0 ];
          prob = 0.5;
          extra = 2.5;
        };
      Fault_plan.Msg_corrupt
        {
          from_ = 7.;
          until = 14.;
          edges = Fault_plan.Edges [ (4, 5) ];
          prob = 0.1;
          magnitude = 3.;
        };
      Fault_plan.Clock_jump { at = 40.; node = 2; delta = -1.5 };
      Fault_plan.Clock_rate_fault { at = 45.; node = 3; rate = 1.004 };
      Fault_plan.Byzantine
        {
          from_ = 50.;
          until = 70.;
          node = 6;
          strategy = Fault_plan.Lie_equivocate 4.;
        };
    ]

let test_round_trip () =
  let s = Fault_plan.to_string all_kinds_plan in
  match Fault_plan.of_string s with
  | Error msg -> Alcotest.failf "re-parse failed: %s (spec %S)" msg s
  | Ok p ->
      Alcotest.(check bool)
        (Printf.sprintf "events preserved through %S" s)
        true
        (Fault_plan.events p = Fault_plan.events all_kinds_plan)

let test_of_string_examples () =
  let ok s =
    match Fault_plan.of_string s with
    | Ok p -> p
    | Error msg -> Alcotest.failf "%S rejected: %s" s msg
  in
  let p = ok "partition@40:cut=0; heal@60:cut=0" in
  Alcotest.(check int) "two events" 2 (List.length (Fault_plan.events p));
  (match Fault_plan.events (ok "recover@60:node=3:wipe") with
  | [ Fault_plan.Node_recover { node = 3; wipe = true; at } ] ->
      Alcotest.(check (float 0.)) "time" 60. at
  | _ -> Alcotest.fail "recover parse");
  (match Fault_plan.events (ok "dup@1.5..2.5:p=0.125") with
  | [ Fault_plan.Msg_duplicate { from_; until; prob; edges = All_edges } ] ->
      Alcotest.(check (float 0.)) "from" 1.5 from_;
      Alcotest.(check (float 0.)) "until" 2.5 until;
      Alcotest.(check (float 0.)) "prob" 0.125 prob
  | _ -> Alcotest.fail "dup parse");
  (match Fault_plan.events (ok "reorder@0..10:p=1:extra=0.5:edges=1-2,3-4") with
  | [ Fault_plan.Msg_reorder { edges = Edges [ (1, 2); (3, 4) ]; extra; _ } ] ->
      Alcotest.(check (float 0.)) "extra" 0.5 extra
  | _ -> Alcotest.fail "reorder parse");
  (match Fault_plan.events (ok "byz@10..20:node=3:off=-2.5") with
  | [
   Fault_plan.Byzantine
     { from_ = 10.; until = 20.; node = 3; strategy = Lie_constant off };
  ] ->
      Alcotest.(check (float 0.)) "constant lie offset" (-2.5) off
  | _ -> Alcotest.fail "byz off parse");
  (match Fault_plan.events (ok "byz@0..5:node=1:rate=0.25") with
  | [ Fault_plan.Byzantine { strategy = Lie_drifting 0.25; _ } ] -> ()
  | _ -> Alcotest.fail "byz rate parse");
  (match Fault_plan.events (ok "byz@0..5:node=1:mag=3") with
  | [ Fault_plan.Byzantine { strategy = Lie_random 3.; _ } ] -> ()
  | _ -> Alcotest.fail "byz mag parse");
  match Fault_plan.events (ok "byz@0..5:node=1:equiv=4") with
  | [ Fault_plan.Byzantine { strategy = Lie_equivocate 4.; _ } ] -> ()
  | _ -> Alcotest.fail "byz equiv parse"

let test_of_string_rejects () =
  let bad s =
    match Fault_plan.of_string s with
    | Ok _ -> Alcotest.failf "%S should have been rejected" s
    | Error _ -> ()
  in
  bad "";
  bad "explode@10:node=1";
  bad "crash@10";
  bad "partition@10";
  bad "dup@5..3";
  bad "dup@1..2";
  (* missing p= *)
  bad "partition@ten:all";
  (* byz needs exactly one strategy field and an ordered window *)
  bad "byz@10..20:node=1";
  bad "byz@10..20:node=1:off=1:mag=2";
  bad "byz@10..20:off=1"

let test_validate () =
  let check_err plan =
    match Fault_plan.validate plan ring8 with
    | Ok () -> Alcotest.fail "expected validation error"
    | Error _ -> ()
  in
  check_err
    (Fault_plan.of_events [ Fault_plan.Node_crash { at = 1.; node = 8 } ]);
  check_err
    (Fault_plan.of_events
       [ Fault_plan.Link_partition { at = 1.; edges = Fault_plan.Edges [ (0, 4) ] } ]);
  check_err
    (Fault_plan.of_events
       [
         Fault_plan.Msg_corrupt
           {
             from_ = 1.;
             until = 2.;
             edges = Fault_plan.All_edges;
             prob = 1.5;
             magnitude = 1.;
           };
       ]);
  check_err
    (Fault_plan.of_events
       [ Fault_plan.Clock_rate_fault { at = 1.; node = 0; rate = 0. } ]);
  (* A backwards lie window is caught at validation. *)
  check_err
    (Fault_plan.of_events
       [
         Fault_plan.Byzantine
           { from_ = 20.; until = 10.; node = 1; strategy = Lie_constant 1. };
       ]);
  (* Overlapping Byzantine windows on one node are incoherent. *)
  check_err
    (Fault_plan.of_events
       [
         Fault_plan.Byzantine
           { from_ = 10.; until = 30.; node = 2; strategy = Lie_constant 1. };
         Fault_plan.Byzantine
           { from_ = 20.; until = 40.; node = 2; strategy = Lie_random 1. };
       ]);
  (* A crashed node sends nothing, so a lie window overlapping the crash
     interval of the same node is rejected. *)
  check_err
    (Fault_plan.of_events
       [
         Fault_plan.Node_crash { at = 10.; node = 4 };
         Fault_plan.Node_recover { at = 40.; node = 4; wipe = false };
         Fault_plan.Byzantine
           { from_ = 20.; until = 30.; node = 4; strategy = Lie_constant 1. };
       ]);
  (* Disjoint windows on the same node, and a lie after the recovery, are
     both fine. *)
  Alcotest.(check bool) "disjoint byz windows validate" true
    (Fault_plan.validate
       (Fault_plan.of_events
          [
            Fault_plan.Byzantine
              { from_ = 0.; until = 10.; node = 2; strategy = Lie_constant 1. };
            Fault_plan.Byzantine
              { from_ = 10.; until = 20.; node = 2; strategy = Lie_random 1. };
          ])
       ring8
    = Ok ());
  Alcotest.(check bool) "good plan validates" true
    (Fault_plan.validate all_kinds_plan ring8 = Ok ())

let test_byzantine_nodes () =
  Alcotest.(check (list int))
    "sorted, deduped" [ 6 ]
    (Fault_plan.byzantine_nodes all_kinds_plan);
  let two =
    Fault_plan.of_events
      [
        Fault_plan.Byzantine
          { from_ = 0.; until = 10.; node = 5; strategy = Lie_constant 1. };
        Fault_plan.Byzantine
          { from_ = 20.; until = 30.; node = 5; strategy = Lie_random 2. };
        Fault_plan.Byzantine
          { from_ = 0.; until = 10.; node = 1; strategy = Lie_equivocate 3. };
      ]
  in
  Alcotest.(check (list int))
    "two liars" [ 1; 5 ]
    (Fault_plan.byzantine_nodes two);
  (* Ring edges not incident to liars 1 and 5: 8 edges minus their 4. *)
  Alcotest.(check int) "correct edges" 4
    (List.length (Fault_plan.correct_edges two ring8))

let test_resolve_edges () =
  (* Ring edges at node 0: (0,1) and (0,7). A cut around {0} is exactly its
     incident edges. *)
  let cut = Fault_plan.resolve_edges ring8 (Fault_plan.Cut [ 0 ]) in
  Alcotest.(check int) "cut size" 2 (List.length cut);
  let all = Fault_plan.resolve_edges ring8 Fault_plan.All_edges in
  Alcotest.(check int) "all edges" (Graph.m ring8) (List.length all);
  let pair = Fault_plan.resolve_edges ring8 (Fault_plan.Edges [ (1, 2) ]) in
  (match pair with
  | [ e ] ->
      let u, v = Graph.edge_endpoints ring8 e in
      Alcotest.(check (pair int int)) "endpoints" (1, 2) (u, v)
  | _ -> Alcotest.fail "expected one edge");
  (* A cut with both endpoints inside contributes nothing. *)
  let inner =
    Fault_plan.resolve_edges ring8 (Fault_plan.Cut [ 0; 1; 2; 3; 4; 5; 6; 7 ])
  in
  Alcotest.(check int) "full set cuts nothing" 0 (List.length inner)

let test_compose_sorts () =
  let a =
    Fault_plan.of_events [ Fault_plan.Node_crash { at = 30.; node = 1 } ]
  in
  let b =
    Fault_plan.of_events
      [
        Fault_plan.Node_recover { at = 50.; node = 1; wipe = false };
        Fault_plan.Link_partition { at = 10.; edges = Fault_plan.All_edges };
      ]
  in
  match Fault_plan.events (Fault_plan.compose a b) with
  | [
      Fault_plan.Link_partition { at = 10.; _ };
      Fault_plan.Node_crash { at = 30.; _ };
      Fault_plan.Node_recover { at = 50.; _ };
    ] ->
      ()
  | evs -> Alcotest.failf "unexpected order (%d events)" (List.length evs)

let test_episodes () =
  let plan =
    Fault_plan.of_events
      [
        Fault_plan.Link_partition { at = 10.; edges = Fault_plan.Cut [ 0 ] };
        Fault_plan.Link_heal { at = 25.; edges = Fault_plan.Cut [ 0 ] };
        Fault_plan.Node_crash { at = 30.; node = 4 };
        Fault_plan.Node_recover { at = 40.; node = 4; wipe = true };
        Fault_plan.Node_crash { at = 50.; node = 6 };
        (* node 6 never recovers *)
        Fault_plan.Clock_rate_fault { at = 60.; node = 2; rate = 1.01 };
        Fault_plan.Clock_rate_fault { at = 70.; node = 2; rate = 1.0 };
      ]
  in
  let eps = Fault_plan.episodes plan ring8 in
  (* partition, crash:4 (wipe), crash:6, and one episode per rate event —
     the restore-to-1.0 is itself a rate fault (the plan cannot know a
     node's nominal rate), so it opens an unclosed fifth episode. *)
  Alcotest.(check int) "episode count" 5 (List.length eps);
  let find label =
    match List.find_opt (fun e -> e.Fault_plan.label = label) eps with
    | Some e -> e
    | None ->
        Alcotest.failf "missing episode %s (have: %s)" label
          (String.concat ", "
             (List.map (fun e -> e.Fault_plan.label) eps))
  in
  let part = find "partition" in
  Alcotest.(check (option (float 0.))) "partition heals" (Some 25.)
    part.Fault_plan.stop;
  Alcotest.(check int) "partition edges" 2 (List.length part.Fault_plan.edges);
  let crash = find "crash:4 (wipe)" in
  Alcotest.(check (option (float 0.))) "crash recovers" (Some 40.)
    crash.Fault_plan.stop;
  let dead = find "crash:6" in
  Alcotest.(check (option (float 0.))) "never recovers" None
    dead.Fault_plan.stop;
  let rate = find "rate:2" in
  Alcotest.(check (option (float 0.))) "rate closes at next rate event"
    (Some 70.) rate.Fault_plan.stop

let test_byz_episode () =
  let plan =
    Fault_plan.of_events
      [
        Fault_plan.Byzantine
          { from_ = 15.; until = 45.; node = 3; strategy = Lie_random 2. };
      ]
  in
  match Fault_plan.episodes plan ring8 with
  | [ e ] ->
      Alcotest.(check string) "label" "byz:3 (mag)" e.Fault_plan.label;
      Alcotest.(check (float 0.)) "start" 15. e.Fault_plan.start;
      Alcotest.(check (option (float 0.))) "stop" (Some 45.) e.Fault_plan.stop;
      (* The episode's edges are the correct-correct ones: the liar's own
         clock never enters the recovery metrics. *)
      Alcotest.(check int) "correct-correct edges only" 6
        (List.length e.Fault_plan.edges);
      List.iter
        (fun edge ->
          let u, v = Graph.edge_endpoints ring8 edge in
          if u = 3 || v = 3 then
            Alcotest.failf "episode includes liar-incident edge %d-%d" u v)
        e.Fault_plan.edges
  | eps -> Alcotest.failf "expected one episode, got %d" (List.length eps)

(* Random plans over ring:8 round-trip through the textual spec. *)
let qcheck_round_trip =
  let open QCheck in
  let edge_spec_gen =
    Gen.oneof
      [
        Gen.return Fault_plan.All_edges;
        Gen.map (fun v -> Fault_plan.Cut [ v ]) (Gen.int_range 0 7);
        Gen.map
          (fun v -> Fault_plan.Edges [ (v, (v + 1) mod 8) ])
          (Gen.int_range 0 6);
      ]
  in
  let time = Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 0 400) in
  let event_gen =
    Gen.oneof
      [
        Gen.map2
          (fun at edges -> Fault_plan.Link_partition { at; edges })
          time edge_spec_gen;
        Gen.map2
          (fun at edges -> Fault_plan.Link_heal { at; edges })
          time edge_spec_gen;
        Gen.map2
          (fun at node -> Fault_plan.Node_crash { at; node })
          time (Gen.int_range 0 7);
        Gen.map3
          (fun at node wipe -> Fault_plan.Node_recover { at; node; wipe })
          time (Gen.int_range 0 7) Gen.bool;
        Gen.map3
          (fun from_ d prob ->
            Fault_plan.Msg_duplicate
              { from_; until = from_ +. d; edges = Fault_plan.All_edges; prob })
          time time (Gen.map (fun i -> float_of_int i /. 8.) (Gen.int_range 0 8));
        Gen.map3
          (fun at node delta -> Fault_plan.Clock_jump { at; node; delta })
          time (Gen.int_range 0 7)
          (Gen.map (fun i -> float_of_int i /. 2.) (Gen.int_range (-8) 8));
        Gen.map3
          (fun from_ node (d, strategy) ->
            Fault_plan.Byzantine { from_; until = from_ +. d; node; strategy })
          time (Gen.int_range 0 7)
          (Gen.pair
             (Gen.map (fun i -> float_of_int i /. 4.) (Gen.int_range 1 100))
             (Gen.oneof
                [
                  Gen.map
                    (fun x -> Fault_plan.Lie_constant x)
                    (Gen.map (fun i -> float_of_int i /. 2.) (Gen.int_range (-8) 8));
                  Gen.map
                    (fun x -> Fault_plan.Lie_drifting x)
                    (Gen.map (fun i -> float_of_int i /. 8.) (Gen.int_range (-8) 8));
                  Gen.map
                    (fun x -> Fault_plan.Lie_random x)
                    (Gen.map (fun i -> float_of_int i /. 2.) (Gen.int_range 0 8));
                  Gen.map
                    (fun x -> Fault_plan.Lie_equivocate x)
                    (Gen.map (fun i -> float_of_int i /. 2.) (Gen.int_range 0 8));
                ]));
      ]
  in
  let plan_gen =
    Gen.map Fault_plan.of_events (Gen.list_size (Gen.int_range 1 8) event_gen)
  in
  let arb =
    QCheck.make plan_gen ~print:(fun p -> Fault_plan.to_string p)
  in
  QCheck.Test.make ~count:100 ~name:"textual spec round-trips" arb (fun p ->
      match Fault_plan.of_string (Fault_plan.to_string p) with
      | Ok p' -> Fault_plan.events p' = Fault_plan.events p
      | Error _ -> false)

let suite =
  [
    Alcotest.test_case "round trip (all kinds)" `Quick test_round_trip;
    Alcotest.test_case "of_string examples" `Quick test_of_string_examples;
    Alcotest.test_case "of_string rejects" `Quick test_of_string_rejects;
    Alcotest.test_case "validate" `Quick test_validate;
    Alcotest.test_case "resolve_edges" `Quick test_resolve_edges;
    Alcotest.test_case "compose sorts" `Quick test_compose_sorts;
    Alcotest.test_case "byzantine nodes" `Quick test_byzantine_nodes;
    Alcotest.test_case "episodes" `Quick test_episodes;
    Alcotest.test_case "byz episode" `Quick test_byz_episode;
    QCheck_alcotest.to_alcotest qcheck_round_trip;
  ]
