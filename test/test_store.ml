module Key = Gcs_store.Key
module Outcome = Gcs_store.Outcome
module Store = Gcs_store.Store
module Fault_plan = Gcs_sim.Fault_plan
module Topology = Gcs_graph.Topology
module Runner = Gcs_core.Runner
module Algorithm = Gcs_core.Algorithm
module Parallel_run = Gcs_core.Parallel_run
module Replicate = Gcs_core.Replicate
module Prng = Gcs_util.Prng

let temp_dir () =
  let f = Filename.temp_file "gcs_store" "" in
  Sys.remove f;
  f

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Sys.rmdir dir
  end

let with_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> rm_rf dir) (fun () -> f dir)

let mk_key ?schema_version ?drift ?loss ?fault_plan ?(topology = Topology.Ring 8)
    ?(algo = "gradient") ?(seed = 1) () =
  Key.make ?schema_version ?drift ?loss ?fault_plan ~rho:0.01 ~mu:0.1
    ~d_min:0.5 ~d_max:1.5 ~beacon_period:1. ~kappa:2.16
    ~staleness_limit:4. ~topology ~algo ~horizon:60. ~sample_period:1.
    ~warmup:15. ~seed ()

(* Deliberately awkward floats: the codec must round-trip them exactly. *)
let mk_outcome ?(messages = 1234) ?fault () =
  {
    Outcome.nodes = 8;
    edges = 8;
    diameter = 4;
    max_global = 0.1 +. 0.2;
    max_local = 1. /. 3.;
    mean_local = 0.123456789012345678;
    p99_local = 1e-17;
    final_global = Float.pi;
    final_local = 0.;
    samples_used = 46;
    messages;
    dropped = 7;
    dropped_faults = 3;
    events = 5000;
    jump_count = 2;
    jump_total = 0.7;
    jump_max = sqrt 2.;
    fault;
  }

let plan_of_string s =
  match Fault_plan.of_string s with Ok p -> p | Error e -> failwith e

(* --- canonical keys --- *)

let test_key_round_trip () =
  let plan = plan_of_string "partition@10:edges=1-2,3-4;heal@20:edges=1-2,3-4" in
  List.iter
    (fun k ->
      match Key.decode (Key.encode k) with
      | Ok k' ->
          Alcotest.(check bool) "decode (encode k) = k" true (k = k');
          Alcotest.(check string) "same hash" (Key.hash k) (Key.hash k')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      mk_key ();
      mk_key ~fault_plan:plan ();
      mk_key ~drift:"walk:0.5:0.01" ~loss:0.125 ();
      mk_key ~topology:(Topology.Random_gnp (20, 0.05)) ~seed:77 ();
      mk_key ~schema_version:3 ~algo:"tree" ();
    ]

let test_key_decode_rejects () =
  let fails s =
    match Key.decode s with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "decoded %S" s
  in
  fails "";
  fails "nonsense";
  fails "gcs.store:key:9\nschema=1\n";
  (* Missing fields after the magic. *)
  fails "gcs.store:key:1\nschema=1\n";
  (* A trailing unparsed line must not be silently ignored. *)
  fails (Key.encode (mk_key ()) ^ "extra=1\n");
  (* Field out of order. *)
  fails
    (let s = Key.encode (mk_key ()) in
     match String.split_on_char '\n' s with
     | magic :: a :: b :: rest ->
         String.concat "\n" (magic :: b :: a :: rest)
     | _ -> assert false)

let test_key_hash_canonicalization () =
  (* Same faults written differently: reversed endpoint pairs, reordered
     edge lists, duplicated cut members. *)
  let a = plan_of_string "partition@10:edges=1-2,3-4;heal@20:cut=0,1,2" in
  let b =
    Fault_plan.of_events
      [
        Fault_plan.Link_partition
          { at = 10.; edges = Fault_plan.Edges [ (4, 3); (2, 1) ] };
        Fault_plan.Link_heal { at = 20.; edges = Fault_plan.Cut [ 2; 0; 1; 1 ] };
      ]
  in
  Alcotest.(check string) "reordered plans hash identically"
    (Key.hash (mk_key ~fault_plan:a ()))
    (Key.hash (mk_key ~fault_plan:b ()));
  Alcotest.(check bool) "different seed, different hash" false
    (Key.hash (mk_key ~seed:1 ()) = Key.hash (mk_key ~seed:2 ()));
  Alcotest.(check bool) "different schema, different hash" false
    (Key.hash (mk_key ~schema_version:1 ())
    = Key.hash (mk_key ~schema_version:2 ()))

(* Keys round-trip and equal-but-reordered fault-plan configurations hash
   identically, over randomized plans. *)
let qcheck_key_round_trip_and_stability =
  let open QCheck in
  let pair_gen =
    Gen.map2 (fun u v -> (u, (v + 1) mod 8)) (Gen.int_range 0 7)
      (Gen.int_range 0 6)
  in
  let gen =
    Gen.map3
      (fun pairs cut seed -> (pairs, cut, seed))
      (Gen.list_size (Gen.int_range 1 5) pair_gen)
      (Gen.list_size (Gen.int_range 1 4) (Gen.int_range 0 7))
      (Gen.int_range 0 1000)
  in
  let arb =
    QCheck.make gen ~print:(fun (pairs, cut, seed) ->
        Printf.sprintf "pairs=%s cut=%s seed=%d"
          (String.concat ","
             (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) pairs))
          (String.concat "," (List.map string_of_int cut))
          seed)
  in
  QCheck.Test.make ~count:200
    ~name:"key round-trips; reordered plans hash identically" arb
    (fun (pairs, cut, seed) ->
      let plan edges_list cut_list =
        Fault_plan.of_events
          [
            Fault_plan.Link_partition
              { at = 10.; edges = Fault_plan.Edges edges_list };
            Fault_plan.Link_heal { at = 20.; edges = Fault_plan.Cut cut_list };
          ]
      in
      let flip (u, v) = (v, u) in
      let k1 = mk_key ~seed ~fault_plan:(plan pairs cut) () in
      let k2 =
        mk_key ~seed
          ~fault_plan:(plan (List.rev_map flip pairs) (cut @ List.rev cut))
          ()
      in
      Key.decode (Key.encode k1) = Ok k1 && Key.hash k1 = Key.hash k2)

(* --- outcome codec --- *)

let test_outcome_round_trip () =
  List.iter
    (fun o ->
      match Outcome.decode (Outcome.encode o) with
      | Ok o' -> Alcotest.(check bool) "bit-identical" true (o = o')
      | Error e -> Alcotest.failf "decode failed: %s" e)
    [
      mk_outcome ();
      mk_outcome
        ~fault:{ Outcome.transient = 4.25; fault_drops = 12; resync = Some 33.5 }
        ();
      mk_outcome
        ~fault:{ Outcome.transient = 0.; fault_drops = 0; resync = None }
        ();
    ]

(* --- durable store --- *)

let test_store_put_find () =
  with_dir (fun dir ->
      let st = Store.open_ dir in
      let k1 = mk_key ~seed:1 () and k2 = mk_key ~seed:2 () in
      let o1 = mk_outcome ~messages:1 () and o2 = mk_outcome ~messages:2 () in
      Store.put st k1 o1;
      Store.put st k2 o2;
      Alcotest.(check int) "length" 2 (Store.length st);
      Alcotest.(check bool) "mem" true (Store.mem st k1);
      Alcotest.(check bool) "find k1" true (Store.find st k1 = Some o1);
      Alcotest.(check bool) "find k2" true (Store.find st k2 = Some o2);
      Alcotest.(check bool) "absent" true (Store.find st (mk_key ~seed:3 ()) = None);
      (* Re-putting a key replaces its value. *)
      let o1' = mk_outcome ~messages:111 () in
      Store.put st k1 o1';
      Alcotest.(check int) "replace keeps length" 2 (Store.length st);
      Alcotest.(check bool) "replaced" true (Store.find st k1 = Some o1');
      Store.close st)

let test_store_persistence () =
  with_dir (fun dir ->
      let k = mk_key () and o = mk_outcome () in
      let st = Store.open_ dir in
      Store.put st k o;
      Store.close st;
      (* Clean reopen takes the index fast path and loads records lazily. *)
      let st = Store.open_ dir in
      Alcotest.(check int) "length after reopen" 1 (Store.length st);
      Alcotest.(check bool) "find after reopen" true (Store.find st k = Some o);
      let rep = Store.verify st in
      Alcotest.(check bool) "index ok" true rep.Store.index_ok;
      Store.close st;
      (* The index is an acceleration structure only: deleting it must
         lose nothing. *)
      Sys.remove (Filename.concat dir "index");
      let st = Store.open_ dir in
      Alcotest.(check bool) "find after index loss" true (Store.find st k = Some o);
      Store.close st)

let append_to_log dir bytes =
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644
      (Filename.concat dir "log")
  in
  output_string oc bytes;
  close_out oc

let test_torn_tail_recovery () =
  with_dir (fun dir ->
      let k = mk_key () and o = mk_outcome () in
      let st = Store.open_ dir in
      Store.put st k o;
      Store.close st;
      (* Simulate a crash mid-append: a half-written record at the tail. *)
      append_to_log dir "GCSR1 180 250 0123456789abcdef0123456789abcdef\ngcs.st";
      let st = Store.open_ dir in
      Alcotest.(check int) "torn record dropped" 1 (Store.length st);
      Alcotest.(check bool) "survivor intact" true (Store.find st k = Some o);
      let rep = Store.verify st in
      Alcotest.(check int) "log clean again" 0 rep.Store.torn_bytes;
      (* The truncated log must accept new appends. *)
      let k2 = mk_key ~seed:9 () in
      Store.put st k2 o;
      Store.close st;
      let st = Store.open_ dir in
      Alcotest.(check int) "append after recovery" 2 (Store.length st);
      Store.close st)

let test_corrupt_record_skipped () =
  with_dir (fun dir ->
      let k1 = mk_key ~seed:1 () and k2 = mk_key ~seed:2 () in
      let o = mk_outcome () in
      let st = Store.open_ dir in
      Store.put st k1 o;
      Store.put st k2 o;
      Store.close st;
      (* Flip one payload byte inside the first record: framing stays
         intact, the digest no longer matches. *)
      let path = Filename.concat dir "log" in
      let ic = open_in_bin path in
      let content = really_input_string ic (in_channel_length ic) in
      close_in ic;
      let body = String.index content '\n' + 10 in
      let mutated = Bytes.of_string content in
      Bytes.set mutated body
        (if Bytes.get mutated body = 'x' then 'y' else 'x');
      let oc = open_out_bin path in
      output_string oc (Bytes.to_string mutated);
      close_out oc;
      Sys.remove (Filename.concat dir "index");
      let st = Store.open_ dir in
      Alcotest.(check int) "corrupt record dropped" 1 (Store.length st);
      Alcotest.(check bool) "later record survives" true
        (Store.find st k2 = Some o);
      let rep = Store.verify st in
      Alcotest.(check int) "reported corrupt" 1 rep.Store.corrupt;
      Store.close st)

let test_gc_by_schema () =
  with_dir (fun dir ->
      let st = Store.open_ dir in
      let o = mk_outcome () in
      let current = mk_key ~seed:1 () in
      Store.put st current o;
      Store.put st (mk_key ~schema_version:0 ~seed:2 ()) o;
      Store.put st (mk_key ~schema_version:0 ~seed:3 ()) o;
      (* A superseded duplicate is also gc fodder. *)
      Store.put st current (mk_outcome ~messages:9 ());
      let dropped = Store.gc st in
      Alcotest.(check int) "dropped stale + superseded" 3 dropped;
      Alcotest.(check int) "one live record" 1 (Store.length st);
      Alcotest.(check bool) "latest value kept" true
        (Store.find st current = Some (mk_outcome ~messages:9 ()));
      Store.close st;
      let st = Store.open_ dir in
      Alcotest.(check int) "compaction durable" 1 (Store.length st);
      Store.close st)

let test_iter_deterministic () =
  with_dir (fun dir ->
      let st = Store.open_ dir in
      let keys = List.init 5 (fun i -> mk_key ~seed:i ()) in
      List.iter (fun k -> Store.put st k (mk_outcome ())) keys;
      let order st =
        let acc = ref [] in
        Store.iter st (fun k _ -> acc := Key.hash k :: !acc);
        List.rev !acc
      in
      let o1 = order st in
      Alcotest.(check (list string)) "hash order" (List.sort compare o1) o1;
      Store.close st;
      let st = Store.open_ dir in
      Alcotest.(check (list string)) "same order after reopen" o1 (order st);
      Store.close st)

(* --- cache-aware execution --- *)

let sweep_cells seeds =
  Array.of_list
    (List.map
       (fun seed ->
         let topo = Topology.Ring 8 in
         let graph =
           Topology.build topo ~rng:(Prng.create ~seed:(seed lxor 0x5eed))
         in
         ( Some
             (Runner.store_key ~spec:(Gcs_core.Spec.make ()) ~topology:topo
                ~algo:Algorithm.Gradient_sync ~horizon:20. ~seed ()),
           Runner.config ~spec:(Gcs_core.Spec.make ())
             ~algo:Algorithm.Gradient_sync ~horizon:20. ~seed graph ))
       seeds)

let test_run_cached_cold_warm () =
  with_dir (fun dir ->
      let cells = sweep_cells [ 1; 2; 3; 4 ] in
      let fresh, _ = Parallel_run.run_cached cells in
      let st = Store.open_ dir in
      let cold, cold_stats = Parallel_run.run_cached ~store:st cells in
      Alcotest.(check int) "cold misses" 4 cold_stats.Parallel_run.misses;
      Alcotest.(check bool) "cold simulated" true
        (cold_stats.Parallel_run.fresh_dispatches > 0);
      let warm, warm_stats = Parallel_run.run_cached ~store:st cells in
      Alcotest.(check int) "warm hits" 4 warm_stats.Parallel_run.hits;
      Alcotest.(check int) "warm misses" 0 warm_stats.Parallel_run.misses;
      Alcotest.(check int) "warm dispatches" 0
        warm_stats.Parallel_run.fresh_dispatches;
      Alcotest.(check bool) "warm = cold" true (warm = cold);
      Alcotest.(check bool) "cached = storeless" true (warm = fresh);
      (* Sharding must not change cached results either. *)
      let par, _ = Parallel_run.run_cached ~jobs:2 ~store:st cells in
      Alcotest.(check bool) "jobs-independent" true (par = warm);
      Store.close st)

let test_run_cached_resume_half () =
  with_dir (fun dir ->
      let cells = sweep_cells [ 1; 2; 3; 4; 5; 6 ] in
      let st = Store.open_ dir in
      (* Pretend a killed sweep finished only the first half. *)
      let _ = Parallel_run.run_cached ~store:st (Array.sub cells 0 3) in
      Store.close st;
      let st = Store.open_ dir in
      let resumed, stats = Parallel_run.run_cached ~store:st cells in
      Alcotest.(check int) "resume hits" 3 stats.Parallel_run.hits;
      Alcotest.(check int) "resume misses" 3 stats.Parallel_run.misses;
      let full, _ = Parallel_run.run_cached cells in
      Alcotest.(check bool) "resumed = uninterrupted" true (resumed = full);
      Store.close st)

let test_run_cached_keyless_cells () =
  with_dir (fun dir ->
      let cells = sweep_cells [ 1; 2 ] in
      let keyless = Array.map (fun (_, cfg) -> (None, cfg)) cells in
      let st = Store.open_ dir in
      let _, stats = Parallel_run.run_cached ~store:st keyless in
      Alcotest.(check int) "keyless cells always miss" 2
        stats.Parallel_run.misses;
      Alcotest.(check int) "nothing persisted" 0 (Store.length st);
      let _, again = Parallel_run.run_cached ~store:st keyless in
      Alcotest.(check int) "still missing" 2 again.Parallel_run.misses;
      Store.close st)

let test_measure_runs () =
  with_dir (fun dir ->
      let spec = Gcs_core.Spec.make () in
      let seeds = [ 1; 2; 3 ] in
      let topo = Topology.Ring 8 in
      let config seed =
        let graph =
          Topology.build topo ~rng:(Prng.create ~seed:(seed lxor 0x5eed))
        in
        Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:20. ~seed
          graph
      in
      let key seed =
        Some
          (Runner.store_key ~spec ~topology:topo ~algo:Algorithm.Gradient_sync
             ~horizon:20. ~seed ())
      in
      let metric o = o.Outcome.max_local in
      let plain =
        Replicate.measure ~seeds (fun seed ->
            metric (Runner.outcome (Runner.run (config seed))))
      in
      let st = Store.open_ dir in
      let cold, cold_stats =
        Replicate.measure_runs ~store:st ~seeds ~key ~config ~metric ()
      in
      let warm, warm_stats =
        Replicate.measure_runs ~store:st ~seeds ~key ~config ~metric ()
      in
      Store.close st;
      Alcotest.(check int) "cold misses" 3 cold_stats.Parallel_run.misses;
      Alcotest.(check int) "warm hits" 3 warm_stats.Parallel_run.hits;
      Alcotest.(check bool) "cold = plain measure" true (cold = plain);
      Alcotest.(check bool) "warm = plain measure" true (warm = plain))

(* Fresh results and their stored outcomes must render the same CSV row. *)
let test_outcome_row_identity () =
  let topo = Topology.Ring 8 in
  let seed = 5 in
  let graph = Topology.build topo ~rng:(Prng.create ~seed:(seed lxor 0x5eed)) in
  let plan = plan_of_string "partition@5:cut=0,1;heal@10:cut=0,1" in
  let cfg =
    Runner.config ~algo:Algorithm.Gradient_sync ~horizon:20. ~seed
      ~fault_plan:plan graph
  in
  let r = Runner.run cfg in
  let direct = Gcs_core.Report.result_row ~label:(Topology.spec_name topo) cfg r in
  let o = Runner.outcome r in
  (* Round the outcome through the store codec first: the row must survive
     persistence, not just the in-memory record. *)
  let o' =
    match Outcome.decode (Outcome.encode o) with
    | Ok o' -> o'
    | Error e -> Alcotest.failf "outcome codec: %s" e
  in
  let via_store =
    Gcs_core.Report.outcome_row ~label:(Topology.spec_name topo)
      ~algo:(Algorithm.kind_name Algorithm.Gradient_sync) ~seed o'
  in
  Alcotest.(check (list string)) "row identical through the store" direct
    via_store

let suite =
  [
    Alcotest.test_case "key round trip" `Quick test_key_round_trip;
    Alcotest.test_case "key decode rejects" `Quick test_key_decode_rejects;
    Alcotest.test_case "key hash canonicalization" `Quick
      test_key_hash_canonicalization;
    QCheck_alcotest.to_alcotest qcheck_key_round_trip_and_stability;
    Alcotest.test_case "outcome round trip" `Quick test_outcome_round_trip;
    Alcotest.test_case "put/find/replace" `Quick test_store_put_find;
    Alcotest.test_case "persistence across reopen" `Quick test_store_persistence;
    Alcotest.test_case "torn tail recovery" `Quick test_torn_tail_recovery;
    Alcotest.test_case "corrupt record skipped" `Quick
      test_corrupt_record_skipped;
    Alcotest.test_case "gc by schema" `Quick test_gc_by_schema;
    Alcotest.test_case "iter deterministic" `Quick test_iter_deterministic;
    Alcotest.test_case "run_cached cold/warm" `Quick test_run_cached_cold_warm;
    Alcotest.test_case "run_cached resume" `Quick test_run_cached_resume_half;
    Alcotest.test_case "run_cached keyless" `Quick test_run_cached_keyless_cells;
    Alcotest.test_case "measure_runs" `Quick test_measure_runs;
    Alcotest.test_case "outcome_row identity" `Quick test_outcome_row_identity;
  ]
