(* End-to-end fault injection through the Runner: partition-then-heal and
   crash-recover produce a demonstrable skew excursion followed by a finite
   time-to-resync, sharded execution of faulted configs stays bit-identical,
   and any plan whose faults all heal re-enters the steady-state band. *)

module Topology = Gcs_graph.Topology
module Graph = Gcs_graph.Graph
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Fault_metrics = Gcs_core.Fault_metrics
module Parallel_run = Gcs_core.Parallel_run
module Engine = Gcs_sim.Engine
module Fault_plan = Gcs_sim.Fault_plan

let split_drift ~n v = if v < n / 2 then Drift.Extreme_high else Drift.Extreme_low

let fault_report (r : Runner.result) =
  match r.Runner.fault_report with
  | Some rep -> rep
  | None -> Alcotest.fail "fault plan configured but no fault report"

let find_episode rep label =
  match
    List.find_opt
      (fun (e : Fault_metrics.episode_report) -> e.Fault_metrics.label = label)
      rep.Fault_metrics.episodes
  with
  | Some e -> e
  | None ->
      Alcotest.failf "missing episode %S (have: %s)" label
        (String.concat ", "
           (List.map
              (fun (e : Fault_metrics.episode_report) -> e.Fault_metrics.label)
              rep.Fault_metrics.episodes))

(* Acceptance scenario: split a 64-node ring in two for 100 time units. The
   drift split makes the halves diverge at relative rate ~2*rho while cut,
   so the transient demonstrably exceeds the steady band, and gradient must
   pull them back after the heal. *)
let test_partition_heal_ring64 () =
  let graph = Topology.ring 64 in
  let half = List.init 32 Fun.id in
  let plan =
    Fault_plan.of_events
      [
        Fault_plan.Link_partition { at = 150.; edges = Fault_plan.Cut half };
        Fault_plan.Link_heal { at = 250.; edges = Fault_plan.Cut half };
      ]
  in
  let cfg =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~drift_of_node:(split_drift ~n:64) ~horizon:450. ~seed:11 ~fault_plan:plan
      graph
  in
  let r = Runner.run cfg in
  let rep = fault_report r in
  Alcotest.(check int) "one episode" 1 (List.length rep.Fault_metrics.episodes);
  let ep = find_episode rep "partition" in
  Alcotest.(check (option (float 0.))) "healed at 250" (Some 250.)
    ep.Fault_metrics.stop;
  Alcotest.(check bool) "messages were cut" true
    (r.Runner.dropped_faults > 0);
  Alcotest.(check bool)
    (Printf.sprintf "transient %.3f exceeds band %.3f"
       ep.Fault_metrics.worst_transient ep.Fault_metrics.band)
    true
    (ep.Fault_metrics.worst_transient > ep.Fault_metrics.band);
  match ep.Fault_metrics.time_to_resync with
  | None -> Alcotest.fail "gradient never re-entered the band after the heal"
  | Some tau ->
      Alcotest.(check bool)
        (Printf.sprintf "finite resync %.3f" tau)
        true
        (Float.is_finite tau && tau >= 0. && tau < 200.)

(* Crash-stop a slow-half node with state wipe. Gradient sync is max-driven,
   so slow nodes must actively chase the fast group: while crashed, node 12
   freewheels at its (minimum) hardware rate and falls demonstrably behind
   its synced neighbors. It must fire no timers while down, fire timers
   again after recovery, and pull its incident-edge skew back below the
   episode band — i.e. the wiped node demonstrably rejoins. *)
let test_crash_wipe_rejoins () =
  let graph = Topology.ring 16 in
  let plan =
    Fault_plan.of_events
      [
        Fault_plan.Node_crash { at = 150.; node = 12 };
        Fault_plan.Node_recover { at = 300.; node = 12; wipe = true };
      ]
  in
  let cfg =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~drift_of_node:(split_drift ~n:16) ~horizon:500. ~seed:5 ~fault_plan:plan
      graph
  in
  let live = Runner.prepare cfg in
  let timers_while_down = ref 0 and timers_after = ref 0 in
  Engine.add_observer live.Runner.engine (fun t obs ->
      match obs with
      | Engine.Obs_timer { node = 12; _ } ->
          if t > 150.5 && t < 300. then incr timers_while_down
          else if t >= 300. then incr timers_after
      | _ -> ());
  let r = Runner.complete live in
  Alcotest.(check int) "no timers while down" 0 !timers_while_down;
  Alcotest.(check bool) "timers resume after recovery" true (!timers_after > 0);
  let rep = fault_report r in
  let ep = find_episode rep "crash:12 (wipe)" in
  Alcotest.(check bool)
    (Printf.sprintf "freewheeling transient %.3f exceeds band %.3f"
       ep.Fault_metrics.worst_transient ep.Fault_metrics.band)
    true
    (ep.Fault_metrics.worst_transient > ep.Fault_metrics.band);
  (match ep.Fault_metrics.time_to_resync with
  | None -> Alcotest.fail "wiped node never rejoined the band"
  | Some tau ->
      Alcotest.(check bool)
        (Printf.sprintf "finite rejoin %.3f" tau)
        true
        (Float.is_finite tau && tau >= 0.));
  (* Direct check on the final sample: the recovered node's neighborhood is
     back inside the band. *)
  let incident = Fault_plan.resolve_edges graph (Fault_plan.Cut [ 12 ]) in
  let last = r.Runner.samples.(Array.length r.Runner.samples - 1) in
  let final_skew =
    Metrics.skew_on_edges graph incident last.Metrics.values
  in
  Alcotest.(check bool)
    (Printf.sprintf "final incident skew %.3f within band %.3f" final_skew
       ep.Fault_metrics.band)
    true
    (final_skew <= ep.Fault_metrics.band)

(* PR 1's sharding contract extended to faulted runs: a batch mixing
   partitions, crash-recover, and message tampering produces identical
   results (samples, counters, fault reports) for any job count. *)
let test_sharding_deterministic_with_faults () =
  let plan s =
    match Fault_plan.of_string s with
    | Ok p -> p
    | Error msg -> Alcotest.failf "bad plan %S: %s" s msg
  in
  let cfgs =
    [|
      Runner.config ~horizon:60. ~seed:3
        ~fault_plan:(plan "partition@15:cut=0; heal@30:cut=0")
        (Topology.ring 8);
      Runner.config ~horizon:60. ~seed:4
        ~fault_plan:
          (plan "crash@10:node=2; recover@25:node=2:wipe; corrupt@5..20:p=0.3:mag=1")
        (Topology.line 9);
      Runner.config ~horizon:60. ~seed:5
        ~fault_plan:(plan "dup@0..40:p=0.2; reorder@10..30:p=0.5:extra=1")
        (Topology.grid ~rows:3 ~cols:3);
    |]
  in
  let serial = Parallel_run.run ~jobs:1 cfgs in
  let sharded = Parallel_run.run ~jobs:3 cfgs in
  Array.iteri
    (fun i (a : Runner.result) ->
      let b = sharded.(i) in
      Alcotest.(check bool)
        (Printf.sprintf "run %d: summary identical" i)
        true
        (a.Runner.summary = b.Runner.summary);
      Alcotest.(check bool)
        (Printf.sprintf "run %d: samples identical" i)
        true
        (a.Runner.samples = b.Runner.samples);
      Alcotest.(check int)
        (Printf.sprintf "run %d: fault drops" i)
        a.Runner.dropped_faults b.Runner.dropped_faults;
      Alcotest.(check bool)
        (Printf.sprintf "run %d: fault report identical" i)
        true
        (a.Runner.fault_report = b.Runner.fault_report))
    serial

(* Satellite property from the issue: any plan whose faults are all healed
   or recovered well before the horizon eventually re-enters the no-fault
   steady-state band — every episode closes and reports a resync time. *)
let qcheck_healed_plans_reenter_band =
  let open QCheck in
  let fault_gen i =
    (* Index-disjoint targets (node 2i) so random faults never interleave on
       the same node or edge, keeping episode pairing unambiguous. *)
    let v = 2 * i in
    Gen.(
      let* t1 = map float_of_int (int_range 40 70) in
      let* d = map float_of_int (int_range 10 30) in
      oneof
        [
          return
            [
              Fault_plan.Link_partition
                { at = t1; edges = Fault_plan.Cut [ v ] };
              Fault_plan.Link_heal
                { at = t1 +. d; edges = Fault_plan.Cut [ v ] };
            ];
          map
            (fun wipe ->
              [
                Fault_plan.Node_crash { at = t1; node = v };
                Fault_plan.Node_recover { at = t1 +. d; node = v; wipe };
              ])
            bool;
          return
            [
              Fault_plan.Msg_duplicate
                {
                  from_ = t1;
                  until = t1 +. d;
                  edges = Fault_plan.All_edges;
                  prob = 0.3;
                };
            ];
        ])
  in
  let plan_gen =
    Gen.(
      let* k = int_range 1 3 in
      let* faults =
        flatten_l (List.init k fault_gen)
      in
      let* seed = int_range 0 1000 in
      return (Fault_plan.of_events (List.concat faults), seed))
  in
  let arb =
    QCheck.make plan_gen ~print:(fun (p, seed) ->
        Printf.sprintf "seed=%d %s" seed (Fault_plan.to_string p))
  in
  QCheck.Test.make ~count:15 ~name:"healed plans re-enter the band" arb
    (fun (plan, seed) ->
      let cfg =
        Runner.config ~horizon:300. ~seed ~fault_plan:plan (Topology.ring 8)
      in
      let rep = fault_report (Runner.run cfg) in
      List.for_all
        (fun (e : Fault_metrics.episode_report) ->
          e.Fault_metrics.stop <> None
          && e.Fault_metrics.time_to_resync <> None)
        rep.Fault_metrics.episodes)

(* The Byzantine machinery must be a no-op when it does nothing: a plan
   whose only event is a zero-magnitude constant lie rewrites every beacon
   to its own value, and the lie PRNG streams are split after all other
   streams, so the run must be bit-identical — samples, summary, message
   counts — to the same config with no fault plan at all. *)
let qcheck_null_lie_is_invisible =
  let open QCheck in
  let gen =
    Gen.(
      let* seed = int_range 0 1000 in
      let* node = int_range 0 7 in
      let* algo =
        oneofl
          [
            Gcs_core.Algorithm.Gradient_sync;
            Gcs_core.Algorithm.Ft_gradient_sync 1;
            Gcs_core.Algorithm.Tree_sync;
          ]
      in
      return (seed, node, algo))
  in
  let arb =
    QCheck.make gen ~print:(fun (seed, node, algo) ->
        Printf.sprintf "seed=%d liar=%d algo=%s" seed node
          (Gcs_core.Algorithm.kind_name algo))
  in
  QCheck.Test.make ~count:15 ~name:"zero-magnitude lie is invisible" arb
    (fun (seed, node, algo) ->
      let graph = Topology.ring 8 in
      let plan =
        Fault_plan.of_events
          [
            Fault_plan.Byzantine
              {
                from_ = 20.;
                until = 60.;
                node;
                strategy = Fault_plan.Lie_constant 0.;
              };
          ]
      in
      let run fault_plan =
        Runner.run (Runner.config ~algo ~horizon:80. ~seed ?fault_plan graph)
      in
      let a = run None and b = run (Some plan) in
      a.Runner.samples = b.Runner.samples
      && a.Runner.summary = b.Runner.summary
      && a.Runner.messages = b.Runner.messages)

(* Sharding stays bit-identical when the plans lie: Byzantine configs over
   every strategy produce the same samples and fault reports (lied counts
   included) for any job count. *)
let qcheck_sharding_deterministic_with_byzantine =
  let open QCheck in
  let gen =
    Gen.(
      let* seed = int_range 0 1000 in
      let* strategy =
        oneofl
          [
            Fault_plan.Lie_constant 5.;
            Fault_plan.Lie_constant (-5.);
            Fault_plan.Lie_drifting 0.2;
            Fault_plan.Lie_random 5.;
            Fault_plan.Lie_equivocate 5.;
          ]
      in
      return (seed, strategy))
  in
  let arb =
    QCheck.make gen ~print:(fun (seed, s) ->
        Printf.sprintf "seed=%d strategy=%s" seed
          (Fault_plan.to_string
             (Fault_plan.of_events
                [ Fault_plan.Byzantine { from_ = 0.; until = 1.; node = 0; strategy = s } ])))
  in
  QCheck.Test.make ~count:10 ~name:"sharding deterministic under liars" arb
    (fun (seed, strategy) ->
      let plan node =
        Fault_plan.of_events
          [ Fault_plan.Byzantine { from_ = 15.; until = 45.; node; strategy } ]
      in
      let cfgs =
        [|
          Runner.config ~horizon:60. ~seed ~fault_plan:(plan 2)
            (Topology.ring 8);
          Runner.config ~horizon:60. ~seed:(seed + 1) ~fault_plan:(plan 4)
            ~algo:(Gcs_core.Algorithm.Ft_gradient_sync 1) (Topology.line 9);
          Runner.config ~horizon:60. ~seed:(seed + 2) ~fault_plan:(plan 3)
            (Topology.grid ~rows:3 ~cols:3);
        |]
      in
      let serial = Parallel_run.run ~jobs:1 cfgs in
      let sharded = Parallel_run.run ~jobs:3 cfgs in
      Array.for_all2
        (fun (a : Runner.result) (b : Runner.result) ->
          a.Runner.samples = b.Runner.samples
          && a.Runner.fault_report = b.Runner.fault_report)
        serial sharded)

let suite =
  [
    Alcotest.test_case "partition-heal: finite resync on ring:64" `Quick
      test_partition_heal_ring64;
    Alcotest.test_case "crash-wipe: node rejoins" `Quick
      test_crash_wipe_rejoins;
    Alcotest.test_case "sharding deterministic with faults" `Quick
      test_sharding_deterministic_with_faults;
    QCheck_alcotest.to_alcotest qcheck_healed_plans_reenter_band;
    QCheck_alcotest.to_alcotest qcheck_null_lie_is_invisible;
    QCheck_alcotest.to_alcotest qcheck_sharding_deterministic_with_byzantine;
  ]
