(* The parallel runner's contract: sharding a batch across domains changes
   wall-clock time and nothing else. The qcheck property drives that over
   random graph families, algorithms, seeds, and loss laws. *)

module Topology = Gcs_graph.Topology
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Parallel_run = Gcs_core.Parallel_run
module Metrics = Gcs_core.Metrics

let graph_of_family (family, n) =
  match family with
  | `Line -> Topology.line n
  | `Ring -> Topology.ring n
  | `Star -> Topology.star n
  | `Complete -> Topology.complete n
  | `Grid -> Topology.grid ~rows:2 ~cols:(max 2 (n / 2))

let config_gen =
  QCheck.Gen.(
    let* family = oneofl [ `Line; `Ring; `Star; `Complete; `Grid ] in
    let* n = int_range 4 9 in
    let* algo = oneofl Algorithm.all_kinds in
    let* seed = int_range 0 10_000 in
    let* loss_p = oneofl [ 0.; 0.; 0.3; 0.6 ] in
    return (family, n, algo, seed, loss_p))

let config_print (family, n, algo, seed, loss_p) =
  Printf.sprintf "%s:%d %s seed=%d loss=%g"
    (match family with
    | `Line -> "line"
    | `Ring -> "ring"
    | `Star -> "star"
    | `Complete -> "complete"
    | `Grid -> "grid")
    n
    (Algorithm.kind_name algo)
    seed loss_p

let build (family, n, algo, seed, loss_p) =
  let loss =
    if loss_p <= 0. then Runner.No_loss else Runner.Uniform_loss loss_p
  in
  Runner.config ~algo ~loss ~horizon:40. ~seed (graph_of_family (family, n))

let batch_arb =
  QCheck.make
    ~print:(fun cs -> String.concat "; " (List.map config_print cs))
    QCheck.Gen.(list_size (int_range 1 5) config_gen)

let same_sample (a : Metrics.sample) (b : Metrics.sample) =
  a.Metrics.time = b.Metrics.time && a.Metrics.values = b.Metrics.values

let same_result (a : Runner.result) (b : Runner.result) =
  a.Runner.summary = b.Runner.summary
  && Array.length a.Runner.samples = Array.length b.Runner.samples
  && Array.for_all2 same_sample a.Runner.samples b.Runner.samples
  && a.Runner.events = b.Runner.events
  && a.Runner.messages = b.Runner.messages
  && a.Runner.dropped = b.Runner.dropped
  && a.Runner.jumps = b.Runner.jumps

let prop_sharding_deterministic =
  QCheck.Test.make ~name:"run ~jobs:4 = run ~jobs:1 (summaries, samples, counts)"
    ~count:12 batch_arb (fun batch ->
      let cfgs = Array.of_list (List.map build batch) in
      let serial = Parallel_run.run ~jobs:1 cfgs in
      let parallel = Parallel_run.run ~jobs:4 cfgs in
      Array.length serial = Array.length parallel
      && Array.for_all2 same_result serial parallel)

let prop_map_matches_run =
  QCheck.Test.make ~name:"map ~jobs extracts the same scalars as run" ~count:8
    batch_arb (fun batch ->
      let cfgs = Array.of_list (List.map build batch) in
      let via_map =
        Parallel_run.map ~jobs:3
          ~f:(fun r -> r.Runner.summary.Metrics.max_local)
          cfgs
      in
      let via_run =
        Array.map
          (fun (r : Runner.result) -> r.Runner.summary.Metrics.max_local)
          (Parallel_run.run ~jobs:1 cfgs)
      in
      via_map = via_run)

let test_merge () =
  let graph = Topology.ring 6 in
  let cfgs =
    Array.of_list
      (List.map
         (fun seed -> Runner.config ~horizon:30. ~seed graph)
         [ 3; 14; 15 ])
  in
  let results = Parallel_run.run ~jobs:2 cfgs in
  let m = Parallel_run.merge results in
  Alcotest.(check int) "one summary per config" 3
    (Array.length m.Parallel_run.summaries);
  Array.iteri
    (fun i (r : Runner.result) ->
      Alcotest.(check bool)
        (Printf.sprintf "summary %d preserved" i)
        true
        (m.Parallel_run.summaries.(i) = r.Runner.summary))
    results;
  let total_samples =
    Array.fold_left
      (fun acc (r : Runner.result) -> acc + Array.length r.Runner.samples)
      0 results
  in
  Alcotest.(check int) "all samples merged" total_samples
    (Array.length m.Parallel_run.samples);
  (* Nondecreasing time; ties broken by run index (stable interleave). *)
  Array.iteri
    (fun i (run, s) ->
      if i > 0 then begin
        let prev_run, prev = m.Parallel_run.samples.(i - 1) in
        Alcotest.(check bool) "time sorted" true
          (prev.Metrics.time <= s.Metrics.time);
        if prev.Metrics.time = s.Metrics.time then
          Alcotest.(check bool) "stable on ties" true (prev_run <= run)
      end)
    m.Parallel_run.samples;
  let sum f = Array.fold_left (fun acc r -> acc + f r) 0 results in
  Alcotest.(check int) "events total" (sum (fun r -> r.Runner.events))
    m.Parallel_run.events;
  Alcotest.(check int) "messages total" (sum (fun r -> r.Runner.messages))
    m.Parallel_run.messages;
  Alcotest.(check int) "dropped total" (sum (fun r -> r.Runner.dropped))
    m.Parallel_run.dropped

let test_merge_observability () =
  let graph = Topology.ring 6 in
  let obs = Gcs_obs.Capture.full ~series_period:10. () in
  let cfgs =
    Array.of_list
      (List.map
         (fun seed -> Runner.config ~horizon:30. ~seed ~obs graph)
         [ 3; 14 ])
  in
  let results = Parallel_run.run ~jobs:2 cfgs in
  let m = Parallel_run.merge results in
  (* Series points: 4 per run (t = 0, 10, 20, 30), tagged by run index,
     sorted by time with ties broken by run. *)
  Alcotest.(check int) "series points merged" 8
    (Array.length m.Parallel_run.series);
  Array.iteri
    (fun i (run, p) ->
      Alcotest.(check bool) "run tag in range" true (run = 0 || run = 1);
      if i > 0 then begin
        let prev_run, prev = m.Parallel_run.series.(i - 1) in
        Alcotest.(check bool) "series time sorted" true
          (prev.Gcs_obs.Series.time <= p.Gcs_obs.Series.time);
        if prev.Gcs_obs.Series.time = p.Gcs_obs.Series.time then
          Alcotest.(check bool) "series stable on ties" true (prev_run <= run)
      end)
    m.Parallel_run.series;
  (* The merged profile sums the per-run reports. *)
  (match m.Parallel_run.profile with
  | None -> Alcotest.fail "expected a merged profiler report"
  | Some rep ->
      let total =
        Array.fold_left (fun acc r -> acc + r.Runner.events) 0 results
      in
      Alcotest.(check int) "profiled events total" total
        rep.Gcs_obs.Profiler.events);
  (* Without capture requests there is nothing to merge. *)
  let bare =
    Parallel_run.merge
      (Parallel_run.run ~jobs:1
         [| Runner.config ~horizon:30. ~seed:3 graph |])
  in
  Alcotest.(check int) "no series without capture" 0
    (Array.length bare.Parallel_run.series);
  Alcotest.(check bool) "no profile without capture" true
    (bare.Parallel_run.profile = None)

let test_replicate_jobs () =
  let graph = Topology.line 7 in
  let f seed =
    let cfg = Runner.config ~horizon:40. ~seed graph in
    (Runner.run cfg).Runner.summary.Metrics.max_local
  in
  let seeds = Gcs_core.Replicate.seeds 8 in
  let serial = Gcs_core.Replicate.measure ~seeds f in
  let sharded = Gcs_core.Replicate.measure ~jobs:4 ~seeds f in
  Alcotest.(check bool) "replicate summary identical under jobs" true
    (serial = sharded)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_sharding_deterministic;
    QCheck_alcotest.to_alcotest prop_map_matches_run;
    Alcotest.test_case "merge is order-preserving and total" `Quick test_merge;
    Alcotest.test_case "merge carries series and profile" `Quick
      test_merge_observability;
    Alcotest.test_case "replicate ~jobs matches serial" `Quick
      test_replicate_jobs;
  ]
