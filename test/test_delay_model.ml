module Dm = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng

let b = Dm.bounds ~d_min:0.5 ~d_max:1.5
let rng () = Prng.create ~seed:4

let draw model =
  Dm.draw model ~edge:0 ~src:0 ~dst:1 ~now:0. ~rng:(rng ())

let test_bounds_validation () =
  Alcotest.check_raises "negative d_min"
    (Invalid_argument "Delay_model.bounds: need 0 <= d_min <= d_max")
    (fun () -> ignore (Dm.bounds ~d_min:(-1.) ~d_max:1.));
  Alcotest.check_raises "inverted"
    (Invalid_argument "Delay_model.bounds: need 0 <= d_min <= d_max")
    (fun () -> ignore (Dm.bounds ~d_min:2. ~d_max:1.))

let test_uncertainty () =
  Alcotest.(check (float 1e-12)) "u" 1. (Dm.uncertainty b)

let test_fixed () =
  Alcotest.(check (float 1e-12)) "fixed = d_max" 1.5 (draw (Dm.fixed b))

let test_midpoint () =
  Alcotest.(check (float 1e-12)) "midpoint" 1.0 (draw (Dm.midpoint b))

let prop_uniform_in_bounds =
  QCheck.Test.make ~name:"uniform draws stay in bounds" ~count:300
    QCheck.small_nat
    (fun seed ->
      let g = Prng.create ~seed in
      let d = Dm.draw (Dm.uniform b) ~edge:0 ~src:0 ~dst:1 ~now:0. ~rng:g in
      d >= 0.5 && d <= 1.5)

let test_per_edge () =
  let bounds_of e =
    if e = 0 then Dm.bounds ~d_min:1. ~d_max:1. else Dm.bounds ~d_min:3. ~d_max:3.
  in
  let m = Dm.per_edge bounds_of in
  Alcotest.(check (float 1e-12)) "edge 0" 1.
    (Dm.draw m ~edge:0 ~src:0 ~dst:1 ~now:0. ~rng:(rng ()));
  Alcotest.(check (float 1e-12)) "edge 1" 3.
    (Dm.draw m ~edge:1 ~src:1 ~dst:2 ~now:0. ~rng:(rng ()));
  Alcotest.(check (float 1e-12)) "edge_bounds" 3. (Dm.edge_bounds m 1).Dm.d_max

let test_controlled_defaults_and_overrides () =
  let chooser = ref None in
  let m = Dm.controlled b ~default:(Dm.midpoint b) chooser in
  Alcotest.(check (float 1e-12)) "default path" 1.0 (draw m);
  chooser := Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 1.4);
  Alcotest.(check (float 1e-12)) "chooser path" 1.4 (draw m);
  chooser := None;
  Alcotest.(check (float 1e-12)) "back to default" 1.0 (draw m)

let test_cleared_chooser_matches_default_stream () =
  (* Lifecycle regression: once the chooser cell is cleared, a controlled
     model must be bit-identical to its default — including the PRNG
     stream, since the chooser path consumes no randomness. *)
  let chooser = ref (Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 1.3)) in
  let m = Dm.controlled b ~default:(Dm.uniform b) chooser in
  Alcotest.(check (float 1e-12)) "adversary phase" 1.3 (draw m);
  chooser := None;
  let g_controlled = Prng.create ~seed:11 in
  let g_default = Prng.create ~seed:11 in
  let plain = Dm.uniform b in
  for i = 0 to 19 do
    let dc =
      Dm.draw m ~edge:i ~src:0 ~dst:1 ~now:(float_of_int i) ~rng:g_controlled
    in
    let dd =
      Dm.draw plain ~edge:i ~src:0 ~dst:1 ~now:(float_of_int i) ~rng:g_default
    in
    Alcotest.(check (float 0.)) "identical draw" dd dc
  done

let test_loss_law_clamped () =
  let m =
    Dm.with_loss (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 7.) (Dm.midpoint b)
  in
  Alcotest.(check (float 1e-12)) "clamped to 1" 1.
    (Dm.drop_probability m ~edge:0 ~src:0 ~dst:1 ~now:0.);
  let m' =
    Dm.with_loss (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> -3.) (Dm.midpoint b)
  in
  Alcotest.(check (float 1e-12)) "clamped to 0" 0.
    (Dm.drop_probability m' ~edge:0 ~src:0 ~dst:1 ~now:0.)

let test_base_models_never_drop () =
  List.iter
    (fun m ->
      Alcotest.(check (float 1e-12)) "no drop" 0.
        (Dm.drop_probability m ~edge:0 ~src:0 ~dst:1 ~now:5.))
    [ Dm.fixed b; Dm.midpoint b; Dm.uniform b ]

let test_controlled_keeps_default_loss () =
  (* A controlled model delegates delays but must keep the default's loss
     law, so an adversary composes with a lossy base model instead of
     silently disabling it. *)
  let lossy =
    Dm.with_loss (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 0.7) (Dm.uniform b)
  in
  let chooser = ref (Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 1.2)) in
  let m = Dm.controlled b ~default:lossy chooser in
  Alcotest.(check (float 1e-12)) "loss law survives" 0.7
    (Dm.drop_probability m ~edge:0 ~src:0 ~dst:1 ~now:0.);
  Alcotest.(check (float 1e-12)) "chooser still wins on delay" 1.2 (draw m)

let test_controlled_clamps_rogue_chooser () =
  let chooser = ref (Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> 99.)) in
  let m = Dm.controlled b ~default:(Dm.midpoint b) chooser in
  Alcotest.(check (float 1e-12)) "clamped to d_max" 1.5 (draw m);
  chooser := Some (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> -5.);
  Alcotest.(check (float 1e-12)) "clamped to d_min" 0.5 (draw m)

let suite =
  [
    Alcotest.test_case "bounds validation" `Quick test_bounds_validation;
    Alcotest.test_case "uncertainty" `Quick test_uncertainty;
    Alcotest.test_case "fixed" `Quick test_fixed;
    Alcotest.test_case "midpoint" `Quick test_midpoint;
    Alcotest.test_case "per edge" `Quick test_per_edge;
    Alcotest.test_case "controlled" `Quick test_controlled_defaults_and_overrides;
    Alcotest.test_case "controlled clamps" `Quick test_controlled_clamps_rogue_chooser;
    Alcotest.test_case "cleared chooser = default stream" `Quick
      test_cleared_chooser_matches_default_stream;
    Alcotest.test_case "controlled keeps default loss" `Quick
      test_controlled_keeps_default_loss;
    Alcotest.test_case "loss law clamped" `Quick test_loss_law_clamped;
    Alcotest.test_case "base models never drop" `Quick test_base_models_never_drop;
    QCheck_alcotest.to_alcotest prop_uniform_in_bounds;
  ]
