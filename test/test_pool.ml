module Pool = Gcs_util.Pool

let test_empty () =
  Alcotest.(check int) "empty batch" 0 (Array.length (Pool.run ~jobs:4 [||]))

let test_order () =
  let xs = Array.init 23 (fun i -> i) in
  let ys = Pool.map ~jobs:4 (fun x -> x * x) xs in
  Alcotest.(check (array int))
    "results in input order"
    (Array.map (fun x -> x * x) xs)
    ys

let test_mapi () =
  let xs = Array.make 9 10 in
  let ys = Pool.mapi ~jobs:3 (fun i x -> i + x) xs in
  Alcotest.(check (array int)) "mapi indices" (Array.init 9 (fun i -> i + 10)) ys

let test_jobs_clamped () =
  (* More jobs than tasks, and jobs:0/negative, must still work. *)
  let xs = Array.init 3 (fun i -> i) in
  Alcotest.(check (array int)) "jobs > n" xs (Pool.map ~jobs:64 (fun x -> x) xs);
  Alcotest.(check (array int)) "jobs 0" xs (Pool.map ~jobs:0 (fun x -> x) xs);
  Alcotest.(check (array int)) "jobs -1" xs (Pool.map ~jobs:(-1) (fun x -> x) xs)

let test_shards_partition () =
  List.iter
    (fun (jobs, n) ->
      let parts = Pool.shards ~jobs n in
      let covered = Array.make n 0 in
      Array.iter
        (fun (off, len) ->
          for i = off to off + len - 1 do
            covered.(i) <- covered.(i) + 1
          done)
        parts;
      Array.iteri
        (fun i c ->
          Alcotest.(check int) (Printf.sprintf "index %d covered once" i) 1 c)
        covered;
      let lens = Array.map snd parts in
      let mn = Array.fold_left min max_int lens
      and mx = Array.fold_left max 0 lens in
      Alcotest.(check bool) "balanced" true (mx - mn <= 1))
    [ (1, 10); (3, 10); (4, 4); (7, 5); (4, 0) ]

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x = 5 then failwith "boom" else x)
           (Array.init 8 (fun i -> i)));
      false
    with Failure m -> m = "boom"
  in
  Alcotest.(check bool) "worker exception re-raised" true raised

let test_earliest_exception_wins () =
  let r =
    try
      ignore
        (Pool.map ~jobs:4
           (fun x -> if x >= 3 then failwith (string_of_int x) else x)
           (Array.init 16 (fun i -> i)));
      "none"
    with Failure m -> m
  in
  Alcotest.(check string) "smallest failing index" "3" r

let prop_matches_serial =
  QCheck.Test.make ~name:"pool map = serial map for any jobs" ~count:100
    QCheck.(pair (int_range 1 9) (list small_int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * 31) lxor 5 in
      Pool.map ~jobs f xs = Array.map f xs)

let suite =
  [
    Alcotest.test_case "empty" `Quick test_empty;
    Alcotest.test_case "order" `Quick test_order;
    Alcotest.test_case "mapi" `Quick test_mapi;
    Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
    Alcotest.test_case "shards partition" `Quick test_shards_partition;
    Alcotest.test_case "exception propagates" `Quick test_exception_propagates;
    Alcotest.test_case "earliest exception wins" `Quick
      test_earliest_exception_wins;
    QCheck_alcotest.to_alcotest prop_matches_serial;
  ]
