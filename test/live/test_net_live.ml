(* End-to-end live execution: fork a real multi-process UDP fleet on
   loopback, collect it into a standard result, and require the recording
   to satisfy the same schema and finiteness contracts the CLI smoke
   enforces. This lives in its own executable because Unix.fork may not
   be called after any domain has been created, and the main test binary
   exercises the domain pool. *)

module Topology = Gcs_graph.Topology
module Algorithm = Gcs_core.Algorithm
module Metrics = Gcs_core.Metrics
module Runner = Gcs_core.Runner
module Capture = Gcs_obs.Capture
module Event_log = Gcs_obs.Event_log
module Live_run = Gcs_net.Live_run

(* The port base is derived from the pid so parallel test invocations do
   not collide. *)
let test_live_loopback () =
  let cfg =
    Live_run.config ~topology:(Topology.Ring 3) ~algo:Algorithm.Gradient_sync
      ~horizon:1.5 ~sample_period:0.3 ~seed:11
      ~base_port:(20000 + (Unix.getpid () mod 20000))
      ~startup:0.2 ()
  in
  let r = Live_run.run cfg in
  Alcotest.(check bool) "messages flowed" true (r.Runner.messages > 0);
  Alcotest.(check bool) "dispatches counted" true (r.Runner.dispatches > 0);
  Alcotest.(check bool)
    "finite local skew" true
    (Float.is_finite r.Runner.summary.Metrics.max_local);
  Alcotest.(check bool)
    "finite global skew" true
    (Float.is_finite r.Runner.summary.Metrics.max_global);
  let log =
    match r.Runner.obs.Capture.event_log with
    | Some log -> log
    | None -> Alcotest.fail "no merged event log"
  in
  Alcotest.(check bool) "events recorded" true (Event_log.recorded log > 0);
  (* Every merged line must round-trip the canonical schema — the same
     property `gcs-cli trace --check-schema` enforces. *)
  List.iter
    (fun line ->
      match Event_log.validate_line line with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "schema violation: %s" msg)
    (Event_log.to_lines log);
  (* The recorded directory round-trips. *)
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcs-test-rec-%d" (Unix.getpid ()))
  in
  Live_run.save cfg r ~dir;
  (match Live_run.load dir with
  | Error msg -> Alcotest.failf "load failed: %s" msg
  | Ok (info, r') ->
      Alcotest.(check int) "seed preserved" 11 info.Live_run.seed;
      Alcotest.(check int) "messages preserved" r.Runner.messages
        r'.Runner.messages;
      Alcotest.(check int) "events preserved" r.Runner.events r'.Runner.events;
      Alcotest.(check bool) "samples preserved" true
        (Array.length r'.Runner.samples = Array.length r.Runner.samples));
  Array.iter
    (fun name -> Sys.remove (Filename.concat dir name))
    (Sys.readdir dir);
  Unix.rmdir dir

let () =
  Alcotest.run "gcs-net-live"
    [
      ( "live",
        [
          Alcotest.test_case "loopback ring end to end" `Quick
            test_live_loopback;
        ] );
    ]
