module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Invariant = Gcs_core.Invariant

let spec = Spec.make ()

let sample t values = { Metrics.time = t; values }

let test_rate_envelope_flags_spike () =
  let samples =
    [| sample 0. [| 0.; 0. |]; sample 1. [| 1.; 5. |]; sample 2. [| 2.; 6. |] |]
  in
  let violations = Invariant.check_rate_envelope samples ~lo:0.9 ~hi:1.2 in
  Alcotest.(check int) "one spike" 1 (List.length violations);
  match violations with
  | [ v ] ->
      Alcotest.(check int) "node 1" 1 v.Invariant.node;
      Alcotest.(check (float 1e-9)) "at t=1" 1. v.Invariant.time
  | _ -> Alcotest.fail "unexpected"

let test_rate_envelope_clean () =
  let samples = [| sample 0. [| 0. |]; sample 1. [| 1.05 |] |] in
  Alcotest.(check int) "clean" 0
    (List.length (Invariant.check_rate_envelope samples ~lo:1. ~hi:1.1))

let test_monotonic_flags_regression () =
  let samples = [| sample 0. [| 5. |]; sample 1. [| 4. |] |] in
  Alcotest.(check int) "backwards flagged" 1
    (List.length (Invariant.check_monotonic samples))

let test_skew_bound_respects_after () =
  let g = Topology.line 2 in
  let samples = [| sample 0. [| 0.; 100. |]; sample 10. [| 0.; 1. |] |] in
  Alcotest.(check int) "warm-up violation ignored" 0
    (List.length
       (Invariant.check_skew_bound g samples ~after:5. ~bound:2. `Local));
  Alcotest.(check int) "violation caught without after" 1
    (List.length
       (Invariant.check_skew_bound g samples ~after:0. ~bound:2. `Global))

let test_skew_bound_reports_pair () =
  (* Worst adjacent pair on a line 0-1-2-3: the 1~2 gap dominates. *)
  let g = Topology.line 4 in
  let samples = [| sample 0. [| 0.; 1.; 9.; 10. |] |] in
  (match Invariant.check_skew_bound g samples ~after:0. ~bound:2. `Local with
  | [ v ] ->
      Alcotest.(check int) "local pair lower id" 1 v.Invariant.node;
      Alcotest.(check (option int)) "local pair peer" (Some 2) v.Invariant.peer
  | vs -> Alcotest.failf "expected one local violation, got %d" (List.length vs));
  (* Global pair is (argmin, argmax) = nodes 0 and 3. *)
  match Invariant.check_skew_bound g samples ~after:0. ~bound:2. `Global with
  | [ v ] ->
      Alcotest.(check int) "global pair lower id" 0 v.Invariant.node;
      Alcotest.(check (option int)) "global pair peer" (Some 3) v.Invariant.peer
  | vs -> Alcotest.failf "expected one global violation, got %d" (List.length vs)

let test_envelopes_per_algorithm () =
  let free = Invariant.expected_envelope spec Algorithm.Free_run in
  let grad = Invariant.expected_envelope spec Algorithm.Gradient_sync in
  let tree = Invariant.expected_envelope spec Algorithm.Tree_sync in
  let max = Invariant.expected_envelope spec Algorithm.Max_sync in
  Alcotest.(check bool) "free-run tightest" true
    (free.Invariant.rate_hi < grad.Invariant.rate_hi);
  Alcotest.(check bool) "tree can slew down" true
    (tree.Invariant.rate_lo < 1.);
  Alcotest.(check bool) "only max jumps" true
    (max.Invariant.jumps_allowed
    && (not free.Invariant.jumps_allowed)
    && (not grad.Invariant.jumps_allowed)
    && not tree.Invariant.jumps_allowed)

let run algo =
  Runner.run
    (Runner.config ~spec ~algo ~horizon:300. ~seed:63 (Topology.ring 8))

let test_all_builtin_algorithms_conform () =
  List.iter
    (fun algo ->
      let r = run algo in
      match Invariant.check_result r ~algo with
      | [] -> ()
      | v :: _ ->
          Alcotest.failf "%s violates: %s"
            (Algorithm.kind_name algo)
            (Invariant.to_string v))
    Algorithm.all_kinds

let test_jumping_algorithm_fails_envelope_check () =
  (* Max-sync's jumps must show up when checked against a no-jump envelope:
     the checker sees what the jump accounting sees. *)
  let r = run Algorithm.Max_sync in
  let env = Invariant.expected_envelope spec Algorithm.Gradient_sync in
  let violations =
    Invariant.check_rate_envelope r.Runner.samples ~lo:env.Invariant.rate_lo
      ~hi:env.Invariant.rate_hi
  in
  Alcotest.(check bool) "jumps detected as rate spikes" true
    (List.length violations > 0)

let test_to_string () =
  let v = { Invariant.time = 1.; node = 3; peer = None; what = "boom" } in
  Alcotest.(check string) "per-node format" "[t=1.000, node 3] boom"
    (Invariant.to_string v);
  let w = { Invariant.time = 1.; node = -1; peer = None; what = "boom" } in
  Alcotest.(check string) "system-level format" "[t=1.000] boom"
    (Invariant.to_string w);
  let p = { Invariant.time = 1.; node = 3; peer = Some 7; what = "boom" } in
  Alcotest.(check string) "pairwise format" "[t=1.000, nodes 3~7] boom"
    (Invariant.to_string p)

let suite =
  [
    Alcotest.test_case "rate spike flagged" `Quick test_rate_envelope_flags_spike;
    Alcotest.test_case "rate clean" `Quick test_rate_envelope_clean;
    Alcotest.test_case "monotonic" `Quick test_monotonic_flags_regression;
    Alcotest.test_case "skew bound after" `Quick test_skew_bound_respects_after;
    Alcotest.test_case "skew bound pair" `Quick test_skew_bound_reports_pair;
    Alcotest.test_case "per-algorithm envelopes" `Quick test_envelopes_per_algorithm;
    Alcotest.test_case "builtins conform" `Quick test_all_builtin_algorithms_conform;
    Alcotest.test_case "jumps fail strict check" `Quick test_jumping_algorithm_fails_envelope_check;
    Alcotest.test_case "to_string" `Quick test_to_string;
  ]
