(* gcs.net: the live-transport subsystem.

   The load-bearing property is shim identity: rerouting an algorithm's
   callbacks through a [Transport.Driver] over the simulator-backed shim
   must leave every run byte-identical to the direct run — same flattened
   outcome, same samples, same event-log bytes — over random topology x
   algorithm x seed x fault-plan configurations. That identity is what
   lets a recorded UDP execution of the same driver be read as an
   execution of the stock algorithm. The rest pins the wire codec
   (round-trip + malformed-frame rejection), the per-node fault-plan
   compiler, and offline sample checking; the forked live loopback
   end-to-end test is in test/live/. *)

module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Message = Gcs_core.Message
module Metrics = Gcs_core.Metrics
module Runner = Gcs_core.Runner
module Engine = Gcs_sim.Engine
module Fault_plan = Gcs_sim.Fault_plan
module Prng = Gcs_util.Prng
module Capture = Gcs_obs.Capture
module Event_log = Gcs_obs.Event_log
module Codec = Gcs_net.Codec
module Inject = Gcs_net.Inject
module Sim_shim = Gcs_net.Sim_shim
module Monitor = Gcs_check.Monitor
module Check_run = Gcs_check.Check_run

(* ------------------------------------------------------------------ *)
(* Codec *)

let all_messages =
  [
    Message.Beacon { value = 12.25 };
    Message.Probe { seq = 7; h_send = 3.5 };
    Message.Probe_reply { seq = 7; h_send = 3.5; remote_value = -1.75 };
    Message.Flood { round = 3; payload = 0.125 };
    Message.Report { round = 3; lo = -2.5; hi = 9.0 };
    Message.Reset { round = 4; payload = 6.5 };
  ]

let test_codec_roundtrip () =
  List.iteri
    (fun i msg ->
      let frame = Codec.encode ~src:(i * 7) ~seq:(i * 1000 + 3) msg in
      match Codec.decode frame ~len:(Bytes.length frame) with
      | Ok (src, seq, msg') ->
          Alcotest.(check int) "src" (i * 7) src;
          Alcotest.(check int) "seq" ((i * 1000) + 3) seq;
          Alcotest.(check bool) "message" true (msg = msg')
      | Error e -> Alcotest.failf "decode failed: %s" (Codec.error_to_string e))
    all_messages

let expect_error name expected buf len =
  match Codec.decode buf ~len with
  | Ok _ -> Alcotest.failf "%s: decode unexpectedly succeeded" name
  | Error e ->
      Alcotest.(check string)
        name
        (Codec.error_to_string expected)
        (Codec.error_to_string e)

let test_codec_rejection () =
  let frame = Codec.encode ~src:2 ~seq:5 (Message.Beacon { value = 1.5 }) in
  (* Truncated: cut anywhere inside the header. *)
  expect_error "truncated" Codec.Truncated frame 7;
  (* Bad magic. *)
  let bad = Bytes.copy frame in
  Bytes.set bad 2 'X';
  expect_error "bad magic" Codec.Bad_magic bad (Bytes.length bad);
  (* Bad version. *)
  let bad = Bytes.copy frame in
  Bytes.set bad 4 (Char.chr (Codec.version + 1));
  expect_error "bad version" Codec.Bad_version bad (Bytes.length bad);
  (* Bad tag. *)
  let bad = Bytes.copy frame in
  Bytes.set bad 11 (Char.chr 99);
  expect_error "bad tag" Codec.Bad_tag bad (Bytes.length bad);
  (* Length prefix inconsistent with the received byte count. *)
  let padded = Bytes.extend frame 0 4 in
  expect_error "length mismatch" Codec.Length_mismatch padded
    (Bytes.length padded)

(* ------------------------------------------------------------------ *)
(* Sim shim byte-identity *)

let shim_topologies =
  [|
    (fun n -> Topology.Line (max 2 n));
    (fun n -> Topology.Ring (max 3 n));
    (fun n -> Topology.Complete (max 2 (min 5 n)));
    (fun _ -> Topology.Grid (2, 3));
  |]

let shim_algos =
  [|
    Algorithm.Gradient_sync;
    Algorithm.Tree_sync;
    Algorithm.Max_sync;
    Algorithm.Ft_gradient_sync 1;
  |]

let shim_plans =
  [|
    None;
    Some "partition@10:cut=0; heal@25:cut=0";
    Some "crash@12:node=1; recover@24:node=1:wipe";
    Some "dup@5..30:p=0.4; corrupt@10..25:p=0.3:mag=0.5";
  |]

let shim_cfg ?obs case =
  let topo = shim_topologies.(case mod 4) (3 + (case mod 5)) in
  let algo = shim_algos.(case / 4 mod 4) in
  let seed = 100 + (case * 37) in
  let graph = Topology.build topo ~rng:(Prng.create ~seed:(seed lxor 0x5eed)) in
  let fault_plan =
    match shim_plans.(case / 16 mod 4) with
    | None -> None
    | Some s -> (
        match Fault_plan.of_string s with
        | Ok p -> Some p
        | Error msg -> Alcotest.failf "plan did not parse: %s" msg)
  in
  Runner.config ~spec:(Spec.make ~kappa:0.5 ()) ~algo ~horizon:40. ~seed
    ?fault_plan ?obs graph

let test_shim_identity_prop =
  QCheck.Test.make ~name:"sim-shim run is byte-identical to direct run"
    ~count:64
    QCheck.(int_bound 1000)
    (fun case ->
      let cfg = shim_cfg case in
      let direct = Runner.run cfg in
      let shimmed = Sim_shim.run cfg in
      Runner.outcome direct = Runner.outcome shimmed
      && direct.Runner.samples = shimmed.Runner.samples
      && direct.Runner.events = shimmed.Runner.events
      && direct.Runner.dispatches = shimmed.Runner.dispatches)

let test_shim_event_log_bytes () =
  let obs = { Capture.none with Capture.events = true } in
  List.iter
    (fun case ->
      let log_string (r : Runner.result) =
        match r.Runner.obs.Capture.event_log with
        | Some log -> Event_log.to_string log
        | None -> Alcotest.fail "event log missing"
      in
      let direct = Runner.run (shim_cfg ~obs case) in
      let shimmed = Sim_shim.run (shim_cfg ~obs case) in
      let bytes = log_string direct in
      Alcotest.(check bool)
        (Printf.sprintf "case %d: log nonempty" case)
        true
        (String.length bytes > 0);
      Alcotest.(check bool)
        (Printf.sprintf "case %d: event log byte-identical" case)
        true
        (String.equal bytes (log_string shimmed)))
    [ 0; 5; 21; 38; 50 ]

(* ------------------------------------------------------------------ *)
(* Inject *)

let plan_of_string s =
  match Fault_plan.of_string s with
  | Ok p -> p
  | Error msg -> Alcotest.failf "plan did not parse: %s (%s)" s msg

let test_inject_partition () =
  let graph = Topology.ring 4 in
  let plan = plan_of_string "partition@10:edges=0-1; heal@20:edges=0-1" in
  let inj = Inject.create ~graph ~node:0 ~seed:7 plan in
  let edge = Graph.edge_at_port graph 0 (Graph.port_of_neighbor graph 0 1) in
  Alcotest.(check bool) "up before" true (Inject.edge_up inj ~edge ~now:5.);
  Alcotest.(check bool) "down inside" false (Inject.edge_up inj ~edge ~now:15.);
  Alcotest.(check bool) "up after" true (Inject.edge_up inj ~edge ~now:25.);
  let v = Inject.outgoing inj ~now:15. ~edge ~dst:1 (Message.Beacon { value = 1. }) in
  Alcotest.(check bool) "dropped" true v.Inject.fault_drop;
  Alcotest.(check int) "no sends" 0 (List.length v.Inject.sends);
  (* Controls: node 0 is the min endpoint of edge 0-1, so it owns the
     edge-status observations. *)
  let due = Inject.due inj ~now:12. in
  Alcotest.(check bool) "edge_down due" true
    (List.exists (function Inject.Edge_down _ -> true | _ -> false) due)

let test_inject_dup_corrupt () =
  let graph = Topology.ring 4 in
  let plan = plan_of_string "dup@0..100:p=1:all; corrupt@0..100:p=1:mag=0.5:all" in
  let inj = Inject.create ~graph ~node:0 ~seed:7 plan in
  let v =
    Inject.outgoing inj ~now:10. ~edge:0 ~dst:1 (Message.Beacon { value = 4. })
  in
  Alcotest.(check bool) "not dropped" false v.Inject.fault_drop;
  Alcotest.(check bool) "duplicated" true v.Inject.duplicated;
  Alcotest.(check bool) "corrupted" true v.Inject.corrupted;
  Alcotest.(check int) "two copies" 2 (List.length v.Inject.sends);
  List.iter
    (fun (_, msg) ->
      match msg with
      | Message.Beacon { value } ->
          Alcotest.(check bool) "value perturbed" true (value <> 4.);
          Alcotest.(check bool) "within magnitude" true
            (Float.abs (value -. 4.) <= 0.5 +. 1e-9)
      | _ -> Alcotest.fail "variant changed")
    v.Inject.sends

let test_inject_byzantine_equivocate () =
  let graph = Topology.ring 4 in
  let plan = plan_of_string "byz@0..100:node=1:equiv=3" in
  let inj = Inject.create ~graph ~node:1 ~seed:7 plan in
  let edge_to w = Graph.edge_at_port graph 1 (Graph.port_of_neighbor graph 1 w) in
  let high =
    Inject.outgoing inj ~now:10. ~edge:(edge_to 2) ~dst:2
      (Message.Beacon { value = 1. })
  in
  let low =
    Inject.outgoing inj ~now:10. ~edge:(edge_to 0) ~dst:0
      (Message.Beacon { value = 1. })
  in
  let value v =
    match v.Inject.sends with
    | [ (_, Message.Beacon { value }) ] -> value
    | _ -> Alcotest.fail "expected one beacon"
  in
  Alcotest.(check bool) "lied" true (high.Inject.lied && low.Inject.lied);
  Alcotest.(check (float 1e-9)) "+mag to higher id" 4. (value high);
  Alcotest.(check (float 1e-9)) "-mag to lower id" (-2.) (value low)

(* ------------------------------------------------------------------ *)
(* Offline sample checking *)

let samples_of_rows rows =
  Array.of_list
    (List.map
       (fun (time, values) -> { Metrics.time; values = Array.of_list values })
       rows)

let test_check_samples_clean () =
  let graph = Topology.ring 3 in
  let spec =
    Check_run.default_spec (Spec.make ()) Algorithm.Gradient_sync
  in
  let samples =
    samples_of_rows
      [
        (0., [ 0.; 0.; 0. ]);
        (1., [ 1.; 1.002; 1.001 ]);
        (2., [ 2.; 2.004; 2.003 ]);
      ]
  in
  let violation, checked = Monitor.check_samples spec ~graph ~samples in
  Alcotest.(check bool) "no violation" true (violation = None);
  Alcotest.(check int) "checked 2 rows x 3 nodes" 6 checked

let test_check_samples_backwards () =
  let graph = Topology.ring 3 in
  let spec =
    Check_run.default_spec (Spec.make ()) Algorithm.Gradient_sync
  in
  let samples =
    samples_of_rows
      [ (0., [ 0.; 0.; 0. ]); (1., [ 1.; 1.; 1. ]); (2., [ 2.; 0.5; 2. ]) ]
  in
  match Monitor.check_samples spec ~graph ~samples with
  | Some v, _ ->
      Alcotest.(check string) "kind" "monotonic" (Monitor.kind_name v.Monitor.kind);
      Alcotest.(check int) "node" 1 v.Monitor.node
  | None, _ -> Alcotest.fail "backwards clock not caught"

(* The forked live-loopback end-to-end test lives in its own executable
   (test/live/): Unix.fork may not be called after any domain has been
   created, and this binary exercises the domain pool. *)

let suite =
  [
    Alcotest.test_case "codec round-trips every variant" `Quick
      test_codec_roundtrip;
    Alcotest.test_case "codec rejects malformed frames" `Quick
      test_codec_rejection;
    QCheck_alcotest.to_alcotest test_shim_identity_prop;
    Alcotest.test_case "sim-shim event log byte-identical" `Quick
      test_shim_event_log_bytes;
    Alcotest.test_case "inject: partition drops and toggles" `Quick
      test_inject_partition;
    Alcotest.test_case "inject: dup + corrupt windows" `Quick
      test_inject_dup_corrupt;
    Alcotest.test_case "inject: equivocation splits sides" `Quick
      test_inject_byzantine_equivocate;
    Alcotest.test_case "check_samples: clean trajectory conforms" `Quick
      test_check_samples_clean;
    Alcotest.test_case "check_samples: backwards clock caught" `Quick
      test_check_samples_backwards;
  ]
