(* The fast/slow trigger logic is the heart of the gradient algorithm; these
   tests pin its semantics level by level. Offsets are o_{v,w} = own - w. *)

let fast = Gcs_core.Gradient_sync.fast_trigger ~kappa:1.
let slow = Gcs_core.Gradient_sync.slow_trigger ~kappa:1.

let check = Alcotest.(check bool)

let test_no_neighbors () =
  check "no neighbors never fast" false (fast ~offsets:[||]);
  check "no neighbors is slow" true (slow ~offsets:[||])

let test_balanced () =
  check "all zero not fast" false (fast ~offsets:[| 0.; 0. |]);
  check "all zero slow" true (slow ~offsets:[| 0.; 0. |])

let test_level0_fast () =
  (* Neighbor ahead by 1.5 kappa (offset -1.5), nobody behind: level 0 fast
     condition (ahead >= kappa, behind <= kappa). *)
  check "pulled up" true (fast ~offsets:[| -1.5; 0. |])

let test_fast_blocked_by_laggard () =
  (* A neighbor ahead by 1.5 but another behind by 2: level 0 needs
     behind <= 1, level 1 needs ahead >= 3. Blocked. *)
  check "blocked" false (fast ~offsets:[| -1.5; 2. |])

let test_level1_fast () =
  (* Ahead by 3.5, behind by 2.5: level 1 (threshold 3) applies. *)
  check "level 1 fires" true (fast ~offsets:[| -3.5; 2.5 |])

let test_level_mismatch () =
  (* Ahead by 3.9 (s=1 threshold 3 satisfied), but behind by 3.5 > 3 and
     ahead < 5 (s=2): no level works. *)
  check "no level" false (fast ~offsets:[| -3.9; 3.5 |])

let test_slow_level1 () =
  (* Behind by 2.5 (>= 2s with s=1), ahead 1.5 <= 2: slow holds. *)
  check "slow level 1" true (slow ~offsets:[| 2.5; -1.5 |])

let test_slow_blocked () =
  (* Behind by 2.5 but ahead by 3: s=1 fails (ahead > 2), s=2 needs
     behind >= 4. *)
  check "slow blocked" false (slow ~offsets:[| 2.5; -3. |])

let test_exact_thresholds () =
  (* ahead exactly kappa satisfies level 0 (>=); behind exactly kappa
     satisfies the universal part (<=). *)
  check "boundary fast" true (fast ~offsets:[| -1.; 1. |]);
  (* behind exactly 0 with s=0: trivially slow. *)
  check "boundary slow" true (slow ~offsets:[| 0. |])

let test_scaling_invariance () =
  (* Triggers scale with kappa. *)
  let fast_k k = Gcs_core.Gradient_sync.fast_trigger ~kappa:k in
  check "kappa 2, gap 3" true (fast_k 2. ~offsets:[| -3.; 0. |]);
  check "kappa 4, gap 3" false (fast_k 4. ~offsets:[| -3.; 0. |])

(* The paper's key structural fact (Kuhn-Oshman Lemma): the fast and slow
   *conditions* are mutually exclusive. Our implementation runs slow
   whenever fast does not hold, which is safe given this property. *)
let prop_mutually_exclusive =
  QCheck.Test.make ~name:"fast and slow triggers are mutually exclusive"
    ~count:2000
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-10.) 10.))
    (fun offsets ->
      let o = Array.of_list offsets in
      not (fast ~offsets:o && slow ~offsets:o))

let prop_fast_needs_leader =
  QCheck.Test.make ~name:"fast requires a neighbor ahead by >= kappa"
    ~count:1000
    QCheck.(list_of_size (Gen.int_range 1 6) (float_range (-10.) 10.))
    (fun offsets ->
      let o = Array.of_list offsets in
      if fast ~offsets:o then Array.exists (fun x -> -.x >= 1.) o else true)

let prop_uniform_shift_down_keeps_fast =
  (* If everyone moves ahead of us by the same extra amount, fast stays. *)
  QCheck.Test.make ~name:"falling further behind keeps the fast trigger"
    ~count:500
    QCheck.(
      pair
        (list_of_size (Gen.int_range 1 5) (float_range (-5.) 5.))
        (float_range 0. 5.))
    (fun (offsets, delta) ->
      let o = Array.of_list offsets in
      if fast ~offsets:o then
        fast ~offsets:(Array.map (fun x -> x -. delta) o)
      else true)

(* The ft gradient's estimate filter: discard outside the (2f+1)*kappa
   window, then trim f from each end of the survivors — but never below
   2f+1 kept. *)
let filter = Gcs_core.Ft_gradient.filter_offsets ~kappa:1.

let sorted a =
  let c = Array.copy a in
  Array.sort Float.compare c;
  c

let check_filter name ~f input expected =
  Alcotest.(check (array (float 0.)))
    name (sorted expected)
    (sorted (filter ~f (Array.of_list input)))

let test_filter_window_discards () =
  (* f = 1: window is +/- 3. Outrageous estimates vanish entirely (a liar
     degrades to a crashed neighbor), in-window ones survive untouched. *)
  check_filter "outrageous lie dropped" ~f:1 [ -0.5; 0.2; 100. ]
    [| -0.5; 0.2 |];
  check_filter "both signs dropped" ~f:1 [ -50.; -0.5; 0.2; 100. ]
    [| -0.5; 0.2 |];
  check_filter "window edge survives" ~f:1 [ -3.; 3. ] [| -3.; 3. |];
  check_filter "just outside dropped" ~f:1 [ -3.01; 3.01 ] [||];
  (* f = 2 widens the window to +/- 5. *)
  check_filter "wider window at f=2" ~f:2 [ -4.; 4.; 6. ] [| -4.; 4. |]

let test_filter_trim_floor () =
  (* f = 1: trimming needs strictly more than 2f+1 = 3 survivors, so at
     degree <= 4 the trim is inert — the extremes may be a single genuine
     leader whose signal trimming would erase. *)
  check_filter "n=3: no trim" ~f:1 [ -2.; 0.; 2. ] [| -2.; 0.; 2. |];
  check_filter "n=4: no trim" ~f:1 [ -2.; -1.; 0.; 2. ] [| -2.; -1.; 0.; 2. |];
  (* n=5 keeps 2f+1 = 3: one from each end goes. *)
  check_filter "n=5: trims one per end" ~f:1 [ -2.; -1.; 0.; 1.; 2. ]
    [| -1.; 0.; 1. |];
  check_filter "n=6: full trim" ~f:1 [ -2.; -1.; -0.5; 0.; 1.; 2. ]
    [| -1.; -0.5; 0.; 1. |];
  (* f=2 would like to trim 2 per end, but n=7 only allows 1 each way
     before hitting the 2f+1 = 5 floor. *)
  check_filter "f=2 floor binds" ~f:2 [ -3.; -2.; -1.; 0.; 1.; 2.; 3. ]
    [| -2.; -1.; 0.; 1.; 2. |];
  (* f=0 never trims, but the +/- kappa window still applies. *)
  check_filter "f=0: no trim, window only" ~f:0 [ -9.; -1.; 0.; 1.; 9. ]
    [| -1.; 0.; 1. |]

let prop_filter_benign_inert =
  (* With every estimate inside half the window, the filter is exactly the
     identity on sparse neighborhoods (n <= 2f+2) — the graceful-degradation
     contract the benign golden row relies on. *)
  QCheck.Test.make ~name:"ft filter inert on benign sparse neighborhoods"
    ~count:500
    QCheck.(list_of_size (Gen.int_range 0 4) (float_range (-1.4) 1.4))
    (fun offsets ->
      let o = Array.of_list offsets in
      filter ~f:1 o = o)

let suite =
  [
    Alcotest.test_case "no neighbors" `Quick test_no_neighbors;
    Alcotest.test_case "balanced" `Quick test_balanced;
    Alcotest.test_case "level 0 fast" `Quick test_level0_fast;
    Alcotest.test_case "fast blocked" `Quick test_fast_blocked_by_laggard;
    Alcotest.test_case "level 1 fast" `Quick test_level1_fast;
    Alcotest.test_case "level mismatch" `Quick test_level_mismatch;
    Alcotest.test_case "slow level 1" `Quick test_slow_level1;
    Alcotest.test_case "slow blocked" `Quick test_slow_blocked;
    Alcotest.test_case "exact thresholds" `Quick test_exact_thresholds;
    Alcotest.test_case "kappa scaling" `Quick test_scaling_invariance;
    QCheck_alcotest.to_alcotest prop_mutually_exclusive;
    QCheck_alcotest.to_alcotest prop_fast_needs_leader;
    QCheck_alcotest.to_alcotest prop_uniform_shift_down_keeps_fast;
    Alcotest.test_case "ft filter window" `Quick test_filter_window_discards;
    Alcotest.test_case "ft filter trim floor" `Quick test_filter_trim_floor;
    QCheck_alcotest.to_alcotest prop_filter_benign_inert;
  ]
