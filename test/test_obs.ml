(* Tests for the gcs.obs sinks: event log storage and schema, series
   recorder, profiler, capture plumbing through the runner, and the
   byte-identity of exports across --jobs. *)

module Engine = Gcs_sim.Engine
module Event_log = Gcs_obs.Event_log
module Series = Gcs_obs.Series
module Profiler = Gcs_obs.Profiler
module Capture = Gcs_obs.Capture
module Runner = Gcs_core.Runner
module Parallel_run = Gcs_core.Parallel_run
module Algorithm = Gcs_core.Algorithm
module Topology = Gcs_graph.Topology
module Fault_plan = Gcs_sim.Fault_plan

let all_kinds : Engine.observation list =
  [
    Engine.Obs_send { src = 0; dst = 1; edge = 2; delay = 0.125 };
    Engine.Obs_drop { src = 3; dst = 4; edge = 5 };
    Engine.Obs_deliver { dst = 6; port = 7 };
    Engine.Obs_timer { node = 8; tag = 9 };
    Engine.Obs_rate_change { node = 10; rate = 1.009999999999999 };
    Engine.Obs_node_down { node = 11 };
    Engine.Obs_node_up { node = 12; wipe = true };
    Engine.Obs_node_up { node = 13; wipe = false };
    Engine.Obs_edge_down { edge = 14 };
    Engine.Obs_edge_up { edge = 15 };
    Engine.Obs_fault_drop { src = 16; dst = 17; edge = 18 };
    Engine.Obs_duplicate { src = 19; dst = 20; edge = 21 };
    Engine.Obs_corrupt { src = 22; dst = 23; edge = 24 };
  ]

let record_all log =
  List.iteri
    (fun i obs -> Event_log.record log (float_of_int i *. 0.5) obs)
    all_kinds

(* Every kind must survive the packed column storage unchanged. *)
let test_storage_roundtrip () =
  let log = Event_log.create () in
  record_all log;
  let entries = Event_log.entries log in
  Alcotest.(check int) "count" (List.length all_kinds) (List.length entries);
  List.iteri
    (fun i e ->
      Alcotest.(check int) "seq" i e.Event_log.seq;
      Alcotest.(check (float 0.)) "time" (float_of_int i *. 0.5)
        e.Event_log.time;
      Alcotest.(check bool) "obs" true
        (e.Event_log.obs = List.nth all_kinds i))
    entries

(* Ids above the packed 19-bit field range take the escape path and must
   still round-trip exactly. *)
let test_storage_escape_path () =
  let big = (1 lsl 19) + 123 in
  let obs = Engine.Obs_send { src = big; dst = 1; edge = 0; delay = 2. } in
  let log = Event_log.create () in
  Event_log.record log 1. obs;
  Event_log.record log 2. (Engine.Obs_edge_up { edge = big });
  (match Event_log.entries log with
  | [ a; b ] ->
      Alcotest.(check bool) "big send" true (a.Event_log.obs = obs);
      Alcotest.(check bool) "big edge" true
        (b.Event_log.obs = Engine.Obs_edge_up { edge = big })
  | _ -> Alcotest.fail "expected two entries");
  (* The same ids must also survive a ring slot being overwritten. *)
  let ring = Event_log.create ~capacity:1 () in
  Event_log.record ring 1. obs;
  Event_log.record ring 2. (Engine.Obs_timer { node = 0; tag = 1 });
  match Event_log.entries ring with
  | [ e ] ->
      Alcotest.(check bool) "escape slot reclaimed" true
        (e.Event_log.obs = Engine.Obs_timer { node = 0; tag = 1 })
  | _ -> Alcotest.fail "expected one entry"

(* Unbounded storage is chunked; entries must be seamless across the
   chunk boundary. *)
let test_grow_across_chunks () =
  let log = Event_log.create () in
  let n = 20_000 in
  for i = 0 to n - 1 do
    Event_log.record log (float_of_int i)
      (Engine.Obs_deliver { dst = i land 0xFF; port = i land 7 })
  done;
  Alcotest.(check int) "recorded" n (Event_log.recorded log);
  Alcotest.(check int) "retained" n (Event_log.retained log);
  let ok = ref true in
  List.iteri
    (fun i e ->
      if
        e.Event_log.seq <> i
        || e.Event_log.time <> float_of_int i
        || e.Event_log.obs
           <> Engine.Obs_deliver { dst = i land 0xFF; port = i land 7 }
      then ok := false)
    (Event_log.entries log);
  Alcotest.(check bool) "all entries intact" true !ok

let deliver i = Engine.Obs_deliver { dst = i; port = 0 }

(* Wraparound exactly at capacity: full-but-nothing-evicted, then one
   more record evicts the oldest while seq keeps counting. *)
let test_ring_exact_capacity () =
  let log = Event_log.create ~capacity:4 () in
  for i = 0 to 3 do
    Event_log.record log (float_of_int i) (deliver i)
  done;
  Alcotest.(check int) "retained at boundary" 4 (Event_log.retained log);
  Alcotest.(check (list int)) "seqs at boundary" [ 0; 1; 2; 3 ]
    (List.map (fun e -> e.Event_log.seq) (Event_log.entries log));
  Event_log.record log 4. (deliver 4);
  Alcotest.(check int) "retained after wrap" 4 (Event_log.retained log);
  Alcotest.(check int) "recorded after wrap" 5 (Event_log.recorded log);
  Alcotest.(check (list int)) "seqs survive eviction" [ 1; 2; 3; 4 ]
    (List.map (fun e -> e.Event_log.seq) (Event_log.entries log));
  Alcotest.(check (list int)) "payloads rotate" [ 1; 2; 3; 4 ]
    (List.map
       (fun e ->
         match e.Event_log.obs with
         | Engine.Obs_deliver { dst; _ } -> dst
         | _ -> -1)
       (Event_log.entries log))

let test_ring_capacity_one () =
  let log = Event_log.create ~capacity:1 () in
  for i = 0 to 2 do
    Event_log.record log (float_of_int i) (deliver i)
  done;
  Alcotest.(check int) "retained" 1 (Event_log.retained log);
  Alcotest.(check int) "recorded" 3 (Event_log.recorded log);
  match Event_log.entries log with
  | [ e ] -> Alcotest.(check int) "newest kept" 2 e.Event_log.seq
  | _ -> Alcotest.fail "expected one entry"

let test_streaming_mode () =
  let lines = ref [] in
  let log = Event_log.create ~stream:(fun l -> lines := l :: !lines) () in
  record_all log;
  Alcotest.(check int) "recorded" (List.length all_kinds)
    (Event_log.recorded log);
  Alcotest.(check int) "retained" 0 (Event_log.retained log);
  Alcotest.(check int) "entries empty" 0 (List.length (Event_log.entries log));
  let streamed = List.rev !lines in
  Alcotest.(check int) "one line per event" (List.length all_kinds)
    (List.length streamed);
  (* Streamed lines carry the same bytes a retained log would export. *)
  let retained = Event_log.create () in
  record_all retained;
  Alcotest.(check (list string)) "same bytes as retained export"
    (Event_log.to_lines retained) streamed

(* encode -> parse -> re-encode must be the identity on bytes, for every
   kind, with and without a run tag. *)
let test_jsonl_roundtrip () =
  let log = Event_log.create () in
  record_all log;
  List.iter
    (fun line ->
      match Event_log.validate_line line with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" e line))
    (Event_log.to_lines log);
  List.iter
    (fun line ->
      match Event_log.validate_line line with
      | Ok p ->
          Alcotest.(check (option int)) "run tag" (Some 3) p.Event_log.run
      | Error e -> Alcotest.fail (Printf.sprintf "%s: %s" e line))
    (Event_log.to_lines ~run:3 log)

let test_parse_rejections () =
  let reject name line =
    match Event_log.parse_line line with
    | Ok _ -> Alcotest.fail (name ^ ": should have been rejected")
    | Error _ -> ()
  in
  reject "not json" "hello";
  reject "unknown tag" {|{"seq":0,"t":1,"ev":"warp","node":1}|};
  reject "missing field" {|{"seq":0,"t":1,"ev":"send","src":1,"dst":2}|};
  reject "extra field"
    {|{"seq":0,"t":1,"ev":"timer","node":1,"tag":2,"rate":1.5}|};
  reject "bad value type" {|{"seq":0,"t":1,"ev":"timer","node":"x","tag":2}|};
  reject "trailing bytes" {|{"seq":0,"t":1,"ev":"edge_up","edge":1}junk|};
  match
    Event_log.parse_line {|{"seq":0,"t":1,"ev":"timer","node":1,"tag":2}|}
  with
  | Ok p ->
      Alcotest.(check bool) "good line parses" true
        (p.Event_log.entry.Event_log.obs
        = Engine.Obs_timer { node = 1; tag = 2 })
  | Error e -> Alcotest.fail e

let test_csv_export () =
  let log = Event_log.create ~format_:Event_log.Csv () in
  record_all log;
  let width = List.length (Event_log.csv_header ()) in
  List.iter
    (fun line ->
      Alcotest.(check int) "column count" width
        (List.length (String.split_on_char ',' line)))
    (Event_log.to_lines log)

let test_series_recorder () =
  let s = Series.create () in
  let point i =
    {
      Series.time = float_of_int i;
      global_skew = 2.0 +. float_of_int i;
      local_skew = 1.0;
      profile = [| (1, 0.5); (2, 1.5) |];
      values = [| 0.; 1.; 2. |];
      rates = [| 1.01; 0.99; 1.0 |];
      watched = [| 0.5 |];
    }
  in
  for i = 0 to 2 do
    Series.record s (point i)
  done;
  Alcotest.(check int) "length" 3 (Series.length s);
  let pts = Series.points s in
  Alcotest.(check (float 0.)) "order" 0. pts.(0).Series.time;
  Alcotest.(check (float 0.)) "order last" 2. pts.(2).Series.time;
  let header = Series.csv_header ~values:3 ~rates:3 ~hops:2 ~watched:1 () in
  Array.iter
    (fun p ->
      Alcotest.(check int) "row width" (List.length header)
        (List.length (Series.csv_row p)))
    pts

let test_profiler_merge () =
  let base =
    {
      Profiler.events = 10;
      messages = 4;
      deliver_count = 3;
      timer_count = 5;
      control_count = 2;
      deliver_wall = 0.25;
      timer_wall = 0.5;
      control_wall = 0.125;
      heap_high_water = 7;
      total_wall = 0.875;
      phases = [ ("warmup", 0.25); ("measure", 0.625) ];
    }
  in
  let other =
    {
      base with
      Profiler.events = 6;
      heap_high_water = 11;
      phases = [ ("warmup", 0.5); ("measure", 0.125) ];
    }
  in
  let m = Profiler.merge [ base; other ] in
  Alcotest.(check int) "events summed" 16 m.Profiler.events;
  Alcotest.(check int) "heap is max" 11 m.Profiler.heap_high_water;
  Alcotest.(check (float 1e-9)) "total summed" 1.75 m.Profiler.total_wall;
  Alcotest.(check (float 1e-9)) "phase summed" 0.75
    (List.assoc "warmup" m.Profiler.phases);
  Alcotest.check_raises "empty merge rejected"
    (Invalid_argument "Profiler.merge: empty list") (fun () ->
      ignore (Profiler.merge []))

let spec = Gcs_core.Spec.make ()

let faulted_cfg ?obs ~seed n =
  let graph = Topology.ring n in
  let plan =
    Fault_plan.of_events
      [
        Fault_plan.Link_partition { at = 15.; edges = Fault_plan.Cut [ 0 ] };
        Fault_plan.Link_heal { at = 30.; edges = Fault_plan.Cut [ 0 ] };
      ]
  in
  Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:45. ~seed
    ~fault_plan:plan ?obs graph

(* Full capture on a faulted run: observers must not perturb the skew
   summary, and every requested sink must come back populated. *)
let test_runner_capture () =
  let bare = Runner.run (faulted_cfg ~seed:5 12) in
  let r =
    Runner.run (faulted_cfg ~obs:(Capture.full ~series_period:5. ()) ~seed:5 12)
  in
  Alcotest.(check bool) "summary unperturbed" true
    (bare.Runner.summary = r.Runner.summary);
  Alcotest.(check bool) "bare capture is empty" true
    (bare.Runner.obs = Capture.empty);
  (match r.Runner.obs.Capture.event_log with
  | None -> Alcotest.fail "no event log"
  | Some log ->
      Alcotest.(check bool) "events recorded" true
        (Event_log.recorded log > 0);
      (* The partition at t=15 must show up as an edge_down event. *)
      let has_cut =
        List.exists
          (fun e ->
            match e.Event_log.obs with
            | Engine.Obs_edge_down _ -> true
            | _ -> false)
          (Event_log.entries log)
      in
      Alcotest.(check bool) "fault visible in log" true has_cut);
  (match r.Runner.obs.Capture.series with
  | None -> Alcotest.fail "no series"
  | Some s ->
      (* Points at t = 0, 5, ..., 45. *)
      Alcotest.(check int) "series cadence" 10 (Series.length s);
      let p = (Series.points s).(0) in
      Alcotest.(check int) "values captured" 12 (Array.length p.Series.values);
      Alcotest.(check int) "rates captured" 12 (Array.length p.Series.rates);
      Alcotest.(check bool) "profile captured" true
        (Array.length p.Series.profile > 0));
  match r.Runner.obs.Capture.profile with
  | None -> Alcotest.fail "no profiler report"
  | Some rep ->
      Alcotest.(check bool) "dispatches counted" true
        (rep.Profiler.deliver_count > 0 && rep.Profiler.timer_count > 0);
      Alcotest.(check int) "events agree" r.Runner.events rep.Profiler.events;
      Alcotest.(check (list string)) "phases in order"
        [ "warmup"; "measure" ]
        (List.map fst rep.Profiler.phases)

let export ~jobs cfgs =
  let results = Parallel_run.run ~jobs cfgs in
  let buf = Buffer.create 4096 in
  Array.iteri
    (fun i r ->
      match r.Runner.obs.Capture.event_log with
      | None -> ()
      | Some log ->
          List.iter
            (fun line ->
              Buffer.add_string buf line;
              Buffer.add_char buf '\n')
            (Event_log.to_lines ~run:i log))
    results;
  Buffer.contents buf

(* The acceptance property: the concatenated JSONL export of a faulted
   multi-seed batch is byte-identical no matter how many domains ran it. *)
let prop_jobs_byte_identity =
  QCheck.Test.make ~count:8 ~name:"event log bytes independent of --jobs"
    QCheck.(pair (int_bound 999) (int_range 6 14))
    (fun (seed, n) ->
      let obs = { Capture.none with Capture.events = true } in
      let cfgs =
        Array.init 2 (fun k -> faulted_cfg ~obs ~seed:(seed + (1000 * k)) n)
      in
      let serial = export ~jobs:1 cfgs in
      let parallel = export ~jobs:4 cfgs in
      String.length serial > 0 && String.equal serial parallel)

let suite =
  [
    Alcotest.test_case "storage roundtrip" `Quick test_storage_roundtrip;
    Alcotest.test_case "storage escape path" `Quick test_storage_escape_path;
    Alcotest.test_case "grow across chunks" `Quick test_grow_across_chunks;
    Alcotest.test_case "ring exact capacity" `Quick test_ring_exact_capacity;
    Alcotest.test_case "ring capacity one" `Quick test_ring_capacity_one;
    Alcotest.test_case "streaming mode" `Quick test_streaming_mode;
    Alcotest.test_case "jsonl roundtrip" `Quick test_jsonl_roundtrip;
    Alcotest.test_case "parse rejections" `Quick test_parse_rejections;
    Alcotest.test_case "csv export" `Quick test_csv_export;
    Alcotest.test_case "series recorder" `Quick test_series_recorder;
    Alcotest.test_case "profiler merge" `Quick test_profiler_merge;
    Alcotest.test_case "runner capture" `Quick test_runner_capture;
    QCheck_alcotest.to_alcotest prop_jobs_byte_identity;
  ]
