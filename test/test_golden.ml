(* Seed-determinism golden test: one small config per registered algorithm
   with its full Metrics.summary (and message count) pinned to the values
   the seed produced when this test was written. Any change to the PRNG,
   the event engine's ordering, the delay model, the clock models, or an
   algorithm's message protocol shifts these numbers immediately and by
   far more than the tolerance; the tolerance (1e-9) only absorbs
   last-ulp libm differences across platforms.

   Config: ring:8, kappa 0.5, drift split (nodes 0-3 fast, 4-7 slow) so
   every algorithm — including the gradient deadband — actually corrects,
   horizon 80, seed 7.

   If a change is *supposed* to alter simulation results, regenerate the
   table below with exactly this config and say so in the commit. *)

module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics

let golden : (Algorithm.kind * Metrics.summary * int) list =
  [
    ( Algorithm.Free_run,
      {
        Metrics.max_global = 0x1.999999999998p-1;
        max_local = 0x1.999999999998p-1;
        mean_local = 0x1.0000000000004p-1;
        p99_local = 0x1.96872b020c4b3p-1;
        final_global = 0x1.999999999998p-1;
        final_local = 0x1.999999999998p-1;
        samples_used = 61;
      },
      0 );
    ( Algorithm.Max_sync,
      {
        Metrics.max_global = 0x1.75c3b4f9cccp-2;
        max_local = 0x1.13c50d8d6dd8p-2;
        mean_local = 0x1.82378afa84ab4p-3;
        p99_local = 0x1.1055329e4b333p-2;
        final_global = 0x1.6577ccf8904p-2;
        final_local = 0x1.0e0aa0a9897p-2;
        samples_used = 61;
      },
      1288 );
    ( Algorithm.Max_slew_sync,
      {
        Metrics.max_global = 0x1.a5c934682788p-2;
        max_local = 0x1.340e4f08af1p-2;
        mean_local = 0x1.ba47b184bb322p-3;
        p99_local = 0x1.2de971d994719p-2;
        final_global = 0x1.7290fb1a9cbp-2;
        final_local = 0x1.1d80e1f6643p-2;
        samples_used = 61;
      },
      1288 );
    ( Algorithm.Tree_sync,
      {
        Metrics.max_global = 0x1.8a3d70a3d708p-1;
        max_local = 0x1.da5be824ac98p-2;
        mean_local = 0x1.794de76c3218dp-2;
        p99_local = 0x1.d4370af591f99p-2;
        final_global = 0x1.6796bdc1113p-1;
        final_local = 0x1.a279842388bp-2;
        samples_used = 61;
      },
      1119 );
    ( Algorithm.Gradient_sync,
      {
        Metrics.max_global = 0x1.50c48e1dda6p-2;
        max_local = 0x1.08d71a5a1e8p-2;
        mean_local = 0x1.7d55a1e437de9p-3;
        p99_local = 0x1.05e86cb205db3p-2;
        final_global = 0x1.50c48e1dda6p-2;
        final_local = 0x1.08d71a5a1e8p-2;
        samples_used = 61;
      },
      1288 );
    (* Identical to the Gradient_sync row by design: on a degree-2 ring the
       trim count is 0 and the clamp window (+/- (2f+1)kappa = 1.5) never
       binds in a benign run, so the filter must be exactly inert. A
       divergence here means the ft variant perturbs faultless behaviour. *)
    ( Algorithm.Ft_gradient_sync 1,
      {
        Metrics.max_global = 0x1.50c48e1dda6p-2;
        max_local = 0x1.08d71a5a1e8p-2;
        mean_local = 0x1.7d55a1e437de9p-3;
        p99_local = 0x1.05e86cb205db3p-2;
        final_global = 0x1.50c48e1dda6p-2;
        final_local = 0x1.08d71a5a1e8p-2;
        samples_used = 61;
      },
      1288 );
    (* Also identical to the Gradient_sync row by design: edges present at
       startup are born settled (see Dynamic_gradient), so on a static
       network the fresh-edge discount never engages and the dynamic
       variant must reproduce the static gradient bit for bit. A
       divergence here means the edge-age machinery perturbs unchurned
       runs. *)
    ( Algorithm.Dynamic_gradient_sync,
      {
        Metrics.max_global = 0x1.50c48e1dda6p-2;
        max_local = 0x1.08d71a5a1e8p-2;
        mean_local = 0x1.7d55a1e437de9p-3;
        p99_local = 0x1.05e86cb205db3p-2;
        final_global = 0x1.50c48e1dda6p-2;
        final_local = 0x1.08d71a5a1e8p-2;
        samples_used = 61;
      },
      1288 );
  ]

let run_one algo =
  let cfg =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~algo
      ~drift_of_node:(fun v ->
        if v < 4 then Drift.Extreme_high else Drift.Extreme_low)
      ~horizon:80. ~seed:7 (Topology.ring 8)
  in
  Runner.run cfg

let check_algo (algo, expected, messages) () =
  let r = run_one algo in
  let s = r.Runner.summary in
  let f = Alcotest.(check (float 1e-9)) in
  f "max_global" expected.Metrics.max_global s.Metrics.max_global;
  f "max_local" expected.Metrics.max_local s.Metrics.max_local;
  f "mean_local" expected.Metrics.mean_local s.Metrics.mean_local;
  f "p99_local" expected.Metrics.p99_local s.Metrics.p99_local;
  f "final_global" expected.Metrics.final_global s.Metrics.final_global;
  f "final_local" expected.Metrics.final_local s.Metrics.final_local;
  Alcotest.(check int) "samples_used" expected.Metrics.samples_used
    s.Metrics.samples_used;
  Alcotest.(check int) "messages" messages r.Runner.messages

(* The same config under a standard fault battery (partition-heal, crash with
   state wipe, a corruption window), pinned like the rows above. This extends
   the determinism pin to the fault-injection path: the dedicated fault PRNG
   streams, liveness gating, delivery-side tampering, and the recovery
   metrics all have to reproduce these numbers bit-for-bit — on any machine
   and under any Parallel_run sharding. *)
let faulted_plan () =
  match
    Gcs_sim.Fault_plan.of_string
      "partition@20:cut=0; heal@40:cut=0; crash@50:node=5; \
       recover@60:node=5:wipe; corrupt@30..45:p=0.3:mag=1"
  with
  | Ok p -> p
  | Error msg -> Alcotest.failf "golden fault plan did not parse: %s" msg

let test_faulted_run_pinned () =
  let cfg =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~algo:Algorithm.Gradient_sync
      ~drift_of_node:(fun v ->
        if v < 4 then Drift.Extreme_high else Drift.Extreme_low)
      ~horizon:80. ~seed:7 ~fault_plan:(faulted_plan ()) (Topology.ring 8)
  in
  let r = Runner.run cfg in
  let s = r.Runner.summary in
  let f = Alcotest.(check (float 1e-9)) in
  f "max_global" 0x1.30636152c2f8p-1 s.Metrics.max_global;
  f "max_local" 0x1.79e4614cb36p-2 s.Metrics.max_local;
  f "mean_local" 0x1.04974d4b884f8p-2 s.Metrics.mean_local;
  f "p99_local" 0x1.75af4f277edcdp-2 s.Metrics.p99_local;
  f "final_global" 0x1.ccd04ca04d7p-2 s.Metrics.final_global;
  f "final_local" 0x1.4651fd5e2adp-2 s.Metrics.final_local;
  Alcotest.(check int) "samples_used" 61 s.Metrics.samples_used;
  Alcotest.(check int) "messages" 1268 r.Runner.messages;
  Alcotest.(check int) "dropped (loss law)" 0 r.Runner.dropped;
  Alcotest.(check int) "dropped_faults" 105 r.Runner.dropped_faults;
  match r.Runner.fault_report with
  | None -> Alcotest.fail "no fault report"
  | Some rep ->
      let module Fm = Gcs_core.Fault_metrics in
      Alcotest.(check int) "corrupted" 66 rep.Fm.corrupted;
      Alcotest.(check int) "duplicated" 0 rep.Fm.duplicated;
      let expected =
        [
          ("partition", 0x1p-1, 0x1.0211f997fa68p-2, Some 0x0p+0);
          ("corrupt", 0x1p-1, 0x1.0211f997fa68p-2, Some 0x0p+0);
          ("crash:5 (wipe)", 0x1p-1, 0x1.0d9b3620617p-2, Some 0x0p+0);
        ]
      in
      Alcotest.(check int) "episode count" (List.length expected)
        (List.length rep.Fm.episodes);
      List.iter
        (fun (label, band, transient, resync) ->
          match
            List.find_opt (fun e -> e.Fm.label = label) rep.Fm.episodes
          with
          | None -> Alcotest.failf "missing episode %s" label
          | Some e ->
              f (label ^ " band") band e.Fm.band;
              f (label ^ " transient") transient e.Fm.worst_transient;
              Alcotest.(check (option (float 1e-9)))
                (label ^ " resync") resync e.Fm.time_to_resync)
        expected

(* The same config under Byzantine injection: an equivocating liar plus a
   random-lie window, run through the ft gradient. Pins the lie rewrite
   path bit-for-bit — the dedicated per-liar lie PRNG streams, the
   source-side tamper hook, the estimate filter, the lied-message counter,
   and the correct-node-only metrics. The liars' own clocks still run the
   protocol (only their outgoing beacons lie), which is why the correct
   summary matches the overall one here: no correct node is dragged
   anywhere near the lies. *)
let byzantine_plan () =
  match
    Gcs_sim.Fault_plan.of_string
      "byz@20..60:node=5:equiv=3; byz@30..50:node=2:mag=2"
  with
  | Ok p -> p
  | Error msg -> Alcotest.failf "golden byzantine plan did not parse: %s" msg

let test_byzantine_run_pinned () =
  let cfg =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~algo:(Algorithm.Ft_gradient_sync 1)
      ~drift_of_node:(fun v ->
        if v < 4 then Drift.Extreme_high else Drift.Extreme_low)
      ~horizon:80. ~seed:7 ~fault_plan:(byzantine_plan ()) (Topology.ring 8)
  in
  let r = Runner.run cfg in
  let s = r.Runner.summary in
  let f = Alcotest.(check (float 1e-9)) in
  f "max_global" 0x1.a8e496ebfbfcp-1 s.Metrics.max_global;
  f "max_local" 0x1.f44e969b3acp-2 s.Metrics.max_local;
  f "mean_local" 0x1.12d57f9ad1527p-2 s.Metrics.mean_local;
  f "p99_local" 0x1.ee29b96c20219p-2 s.Metrics.p99_local;
  f "final_global" 0x1.d0be286f8bp-2 s.Metrics.final_global;
  f "final_local" 0x1.177eac50f25p-2 s.Metrics.final_local;
  Alcotest.(check int) "samples_used" 61 s.Metrics.samples_used;
  Alcotest.(check int) "messages" 1288 r.Runner.messages;
  match r.Runner.fault_report with
  | None -> Alcotest.fail "no fault report"
  | Some rep ->
      let module Fm = Gcs_core.Fault_metrics in
      Alcotest.(check int) "lied" 120 rep.Fm.lied;
      (match rep.Fm.correct with
      | None -> Alcotest.fail "no correct-node summary"
      | Some c ->
          f "correct max_local" 0x1.f44e969b3acp-2 c.Metrics.max_local;
          f "correct max_global" 0x1.a8e496ebfbfcp-1 c.Metrics.max_global;
          Alcotest.(check int) "correct samples" 61 c.Metrics.samples_used);
      let expected =
        [
          ("byz:5 (equiv)", 20., Some 60., 0x1.f44e969b3acp-2);
          ("byz:2 (mag)", 30., Some 50., 0x1.3a8ecc7fad6p-2);
        ]
      in
      Alcotest.(check int) "episode count" (List.length expected)
        (List.length rep.Fm.episodes);
      List.iter
        (fun (label, start, stop, transient) ->
          match
            List.find_opt (fun e -> e.Fm.label = label) rep.Fm.episodes
          with
          | None -> Alcotest.failf "missing episode %s" label
          | Some e ->
              f (label ^ " start") start e.Fm.start;
              Alcotest.(check (option (float 1e-9)))
                (label ^ " stop") stop e.Fm.stop;
              f (label ^ " transient") transient e.Fm.worst_transient)
        expected

(* The same config under declarative topology churn, run through the
   dynamic gradient: an explicit down/up pair plus a flap window, compiled
   to a fault plan with the config's own seed. Pins the churn compilation
   path (flap PRNG streams included) and the dynamic algorithm's fresh-edge
   behaviour bit-for-bit, and requires region-parallel execution to
   reproduce the serial event log byte for byte. *)
let churned_plan () =
  let churn =
    match
      Gcs_sim.Churn_plan.of_string
        "edge-down@20:edges=2-3; edge-up@50:edges=2-3; \
         flap@10..60:up=8:down=4:edges=6-7"
    with
    | Ok p -> p
    | Error msg -> Alcotest.failf "golden churn plan did not parse: %s" msg
  in
  match
    Gcs_sim.Churn_plan.compile churn ~graph:(Topology.ring 8) ~seed:7
      ~horizon:80.
  with
  | Some p -> p
  | None -> Alcotest.fail "golden churn plan compiled to nothing"

let test_churned_run_pinned () =
  let module Capture = Gcs_obs.Capture in
  let module Event_log = Gcs_obs.Event_log in
  let cfg ?obs ?(regions = 1) () =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~algo:Algorithm.Dynamic_gradient_sync
      ~drift_of_node:(fun v ->
        if v < 4 then Drift.Extreme_high else Drift.Extreme_low)
      ~horizon:80. ~seed:7 ~fault_plan:(churned_plan ()) ?obs ~regions
      (Topology.ring 8)
  in
  let r = Runner.run (cfg ()) in
  let s = r.Runner.summary in
  let f = Alcotest.(check (float 1e-9)) in
  f "max_global" 0x1.0c68dbfd7a7p-1 s.Metrics.max_global;
  f "max_local" 0x1.b502cbf9605p-2 s.Metrics.max_local;
  f "mean_local" 0x1.08a76b750a5c8p-2 s.Metrics.mean_local;
  f "p99_local" 0x1.b502cbf9605p-2 s.Metrics.p99_local;
  f "final_global" 0x1.84f9941f34dp-2 s.Metrics.final_global;
  f "final_local" 0x1.12d45ea862dp-2 s.Metrics.final_local;
  Alcotest.(check int) "samples_used" 61 s.Metrics.samples_used;
  Alcotest.(check int) "messages" 1288 r.Runner.messages;
  Alcotest.(check int) "dropped_faults" 115 r.Runner.dropped_faults;
  (* Event-log byte identity across region counts, under churn. *)
  let obs = { Capture.none with Capture.events = true } in
  let log_string (res : Runner.result) =
    match res.Runner.obs.Capture.event_log with
    | Some log -> Event_log.to_string log
    | None -> Alcotest.fail "event log missing"
  in
  let serial_log = log_string (Runner.run (cfg ~obs ())) in
  Alcotest.(check bool) "serial log nonempty" true
    (String.length serial_log > 0);
  List.iter
    (fun regions ->
      let live = Runner.prepare (cfg ~obs ~regions ()) in
      let eff = Gcs_sim.Engine.regions live.Runner.engine in
      let par = Runner.complete live in
      Alcotest.(check int)
        (Printf.sprintf "x%d: ran parallel" regions)
        regions eff;
      Alcotest.(check bool)
        (Printf.sprintf "x%d: event log byte-identical" regions)
        true
        (String.equal serial_log (log_string par)))
    [ 2; 4 ]

let test_covers_registry () =
  (* A newly registered algorithm must get a golden row. *)
  Alcotest.(check int) "every registered algorithm is pinned"
    (List.length Algorithm.all_kinds)
    (List.length golden);
  List.iter
    (fun kind ->
      Alcotest.(check bool)
        (Algorithm.kind_name kind ^ " pinned")
        true
        (List.exists (fun (k, _, _) -> k = kind) golden))
    Algorithm.all_kinds

let suite =
  Alcotest.test_case "golden table covers the registry" `Quick
    test_covers_registry
  :: Alcotest.test_case "faulted run pinned: gradient" `Quick
       test_faulted_run_pinned
  :: Alcotest.test_case "byzantine run pinned: ft-gradient" `Quick
       test_byzantine_run_pinned
  :: Alcotest.test_case "churned run pinned: dynamic-gradient" `Quick
       test_churned_run_pinned
  :: List.map
       (fun ((algo, _, _) as row) ->
         Alcotest.test_case
           (Printf.sprintf "summary pinned: %s" (Algorithm.kind_name algo))
           `Quick (check_algo row))
       golden
