module Engine = Gcs_sim.Engine
module Dm = Gcs_sim.Delay_model
module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Hc = Gcs_clock.Hardware_clock
module Prng = Gcs_util.Prng

type msg = Ping of float | Pong

let perfect_clocks n = Array.init n (fun _ -> Hc.create ~t0:0. ~rate:1. ())

let make_engine ?(n = 2) ?(clocks = None) ?(delays = Dm.fixed (Dm.bounds ~d_min:1. ~d_max:1.))
    ?(graph = None) make_node =
  let graph = match graph with Some g -> g | None -> Topology.line n in
  let clocks =
    match clocks with Some c -> c | None -> perfect_clocks (Graph.n graph)
  in
  Engine.create ~graph ~clocks ~delays ~rng:(Prng.create ~seed:1) ~make_node
    ~t0:0.

let null_handlers =
  {
    Engine.on_init = (fun _ -> ());
    on_message = (fun _ ~port:_ _ -> ());
    on_timer = (fun _ ~tag:_ -> ());
  }

let test_init_runs_once_per_node () =
  let inits = ref [] in
  let engine =
    make_engine ~n:3 (fun v ->
        {
          null_handlers with
          Engine.on_init = (fun api -> inits := (v, api.Engine.node) :: !inits);
        })
  in
  Engine.run_until engine 0.;
  Alcotest.(check (list (pair int int)))
    "init order and identity"
    [ (0, 0); (1, 1); (2, 2) ]
    (List.rev !inits)

let test_message_delivery_time () =
  let received = ref [] in
  let engine =
    make_engine ~n:2
      ~delays:(Dm.fixed (Dm.bounds ~d_min:2.5 ~d_max:2.5))
      (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.send ~port:0 (Ping 0.));
          on_message =
            (fun api ~port:_ _ ->
              received := api.Engine.hardware () :: !received);
        })
  in
  Engine.run_until engine 10.;
  Alcotest.(check (list (float 1e-9))) "arrives at send + delay" [ 2.5 ] !received

let test_delivery_within_bounds =
  QCheck.Test.make ~name:"every delivery within [d_min, d_max] of send"
    ~count:50 QCheck.small_nat
    (fun seed ->
      let bounds = Dm.bounds ~d_min:0.3 ~d_max:1.7 in
      let log = ref [] in
      let graph = Topology.ring 5 in
      let clocks = perfect_clocks 5 in
      let engine_holder = ref None in
      let engine =
        Engine.create ~graph ~clocks ~delays:(Dm.uniform bounds)
          ~rng:(Prng.create ~seed) ~t0:0.
          ~make_node:(fun _ ->
            {
              Engine.on_init =
                (fun api ->
                  api.Engine.set_timer ~h:(api.Engine.hardware ()) ~tag:0);
              on_message =
                (fun _api ~port:_ msg ->
                  match msg with
                  | Pong -> ()
                  | Ping sent_at ->
                      let now =
                        match !engine_holder with
                        | Some e -> Engine.now e
                        | None -> nan
                      in
                      log := (sent_at, now) :: !log);
              on_timer =
                (fun api ~tag:_ ->
                  for p = 0 to api.Engine.ports - 1 do
                    api.Engine.send ~port:p (Ping (api.Engine.hardware ()))
                  done;
                  let h = api.Engine.hardware () in
                  if h < 20. then api.Engine.set_timer ~h:(h +. 1.) ~tag:0);
            })
      in
      engine_holder := Some engine;
      Engine.run_until engine 30.;
      !log <> []
      && List.for_all
           (fun (sent, recv) ->
             recv -. sent >= 0.3 -. 1e-9 && recv -. sent <= 1.7 +. 1e-9)
           !log)

let test_timer_fires_at_hardware_time () =
  (* Node 0's clock runs at rate 2: a timer for hardware time 10 must fire
     at real time 5. *)
  let fired_at = ref nan in
  let clocks = [| Hc.create ~t0:0. ~rate:2. (); Hc.create ~t0:0. ~rate:1. () |] in
  let engine_holder = ref None in
  let engine =
    make_engine ~n:2 ~clocks:(Some clocks) (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:10. ~tag:7);
          on_timer =
            (fun _api ~tag ->
              Alcotest.(check int) "tag" 7 tag;
              match !engine_holder with
              | Some e -> fired_at := Engine.now e
              | None -> ());
        })
  in
  engine_holder := Some engine;
  Engine.run_until engine 20.;
  Alcotest.(check (float 1e-9)) "fired at real time 5" 5. !fired_at

let test_timer_in_past_fires_immediately () =
  let fired = ref false in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:(-5.) ~tag:0);
          on_timer = (fun _ ~tag:_ -> fired := true);
        })
  in
  Engine.run_until engine 1.;
  Alcotest.(check bool) "fired" true !fired

let test_timer_survives_rate_change () =
  (* Arm a timer for hardware time 10 at rate 1 (real 10); slow the clock to
     rate 0.5 at real time 4 (hardware 4). Remaining 6 hardware units now
     take 12 real units: the timer must fire at real time 16, not 10. *)
  let fired_at = ref nan in
  let engine_holder = ref None in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:10. ~tag:0);
          on_timer =
            (fun _ ~tag:_ ->
              match !engine_holder with
              | Some e -> fired_at := Engine.now e
              | None -> ());
        })
  in
  engine_holder := Some engine;
  Engine.schedule_control engine ~at:4. (fun () ->
      Engine.set_node_rate engine ~node:0 ~rate:0.5);
  Engine.run_until engine 30.;
  Alcotest.(check (float 1e-6)) "fires per hardware time" 16. !fired_at

let test_timer_rate_speedup () =
  (* Speeding the clock up must pull the firing time earlier. *)
  let fired_at = ref nan in
  let engine_holder = ref None in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:10. ~tag:0);
          on_timer =
            (fun _ ~tag:_ ->
              match !engine_holder with
              | Some e -> fired_at := Engine.now e
              | None -> ());
        })
  in
  engine_holder := Some engine;
  Engine.schedule_control engine ~at:4. (fun () ->
      Engine.set_node_rate engine ~node:0 ~rate:2.);
  Engine.run_until engine 30.;
  (* 4 hardware units by t=4, remaining 6 at rate 2 -> 3 more real units. *)
  Alcotest.(check (float 1e-6)) "fires earlier" 7. !fired_at

let test_control_events_ordered () =
  let order = ref [] in
  let engine = make_engine ~n:2 (fun _ -> null_handlers) in
  Engine.schedule_control engine ~at:5. (fun () -> order := 5 :: !order);
  Engine.schedule_control engine ~at:2. (fun () -> order := 2 :: !order);
  Engine.schedule_control engine ~at:9. (fun () -> order := 9 :: !order);
  Engine.run_until engine 10.;
  Alcotest.(check (list int)) "time order" [ 2; 5; 9 ] (List.rev !order)

let test_run_until_advances_now () =
  let engine = make_engine ~n:2 (fun _ -> null_handlers) in
  Engine.run_until engine 42.;
  Alcotest.(check (float 1e-9)) "now = horizon" 42. (Engine.now engine)

let test_horizon_respected () =
  let fired = ref false in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:50. ~tag:0);
          on_timer = (fun _ ~tag:_ -> fired := true);
        })
  in
  Engine.run_until engine 10.;
  Alcotest.(check bool) "future event not run" false !fired;
  Engine.run_until engine 60.;
  Alcotest.(check bool) "runs when horizon passes" true !fired

let test_counters () =
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.send ~port:0 Pong);
        })
  in
  Engine.run_until engine 10.;
  Alcotest.(check int) "messages sent" 1 (Engine.messages_sent engine);
  Alcotest.(check int) "messages delivered" 1 (Engine.messages_delivered engine);
  Alcotest.(check bool) "events processed" true (Engine.events_processed engine >= 1)

let test_determinism () =
  let trace seed =
    let log = ref [] in
    let graph = Topology.ring 6 in
    let engine =
      Engine.create ~graph ~clocks:(perfect_clocks 6)
        ~delays:(Dm.uniform (Dm.bounds ~d_min:0.5 ~d_max:1.5))
        ~rng:(Prng.create ~seed) ~t0:0.
        ~make_node:(fun v ->
          {
            Engine.on_init =
              (fun api -> api.Engine.set_timer ~h:0.5 ~tag:0);
            on_message =
              (fun _ ~port msg ->
                let tag = match msg with Ping _ -> 1 | Pong -> 0 in
                log := (v, port, tag) :: !log);
            on_timer =
              (fun api ~tag:_ ->
                for p = 0 to api.Engine.ports - 1 do
                  api.Engine.send ~port:p (Ping (float_of_int v))
                done;
                let h = api.Engine.hardware () in
                if h < 10. then api.Engine.set_timer ~h:(h +. 1.) ~tag:0);
          })
    in
    Engine.run_until engine 15.;
    (!log, Engine.messages_sent engine, Engine.events_processed engine)
  in
  let l1, m1, e1 = trace 11 and l2, m2, e2 = trace 11 in
  Alcotest.(check bool) "same logs" true (l1 = l2);
  Alcotest.(check int) "same messages" m1 m2;
  Alcotest.(check int) "same events" e1 e2;
  let l3, _, _ = trace 12 in
  Alcotest.(check bool) "different seed differs" true (l1 <> l3)

let test_step_single_event () =
  let fired = ref 0 in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api ->
              if v = 0 then begin
                api.Engine.set_timer ~h:1. ~tag:0;
                api.Engine.set_timer ~h:2. ~tag:0
              end);
          on_timer = (fun _ ~tag:_ -> incr fired);
        })
  in
  Alcotest.(check bool) "first step" true (Engine.step engine);
  Alcotest.(check int) "one timer so far" 1 !fired;
  Alcotest.(check bool) "second step" true (Engine.step engine);
  Alcotest.(check int) "both fired" 2 !fired;
  Alcotest.(check bool) "queue drained" false (Engine.step engine)

let test_pending_events_accessor () =
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:50. ~tag:0);
        })
  in
  Engine.run_until engine 1.;
  Alcotest.(check int) "one pending" 1 (Engine.pending_events engine)

let test_observer_cleared () =
  let count = ref 0 in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:1. ~tag:0);
          on_timer =
            (fun api ~tag:_ ->
              let h = api.Engine.hardware () in
              if h < 5. then api.Engine.set_timer ~h:(h +. 1.) ~tag:0);
        })
  in
  Engine.add_observer engine (fun _ _ -> incr count);
  Engine.run_until engine 2.5;
  let seen = !count in
  Alcotest.(check bool) "observer saw events" true (seen > 0);
  Engine.clear_observer engine;
  Engine.run_until engine 10.;
  Alcotest.(check int) "silent after clear" seen !count

let test_stop_at_first_event () =
  (* Stop requested by the very first dispatched event: nothing else runs,
     [now] stays at the stop point, and the queue keeps its entries. *)
  let fired = ref 0 in
  let engine_holder = ref None in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:1. ~tag:0);
          on_timer = (fun _ ~tag:_ -> incr fired);
        })
  in
  engine_holder := Some engine;
  Engine.schedule_control engine ~at:0. (fun () ->
      Engine.request_stop (Option.get !engine_holder));
  Engine.run_until engine 10.;
  Alcotest.(check int) "no dispatch after stop" 0 !fired;
  Alcotest.(check bool) "flag set" true (Engine.stop_requested engine);
  Alcotest.(check (float 1e-9)) "now at stop event" 0. (Engine.now engine);
  Alcotest.(check int) "timer still pending" 1 (Engine.pending_events engine)

let test_stop_at_final_event () =
  (* Stop requested by the last event in the queue: everything before it
     ran, and [now] stays there instead of advancing to the horizon —
     sticky across later run_until calls. *)
  let fired = ref 0 in
  let engine_holder = ref None in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:1. ~tag:0);
          on_timer = (fun _ ~tag:_ -> incr fired);
        })
  in
  engine_holder := Some engine;
  Engine.schedule_control engine ~at:2. (fun () ->
      Engine.request_stop (Option.get !engine_holder));
  Engine.run_until engine 10.;
  Alcotest.(check int) "timer fired before stop" 1 !fired;
  Alcotest.(check (float 1e-9)) "now at last event" 2. (Engine.now engine);
  let events = Engine.events_processed engine in
  Engine.run_until engine 50.;
  Alcotest.(check int) "sticky: no further dispatches" events
    (Engine.events_processed engine);
  Alcotest.(check (float 1e-9)) "sticky: now unchanged" 2. (Engine.now engine)

let test_stop_requested_twice () =
  (* Requesting twice is the same as once; [run_until] never dispatches. *)
  let fired = ref 0 in
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:1. ~tag:0);
          on_timer = (fun _ ~tag:_ -> incr fired);
        })
  in
  Engine.request_stop engine;
  Engine.request_stop engine;
  Engine.run_until engine 10.;
  Alcotest.(check int) "no dispatches" 0 !fired;
  Alcotest.(check int) "no events processed" 0 (Engine.events_processed engine);
  Alcotest.(check bool) "flag set" true (Engine.stop_requested engine);
  Alcotest.(check (float 1e-9)) "now never advanced" 0. (Engine.now engine)

let test_pending_snapshot_pop_order () =
  (* The snapshot renders the queue in exact pop order: delivery, timer,
     control, sorted by dispatch time with payloads visible. *)
  let engine =
    make_engine ~n:2
      ~delays:(Dm.fixed (Dm.bounds ~d_min:2. ~d_max:2.))
      (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api ->
              if v = 0 then begin
                api.Engine.set_timer ~h:5. ~tag:3;
                api.Engine.send ~port:0 (Ping 1.)
              end);
        })
  in
  Engine.schedule_control engine ~at:9. (fun () -> ());
  Engine.run_until engine 0.;
  match Engine.pending_snapshot engine with
  | [
   Engine.Pending_deliver { at = d_at; dst; port; edge; msg = Ping payload };
   Engine.Pending_timer { at = t_at; node; h_target; tag };
   Engine.Pending_control { at = c_at };
  ] ->
      Alcotest.(check (float 1e-9)) "delivery at send + delay" 2. d_at;
      Alcotest.(check int) "dst" 1 dst;
      Alcotest.(check int) "port" 0 port;
      Alcotest.(check int) "edge" 0 edge;
      Alcotest.(check (float 1e-9)) "payload" 1. payload;
      Alcotest.(check (float 1e-9)) "timer at its hardware target" 5. t_at;
      Alcotest.(check int) "timer node" 0 node;
      Alcotest.(check (float 1e-9)) "h_target" 5. h_target;
      Alcotest.(check int) "tag" 3 tag;
      Alcotest.(check (float 1e-9)) "control time" 9. c_at
  | l -> Alcotest.failf "unexpected snapshot of %d entries" (List.length l)

let test_pending_snapshot_filters_stale_timers () =
  (* Re-keying a node's timers (rate change) leaves stale ids in the heap;
     the snapshot must show exactly the live timers, re-aimed. *)
  let engine =
    make_engine ~n:2 (fun v ->
        {
          null_handlers with
          Engine.on_init =
            (fun api -> if v = 0 then api.Engine.set_timer ~h:5. ~tag:0);
        })
  in
  Engine.run_until engine 0.;
  Engine.set_node_rate engine ~node:0 ~rate:2.;
  Alcotest.(check bool) "heap holds the stale ghost" true
    (Engine.pending_events engine >= 2);
  match Engine.pending_snapshot engine with
  | [ Engine.Pending_timer { at; h_target; _ } ] ->
      Alcotest.(check (float 1e-9)) "re-aimed to rate 2" 2.5 at;
      Alcotest.(check (float 1e-9)) "same hardware target" 5. h_target
  | l -> Alcotest.failf "expected 1 live timer, got %d entries" (List.length l)

let test_rejects_wrong_clock_count () =
  let graph = Topology.line 3 in
  Alcotest.check_raises "clock count"
    (Invalid_argument "Engine.create: one hardware clock per node required")
    (fun () ->
      ignore
        (Engine.create ~graph ~clocks:(perfect_clocks 2)
           ~delays:(Dm.fixed (Dm.bounds ~d_min:1. ~d_max:1.))
           ~rng:(Prng.create ~seed:1)
           ~make_node:(fun _ -> null_handlers)
           ~t0:0.))

let suite =
  [
    Alcotest.test_case "init once per node" `Quick test_init_runs_once_per_node;
    Alcotest.test_case "delivery time" `Quick test_message_delivery_time;
    Alcotest.test_case "timer at hardware time" `Quick test_timer_fires_at_hardware_time;
    Alcotest.test_case "past timer immediate" `Quick test_timer_in_past_fires_immediately;
    Alcotest.test_case "timer across slowdown" `Quick test_timer_survives_rate_change;
    Alcotest.test_case "timer across speedup" `Quick test_timer_rate_speedup;
    Alcotest.test_case "control ordering" `Quick test_control_events_ordered;
    Alcotest.test_case "run_until advances now" `Quick test_run_until_advances_now;
    Alcotest.test_case "horizon respected" `Quick test_horizon_respected;
    Alcotest.test_case "counters" `Quick test_counters;
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "wrong clock count" `Quick test_rejects_wrong_clock_count;
    Alcotest.test_case "step" `Quick test_step_single_event;
    Alcotest.test_case "pending events" `Quick test_pending_events_accessor;
    Alcotest.test_case "observer clear" `Quick test_observer_cleared;
    QCheck_alcotest.to_alcotest test_delivery_within_bounds;
  ]
