module Scheduler = Gcs_util.Scheduler

(* Drain a packed scheduler into (prio, seq, value) pop order. *)
let drain (q : _ Scheduler.t) =
  let rec go acc =
    if q.size () = 0 then List.rev acc
    else
      let p = q.min_prio () and s = q.min_seq () in
      let v = q.pop_min () in
      go ((p, s, v) :: acc)
  in
  go []

let test_empty_sentinels () =
  List.iter
    (fun kind ->
      let q = Scheduler.make kind in
      Alcotest.(check bool)
        (Scheduler.kind_name kind ^ " empty min_prio")
        true
        (q.Scheduler.min_prio () = infinity);
      Alcotest.(check int)
        (Scheduler.kind_name kind ^ " empty min_seq")
        max_int (q.Scheduler.min_seq ()))
    Scheduler.all_kinds

let test_basic_order () =
  List.iter
    (fun kind ->
      let q = Scheduler.make kind in
      List.iteri
        (fun seq p -> q.Scheduler.push ~prio:p ~seq seq)
        [ 3.; 1.; 2.; 1.; 0.5 ];
      let popped = List.map (fun (p, _, _) -> p) (drain q) in
      Alcotest.(check (list (float 0.)))
        (Scheduler.kind_name kind ^ " sorted")
        [ 0.5; 1.; 1.; 2.; 3. ]
        popped)
    Scheduler.all_kinds

let test_tie_by_seq () =
  List.iter
    (fun kind ->
      let q = Scheduler.make kind in
      q.Scheduler.push ~prio:1. ~seq:2 "b";
      q.Scheduler.push ~prio:1. ~seq:0 "a";
      q.Scheduler.push ~prio:1. ~seq:7 "c";
      let vals = List.map (fun (_, _, v) -> v) (drain q) in
      Alcotest.(check (list string))
        (Scheduler.kind_name kind ^ " seq ties")
        [ "a"; "b"; "c" ] vals)
    Scheduler.all_kinds

let test_sorted_keep () =
  List.iter
    (fun kind ->
      let q = Scheduler.make kind in
      List.iteri (fun seq v -> q.Scheduler.push ~prio:(float_of_int v) ~seq v)
        [ 4; 1; 3; 2 ];
      let kept = q.Scheduler.sorted ~keep:(fun v -> v mod 2 = 0) in
      Alcotest.(check (list int))
        (Scheduler.kind_name kind ^ " keep filters, order preserved")
        [ 2; 4 ]
        (List.map (fun (_, _, v) -> v) kept);
      Alcotest.(check int)
        (Scheduler.kind_name kind ^ " sorted is pure")
        4 (q.Scheduler.size ()))
    Scheduler.all_kinds

let test_clear () =
  List.iter
    (fun kind ->
      let q = Scheduler.make kind in
      for i = 0 to 99 do
        q.Scheduler.push ~prio:(float_of_int (i mod 7)) ~seq:i i
      done;
      q.Scheduler.clear ();
      Alcotest.(check int)
        (Scheduler.kind_name kind ^ " cleared")
        0 (q.Scheduler.size ());
      (* Usable after clear. *)
      q.Scheduler.push ~prio:5. ~seq:0 0;
      Alcotest.(check bool)
        (Scheduler.kind_name kind ^ " usable after clear")
        true
        (q.Scheduler.min_prio () = 5.))
    Scheduler.all_kinds

(* ------------------------------------------------------------------ *)
(* Model test: the calendar queue must pop in exactly the binary        *)
(* heap's order under random interleavings of pushes, pops, and         *)
(* re-keys. A re-key is what the engine does when a timer's fire time   *)
(* moves: it pushes the same payload again under a new (prio, seq) and  *)
(* leaves the old entry as a ghost — so ghosts and duplicates are part  *)
(* of the workload, not an edge case.                                   *)
(* ------------------------------------------------------------------ *)

type op = Push of float | Pop | Rekey of float

let op_gen =
  QCheck.Gen.(
    frequency
      [
        (* Mix clustered priorities (typical simulation: short horizon ahead
           of now) with occasional far outliers to stress calendar resize
           and year-wrap. *)
        ( 4,
          map (fun p -> Push p) (float_range 0. 50.) );
        (1, map (fun p -> Push (p *. 1000.)) (float_range 0. 10.));
        (2, return Pop);
        (1, map (fun p -> Rekey p) (float_range 0. 80.));
      ])

let ops_arb =
  QCheck.make
    ~print:(fun ops ->
      String.concat " "
        (List.map
           (function
             | Push p -> Printf.sprintf "push %g" p
             | Pop -> "pop"
             | Rekey p -> Printf.sprintf "rekey %g" p)
           ops))
    QCheck.Gen.(list_size (int_range 0 200) op_gen)

let prop_calendar_matches_heap =
  QCheck.Test.make
    ~name:"calendar pop order = binary heap pop order (push/pop/rekey)"
    ~count:400 ops_arb (fun ops ->
      let heap = Scheduler.make Scheduler.Binary_heap in
      let cal = Scheduler.make Scheduler.Calendar in
      let next_seq = ref 0 in
      let last_value = ref (-1) in
      let ok = ref true in
      let push p v =
        heap.Scheduler.push ~prio:p ~seq:!next_seq v;
        cal.Scheduler.push ~prio:p ~seq:!next_seq v;
        incr next_seq
      in
      List.iter
        (fun op ->
          (match op with
          | Push p ->
              push p !next_seq;
              last_value := !next_seq - 1
          | Rekey p -> if !last_value >= 0 then push p !last_value
          | Pop ->
              if heap.Scheduler.size () > 0 then begin
                let hp = heap.Scheduler.min_prio ()
                and hs = heap.Scheduler.min_seq () in
                let cp = cal.Scheduler.min_prio ()
                and cs = cal.Scheduler.min_seq () in
                let hv = heap.Scheduler.pop_min () in
                let cv = cal.Scheduler.pop_min () in
                if hp <> cp || hs <> cs || hv <> cv then ok := false
              end
              else if cal.Scheduler.size () <> 0 then ok := false);
          if heap.Scheduler.size () <> cal.Scheduler.size () then ok := false)
        ops;
      (* The sorted renderings must agree before draining... *)
      let keep = fun _ -> true in
      if heap.Scheduler.sorted ~keep <> cal.Scheduler.sorted ~keep then
        ok := false;
      (* ...and the remaining contents must drain identically. *)
      let rec tail () =
        match (heap.Scheduler.size (), cal.Scheduler.size ()) with
        | 0, 0 -> ()
        | 0, _ | _, 0 -> ok := false
        | _ ->
            let hp = heap.Scheduler.min_prio ()
            and hs = heap.Scheduler.min_seq () in
            let cp = cal.Scheduler.min_prio ()
            and cs = cal.Scheduler.min_seq () in
            let hv = heap.Scheduler.pop_min () in
            let cv = cal.Scheduler.pop_min () in
            if hp <> cp || hs <> cs || hv <> cv then ok := false else tail ()
      in
      tail ();
      !ok)

let prop_calendar_sorts =
  QCheck.Test.make ~name:"calendar drains any multiset in (prio, seq) order"
    ~count:300
    QCheck.(list (float_range (-100.) 100.))
    (fun xs ->
      let q = Scheduler.make Scheduler.Calendar in
      List.iteri (fun seq p -> q.Scheduler.push ~prio:p ~seq seq) xs;
      let keys = List.map (fun (p, s, _) -> (p, s)) (drain q) in
      keys = List.sort compare keys && List.length keys = List.length xs)

let test_kind_of_string () =
  Alcotest.(check bool)
    "heap parses" true
    (Scheduler.kind_of_string "heap" = Ok Scheduler.Binary_heap);
  Alcotest.(check bool)
    "calendar parses" true
    (Scheduler.kind_of_string "calendar" = Ok Scheduler.Calendar);
  Alcotest.(check bool)
    "junk rejected" true
    (match Scheduler.kind_of_string "splay" with Error _ -> true | Ok _ -> false)

let suite =
  [
    Alcotest.test_case "empty sentinels" `Quick test_empty_sentinels;
    Alcotest.test_case "basic order" `Quick test_basic_order;
    Alcotest.test_case "seq ties" `Quick test_tie_by_seq;
    Alcotest.test_case "sorted ?keep" `Quick test_sorted_keep;
    Alcotest.test_case "clear" `Quick test_clear;
    Alcotest.test_case "kind_of_string" `Quick test_kind_of_string;
    QCheck_alcotest.to_alcotest prop_calendar_matches_heap;
    QCheck_alcotest.to_alcotest prop_calendar_sorts;
  ]
