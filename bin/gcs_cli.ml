(* gcs-cli: run gradient clock synchronization simulations from the shell.

   Subcommands:
     run      - one simulation, printed summary (optionally the gradient profile)
     compare  - all algorithms side by side on one topology
     attack   - the lower-bound adversaries (fan-lynch | linear | ring-bias)
     bounds   - print the analytic bounds for a given instance
     faults   - one simulation under a fault plan, with recovery metrics
     sweep    - batched campaign over seeds x topologies x algorithms,
                sharded across domains, emitted as one CSV; --store makes
                it resumable and incremental via the experiment store
     store    - inspect/maintain the experiment store and diff a sweep
                CSV against a stored baseline (regression gate)
     trace    - export the structured event log (JSONL/CSV) and skew
                series of one or more runs; byte-identical across --jobs
     report   - summary table, skew sparklines, fault episodes, and
                profiler totals for a batch of runs
     live     - run the algorithm as real UDP processes (one per node) on
                loopback/LAN, record the execution, and report it through
                the same pipeline as simulations
     check    - conformance harness: monitored runs, shrinking, .repro
                replay, and the conformance battery; also re-checks
                recorded live runs offline
     explore  - exhaustive small-scope model checking: enumerate every
                execution of a tiny instance, prove monitors or emit a
                shrunk .repro counterexample *)

open Cmdliner
module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Shortest_path = Gcs_graph.Shortest_path
module Drift = Gcs_clock.Drift
module Lc = Gcs_clock.Logical_clock
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds
module Fan_lynch = Gcs_adversary.Fan_lynch
module Linear = Gcs_adversary.Linear
module Bias = Gcs_adversary.Bias
module Table = Gcs_util.Table
module Prng = Gcs_util.Prng
module Scheduler = Gcs_util.Scheduler
module Fault_plan = Gcs_sim.Fault_plan
module Churn_plan = Gcs_sim.Churn_plan
module Fault_metrics = Gcs_core.Fault_metrics
module Capture = Gcs_obs.Capture
module Event_log = Gcs_obs.Event_log
module Series = Gcs_obs.Series
module Profiler = Gcs_obs.Profiler
module Report = Gcs_core.Report
module Parallel_run = Gcs_core.Parallel_run
module Live_run = Gcs_net.Live_run

(* Shared argument converters *)

let topology_conv =
  let parse s = Topology.spec_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf t = Format.pp_print_string ppf (Topology.spec_name t) in
  Arg.conv (parse, print)

let algo_conv =
  let parse s = Algorithm.kind_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf k = Format.pp_print_string ppf (Algorithm.kind_name k) in
  Arg.conv (parse, print)

let drift_conv =
  let parse s = Drift.pattern_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf _ = Format.pp_print_string ppf "<drift>" in
  Arg.conv (parse, print)

let fault_plan_conv =
  let parse s = Fault_plan.of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf p = Format.pp_print_string ppf (Fault_plan.to_string p) in
  Arg.conv (parse, print)

let churn_conv =
  let parse s = Churn_plan.of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf p = Format.pp_print_string ppf (Churn_plan.to_string p) in
  Arg.conv (parse, print)

let churn_arg =
  let doc =
    "Topology churn plan: ';'-separated processes edge-up@T:EDGES, \
     edge-down@T:EDGES, flap@T1..T2:up=U:down=D[:EDGES], grow@T1..T2:EDGES, \
     shrink@T1..T2:EDGES, with EDGES = all, edges=U-V,... or cut=V,.... \
     Compiled seed-deterministically into partition/heal events and \
     composed with any fault plan; a plan that keeps every edge up is \
     bit-identical to no plan at all."
  in
  Arg.(
    value & opt (some churn_conv) None & info [ "churn" ] ~docv:"PLAN" ~doc)

let scheduler_conv =
  let parse s = Scheduler.kind_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf k = Format.pp_print_string ppf (Scheduler.kind_name k) in
  Arg.conv (parse, print)

(* Shared options *)

let topology_arg =
  let doc =
    "Topology: line:N, ring:N, grid:RxC, torus:RxC, complete:N, star:N, \
     btree:DEPTH, hypercube:DIM, gnp:N:P, geometric:N:R."
  in
  Arg.(
    value
    & opt topology_conv (Topology.Ring 16)
    & info [ "t"; "topology" ] ~docv:"TOPOLOGY" ~doc)

let algo_arg =
  let doc =
    "Algorithm: gradient, dynamic-gradient (fresh edges tighten gradually \
     under churn), ft-gradient-F (fault-containing, F Byzantine neighbors \
     tolerated), tree, max, free-run."
  in
  Arg.(
    value
    & opt algo_conv Algorithm.Gradient_sync
    & info [ "a"; "algorithm" ] ~docv:"ALGO" ~doc)

let drift_arg =
  let doc =
    "Per-node drift pattern: perfect, fast, slow, mid, random, \
     walk:STEP:SIGMA, square:PERIOD, sin:PERIOD."
  in
  Arg.(
    value
    & opt drift_conv Drift.Random_constant
    & info [ "drift" ] ~docv:"PATTERN" ~doc)

let horizon_arg =
  Arg.(
    value & opt float 400.
    & info [ "horizon" ] ~docv:"TIME" ~doc:"Simulated real-time length.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.")

let rho_arg =
  Arg.(
    value & opt float 0.01
    & info [ "rho" ] ~docv:"RHO" ~doc:"Hardware drift bound (rates in [1, 1+rho]).")

let mu_arg =
  Arg.(
    value & opt float 0.1
    & info [ "mu" ] ~docv:"MU" ~doc:"Gradient-algorithm speedup parameter.")

let d_min_arg =
  Arg.(value & opt float 0.5 & info [ "d-min" ] ~docv:"D" ~doc:"Minimum hop delay.")

let d_max_arg =
  Arg.(value & opt float 1.5 & info [ "d-max" ] ~docv:"D" ~doc:"Maximum hop delay.")

let period_arg =
  Arg.(
    value & opt float 1.
    & info [ "period" ] ~docv:"P" ~doc:"Beacon/probe period (hardware time).")

let kappa_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "kappa" ] ~docv:"K" ~doc:"Skew quantum (default derived from the spec).")

let profile_flag =
  Arg.(
    value & flag
    & info [ "profile" ] ~doc:"Also print the empirical gradient profile f(k).")

let loss_arg =
  Arg.(
    value & opt float 0.
    & info [ "loss" ] ~docv:"P" ~doc:"I.i.d. message-loss probability in [0, 1].")

let stabilize_flag =
  Arg.(
    value & flag
    & info [ "stabilize" ]
        ~doc:"Wrap the algorithm with the self-stabilization monitor.")

let fault_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "fault" ] ~docv:"X"
        ~doc:"Corrupt node 0's initial clock by X (transient-fault injection).")

let check_flag =
  Arg.(
    value & flag
    & info [ "check" ]
        ~doc:"Validate the run against the model's output requirements.")

let trials_arg =
  Arg.(
    value & opt int 1
    & info [ "trials" ] ~docv:"N"
        ~doc:"Replicate over N seeds and report mean ± 95% CI.")

let scheduler_arg =
  Arg.(
    value
    & opt scheduler_conv Scheduler.Binary_heap
    & info [ "scheduler" ] ~docv:"KIND"
        ~doc:
          "Event-queue implementation: heap or calendar. A pure execution \
           strategy — results are byte-identical for every kind.")

let regions_arg =
  Arg.(
    value & opt int 1
    & info [ "regions" ] ~docv:"N"
        ~doc:
          "Run the engine region-parallel on N domains (1 = serial). Also a \
           pure execution strategy: results are byte-identical for every N, \
           and configurations the parallel engine cannot reproduce \
           bit-for-bit silently fall back to serial.")

let spec_term =
  let make rho mu d_min d_max period kappa =
    try Ok (Spec.make ~rho ~mu ~d_min ~d_max ~beacon_period:period ?kappa ())
    with Invalid_argument msg -> Error msg
  in
  Term.(
    const make $ rho_arg $ mu_arg $ d_min_arg $ d_max_arg $ period_arg
    $ kappa_arg)

let build_graph spec_t seed =
  Topology.build spec_t ~rng:(Prng.create ~seed:(seed lxor 0x5eed))

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("error: " ^ msg);
      exit 2

(* Expand a churn plan against one run's graph/seed/horizon and fold it
   into the run's fault plan. *)
let apply_churn ?churn ~graph ~seed ~horizon fault_plan =
  match churn with
  | None -> fault_plan
  | Some c -> (
      let compiled =
        try Churn_plan.compile c ~graph ~seed ~horizon
        with Invalid_argument msg -> or_die (Error msg)
      in
      match (fault_plan, compiled) with
      | p, None | None, p -> p
      | Some a, Some b -> Some (Fault_plan.compose a b))

let print_summary ~graph ~spec (r : Runner.result) =
  let d = Shortest_path.diameter graph in
  let s = r.Runner.summary in
  Printf.printf "nodes %d, edges %d, diameter %d, u = %g, kappa = %.4f\n"
    (Graph.n graph) (Graph.m graph) d (Spec.uncertainty spec) spec.Spec.kappa;
  Printf.printf "max local skew    : %.4f\n" s.Metrics.max_local;
  Printf.printf "mean local skew   : %.4f\n" s.Metrics.mean_local;
  Printf.printf "p99 local skew    : %.4f\n" s.Metrics.p99_local;
  Printf.printf "max global skew   : %.4f\n" s.Metrics.max_global;
  Printf.printf "final local skew  : %.4f\n" s.Metrics.final_local;
  Printf.printf "final global skew : %.4f\n" s.Metrics.final_global;
  Printf.printf "messages / events : %d / %d\n" r.Runner.messages r.Runner.events;
  if r.Runner.jumps.Lc.count > 0 then
    Printf.printf
      "clock jumps       : %d (max %.4f) — violates the bounded-rate model\n"
      r.Runner.jumps.Lc.count r.Runner.jumps.Lc.max_magnitude;
  Printf.printf "gradient envelope : %.4f (analytic local bound)\n"
    (Bounds.gradient_local_upper spec ~diameter:d)

let run_cmd =
  let action spec_result topo algo drift horizon seed profile loss stabilize
      fault check scheduler regions churn =
    let spec = or_die spec_result in
    let graph = build_graph topo seed in
    let fault_plan = apply_churn ?churn ~graph ~seed ~horizon None in
    let loss_law =
      if loss <= 0. then Runner.No_loss else Runner.Uniform_loss loss
    in
    let override, stats =
      if stabilize then begin
        let wrapped, stats =
          Gcs_core.Stabilize.wrap ~inner:(Gcs_core.Registry.get algo) ()
        in
        (Some wrapped, Some stats)
      end
      else (None, None)
    in
    let initial_value_of_node v =
      match fault with Some x when v = 0 -> x | Some _ | None -> 0.
    in
    let cfg =
      Runner.config ~spec ~algo ~drift_of_node:(fun _ -> drift) ~horizon ~seed
        ~loss:loss_law ?override ?fault_plan ~initial_value_of_node ~scheduler
        ~regions graph
    in
    let r = Runner.run cfg in
    Printf.printf "algorithm: %s%s on %s\n" (Algorithm.kind_name algo)
      (if stabilize then " (stabilized)" else "")
      (Topology.spec_name topo);
    (match churn with
    | Some c -> Printf.printf "churn: %s\n" (Churn_plan.to_string c)
    | None -> ());
    print_summary ~graph ~spec r;
    if r.Runner.dropped > 0 then
      Printf.printf "messages dropped  : %d\n" r.Runner.dropped;
    (match stats with
    | Some st ->
        Printf.printf "monitor           : %d rounds, %d resets, last estimate %.4f\n"
          st.Gcs_core.Stabilize.rounds_completed st.Gcs_core.Stabilize.resets
          st.Gcs_core.Stabilize.last_estimate
    | None -> ());
    if check then begin
      match Gcs_core.Invariant.check_result r ~algo with
      | [] -> Printf.printf "model check       : OK (no violations)\n"
      | violations ->
          Printf.printf "model check       : %d violation(s)\n"
            (List.length violations);
          List.iteri
            (fun i v ->
              if i < 5 then
                Printf.printf "  %s\n" (Gcs_core.Invariant.to_string v))
            violations;
          exit 1
    end;
    if profile then begin
      let p =
        Metrics.max_gradient_profile graph r.Runner.samples
          ~after:cfg.Runner.warmup
      in
      Table.print ~title:"Gradient profile f(k)"
        ~columns:[ Table.column ~align:Table.Left "k"; Table.column "max skew" ]
        ~rows:
          (Array.to_list
             (Array.mapi
                (fun i x -> [ string_of_int (i + 1); Table.fmt_float ~digits:4 x ])
                p))
    end
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ drift_arg
      $ horizon_arg $ seed_arg $ profile_flag $ loss_arg $ stabilize_flag
      $ fault_arg $ check_flag $ scheduler_arg $ regions_arg $ churn_arg)
  in
  Cmd.v (Cmd.info "run" ~doc:"Run one synchronization simulation.") term

let compare_cmd =
  let action spec_result topo drift horizon seed trials =
    let spec = or_die spec_result in
    let graph = build_graph topo seed in
    let seeds =
      if trials <= 1 then [ seed ]
      else List.init trials (fun i -> seed + (7919 * i))
    in
    let rows =
      List.map
        (fun algo ->
          let run_one seed =
            Runner.run
              (Runner.config ~spec ~algo ~drift_of_node:(fun _ -> drift)
                 ~horizon ~seed graph)
          in
          let summarize f =
            Gcs_core.Replicate.measure ~seeds (fun seed ->
                f (run_one seed))
          in
          let local =
            summarize (fun r -> r.Runner.summary.Metrics.max_local)
          in
          let global =
            summarize (fun r -> r.Runner.summary.Metrics.max_global)
          in
          let one = run_one seed in
          let cell s =
            if trials <= 1 then
              Table.fmt_float ~digits:4 s.Gcs_core.Replicate.mean
            else Gcs_core.Replicate.to_string ~digits:4 s
          in
          [
            Algorithm.kind_name algo;
            cell local;
            cell global;
            string_of_int one.Runner.jumps.Lc.count;
            string_of_int one.Runner.messages;
          ])
        Algorithm.all_kinds
    in
    Table.print
      ~title:(Printf.sprintf "Algorithms on %s" (Topology.spec_name topo))
      ~columns:
        [
          Table.column ~align:Table.Left "algorithm";
          Table.column "max local";
          Table.column "max global";
          Table.column "jumps";
          Table.column "messages";
        ]
      ~rows
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ drift_arg $ horizon_arg
      $ seed_arg $ trials_arg)
  in
  Cmd.v (Cmd.info "compare" ~doc:"Compare all algorithms on one topology.") term

let attack_cmd =
  let kind_conv =
    Arg.enum
      [
        ("fan-lynch", `Fan_lynch);
        ("linear", `Linear);
        ("ring-bias", `Bias);
        ("churn", `Churn);
        ("byz-search", `Byz_search);
      ]
  in
  let kind_arg =
    Arg.(
      value
      & opt kind_conv `Fan_lynch
      & info [ "kind" ] ~docv:"KIND"
          ~doc:
            "Adversary: fan-lynch, linear, ring-bias, churn, byz-search \
             (co-optimize a Byzantine lying strategy with the delay/rate \
             schedule).")
  in
  let n_arg =
    Arg.(value & opt int 33 & info [ "n" ] ~docv:"N" ~doc:"Number of nodes.")
  in
  let liars_arg =
    Arg.(
      value & opt int 1
      & info [ "liars" ] ~docv:"F"
          ~doc:"Byzantine node budget for byz-search.")
  in
  let segments_arg =
    Arg.(
      value & opt int 4
      & info [ "segments" ] ~docv:"N"
          ~doc:"Move segments for byz-search's beam stage.")
  in
  let beam_arg =
    Arg.(
      value & opt int 4
      & info [ "beam" ] ~docv:"W" ~doc:"Beam width for byz-search.")
  in
  let action spec_result algo kind n seed liars segments beam =
    let spec = or_die spec_result in
    match kind with
    | `Fan_lynch ->
        let cfg = Fan_lynch.default_config ~spec ~algo ~seed ~n () in
        let r = Fan_lynch.attack cfg in
        Printf.printf "fan-lynch attack on line:%d against %s\n" n
          (Algorithm.kind_name algo);
        Printf.printf "phases        : %d (horizon %.1f)\n" r.Fan_lynch.phases
          r.Fan_lynch.horizon;
        Printf.printf "forced local  : %.4f\n" r.Fan_lynch.forced_local;
        Printf.printf "forced global : %.4f\n" r.Fan_lynch.forced_global;
        Printf.printf "theorem line  : %.4f (c u logD / loglogD)\n"
          r.Fan_lynch.lower_bound
    | `Linear ->
        let r = Linear.attack ~spec ~algo ~seed ~n () in
        Printf.printf "linear attack on line:%d against %s\n" n
          (Algorithm.kind_name algo);
        Printf.printf "forced global : %.4f\n" r.Linear.forced_global;
        Printf.printf "forced local  : %.4f\n" r.Linear.forced_local;
        Printf.printf "bound u*D/4   : %.4f\n" r.Linear.lower_bound
    | `Bias ->
        let r = Bias.attack_ring ~spec ~algo ~seed ~n () in
        Printf.printf "ring-bias attack on ring:%d against %s\n" n
          (Algorithm.kind_name algo);
        Printf.printf "forced local  : %.4f\n" r.Bias.forced_local;
        Printf.printf "forced global : %.4f\n" r.Bias.forced_global
    | `Churn ->
        let graph = Topology.ring n in
        let cfg =
          Gcs_adversary.Churn.default_config ~spec ~algo ~seed ~graph ()
        in
        let r = Gcs_adversary.Churn.run cfg in
        Printf.printf "churn (duty %.2f) on ring:%d against %s\n"
          cfg.Gcs_adversary.Churn.duty n (Algorithm.kind_name algo);
        Printf.printf "realized loss : %.1f%%\n"
          (100. *. r.Gcs_adversary.Churn.downtime_fraction);
        Printf.printf "forced local  : %.4f\n" r.Gcs_adversary.Churn.forced_local;
        Printf.printf "forced global : %.4f\n" r.Gcs_adversary.Churn.forced_global
    | `Byz_search ->
        let module Search = Gcs_adversary.Search in
        let cfg = Search.default_config ~spec ~algo ~segments ~beam ~seed ~n () in
        let r =
          try Search.byz_search ~f:liars cfg
          with Invalid_argument msg -> or_die (Error msg)
        in
        Printf.printf "byzantine co-search on line:%d against %s (%d liar%s)\n"
          n (Algorithm.kind_name algo) liars (if liars = 1 then "" else "s");
        Printf.printf "byz plan             : %s\n"
          (Fault_plan.to_string r.Search.byz_plan);
        Printf.printf "moves                : %s\n"
          (Gcs_check.Repro.moves_to_string r.Search.byz_moves);
        Printf.printf "forced correct local : %.4f\n"
          r.Search.forced_correct_local;
        Printf.printf "evaluations          : %d\n" r.Search.byz_evaluations
  in
  let term =
    Term.(
      const action $ spec_term $ algo_arg $ kind_arg $ n_arg $ seed_arg
      $ liars_arg $ segments_arg $ beam_arg)
  in
  Cmd.v (Cmd.info "attack" ~doc:"Run a lower-bound adversary.") term

let bounds_cmd =
  let d_arg =
    Arg.(value & opt int 32 & info [ "diameter" ] ~docv:"D" ~doc:"Network diameter.")
  in
  let action spec_result d =
    let spec = or_die spec_result in
    let u = Spec.uncertainty spec in
    Printf.printf "instance: u = %g, rho = %g, mu = %g, kappa = %.4f, D = %d\n"
      u spec.Spec.rho spec.Spec.mu spec.Spec.kappa d;
    Printf.printf "fan-lynch lower bound   : %.4f\n"
      (Bounds.fan_lynch_lower ~u ~diameter:d);
    Printf.printf "gradient local envelope : %.4f\n"
      (Bounds.gradient_local_upper spec ~diameter:d);
    Printf.printf "gradient global envelope: %.4f\n"
      (Bounds.gradient_global_upper spec ~diameter:d);
    Printf.printf "max-sync global envelope: %.4f\n"
      (Bounds.max_sync_global_upper spec ~diameter:d);
    Printf.printf "sigma (log base)        : %.2f\n" (Spec.sigma spec)
  in
  let term = Term.(const action $ spec_term $ d_arg) in
  Cmd.v (Cmd.info "bounds" ~doc:"Print analytic bounds for an instance.") term

let external_cmd =
  let anchors_conv =
    Arg.enum [ ("none", `None); ("one", `One); ("sparse", `Sparse); ("all", `All) ]
  in
  let anchors_arg =
    Arg.(
      value
      & opt anchors_conv `One
      & info [ "anchors" ] ~docv:"WHO"
          ~doc:"Which nodes hold a reference: none, one, sparse (every 8th), all.")
  in
  let bias_arg =
    Arg.(
      value & opt float 0.1
      & info [ "ref-bias" ] ~docv:"B" ~doc:"Constant reference error.")
  in
  let wander_arg =
    Arg.(
      value & opt float 0.2
      & info [ "ref-wander" ] ~docv:"W" ~doc:"Reference error wander amplitude.")
  in
  let action spec_result topo horizon seed anchors bias wander =
    let spec = or_die spec_result in
    let graph = build_graph topo seed in
    let reference =
      Gcs_core.External_sync.noisy_reference ~bias ~wander
        ~period:(horizon /. 10.) ~phase:0.7
    in
    let anchor_fn =
      match anchors with
      | `None -> fun _ -> None
      | `One -> fun v -> if v = 0 then Some reference else None
      | `Sparse -> fun v -> if v mod 8 = 0 then Some reference else None
      | `All -> fun _ -> Some reference
    in
    let algo = Gcs_core.External_sync.algorithm ~anchors:anchor_fn in
    let cfg =
      Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:algo
        ~horizon ~seed graph
    in
    let r = Runner.run cfg in
    let rt =
      Array.fold_left
        (fun acc (s : Metrics.sample) ->
          if s.Metrics.time >= horizon /. 2. then
            Float.max acc
              (Metrics.real_time_skew ~time:s.Metrics.time s.Metrics.values)
          else acc)
        0. r.Runner.samples
    in
    Printf.printf "external synchronization on %s\n" (Topology.spec_name topo);
    Printf.printf "real-time skew (post-convergence) : %.4f\n" rt;
    Printf.printf "max local skew                    : %.4f\n"
      r.Runner.summary.Metrics.max_local;
    Printf.printf "max global skew                   : %.4f\n"
      r.Runner.summary.Metrics.max_global
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ horizon_arg $ seed_arg
      $ anchors_arg $ bias_arg $ wander_arg)
  in
  Cmd.v
    (Cmd.info "external" ~doc:"Run external synchronization against a reference.")
    term

let faults_cmd =
  let plan_arg =
    let doc =
      "Fault plan, e.g. 'partition@100:cut=0;heal@200:cut=0' or \
       'crash@100:node=3;recover@160:node=3:wipe'. Events are \
       ';'-separated: partition@T:EDGES, heal@T:EDGES, crash@T:node=V, \
       recover@T:node=V[:wipe], dup@T1..T2:p=P[:EDGES], \
       reorder@T1..T2:p=P:extra=X[:EDGES], corrupt@T1..T2:p=P:mag=M[:EDGES], \
       jump@T:node=V:delta=X, rate@T:node=V:rate=R, \
       byz@T1..T2:node=V:STRAT where STRAT is off=X (constant lie), rate=R \
       (drifting lie), mag=M (fresh random lie per message) or equiv=M \
       (equivocation); EDGES is all, edges=U-V,... or cut=V,... (default: \
       isolate node 0 for the middle quarter of the horizon)."
    in
    Arg.(
      value
      & opt (some fault_plan_conv) None
      & info [ "plan" ] ~docv:"PLAN" ~doc)
  in
  let action spec_result topo algo drift horizon seed plan churn =
    let spec = or_die spec_result in
    let graph = build_graph topo seed in
    let plan =
      match (plan, churn) with
      | Some p, _ -> Some p
      | None, Some _ -> None (* churn alone is the plan *)
      | None, None ->
          (* Standard smoke battery: cut node 0 off for the middle quarter. *)
          Some
            (Fault_plan.of_events
               [
                 Fault_plan.Link_partition
                   { at = 0.375 *. horizon; edges = Fault_plan.Cut [ 0 ] };
                 Fault_plan.Link_heal
                   { at = 0.625 *. horizon; edges = Fault_plan.Cut [ 0 ] };
               ])
    in
    let plan =
      match apply_churn ?churn ~graph ~seed ~horizon plan with
      | Some p -> p
      | None -> or_die (Error "churn plan is inert and no fault plan given")
    in
    (match Fault_plan.validate plan graph with
    | Ok () -> ()
    | Error msg -> or_die (Error ("fault plan: " ^ msg)));
    let cfg =
      Runner.config ~spec ~algo ~drift_of_node:(fun _ -> drift) ~horizon ~seed
        ~fault_plan:plan graph
    in
    let r = Runner.run cfg in
    Printf.printf "algorithm: %s on %s\n" (Algorithm.kind_name algo)
      (Topology.spec_name topo);
    (match churn with
    | Some c -> Printf.printf "churn: %s\n" (Churn_plan.to_string c)
    | None -> ());
    Printf.printf "fault plan: %s\n" (Fault_plan.to_string plan);
    print_summary ~graph ~spec r;
    if r.Runner.dropped > 0 then
      Printf.printf "messages dropped  : %d (loss law)\n" r.Runner.dropped;
    let report =
      match r.Runner.fault_report with
      | Some rep -> rep
      | None -> or_die (Error "internal: faulted run produced no report")
    in
    Printf.printf "fault drops       : %d" report.Fault_metrics.dropped_faults;
    if report.Fault_metrics.duplicated > 0 then
      Printf.printf ", duplicated %d" report.Fault_metrics.duplicated;
    if report.Fault_metrics.corrupted > 0 then
      Printf.printf ", corrupted %d" report.Fault_metrics.corrupted;
    if report.Fault_metrics.lied > 0 then
      Printf.printf ", lied %d" report.Fault_metrics.lied;
    print_newline ();
    (match report.Fault_metrics.correct with
    | None -> ()
    | Some c ->
        let byz = Fault_plan.byzantine_nodes plan in
        Printf.printf "byzantine nodes   : %s\n"
          (String.concat "," (List.map string_of_int byz));
        Printf.printf
          "correct-node skew : max local %.4f, max global %.4f (liars \
           excluded)\n"
          c.Metrics.max_local c.Metrics.max_global);
    Printf.printf "fault episodes    :\n";
    List.iter
      (fun e ->
        Printf.printf "  %s\n" (Fault_metrics.episode_to_string e);
        (* Post-heal decay curve, subsampled: the dynamic-network skew
           decay on a (re)formed edge as a function of its age. *)
        let d = e.Fault_metrics.decay in
        let n = Array.length d in
        if n > 1 then begin
          let picks = min 8 n in
          let pts =
            List.init picks (fun i ->
                let age, skew = d.(i * (n - 1) / (picks - 1)) in
                Printf.sprintf "t+%g %.3f" age skew)
          in
          Printf.printf "    decay: %s\n" (String.concat "  " pts)
        end)
      report.Fault_metrics.episodes;
    Printf.printf "worst transient   : %.4f\n"
      (Fault_metrics.worst_transient report);
    (match Fault_metrics.max_time_to_resync report with
    | Some t ->
        Printf.printf "time to resync    : %.4f\n" t;
        Printf.printf "finite time-to-resync : yes\n"
    | None ->
        Printf.printf "time to resync    : never\n";
        Printf.printf "finite time-to-resync : no\n";
        exit 1)
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ drift_arg
      $ horizon_arg $ seed_arg $ plan_arg $ churn_arg)
  in
  Cmd.v
    (Cmd.info "faults"
       ~doc:
         "Run one simulation under a fault plan and report per-episode \
          recovery metrics (worst transient skew, time-to-resync). Exits \
          non-zero if any healed fault never resynchronized.")
    term

let sweep_cmd =
  let topologies_arg =
    let doc =
      "Comma-separated topology specs forming one sweep axis, e.g. \
       ring:8,ring:16,ring:32 or line:16,grid:4x8."
    in
    Arg.(
      value
      & opt (list topology_conv) [ Topology.Ring 16 ]
      & info [ "topologies" ] ~docv:"TOPO,..." ~doc)
  in
  let algos_arg =
    let doc = "Comma-separated algorithms (default: all registered)." in
    Arg.(
      value
      & opt (list algo_conv) Algorithm.all_kinds
      & info [ "algos" ] ~docv:"ALGO,..." ~doc)
  in
  let seeds_arg =
    Arg.(
      value & opt int 8
      & info [ "seeds" ] ~docv:"N" ~doc:"Replicates per (topology, algorithm) cell.")
  in
  let seed_base_arg =
    Arg.(
      value & opt int 1000
      & info [ "seed-base" ] ~docv:"BASE"
          ~doc:"First seed of the replicate batch (Replicate.seeds).")
  in
  let jobs_arg =
    Arg.(
      value & opt int 1
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:
            "Shard the batch across N domains. Output is byte-identical for \
             every N; 0 means one domain per core.")
  in
  let out_arg =
    Arg.(
      value
      & opt string "-"
      & info [ "o"; "out" ] ~docv:"FILE" ~doc:"CSV destination (- for stdout).")
  in
  let sweep_plan_arg =
    Arg.(
      value
      & opt (some fault_plan_conv) None
      & info [ "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Apply this fault plan to every cell (same spec syntax as the \
             faults subcommand); adds fault_transient and fault_resync \
             columns.")
  in
  let store_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Consult and fill the experiment store in DIR: cells already \
             stored are served from it instead of simulating, fresh cells \
             are persisted as they complete. Makes a killed sweep resumable \
             and repeated sweeps incremental; output stays byte-identical \
             to a storeless run.")
  in
  let action spec_result topologies algos seeds seed_base jobs out horizon
      loss fault_plan store_dir =
    let spec = or_die spec_result in
    let jobs = if jobs = 0 then Gcs_util.Pool.default_jobs () else jobs in
    if jobs < 0 then or_die (Error "jobs must be >= 0");
    if seeds <= 0 then or_die (Error "seeds must be > 0");
    let loss = if loss <= 0. then 0. else loss in
    let loss_law = if loss = 0. then Runner.No_loss else Runner.Uniform_loss loss in
    let seed_list = Gcs_core.Replicate.seeds ~base:seed_base seeds in
    (* The grid is laid out topology-major, then algorithm, then seed; the
       pool preserves this order, so the CSV row order — and therefore the
       whole artifact — is independent of the domain count. *)
    let cells =
      List.concat_map
        (fun topo ->
          List.concat_map
            (fun algo -> List.map (fun seed -> (topo, algo, seed)) seed_list)
            algos)
        topologies
    in
    let keyed_configs =
      Array.of_list
        (List.map
           (fun (topo, algo, seed) ->
             let graph = build_graph topo seed in
             (match fault_plan with
             | Some plan -> (
                 match Fault_plan.validate plan graph with
                 | Ok () -> ()
                 | Error msg ->
                     or_die
                       (Error
                          (Printf.sprintf "fault plan on %s: %s"
                             (Topology.spec_name topo) msg)))
             | None -> ());
             ( Some
                 (Runner.store_key ~loss ?fault_plan ~spec ~topology:topo ~algo
                    ~horizon ~seed ()),
               Runner.config ~spec ~algo ~horizon ~loss:loss_law ~seed
                 ?fault_plan graph ))
           cells)
    in
    let store = Option.map (Gcs_store.Store.open_ ~create:true) store_dir in
    let outcomes, stats =
      Fun.protect
        ~finally:(fun () -> Option.iter Gcs_store.Store.close store)
        (fun () -> Parallel_run.run_cached ~jobs ?store keyed_configs)
    in
    let rows =
      List.mapi
        (fun i (topo, algo, seed) ->
          Report.outcome_row
            ~label:(Topology.spec_name topo)
            ~algo:(Algorithm.kind_name algo) ~seed outcomes.(i))
        cells
    in
    if store_dir <> None then
      Printf.eprintf "store: %d hits, %d misses (%d fresh dispatches)\n"
        stats.Parallel_run.hits stats.Parallel_run.misses
        stats.Parallel_run.fresh_dispatches;
    let header = Report.result_header ~faults:(fault_plan <> None) () in
    if out = "-" then print_string (Gcs_util.Csv.render ~header ~rows)
    else begin
      Gcs_util.Csv.write ~path:out ~header ~rows;
      Printf.printf "wrote %d rows to %s (%d configs, %d domains)\n"
        (List.length rows) out
        (Array.length keyed_configs)
        jobs
    end
  in
  let term =
    Term.(
      const action $ spec_term $ topologies_arg $ algos_arg $ seeds_arg
      $ seed_base_arg $ jobs_arg $ out_arg $ horizon_arg $ loss_arg
      $ sweep_plan_arg $ store_arg)
  in
  Cmd.v
    (Cmd.info "sweep"
       ~doc:
         "Run a seed x topology x algorithm campaign in parallel and emit one \
          CSV. Row order and contents are deterministic: --jobs changes only \
          wall-clock time.")
    term

(* Shared by trace and report: run --seeds replicate configs (seed,
   seed+7919, ...) through the parallel runner with the given capture
   request. Row/byte order is independent of --jobs. *)
let run_batch ?(scheduler = Scheduler.Binary_heap) ?(regions = 1) ?churn ~spec
    ~topo ~algo ~horizon ~seed ~seeds ~jobs ~fault_plan ~obs () =
  if seeds <= 0 then or_die (Error "seeds must be > 0");
  let jobs = if jobs = 0 then Gcs_util.Pool.default_jobs () else jobs in
  if jobs < 0 then or_die (Error "jobs must be >= 0");
  let seed_list = Gcs_core.Replicate.seeds ~base:seed seeds in
  let configs =
    Array.of_list
      (List.map
         (fun seed ->
           let graph = build_graph topo seed in
           (match fault_plan with
           | Some plan -> (
               match Fault_plan.validate plan graph with
               | Ok () -> ()
               | Error msg -> or_die (Error ("fault plan: " ^ msg)))
           | None -> ());
           List.iter
             (fun (u, v) ->
               if u < 0 || v < 0 || u >= Graph.n graph || v >= Graph.n graph
               then
                 or_die
                   (Error (Printf.sprintf "watch pair %d-%d out of range" u v)))
             obs.Capture.series_watch;
           let fault_plan = apply_churn ?churn ~graph ~seed ~horizon fault_plan in
           Runner.config ~spec ~algo ~horizon ~seed ?fault_plan ~obs ~scheduler
             ~regions graph)
         seed_list)
  in
  Parallel_run.run ~jobs configs

let seeds_repl_arg =
  Arg.(
    value & opt int 1
    & info [ "seeds" ] ~docv:"N"
        ~doc:"Replicate over N runs seeded seed, seed+7919, ....")

let jobs_repl_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Shard the runs across N domains (0 = one per core). Exports are \
           byte-identical for every N.")

let plan_repl_arg =
  Arg.(
    value
    & opt (some fault_plan_conv) None
    & info [ "fault-plan" ] ~docv:"PLAN"
        ~doc:"Apply this fault plan to every run (faults subcommand syntax).")

let series_period_arg =
  Arg.(
    value & opt float 1.
    & info [ "series-period" ] ~docv:"P" ~doc:"Time-series sampling period.")

let watch_pair_conv =
  let parse s =
    match String.split_on_char '-' s with
    | [ u; v ] -> (
        match (int_of_string_opt u, int_of_string_opt v) with
        | Some u, Some v -> Ok (u, v)
        | _ -> Error (`Msg (Printf.sprintf "bad node pair %S" s)))
    | _ -> Error (`Msg (Printf.sprintf "bad node pair %S" s))
  in
  let print ppf (u, v) = Format.fprintf ppf "%d-%d" u v in
  Arg.conv (parse, print)

let watch_arg =
  Arg.(
    value
    & opt (list watch_pair_conv) []
    & info [ "watch" ] ~docv:"U-V,..."
        ~doc:
          "Record each listed node pair's absolute skew as a dedicated \
           series column (watch0, watch1, ...) — e.g. the endpoints of a \
           churned edge, to plot its decay curve.")

let trace_cmd =
  let events_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "events" ] ~docv:"FILE"
          ~doc:"Export the event log to FILE (- for stdout).")
  in
  let format_arg =
    Arg.(
      value
      & opt (Arg.enum [ ("jsonl", Event_log.Jsonl); ("csv", Event_log.Csv) ])
          Event_log.Jsonl
      & info [ "format" ] ~docv:"FMT" ~doc:"Event export format: jsonl or csv.")
  in
  let series_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "series" ] ~docv:"FILE"
          ~doc:"Export the skew time series as CSV to FILE (- for stdout).")
  in
  let check_schema_flag =
    Arg.(
      value & flag
      & info [ "check-schema" ]
          ~doc:
            "Validate every exported JSONL line: parse it and require the \
             canonical re-encoding to reproduce the line byte for byte. \
             Exits non-zero on any violation.")
  in
  let tail_arg =
    Arg.(
      value & opt int 10
      & info [ "tail" ] ~docv:"N"
          ~doc:"Print the last N events of the first run (0 disables).")
  in
  let input_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "input" ] ~docv:"PATH"
          ~doc:
            "Read the event log from a recorded run (a directory written by \
             'gcs-cli live --record', or an events.jsonl file) instead of \
             simulating. Simulation arguments are ignored.")
  in
  (* Recorded mode: the log already exists; apply the same export /
     schema-check / tail machinery to it without running anything. *)
  let trace_input path events check_schema tail =
    let file =
      if Sys.file_exists path && Sys.is_directory path then
        Filename.concat path "events.jsonl"
      else path
    in
    if not (Sys.file_exists file) then
      or_die (Error (file ^ ": no such event log"));
    let lines =
      let ic = open_in file in
      let rec go acc =
        match input_line ic with
        | "" -> go acc
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []
    in
    (match events with
    | None -> ()
    | Some dest ->
        if dest = "-" then List.iter print_endline lines
        else begin
          let oc = open_out dest in
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            lines;
          close_out oc;
          Printf.eprintf "wrote %d event lines to %s\n" (List.length lines)
            dest
        end);
    if check_schema then begin
      List.iteri
        (fun i line ->
          match Event_log.validate_line line with
          | Ok _ -> ()
          | Error msg ->
              or_die
                (Error
                   (Printf.sprintf "schema violation on line %d: %s" (i + 1)
                      msg)))
        lines;
      Printf.eprintf "schema: %d lines OK\n" (List.length lines)
    end;
    if events = None then begin
      Printf.printf "recorded log %s: %d events\n" file (List.length lines);
      if tail > 0 then begin
        let total = List.length lines in
        let last =
          if total <= tail then lines
          else List.filteri (fun i _ -> i >= total - tail) lines
        in
        Printf.printf "\nlast %d events:\n" (List.length last);
        List.iter
          (fun line ->
            match Event_log.parse_line line with
            | Ok { Event_log.entry; _ } ->
                print_endline
                  (Gcs_sim.Trace.entry_to_string
                     {
                       Gcs_sim.Trace.time = entry.Event_log.time;
                       obs = entry.Event_log.obs;
                     })
            | Error msg -> or_die (Error msg))
          last
      end
    end
  in
  let action spec_result topo algo horizon seed seeds jobs fault_plan events
      format series series_period check_schema tail scheduler regions input
      churn watch =
    match input with
    | Some path -> trace_input path events check_schema tail
    | None ->
    let spec = or_die spec_result in
    let obs =
      {
        Capture.none with
        Capture.events = true;
        events_format = format;
        series_period = (if series = None then None else Some series_period);
        series_watch = watch;
      }
    in
    let results =
      run_batch ~scheduler ~regions ?churn ~spec ~topo ~algo ~horizon ~seed
        ~seeds ~jobs ~fault_plan ~obs ()
    in
    let logs =
      Array.map
        (fun (r : Runner.result) ->
          match r.Runner.obs.Capture.event_log with
          | Some log -> log
          | None -> or_die (Error "internal: no event log captured"))
        results
    in
    let multi = Array.length logs > 1 in
    (* Per-run logs are concatenated in input (seed) order with an explicit
       run tag, so the export bytes do not depend on --jobs. *)
    let lines =
      List.concat
        (Array.to_list
           (Array.mapi
              (fun i log ->
                let run = if multi then Some i else None in
                List.map
                  (fun e -> Event_log.encode_line ?run format e)
                  (Event_log.entries log))
              logs))
    in
    (match events with
    | None -> ()
    | Some dest ->
        let header =
          match format with
          | Event_log.Csv ->
              [ Gcs_util.Csv.render_row (Event_log.csv_header ~run:multi ()) ]
          | Event_log.Jsonl -> []
        in
        let all = header @ lines in
        if dest = "-" then List.iter print_endline all
        else begin
          let oc = open_out dest in
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            all;
          close_out oc;
          Printf.eprintf "wrote %d event lines to %s\n" (List.length lines) dest
        end);
    if check_schema then begin
      (match format with
      | Event_log.Csv -> or_die (Error "--check-schema requires --format jsonl")
      | Event_log.Jsonl -> ());
      List.iteri
        (fun i line ->
          match Event_log.validate_line line with
          | Ok _ -> ()
          | Error msg ->
              or_die
                (Error (Printf.sprintf "schema violation on line %d: %s" (i + 1) msg)))
        lines;
      Printf.eprintf "schema: %d lines OK\n" (List.length lines)
    end;
    (match series with
    | None -> ()
    | Some dest ->
        let merged = Parallel_run.merge results in
        let widths =
          if Array.length merged.Parallel_run.series = 0 then (0, 0, 0, 0)
          else
            let _, p = merged.Parallel_run.series.(0) in
            ( Array.length p.Series.values,
              Array.length p.Series.rates,
              Array.length p.Series.profile,
              Array.length p.Series.watched )
        in
        let values, rates, hops, watched = widths in
        let header =
          "run" :: Series.csv_header ~values ~rates ~hops ~watched ()
        in
        let rows =
          Array.to_list
            (Array.map
               (fun (i, p) ->
                 Gcs_util.Csv.render_row
                   (string_of_int i :: Series.csv_row p))
               merged.Parallel_run.series)
        in
        let all = Gcs_util.Csv.render_row header :: rows in
        if dest = "-" then List.iter print_endline all
        else begin
          let oc = open_out dest in
          List.iter
            (fun l ->
              output_string oc l;
              output_char oc '\n')
            all;
          close_out oc;
          Printf.eprintf "wrote %d series rows to %s\n" (List.length rows) dest
        end);
    if events = None && series = None then begin
      Printf.printf "run: %s on %s, horizon %g, %d run(s)\n"
        (Algorithm.kind_name algo) (Topology.spec_name topo) horizon
        (Array.length results);
      (* Rebuild per-kind totals by replaying the structured log through a
         counting trace — same numbers the old single-observer tracer kept. *)
      let counter = Gcs_sim.Trace.create ~capacity:1 () in
      Array.iter
        (fun log ->
          List.iter
            (fun (e : Event_log.entry) ->
              Gcs_sim.Trace.record counter e.Event_log.time e.Event_log.obs)
            (Event_log.entries log))
        logs;
      let c = Gcs_sim.Trace.counts counter in
      Printf.printf
        "observations: %d sends, %d delivers, %d drops, %d timers, %d rate \
         changes, %d fault events\n"
        c.Gcs_sim.Trace.sends c.Gcs_sim.Trace.delivers c.Gcs_sim.Trace.drops
        c.Gcs_sim.Trace.timers c.Gcs_sim.Trace.rate_changes
        c.Gcs_sim.Trace.fault_events;
      Array.iteri
        (fun i (r : Runner.result) ->
          Printf.printf "run %d: final skews local %.4f, global %.4f\n" i
            r.Runner.summary.Metrics.final_local
            r.Runner.summary.Metrics.final_global)
        results;
      if tail > 0 then begin
        let entries = Event_log.entries logs.(0) in
        let total = List.length entries in
        let last =
          if total <= tail then entries
          else List.filteri (fun i _ -> i >= total - tail) entries
        in
        Printf.printf "\nlast %d events of run 0:\n" (List.length last);
        List.iter
          (fun (e : Event_log.entry) ->
            print_endline
              (Gcs_sim.Trace.entry_to_string
                 { Gcs_sim.Trace.time = e.Event_log.time; obs = e.Event_log.obs }))
          last
      end
    end
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ horizon_arg
      $ seed_arg $ seeds_repl_arg $ jobs_repl_arg $ plan_repl_arg $ events_arg
      $ format_arg $ series_arg $ series_period_arg $ check_schema_flag
      $ tail_arg $ scheduler_arg $ regions_arg $ input_arg $ churn_arg
      $ watch_arg)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Run simulations and export their structured event log (JSONL or \
          CSV) and skew time series — or, with --input, apply the same \
          export and schema checks to a recorded live run. Exports are \
          deterministic: byte-identical for every --jobs value.")
    term

(* The event-volume line lives in the profiler section so a live report
   and a sim report expose comparable totals even when no profiler ran
   (live runs never have one — there is no engine to hook). *)
let print_profiler_section ?profile (results : Runner.result array) =
  let dispatches =
    Array.fold_left (fun a (r : Runner.result) -> a + r.Runner.dispatches) 0
      results
  in
  Printf.printf "\nprofiler (all runs):\n";
  Printf.printf "  dispatches           %d\n" dispatches;
  match profile with
  | None -> ()
  | Some rep -> List.iter (fun l -> Printf.printf "  %s\n" l) (Profiler.lines rep)

let report_columns =
  [
    Table.column ~align:Table.Left "run";
    Table.column "seed";
    Table.column "max local";
    Table.column "mean local";
    Table.column "max global";
    Table.column "final local";
    Table.column "final global";
    Table.column "messages";
    Table.column "events";
  ]

let report_row ~label ~seed (r : Runner.result) =
  let s = r.Runner.summary in
  [
    label;
    string_of_int seed;
    Table.fmt_float ~digits:4 s.Metrics.max_local;
    Table.fmt_float ~digits:4 s.Metrics.mean_local;
    Table.fmt_float ~digits:4 s.Metrics.max_global;
    Table.fmt_float ~digits:4 s.Metrics.final_local;
    Table.fmt_float ~digits:4 s.Metrics.final_global;
    string_of_int r.Runner.messages;
    string_of_int r.Runner.events;
  ]

let print_series_sparklines ~label (r : Runner.result) =
  match r.Runner.obs.Capture.series with
  | None -> ()
  | Some s ->
      let pts = Series.points s in
      let g = Array.map (fun p -> p.Series.global_skew) pts in
      let l = Array.map (fun p -> p.Series.local_skew) pts in
      let glo, ghi = Gcs_util.Stats.minmax g in
      let llo, lhi = Gcs_util.Stats.minmax l in
      Printf.printf "%s global %s [%.3f .. %.3f]\n" label (Report.sparkline g)
        glo ghi;
      Printf.printf "%s local  %s [%.3f .. %.3f]\n" label (Report.sparkline l)
        llo lhi

let report_recorded dir =
  let info, r = or_die (Live_run.load dir) in
  Table.print
    ~title:
      (Printf.sprintf "recorded live run: %s on %s, horizon %gs (wall)"
         (Algorithm.kind_name info.Live_run.algo)
         (Topology.spec_name info.Live_run.topology)
         info.Live_run.horizon)
    ~columns:report_columns
    ~rows:[ report_row ~label:"live" ~seed:info.Live_run.seed r ];
  print_newline ();
  print_series_sparklines ~label:"live " r;
  (match (info.Live_run.fault_plan, r.Runner.fault_report) with
  | Some plan, Some rep ->
      Printf.printf "\nfault plan: %s\n" (Fault_plan.to_string plan);
      List.iter
        (fun e -> Printf.printf "  %s\n" (Fault_metrics.episode_to_string e))
        rep.Fault_metrics.episodes
  | _ -> ());
  print_profiler_section [| r |]

let report_cmd =
  let recorded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "recorded" ] ~docv:"DIR"
          ~doc:
            "Report a recorded live run (a directory written by 'gcs-cli \
             live --record') instead of simulating. Simulation arguments \
             are ignored.")
  in
  let action spec_result topo algo horizon seed seeds jobs fault_plan
      series_period recorded =
    match recorded with
    | Some dir -> report_recorded dir
    | None ->
    let spec = or_die spec_result in
    let obs = Capture.full ~series_period () in
    let results =
      run_batch ~spec ~topo ~algo ~horizon ~seed ~seeds ~jobs ~fault_plan ~obs
        ()
    in
    let merged = Parallel_run.merge results in
    Table.print
      ~title:
        (Printf.sprintf "%s on %s, horizon %g" (Algorithm.kind_name algo)
           (Topology.spec_name topo) horizon)
      ~columns:report_columns
      ~rows:
        (Array.to_list
           (Array.mapi
              (fun i (r : Runner.result) ->
                report_row ~label:(string_of_int i)
                  ~seed:
                    (Gcs_core.Replicate.seeds ~base:seed seeds |> fun l ->
                     List.nth l i)
                  r)
              results));
    print_newline ();
    Array.iteri
      (fun i r ->
        print_series_sparklines ~label:(Printf.sprintf "run %d" i) r)
      results;
    (match fault_plan with
    | None -> ()
    | Some plan ->
        Printf.printf "\nfault plan: %s\n" (Fault_plan.to_string plan);
        Array.iteri
          (fun i (r : Runner.result) ->
            match r.Runner.fault_report with
            | None -> ()
            | Some rep ->
                Printf.printf "run %d episodes:\n" i;
                List.iter
                  (fun e ->
                    Printf.printf "  %s\n" (Fault_metrics.episode_to_string e))
                  rep.Fault_metrics.episodes)
          results);
    print_profiler_section ?profile:merged.Parallel_run.profile results
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ horizon_arg
      $ seed_arg $ seeds_repl_arg $ jobs_repl_arg $ plan_repl_arg
      $ series_period_arg $ recorded_arg)
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Run simulations with full capture — or load a recorded live run \
          — and print a summary table, skew sparklines, fault episodes, \
          and profiler totals.")
    term

(* gcs-cli live: the algorithm as real UDP processes. *)

let live_cmd =
  let horizon_arg =
    Arg.(
      value & opt float 6.
      & info [ "horizon" ] ~docv:"SECONDS"
          ~doc:"Wall-clock run length after the start barrier.")
  in
  let sample_period_arg =
    Arg.(
      value & opt float 0.5
      & info [ "sample-period" ] ~docv:"T"
          ~doc:"Seconds between logical-clock samples on each node.")
  in
  let base_port_arg =
    Arg.(
      value & opt int 9200
      & info [ "base-port" ] ~docv:"PORT"
          ~doc:"Node i binds UDP port PORT+i.")
  in
  let host_arg =
    Arg.(
      value & opt string "127.0.0.1"
      & info [ "host" ] ~docv:"HOST" ~doc:"Address the node sockets bind to.")
  in
  let drift_arg =
    Arg.(
      value & opt string "random"
      & info [ "drift" ] ~docv:"PATTERN"
          ~doc:
            "Simulated per-node drift pattern (same spellings as the run \
             subcommand), applied on top of the wall clock.")
  in
  let startup_arg =
    Arg.(
      value & opt float 0.5
      & info [ "startup" ] ~docv:"T"
          ~doc:"Barrier lead time for spawning the processes, in seconds.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some fault_plan_conv) None
      & info [ "plan"; "fault-plan" ] ~docv:"PLAN"
          ~doc:
            "Fault plan to inject deterministically (faults subcommand \
             syntax); times are wall seconds after the barrier.")
  in
  let record_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "record" ] ~docv:"DIR"
          ~doc:
            "Record the execution (events.jsonl, samples.csv, meta) to DIR \
             for later 'report --recorded', 'trace --input' and 'check run \
             --recorded'.")
  in
  let action spec_result topo algo horizon sample_period seed base_port host
      drift startup plan record =
    let spec = or_die spec_result in
    let cfg =
      try
        Live_run.config ~topology:topo ~algo ~spec ~drift ~horizon
          ~sample_period ~seed ~base_port ~host ?fault_plan:plan ~startup ()
      with Invalid_argument msg -> or_die (Error msg)
    in
    let graph = Live_run.build_graph cfg in
    Printf.printf "live: %s on %s — %d UDP processes on %s:%d+, horizon %gs \
                   (wall)\n%!"
      (Algorithm.kind_name algo) (Topology.spec_name topo) (Graph.n graph)
      host base_port horizon;
    let r =
      try Live_run.run cfg
      with Failure msg | Invalid_argument msg -> or_die (Error msg)
    in
    print_summary ~graph ~spec r;
    Printf.printf "dispatches        : %d\n" r.Runner.dispatches;
    Printf.printf "dropped (wire)    : %d, dropped (faults) : %d\n"
      r.Runner.dropped r.Runner.dropped_faults;
    print_series_sparklines ~label:"live " r;
    (match r.Runner.fault_report with
    | None -> ()
    | Some rep ->
        List.iter
          (fun e -> Printf.printf "  %s\n" (Fault_metrics.episode_to_string e))
          rep.Fault_metrics.episodes);
    match record with
    | None -> ()
    | Some dir ->
        Live_run.save cfg r ~dir;
        Printf.printf "recorded to %s\n" dir
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ horizon_arg
      $ sample_period_arg $ seed_arg $ base_port_arg $ host_arg $ drift_arg
      $ startup_arg $ plan_arg $ record_arg)
  in
  Cmd.v
    (Cmd.info "live"
       ~doc:
         "Run the algorithm as one real UDP process per node (loopback by \
          default), record the execution through the standard event-log \
          schema, and print the same summary a simulation gets.")
    term

(* gcs-cli check ... : conformance harness (online monitors, shrinking,
   repro artifacts). *)

module Monitor = Gcs_check.Monitor
module Check_run = Gcs_check.Check_run
module Check_shrink = Gcs_check.Shrink
module Repro = Gcs_check.Repro
module Ckey = Gcs_store.Key

let moves_conv =
  let parse s = Repro.moves_of_string s |> Result.map_error (fun e -> `Msg e) in
  let print ppf m = Format.pp_print_string ppf (Repro.moves_to_string m) in
  Arg.conv (parse, print)

let edge_age_conv =
  let parse s =
    match String.split_on_char ',' s |> List.map float_of_string_opt with
    | [ Some f; Some st; Some r ] -> Ok (f, st, r)
    | _ ->
        Error
          (`Msg (Printf.sprintf "expected FRESH,SETTLED,RATE floats, got %S" s))
  in
  let print ppf (f, s, r) = Format.fprintf ppf "%g,%g,%g" f s r in
  Arg.conv (parse, print)

let check_run_cmd =
  let plan_arg =
    Arg.(
      value
      & opt (some fault_plan_conv) None
      & info [ "plan"; "fault-plan" ] ~docv:"PLAN"
          ~doc:"Fault plan to run under (faults subcommand syntax).")
  in
  let edge_age_arg =
    Arg.(
      value
      & opt (some edge_age_conv) None
      & info [ "edge-age" ] ~docv:"FRESH,SETTLED,RATE"
          ~doc:
            "Override the edge-age conformance bounds: a pair formed at \
             age 0 is allowed FRESH skew, decaying at RATE per time unit \
             down to SETTLED. Default (armed automatically with --churn): \
             bounds derived from the spec, matching dynamic-gradient's own \
             allowance. Formation windows come from the compiled plan.")
  in
  let moves_arg =
    Arg.(
      value & opt moves_conv []
      & info [ "moves" ] ~docv:"MOVES"
          ~doc:
            "Adversary move sequence, two letters per move (fast side L/R/N, \
             delay bias F/B/N), ';'-separated, e.g. LF;RB;NN.")
  in
  let segment_len_arg =
    Arg.(
      value & opt float 20.
      & info [ "segment-len" ] ~docv:"T"
          ~doc:"Real-time length of each adversary move segment.")
  in
  let skew_flag =
    Arg.(
      value & flag
      & info [ "skew" ]
          ~doc:
            "Also monitor the adjacent-pair skew against the analytic \
             gradient envelope (checked after the warm-up quarter).")
  in
  let abort_flag =
    Arg.(
      value & flag
      & info [ "abort" ]
          ~doc:"Stop the run at the first violation instead of finishing.")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "On violation, delta-debug the configuration down to a minimized \
             counterexample before writing the repro.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write a .repro artifact of the (minimized) violation to FILE.")
  in
  let recorded_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "recorded" ] ~docv:"DIR"
          ~doc:
            "Check a recorded live run (a directory written by 'gcs-cli \
             live --record') offline: replay its sampled trajectory \
             through the same monitor checks. Simulation arguments are \
             ignored. Exits 1 on violation, 2 on non-finite measured skew.")
  in
  (* Recorded live runs go through [Monitor.check_samples] — the identical
     per-node checks, at sample granularity, with no engine involved. *)
  let check_recorded dir skew =
    let info, r = or_die (Live_run.load dir) in
    let spec = r.Runner.spec in
    let algo = info.Live_run.algo in
    let skew_bound =
      if not skew then None
      else
        Some
          (Bounds.gradient_local_upper spec
             ~diameter:(Shortest_path.diameter r.Runner.graph))
    in
    let byzantine =
      match info.Live_run.fault_plan with
      | Some p -> Fault_plan.byzantine_nodes p
      | None -> []
    in
    let monitor =
      Check_run.default_spec ~mode:`Record ?skew_bound
        ~after:info.Live_run.warmup ~byzantine spec algo
    in
    let violation, checked =
      Monitor.check_samples monitor ~graph:r.Runner.graph
        ~samples:r.Runner.samples
    in
    Printf.printf "checked recorded %s on %s: %d sample checks\n"
      (Algorithm.kind_name algo)
      (Topology.spec_name info.Live_run.topology)
      checked;
    let s = r.Runner.summary in
    Printf.printf "measured skew: max local %.4f, max global %.4f\n"
      s.Metrics.max_local s.Metrics.max_global;
    if
      not
        (Float.is_finite s.Metrics.max_local
        && Float.is_finite s.Metrics.max_global)
    then begin
      Printf.printf "verdict: NON-FINITE SKEW\n";
      exit 2
    end;
    match violation with
    | None -> Printf.printf "verdict: CONFORMS\n"
    | Some v ->
        Printf.printf "verdict: VIOLATION\n  %s\n"
          (Monitor.violation_to_string v);
        exit 1
  in
  let action spec_result topo algo horizon seed loss plan moves segment_len
      skew abort shrink out recorded churn edge_age =
    match recorded with
    | Some dir -> check_recorded dir skew
    | None ->
    let spec = or_die spec_result in
    let loss = if loss <= 0. then 0. else loss in
    let graph = build_graph topo seed in
    let plan = apply_churn ?churn ~graph ~seed ~horizon plan in
    let key =
      Runner.store_key ~loss ?fault_plan:plan ~spec ~topology:topo ~algo
        ~horizon ~seed ()
    in
    let cfg = or_die (Runner.config_of_key key) in
    let skew_bound =
      if not skew then None
      else
        Some (Bounds.gradient_local_upper spec ~diameter:(Shortest_path.diameter graph))
    in
    (* Armed whenever the run is churned (or bounds were given explicitly):
       the conformance bound each up-pair must satisfy is parameterized by
       the edge's age, from the formation windows of the compiled plan. *)
    let edge_age_spec =
      match (edge_age, churn) with
      | None, None -> None
      | _ ->
          let diameter = Shortest_path.diameter graph in
          let base = Check_run.edge_age_bounds spec ~diameter in
          let base =
            match edge_age with
            | None -> base
            | Some (fresh, settled, rate) ->
                {
                  base with
                  Monitor.fresh_bound = fresh;
                  settled_bound = settled;
                  tighten_rate = rate;
                }
          in
          let windows =
            match plan with
            | None -> []
            | Some p -> Churn_plan.up_windows p ~graph ~horizon
          in
          Some { base with Monitor.windows }
    in
    let monitor =
      Check_run.default_spec
        ~mode:(if abort then `Abort else `Record)
        ?skew_bound ?edge_age:edge_age_spec ~after:(horizon /. 4.) spec algo
    in
    let checked =
      try Check_run.run ~monitor ~moves ~segment_len cfg
      with Invalid_argument msg -> or_die (Error msg)
    in
    Printf.printf "checked %s on %s: %d events monitored\n"
      (Algorithm.kind_name algo) (Topology.spec_name topo)
      checked.Check_run.events_checked;
    match checked.Check_run.violation with
    | None -> Printf.printf "verdict: CONFORMS\n"
    | Some v ->
        Printf.printf "verdict: VIOLATION\n  %s\n"
          (Monitor.violation_to_string v);
        let candidate = { Check_shrink.key; segment_len; moves } in
        let candidate, violation =
          if not shrink then (candidate, v)
          else
            match Check_shrink.shrink ~monitor candidate with
            | None -> (candidate, v)
            | Some o ->
                Printf.printf
                  "shrunk: size %d -> %d (%d evaluations), now %s seed %d \
                   horizon %s\n"
                  o.Check_shrink.initial_size o.Check_shrink.final_size
                  o.Check_shrink.evaluations
                  (Topology.spec_name
                     o.Check_shrink.minimized.Check_shrink.key.Ckey.topology)
                  o.Check_shrink.minimized.Check_shrink.key.Ckey.seed
                  (Printf.sprintf "%g"
                     o.Check_shrink.minimized.Check_shrink.key.Ckey.horizon);
                (o.Check_shrink.minimized, o.Check_shrink.violation)
        in
        (match out with
        | None -> ()
        | Some path ->
            Repro.save ~path
              {
                Repro.monitor = { monitor with Monitor.mode = `Record };
                expected = violation;
                segment_len = candidate.Check_shrink.segment_len;
                moves = candidate.Check_shrink.moves;
                key = candidate.Check_shrink.key;
              };
            Printf.printf "wrote repro to %s\n" path);
        exit 1
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ horizon_arg
      $ seed_arg $ loss_arg $ plan_arg $ moves_arg $ segment_len_arg
      $ skew_flag $ abort_flag $ shrink_flag $ out_arg $ recorded_arg
      $ churn_arg $ edge_age_arg)
  in
  Cmd.v
    (Cmd.info "run"
       ~doc:
         "Run one simulation under an online invariant monitor — or \
          re-check a recorded live run offline with --recorded; on \
          violation, optionally shrink it and write a .repro artifact. \
          Exits 1 on violation.")
    term

let check_replay_cmd =
  let files_arg =
    Arg.(
      non_empty
      & pos_all file []
      & info [] ~docv:"REPRO" ~doc:".repro files to replay.")
  in
  let action files jobs =
    let jobs = if jobs = 0 then Gcs_util.Pool.default_jobs () else jobs in
    if jobs < 0 then or_die (Error "jobs must be >= 0");
    let repros =
      Array.of_list (List.map (fun f -> or_die (Repro.load f)) files)
    in
    (* Replays shard across domains; reports print in input order, so the
       output bytes are independent of --jobs. *)
    let outcomes = Gcs_util.Pool.map ~jobs Repro.replay repros in
    let ok = ref true in
    Array.iteri
      (fun i t ->
        print_string (Repro.report t outcomes.(i));
        match outcomes.(i) with
        | Ok Repro.Reproduced -> ()
        | Ok (Repro.Diverged _) | Ok Repro.Missing | Error _ -> ok := false)
      repros;
    if not !ok then exit 1
  in
  let term = Term.(const action $ files_arg $ jobs_repl_arg) in
  Cmd.v
    (Cmd.info "replay"
       ~doc:
         "Re-simulate .repro counterexample artifacts and verify each \
          reproduces its recorded violation exactly. Output is \
          byte-identical for every --jobs value; exits 1 unless every \
          artifact reproduces.")
    term

let check_battery_cmd =
  let topologies_arg =
    Arg.(
      value
      & opt (list topology_conv) [ Topology.Ring 8; Topology.Line 9 ]
      & info [ "topologies" ] ~docv:"TOPO,..."
          ~doc:"Comma-separated topology specs to sweep.")
  in
  let algos_arg =
    Arg.(
      value
      & opt (some (list algo_conv)) None
      & info [ "algos" ] ~docv:"ALGO,..."
          ~doc:
            "Comma-separated algorithms (default: all registered; with \
             --byzantine, just ft-gradient-F).")
  in
  let seeds_arg =
    Arg.(
      value & opt int 4
      & info [ "seeds" ] ~docv:"N"
          ~doc:"Seeds per (topology, algorithm) cell.")
  in
  let byz_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "byzantine" ] ~docv:"F"
          ~doc:
            "Containment mode: run every cell under a deterministic \
             Byzantine plan with F liars and check the weakened \
             correct-correct containment bound instead of the faultless \
             envelopes. The ft-gradient algorithm must come back clean; \
             plain gradient cells demonstrate the violation (and shrink \
             and replay like any other).")
  in
  let base_seed_arg =
    Arg.(
      value & opt int 1
      & info [ "base-seed" ] ~docv:"SEED" ~doc:"First seed of each cell.")
  in
  let no_faults_flag =
    Arg.(
      value & flag
      & info [ "no-faults" ]
          ~doc:"Disable the benign fault plans on odd seed indices.")
  in
  let repro_dir_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "repro-dir" ] ~docv:"DIR"
          ~doc:"Write a .repro artifact per violating cell into DIR.")
  in
  let action spec_result topologies algos seeds base_seed no_faults horizon
      jobs repro_dir byz churn =
    let spec = or_die spec_result in
    let jobs = if jobs = 0 then Gcs_util.Pool.default_jobs () else jobs in
    if jobs < 0 then or_die (Error "jobs must be >= 0");
    if byz <> None && churn <> None then
      or_die (Error "--byzantine and --churn cannot be combined");
    let algos =
      match (algos, byz) with
      | Some a, _ -> a
      | None, Some f -> [ Algorithm.Ft_gradient_sync f ]
      | None, None -> Algorithm.all_kinds
    in
    let cells =
      try
        match byz with
        | Some f ->
            Check_run.containment_battery ~jobs ~spec ~algos ~f ~base_seed
              ~topologies ~seeds ~horizon ()
        | None ->
            Check_run.battery ~jobs ~spec ~algos ?churn
              ~faults:(not no_faults) ~base_seed ~topologies ~seeds ~horizon
              ()
      with Invalid_argument msg -> or_die (Error msg)
    in
    let events =
      List.fold_left (fun a c -> a + c.Check_run.events_checked) 0 cells
    in
    Printf.printf "battery: %d cells (%d topologies x %d algorithms x %d \
                   seeds), %d events monitored\n"
      (List.length cells) (List.length topologies) (List.length algos) seeds
      events;
    match Check_run.violations cells with
    | [] -> Printf.printf "verdict: all cells CONFORM\n"
    | bad ->
        Printf.printf "verdict: %d violating cell(s)\n" (List.length bad);
        List.iteri
          (fun i c ->
            let v = Option.get c.Check_run.violation in
            Printf.printf "  %s %s seed %d: %s\n"
              (Topology.spec_name c.Check_run.key.Ckey.topology)
              c.Check_run.key.Ckey.algo c.Check_run.key.Ckey.seed
              (Monitor.violation_to_string v);
            match repro_dir with
            | None -> ()
            | Some dir ->
                if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
                let path =
                  Filename.concat dir (Printf.sprintf "battery-%02d.repro" i)
                in
                Repro.save ~path
                  {
                    Repro.monitor = c.Check_run.monitor;
                    expected = v;
                    segment_len = 0.;
                    moves = [];
                    key = c.Check_run.key;
                  };
                Printf.printf "    wrote %s\n" path)
          bad;
        exit 1
  in
  let term =
    Term.(
      const action $ spec_term $ topologies_arg $ algos_arg $ seeds_arg
      $ base_seed_arg $ no_faults_flag $ horizon_arg $ jobs_repl_arg
      $ repro_dir_arg $ byz_arg $ churn_arg)
  in
  Cmd.v
    (Cmd.info "battery"
       ~doc:
         "Sweep every algorithm over a grid of topologies, seeds, and \
          benign fault plans with online monitors attached (--byzantine \
          switches to the containment battery under adversarial liars). \
          Exits 1 if any cell violates its envelope.")
    term

let check_cmd =
  Cmd.group
    (Cmd.info "check"
       ~doc:
         "Conformance harness: monitored runs, counterexample shrinking, \
          deterministic .repro artifacts, and the conformance battery.")
    [ check_run_cmd; check_replay_cmd; check_battery_cmd ]

(* gcs-cli explore : exhaustive small-scope model checking. *)

module Choice = Gcs_explore.Choice
module Instance = Gcs_explore.Instance
module Explorer = Gcs_explore.Explorer
module Verdict = Gcs_explore.Verdict

let explore_cmd =
  let topology_arg =
    let doc = "Instance topology (2..6 nodes), e.g. line:2, ring:3." in
    Arg.(
      value
      & opt topology_conv (Topology.Ring 3)
      & info [ "t"; "topology" ] ~docv:"TOPOLOGY" ~doc)
  in
  let seed_arg =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"SEED" ~doc:"Run seed.")
  in
  let segment_len_arg =
    Arg.(
      value & opt float 8.
      & info [ "segment-len" ] ~docv:"T"
          ~doc:"Real-time length one decision governs.")
  in
  let depth_arg =
    Arg.(
      value & opt int 3
      & info [ "depth" ] ~docv:"D"
          ~doc:"Decisions per execution (horizon = depth * segment-len).")
  in
  let alphabet_arg =
    Arg.(
      value & opt string "extreme"
      & info [ "alphabet" ] ~docv:"ALPHABET"
          ~doc:
            "Decision alphabet: all (9 moves), drift (3), delay (3), \
             extreme (4), or an explicit move list like LF;RB.")
  in
  let plan_arg =
    Arg.(
      value
      & opt (some fault_plan_conv) None
      & info [ "plan"; "fault-plan" ] ~docv:"PLAN"
          ~doc:"Fault plan to explore under (faults subcommand syntax).")
  in
  let rate_lo_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate-lo" ] ~docv:"R"
          ~doc:"Override the monitor's lower rate bound (enables rate checks).")
  in
  let rate_hi_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate-hi" ] ~docv:"R"
          ~doc:"Override the monitor's upper rate bound (enables rate checks).")
  in
  let skew_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "skew-bound" ] ~docv:"S"
          ~doc:"Also monitor adjacent-pair skew against this bound.")
  in
  let max_states_arg =
    Arg.(
      value & opt int 100_000
      & info [ "max-states" ] ~docv:"N"
          ~doc:"State budget: maximum prefixes to simulate.")
  in
  let dedup_flag =
    Arg.(
      value & flag
      & info [ "dedup" ]
          ~doc:
            "Prune subtrees whose canonicalized engine state was already \
             expanded at the same remaining depth. A pruning heuristic: \
             off by default, and a clean exhaustion with it on is weaker \
             than a full proof.")
  in
  let quantum_arg =
    Arg.(
      value & opt float 1e-9
      & info [ "quantum" ] ~docv:"Q"
          ~doc:"Clock quantization step for state canonicalization.")
  in
  let strategy_arg =
    Arg.(
      value & opt string "bfs"
      & info [ "strategy" ] ~docv:"bfs|dfs"
          ~doc:"Frontier order: bfs (depth-minimal counterexamples) or dfs.")
  in
  let prove_flag =
    Arg.(
      value & flag
      & info [ "prove" ]
          ~doc:
            "Exit 0 only if the full space was exhausted violation-free \
             (exit 3 when the state budget cut exploration short).")
  in
  let json_flag =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Emit the outcome as single-line JSON.")
  in
  let shrink_flag =
    Arg.(
      value & flag
      & info [ "shrink" ]
          ~doc:
            "On violation, delta-debug the trace down to a minimized \
             counterexample before writing the repro.")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "out" ] ~docv:"FILE"
          ~doc:"Write a .repro artifact of the (minimized) violation to FILE.")
  in
  let action spec_result topo algo seed segment_len depth alphabet_s plan
      rate_lo rate_hi skew_bound max_states dedup quantum strategy_s prove
      json shrink out =
    let spec = or_die spec_result in
    let alphabet = or_die (Choice.alphabet_of_string alphabet_s) in
    let strategy = or_die (Explorer.strategy_of_string strategy_s) in
    let monitor =
      let base = Check_run.default_spec ~mode:`Abort ?skew_bound spec algo in
      let base =
        match rate_lo with
        | None -> base
        | Some r -> { base with Monitor.rate_lo = r; check_rate = true }
      in
      match rate_hi with
      | None -> base
      | Some r -> { base with Monitor.rate_hi = r; check_rate = true }
    in
    let inst =
      try
        Instance.make ~spec ~topology:topo ~algo ~seed ~segment_len ~depth
          ~alphabet ?fault_plan:plan ~monitor ()
      with Invalid_argument msg -> or_die (Error msg)
    in
    let outcome = Explorer.explore ~dedup ~quantum ~max_states ~strategy inst in
    let stats = outcome.Explorer.stats in
    if json then print_endline (Verdict.to_json inst outcome)
    else begin
      Printf.printf
        "explored %s on %s: depth %d, alphabet %d (%s), space %d prefixes / \
         %d executions\n"
        (Algorithm.kind_name algo) (Topology.spec_name topo) depth
        (List.length inst.Instance.alphabet)
        (Choice.alphabet_to_string inst.Instance.alphabet)
        (Instance.prefixes inst) (Instance.executions inst);
      Printf.printf
        "states visited %d (%d complete), pruned %d, distinct %d, frontier \
         high-water %d, %d events monitored\n"
        stats.Explorer.states_visited stats.Explorer.executions
        stats.Explorer.pruned stats.Explorer.distinct_states
        stats.Explorer.frontier_high_water stats.Explorer.events_checked
    end;
    match outcome.Explorer.verdict with
    | Explorer.Proved ->
        if not json then
          Printf.printf "verdict: PROVED (%d executions, no violation)\n"
            stats.Explorer.executions
    | Explorer.Budget_exhausted ->
        if not json then
          Printf.printf
            "verdict: BUDGET EXHAUSTED (%d states visited, frontier \
             remaining)\n"
            stats.Explorer.states_visited;
        if prove then exit 3
    | Explorer.Violated { trace; violation } ->
        if not json then
          Printf.printf "verdict: VIOLATION at depth %d, trace %s\n  %s\n"
            (List.length trace)
            (Choice.trace_to_string trace)
            (Monitor.violation_to_string violation);
        let cand, viol =
          if not shrink then (Verdict.candidate inst trace, violation)
          else
            match Verdict.shrink inst ~trace with
            | None -> (Verdict.candidate inst trace, violation)
            | Some o ->
                if not json then
                  Printf.printf "shrunk: size %d -> %d (%d evaluations)\n"
                    o.Check_shrink.initial_size o.Check_shrink.final_size
                    o.Check_shrink.evaluations;
                (o.Check_shrink.minimized, o.Check_shrink.violation)
        in
        (match out with
        | None -> ()
        | Some path ->
            Repro.save ~path (Verdict.repro_of_candidate inst cand ~violation:viol);
            if not json then Printf.printf "wrote repro to %s\n" path);
        exit 1
  in
  let term =
    Term.(
      const action $ spec_term $ topology_arg $ algo_arg $ seed_arg
      $ segment_len_arg $ depth_arg $ alphabet_arg $ plan_arg $ rate_lo_arg
      $ rate_hi_arg $ skew_arg $ max_states_arg $ dedup_flag $ quantum_arg
      $ strategy_arg $ prove_flag $ json_flag $ shrink_flag $ out_arg)
  in
  Cmd.v
    (Cmd.info "explore"
       ~doc:
         "Exhaustively enumerate every execution of a tiny instance \
          (discretized delays x drift lattice as an explicit decision \
          tree) under an online monitor. Exits 0 when the space is clean, \
          1 on a violation (optionally shrunk and written as a .repro), 3 \
          when --prove hit the state budget first.")
    term

(* gcs-cli store ... : inspect and gate against the experiment store. *)

module Store = Gcs_store.Store
module Store_key = Gcs_store.Key
module Outcome = Gcs_store.Outcome

let store_dir_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Store directory (default: \\$GCS_STORE_DIR, else \
           ~/.cache/gcs).")

let resolve_store_dir = function
  | Some d -> d
  | None -> Store.default_dir ()

let store_stats_cmd =
  let action dir =
    let dir = resolve_store_dir dir in
    let st = Store.open_ ~create:true dir in
    Fun.protect
      ~finally:(fun () -> Store.close st)
      (fun () ->
        Printf.printf "store     : %s\n" (Store.dir st);
        Printf.printf "entries   : %d\n" (Store.length st);
        Printf.printf "log bytes : %d\n" (Store.log_bytes st);
        let by_schema = Hashtbl.create 4 and by_algo = Hashtbl.create 8 in
        let bump tbl k =
          Hashtbl.replace tbl k
            (1 + Option.value ~default:0 (Hashtbl.find_opt tbl k))
        in
        Store.iter st (fun k _ ->
            bump by_schema k.Store_key.schema_version;
            bump by_algo k.Store_key.algo);
        let sorted tbl = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] |> List.sort compare in
        List.iter
          (fun (v, n) -> Printf.printf "schema %d  : %d entries\n" v n)
          (sorted by_schema);
        List.iter
          (fun (a, n) -> Printf.printf "algo %-9s: %d entries\n" a n)
          (sorted by_algo))
  in
  Cmd.v
    (Cmd.info "stats" ~doc:"Entry counts and sizes of an experiment store.")
    Term.(const action $ store_dir_arg)

let store_verify_cmd =
  let action dir =
    let dir = resolve_store_dir dir in
    let st = Store.open_ ~create:true dir in
    let rep =
      Fun.protect ~finally:(fun () -> Store.close st) (fun () -> Store.verify st)
    in
    Printf.printf "records    : %d\n" rep.Store.records;
    Printf.printf "live       : %d\n" rep.Store.live;
    Printf.printf "bytes      : %d\n" rep.Store.bytes;
    Printf.printf "corrupt    : %d\n" rep.Store.corrupt;
    Printf.printf "torn bytes : %d\n" rep.Store.torn_bytes;
    Printf.printf "index      : %s\n" (if rep.Store.index_ok then "ok" else "rebuilt");
    if rep.Store.corrupt > 0 then begin
      prerr_endline "error: store holds corrupt records (re-run gc to drop them)";
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "verify"
       ~doc:
         "Re-scan the record log, cross-check the index, and exit non-zero \
          on corrupt records.")
    Term.(const action $ store_dir_arg)

let store_gc_cmd =
  let keep_schema_arg =
    Arg.(
      value
      & opt int Store_key.current_schema_version
      & info [ "keep-schema" ] ~docv:"N"
          ~doc:"Keep only records of this schema version (default: current).")
  in
  let action dir keep_schema =
    let dir = resolve_store_dir dir in
    let st = Store.open_ ~create:true dir in
    Fun.protect
      ~finally:(fun () -> Store.close st)
      (fun () ->
        let dropped = Store.gc ~keep_schema st in
        Printf.printf "dropped %d records, %d live (%d bytes)\n" dropped
          (Store.length st) (Store.log_bytes st))
  in
  Cmd.v
    (Cmd.info "gc"
       ~doc:
         "Compact the record log: drop superseded duplicates, corrupt \
          records, and entries from other schema versions.")
    Term.(const action $ store_dir_arg $ keep_schema_arg)

let store_diff_cmd =
  let csv_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"CSV" ~doc:"Sweep CSV to check against the baseline.")
  in
  let tol_abs_arg =
    Arg.(
      value & opt float 1e-9
      & info [ "tol-abs" ] ~docv:"X" ~doc:"Absolute tolerance per numeric cell.")
  in
  let tol_rel_arg =
    Arg.(
      value & opt float 0.
      & info [ "tol-rel" ] ~docv:"X" ~doc:"Relative tolerance per numeric cell.")
  in
  let action dir csv_path tol_abs tol_rel =
    let dir = resolve_store_dir dir in
    let st =
      try Store.open_ ~create:false dir
      with Invalid_argument msg -> or_die (Error msg)
    in
    (* Index the baseline by the sweep's identity columns. A triple that
       appears twice (same cell stored under different horizons or specs)
       cannot be gated against unambiguously. *)
    let baseline = Hashtbl.create 64 in
    Fun.protect
      ~finally:(fun () -> Store.close st)
      (fun () ->
        Store.iter st (fun k o ->
            let triple =
              (Topology.spec_name k.Store_key.topology, k.Store_key.algo,
               k.Store_key.seed)
            in
            Hashtbl.replace baseline triple
              (if Hashtbl.mem baseline triple then `Ambiguous else `One o)));
    let content =
      let ic = open_in_bin csv_path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic))
    in
    let lines =
      List.filter (fun l -> l <> "") (String.split_on_char '\n' content)
    in
    let header, data_rows =
      match lines with
      | [] -> or_die (Error "empty CSV")
      | h :: rest -> (or_die (Gcs_util.Csv.parse_line h), rest)
    in
    let col name row =
      let rec go names cells =
        match (names, cells) with
        | n :: _, c :: _ when n = name -> Some c
        | _ :: ns, _ :: cs -> go ns cs
        | _ -> None
      in
      go header row
    in
    let require name row =
      match col name row with
      | Some c -> c
      | None -> or_die (Error (Printf.sprintf "CSV has no %s column" name))
    in
    let drift = ref 0 and missing = ref 0 and ambiguous = ref 0 in
    let out_header =
      [ "topology"; "algorithm"; "seed"; "column"; "baseline"; "measured"; "delta" ]
    in
    print_endline (Gcs_util.Csv.render_row out_header);
    let close_enough a b =
      Float.abs (a -. b)
      <= tol_abs +. (tol_rel *. Float.max (Float.abs a) (Float.abs b))
    in
    List.iter
      (fun line ->
        let row = or_die (Gcs_util.Csv.parse_line line) in
        let topo = require "topology" row in
        let algo = require "algorithm" row in
        let seed =
          match int_of_string_opt (require "seed" row) with
          | Some s -> s
          | None -> or_die (Error ("bad seed in row: " ^ line))
        in
        match Hashtbl.find_opt baseline (topo, algo, seed) with
        | None ->
            incr missing;
            Printf.eprintf "missing from baseline: %s %s seed %d\n" topo algo
              seed
        | Some `Ambiguous ->
            incr ambiguous;
            Printf.eprintf "ambiguous baseline (multiple entries): %s %s seed %d\n"
              topo algo seed
        | Some (`One o) ->
            let expected =
              Report.outcome_row ~label:topo ~algo ~seed o
            in
            let expected_header =
              Report.result_header ~faults:(o.Outcome.fault <> None) ()
            in
            List.iteri
              (fun i name ->
                match (List.nth_opt expected i, col name row) with
                | Some base, Some got when base <> got ->
                    let numeric_ok =
                      match
                        (float_of_string_opt base, float_of_string_opt got)
                      with
                      | Some a, Some b -> close_enough a b
                      | _ -> false
                    in
                    if not numeric_ok then begin
                      incr drift;
                      let delta =
                        match
                          (float_of_string_opt base, float_of_string_opt got)
                        with
                        | Some a, Some b -> Printf.sprintf "%.6g" (b -. a)
                        | _ -> ""
                      in
                      print_endline
                        (Gcs_util.Csv.render_row
                           [
                             topo; algo; string_of_int seed; name; base; got;
                             delta;
                           ])
                    end
                | _ -> ())
              expected_header)
      data_rows;
    Printf.eprintf "diff: %d drifted cells, %d missing rows, %d ambiguous rows\n"
      !drift !missing !ambiguous;
    if !ambiguous > 0 then exit 2;
    if !drift > 0 || !missing > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "diff"
       ~doc:
         "Compare a sweep CSV against a stored baseline, printing \
          out-of-tolerance cells as CSV. Exits 1 on drift or rows missing \
          from the baseline, 2 when the baseline is ambiguous for a row.")
    Term.(const action $ store_dir_arg $ csv_arg $ tol_abs_arg $ tol_rel_arg)

let store_cmd =
  Cmd.group
    (Cmd.info "store"
       ~doc:
         "Inspect, maintain, and gate against the content-addressed \
          experiment store that cache-aware sweeps fill.")
    [ store_stats_cmd; store_verify_cmd; store_gc_cmd; store_diff_cmd ]

let () =
  let info =
    Cmd.info "gcs-cli" ~version:"1.0.0"
      ~doc:"Gradient clock synchronization (Fan & Lynch, PODC 2004) simulator"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            run_cmd; compare_cmd; attack_cmd; bounds_cmd; external_cmd;
            trace_cmd; report_cmd; faults_cmd; sweep_cmd; store_cmd;
            live_cmd; check_cmd; explore_cmd;
          ]))
