module Search = Gcs_adversary.Search
module Repro = Gcs_check.Repro
module Spec = Gcs_core.Spec
module Delay_model = Gcs_sim.Delay_model

type t = Search.move
type trace = t list

let all = Search.all_moves

let drift_only =
  List.map
    (fun fast_side -> { Search.fast_side; bias = `Neutral })
    [ `Left; `Right; `None ]

let delay_only =
  List.map
    (fun bias -> { Search.fast_side = `None; bias })
    [ `Forward; `Backward; `Neutral ]

let extremes =
  List.concat_map
    (fun fast_side ->
      List.map (fun bias -> { Search.fast_side; bias }) [ `Forward; `Backward ])
    [ `Left; `Right ]

let to_string m = Repro.moves_to_string [ m ]
let trace_to_string = Repro.moves_to_string
let trace_of_string = Repro.moves_of_string

let alphabet_of_string s =
  match s with
  | "all" -> Ok all
  | "drift" -> Ok drift_only
  | "delay" -> Ok delay_only
  | "extreme" | "extremes" -> Ok extremes
  | s -> (
      match Repro.moves_of_string s with
      | Ok [] -> Error "Choice.alphabet_of_string: empty alphabet"
      | (Ok _ | Error _) as r -> r)

let alphabet_to_string moves =
  if moves = all then "all"
  else if moves = drift_only then "drift"
  else if moves = delay_only then "delay"
  else if moves = extremes then "extreme"
  else Repro.moves_to_string moves

let delay_points (spec : Spec.t) =
  let b = spec.Spec.delay in
  [
    b.Delay_model.d_min;
    0.5 *. (b.Delay_model.d_min +. b.Delay_model.d_max);
    b.Delay_model.d_max;
  ]

let rate_lattice spec = [ 1.; Spec.vartheta spec ]
