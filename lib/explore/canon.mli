(** Canonical engine-state strings for memoization.

    Two prefix runs whose canonical states match are observationally
    equivalent as far as the engine can tell: same quantized logical clock
    values and multipliers, same hardware clock values and rates, same
    node/edge availability masks, and the same pending event queue
    (rendered in exact pop order, with times relative to [now] so
    executions reaching the same configuration at the same depth compare
    equal). Clock values are quantized to a [quantum] so that float noise
    below the quantum does not split equivalent states.

    Canonical equality is sound for the engine but *not* for algorithm
    handlers: handler closures (e.g. the gradient algorithm's neighbor
    estimates) and monitor history are opaque and unobservable here. Two
    states with equal canonical strings can therefore still diverge later,
    which is why the explorer's memoization is a pruning heuristic that
    defaults to off — see {!Explorer.explore}. *)

val state : ?quantum:float -> Gcs_core.Runner.live -> string
(** Render the live run's current state canonically. [quantum] (default
    [1e-9]) is the clock-value quantization step. The engine is not
    modified; cost is O(queue size x log queue size). *)
