module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Topology = Gcs_graph.Topology
module Graph = Gcs_graph.Graph
module Prng = Gcs_util.Prng
module Fault_plan = Gcs_sim.Fault_plan
module Monitor = Gcs_check.Monitor
module Check_run = Gcs_check.Check_run

type t = {
  spec : Spec.t;
  topology : Topology.spec;
  algo : Algorithm.kind;
  seed : int;
  segment_len : float;
  depth : int;
  alphabet : Choice.t list;
  fault_plan : Fault_plan.t option;
  monitor : Monitor.spec;
}

let max_nodes = 6

(* The sweep convention: graphs of key-described runs are built from the
   topology spec with an rng derived from the run seed, so [key] below
   addresses exactly the run we simulate. *)
let build_graph topology seed =
  Topology.build topology ~rng:(Prng.create ~seed:(seed lxor 0x5eed))

let dedup alphabet =
  List.fold_left
    (fun acc m -> if List.mem m acc then acc else acc @ [ m ])
    [] alphabet

let make ?(spec = Spec.make ()) ?(topology = Topology.Ring 3)
    ?(algo = Algorithm.Gradient_sync) ?(seed = 1) ?(segment_len = 8.)
    ?(depth = 3) ?(alphabet = Choice.extremes) ?fault_plan ?monitor () =
  if depth < 1 then invalid_arg "Instance.make: depth must be >= 1";
  if segment_len <= 0. then
    invalid_arg "Instance.make: segment_len must be > 0";
  let alphabet = dedup alphabet in
  if alphabet = [] then invalid_arg "Instance.make: alphabet must be non-empty";
  let n = Graph.n (build_graph topology seed) in
  if n < 2 || n > max_nodes then
    invalid_arg
      (Printf.sprintf
         "Instance.make: exhaustive exploration needs 2..%d nodes (topology \
          %s has %d)"
         max_nodes (Topology.spec_name topology) n);
  let monitor =
    match monitor with
    | Some m -> m
    | None -> Check_run.default_spec ~mode:`Abort spec algo
  in
  { spec; topology; algo; seed; segment_len; depth; alphabet; fault_plan;
    monitor }

let nodes t = Graph.n (build_graph t.topology t.seed)
let horizon t ~depth = float_of_int depth *. t.segment_len

let key t ~depth =
  Runner.store_key ~drift:"perfect" ?fault_plan:t.fault_plan ~spec:t.spec
    ~topology:t.topology ~algo:t.algo
    ~horizon:(horizon t ~depth)
    ~seed:t.seed ()

let pow base e =
  let rec go acc e = if e = 0 then acc else go (acc * base) (e - 1) in
  go 1 e

let executions t = pow (List.length t.alphabet) t.depth

let prefixes t =
  let k = List.length t.alphabet in
  let rec go acc d = if d = 0 then acc else go (acc + pow k d) (d - 1) in
  go 0 t.depth
