(** Bridging exploration results into the PR-5 counterexample pipeline.

    A violating decision trace *is* an adversary move sequence over a
    key-described run, so packaging it for the shrinker and the [.repro]
    replay pipeline is pure plumbing: the candidate's key is the
    instance's key at the trace's depth, the moves are the trace, and the
    monitor is the instance's monitor normalized to record mode (the
    convention for artifacts; abort and record catch the identical first
    violation). *)

val record_monitor : Instance.t -> Gcs_check.Monitor.spec
(** The instance's monitor with [mode] normalized to [`Record]. *)

val candidate : Instance.t -> Choice.trace -> Gcs_check.Shrink.candidate
(** The shrinkable candidate a trace denotes (key at the trace's depth,
    the instance's segment length, the trace as moves). *)

val repro :
  Instance.t ->
  trace:Choice.trace ->
  violation:Gcs_check.Monitor.violation ->
  Gcs_check.Repro.t
(** Package a violating trace as a replayable artifact, unshrunk. *)

val repro_of_candidate :
  Instance.t ->
  Gcs_check.Shrink.candidate ->
  violation:Gcs_check.Monitor.violation ->
  Gcs_check.Repro.t
(** Same, from a (typically shrunk) candidate and its violation. *)

val shrink :
  ?max_evaluations:int ->
  Instance.t ->
  trace:Choice.trace ->
  Gcs_check.Shrink.outcome option
(** Run the PR-5 delta-debugging shrinker on a violating trace under the
    instance's (record-mode) monitor. [None] if the trace does not in fact
    violate — cannot happen for traces returned by {!Explorer.explore}. *)

val to_json : Instance.t -> Explorer.outcome -> string
(** Deterministic single-line JSON rendering of an exploration: the
    instance (topology, algorithm, nodes, seed, depth, segment length,
    alphabet, monitor bounds), the exploration parameters, the statistics,
    and the verdict (with trace and violation when violated). Floats are
    rendered with [%.17g]; same outcome, same bytes. *)
