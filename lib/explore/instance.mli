(** A small-scope model-checking instance.

    An instance pins everything about the execution space except the
    decisions themselves: spec, topology, algorithm, seed, the segment
    length one decision governs, the maximum trace depth, the decision
    alphabet, an optional fault plan, and the monitor to check. Hardware
    drift is pinned to the perfect pattern (rate 1) so that the *only*
    drift in the space is what the decisions select — every remaining
    source of nondeterminism is a decision, which is what makes the
    enumeration exhaustive.

    Instances are deliberately tiny (2..6 nodes): the space is
    [|alphabet|^depth] executions and each is re-simulated from time zero,
    so exhaustiveness is only affordable at small scope — the small-scope
    hypothesis is that envelope bugs show up here first. *)

type t = private {
  spec : Gcs_core.Spec.t;
  topology : Gcs_graph.Topology.spec;
  algo : Gcs_core.Algorithm.kind;
  seed : int;
  segment_len : float;  (** real time governed by one decision *)
  depth : int;  (** maximum decisions per execution *)
  alphabet : Choice.t list;  (** deduplicated, order preserved *)
  fault_plan : Gcs_sim.Fault_plan.t option;
  monitor : Gcs_check.Monitor.spec;
}

val make :
  ?spec:Gcs_core.Spec.t ->
  ?topology:Gcs_graph.Topology.spec ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?seed:int ->
  ?segment_len:float ->
  ?depth:int ->
  ?alphabet:Choice.t list ->
  ?fault_plan:Gcs_sim.Fault_plan.t ->
  ?monitor:Gcs_check.Monitor.spec ->
  unit ->
  t
(** Defaults: default spec, [ring:3], [Gradient_sync], seed 1, segment
    length 8, depth 3, the {!Choice.extremes} alphabet, no faults, and the
    algorithm's own envelope monitor ({!Gcs_check.Check_run.default_spec})
    in abort mode so every probe run stops at its first violation. The
    alphabet is deduplicated (order preserved). Raises [Invalid_argument]
    on depth < 1, non-positive segment length, an empty alphabet, or a
    topology outside 2..6 nodes. *)

val nodes : t -> int
(** Node count of the instance's topology (built with the sweep
    convention, like every key-described run). *)

val horizon : t -> depth:int -> float
(** [depth * segment_len] — the horizon of a depth-[depth] prefix. *)

val key : t -> depth:int -> Gcs_store.Key.t
(** The canonical store key of the depth-[depth] prefix run: perfect
    drift, no loss, the instance's fault plan. This key is what violating
    traces are packaged with, so a [.repro] written by the explorer
    replays through the stock pipeline. *)

val executions : t -> int
(** [|alphabet| ^ depth] — complete executions in the space. *)

val prefixes : t -> int
(** [sum over d in 1..depth of |alphabet| ^ d] — prefix simulations a full
    exhaustive enumeration performs (every prefix is itself checked). *)
