module Monitor = Gcs_check.Monitor
module Repro = Gcs_check.Repro
module Shrink = Gcs_check.Shrink
module Topology = Gcs_graph.Topology
module Algorithm = Gcs_core.Algorithm

let record_monitor (inst : Instance.t) =
  { inst.Instance.monitor with Monitor.mode = `Record }

let candidate (inst : Instance.t) trace =
  {
    Shrink.key = Instance.key inst ~depth:(List.length trace);
    segment_len = inst.Instance.segment_len;
    moves = trace;
  }

let repro_of_candidate inst (c : Shrink.candidate) ~violation =
  {
    Repro.monitor = record_monitor inst;
    expected = violation;
    segment_len = c.Shrink.segment_len;
    moves = c.Shrink.moves;
    key = c.Shrink.key;
  }

let repro inst ~trace ~violation =
  repro_of_candidate inst (candidate inst trace) ~violation

let shrink ?max_evaluations inst ~trace =
  Shrink.shrink ?max_evaluations
    ~monitor:(record_monitor inst)
    (candidate inst trace)

(* ---------------------------------------------------------------- *)
(* JSON rendering                                                   *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = Printf.sprintf "\"%s\"" (escape s)
let fl x = Printf.sprintf "%.17g" x
let obj fields =
  "{"
  ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

let violation_json (v : Monitor.violation) =
  obj
    [
      ("time", fl v.Monitor.time);
      ("kind", str (Monitor.kind_name v.Monitor.kind));
      ("node", string_of_int v.Monitor.node);
      ( "peer",
        match v.Monitor.peer with
        | None -> "null"
        | Some p -> string_of_int p );
      ("observed", fl v.Monitor.observed);
      ("bound", fl v.Monitor.bound);
      ("detail", str v.Monitor.detail);
    ]

let to_json (inst : Instance.t) (o : Explorer.outcome) =
  let m = inst.Instance.monitor in
  let instance =
    obj
      [
        ("topology", str (Topology.spec_name inst.Instance.topology));
        ("algo", str (Algorithm.kind_name inst.Instance.algo));
        ("nodes", string_of_int (Instance.nodes inst));
        ("seed", string_of_int inst.Instance.seed);
        ("depth", string_of_int inst.Instance.depth);
        ("segment_len", fl inst.Instance.segment_len);
        ("alphabet", str (Choice.alphabet_to_string inst.Instance.alphabet));
        ("alphabet_size", string_of_int (List.length inst.Instance.alphabet));
        ("horizon", fl (Instance.horizon inst ~depth:inst.Instance.depth));
        ( "monitor",
          obj
            [
              ("rate_lo", fl m.Monitor.rate_lo);
              ("rate_hi", fl m.Monitor.rate_hi);
              ("check_rate", string_of_bool m.Monitor.check_rate);
              ("check_monotonic", string_of_bool m.Monitor.check_monotonic);
              ( "skew_bound",
                match m.Monitor.skew_bound with
                | None -> "null"
                | Some b -> fl b );
              ("after", fl m.Monitor.after);
            ] );
      ]
  in
  let exploration =
    obj
      [
        ("strategy", str (Explorer.strategy_name o.Explorer.strategy));
        ("dedup", string_of_bool o.Explorer.dedup);
        ("quantum", fl o.Explorer.quantum);
        ("max_states", string_of_int o.Explorer.max_states);
      ]
  in
  let s = o.Explorer.stats in
  let stats =
    obj
      [
        ("states_visited", string_of_int s.Explorer.states_visited);
        ("executions", string_of_int s.Explorer.executions);
        ("pruned", string_of_int s.Explorer.pruned);
        ("distinct_states", string_of_int s.Explorer.distinct_states);
        ("max_depth", string_of_int s.Explorer.max_depth);
        ( "frontier_high_water",
          string_of_int s.Explorer.frontier_high_water );
        ("events_checked", string_of_int s.Explorer.events_checked);
      ]
  in
  let verdict =
    match o.Explorer.verdict with
    | Explorer.Proved -> obj [ ("status", str "proved") ]
    | Explorer.Budget_exhausted -> obj [ ("status", str "budget_exhausted") ]
    | Explorer.Violated { trace; violation } ->
        obj
          [
            ("status", str "violated");
            ("trace", str (Choice.trace_to_string trace));
            ("violation", violation_json violation);
          ]
  in
  obj
    [
      ("instance", instance);
      ("exploration", exploration);
      ("stats", stats);
      ("verdict", verdict);
    ]
