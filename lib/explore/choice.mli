(** The explorer's decision alphabet.

    One decision covers one segment of real time and fixes every source of
    nondeterminism inside it: which half of the node line runs at the
    maximum hardware rate (drift selection from the two-point lattice
    [{1, vartheta}]) and how every message delay in the segment is biased
    (the three-point discretization [{d_min, midpoint, d_max}] per edge
    direction). A decision is exactly an adversary move
    ({!Gcs_adversary.Search.move}), so a decision {!trace} is directly a
    move sequence — which is what makes every violating execution the
    explorer finds immediately expressible as a PR-5 [.repro] artifact
    (key + moves + segment length) with the shrinker and replay pipeline
    applying unchanged. *)

type t = Gcs_adversary.Search.move
(** One decision: drift split ([fast_side]) x delay bias ([bias]). *)

type trace = t list
(** A decision trace, first segment first. A trace of length [d] pins a
    complete execution of horizon [d * segment_len]. *)

val all : t list
(** The full nine-move alphabet (3 drift splits x 3 delay biases). *)

val drift_only : t list
(** Drift splits only, delays pinned to the midpoint (3 moves). *)

val delay_only : t list
(** Delay biases only, all clocks at rate 1 (3 moves). *)

val extremes : t list
(** Boundary moves only: both drift splits crossed with both non-neutral
    delay biases (4 moves) — the classical worst-case corners. *)

val alphabet_of_string : string -> (t list, string) result
(** Parse an alphabet name ([all], [drift], [delay], [extreme]) or an
    explicit move list in the [.repro] move codec (e.g. ["LF;RB"]).
    Duplicates are preserved here; {!Instance.make} deduplicates. *)

val alphabet_to_string : t list -> string
(** Canonical rendering: the named alphabets render as their names, any
    other list in the move codec. *)

val to_string : t -> string
(** Two-character move code (see {!Gcs_check.Repro.moves_to_string}). *)

val trace_to_string : trace -> string
val trace_of_string : string -> (trace, string) result
(** The [.repro] move codec, verbatim. *)

val delay_points : Gcs_core.Spec.t -> float list
(** The delay discretization a decision selects from:
    [[d_min; midpoint; d_max]]. *)

val rate_lattice : Gcs_core.Spec.t -> float list
(** The drift-rate lattice a decision selects from: [[1; vartheta]]. *)
