module Engine = Gcs_sim.Engine
module Runner = Gcs_core.Runner
module Message = Gcs_core.Message
module Logical_clock = Gcs_clock.Logical_clock
module Hardware_clock = Gcs_clock.Hardware_clock
module Graph = Gcs_graph.Graph

let state ?(quantum = 1e-9) (live : Runner.live) =
  if quantum <= 0. then invalid_arg "Canon.state: quantum must be > 0";
  (* %.0f keeps full integer precision beyond the int63 range, so a tiny
     quantum cannot silently wrap the quantized values. *)
  let q x = Printf.sprintf "%.0f" (Float.round (x /. quantum)) in
  let engine = live.Runner.engine in
  let now = Engine.now engine in
  let g = Engine.graph engine in
  let buf = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  for v = 0 to Graph.n g - 1 do
    let lc = live.Runner.logical.(v) in
    let hc = Engine.hardware_clock engine v in
    add "n%d:%s:%s:%s:%s:%b;" v
      (q (Logical_clock.value lc ~now))
      (q (Logical_clock.mult lc))
      (q (Hardware_clock.value hc ~now))
      (q (Hardware_clock.rate_at hc ~now))
      (Engine.node_is_up engine v)
  done;
  for e = 0 to Graph.m g - 1 do
    add "e%d:%b;" e (Engine.edge_is_up engine e)
  done;
  (* Pending events in exact pop order; times relative to [now] so states
     reached at different absolute times still compare equal. Control
     closures are opaque — only their timing distinguishes them. *)
  List.iter
    (fun p ->
      match p with
      | Engine.Pending_deliver { at; dst; port; edge; msg } ->
          add "D:%s:%d:%d:%d:%s;" (q (at -. now)) dst port edge
            (Message.to_string msg)
      | Engine.Pending_timer { at; node; h_target; tag } ->
          add "T:%s:%d:%s:%d;" (q (at -. now)) node (q h_target) tag
      | Engine.Pending_control { at } -> add "C:%s;" (q (at -. now)))
    (Engine.pending_snapshot engine);
  Buffer.contents buf
