module Runner = Gcs_core.Runner
module Monitor = Gcs_check.Monitor
module Search = Gcs_adversary.Search

type strategy = Bfs | Dfs

let strategy_name = function Bfs -> "bfs" | Dfs -> "dfs"

let strategy_of_string = function
  | "bfs" -> Ok Bfs
  | "dfs" -> Ok Dfs
  | s -> Error (Printf.sprintf "unknown strategy %S (expected bfs or dfs)" s)

type stats = {
  states_visited : int;
  executions : int;
  pruned : int;
  distinct_states : int;
  max_depth : int;
  frontier_high_water : int;
  events_checked : int;
}

type verdict =
  | Proved
  | Violated of { trace : Choice.trace; violation : Monitor.violation }
  | Budget_exhausted

type outcome = {
  verdict : verdict;
  stats : stats;
  dedup : bool;
  strategy : strategy;
  quantum : float;
  max_states : int;
}

type simulated = {
  live : Runner.live;
  result : Runner.result;
  violation : Monitor.violation option;
  events_checked : int;
}

let simulate (inst : Instance.t) trace =
  let depth = List.length trace in
  if depth = 0 then Error "Explorer.simulate: empty trace (zero horizon)"
  else
    match Runner.config_of_key (Instance.key inst ~depth) with
    | Error _ as e -> e
    | Ok cfg ->
        (* The same pipeline as [Check_run.run] with a non-empty move list:
           controlled delays, install the moves, monitor, run, flush. Kept
           in step by the sampler-vs-enumerator cross-validation test. *)
        let cfg = { cfg with Runner.delay_kind = Runner.Controlled_delays } in
        let live = Runner.prepare cfg in
        Search.install live ~segment_len:inst.Instance.segment_len trace;
        let m = Monitor.attach inst.Instance.monitor live in
        let result = Runner.complete live in
        let violation = Monitor.finalize m in
        Ok { live; result; violation;
             events_checked = Monitor.events_checked m }

(* A frontier that is a FIFO under Bfs and a LIFO under Dfs, with O(1)
   size tracking for the high-water statistic. *)
module Frontier = struct
  type 'a t = {
    strategy : strategy;
    queue : 'a Queue.t;
    mutable stack : 'a list;
    mutable size : int;
  }

  let create strategy =
    { strategy; queue = Queue.create (); stack = []; size = 0 }

  let push t x =
    t.size <- t.size + 1;
    match t.strategy with
    | Bfs -> Queue.add x t.queue
    | Dfs -> t.stack <- x :: t.stack

  let pop t =
    match t.strategy with
    | Bfs -> (
        match Queue.take_opt t.queue with
        | None -> None
        | Some x ->
            t.size <- t.size - 1;
            Some x)
    | Dfs -> (
        match t.stack with
        | [] -> None
        | x :: rest ->
            t.stack <- rest;
            t.size <- t.size - 1;
            Some x)

  let size t = t.size
end

let explore ?(dedup = false) ?(quantum = 1e-9) ?(max_states = 100_000)
    ?(strategy = Bfs) (inst : Instance.t) =
  let frontier = Frontier.create strategy in
  let memo : (int * string, unit) Hashtbl.t = Hashtbl.create 256 in
  let states_visited = ref 0 in
  let executions = ref 0 in
  let pruned = ref 0 in
  let max_depth = ref 0 in
  let high_water = ref 0 in
  let events_checked = ref 0 in
  let note_frontier () =
    if Frontier.size frontier > !high_water then
      high_water := Frontier.size frontier
  in
  let push_children trace =
    (* Children in alphabet order either way: a stack pops in reverse push
       order, so Dfs pushes them reversed. *)
    let children = List.map (fun m -> trace @ [ m ]) inst.Instance.alphabet in
    let children =
      match strategy with Bfs -> children | Dfs -> List.rev children
    in
    List.iter (Frontier.push frontier) children;
    note_frontier ()
  in
  push_children [];
  let rec loop () =
    match Frontier.pop frontier with
    | None -> Proved
    | Some trace ->
        if !states_visited >= max_states then Budget_exhausted
        else begin
          match simulate inst trace with
          | Error msg -> invalid_arg ("Explorer.explore: " ^ msg)
          | Ok sim -> (
              incr states_visited;
              events_checked := !events_checked + sim.events_checked;
              let len = List.length trace in
              if len > !max_depth then max_depth := len;
              match sim.violation with
              | Some violation -> Violated { trace; violation }
              | None ->
                  if len = inst.Instance.depth then begin
                    incr executions;
                    loop ()
                  end
                  else begin
                    let expand =
                      if not dedup then true
                      else begin
                        (* Keyed on remaining depth as well as state: equal
                           configurations with different exploration left
                           are not interchangeable. *)
                        let k =
                          ( inst.Instance.depth - len,
                            Canon.state ~quantum sim.live )
                        in
                        if Hashtbl.mem memo k then begin
                          incr pruned;
                          false
                        end
                        else begin
                          Hashtbl.add memo k ();
                          true
                        end
                      end
                    in
                    if expand then push_children trace;
                    loop ()
                  end)
        end
  in
  let verdict = loop () in
  {
    verdict;
    stats =
      {
        states_visited = !states_visited;
        executions = !executions;
        pruned = !pruned;
        distinct_states = Hashtbl.length memo;
        max_depth = !max_depth;
        frontier_high_water = !high_water;
        events_checked = !events_checked;
      };
    dedup;
    strategy;
    quantum;
    max_states;
  }
