(** Exhaustive enumeration of an instance's execution space.

    The explorer walks the decision tree of an {!Instance.t}: every node
    of the tree is a decision trace (a prefix), every leaf at the
    instance's depth is a complete execution. The engine cannot snapshot
    mid-run, so each prefix is re-simulated deterministically from time
    zero — the same inherently iterative-deepening shape as the adversary
    beam search, but exhaustive. Every prefix (not just leaves) runs under
    the instance's monitor, so a violation is reported at the shallowest
    depth that exhibits it, in deterministic exploration order.

    Memoization ([dedup]) prunes subtrees whose canonicalized engine state
    ({!Canon.state}) at the same remaining depth was already expanded. It
    is off by default and [--prove] leaves it off: canonical equality
    cannot see algorithm-handler internals or monitor history, so pruning
    trades completeness of the *proof* for speed of the *search* (a
    violation found with dedup on is still a real violation; a clean
    exhaustion with dedup on is weaker than one without). *)

type strategy = Bfs | Dfs

val strategy_name : strategy -> string
val strategy_of_string : string -> (strategy, string) result

type stats = {
  states_visited : int;  (** prefixes simulated *)
  executions : int;  (** complete (depth-d) executions simulated *)
  pruned : int;  (** prefixes not expanded because of a memo hit *)
  distinct_states : int;  (** memo table size (0 with [dedup] off) *)
  max_depth : int;  (** deepest prefix simulated *)
  frontier_high_water : int;  (** widest the frontier has been *)
  events_checked : int;  (** monitor-checked events, summed over runs *)
}

type verdict =
  | Proved  (** the full space was exhausted, no violation *)
  | Violated of { trace : Choice.trace; violation : Gcs_check.Monitor.violation }
      (** first violating prefix in exploration order *)
  | Budget_exhausted  (** state budget hit with frontier remaining *)

type outcome = {
  verdict : verdict;
  stats : stats;
  dedup : bool;
  strategy : strategy;
  quantum : float;
  max_states : int;
}

type simulated = {
  live : Gcs_core.Runner.live;  (** retained for canonicalization *)
  result : Gcs_core.Runner.result;
  violation : Gcs_check.Monitor.violation option;
  events_checked : int;
}

val simulate : Instance.t -> Choice.trace -> (simulated, string) result
(** Deterministically re-simulate one prefix from time zero: rebuild the
    config from {!Instance.key} at the trace's depth, force controlled
    delays, install the trace as an adversary move sequence, attach the
    instance's monitor, run, flush. This is exactly the
    [Gcs_check.Check_run.run] pipeline for a non-empty move list (the
    cross-validation property in the test suite holds the two equal), with
    the live run returned for {!Canon.state}. [Error] on the empty trace
    (a zero-horizon run) or a key that no longer describes a config. *)

val explore :
  ?dedup:bool ->
  ?quantum:float ->
  ?max_states:int ->
  ?strategy:strategy ->
  Instance.t ->
  outcome
(** Enumerate. Defaults: [dedup] off, [quantum] [1e-9], [max_states]
    100_000, [Bfs]. Children are generated in alphabet order; [Bfs]
    explores shallow prefixes first (the verdict's trace is
    depth-minimal), [Dfs] dives (smaller frontier high-water). The verdict
    is [Proved] only if every prefix of the space was simulated without a
    violation and without hitting the budget. Raises [Invalid_argument] if
    the instance's key stops being runnable (cannot happen for instances
    built by {!Instance.make}). *)
