module Key = Gcs_store.Key
module Topology = Gcs_graph.Topology
module Fault_plan = Gcs_sim.Fault_plan
module Runner = Gcs_core.Runner
module Search = Gcs_adversary.Search

type candidate = {
  key : Key.t;
  segment_len : float;
  moves : Search.move list;
}

(* ---------------------------------------------------------------- *)
(* Size measure: nodes + fault episodes + adversary moves + horizon
   units. Every accepted reduction strictly decreases it, which is the
   shrink loop's termination argument. *)

let topo_nodes = function
  | Topology.Line n | Topology.Ring n | Topology.Complete n | Topology.Star n
    ->
      n
  | Topology.Grid (r, c) | Topology.Torus (r, c) -> r * c
  | Topology.Binary_tree d -> (1 lsl (d + 1)) - 1
  | Topology.Hypercube d -> 1 lsl d
  | Topology.Random_gnp (n, _) | Topology.Random_geometric (n, _) -> n

let horizon_units h = int_of_float (Float.ceil (h /. 50.))

let plan_events k =
  match k.Key.fault_plan with
  | None -> 0
  | Some p -> List.length (Fault_plan.events p)

let size c =
  topo_nodes c.key.Key.topology
  + plan_events c.key
  + List.length c.moves
  + horizon_units c.key.Key.horizon

(* ---------------------------------------------------------------- *)
(* Reduction generators. Every candidate re-derives its canonical key via
   [Key.make], so a shrunk config is exactly as replayable/storable as the
   original. Structural validity against the smaller topology is NOT
   checked here: the oracle rejects configs whose fault plan or moves no
   longer make sense (plan validation raises inside [Runner.prepare]). *)

let rekey (k : Key.t) ?topology ?horizon ~fault_plan () =
  let topology = Option.value topology ~default:k.Key.topology in
  let horizon = Option.value horizon ~default:k.Key.horizon in
  (* Keep the warm-up at the same fraction of the run when the horizon
     shrinks (the sweep convention is warmup = horizon / 4). *)
  let warmup =
    if horizon = k.Key.horizon then k.Key.warmup
    else k.Key.warmup *. (horizon /. k.Key.horizon)
  in
  Key.make ~schema_version:k.Key.schema_version ~drift:k.Key.drift
    ~loss:k.Key.loss ?fault_plan ~rho:k.Key.rho ~mu:k.Key.mu
    ~d_min:k.Key.d_min ~d_max:k.Key.d_max ~beacon_period:k.Key.beacon_period
    ~kappa:k.Key.kappa ~staleness_limit:k.Key.staleness_limit ~topology
    ~algo:k.Key.algo ~horizon ~sample_period:k.Key.sample_period ~warmup
    ~seed:k.Key.seed ()

(* Halve and decrement each size-carrying parameter, respecting family
   minima (line/star/complete/gnp/geometric need 2 nodes, rings and torus
   dimensions 3, trees and hypercubes a positive depth/dimension). *)
let topo_candidates t =
  let sizes ~min_ n = List.filter (fun x -> x >= min_ && x < n) [ n / 2; n - 1 ] in
  let specs =
    match t with
    | Topology.Line n -> List.map (fun n -> Topology.Line n) (sizes ~min_:2 n)
    | Topology.Ring n -> List.map (fun n -> Topology.Ring n) (sizes ~min_:3 n)
    | Topology.Complete n ->
        List.map (fun n -> Topology.Complete n) (sizes ~min_:2 n)
    | Topology.Star n -> List.map (fun n -> Topology.Star n) (sizes ~min_:2 n)
    | Topology.Grid (r, c) ->
        List.map (fun r -> Topology.Grid (r, c)) (sizes ~min_:1 r)
        @ List.map (fun c -> Topology.Grid (r, c)) (sizes ~min_:1 c)
        |> List.filter (fun s -> topo_nodes s >= 2)
    | Topology.Torus (r, c) ->
        List.map (fun r -> Topology.Torus (r, c)) (sizes ~min_:3 r)
        @ List.map (fun c -> Topology.Torus (r, c)) (sizes ~min_:3 c)
    | Topology.Binary_tree d ->
        List.map (fun d -> Topology.Binary_tree d) (sizes ~min_:1 d)
    | Topology.Hypercube d ->
        List.map (fun d -> Topology.Hypercube d) (sizes ~min_:1 d)
    | Topology.Random_gnp (n, p) ->
        List.map (fun n -> Topology.Random_gnp (n, p)) (sizes ~min_:2 n)
    | Topology.Random_geometric (n, r) ->
        List.map (fun n -> Topology.Random_geometric (n, r)) (sizes ~min_:2 n)
  in
  List.sort_uniq compare specs

let candidates c =
  let k = c.key in
  let topo =
    List.map
      (fun t ->
        { c with key = rekey k ~topology:t ~fault_plan:k.Key.fault_plan () })
      (topo_candidates k.Key.topology)
  in
  let plans =
    match k.Key.fault_plan with
    | None -> []
    | Some p ->
        let evs = Fault_plan.events p in
        List.mapi
          (fun i _ ->
            let evs' = List.filteri (fun j _ -> j <> i) evs in
            let fault_plan =
              if evs' = [] then None else Some (Fault_plan.of_events evs')
            in
            { c with key = rekey k ~fault_plan () })
          evs
  in
  let moves =
    match c.moves with
    | [] -> []
    | ms ->
        let n = List.length ms in
        let half = List.filteri (fun i _ -> i < n / 2) ms in
        let drops =
          List.mapi (fun i _ -> List.filteri (fun j _ -> j <> i) ms) ms
        in
        List.map (fun moves -> { c with moves }) (half :: drops)
  in
  let horizons =
    List.filter_map
      (fun h ->
        if h >= 1. && horizon_units h < horizon_units k.Key.horizon then
          Some { c with key = rekey k ~horizon:h ~fault_plan:k.Key.fault_plan () }
        else None)
      [ k.Key.horizon /. 2.; k.Key.horizon *. 0.75 ]
  in
  topo @ plans @ moves @ horizons

(* ---------------------------------------------------------------- *)

type outcome = {
  minimized : candidate;
  violation : Monitor.violation;
  evaluations : int;
  initial_size : int;
  final_size : int;
}

(* The oracle: does this candidate still produce a matching violation?
   Structurally invalid reductions (a fault plan or adversary midpoint
   referring to nodes the smaller topology no longer has) surface as
   [Invalid_argument] from config validation or [Error] from key
   reconstruction — both count as "violation not preserved". *)
let violates ~monitor ~matches c =
  match Runner.config_of_key c.key with
  | Error _ -> None
  | Ok cfg -> (
      try
        let checked =
          Check_run.run ~monitor ~moves:c.moves ~segment_len:c.segment_len cfg
        in
        match checked.Check_run.violation with
        | Some v when matches v -> Some v
        | Some _ | None -> None
      with Invalid_argument _ -> None)

let shrink ?(max_evaluations = 400) ~monitor c0 =
  (* Abort mode: the oracle only needs the first violation, so stop each
     probe run as soon as it is found. The recorded violation is identical
     to record mode's (same deterministic run, same first event). *)
  let monitor = { monitor with Monitor.mode = `Abort } in
  let evals = ref 0 in
  let probe matches c =
    if !evals >= max_evaluations then None
    else begin
      incr evals;
      violates ~monitor ~matches c
    end
  in
  match probe (fun _ -> true) c0 with
  | None -> None
  | Some v0 ->
      (* A reduction must preserve the violation *kind*; time, node, and
         magnitude are free to move as the config shrinks. *)
      let matches v = v.Monitor.kind = v0.Monitor.kind in
      let best = ref c0 and best_v = ref v0 in
      let improved = ref true in
      while !improved && !evals < max_evaluations do
        improved := false;
        (* First-accept greedy pass: take the first strictly smaller
           still-violating reduction, then rescan from the new best. *)
        try
          List.iter
            (fun c ->
              if size c < size !best then
                match probe matches c with
                | Some v ->
                    best := c;
                    best_v := v;
                    improved := true;
                    raise Exit
                | None -> ())
            (candidates !best)
        with Exit -> ()
      done;
      Some
        {
          minimized = !best;
          violation = !best_v;
          evaluations = !evals;
          initial_size = size c0;
          final_size = size !best;
        }
