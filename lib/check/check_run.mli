(** Monitored runs and the conformance battery.

    [run] is the harness's one-call entry point: prepare a run, attach an
    online {!Monitor}, optionally wire in an adversary move sequence
    ({!Gcs_adversary.Search.install}), execute, and flush. [battery]
    sweeps every registered algorithm over a grid of topologies, seeds,
    and benign fault plans with monitors attached — the "correctness
    oracle" mode used by the tier-1 conformance test and [gcs-cli check
    battery]. *)

type checked = {
  result : Gcs_core.Runner.result;
  violation : Monitor.violation option;  (** first violation, if any *)
  events_checked : int;
}

val default_spec :
  ?mode:[ `Record | `Abort ] ->
  ?skew_bound:float ->
  ?after:float ->
  Gcs_core.Spec.t ->
  Gcs_core.Algorithm.kind ->
  Monitor.spec
(** The monitor an algorithm's own {!Gcs_core.Invariant.expected_envelope}
    implies: its rate envelope (disabled when the envelope allows jumps),
    monotonicity always, and an optional adjacent-pair skew bound checked
    from [after] on. Default mode [`Record]. *)

val run :
  ?monitor:Monitor.spec ->
  ?moves:Gcs_adversary.Search.move list ->
  ?segment_len:float ->
  Gcs_core.Runner.config ->
  checked
(** Run the config under a monitor ([default_spec] of the config's own
    spec and algorithm when not given). Non-empty [moves] switch the
    config to [Controlled_delays] and install the adversary schedule with
    the given [segment_len] before running. *)

type cell = {
  key : Gcs_store.Key.t;  (** canonical config — replayable on its own *)
  algo : Gcs_core.Algorithm.kind;
  monitor : Monitor.spec;
  violation : Monitor.violation option;
  events_checked : int;
}

val benign_plan :
  seed:int -> horizon:float -> nodes:int -> Gcs_sim.Fault_plan.t
(** A fault plan drawn deterministically from the seed, from the benign
    family (partition+heal, crash+recover, duplicate/reorder/corrupt
    windows) under which the rate and monotonicity envelopes must still
    hold. Clock jump/rate faults are excluded by construction — those are
    the violations the shrinker fixtures seed deliberately. *)

val battery :
  ?jobs:int ->
  ?spec:Gcs_core.Spec.t ->
  ?algos:Gcs_core.Algorithm.kind list ->
  ?faults:bool ->
  ?base_seed:int ->
  topologies:Gcs_graph.Topology.spec list ->
  seeds:int ->
  horizon:float ->
  unit ->
  cell list
(** One monitored run per topology x algorithm x seed, in deterministic
    grid order regardless of [jobs] (default: all registered algorithms,
    [faults] on — every odd seed index gets a {!benign_plan}). Cells are
    built through [Runner.store_key] / [Runner.config_of_key], so any
    failing cell's key can be written straight into a [.repro]. *)

val violations : cell list -> cell list
(** The cells whose monitor recorded a violation. *)
