(** Monitored runs and the conformance battery.

    [run] is the harness's one-call entry point: prepare a run, attach an
    online {!Monitor}, optionally wire in an adversary move sequence
    ({!Gcs_adversary.Search.install}), execute, and flush. [battery]
    sweeps every registered algorithm over a grid of topologies, seeds,
    and benign fault plans with monitors attached — the "correctness
    oracle" mode used by the tier-1 conformance test and [gcs-cli check
    battery]. *)

type checked = {
  result : Gcs_core.Runner.result;
  violation : Monitor.violation option;  (** first violation, if any *)
  events_checked : int;
}

val default_spec :
  ?mode:[ `Record | `Abort ] ->
  ?skew_bound:float ->
  ?after:float ->
  ?byzantine:int list ->
  ?containment_bound:float ->
  ?edge_age:Monitor.edge_age ->
  Gcs_core.Spec.t ->
  Gcs_core.Algorithm.kind ->
  Monitor.spec
(** The monitor an algorithm's own {!Gcs_core.Invariant.expected_envelope}
    implies: its rate envelope (disabled when the envelope allows jumps),
    monotonicity always, and an optional adjacent-pair skew bound checked
    from [after] on. [byzantine] and [containment_bound] (defaults: none)
    arm the correct-correct containment check; [edge_age] (default: none)
    arms the dynamic-network age-parameterized check. Default mode
    [`Record]. *)

val edge_age_bounds : Gcs_core.Spec.t -> diameter:int -> Monitor.edge_age
(** The edge-age bounds implied by the spec, derived from the same helpers
    {!Gcs_core.Dynamic_gradient} plans with: settled floor
    {!Gcs_core.Bounds.gradient_local_upper}, fresh bound = settled +
    {!Gcs_core.Dynamic_gradient.fresh_allowance}, decaying at
    {!Gcs_core.Dynamic_gradient.tighten_rate}. [windows] comes back empty
    — fill it from the run's compiled churn plan
    ({!Gcs_sim.Churn_plan.up_windows}). *)

val run :
  ?monitor:Monitor.spec ->
  ?moves:Gcs_adversary.Search.move list ->
  ?segment_len:float ->
  Gcs_core.Runner.config ->
  checked
(** Run the config under a monitor ([default_spec] of the config's own
    spec and algorithm when not given). Non-empty [moves] switch the
    config to [Controlled_delays] and install the adversary schedule with
    the given [segment_len] before running. *)

type cell = {
  key : Gcs_store.Key.t;  (** canonical config — replayable on its own *)
  algo : Gcs_core.Algorithm.kind;
  monitor : Monitor.spec;
  violation : Monitor.violation option;
  events_checked : int;
}

val benign_plan :
  seed:int -> horizon:float -> nodes:int -> Gcs_sim.Fault_plan.t
(** A fault plan drawn deterministically from the seed, from the benign
    family (partition+heal, crash+recover, duplicate/reorder/corrupt
    windows) under which the rate and monotonicity envelopes must still
    hold. Clock jump/rate faults are excluded by construction — those are
    the violations the shrinker fixtures seed deliberately. *)

val battery :
  ?jobs:int ->
  ?spec:Gcs_core.Spec.t ->
  ?algos:Gcs_core.Algorithm.kind list ->
  ?faults:bool ->
  ?base_seed:int ->
  ?churn:Gcs_sim.Churn_plan.t ->
  topologies:Gcs_graph.Topology.spec list ->
  seeds:int ->
  horizon:float ->
  unit ->
  cell list
(** One monitored run per topology x algorithm x seed, in deterministic
    grid order regardless of [jobs] (default: all registered algorithms,
    [faults] on — every odd seed index gets a {!benign_plan}). Cells are
    built through [Runner.store_key] / [Runner.config_of_key], so any
    failing cell's key can be written straight into a [.repro]. With
    [churn], each cell's plan is compiled against that cell's graph and
    seed, composed into its fault plan, and the monitor is additionally
    armed with {!edge_age_bounds} over the compiled plan's up-windows —
    so churned cells are held to the dynamic-network conformance claim
    (and a static algorithm that mishandles fresh edges fails here). *)

val violations : cell list -> cell list
(** The cells whose monitor recorded a violation. *)

val byz_plan :
  seed:int ->
  horizon:float ->
  nodes:int ->
  f:int ->
  kappa:float ->
  Gcs_sim.Fault_plan.t
(** A Byzantine fault plan drawn deterministically from the seed: [f]
    liars spread around the node space, each active over the middle half
    of the run with a strategy (equivocation, constant/drifting lag,
    random) from its own derived stream and lie magnitudes of [20 *
    kappa] — far outside every containment bound, so surviving the
    battery means the lies were filtered, not mild. Raises if [f < 1] or
    [f >= nodes]. *)

val containment_bound : Gcs_core.Spec.t -> f:int -> float
(** The weakened correct-correct skew bound checked under [f] liars per
    neighborhood: the ft filter's clamp window [(2f+1) * kappa] plus
    slack for estimation error and reaction lag. *)

val attack_spec : unit -> Gcs_core.Spec.t
(** The spec the containment battery runs under by default: small kappa
    and a hot drift band ([rho = 0.05], [mu = 0.15]) so an un-contained
    run visibly diverges within a few hundred time units. *)

val containment_battery :
  ?jobs:int ->
  ?spec:Gcs_core.Spec.t ->
  ?algos:Gcs_core.Algorithm.kind list ->
  ?f:int ->
  ?base_seed:int ->
  topologies:Gcs_graph.Topology.spec list ->
  seeds:int ->
  horizon:float ->
  unit ->
  cell list
(** One monitored run per topology x algorithm x seed (default algorithms:
    just [Ft_gradient_sync 1]), each under a {!byz_plan} with [f] liars
    (default 1) and a monitor armed with {!containment_bound}. The ft
    gradient must come back clean; plain [Gradient_sync] cells are the
    deliberate-failure demonstration — their violations shrink and replay
    through the ordinary [.repro] pipeline. Defaults to {!attack_spec}. *)
