module Engine = Gcs_sim.Engine
module Trace = Gcs_sim.Trace
module Graph = Gcs_graph.Graph
module Logical_clock = Gcs_clock.Logical_clock
module Runner = Gcs_core.Runner

let eps = 1e-6

(* Discrete rates over windows shorter than this are dominated by float
   rounding of the clock values (a few ulp of a value ~1e3 divided by the
   window), so the rate anchor only advances once the window is wide
   enough to make the estimate trustworthy to well under [eps]. *)
let rate_dt_min = 1e-3

type kind = Rate | Monotonic | Skew | Containment

let kind_name = function
  | Rate -> "rate"
  | Monotonic -> "monotonic"
  | Skew -> "skew"
  | Containment -> "containment"

let kind_of_string = function
  | "rate" -> Ok Rate
  | "monotonic" -> Ok Monotonic
  | "skew" -> Ok Skew
  | "containment" -> Ok Containment
  | s -> Error (Printf.sprintf "unknown violation kind %S" s)

type spec = {
  rate_lo : float;
  rate_hi : float;
  check_rate : bool;
  check_monotonic : bool;
  skew_bound : float option;
  after : float;
  mode : [ `Record | `Abort ];
  byzantine : int list;
  containment_bound : float option;
}

type violation = {
  time : float;
  kind : kind;
  node : int;
  peer : int option;
  observed : float;
  bound : float;
  detail : string;
  context : string;
}

let violation_to_string v =
  let where =
    match v.peer with
    | Some p -> Printf.sprintf "nodes %d~%d" v.node p
    | None -> Printf.sprintf "node %d" v.node
  in
  let ctx = if v.context = "" then "" else " | " ^ v.context in
  Printf.sprintf "%s violation [t=%.6f, %s] %s%s" (kind_name v.kind) v.time
    where v.detail ctx

type t = {
  spec : spec;
  engine : Gcs_core.Message.t Engine.t;
  logical : Logical_clock.t array;
  adj : int array array;  (** neighbor node ids, own copy (hot path) *)
  byz : bool array;  (** nodes excluded from containment pairs *)
  mono_v : float array;  (** last seen value per node (every event) *)
  rate_t : float array;  (** rate-anchor time per node *)
  rate_v : float array;  (** rate-anchor value per node *)
  mutable events_checked : int;
  mutable violation : violation option;
  mutable finalized : bool;
}

let events_checked t = t.events_checked
let first_violation t = t.violation

let record t v =
  if t.violation = None then begin
    t.violation <- Some v;
    match t.spec.mode with
    | `Abort -> Engine.request_stop t.engine
    | `Record -> ()
  end

(* Run every enabled check for [node] at time [now]. [context] renders the
   observation that triggered the check as a single line (empty for the
   final flush); it is a thunk so the render — by far the most expensive
   step — is only paid on the rare event that actually violates.
   Observations are emitted *before* the handler runs, so the value read
   here reflects the node's state as of its previous event — a
   discontinuity introduced by event k is therefore detected at the
   node's next event, or by [finalize]. *)
let check_node t ~now ~context node =
  let cur = Logical_clock.value t.logical.(node) ~now in
  (if t.spec.check_monotonic && cur < t.mono_v.(node) -. eps then
     record t
       {
         time = now;
         kind = Monotonic;
         node;
         peer = None;
         observed = cur;
         bound = t.mono_v.(node);
         detail =
           Printf.sprintf "clock went backwards: %.17g -> %.17g"
             t.mono_v.(node) cur;
         context = context ();
       });
  t.mono_v.(node) <- cur;
  let dt = now -. t.rate_t.(node) in
  if dt >= rate_dt_min then begin
    (if t.spec.check_rate then begin
       let rate = (cur -. t.rate_v.(node)) /. dt in
       if rate < t.spec.rate_lo -. eps || rate > t.spec.rate_hi +. eps then
         record t
           {
             time = now;
             kind = Rate;
             node;
             peer = None;
             observed = rate;
             bound =
               (if rate < t.spec.rate_lo then t.spec.rate_lo
                else t.spec.rate_hi);
             detail =
               Printf.sprintf "rate %.17g outside [%.17g, %.17g]" rate
                 t.spec.rate_lo t.spec.rate_hi;
             context = context ();
           }
     end);
    t.rate_t.(node) <- now;
    t.rate_v.(node) <- cur
  end;
  (match t.spec.skew_bound with
  | Some bound when now >= t.spec.after ->
      let nbrs = t.adj.(node) in
      for i = 0 to Array.length nbrs - 1 do
        let u = nbrs.(i) in
        let d = Float.abs (cur -. Logical_clock.value t.logical.(u) ~now) in
        if d > bound +. eps then
          record t
            {
              time = now;
              kind = Skew;
              node = min node u;
              peer = Some (max node u);
              observed = d;
              bound;
              detail =
                Printf.sprintf "local skew %.17g exceeds bound %.17g" d bound;
              context = context ();
            }
      done
  | Some _ | None -> ());
  match t.spec.containment_bound with
  | Some bound when now >= t.spec.after && not t.byz.(node) ->
      (* The fault-containment claim: Byzantine senders may wreck their own
         incident edges, but skew between *correct* adjacent nodes stays
         within the weakened bound. Liar-incident pairs are exempt. *)
      let nbrs = t.adj.(node) in
      for i = 0 to Array.length nbrs - 1 do
        let u = nbrs.(i) in
        if not t.byz.(u) then begin
          let d = Float.abs (cur -. Logical_clock.value t.logical.(u) ~now) in
          if d > bound +. eps then
            record t
              {
                time = now;
                kind = Containment;
                node = min node u;
                peer = Some (max node u);
                observed = d;
                bound;
                detail =
                  Printf.sprintf
                    "correct-correct skew %.17g exceeds containment bound \
                     %.17g" d bound;
                context = context ();
              }
        end
      done
  | Some _ | None -> ()

let on_observation t time obs =
  if t.violation = None then
    match obs with
    | Engine.Obs_deliver { dst; _ } ->
        t.events_checked <- t.events_checked + 1;
        check_node t ~now:time
          ~context:(fun () -> Trace.entry_to_string { Trace.time; obs })
          dst
    | Engine.Obs_timer { node; _ } ->
        t.events_checked <- t.events_checked + 1;
        check_node t ~now:time
          ~context:(fun () -> Trace.entry_to_string { Trace.time; obs })
          node
    | _ -> ()

let attach spec (live : Runner.live) =
  let engine = live.Runner.engine in
  let g = live.Runner.cfg.Runner.graph in
  let n = Graph.n g in
  let now = Engine.now engine in
  let values =
    Array.init n (fun v -> Logical_clock.value live.Runner.logical.(v) ~now)
  in
  let t =
    {
      spec;
      engine;
      logical = live.Runner.logical;
      adj = Array.init n (fun v -> Array.map fst (Graph.neighbors g v));
      byz =
        (let b = Array.make n false in
         List.iter (fun v -> if v >= 0 && v < n then b.(v) <- true)
           spec.byzantine;
         b);
      mono_v = Array.copy values;
      rate_t = Array.make n now;
      rate_v = values;
      events_checked = 0;
      violation = None;
      finalized = false;
    }
  in
  Engine.add_observer engine (fun time obs -> on_observation t time obs);
  t

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    (* Flush: events only let us see a node's state as of its previous
       event, so a violation introduced by a node's very last event (or by
       a control-scheduled fault after it) is caught here, at the final
       clock reading. *)
    if t.violation = None then begin
      let now = Engine.now t.engine in
      let n = Array.length t.mono_v in
      let v = ref 0 in
      while t.violation = None && !v < n do
        check_node t ~now ~context:(fun () -> "") !v;
        incr v
      done
    end
  end;
  t.violation
