module Engine = Gcs_sim.Engine
module Trace = Gcs_sim.Trace
module Graph = Gcs_graph.Graph
module Logical_clock = Gcs_clock.Logical_clock
module Runner = Gcs_core.Runner

let eps = 1e-6

(* Discrete rates over windows shorter than this are dominated by float
   rounding of the clock values (a few ulp of a value ~1e3 divided by the
   window), so the rate anchor only advances once the window is wide
   enough to make the estimate trustworthy to well under [eps]. *)
let rate_dt_min = 1e-3

type kind = Rate | Monotonic | Skew | Containment | Edge_age

let kind_name = function
  | Rate -> "rate"
  | Monotonic -> "monotonic"
  | Skew -> "skew"
  | Containment -> "containment"
  | Edge_age -> "edge-age"

let kind_of_string = function
  | "rate" -> Ok Rate
  | "monotonic" -> Ok Monotonic
  | "skew" -> Ok Skew
  | "containment" -> Ok Containment
  | "edge-age" -> Ok Edge_age
  | s -> Error (Printf.sprintf "unknown violation kind %S" s)

type edge_age = {
  fresh_bound : float;
  settled_bound : float;
  tighten_rate : float;
  windows : ((int * int) * (float * float) list) list;
}

type spec = {
  rate_lo : float;
  rate_hi : float;
  check_rate : bool;
  check_monotonic : bool;
  skew_bound : float option;
  after : float;
  mode : [ `Record | `Abort ];
  byzantine : int list;
  containment_bound : float option;
  edge_age : edge_age option;
}

type violation = {
  time : float;
  kind : kind;
  node : int;
  peer : int option;
  observed : float;
  bound : float;
  detail : string;
  context : string;
}

let violation_to_string v =
  let where =
    match v.peer with
    | Some p -> Printf.sprintf "nodes %d~%d" v.node p
    | None -> Printf.sprintf "node %d" v.node
  in
  let ctx = if v.context = "" then "" else " | " ^ v.context in
  Printf.sprintf "%s violation [t=%.6f, %s] %s%s" (kind_name v.kind) v.time
    where v.detail ctx

(* The monitor core is execution-agnostic: it reads node clocks through
   [read] and learns time through [now_fn], so the same checking code rides
   a running engine ([attach]) or replays a recorded sample trajectory
   ([check_samples]) — live-mode recordings are checked by the exact logic
   that checks simulations. *)
type t = {
  spec : spec;
  stop : unit -> unit;  (** cooperative abort; no-op offline *)
  read : int -> now:float -> float;  (** node's logical value at [now] *)
  now_fn : unit -> float;  (** current time, for the final flush *)
  adj : int array array;  (** neighbor node ids, own copy (hot path) *)
  ea_windows : (float * float) array option array array;
      (** per-node per-port up-intervals, parallel to [adj]: [None] means
          the pair was never touched by churn (up since the monitor's
          [ea_t0]); [Some [||]] means it was touched but never up. Empty
          outer array when the edge-age check is off. *)
  ea_t0 : float;  (** formation time assumed for untouched pairs *)
  byz : bool array;  (** nodes excluded from containment pairs *)
  mono_v : float array;  (** last seen value per node (every event) *)
  rate_t : float array;  (** rate-anchor time per node *)
  rate_v : float array;  (** rate-anchor value per node *)
  mutable events_checked : int;
  mutable violation : violation option;
  mutable finalized : bool;
}

let events_checked t = t.events_checked
let first_violation t = t.violation

let record t v =
  if t.violation = None then begin
    t.violation <- Some v;
    match t.spec.mode with `Abort -> t.stop () | `Record -> ()
  end

(* Run every enabled check for [node] at time [now]. [context] renders the
   observation that triggered the check as a single line (empty for the
   final flush); it is a thunk so the render — by far the most expensive
   step — is only paid on the rare event that actually violates.
   Observations are emitted *before* the handler runs, so the value read
   here reflects the node's state as of its previous event — a
   discontinuity introduced by event k is therefore detected at the
   node's next event, or by [finalize]. *)
let check_node t ~now ~context node =
  let cur = t.read node ~now in
  (if t.spec.check_monotonic && cur < t.mono_v.(node) -. eps then
     record t
       {
         time = now;
         kind = Monotonic;
         node;
         peer = None;
         observed = cur;
         bound = t.mono_v.(node);
         detail =
           Printf.sprintf "clock went backwards: %.17g -> %.17g"
             t.mono_v.(node) cur;
         context = context ();
       });
  t.mono_v.(node) <- cur;
  let dt = now -. t.rate_t.(node) in
  if dt >= rate_dt_min then begin
    (if t.spec.check_rate then begin
       let rate = (cur -. t.rate_v.(node)) /. dt in
       if rate < t.spec.rate_lo -. eps || rate > t.spec.rate_hi +. eps then
         record t
           {
             time = now;
             kind = Rate;
             node;
             peer = None;
             observed = rate;
             bound =
               (if rate < t.spec.rate_lo then t.spec.rate_lo
                else t.spec.rate_hi);
             detail =
               Printf.sprintf "rate %.17g outside [%.17g, %.17g]" rate
                 t.spec.rate_lo t.spec.rate_hi;
             context = context ();
           }
     end);
    t.rate_t.(node) <- now;
    t.rate_v.(node) <- cur
  end;
  (match t.spec.skew_bound with
  | Some bound when now >= t.spec.after ->
      let nbrs = t.adj.(node) in
      for i = 0 to Array.length nbrs - 1 do
        let u = nbrs.(i) in
        let d = Float.abs (cur -. t.read u ~now) in
        if d > bound +. eps then
          record t
            {
              time = now;
              kind = Skew;
              node = min node u;
              peer = Some (max node u);
              observed = d;
              bound;
              detail =
                Printf.sprintf "local skew %.17g exceeds bound %.17g" d bound;
              context = context ();
            }
      done
  | Some _ | None -> ());
  (match t.spec.containment_bound with
  | Some bound when now >= t.spec.after && not t.byz.(node) ->
      (* The fault-containment claim: Byzantine senders may wreck their own
         incident edges, but skew between *correct* adjacent nodes stays
         within the weakened bound. Liar-incident pairs are exempt. *)
      let nbrs = t.adj.(node) in
      for i = 0 to Array.length nbrs - 1 do
        let u = nbrs.(i) in
        if not t.byz.(u) then begin
          let d = Float.abs (cur -. t.read u ~now) in
          if d > bound +. eps then
            record t
              {
                time = now;
                kind = Containment;
                node = min node u;
                peer = Some (max node u);
                observed = d;
                bound;
                detail =
                  Printf.sprintf
                    "correct-correct skew %.17g exceeds containment bound \
                     %.17g" d bound;
                context = context ();
              }
        end
      done
  | Some _ | None -> ());
  match t.spec.edge_age with
  | Some ea when now >= t.spec.after && Array.length t.ea_windows > 0 ->
      (* The dynamic-network conformance claim: each adjacent pair's skew
         stays within the age-parameterized bound — the weak [fresh_bound]
         at edge formation, tightening linearly at [tighten_rate] down to
         [settled_bound]. A pair's age restarts at every up-interval start;
         while the pair is down it is unconstrained. *)
      let nbrs = t.adj.(node) in
      let wins = t.ea_windows.(node) in
      for i = 0 to Array.length nbrs - 1 do
        let u = nbrs.(i) in
        (* A pair no event ever touches is up for the whole run; a window
           starting at (or before) the monitor's birth is the same edge —
           both are born settled, because every clock starts synchronized.
           Only a formation strictly after [ea_t0] earns the fresh
           allowance. While a pair is down it is unconstrained. *)
        let formed =
          match wins.(i) with
          | None -> Some t.ea_t0
          | Some ivs ->
              let found = ref None in
              Array.iter
                (fun (s, e) -> if s <= now && now <= e then found := Some s)
                ivs;
              !found
        in
        match formed with
        | None -> ()
        | Some since ->
            let age = if since <= t.ea_t0 then infinity else now -. since in
            let bound =
              if age = infinity then ea.settled_bound
              else
                Float.max ea.settled_bound
                  (ea.fresh_bound -. (ea.tighten_rate *. age))
            in
            let d = Float.abs (cur -. t.read u ~now) in
            if d > bound +. eps then
              record t
                {
                  time = now;
                  kind = Edge_age;
                  node = min node u;
                  peer = Some (max node u);
                  observed = d;
                  bound;
                  detail =
                    Printf.sprintf
                      "skew %.17g exceeds age-%.17g bound %.17g" d age bound;
                  context = context ();
                }
      done
  | Some _ | None -> ()

let on_observation t time obs =
  if t.violation = None then
    match obs with
    | Engine.Obs_deliver { dst; _ } ->
        t.events_checked <- t.events_checked + 1;
        check_node t ~now:time
          ~context:(fun () -> Trace.entry_to_string { Trace.time; obs })
          dst
    | Engine.Obs_timer { node; _ } ->
        t.events_checked <- t.events_checked + 1;
        check_node t ~now:time
          ~context:(fun () -> Trace.entry_to_string { Trace.time; obs })
          node
    | _ -> ()

let byz_mask spec n =
  let b = Array.make n false in
  List.iter (fun v -> if v >= 0 && v < n then b.(v) <- true) spec.byzantine;
  b

let create spec ~graph ~stop ~read ~now_fn =
  let n = Graph.n graph in
  let now = now_fn () in
  let values = Array.init n (fun v -> read v ~now) in
  let adj = Array.init n (fun v -> Array.map fst (Graph.neighbors graph v)) in
  let ea_windows =
    match spec.edge_age with
    | None -> [||]
    | Some ea ->
        (* Window entries naming non-adjacent pairs are ignored on purpose:
           the shrinker removes edges while keeping the monitor spec fixed,
           and a window for an edge that no longer exists must not arm (or
           crash) the check. *)
        let tbl = Hashtbl.create 16 in
        List.iter
          (fun ((u, v), ivs) ->
            Hashtbl.replace tbl (min u v, max u v) (Array.of_list ivs))
          ea.windows;
        Array.init n (fun v ->
            Array.map
              (fun u -> Hashtbl.find_opt tbl (min v u, max v u))
              adj.(v))
  in
  {
    spec;
    stop;
    read;
    now_fn;
    adj;
    ea_windows;
    ea_t0 = now;
    byz = byz_mask spec n;
    mono_v = Array.copy values;
    rate_t = Array.make n now;
    rate_v = values;
    events_checked = 0;
    violation = None;
    finalized = false;
  }

let attach spec (live : Runner.live) =
  let engine = live.Runner.engine in
  let logical = live.Runner.logical in
  let t =
    create spec ~graph:live.Runner.cfg.Runner.graph
      ~stop:(fun () -> Engine.request_stop engine)
      ~read:(fun v ~now -> Logical_clock.value logical.(v) ~now)
      ~now_fn:(fun () -> Engine.now engine)
  in
  Engine.add_observer engine (fun time obs -> on_observation t time obs);
  t

let finalize t =
  if not t.finalized then begin
    t.finalized <- true;
    (* Flush: events only let us see a node's state as of its previous
       event, so a violation introduced by a node's very last event (or by
       a control-scheduled fault after it) is caught here, at the final
       clock reading. *)
    if t.violation = None then begin
      let now = t.now_fn () in
      let n = Array.length t.mono_v in
      let v = ref 0 in
      while t.violation = None && !v < n do
        check_node t ~now ~context:(fun () -> "") !v;
        incr v
      done
    end
  end;
  t.violation

(* Offline replay of a recorded (or simulated) sample trajectory through
   the same per-node checks the online monitor runs. The first row seeds
   the anchors; each later row is "the current state" for every node, so
   neighbor reads are sample-consistent. *)
let check_samples spec ~graph ~samples =
  let n = Graph.n graph in
  if Array.length samples = 0 then (None, 0)
  else begin
    let current = ref samples.(0) in
    let t =
      create spec ~graph
        ~stop:(fun () -> ())
        ~read:(fun v ~now:_ -> (!current).Gcs_core.Metrics.values.(v))
        ~now_fn:(fun () -> (!current).Gcs_core.Metrics.time)
    in
    let rows = Array.length samples in
    let i = ref 1 in
    while t.violation = None && !i < rows do
      current := samples.(!i);
      let now = (!current).Gcs_core.Metrics.time in
      let row = !i in
      let v = ref 0 in
      while t.violation = None && !v < n do
        t.events_checked <- t.events_checked + 1;
        check_node t ~now
          ~context:(fun () -> Printf.sprintf "sample row %d" row)
          !v;
        incr v
      done;
      incr i
    done;
    (t.violation, t.events_checked)
  end
