(** Online invariant monitors: event-granularity conformance checking.

    {!Gcs_core.Invariant} checks a *sampled* trajectory after the run; a
    violation between two samples is invisible to it. A monitor instead
    rides the engine's observer multiplexer and re-checks the involved
    node's logical clock at every delivery and timer event, so the first
    violation is caught within one event of where it happened and comes
    with its full event context (time, node, the observation that
    triggered the check). In [`Abort] mode the monitor also stops the run
    cooperatively ({!Gcs_sim.Engine.request_stop}) so a long simulation
    does not keep running past a found counterexample.

    Monitors are observers: they never touch algorithm state, timers, or
    any PRNG stream, so an attached monitor changes no run summary — the
    property bench E23 asserts, along with the <10% overhead budget. *)

type kind = Rate | Monotonic | Skew | Containment | Edge_age

val kind_name : kind -> string
val kind_of_string : string -> (kind, string) result

(** Parameters of the dynamic-network edge-age conformance check: each
    adjacent pair's skew must stay within an age-parameterized bound
    [max settled_bound (fresh_bound - tighten_rate * age)], where the
    pair's age restarts at each of its up-interval starts (from
    {!Gcs_sim.Churn_plan.up_windows}). A pair absent from [windows] is up
    from the monitor's start; a pair listed with an interval set is only
    checked while inside one of its intervals. Window entries naming
    non-adjacent pairs are ignored (the shrinker removes edges under a
    fixed monitor spec). *)
type edge_age = {
  fresh_bound : float;  (** bound granted at formation (age 0) *)
  settled_bound : float;  (** static gradient bound, the floor *)
  tighten_rate : float;  (** linear decay, bound units per unit time *)
  windows : ((int * int) * (float * float) list) list;
      (** per-pair up-intervals: [((u, v), [(up, down); ...])]. A pair
          with no entry is up (and settled) for the whole run; a window
          starting at or before the monitor's birth is settled too —
          clocks start synchronized, so only a formation strictly after
          t0 earns the fresh allowance. While a pair is between windows
          (down) it is unconstrained. *)
}

type spec = {
  rate_lo : float;  (** minimum discrete logical rate *)
  rate_hi : float;  (** maximum discrete logical rate *)
  check_rate : bool;  (** off for jump-based algorithms *)
  check_monotonic : bool;
  skew_bound : float option;
      (** when set, adjacent-pair skew must stay within this bound *)
  after : float;  (** skew checks only at times [>= after] (warm-up) *)
  mode : [ `Record | `Abort ];
      (** [`Record] = flight recorder: keep the first violation, let the
          run finish. [`Abort] = also request an engine stop on it. *)
  byzantine : int list;
      (** the fault plan's lying nodes ([[]] without Byzantine faults);
          pairs touching one are exempt from the containment check — a
          liar's own clock is unconstrained by the weakened guarantee *)
  containment_bound : float option;
      (** when set, skew between *adjacent correct* nodes must stay within
          this weakened bound from [after] on — the fault-containment
          property of {!Gcs_core.Ft_gradient} under up to [f] liars *)
  edge_age : edge_age option;
      (** when set, adjacent-pair skew must stay within the
          age-parameterized dynamic-network bound from [after] on *)
}

type violation = {
  time : float;
  kind : kind;
  node : int;  (** for [Skew], the lower id of the offending pair *)
  peer : int option;  (** the other node of a skew pair *)
  observed : float;  (** offending rate / value / skew *)
  bound : float;  (** the envelope edge or bound it crossed *)
  detail : string;  (** human-readable, [%.17g] floats (repro-exact) *)
  context : string;
      (** single-line rendering of the triggering observation; [""] when
          the violation surfaced in the final flush *)
}

val violation_to_string : violation -> string

type t

val attach : spec -> Gcs_core.Runner.live -> t
(** Install a monitor on a prepared run (between [Runner.prepare] and
    [Runner.complete]). Seeds its per-node state from the logical clock
    values at the engine's current time. *)

val finalize : t -> violation option
(** Flush: observations fire *before* handlers, so each event's effect is
    only visible at the node's next event — the final flush re-checks
    every node at the engine's current time to close that gap. Returns the
    first violation (idempotent). *)

val first_violation : t -> violation option
(** The first violation recorded so far, without flushing. *)

val events_checked : t -> int
(** Delivery/timer events the monitor has checked. *)

val check_samples :
  spec ->
  graph:Gcs_graph.Graph.t ->
  samples:Gcs_core.Metrics.sample array ->
  violation option * int
(** Replay a sampled trajectory — e.g. one recorded from a live UDP run —
    through the same per-node checks the online monitor applies, at
    sample granularity: the first row seeds the monotonic and rate
    anchors, every later row re-checks every node. Returns the first
    violation (if any) and the number of node-checks performed. *)
