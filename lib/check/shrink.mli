(** Delta-debugging shrinker for violating configurations.

    Given a violating candidate (canonical key + adversary moves), greedily
    search for a smaller configuration that still violates: fewer nodes
    (topology halving/decrement within each family's minimum), fewer fault
    events, fewer adversary moves, shorter horizon. Each reduction is
    re-simulated deterministically through the same oracle as the original
    ({!Check_run.run} under the caller's monitor); only reductions that
    preserve a violation of the same kind are kept. The loop terminates
    because every accepted reduction strictly decreases the integer
    {!size} measure (and an evaluation budget bounds it regardless). *)

type candidate = {
  key : Gcs_store.Key.t;
  segment_len : float;
  moves : Gcs_adversary.Search.move list;
}

val size : candidate -> int
(** The shrinker's measure: topology nodes + fault-plan events + adversary
    moves + horizon units (one unit per 50 time units, rounded up). *)

val candidates : candidate -> candidate list
(** All one-step reductions of a candidate, in deterministic order.
    Structural validity against the smaller topology is not checked here —
    the oracle rejects reductions whose fault plan or moves no longer fit
    (exposed for the qcheck soundness property). *)

type outcome = {
  minimized : candidate;
  violation : Monitor.violation;  (** the minimized config's violation *)
  evaluations : int;  (** simulations executed, including the initial *)
  initial_size : int;
  final_size : int;
}

val shrink :
  ?max_evaluations:int -> monitor:Monitor.spec -> candidate -> outcome option
(** Greedy first-accept shrink. [None] if the initial candidate does not
    violate under the monitor (nothing to shrink). Probe runs use abort
    mode, so each evaluation stops at its first violation; the recorded
    violation is identical to what record mode would report. Default
    budget: 400 evaluations. *)
