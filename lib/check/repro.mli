(** Deterministic, versioned counterexample artifacts ([.repro] files).

    A repro packages everything needed to re-run a violating execution
    bit-for-bit: the run's canonical {!Gcs_store.Key} (which pins spec,
    topology, seed, drift/loss laws, and fault plan), the adversary move
    sequence (if any), the monitor that caught the violation, and the
    violation itself with [%.17g] floats. [replay] re-simulates from the
    key alone and compares the fresh violation to the expected one with
    structural equality — determinism makes that exact, so a verdict of
    {!Reproduced} means byte-for-byte the same failure, on any machine,
    for any [--jobs]. *)

type t = {
  monitor : Monitor.spec;  (** mode is normalised to [`Record] on parse *)
  expected : Monitor.violation;
  segment_len : float;  (** adversary segment length (0 without moves) *)
  moves : Gcs_adversary.Search.move list;
  key : Gcs_store.Key.t;
}

type verdict =
  | Reproduced  (** replay hit the identical violation *)
  | Diverged of Monitor.violation  (** replay violated differently *)
  | Missing  (** replay ran clean *)

val magic : string
(** First line of every repro file: ["gcs.check:repro:1"]. *)

val to_string : t -> string
(** Canonical encoding: versioned header lines, then [key:] followed by
    the key's own canonical encoding verbatim. Same repro, same bytes. *)

val of_string : string -> (t, string) result
(** Parse {!to_string}'s output. [of_string (to_string t) = Ok t]. *)

val save : path:string -> t -> unit
(** Write atomically (tmp + rename). *)

val load : string -> (t, string) result

val replay : t -> (verdict, string) result
(** Rebuild the config from the key ({!Gcs_core.Runner.config_of_key}),
    re-install the moves, re-run under the recorded monitor in record
    mode, and compare. [Error] if the key no longer describes a runnable
    config (e.g. a schema change). *)

val report : t -> (verdict, string) result -> string
(** Deterministic multi-line rendering of a replay outcome — the bytes
    the golden-fixture test and [gcs-cli check replay] emit. *)

val moves_to_string : Gcs_adversary.Search.move list -> string
val moves_of_string :
  string -> (Gcs_adversary.Search.move list, string) result
(** Compact move codec: two characters per move (fast side [L]/[R]/[N],
    bias [F]/[B]/[N]), [';']-separated; [""] is the empty sequence. *)
