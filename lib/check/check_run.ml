module Pool = Gcs_util.Pool
module Prng = Gcs_util.Prng
module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Fault_plan = Gcs_sim.Fault_plan
module Churn_plan = Gcs_sim.Churn_plan
module Spec = Gcs_core.Spec
module Bounds = Gcs_core.Bounds
module Shortest_path = Gcs_graph.Shortest_path
module Dynamic_gradient = Gcs_core.Dynamic_gradient
module Algorithm = Gcs_core.Algorithm
module Invariant = Gcs_core.Invariant
module Runner = Gcs_core.Runner
module Registry = Gcs_core.Registry
module Search = Gcs_adversary.Search

type checked = {
  result : Runner.result;
  violation : Monitor.violation option;
  events_checked : int;
}

let default_spec ?(mode = `Record) ?skew_bound ?(after = 0.)
    ?(byzantine = []) ?containment_bound ?edge_age spec algo =
  let env = Invariant.expected_envelope spec algo in
  {
    Monitor.rate_lo = env.Invariant.rate_lo;
    rate_hi = env.Invariant.rate_hi;
    check_rate = not env.Invariant.jumps_allowed;
    check_monotonic = true;
    skew_bound;
    after;
    mode;
    byzantine;
    containment_bound;
    edge_age;
  }

(* The age-parameterized bounds the dynamic gradient is checked against,
   derived from the same helpers the algorithm itself plans with: the
   settled floor is the static gradient bound, a fresh edge gets the
   algorithm's full formation allowance on top of it, and both decay at
   the algorithm's own tightening rate — so a conforming dynamic-gradient
   run passes by construction while any algorithm that chases fresh
   neighbors at face value rips through the settled floor on its old
   edges. Windows come back empty; callers fill them from the run's
   compiled churn plan ({!Gcs_sim.Churn_plan.up_windows}). *)
let edge_age_bounds (spec : Spec.t) ~diameter =
  let settled = Bounds.gradient_local_upper spec ~diameter in
  {
    Monitor.fresh_bound =
      Dynamic_gradient.fresh_allowance spec ~diameter +. settled;
    settled_bound = settled;
    tighten_rate = Dynamic_gradient.tighten_rate spec;
    windows = [];
  }

let run ?monitor ?(moves = []) ?(segment_len = 0.) (cfg : Runner.config) =
  let cfg =
    (* Adversary moves need the delay chooser; everything else about the
       config (and hence its store key) is unchanged. *)
    if moves = [] then cfg
    else { cfg with Runner.delay_kind = Runner.Controlled_delays }
  in
  let mspec =
    match monitor with
    | Some s -> s
    | None -> default_spec cfg.Runner.spec cfg.Runner.algo
  in
  let live = Runner.prepare cfg in
  if moves <> [] then Search.install live ~segment_len moves;
  let m = Monitor.attach mspec live in
  let result = Runner.complete live in
  let violation = Monitor.finalize m in
  { result; violation; events_checked = Monitor.events_checked m }

(* ---------------------------------------------------------------- *)
(* Conformance battery                                              *)

type cell = {
  key : Gcs_store.Key.t;
  algo : Algorithm.kind;
  monitor : Monitor.spec;
  violation : Monitor.violation option;
  events_checked : int;
}

(* A benign fault plan drawn deterministically from the cell seed: faults
   under which the rate/monotonicity envelopes genuinely hold (partitions
   heal, crashed nodes recover, tampering never touches the logical
   multiplier's clamp). Clock jump/rate faults are deliberately excluded —
   those *should* violate, and are what the shrinker tests feed in. *)
let benign_plan ~seed ~horizon ~nodes =
  let rng = Prng.create ~seed:(seed lxor 0xFA17) in
  let v = Prng.int rng nodes in
  let q = horizon /. 4. in
  let events =
    match Prng.int rng 5 with
    | 0 ->
        [
          Fault_plan.Link_partition { at = q; edges = Fault_plan.Cut [ v ] };
          Fault_plan.Link_heal { at = 2. *. q; edges = Fault_plan.Cut [ v ] };
        ]
    | 1 ->
        [
          Fault_plan.Node_crash { at = q; node = v };
          Fault_plan.Node_recover
            { at = 2. *. q; node = v; wipe = Prng.bool rng };
        ]
    | 2 ->
        [
          Fault_plan.Msg_duplicate
            { from_ = q; until = 2. *. q; edges = Fault_plan.All_edges;
              prob = 0.5 };
        ]
    | 3 ->
        [
          Fault_plan.Msg_reorder
            { from_ = q; until = 2. *. q; edges = Fault_plan.All_edges;
              prob = 0.3; extra = 2. };
        ]
    | _ ->
        [
          Fault_plan.Msg_corrupt
            { from_ = q; until = 2. *. q; edges = Fault_plan.All_edges;
              prob = 0.2; magnitude = 0.05 };
        ]
  in
  Fault_plan.of_events events

(* A Byzantine fault plan drawn deterministically from the cell seed: [f]
   liars spread around the node space, each lying over the middle half of
   the run with a strategy and magnitude chosen from its own derived
   stream. The magnitudes dwarf every containment bound in use, so a
   surviving battery means the algorithm filtered the lies, not that the
   lies were gentle. *)
let byz_plan ~seed ~horizon ~nodes ~f ~kappa =
  if f < 1 then invalid_arg "Check_run.byz_plan: f must be >= 1";
  if f >= nodes then invalid_arg "Check_run.byz_plan: f must be < nodes";
  let rng = Prng.create ~seed:(seed lxor 0xB12A) in
  let q = horizon /. 4. in
  let mag = 20. *. kappa in
  let stride = nodes / f in
  let offset = Prng.int rng stride in
  let events =
    List.init f (fun i ->
        let node = (offset + (i * stride)) mod nodes in
        let strategy =
          match Prng.int rng 4 with
          | 0 -> Fault_plan.Lie_equivocate mag
          | 1 -> Fault_plan.Lie_constant (-.mag)
          | 2 -> Fault_plan.Lie_drifting (-.mag /. (2. *. q))
          | _ -> Fault_plan.Lie_random mag
        in
        Fault_plan.Byzantine { from_ = q; until = 3. *. q; node; strategy })
  in
  Fault_plan.of_events events

(* The weakened correct-correct guarantee the ft gradient is checked
   against: the filter's clamp window (2f+1)*kappa — where a liar can pin
   the trigger level — plus slack for what honest machinery adds on top:
   estimation error on each of the two estimates involved in a trigger
   decision, and one beacon period of reaction lag at the fast-rate
   differential (bounded by kappa for any sane spec). Calibrated so the
   ft battery passes with margin while plain gradient, whose skew under a
   pinning liar grows to the lie magnitude, crosses it decisively. *)
let containment_bound (spec : Spec.t) ~f =
  (float_of_int ((2 * f) + 1) *. spec.Spec.kappa)
  +. (2. *. Spec.estimate_error_bound spec)
  +. spec.Spec.kappa

let seed_stride = 7919

let battery ?jobs ?(spec = Spec.make ()) ?(algos = Algorithm.all_kinds)
    ?(faults = true) ?(base_seed = 1) ?churn ~topologies ~seeds ~horizon () =
  if seeds < 1 then invalid_arg "Check_run.battery: seeds must be >= 1";
  let cells =
    List.concat_map
      (fun topology ->
        let nodes =
          Graph.n
            (Topology.build topology
               ~rng:(Prng.create ~seed:(base_seed lxor 0x5eed)))
        in
        List.concat_map
          (fun algo ->
            List.init seeds (fun i ->
                let seed = base_seed + (i * seed_stride) in
                let base =
                  if faults && i land 1 = 1 then
                    Some (benign_plan ~seed ~horizon ~nodes)
                  else None
                in
                let churned =
                  match churn with
                  | None -> None
                  | Some c ->
                      (* Compile against the cell's own graph: random
                         topologies rebuild per seed inside
                         [config_of_key], and the expansion must match. *)
                      let graph =
                        Topology.build topology
                          ~rng:(Prng.create ~seed:(seed lxor 0x5eed))
                      in
                      Churn_plan.compile c ~graph ~seed ~horizon
                in
                let fault_plan =
                  match (base, churned) with
                  | None, p | p, None -> p
                  | Some a, Some b -> Some (Fault_plan.compose a b)
                in
                let key =
                  Runner.store_key ?fault_plan ~spec ~topology ~algo ~horizon
                    ~seed ()
                in
                (key, algo)))
          algos)
      topologies
  in
  let run_cell (key, algo) =
    match Runner.config_of_key key with
    | Error msg -> invalid_arg ("Check_run.battery: " ^ msg)
    | Ok cfg ->
        let monitor =
          match churn with
          | None -> default_spec spec algo
          | Some _ ->
              (* Churned cells are additionally held to the edge-age
                 conformance bound, with formation times read off the
                 cell's own compiled plan. *)
              let diameter = Shortest_path.diameter cfg.Runner.graph in
              let windows =
                match cfg.Runner.fault_plan with
                | None -> []
                | Some p ->
                    Churn_plan.up_windows p ~graph:cfg.Runner.graph ~horizon
              in
              let edge_age =
                { (edge_age_bounds spec ~diameter) with Monitor.windows }
              in
              default_spec ~edge_age spec algo
        in
        let checked = run ~monitor cfg in
        {
          key;
          algo;
          monitor;
          violation = checked.violation;
          events_checked = checked.events_checked;
        }
  in
  Pool.map ?jobs run_cell (Array.of_list cells) |> Array.to_list

let violations cells = List.filter (fun c -> c.violation <> None) cells

(* ---------------------------------------------------------------- *)
(* Containment battery                                              *)

let attack_spec () = Spec.make ~rho:0.05 ~mu:0.15 ~kappa:0.5 ()

let containment_battery ?jobs ?spec
    ?(algos = [ Algorithm.Ft_gradient_sync 1 ]) ?(f = 1) ?(base_seed = 1)
    ~topologies ~seeds ~horizon () =
  if seeds < 1 then
    invalid_arg "Check_run.containment_battery: seeds must be >= 1";
  let spec = match spec with Some s -> s | None -> attack_spec () in
  let cells =
    List.concat_map
      (fun topology ->
        let nodes =
          Graph.n
            (Topology.build topology
               ~rng:(Prng.create ~seed:(base_seed lxor 0x5eed)))
        in
        List.concat_map
          (fun algo ->
            List.init seeds (fun i ->
                let seed = base_seed + (i * seed_stride) in
                let fault_plan =
                  byz_plan ~seed ~horizon ~nodes ~f ~kappa:spec.Spec.kappa
                in
                let key =
                  Runner.store_key ~fault_plan ~spec ~topology ~algo ~horizon
                    ~seed ()
                in
                (key, algo, fault_plan)))
          algos)
      topologies
  in
  let run_cell (key, algo, plan) =
    let monitor =
      default_spec
        ~byzantine:(Fault_plan.byzantine_nodes plan)
        ~containment_bound:(containment_bound spec ~f)
        spec algo
    in
    match Runner.config_of_key key with
    | Error msg -> invalid_arg ("Check_run.containment_battery: " ^ msg)
    | Ok cfg ->
        let checked = run ~monitor cfg in
        {
          key;
          algo;
          monitor;
          violation = checked.violation;
          events_checked = checked.events_checked;
        }
  in
  Pool.map ?jobs run_cell (Array.of_list cells) |> Array.to_list
