module Key = Gcs_store.Key
module Runner = Gcs_core.Runner
module Search = Gcs_adversary.Search

let magic = "gcs.check:repro:1"

type t = {
  monitor : Monitor.spec;
  expected : Monitor.violation;
  segment_len : float;
  moves : Search.move list;
  key : Key.t;
}

type verdict = Reproduced | Diverged of Monitor.violation | Missing

(* ---------------------------------------------------------------- *)
(* Codec: versioned header lines, then the key's own canonical
   encoding verbatim. Floats go through %.17g (exact round-trip), so a
   replayed run compares its violation to the expected one with plain
   structural equality. *)

let fl = Printf.sprintf "%.17g"

let move_to_string { Search.fast_side; bias } =
  let c1 = match fast_side with `Left -> 'L' | `Right -> 'R' | `None -> 'N' in
  let c2 =
    match bias with `Forward -> 'F' | `Backward -> 'B' | `Neutral -> 'N'
  in
  Printf.sprintf "%c%c" c1 c2

let move_of_string s =
  if String.length s <> 2 then Error (Printf.sprintf "bad move %S" s)
  else
    match
      ( (match s.[0] with
        | 'L' -> Some `Left
        | 'R' -> Some `Right
        | 'N' -> Some `None
        | _ -> None),
        match s.[1] with
        | 'F' -> Some `Forward
        | 'B' -> Some `Backward
        | 'N' -> Some `Neutral
        | _ -> None )
    with
    | Some fast_side, Some bias -> Ok { Search.fast_side; bias }
    | _ -> Error (Printf.sprintf "bad move %S" s)

let moves_to_string moves = String.concat ";" (List.map move_to_string moves)

let moves_of_string s =
  if s = "" then Ok []
  else
    let rec go acc = function
      | [] -> Ok (List.rev acc)
      | piece :: rest -> (
          match move_of_string piece with
          | Ok m -> go (m :: acc) rest
          | Error e -> Error e)
    in
    go [] (String.split_on_char ';' s)

let to_string t =
  let b = Buffer.create 1024 in
  let line k v = Buffer.add_string b (k ^ "=" ^ v ^ "\n") in
  Buffer.add_string b (magic ^ "\n");
  line "kind" (Monitor.kind_name t.expected.Monitor.kind);
  line "time" (fl t.expected.Monitor.time);
  line "node" (string_of_int t.expected.Monitor.node);
  line "peer"
    (match t.expected.Monitor.peer with
    | None -> "-"
    | Some p -> string_of_int p);
  line "observed" (fl t.expected.Monitor.observed);
  line "bound" (fl t.expected.Monitor.bound);
  line "detail" t.expected.Monitor.detail;
  line "context" t.expected.Monitor.context;
  line "rate_lo" (fl t.monitor.Monitor.rate_lo);
  line "rate_hi" (fl t.monitor.Monitor.rate_hi);
  line "check_rate" (if t.monitor.Monitor.check_rate then "1" else "0");
  line "check_monotonic"
    (if t.monitor.Monitor.check_monotonic then "1" else "0");
  line "skew_bound"
    (match t.monitor.Monitor.skew_bound with None -> "-" | Some s -> fl s);
  line "after" (fl t.monitor.Monitor.after);
  line "segment_len" (fl t.segment_len);
  line "moves" (moves_to_string t.moves);
  (* Byzantine fields are emitted only when set, so pre-Byzantine repro
     files (and their pinned fixtures) keep their exact bytes. *)
  if t.monitor.Monitor.byzantine <> [] then
    line "byzantine"
      (String.concat "," (List.map string_of_int t.monitor.Monitor.byzantine));
  (match t.monitor.Monitor.containment_bound with
  | None -> ()
  | Some cb -> line "containment_bound" (fl cb));
  (* Edge-age fields, same deal: only churned repros carry them. *)
  (match t.monitor.Monitor.edge_age with
  | None -> ()
  | Some ea ->
      line "edge_age"
        (Printf.sprintf "%s,%s,%s"
           (fl ea.Monitor.fresh_bound)
           (fl ea.Monitor.settled_bound)
           (fl ea.Monitor.tighten_rate));
      if ea.Monitor.windows <> [] then
        line "edge_age_windows"
          (String.concat ";"
             (List.map
                (fun ((u, v), ivs) ->
                  Printf.sprintf "%d-%d@%s" u v
                    (String.concat ","
                       (List.map
                          (fun (a, b) ->
                            Printf.sprintf "%s..%s" (fl a) (fl b))
                          ivs)))
                ea.Monitor.windows)));
  Buffer.add_string b "key:\n";
  Buffer.add_string b (Key.encode t.key);
  Buffer.contents b

let ( let* ) = Result.bind

let field name line =
  let prefix = name ^ "=" in
  let pl = String.length prefix in
  if String.length line >= pl && String.sub line 0 pl = prefix then
    Ok (String.sub line pl (String.length line - pl))
  else Error (Printf.sprintf "repro: expected %s=..., got %S" name line)

let float_field name line =
  let* v = field name line in
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "repro: bad float in %s: %S" name v)

let bool_field name line =
  let* v = field name line in
  match v with
  | "1" -> Ok true
  | "0" -> Ok false
  | _ -> Error (Printf.sprintf "repro: bad flag in %s: %S" name v)

let of_string s =
  match String.split_on_char '\n' s with
  | m :: rest when m = magic -> (
      match rest with
      | kind :: time :: node :: peer :: observed :: bound :: detail :: context
        :: rate_lo :: rate_hi :: check_rate :: check_monotonic :: skew_bound
        :: after :: segment_len :: moves :: rest ->
          let* kind_s = field "kind" kind in
          let* kind = Monitor.kind_of_string kind_s in
          let* time = float_field "time" time in
          let* node_s = field "node" node in
          let* node =
            match int_of_string_opt node_s with
            | Some n -> Ok n
            | None -> Error (Printf.sprintf "repro: bad node %S" node_s)
          in
          let* peer_s = field "peer" peer in
          let* peer =
            if peer_s = "-" then Ok None
            else
              match int_of_string_opt peer_s with
              | Some p -> Ok (Some p)
              | None -> Error (Printf.sprintf "repro: bad peer %S" peer_s)
          in
          let* observed = float_field "observed" observed in
          let* bound = float_field "bound" bound in
          let* detail = field "detail" detail in
          let* context = field "context" context in
          let* rate_lo = float_field "rate_lo" rate_lo in
          let* rate_hi = float_field "rate_hi" rate_hi in
          let* check_rate = bool_field "check_rate" check_rate in
          let* check_monotonic = bool_field "check_monotonic" check_monotonic in
          let* skew_s = field "skew_bound" skew_bound in
          let* skew_bound =
            if skew_s = "-" then Ok None
            else
              match float_of_string_opt skew_s with
              | Some f -> Ok (Some f)
              | None -> Error (Printf.sprintf "repro: bad skew_bound %S" skew_s)
          in
          let* after = float_field "after" after in
          let* segment_len = float_field "segment_len" segment_len in
          let* moves_s = field "moves" moves in
          let* moves = moves_of_string moves_s in
          (* Optional Byzantine lines (absent in pre-Byzantine files). *)
          let opt_line name rest =
            let prefix = name ^ "=" in
            let pl = String.length prefix in
            match rest with
            | line :: tl
              when String.length line >= pl && String.sub line 0 pl = prefix
              ->
                (Some (String.sub line pl (String.length line - pl)), tl)
            | _ -> (None, rest)
          in
          let byz_s, rest = opt_line "byzantine" rest in
          let cb_s, rest = opt_line "containment_bound" rest in
          let* byzantine =
            match byz_s with
            | None -> Ok []
            | Some s ->
                List.fold_left
                  (fun acc piece ->
                    let* acc = acc in
                    match int_of_string_opt piece with
                    | Some v -> Ok (acc @ [ v ])
                    | None ->
                        Error (Printf.sprintf "repro: bad byzantine %S" piece))
                  (Ok [])
                  (String.split_on_char ',' s)
          in
          let* containment_bound =
            match cb_s with
            | None -> Ok None
            | Some s -> (
                match float_of_string_opt s with
                | Some f -> Ok (Some f)
                | None ->
                    Error (Printf.sprintf "repro: bad containment_bound %S" s))
          in
          let ea_s, rest = opt_line "edge_age" rest in
          let eaw_s, rest = opt_line "edge_age_windows" rest in
          let* edge_age =
            match ea_s with
            | None -> Ok None
            | Some s -> (
                match
                  String.split_on_char ',' s |> List.map float_of_string_opt
                with
                | [ Some fresh_bound; Some settled_bound; Some tighten_rate ]
                  ->
                    let parse_interval piece =
                      (* a..b: the separator is the first double dot. *)
                      let n = String.length piece in
                      let rec dots i =
                        if i + 1 >= n then None
                        else if piece.[i] = '.' && piece.[i + 1] = '.' then
                          Some i
                        else dots (i + 1)
                      in
                      match dots 0 with
                      | None ->
                          Error
                            (Printf.sprintf "repro: bad interval %S" piece)
                      | Some i -> (
                          match
                            ( float_of_string_opt (String.sub piece 0 i),
                              float_of_string_opt
                                (String.sub piece (i + 2) (n - i - 2)) )
                          with
                          | Some a, Some b -> Ok (a, b)
                          | _ ->
                              Error
                                (Printf.sprintf "repro: bad interval %S"
                                   piece))
                    in
                    let parse_pair piece =
                      match String.index_opt piece '@' with
                      | None ->
                          Error
                            (Printf.sprintf "repro: bad edge windows %S" piece)
                      | Some at -> (
                          let pair = String.sub piece 0 at in
                          let ivs =
                            String.sub piece (at + 1)
                              (String.length piece - at - 1)
                          in
                          match String.split_on_char '-' pair with
                          | [ u; v ] -> (
                              match
                                (int_of_string_opt u, int_of_string_opt v)
                              with
                              | Some u, Some v ->
                                  let* ivs =
                                    List.fold_left
                                      (fun acc p ->
                                        let* acc = acc in
                                        let* iv = parse_interval p in
                                        Ok (acc @ [ iv ]))
                                      (Ok [])
                                      (String.split_on_char ',' ivs)
                                  in
                                  Ok ((u, v), ivs)
                              | _ ->
                                  Error
                                    (Printf.sprintf "repro: bad edge pair %S"
                                       pair))
                          | _ ->
                              Error
                                (Printf.sprintf "repro: bad edge pair %S" pair)
                          )
                    in
                    let* windows =
                      match eaw_s with
                      | None -> Ok []
                      | Some s ->
                          List.fold_left
                            (fun acc piece ->
                              let* acc = acc in
                              let* w = parse_pair piece in
                              Ok (acc @ [ w ]))
                            (Ok [])
                            (String.split_on_char ';' s)
                    in
                    Ok
                      (Some
                         {
                           Monitor.fresh_bound;
                           settled_bound;
                           tighten_rate;
                           windows;
                         })
                | _ -> Error (Printf.sprintf "repro: bad edge_age %S" s))
          in
          let* key_lines =
            match rest with
            | key_marker :: key_lines when key_marker = "key:" -> Ok key_lines
            | _ -> Error "repro: truncated header"
          in
          let* key = Key.decode (String.concat "\n" key_lines) in
          Ok
            {
              monitor =
                {
                  Monitor.rate_lo;
                  rate_hi;
                  check_rate;
                  check_monotonic;
                  skew_bound;
                  after;
                  mode = `Record;
                  byzantine;
                  containment_bound;
                  edge_age;
                };
              expected =
                {
                  Monitor.time;
                  kind;
                  node;
                  peer;
                  observed;
                  bound;
                  detail;
                  context;
                };
              segment_len;
              moves;
              key;
            }
      | _ -> Error "repro: truncated header")
  | _ -> Error (Printf.sprintf "repro: expected magic %S" magic)

let save ~path t =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string t));
  Sys.rename tmp path

let load path =
  match In_channel.with_open_bin path In_channel.input_all with
  | s -> of_string s
  | exception Sys_error e -> Error e

(* ---------------------------------------------------------------- *)

let replay t =
  match Runner.config_of_key t.key with
  | Error e -> Error e
  | Ok cfg -> (
      try
        let checked =
          Check_run.run
            ~monitor:{ t.monitor with Monitor.mode = `Record }
            ~moves:t.moves ~segment_len:t.segment_len cfg
        in
        Ok
          (match checked.Check_run.violation with
          | None -> Missing
          | Some v -> if v = t.expected then Reproduced else Diverged v)
      with Invalid_argument e -> Error e)

let report t outcome =
  let b = Buffer.create 512 in
  let add fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  add "repro %s" (Key.hash t.key);
  add "  config    : topo=%s algo=%s seed=%d horizon=%s"
    (Gcs_graph.Topology.spec_name t.key.Key.topology)
    t.key.Key.algo t.key.Key.seed (fl t.key.Key.horizon);
  (match t.key.Key.fault_plan with
  | None -> ()
  | Some p -> add "  faults    : %s" (Gcs_sim.Fault_plan.to_string p));
  if t.moves <> [] then
    add "  adversary : %d moves of %s (%s)" (List.length t.moves)
      (fl t.segment_len) (moves_to_string t.moves);
  add "  expected  : %s" (Monitor.violation_to_string t.expected);
  (match outcome with
  | Ok Reproduced -> add "  verdict   : REPRODUCED"
  | Ok Missing -> add "  verdict   : MISSING (replay ran clean)"
  | Ok (Diverged v) ->
      add "  verdict   : DIVERGED";
      add "  observed  : %s" (Monitor.violation_to_string v)
  | Error e -> add "  verdict   : ERROR (%s)" e);
  Buffer.contents b
