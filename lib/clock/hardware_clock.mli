(** Piecewise-linear hardware clocks with bounded drift.

    The model gives each node a hardware clock [H_v] whose rate (derivative
    with respect to real time) stays within known bounds [1, vartheta]. We
    realize [H_v] as a piecewise-linear function described by rate
    breakpoints: every adversarial drift strategy used by the Fan-Lynch
    lower bound is of this form, and it admits exact forward queries [H(t)]
    and exact inversion [H^-1(h)], which the event engine needs to convert
    hardware-time timers into real-time events.

    Breakpoints may only be appended in non-decreasing time order; the last
    segment extends to infinity. The clock does not itself enforce rate
    bounds (the drift layer does), but rates must be strictly positive so
    the clock is strictly increasing and invertible. *)

type t

val create : ?h0:float -> t0:float -> rate:float -> unit -> t
(** A clock reading [h0] (default [0.]) at real time [t0], running at [rate]
    until further breakpoints. [rate] must be positive. *)

val value : t -> now:float -> float
(** [H(now)]; requires [now >= t0] of creation. *)

val inverse : t -> h:float -> float
(** The unique real time at which the clock reads [h]; requires
    [h >= value t ~now:t0]. *)

val rate_at : t -> now:float -> float
(** Rate in effect at time [now] (right-continuous at breakpoints). *)

val set_rate : t -> now:float -> rate:float -> unit
(** Append a rate change effective from [now]. [now] must not precede the
    latest existing breakpoint; [rate] must be positive. Setting a rate at
    exactly the latest breakpoint replaces that breakpoint's rate. *)

val start_time : t -> float
val last_breakpoint : t -> float
(** Real time of the most recent breakpoint. *)

val breakpoint_count : t -> int
(** Number of segments. Monotone under [set_rate] except when a rate is
    replaced at the latest breakpoint — callers caching segment data (the
    engine's per-node segment columns) must invalidate on that path
    themselves. *)

val segment : t -> now:float -> float * float * float * float
(** [(t_i, v_i, r_i, t_end)] of the segment containing [now]:
    [value t ~now' = v_i +. r_i *. (now' -. t_i)] bit-exactly for any
    [now'] in [[t_i, t_end)]; [t_end] is [infinity] on the last segment.
    The engine uses this to keep struct-of-arrays clock columns hot instead
    of re-running the segment search per read. *)

val breakpoints : t -> (float * float * float) list
(** [(real_time, clock_value, rate)] per segment, oldest first. For tests
    and debugging. *)
