type t = {
  mutable times : float array; (* breakpoint real times, strictly increasing *)
  mutable values : float array; (* clock value at each breakpoint *)
  mutable rates : float array; (* rate from breakpoint i to i+1 (last: to inf) *)
  mutable len : int;
}

let create ?(h0 = 0.) ~t0 ~rate () =
  if rate <= 0. then invalid_arg "Hardware_clock.create: rate must be > 0";
  {
    times = Array.make 8 t0;
    values = Array.make 8 h0;
    rates = Array.make 8 rate;
    len = 1;
  }

let ensure_capacity t =
  if t.len = Array.length t.times then begin
    let ncap = 2 * t.len in
    let grow a = Array.append a (Array.make (ncap - t.len) a.(0)) in
    t.times <- grow t.times;
    t.values <- grow t.values;
    t.rates <- grow t.rates
  end

(* Index of the segment containing [now]: the last breakpoint with time <=
   now. Queries cluster at the live end, so check it before binary search. *)
let segment_index t now =
  if now >= t.times.(t.len - 1) then t.len - 1
  else begin
    let lo = ref 0 and hi = ref (t.len - 1) in
    (* invariant: times.(lo) <= now < times.(hi) *)
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if t.times.(mid) <= now then lo := mid else hi := mid
    done;
    !lo
  end

let value t ~now =
  if now < t.times.(0) then
    invalid_arg "Hardware_clock.value: time before clock start";
  let i = segment_index t now in
  t.values.(i) +. (t.rates.(i) *. (now -. t.times.(i)))

let inverse t ~h =
  if h < t.values.(0) then
    invalid_arg "Hardware_clock.inverse: value before clock start";
  let i =
    if h >= t.values.(t.len - 1) then t.len - 1
    else begin
      let lo = ref 0 and hi = ref (t.len - 1) in
      while !hi - !lo > 1 do
        let mid = (!lo + !hi) / 2 in
        if t.values.(mid) <= h then lo := mid else hi := mid
      done;
      !lo
    end
  in
  t.times.(i) +. ((h -. t.values.(i)) /. t.rates.(i))

let rate_at t ~now =
  if now < t.times.(0) then
    invalid_arg "Hardware_clock.rate_at: time before clock start";
  t.rates.(segment_index t now)

let set_rate t ~now ~rate =
  if rate <= 0. then invalid_arg "Hardware_clock.set_rate: rate must be > 0";
  let last = t.times.(t.len - 1) in
  if now < last then
    invalid_arg "Hardware_clock.set_rate: breakpoint in the past";
  if now = last then t.rates.(t.len - 1) <- rate
  else begin
    let v = value t ~now in
    ensure_capacity t;
    t.times.(t.len) <- now;
    t.values.(t.len) <- v;
    t.rates.(t.len) <- rate;
    t.len <- t.len + 1
  end

let start_time t = t.times.(0)
let last_breakpoint t = t.times.(t.len - 1)
let breakpoint_count t = t.len

let segment t ~now =
  if now < t.times.(0) then
    invalid_arg "Hardware_clock.segment: time before clock start";
  let i = segment_index t now in
  let until = if i = t.len - 1 then infinity else t.times.(i + 1) in
  (t.times.(i), t.values.(i), t.rates.(i), until)

let breakpoints t =
  List.init t.len (fun i -> (t.times.(i), t.values.(i), t.rates.(i)))
