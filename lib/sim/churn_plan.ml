module Graph = Gcs_graph.Graph
module Prng = Gcs_util.Prng

type process =
  | Edge_up of { at : float; edges : Fault_plan.edge_spec }
  | Edge_down of { at : float; edges : Fault_plan.edge_spec }
  | Flap of {
      from_ : float;
      until : float;
      up_mean : float;
      down_mean : float;
      edges : Fault_plan.edge_spec;
    }
  | Grow of { from_ : float; until : float; edges : Fault_plan.edge_spec }
  | Shrink of { from_ : float; until : float; edges : Fault_plan.edge_spec }

type t = process list

let empty = []
let processes t = t

let process_start = function
  | Edge_up { at; _ } | Edge_down { at; _ } -> at
  | Flap { from_; _ } | Grow { from_; _ } | Shrink { from_; _ } -> from_

let of_processes ps =
  List.stable_sort
    (fun a b -> Float.compare (process_start a) (process_start b))
    ps

(* Rendering *)

let f = Printf.sprintf "%g"

let process_to_string = function
  | Edge_up { at; edges } ->
      Printf.sprintf "edge-up@%s:%s" (f at) (Fault_plan.edge_spec_to_string edges)
  | Edge_down { at; edges } ->
      Printf.sprintf "edge-down@%s:%s" (f at)
        (Fault_plan.edge_spec_to_string edges)
  | Flap { from_; until; up_mean; down_mean; edges } ->
      Printf.sprintf "flap@%s..%s:up=%s:down=%s%s" (f from_) (f until)
        (f up_mean) (f down_mean)
        (match edges with
        | Fault_plan.All_edges -> ""
        | e -> ":" ^ Fault_plan.edge_spec_to_string e)
  | Grow { from_; until; edges } ->
      Printf.sprintf "grow@%s..%s:%s" (f from_) (f until)
        (Fault_plan.edge_spec_to_string edges)
  | Shrink { from_; until; edges } ->
      Printf.sprintf "shrink@%s..%s:%s" (f from_) (f until)
        (Fault_plan.edge_spec_to_string edges)

let to_string t = String.concat ";" (List.map process_to_string t)

(* Parsing; mirrors Fault_plan's grammar machinery. *)

let ( let* ) = Result.bind
let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> err "%s: expected a number, got %S" what s

(* "T1..T2": a float may contain a single '.', so the first ".." pair is
   the separator. *)
let parse_time_range s =
  let rec find j =
    if j + 1 >= String.length s then None
    else if s.[j] = '.' && s.[j + 1] = '.' then Some j
    else find (j + 1)
  in
  match find 0 with
  | Some j ->
      let* a = parse_float "window start" (String.sub s 0 j) in
      let* b =
        parse_float "window end"
          (String.sub s (j + 2) (String.length s - j - 2))
      in
      Ok (a, b)
  | None -> err "expected T1..T2, got %S" s

let find_kv fields key =
  List.find_map
    (fun field ->
      match String.index_opt field '=' with
      | Some i when String.sub field 0 i = key ->
          Some (String.sub field (i + 1) (String.length field - i - 1))
      | _ -> None)
    fields

let require_kv what fields key =
  match find_kv fields key with
  | Some v -> Ok v
  | None -> err "%s: missing %s=..." what key

let edge_spec_of_fields ~default fields =
  match
    List.find_opt
      (fun field ->
        field = "all"
        || (String.length field > 6 && String.sub field 0 6 = "edges=")
        || (String.length field > 4 && String.sub field 0 4 = "cut="))
      fields
  with
  | Some field -> Fault_plan.edge_spec_of_string field
  | None -> (
      match default with
      | Some d -> Ok d
      | None -> err "missing edge set (all | edges=U-V,... | cut=V,...)")

let parse_process s =
  let s = String.trim s in
  match String.index_opt s '@' with
  | None -> err "churn process %S: expected KIND@TIME[:...]" s
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.split_on_char ':' rest with
      | [] -> err "churn process %S: missing time" s
      | time_field :: fields -> (
          match kind with
          | "edge-up" | "edge-down" ->
              let* at = parse_float (kind ^ " time") time_field in
              let* edges = edge_spec_of_fields ~default:None fields in
              Ok
                (if kind = "edge-up" then Edge_up { at; edges }
                 else Edge_down { at; edges })
          | "flap" ->
              let* from_, until = parse_time_range time_field in
              let* up_mean =
                Result.bind (require_kv "flap" fields "up")
                  (parse_float "flap up")
              in
              let* down_mean =
                Result.bind (require_kv "flap" fields "down")
                  (parse_float "flap down")
              in
              let* edges =
                edge_spec_of_fields ~default:(Some Fault_plan.All_edges) fields
              in
              Ok (Flap { from_; until; up_mean; down_mean; edges })
          | "grow" ->
              let* from_, until = parse_time_range time_field in
              let* edges = edge_spec_of_fields ~default:None fields in
              Ok (Grow { from_; until; edges })
          | "shrink" ->
              let* from_, until = parse_time_range time_field in
              let* edges = edge_spec_of_fields ~default:None fields in
              Ok (Shrink { from_; until; edges })
          | k -> err "unknown churn process %S" k))

let of_string s =
  let chunks =
    List.filter (fun c -> String.trim c <> "") (String.split_on_char ';' s)
  in
  if chunks = [] then err "empty churn plan"
  else
    let* ps =
      List.fold_left
        (fun acc chunk ->
          let* acc = acc in
          let* p = parse_process chunk in
          Ok (p :: acc))
        (Ok []) chunks
    in
    Ok (of_processes (List.rev ps))

(* Validation *)

(* What a process asserts about an edge, as a time interval it claims
   exclusively (generative processes) or a point event (explicit ones).
   Growing networks own their edges from t = 0 (the edge must be absent
   before it appears); shrinking ones own them forever after. *)
type claim =
  | At of float * bool (* explicit event: time, direction (up?) *)
  | Over of float * float * string (* generative: [lo, hi), label *)

let claims graph p =
  let ids edges = Fault_plan.resolve_edges graph edges in
  match p with
  | Edge_up { at; edges } -> List.map (fun e -> (e, At (at, true))) (ids edges)
  | Edge_down { at; edges } ->
      List.map (fun e -> (e, At (at, false))) (ids edges)
  | Flap { from_; until; edges; _ } ->
      List.map (fun e -> (e, Over (from_, until, "flap"))) (ids edges)
  | Grow { until; edges; _ } ->
      List.map (fun e -> (e, Over (0., until, "grow"))) (ids edges)
  | Shrink { from_; edges; _ } ->
      List.map (fun e -> (e, Over (from_, infinity, "shrink"))) (ids edges)

let claim_conflict a b =
  match (a, b) with
  | At (t1, d1), At (t2, d2) -> t1 = t2 && d1 <> d2
  | At (t, _), Over (lo, hi, _) | Over (lo, hi, _), At (t, _) ->
      lo <= t && t < hi
  | Over (lo1, hi1, _), Over (lo2, hi2, _) -> lo1 < hi2 && lo2 < hi1

let claim_label = function
  | At (t, true) -> Printf.sprintf "edge-up@%g" t
  | At (t, false) -> Printf.sprintf "edge-down@%g" t
  | Over (lo, hi, l) -> Printf.sprintf "%s over %g..%g" l lo hi

let validate t graph =
  let check_time what at =
    if at < 0. || not (Float.is_finite at) then
      err "%s: time %g must be finite and >= 0" what at
    else Ok ()
  in
  let check_window what from_ until =
    let* () = check_time what from_ in
    if until <= from_ then
      err "%s: window %g..%g is empty or backwards" what from_ until
    else Ok ()
  in
  let check_edges what edges =
    match Fault_plan.resolve_edges graph edges with
    | _ -> Ok ()
    | exception Invalid_argument msg -> err "%s: %s" what msg
  in
  let per_process =
    List.fold_left
      (fun acc p ->
        let* () = acc in
        match p with
        | Edge_up { at; edges } ->
            let* () = check_time "edge-up" at in
            check_edges "edge-up" edges
        | Edge_down { at; edges } ->
            let* () = check_time "edge-down" at in
            check_edges "edge-down" edges
        | Flap { from_; until; up_mean; down_mean; edges } ->
            let* () = check_window "flap" from_ until in
            let* () =
              if up_mean <= 0. || not (Float.is_finite up_mean) then
                err "flap: up mean %g must be finite and > 0" up_mean
              else Ok ()
            in
            let* () =
              if down_mean <= 0. || not (Float.is_finite down_mean) then
                err "flap: down mean %g must be finite and > 0" down_mean
              else Ok ()
            in
            check_edges "flap" edges
        | Grow { from_; until; edges } ->
            let* () = check_window "grow" from_ until in
            check_edges "grow" edges
        | Shrink { from_; until; edges } ->
            let* () = check_window "shrink" from_ until in
            check_edges "shrink" edges)
      (Ok ()) t
  in
  let* () = per_process in
  (* Cross-process coherence: no edge may be claimed twice over overlapping
     time — a generative process owns its edges for its whole claim, and
     two explicit events cannot contradict each other at one instant. *)
  let by_edge = Hashtbl.create 16 in
  List.fold_left
    (fun acc p ->
      let* () = acc in
      List.fold_left
        (fun acc (e, c) ->
          let* () = acc in
          let prior = Hashtbl.find_all by_edge e in
          match List.find_opt (fun c' -> claim_conflict c c') prior with
          | Some c' ->
              let u, v = Graph.edge_endpoints graph e in
              err "churn: edge %d-%d claimed by both %s and %s" u v
                (claim_label c') (claim_label c)
          | None ->
              Hashtbl.add by_edge e c;
              Ok ())
        (Ok ()) (claims graph p))
    (Ok ()) t

(* Compilation *)

let compile t ~graph ~seed ~horizon =
  (match validate t graph with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Churn_plan.compile: " ^ msg));
  let rng = Prng.create ~seed:(seed lxor 0xC409) in
  let transitions = ref [] (* (time, edge, up?), reversed gen order *) in
  let add at e up = transitions := (at, e, up) :: !transitions in
  let initially_down = Array.make (Graph.m graph) false in
  let spread from_ until k i =
    (* Evenly spread arrival/departure instants, strictly inside the
       window, deterministic in the edge's position. *)
    from_ +. ((float_of_int i +. 1.) /. (float_of_int k +. 1.) *. (until -. from_))
  in
  List.iter
    (fun p ->
      (* One stream per process regardless of kind, so adding a flap never
         shifts the draws of a later one. *)
      let prng_p = Prng.split rng in
      match p with
      | Edge_up { at; edges } ->
          List.iter
            (fun e -> add at e true)
            (Fault_plan.resolve_edges graph edges)
      | Edge_down { at; edges } ->
          List.iter
            (fun e -> add at e false)
            (Fault_plan.resolve_edges graph edges)
      | Grow { from_; until; edges } ->
          let ids = Fault_plan.resolve_edges graph edges in
          let k = List.length ids in
          List.iteri
            (fun i e ->
              initially_down.(e) <- true;
              add (spread from_ until k i) e true)
            ids
      | Shrink { from_; until; edges } ->
          let ids = Fault_plan.resolve_edges graph edges in
          let k = List.length ids in
          List.iteri (fun i e -> add (spread from_ until k i) e false) ids
      | Flap { from_; until; up_mean; down_mean; edges } ->
          let ids = Fault_plan.resolve_edges graph edges in
          let streams = Prng.split_n prng_p (List.length ids) in
          List.iteri
            (fun i e ->
              let r = streams.(i) in
              let up = ref true in
              let t = ref (from_ +. Prng.exponential r ~rate:(1. /. up_mean)) in
              while !t < until do
                up := not !up;
                add !t e !up;
                let mean = if !up then up_mean else down_mean in
                t := !t +. Prng.exponential r ~rate:(1. /. mean)
              done;
              if not !up then add until e true)
            ids)
    t;
  (* Replay the transitions in time order against the edge state the engine
     will actually hold, eliding every no-op: an inert plan compiles to no
     events at all, which is what keeps unchurned runs bit-identical. *)
  let state = Array.init (Graph.m graph) (fun e -> not initially_down.(e)) in
  let trans =
    List.stable_sort
      (fun (a, _, _) (b, _, _) -> Float.compare a b)
      (List.rev !transitions)
  in
  let events = ref [] in
  Array.iteri
    (fun e down ->
      if down then
        events :=
          Fault_plan.Link_partition
            { at = 0.; edges = Fault_plan.Edges [ Graph.edge_endpoints graph e ] }
          :: !events)
    initially_down;
  List.iter
    (fun (at, e, up) ->
      if state.(e) <> up && at <= horizon then begin
        state.(e) <- up;
        let edges = Fault_plan.Edges [ Graph.edge_endpoints graph e ] in
        events :=
          (if up then Fault_plan.Link_heal { at; edges }
           else Fault_plan.Link_partition { at; edges })
          :: !events
      end)
    trans;
  match List.rev !events with
  | [] -> None
  | evs -> Some (Fault_plan.of_events evs)

(* Up-window extraction from a (compiled) fault plan. *)

let up_windows plan ~graph ~horizon =
  let m = Graph.m graph in
  let touched = Array.make m false in
  let up = Array.make m true in
  let since = Array.make m 0. in
  let acc = Array.make m [] in
  List.iter
    (fun ev ->
      match ev with
      | Fault_plan.Link_partition { at; edges } ->
          List.iter
            (fun e ->
              touched.(e) <- true;
              if up.(e) then begin
                up.(e) <- false;
                acc.(e) <- (since.(e), at) :: acc.(e)
              end)
            (Fault_plan.resolve_edges graph edges)
      | Fault_plan.Link_heal { at; edges } ->
          List.iter
            (fun e ->
              touched.(e) <- true;
              if not up.(e) then begin
                up.(e) <- true;
                since.(e) <- at
              end)
            (Fault_plan.resolve_edges graph edges)
      | _ -> ())
    (Fault_plan.events plan);
  let out = ref [] in
  for e = m - 1 downto 0 do
    if touched.(e) then begin
      let ivs = if up.(e) then (since.(e), horizon) :: acc.(e) else acc.(e) in
      out := (Graph.edge_endpoints graph e, List.rev ivs) :: !out
    end
  done;
  !out

(* Mobility-derived schedules *)

let of_mobility mob ~graph ~range ~sample_period ~horizon =
  if sample_period <= 0. then
    invalid_arg "Churn_plan.of_mobility: sample_period must be > 0";
  let in_range e now =
    let a, b = Graph.edge_endpoints graph e in
    Mobility.distance mob ~a ~b ~now <= range
  in
  let m = Graph.m graph in
  let up = Array.init m (fun e -> in_range e 0.) in
  let ps = ref [] in
  let flip at e nup =
    let edges = Fault_plan.Edges [ Graph.edge_endpoints graph e ] in
    ps :=
      (if nup then Edge_up { at; edges } else Edge_down { at; edges }) :: !ps
  in
  for e = 0 to m - 1 do
    if not up.(e) then flip 0. e false
  done;
  let t = ref sample_period in
  while !t <= horizon +. 1e-9 do
    let now = !t in
    for e = 0 to m - 1 do
      let nup = in_range e now in
      if nup <> up.(e) then begin
        up.(e) <- nup;
        flip now e nup
      end
    done;
    t := !t +. sample_period
  done;
  of_processes (List.rev !ps)
