(** Declarative, composable fault plans.

    A fault plan is a time-sorted schedule of fault events injected into a
    run from outside the algorithm: link partitions and heals, crash-stop
    node failures with (optionally state-wiping) recovery, message-level
    tampering windows (duplication, bounded reordering delay, beacon-value
    corruption — a weak Byzantine mode), and clock faults (value jumps and
    out-of-band rate changes). Plans are plain data: they carry no
    randomness of their own — probabilistic faults (duplication, corruption)
    draw from dedicated per-edge PRNG streams inside the engine, so a run
    under a plan is reproducible bit-for-bit from its seed and identical
    under {!Gcs_core.Parallel_run} sharding.

    Plans serialize to and from a compact textual spec for the CLI
    ([gcs-cli faults --plan ...], [gcs-cli sweep --fault-plan ...]):

    {v
    PLAN  ::= EVENT [';' EVENT ...]
    EVENT ::= partition@T:EDGES          edges go down at time T
            | heal@T:EDGES               edges come back up
            | crash@T:node=V             crash-stop (no timers, no delivery)
            | recover@T:node=V[:wipe]    rejoin; ':wipe' rebuilds node state
            | dup@T1..T2:p=P[:EDGES]     duplicate msgs with prob P
            | reorder@T1..T2:p=P:extra=X[:EDGES]
                                         prob-P extra delay in [0, X]
            | corrupt@T1..T2:p=P:mag=M[:EDGES]
                                         prob-P value perturbation in [-M, M]
            | jump@T:node=V:delta=X      logical clock jumps by X
            | rate@T:node=V:rate=R       hardware clock rate forced to R
    EDGES ::= all
            | edges=U-V[,U-V...]         explicit endpoint pairs
            | cut=V[,V...]               every edge between the set and
                                         its complement (a graph cut)
    v} *)

(** Which edges an event applies to; resolved against the run's graph at
    install time. *)
type edge_spec =
  | All_edges
  | Edges of (int * int) list  (** explicit endpoint pairs *)
  | Cut of int list
      (** all edges with exactly one endpoint in the given node set *)

type event =
  | Link_partition of { at : float; edges : edge_spec }
  | Link_heal of { at : float; edges : edge_spec }
  | Node_crash of { at : float; node : int }
  | Node_recover of { at : float; node : int; wipe : bool }
  | Msg_duplicate of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
    }
  | Msg_reorder of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
      extra : float;  (** extra delay drawn uniformly from [0, extra] *)
    }
  | Msg_corrupt of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
      magnitude : float;  (** perturbation drawn from [-magnitude, magnitude] *)
    }
  | Clock_jump of { at : float; node : int; delta : float }
  | Clock_rate_fault of { at : float; node : int; rate : float }

type t
(** A plan: events sorted by start time (stable on ties). *)

val empty : t
val events : t -> event list

val of_events : event list -> t
(** Sorts by start time, keeping the given order on ties. *)

val compose : t -> t -> t
(** Merge two plans into one schedule; on equal times, events of the first
    plan come first. *)

val event_start : event -> float

val to_string : t -> string
(** Render in the textual spec syntax; [of_string (to_string p)] has the
    same events as [p]. *)

val of_string : string -> (t, string) result
(** Parse the textual spec syntax (see module doc). *)

val validate : t -> Gcs_graph.Graph.t -> (unit, string) result
(** Check every event against a graph: node ids in range, edge pairs
    actually adjacent, times non-negative and ranges ordered, probabilities
    in [0, 1], non-negative delays/magnitudes, positive rates. *)

val resolve_edges : Gcs_graph.Graph.t -> edge_spec -> int list
(** Edge ids an [edge_spec] names, sorted, without duplicates. Raises
    [Invalid_argument] on a pair that is not an edge (use {!validate}
    first). *)

(** One contiguous fault exposure, extracted from a plan for recovery
    metrics: the real-time window during which a set of edges was affected
    by one fault. *)
type episode = {
  label : string;  (** e.g. ["partition"], ["crash:5 (wipe)"], ["corrupt"] *)
  start : float;
  stop : float option;  (** heal/recover/window-end; [None] if never *)
  edges : int list;  (** affected edge ids (incident edges for node faults) *)
}

val episodes : t -> Gcs_graph.Graph.t -> episode list
(** Extract fault episodes, sorted by start time: maximal down-intervals per
    partitioned edge group, crash-to-recover intervals per node, tampering
    windows, and instantaneous clock faults (for a rate fault the episode
    closes at the next rate event on the same node, if any). *)
