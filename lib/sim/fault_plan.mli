(** Declarative, composable fault plans.

    A fault plan is a time-sorted schedule of fault events injected into a
    run from outside the algorithm: link partitions and heals, crash-stop
    node failures with (optionally state-wiping) recovery, message-level
    tampering windows (duplication, bounded reordering delay, beacon-value
    corruption — a weak Byzantine mode), and clock faults (value jumps and
    out-of-band rate changes). Plans are plain data: they carry no
    randomness of their own — probabilistic faults (duplication, corruption)
    draw from dedicated per-edge PRNG streams inside the engine, so a run
    under a plan is reproducible bit-for-bit from its seed and identical
    under {!Gcs_core.Parallel_run} sharding.

    Plans serialize to and from a compact textual spec for the CLI
    ([gcs-cli faults --plan ...], [gcs-cli sweep --fault-plan ...]):

    {v
    PLAN  ::= EVENT [';' EVENT ...]
    EVENT ::= partition@T:EDGES          edges go down at time T
            | heal@T:EDGES               edges come back up
            | crash@T:node=V             crash-stop (no timers, no delivery)
            | recover@T:node=V[:wipe]    rejoin; ':wipe' rebuilds node state
            | dup@T1..T2:p=P[:EDGES]     duplicate msgs with prob P
            | reorder@T1..T2:p=P:extra=X[:EDGES]
                                         prob-P extra delay in [0, X]
            | corrupt@T1..T2:p=P:mag=M[:EDGES]
                                         prob-P value perturbation in [-M, M]
            | jump@T:node=V:delta=X      logical clock jumps by X
            | rate@T:node=V:rate=R       hardware clock rate forced to R
            | byz@T1..T2:node=V:STRAT    node V lies in its outgoing beacons
    STRAT ::= off=X                      advertise clock + X (constant lie)
            | rate=R                     lie grows R per unit time in window
            | mag=M                      fresh lie in [-M, M] per message
            | equiv=M                    equivocate: +M to higher-id
                                         neighbors, -M to lower-id ones
    EDGES ::= all
            | edges=U-V[,U-V...]         explicit endpoint pairs
            | cut=V[,V...]               every edge between the set and
                                         its complement (a graph cut)
    v} *)

(** Which edges an event applies to; resolved against the run's graph at
    install time. *)
type edge_spec =
  | All_edges
  | Edges of (int * int) list  (** explicit endpoint pairs *)
  | Cut of int list
      (** all edges with exactly one endpoint in the given node set *)

type event =
  | Link_partition of { at : float; edges : edge_spec }
  | Link_heal of { at : float; edges : edge_spec }
  | Node_crash of { at : float; node : int }
  | Node_recover of { at : float; node : int; wipe : bool }
  | Msg_duplicate of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
    }
  | Msg_reorder of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
      extra : float;  (** extra delay drawn uniformly from [0, extra] *)
    }
  | Msg_corrupt of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
      magnitude : float;  (** perturbation drawn from [-magnitude, magnitude] *)
    }
  | Clock_jump of { at : float; node : int; delta : float }
  | Clock_rate_fault of { at : float; node : int; rate : float }
  | Byzantine of {
      from_ : float;
      until : float;
      node : int;
      strategy : byz_strategy;
    }
      (** During [[from_, until)] every value the node sends is rewritten by
          [strategy]. The node itself keeps running the protocol — only what
          the rest of the network sees is a lie. *)

(** How a Byzantine node lies. Random lies draw from a dedicated per-node
    PRNG stream split after every other stream, so plans without Byzantine
    events are bit-identical to runs of an engine that knows nothing about
    them. *)
and byz_strategy =
  | Lie_constant of float  (** advertised value + offset *)
  | Lie_drifting of float  (** offset grows linearly from window start *)
  | Lie_random of float  (** fresh offset in [-mag, mag] per message *)
  | Lie_equivocate of float
      (** +mag to higher-id neighbors, -mag to lower-id ones: no two sides
          of the liar ever see consistent values *)

type t
(** A plan: events sorted by start time (stable on ties). *)

val empty : t
val events : t -> event list

val of_events : event list -> t
(** Sorts by start time, keeping the given order on ties. *)

val compose : t -> t -> t
(** Merge two plans into one schedule; on equal times, events of the first
    plan come first. *)

val event_start : event -> float

val to_string : t -> string
(** Render in the textual spec syntax; [of_string (to_string p)] has the
    same events as [p]. *)

val of_string : string -> (t, string) result
(** Parse the textual spec syntax (see module doc). *)

val validate : t -> Gcs_graph.Graph.t -> (unit, string) result
(** Check every event against a graph: node ids in range, edge pairs
    actually adjacent, times non-negative and ranges ordered, probabilities
    in [0, 1], non-negative delays/magnitudes, positive rates. Also rejects
    incoherent Byzantine schedules: two overlapping Byzantine windows on
    one node, or a Byzantine window overlapping a crash interval of the
    same node (a crashed node sends nothing to rewrite). *)

val byzantine_nodes : t -> int list
(** Nodes with at least one Byzantine window, sorted, without duplicates. *)

val correct_edges : t -> Gcs_graph.Graph.t -> int list
(** Edge ids whose both endpoints are correct (never Byzantine in this
    plan), sorted. Byzantine episodes cover exactly these edges, so
    recovery metrics never aggregate skew against a liar's own clock. *)

val resolve_edges : Gcs_graph.Graph.t -> edge_spec -> int list
(** Edge ids an [edge_spec] names, sorted, without duplicates. Raises
    [Invalid_argument] on a pair that is not an edge (use {!validate}
    first). *)

val edge_spec_to_string : edge_spec -> string
(** Render an edge set in the textual syntax ([all] | [edges=U-V,...] |
    [cut=V,...]) — shared with {!Churn_plan}'s grammar. *)

val edge_spec_of_string : string -> (edge_spec, string) result
(** Parse {!edge_spec_to_string}'s output. *)

(** One contiguous fault exposure, extracted from a plan for recovery
    metrics: the real-time window during which a set of edges was affected
    by one fault. *)
type episode = {
  label : string;  (** e.g. ["partition"], ["crash:5 (wipe)"], ["corrupt"] *)
  start : float;
  stop : float option;  (** heal/recover/window-end; [None] if never *)
  edges : int list;  (** affected edge ids (incident edges for node faults) *)
}

val episodes : t -> Gcs_graph.Graph.t -> episode list
(** Extract fault episodes, sorted by start time: maximal down-intervals per
    partitioned edge group, crash-to-recover intervals per node, tampering
    windows, and instantaneous clock faults (for a rate fault the episode
    closes at the next rate event on the same node, if any). *)
