module Prng = Gcs_util.Prng

type bounds = { d_min : float; d_max : float }

let bounds ~d_min ~d_max =
  if d_min < 0. || d_max < d_min then
    invalid_arg "Delay_model.bounds: need 0 <= d_min <= d_max";
  { d_min; d_max }

let uncertainty b = b.d_max -. b.d_min

type chooser = edge:int -> src:int -> dst:int -> now:float -> float

type t = {
  edge_bounds : int -> bounds;
  draw_fn :
    edge:int -> src:int -> dst:int -> now:float -> rng:Prng.t -> float;
  drop_fn : edge:int -> src:int -> dst:int -> now:float -> float;
}

let edge_bounds t e = t.edge_bounds e

let no_drop ~edge:_ ~src:_ ~dst:_ ~now:_ = 0.

let drop_probability t ~edge ~src ~dst ~now = t.drop_fn ~edge ~src ~dst ~now

let with_loss drop_fn t =
  {
    t with
    drop_fn =
      (fun ~edge ~src ~dst ~now ->
        Float.min 1. (Float.max 0. (drop_fn ~edge ~src ~dst ~now)));
  }

let clamp b d = Float.min b.d_max (Float.max b.d_min d)

let draw t ~edge ~src ~dst ~now ~rng =
  clamp (t.edge_bounds edge) (t.draw_fn ~edge ~src ~dst ~now ~rng)

let fixed b =
  {
    edge_bounds = (fun _ -> b);
    draw_fn = (fun ~edge:_ ~src:_ ~dst:_ ~now:_ ~rng:_ -> b.d_max);
    drop_fn = no_drop;
  }

let midpoint b =
  let d = 0.5 *. (b.d_min +. b.d_max) in
  {
    edge_bounds = (fun _ -> b);
    draw_fn = (fun ~edge:_ ~src:_ ~dst:_ ~now:_ ~rng:_ -> d);
    drop_fn = no_drop;
  }

let uniform b =
  {
    edge_bounds = (fun _ -> b);
    draw_fn =
      (fun ~edge:_ ~src:_ ~dst:_ ~now:_ ~rng ->
        Prng.uniform rng ~lo:b.d_min ~hi:b.d_max);
    drop_fn = no_drop;
  }

let per_edge f =
  {
    edge_bounds = f;
    draw_fn =
      (fun ~edge ~src:_ ~dst:_ ~now:_ ~rng ->
        let b = f edge in
        Prng.uniform rng ~lo:b.d_min ~hi:b.d_max);
    drop_fn = no_drop;
  }

let controlled b ~default chooser =
  {
    edge_bounds = (fun _ -> b);
    draw_fn =
      (fun ~edge ~src ~dst ~now ~rng ->
        match !chooser with
        | Some choose -> choose ~edge ~src ~dst ~now
        | None -> default.draw_fn ~edge ~src ~dst ~now ~rng);
    (* Keep the base model's loss law so a controlled adversary can overlay
       a lossy model rather than silently disabling its drops. *)
    drop_fn = default.drop_fn;
  }
