module Graph = Gcs_graph.Graph

type edge_spec =
  | All_edges
  | Edges of (int * int) list
  | Cut of int list

type event =
  | Link_partition of { at : float; edges : edge_spec }
  | Link_heal of { at : float; edges : edge_spec }
  | Node_crash of { at : float; node : int }
  | Node_recover of { at : float; node : int; wipe : bool }
  | Msg_duplicate of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
    }
  | Msg_reorder of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
      extra : float;
    }
  | Msg_corrupt of {
      from_ : float;
      until : float;
      edges : edge_spec;
      prob : float;
      magnitude : float;
    }
  | Clock_jump of { at : float; node : int; delta : float }
  | Clock_rate_fault of { at : float; node : int; rate : float }
  | Byzantine of {
      from_ : float;
      until : float;
      node : int;
      strategy : byz_strategy;
    }

and byz_strategy =
  | Lie_constant of float
  | Lie_drifting of float
  | Lie_random of float
  | Lie_equivocate of float

type t = event list

let empty = []
let events t = t

let event_start = function
  | Link_partition { at; _ }
  | Link_heal { at; _ }
  | Node_crash { at; _ }
  | Node_recover { at; _ }
  | Clock_jump { at; _ }
  | Clock_rate_fault { at; _ } ->
      at
  | Msg_duplicate { from_; _ } | Msg_reorder { from_; _ }
  | Msg_corrupt { from_; _ }
  | Byzantine { from_; _ } ->
      from_

let of_events evs =
  List.stable_sort (fun a b -> Float.compare (event_start a) (event_start b)) evs

let compose a b = of_events (a @ b)

(* Rendering *)

let f = Printf.sprintf "%g"

let edge_spec_to_string = function
  | All_edges -> "all"
  | Edges pairs ->
      "edges="
      ^ String.concat ","
          (List.map (fun (u, v) -> Printf.sprintf "%d-%d" u v) pairs)
  | Cut nodes ->
      "cut=" ^ String.concat "," (List.map string_of_int nodes)

let event_to_string = function
  | Link_partition { at; edges } ->
      Printf.sprintf "partition@%s:%s" (f at) (edge_spec_to_string edges)
  | Link_heal { at; edges } ->
      Printf.sprintf "heal@%s:%s" (f at) (edge_spec_to_string edges)
  | Node_crash { at; node } -> Printf.sprintf "crash@%s:node=%d" (f at) node
  | Node_recover { at; node; wipe } ->
      Printf.sprintf "recover@%s:node=%d%s" (f at) node
        (if wipe then ":wipe" else "")
  | Msg_duplicate { from_; until; edges; prob } ->
      Printf.sprintf "dup@%s..%s:p=%s%s" (f from_) (f until) (f prob)
        (match edges with
        | All_edges -> ""
        | e -> ":" ^ edge_spec_to_string e)
  | Msg_reorder { from_; until; edges; prob; extra } ->
      Printf.sprintf "reorder@%s..%s:p=%s:extra=%s%s" (f from_) (f until)
        (f prob) (f extra)
        (match edges with
        | All_edges -> ""
        | e -> ":" ^ edge_spec_to_string e)
  | Msg_corrupt { from_; until; edges; prob; magnitude } ->
      Printf.sprintf "corrupt@%s..%s:p=%s:mag=%s%s" (f from_) (f until)
        (f prob) (f magnitude)
        (match edges with
        | All_edges -> ""
        | e -> ":" ^ edge_spec_to_string e)
  | Clock_jump { at; node; delta } ->
      Printf.sprintf "jump@%s:node=%d:delta=%s" (f at) node (f delta)
  | Clock_rate_fault { at; node; rate } ->
      Printf.sprintf "rate@%s:node=%d:rate=%s" (f at) node (f rate)
  | Byzantine { from_; until; node; strategy } ->
      let strat =
        match strategy with
        | Lie_constant off -> Printf.sprintf "off=%s" (f off)
        | Lie_drifting rate -> Printf.sprintf "rate=%s" (f rate)
        | Lie_random mag -> Printf.sprintf "mag=%s" (f mag)
        | Lie_equivocate mag -> Printf.sprintf "equiv=%s" (f mag)
      in
      Printf.sprintf "byz@%s..%s:node=%d:%s" (f from_) (f until) node strat

let to_string t = String.concat ";" (List.map event_to_string t)

(* Parsing *)

let ( let* ) = Result.bind

let err fmt = Printf.ksprintf (fun s -> Error s) fmt

let parse_float what s =
  match float_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> err "%s: expected a number, got %S" what s

let parse_int what s =
  match int_of_string_opt (String.trim s) with
  | Some x -> Ok x
  | None -> err "%s: expected an integer, got %S" what s

(* "T1..T2": a float may contain a single '.', so look for the first ".."
   pair as the separator. *)
let parse_time_range s =
  let rec find j =
    if j + 1 >= String.length s then None
    else if s.[j] = '.' && s.[j + 1] = '.' then Some j
    else find (j + 1)
  in
  match find 0 with
  | Some j ->
      let* a = parse_float "window start" (String.sub s 0 j) in
      let* b =
        parse_float "window end"
          (String.sub s (j + 2) (String.length s - j - 2))
      in
      Ok (a, b)
  | None -> err "expected T1..T2, got %S" s

let parse_edge_spec field =
  if field = "all" then Ok All_edges
  else
    match String.index_opt field '=' with
    | None -> err "expected an edge set (all | edges=U-V,... | cut=V,...), got %S" field
    | Some i -> (
        let key = String.sub field 0 i in
        let v = String.sub field (i + 1) (String.length field - i - 1) in
        let items = String.split_on_char ',' v in
        match key with
        | "edges" ->
            let* pairs =
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  match String.split_on_char '-' (String.trim item) with
                  | [ a; b ] ->
                      let* u = parse_int "edge endpoint" a in
                      let* w = parse_int "edge endpoint" b in
                      Ok ((u, w) :: acc)
                  | _ -> err "expected U-V, got %S" item)
                (Ok []) items
            in
            Ok (Edges (List.rev pairs))
        | "cut" ->
            let* nodes =
              List.fold_left
                (fun acc item ->
                  let* acc = acc in
                  let* v = parse_int "cut node" item in
                  Ok (v :: acc))
                (Ok []) items
            in
            Ok (Cut (List.rev nodes))
        | k -> err "unknown edge set kind %S" k)

let edge_spec_of_string = parse_edge_spec

(* Fields are the ':'-separated chunks after "kind@time". Look a key=value
   field up, or detect a bare flag. *)
let find_kv fields key =
  List.find_map
    (fun field ->
      match String.index_opt field '=' with
      | Some i when String.sub field 0 i = key ->
          Some (String.sub field (i + 1) (String.length field - i - 1))
      | _ -> None)
    fields

let require_kv what fields key =
  match find_kv fields key with
  | Some v -> Ok v
  | None -> err "%s: missing %s=..." what key

let edge_spec_of_fields ?(default = None) fields =
  match
    List.find_opt
      (fun field ->
        field = "all"
        || String.length field > 6 && String.sub field 0 6 = "edges="
        || String.length field > 4 && String.sub field 0 4 = "cut=")
      fields
  with
  | Some field -> Result.map Option.some (parse_edge_spec field)
  | None -> Ok default

let parse_event s =
  let s = String.trim s in
  match String.index_opt s '@' with
  | None -> err "event %S: expected KIND@TIME[:...]" s
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      match String.split_on_char ':' rest with
      | [] -> err "event %S: missing time" s
      | time_field :: fields -> (
          match kind with
          | "partition" | "heal" ->
              let* at = parse_float (kind ^ " time") time_field in
              let* edges =
                match fields with
                | [ field ] -> parse_edge_spec field
                | [] -> err "%s: missing edge set" kind
                | _ -> err "%s: expected exactly one edge set" kind
              in
              Ok
                (if kind = "partition" then Link_partition { at; edges }
                 else Link_heal { at; edges })
          | "crash" ->
              let* at = parse_float "crash time" time_field in
              let* node = Result.bind (require_kv "crash" fields "node")
                            (parse_int "crash node") in
              Ok (Node_crash { at; node })
          | "recover" ->
              let* at = parse_float "recover time" time_field in
              let* node = Result.bind (require_kv "recover" fields "node")
                            (parse_int "recover node") in
              let wipe = List.mem "wipe" fields in
              Ok (Node_recover { at; node; wipe })
          | "dup" ->
              let* from_, until = parse_time_range time_field in
              let* prob = Result.bind (require_kv "dup" fields "p")
                            (parse_float "dup p") in
              let* edges = edge_spec_of_fields fields in
              Ok
                (Msg_duplicate
                   {
                     from_;
                     until;
                     edges = Option.value edges ~default:All_edges;
                     prob;
                   })
          | "reorder" ->
              let* from_, until = parse_time_range time_field in
              let* prob = Result.bind (require_kv "reorder" fields "p")
                            (parse_float "reorder p") in
              let* extra = Result.bind (require_kv "reorder" fields "extra")
                             (parse_float "reorder extra") in
              let* edges = edge_spec_of_fields fields in
              Ok
                (Msg_reorder
                   {
                     from_;
                     until;
                     edges = Option.value edges ~default:All_edges;
                     prob;
                     extra;
                   })
          | "corrupt" ->
              let* from_, until = parse_time_range time_field in
              let* prob = Result.bind (require_kv "corrupt" fields "p")
                            (parse_float "corrupt p") in
              let* magnitude = Result.bind (require_kv "corrupt" fields "mag")
                                 (parse_float "corrupt mag") in
              let* edges = edge_spec_of_fields fields in
              Ok
                (Msg_corrupt
                   {
                     from_;
                     until;
                     edges = Option.value edges ~default:All_edges;
                     prob;
                     magnitude;
                   })
          | "jump" ->
              let* at = parse_float "jump time" time_field in
              let* node = Result.bind (require_kv "jump" fields "node")
                            (parse_int "jump node") in
              let* delta = Result.bind (require_kv "jump" fields "delta")
                             (parse_float "jump delta") in
              Ok (Clock_jump { at; node; delta })
          | "rate" ->
              let* at = parse_float "rate time" time_field in
              let* node = Result.bind (require_kv "rate" fields "node")
                            (parse_int "rate node") in
              let* rate = Result.bind (require_kv "rate" fields "rate")
                            (parse_float "rate value") in
              Ok (Clock_rate_fault { at; node; rate })
          | "byz" ->
              let* from_, until = parse_time_range time_field in
              let* node = Result.bind (require_kv "byz" fields "node")
                            (parse_int "byz node") in
              let strat key mk =
                Option.map
                  (fun v -> Result.map mk (parse_float ("byz " ^ key) v))
                  (find_kv fields key)
              in
              let* strategy =
                match
                  List.filter_map Fun.id
                    [
                      strat "off" (fun x -> Lie_constant x);
                      strat "rate" (fun x -> Lie_drifting x);
                      strat "mag" (fun x -> Lie_random x);
                      strat "equiv" (fun x -> Lie_equivocate x);
                    ]
                with
                | [ s ] -> s
                | [] ->
                    err
                      "byz: missing a strategy (one of off=X, rate=R, mag=M, \
                       equiv=M)"
                | _ -> err "byz: expected exactly one strategy field"
              in
              Ok (Byzantine { from_; until; node; strategy })
          | k -> err "unknown fault kind %S" k))

let of_string s =
  let chunks =
    List.filter
      (fun c -> String.trim c <> "")
      (String.split_on_char ';' s)
  in
  if chunks = [] then err "empty fault plan"
  else
    let* evs =
      List.fold_left
        (fun acc chunk ->
          let* acc = acc in
          let* ev = parse_event chunk in
          Ok (ev :: acc))
        (Ok []) chunks
    in
    Ok (of_events (List.rev evs))

(* Validation and resolution *)

let resolve_edges g = function
  | All_edges -> List.init (Graph.m g) Fun.id
  | Edges pairs ->
      List.sort_uniq compare
        (List.map
           (fun (u, v) ->
             if not (Graph.mem_edge g u v) then
               invalid_arg
                 (Printf.sprintf "Fault_plan: %d-%d is not an edge" u v)
             else Graph.edge_at_port g u (Graph.port_of_neighbor g u v))
           pairs)
  | Cut nodes ->
      let inside = Array.make (Graph.n g) false in
      List.iter
        (fun v ->
          if v < 0 || v >= Graph.n g then
            invalid_arg
              (Printf.sprintf "Fault_plan: cut node %d out of range" v);
          inside.(v) <- true)
        nodes;
      List.sort_uniq compare
        (Graph.fold_edges
           (fun e u v acc -> if inside.(u) <> inside.(v) then e :: acc else acc)
           g [])

let validate t g =
  let n = Graph.n g in
  let check_node what v =
    if v < 0 || v >= n then err "%s: node %d out of range [0, %d)" what v n
    else Ok ()
  in
  let check_time what at =
    if at < 0. || not (Float.is_finite at) then
      err "%s: time %g must be finite and >= 0" what at
    else Ok ()
  in
  let check_window what from_ until =
    let* () = check_time what from_ in
    if until < from_ then err "%s: window %g..%g is backwards" what from_ until
    else Ok ()
  in
  let check_prob what p =
    if p < 0. || p > 1. then err "%s: probability %g outside [0, 1]" what p
    else Ok ()
  in
  let check_edges what = function
    | All_edges -> Ok ()
    | Edges pairs ->
        List.fold_left
          (fun acc (u, v) ->
            let* () = acc in
            let* () = check_node what u in
            let* () = check_node what v in
            if not (Graph.mem_edge g u v) then
              err "%s: %d-%d is not an edge" what u v
            else Ok ())
          (Ok ()) pairs
    | Cut nodes ->
        List.fold_left
          (fun acc v ->
            let* () = acc in
            check_node what v)
          (Ok ()) nodes
  in
  let per_event =
  List.fold_left
    (fun acc ev ->
      let* () = acc in
      match ev with
      | Link_partition { at; edges } ->
          let* () = check_time "partition" at in
          check_edges "partition" edges
      | Link_heal { at; edges } ->
          let* () = check_time "heal" at in
          check_edges "heal" edges
      | Node_crash { at; node } ->
          let* () = check_time "crash" at in
          check_node "crash" node
      | Node_recover { at; node; _ } ->
          let* () = check_time "recover" at in
          check_node "recover" node
      | Msg_duplicate { from_; until; edges; prob } ->
          let* () = check_window "dup" from_ until in
          let* () = check_prob "dup" prob in
          check_edges "dup" edges
      | Msg_reorder { from_; until; edges; prob; extra } ->
          let* () = check_window "reorder" from_ until in
          let* () = check_prob "reorder" prob in
          let* () =
            if extra < 0. then err "reorder: extra %g must be >= 0" extra
            else Ok ()
          in
          check_edges "reorder" edges
      | Msg_corrupt { from_; until; edges; prob; magnitude } ->
          let* () = check_window "corrupt" from_ until in
          let* () = check_prob "corrupt" prob in
          let* () =
            if magnitude < 0. then
              err "corrupt: mag %g must be >= 0" magnitude
            else Ok ()
          in
          check_edges "corrupt" edges
      | Clock_jump { at; node; delta } ->
          let* () = check_time "jump" at in
          let* () = check_node "jump" node in
          if not (Float.is_finite delta) then
            err "jump: delta must be finite"
          else Ok ()
      | Clock_rate_fault { at; node; rate } ->
          let* () = check_time "rate" at in
          let* () = check_node "rate" node in
          if rate <= 0. || not (Float.is_finite rate) then
            err "rate: rate %g must be finite and > 0" rate
          else Ok ()
      | Byzantine { from_; until; node; strategy } -> (
          let* () = check_window "byz" from_ until in
          let* () = check_node "byz" node in
          match strategy with
          | Lie_constant off ->
              if not (Float.is_finite off) then
                err "byz: off must be finite"
              else Ok ()
          | Lie_drifting rate ->
              if not (Float.is_finite rate) then
                err "byz: rate must be finite"
              else Ok ()
          | Lie_random mag ->
              if mag < 0. || not (Float.is_finite mag) then
                err "byz: mag %g must be finite and >= 0" mag
              else Ok ()
          | Lie_equivocate mag ->
              if mag < 0. || not (Float.is_finite mag) then
                err "byz: equiv %g must be finite and >= 0" mag
              else Ok ()))
    (Ok ()) t
  in
  let* () = per_event in
  (* Cross-event coherence: a node cannot lie twice at once, and cannot lie
     while crash-stopped (a crashed node sends nothing to rewrite). *)
  let byz_windows =
    List.filter_map
      (function
        | Byzantine { from_; until; node; _ } -> Some (node, from_, until)
        | _ -> None)
      t
  in
  let crash_intervals =
    let open_since = Hashtbl.create 4 in
    let acc = ref [] in
    List.iter
      (function
        | Node_crash { at; node } ->
            if not (Hashtbl.mem open_since node) then
              Hashtbl.add open_since node at
        | Node_recover { at; node; _ } -> (
            match Hashtbl.find_opt open_since node with
            | Some s ->
                Hashtbl.remove open_since node;
                acc := (node, s, at) :: !acc
            | None -> ())
        | _ -> ())
      t;
    Hashtbl.iter (fun node s -> acc := (node, s, infinity) :: !acc) open_since;
    !acc
  in
  let overlap a1 b1 a2 b2 = a1 < b2 && a2 < b1 in
  let rec check_byz = function
    | [] -> Ok ()
    | (node, from_, until) :: rest ->
        let* () =
          match
            List.find_opt
              (fun (node', f', u') ->
                node' = node && overlap from_ until f' u')
              rest
          with
          | Some (_, f', u') ->
              err
                "byz: node %d has overlapping Byzantine windows %g..%g and \
                 %g..%g"
                node f' u' from_ until
          | None -> Ok ()
        in
        let* () =
          match
            List.find_opt
              (fun (node', s, e) -> node' = node && overlap from_ until s e)
              crash_intervals
          with
          | Some (_, s, _) ->
              err
                "byz: node %d is Byzantine over %g..%g but crash-stopped from \
                 %g (a crashed node sends nothing to rewrite)"
                node from_ until s
          | None -> Ok ()
        in
        check_byz rest
  in
  check_byz byz_windows

(* Episode extraction *)

type episode = {
  label : string;
  start : float;
  stop : float option;
  edges : int list;
}

let incident_edges g v =
  List.sort_uniq compare
    (Array.to_list (Array.map snd (Graph.neighbors g v)))

let byzantine_nodes t =
  List.sort_uniq compare
    (List.filter_map
       (function Byzantine { node; _ } -> Some node | _ -> None)
       t)

let byz_strategy_key = function
  | Lie_constant _ -> "off"
  | Lie_drifting _ -> "rate"
  | Lie_random _ -> "mag"
  | Lie_equivocate _ -> "equiv"

(* Edges whose both endpoints follow the protocol. Byzantine recovery
   metrics are measured here: skew on a liar-incident edge is meaningless
   (the liar's own clock may be arbitrarily wrong by design), so episodes
   for Byzantine windows cover exactly the correct-correct edges. *)
let correct_edges t g =
  let is_byz = Array.make (Graph.n g) false in
  List.iter (fun v -> is_byz.(v) <- true) (byzantine_nodes t);
  List.sort compare
    (Graph.fold_edges
       (fun e u v acc -> if is_byz.(u) || is_byz.(v) then acc else e :: acc)
       g [])

let episodes t g =
  let m = Graph.m g in
  let n = Graph.n g in
  let down_since = Array.make m None in
  let crashed_since = Array.make n None in
  let acc = ref [] in
  let add ep = acc := ep :: !acc in
  (* Rate-fault episodes close at the next rate event on the same node. *)
  let rate_times =
    List.filter_map
      (function Clock_rate_fault { at; node; _ } -> Some (node, at) | _ -> None)
      t
  in
  let next_rate node after =
    List.fold_left
      (fun best (v, at) ->
        if v = node && at > after then
          match best with
          | None -> Some at
          | Some b -> Some (Float.min b at)
        else best)
      None rate_times
  in
  List.iter
    (fun ev ->
      match ev with
      | Link_partition { at; edges } ->
          List.iter
            (fun e -> if down_since.(e) = None then down_since.(e) <- Some at)
            (resolve_edges g edges)
      | Link_heal { at; edges } ->
          (* Close every edge interval this heal ends; group the ones that
             went down together into one episode. *)
          let closed =
            List.filter_map
              (fun e ->
                match down_since.(e) with
                | Some s ->
                    down_since.(e) <- None;
                    Some (s, e)
                | None -> None)
              (resolve_edges g edges)
          in
          let starts = List.sort_uniq compare (List.map fst closed) in
          List.iter
            (fun s ->
              add
                {
                  label = "partition";
                  start = s;
                  stop = Some at;
                  edges =
                    List.sort compare
                      (List.filter_map
                         (fun (s', e) -> if s' = s then Some e else None)
                         closed);
                })
            starts
      | Node_crash { at; node } ->
          if crashed_since.(node) = None then crashed_since.(node) <- Some at
      | Node_recover { at; node; wipe } -> (
          match crashed_since.(node) with
          | Some s ->
              crashed_since.(node) <- None;
              add
                {
                  label =
                    Printf.sprintf "crash:%d%s" node
                      (if wipe then " (wipe)" else "");
                  start = s;
                  stop = Some at;
                  edges = incident_edges g node;
                }
          | None -> ())
      | Msg_duplicate { from_; until; edges; _ } ->
          add
            {
              label = "dup";
              start = from_;
              stop = Some until;
              edges = resolve_edges g edges;
            }
      | Msg_reorder { from_; until; edges; _ } ->
          add
            {
              label = "reorder";
              start = from_;
              stop = Some until;
              edges = resolve_edges g edges;
            }
      | Msg_corrupt { from_; until; edges; _ } ->
          add
            {
              label = "corrupt";
              start = from_;
              stop = Some until;
              edges = resolve_edges g edges;
            }
      | Clock_jump { at; node; _ } ->
          add
            {
              label = Printf.sprintf "jump:%d" node;
              start = at;
              stop = Some at;
              edges = incident_edges g node;
            }
      | Clock_rate_fault { at; node; _ } ->
          add
            {
              label = Printf.sprintf "rate:%d" node;
              start = at;
              stop = next_rate node at;
              edges = incident_edges g node;
            }
      | Byzantine { from_; until; node; strategy } ->
          add
            {
              label =
                Printf.sprintf "byz:%d (%s)" node (byz_strategy_key strategy);
              start = from_;
              stop = Some until;
              edges = correct_edges t g;
            })
    t;
  (* Never-healed exposures. *)
  let open_partitions =
    List.sort_uniq compare
      (List.filter_map Fun.id (Array.to_list down_since))
  in
  List.iter
    (fun s ->
      let es = ref [] in
      Array.iteri
        (fun e d -> if d = Some s then es := e :: !es)
        down_since;
      add
        {
          label = "partition";
          start = s;
          stop = None;
          edges = List.sort compare !es;
        })
    open_partitions;
  Array.iteri
    (fun v d ->
      match d with
      | Some s ->
          add
            {
              label = Printf.sprintf "crash:%d" v;
              start = s;
              stop = None;
              edges = incident_edges g v;
            }
      | None -> ())
    crashed_since;
  List.stable_sort
    (fun a b -> compare (a.start, a.label) (b.start, b.label))
    (List.rev !acc)
