(** Discrete-event engine for message-passing distributed algorithms.

    Nodes are event-driven state machines. A node's handlers run when a
    message arrives, when a timer it armed (in its own *hardware* time)
    fires, or once at startup. Handlers interact with the world only through
    the {!api} record: they can read their hardware clock, send on local
    ports, arm timers, and draw from a private RNG — they can never read
    real time, other nodes' clocks, or the topology, which enforces the
    knowledge restrictions of the model.

    The engine itself is deterministic: ties in event time are broken by
    insertion order, and all randomness flows from per-component PRNGs
    derived from the run seed.

    Adversary/observer hooks ([schedule_control], [set_node_rate],
    [hardware_clock]) operate *outside* the node API: they model the
    omniscient adversary and the metrics observer of the paper, both of
    which see true clock values and control drift and delays but cannot
    alter algorithm state. [set_node_rate] transparently reschedules the
    node's pending hardware timers so timer semantics stay exact across rate
    changes. *)

type 'msg t

type 'msg api = {
  node : int;  (** this node's id (usable as a name in messages) *)
  ports : int;  (** number of incident links *)
  hardware : unit -> float;  (** read the local hardware clock *)
  send : port:int -> 'msg -> unit;
  set_timer : h:float -> tag:int -> unit;
      (** Arm a one-shot timer that fires when the local hardware clock
          reaches [h]; a value already in the past fires immediately. Any
          number of timers may be pending; they are distinguished by [tag]
          (tags need not be unique). *)
  rng : Gcs_util.Prng.t;  (** node-private deterministic randomness *)
}

type 'msg handlers = {
  on_init : 'msg api -> unit;
  on_message : 'msg api -> port:int -> 'msg -> unit;
  on_timer : 'msg api -> tag:int -> unit;
}

(** Engine-level happenings an observer (tracer, debugger, metrics
    collector) can subscribe to. Observation is invisible to algorithms. *)
type observation =
  | Obs_send of { src : int; dst : int; edge : int; delay : float }
  | Obs_drop of { src : int; dst : int; edge : int }
  | Obs_deliver of { dst : int; port : int }
  | Obs_timer of { node : int; tag : int }
  | Obs_rate_change of { node : int; rate : float }
  | Obs_node_down of { node : int }
  | Obs_node_up of { node : int; wipe : bool }
  | Obs_edge_down of { edge : int }
  | Obs_edge_up of { edge : int }
  | Obs_fault_drop of { src : int; dst : int; edge : int }
      (** lost to a partition or a crashed endpoint, not to the loss law *)
  | Obs_duplicate of { src : int; dst : int; edge : int }
  | Obs_corrupt of { src : int; dst : int; edge : int }
  | Obs_lie of { src : int; dst : int; edge : int }
      (** the sender rewrote this message under a Byzantine strategy *)

(** Which kind of callback a dispatch is about to run; profiling hooks
    bracket algorithm handlers ([Dispatch_deliver], [Dispatch_timer]) and
    control closures ([Dispatch_control], the observer/adversary side). *)
type dispatch_kind = Dispatch_deliver | Dispatch_timer | Dispatch_control

type dispatch_hook = {
  before : dispatch_kind -> unit;
  after : dispatch_kind -> unit;
}
(** [before]/[after] run around the handler or closure of each dispatched
    event (not around re-aimed timers or fault drops, which run no user
    code). The split shape keeps the hot path allocation-free; a hook must
    not raise. *)

(** Delivery-side mutation hooks, consulted on every non-dropped send. All
    randomness must come from the [rng] handed in — it is the edge's
    dedicated fault stream, so tampering never perturbs delay or node
    streams and runs stay bit-identical under sharding. *)
type 'msg tamper = {
  extra_delay : edge:int -> now:float -> rng:Gcs_util.Prng.t -> float;
      (** added to the drawn delay, after the bounds check (a reorder fault
          deliberately exceeds the model's delay bounds) *)
  corrupt :
    edge:int -> now:float -> rng:Gcs_util.Prng.t -> 'msg -> 'msg option;
      (** [Some msg'] replaces the payload and counts as a corruption *)
  duplicate : edge:int -> now:float -> rng:Gcs_util.Prng.t -> bool;
      (** [true] enqueues a second copy with an independent delay drawn
          from the fault stream *)
}

type 'msg lie =
  src:int -> dst:int -> now:float -> rng:Gcs_util.Prng.t -> 'msg -> 'msg option
(** Source-side Byzantine rewrite, consulted on every non-dropped send
    *before* tampering: the sender hands the network an already-false value,
    and the value may differ per receiver (equivocation). The [rng] is the
    sender's dedicated Byzantine stream, split after node, link, and fault
    streams, so installing a lie that never fires — or no lie at all —
    leaves every other stream, and therefore the whole run, bit-identical. *)

(** {1 Construction}

    An engine is described declaratively by a {!config} — everything a run
    needs (topology, clocks, delays, observers, instrumentation, fault
    hooks, scheduler, parallelism) in one value, built once and handed to
    {!of_config}. The historical mutate-after-create entry points
    ([set_observer], [set_dispatch_hook], [set_tamper], [set_lie]) are gone:
    pass the corresponding config fields instead — a fully-described
    construction is what lets [of_config] choose the parallel execution
    strategy safely. Observer sinks may still be appended to a built engine
    with {!add_observer} (observation is invisible to the run, so late
    attachment is safe); everything that can perturb execution is
    config-only. *)

type 'msg config

val config :
  ?scheduler:Gcs_util.Scheduler.kind ->
  ?regions:int ->
  ?observers:(float -> observation -> unit) list ->
  ?hook:dispatch_hook ->
  ?hook_every:int ->
  ?tamper:'msg tamper ->
  ?lie:'msg lie ->
  graph:Gcs_graph.Graph.t ->
  clocks:Gcs_clock.Hardware_clock.t array ->
  delays:Delay_model.t ->
  rng:Gcs_util.Prng.t ->
  make_node:(int -> 'msg handlers) ->
  t0:float ->
  unit ->
  'msg config
(** Describe an engine. [clocks.(v)] is node [v]'s hardware clock (one per
    node, all started at or before [t0]). [make_node v] is called once per
    node, in id order, to produce its handlers; [on_init] runs for every
    node at time [t0] when [run_until] first executes.

    [scheduler] (default [Binary_heap]) selects the event-queue
    implementation; see {!Gcs_util.Scheduler}. [regions] (default 1) asks
    for conservative region-parallel execution on that many domains; see
    {!regions} for when the request degrades to serial. [observers] are
    installed in list order. [hook]/[hook_every] install the (single)
    dispatch hook — the attachment point of {!Gcs_obs.Profiler}.
    [hook_every] (default 1, must be positive) makes only every
    [hook_every]-th dispatch call [before]/[after]; the engine still keeps
    exact per-kind counts (see {!dispatch_count}), so a sampling profiler
    pays two indirect calls only on sampled dispatches. A hooked engine
    always runs serially. [tamper]/[lie] install the delivery-side and
    source-side fault hooks. *)

val of_config : 'msg config -> 'msg t
(** Build the engine. The region request is resolved here: the engine runs
    region-parallel only when [regions > 1], no dispatch hook is installed,
    and every cross-region edge has a strictly positive minimum delay
    (the lookahead that makes conservative windows non-empty). Otherwise it
    falls back to the exact serial engine — results are byte-identical
    either way, so the fallback is a performance decision only. *)

val create :
  graph:Gcs_graph.Graph.t ->
  clocks:Gcs_clock.Hardware_clock.t array ->
  delays:Delay_model.t ->
  rng:Gcs_util.Prng.t ->
  make_node:(int -> 'msg handlers) ->
  t0:float ->
  'msg t
(** [create ~graph ~clocks ~delays ~rng ~make_node ~t0] is
    [of_config (config ~graph ~clocks ~delays ~rng ~make_node ~t0 ())]: a
    serial binary-heap engine with no observers or hooks, the historical
    constructor. *)

val regions : _ t -> int
(** Effective region count after {!of_config}'s resolution: [1] means the
    serial engine (whatever was requested), [> 1] means that many domains
    execute conservative windows in parallel. *)

val scheduler_kind : _ t -> Gcs_util.Scheduler.kind
(** Which event-queue implementation this engine runs on. *)

val lookahead : _ t -> float
(** Minimum cross-region delay bound — the conservative window width.
    [infinity] on a serial engine (no cross-region edges). *)

val node_region : _ t -> int -> int
(** The region a node is partitioned into (always [0] on a serial engine). *)

val now : _ t -> float
(** Current simulation time (time of the last processed event, or [t0]). *)

val run_until : 'msg t -> float -> unit
(** Process every event with timestamp [<=] the horizon; advances [now] to
    the horizon. *)

val step : 'msg t -> bool
(** Process a single event; [false] if the queue was empty. *)

val request_stop : _ t -> unit
(** Ask [run_until] to return after the event currently being dispatched —
    the cooperative cancellation used by online monitors that have seen
    enough (e.g. an invariant violation in abort mode). The flag is sticky:
    once set, every later [run_until] call returns immediately, and [now]
    stays at the last processed event instead of advancing to the horizon. *)

val stop_requested : _ t -> bool
(** Whether [request_stop] has been called on this engine. *)

val add_observer : 'msg t -> (float -> observation -> unit) -> unit
(** Append one more observer sink. The engine multiplexes each observation
    to every installed observer, in installation order — this is how the
    observability layer ({!Gcs_obs}) composes an event log, a counting
    trace, and any ad-hoc probe on the same run. *)

val clear_observer : 'msg t -> unit
(** Remove every observer. *)

val observer_count : _ t -> int

val dispatch_count : _ t -> dispatch_kind -> int
(** Exact dispatches of a kind over the engine's lifetime (messages
    delivered to a handler, timers fired, control closures run) —
    maintained whether or not a hook is installed. *)

val schedule_control : 'msg t -> at:float -> (unit -> unit) -> unit
(** Run a closure at an absolute simulation time — the hook used by
    adversaries and metric probes. Closures scheduled for the past run at
    the current time. *)

val set_node_rate : 'msg t -> node:int -> rate:float -> unit
(** Change a node's hardware clock rate as of [now], rescheduling the node's
    pending timers to honour their hardware-time deadlines exactly. The
    caller (drift layer or adversary) is responsible for respecting the
    drift band. *)

val crash_node : _ t -> node:int -> unit
(** Crash-stop [node] as of [now]: its pending timers are cancelled, its
    handlers never run, and anything addressed to it is counted as a fault
    drop until recovery. Idempotent while down. The node's hardware clock
    keeps running — crash-stop kills the process, not the oscillator. *)

val recover_node : 'msg t -> node:int -> wipe:bool -> unit
(** Bring a crashed node back: with [wipe:true] its handlers are rebuilt
    from the [make_node] factory (all algorithm state lost), otherwise the
    old state is retained; either way [on_init] runs again so the algorithm
    restarts its protocol machinery. No-op if the node is up. *)

val set_edge_up : _ t -> edge:int -> up:bool -> unit
(** Partition ([up:false]) or heal ([up:true]) one edge. While down, sends
    on the edge and deliveries of messages already in flight are counted as
    fault drops. *)

val node_is_up : _ t -> int -> bool
val edge_is_up : _ t -> int -> bool

val hardware_clock : _ t -> int -> Gcs_clock.Hardware_clock.t
(** Observer access to a node's hardware clock. *)

val graph : _ t -> Gcs_graph.Graph.t

val events_processed : _ t -> int
val messages_sent : _ t -> int
val messages_delivered : _ t -> int

val messages_dropped : _ t -> int
(** Messages lost to the delay model's loss law (never delivered). *)

val messages_dropped_faults : _ t -> int
(** Messages lost to partitions or crashed receivers — counted separately
    from the loss law so fault attribution stays exact. *)

val messages_duplicated : _ t -> int
val messages_corrupted : _ t -> int

val messages_lied : _ t -> int
(** Messages rewritten at the source by a Byzantine strategy. *)

val pending_events : _ t -> int

val heap_high_water : _ t -> int
(** Deepest the event queue has been (sampled before every dispatch) — the
    capacity-planning number the profiler reports. *)

(** An entry of the event queue, as seen from outside: absolute dispatch
    time plus the observable payload. Control closures are opaque, so only
    their timing is exposed. *)
type 'msg pending =
  | Pending_deliver of {
      at : float;
      dst : int;
      port : int;
      edge : int;
      msg : 'msg;
    }
  | Pending_timer of { at : float; node : int; h_target : float; tag : int }
  | Pending_control of { at : float }

val pending_snapshot : 'msg t -> 'msg pending list
(** The event queue in exact pop order (time, ties by insertion), with stale
    timer entries — heap ghosts invalidated by rescheduling or a crash —
    filtered out. The engine is not modified. This is the state-snapshot
    hook used by the exhaustive explorer ({!Gcs_explore}) to canonicalize
    engine state; it is O(n log n) in the queue size, so it is meant for
    checkpoints, not per-event use. *)
