(** Bounded-memory execution traces over the engine's observer hook.

    A trace keeps the most recent [capacity] observations in a ring buffer
    plus running counts per observation kind, so long simulations can stay
    instrumented without unbounded memory. Used by debugging sessions and
    by tests that assert on message flows. *)

type entry = { time : float; obs : Engine.observation }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 entries. *)

val attach : t -> 'msg Engine.t -> unit
(** Install this trace as the engine's observer (replacing any other). *)

val record : t -> float -> Engine.observation -> unit
(** Feed an observation directly (what [attach] wires up). *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Number of retained entries (at most the capacity). *)

val total : t -> int
(** Number of observations ever recorded. *)

val count_sends : t -> int
val count_drops : t -> int
val count_delivers : t -> int
val count_timers : t -> int
val count_rate_changes : t -> int

val count_fault_events : t -> int
(** Node down/up, edge cut/heal, fault drops, duplications, corruptions.
    Running totals per kind (not limited by capacity). *)

val clear : t -> unit

val entry_to_string : entry -> string

val pp : Format.formatter -> t -> unit
(** Print the retained entries, one per line. *)
