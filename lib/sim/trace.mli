(** Bounded-memory execution traces over the engine's observer hook.

    A trace keeps the most recent [capacity] observations in a ring buffer
    plus running counts per observation kind, so long simulations can stay
    instrumented without unbounded memory. Used by debugging sessions and
    by tests that assert on message flows. *)

type entry = { time : float; obs : Engine.observation }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity: 4096 entries. *)

val attach : t -> 'msg Engine.t -> unit
(** Add this trace as one of the engine's observer sinks (it composes with
    an event log, a series recorder, or any other observer). *)

val record : t -> float -> Engine.observation -> unit
(** Feed an observation directly (what [attach] wires up). *)

val entries : t -> entry list
(** Retained entries, oldest first. *)

val length : t -> int
(** Number of retained entries (at most the capacity). *)

val total : t -> int
(** Number of observations ever recorded. *)

(** Running totals per observation kind (not limited by capacity).
    [fault_events] covers node down/up, edge cut/heal, fault drops,
    duplications, and corruptions. *)
type counts = {
  sends : int;
  drops : int;
  delivers : int;
  timers : int;
  rate_changes : int;
  fault_events : int;
}

val counts : t -> counts

val clear : t -> unit

val entry_to_string : entry -> string

val pp : Format.formatter -> t -> unit
(** Print the retained entries, one per line. *)
