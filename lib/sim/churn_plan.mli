(** Declarative, seed-deterministic topology churn.

    A churn plan describes how the effective topology evolves over a run:
    explicit edge formations and removals, plus generative
    arrival/departure processes (per-edge on/off flapping with exponential
    holding times, growing networks whose edges appear over a window,
    shrinking networks whose edges leave for good) and mobility-derived
    schedules. Plans are pure data; {!compile} expands a plan against a
    concrete graph, seed, and horizon into an ordinary
    {!Fault_plan.t} of partition/heal events, so churn flows through the
    engine's existing per-edge masks — store keys, [.repro] replay,
    region-parallel execution, and the shrinker all work unchanged.

    [compile] elides transitions that would not change an edge's state, so
    a plan that keeps every edge up for the whole horizon compiles to
    nothing at all: unchurned runs stay bit-identical to static runs.

    Textual syntax (CLI [--churn]):

    {v
    PLAN  ::= PROC [';' PROC ...]
    PROC  ::= edge-up@T:EDGES            edges (re)form at time T
            | edge-down@T:EDGES          edges disappear at time T
            | flap@T1..T2:up=U:down=D[:EDGES]
                                         per-edge alternating on/off churn:
                                         exponential holding times with
                                         means U (up) and D (down) inside
                                         the window; forced up at T2
            | grow@T1..T2:EDGES          edges absent from t=0, appearing
                                         at evenly spread times in the
                                         window (a growing network)
            | shrink@T1..T2:EDGES        edges leave at evenly spread times
                                         in the window and stay gone
    EDGES ::= all | edges=U-V[,U-V...] | cut=V[,V...]
    v} *)

type process =
  | Edge_up of { at : float; edges : Fault_plan.edge_spec }
  | Edge_down of { at : float; edges : Fault_plan.edge_spec }
  | Flap of {
      from_ : float;
      until : float;
      up_mean : float;  (** mean up-holding time (exponential) *)
      down_mean : float;  (** mean down-holding time (exponential) *)
      edges : Fault_plan.edge_spec;
    }
      (** Per-edge continuous-time on/off churn inside [[from_, until)]:
          each edge draws alternating exponential holding times from its
          own PRNG stream (split from the compile seed), starting up, and
          is forced back up at [until]. *)
  | Grow of { from_ : float; until : float; edges : Fault_plan.edge_spec }
      (** The named edges are absent from [t = 0] and appear one by one at
          deterministically spread times inside the window. *)
  | Shrink of { from_ : float; until : float; edges : Fault_plan.edge_spec }
      (** The named edges go down at deterministically spread times inside
          the window and never come back. *)

type t
(** A plan: processes sorted by start time (stable on ties). *)

val empty : t
val processes : t -> process list

val of_processes : process list -> t
(** Sorts by start time, keeping the given order on ties. *)

val process_start : process -> float

val to_string : t -> string
(** Render in the textual syntax; [of_string (to_string p)] has the same
    processes as [p]. *)

val of_string : string -> (t, string) result
(** Parse the textual syntax (see module doc). *)

val validate : t -> Gcs_graph.Graph.t -> (unit, string) result
(** Check every process against a graph (edge pairs adjacent, node ids in
    range, times finite and non-negative, windows ordered, holding-time
    means positive) and reject contradictory schedules: two generative
    processes claiming the same edge over overlapping intervals, an
    explicit edge event landing inside a generative process's claim on
    that edge, or an [edge-up] and [edge-down] of the same edge at the
    same instant. A [grow] claims its edges from [t = 0]; a [shrink]
    claims them from its window start onward. *)

val compile :
  t ->
  graph:Gcs_graph.Graph.t ->
  seed:int ->
  horizon:float ->
  Fault_plan.t option
(** Expand the plan into partition/heal events against a concrete graph.
    All randomness (flap holding times) comes from dedicated streams split
    from [seed lxor 0xC409], one per process and then one per edge, so the
    expansion is a pure function of (plan, graph, seed) — the same inputs
    give byte-identical fault plans on any machine and any [--jobs].
    Transitions that would not change the edge's state are elided, as are
    transitions after [horizon]; [None] when nothing remains (an inert
    plan), so an unchurned config stays structurally identical to one that
    never heard of churn. Raises [Invalid_argument] on a plan {!validate}
    rejects. *)

val up_windows :
  Fault_plan.t ->
  graph:Gcs_graph.Graph.t ->
  horizon:float ->
  ((int * int) * (float * float) list) list
(** Per-pair up-intervals implied by a (compiled) fault plan's
    partition/heal events, each closed at [horizon] while the edge is
    still up. Only edges some event touches are listed — an absent pair
    is up for the whole run. This is what arms the {!Gcs_check.Monitor}
    edge-age check: interval starts are edge formation times. *)

val of_mobility :
  Mobility.t ->
  graph:Gcs_graph.Graph.t ->
  range:float ->
  sample_period:float ->
  horizon:float ->
  t
(** Derive an explicit churn schedule from node motion: at each sampling
    instant an edge is up iff its endpoints are within [range] of each
    other, and every state flip becomes an [edge-up]/[edge-down] process
    at that instant (an edge already out of range at [t = 0] goes down at
    0). Deterministic for a given trajectory set, so mobility-churned runs
    replay bit-for-bit. *)
