(** Per-edge message delay models.

    The model of the paper lets an adversary pick each message's delay
    anywhere inside known per-hop bounds [d_min, d_max]; the width
    [u = d_max - d_min] is the per-hop *uncertainty* that lower-bounds how
    well neighbors can estimate each other's clocks. Benign experiments use
    random delays inside the band; the lower-bound adversary substitutes a
    controlled chooser. *)

type bounds = { d_min : float; d_max : float }

val bounds : d_min:float -> d_max:float -> bounds
(** Validates [0 <= d_min <= d_max]. *)

val uncertainty : bounds -> float
(** [d_max - d_min]. *)

type t

val edge_bounds : t -> int -> bounds
(** Delay bounds of an edge id. *)

val draw :
  t -> edge:int -> src:int -> dst:int -> now:float -> rng:Gcs_util.Prng.t -> float
(** Draw a delay for one message. The result is always within the edge's
    bounds (the engine additionally asserts this). *)

val fixed : bounds -> t
(** Every message takes exactly [d_max] (worst-case constant delay). *)

val midpoint : bounds -> t
(** Every message takes [(d_min + d_max) / 2]; zero effective uncertainty,
    useful as a best-case baseline. *)

val uniform : bounds -> t
(** Uniform draw in [d_min, d_max] for every edge. *)

val per_edge : (int -> bounds) -> t
(** Uniform draw with per-edge bounds. *)

type chooser = edge:int -> src:int -> dst:int -> now:float -> float
(** An adversarial delay chooser; results are clamped into the bounds. *)

val controlled : bounds -> default:t -> chooser option ref -> t
(** Delegates to the chooser when one is installed, otherwise to [default].
    The adversary installs/uninstalls choosers as phases change. The
    [default]'s loss law is kept, so a controlled adversary composes with a
    lossy base model.

    Lifecycle: the model captures the [ref] cell, not its contents, so
    whoever owns the cell owns the chooser's lifetime. The runner allocates
    a fresh cell per run and resets it to [None] when the run completes, so
    a chooser installed for one run can never leak into an unrelated run —
    a controlled model whose cell holds [None] is behaviorally identical to
    its [default]. *)

val drop_probability :
  t -> edge:int -> src:int -> dst:int -> now:float -> float
(** Probability that a message sent right now from [src] to [dst] on this
    edge is lost; [0.] for all base models. The engine consults this on
    every send. *)

val with_loss : (edge:int -> src:int -> dst:int -> now:float -> float) -> t -> t
(** Attach a loss law (clamped into [0, 1]) to a model. Time-dependent laws
    model link churn (an edge that is "down" over an interval is a drop
    probability of 1 there); source-dependent laws model crashed/silenced
    nodes. *)
