type entry = { time : float; obs : Engine.observation }

type t = {
  capacity : int;
  ring : entry option array;
  mutable next : int;
  mutable total : int;
  mutable sends : int;
  mutable drops : int;
  mutable delivers : int;
  mutable timers : int;
  mutable rate_changes : int;
  mutable fault_events : int;
}

let create ?(capacity = 4096) () =
  if capacity <= 0 then invalid_arg "Trace.create: capacity must be > 0";
  {
    capacity;
    ring = Array.make capacity None;
    next = 0;
    total = 0;
    sends = 0;
    drops = 0;
    delivers = 0;
    timers = 0;
    rate_changes = 0;
    fault_events = 0;
  }

let record t time obs =
  (match obs with
  | Engine.Obs_send _ -> t.sends <- t.sends + 1
  | Engine.Obs_drop _ -> t.drops <- t.drops + 1
  | Engine.Obs_deliver _ -> t.delivers <- t.delivers + 1
  | Engine.Obs_timer _ -> t.timers <- t.timers + 1
  | Engine.Obs_rate_change _ -> t.rate_changes <- t.rate_changes + 1
  | Engine.Obs_node_down _ | Engine.Obs_node_up _ | Engine.Obs_edge_down _
  | Engine.Obs_edge_up _ | Engine.Obs_fault_drop _ | Engine.Obs_duplicate _
  | Engine.Obs_corrupt _ | Engine.Obs_lie _ ->
      t.fault_events <- t.fault_events + 1);
  t.ring.(t.next mod t.capacity) <- Some { time; obs };
  t.next <- t.next + 1;
  t.total <- t.total + 1

let attach t engine = Engine.add_observer engine (record t)

let entries t =
  let start = if t.total > t.capacity then t.next else 0 in
  let count = min t.total t.capacity in
  List.filter_map
    (fun i -> t.ring.((start + i) mod t.capacity))
    (List.init count (fun i -> i))

let length t = min t.total t.capacity
let total t = t.total

type counts = {
  sends : int;
  drops : int;
  delivers : int;
  timers : int;
  rate_changes : int;
  fault_events : int;
}

let counts (t : t) =
  {
    sends = t.sends;
    drops = t.drops;
    delivers = t.delivers;
    timers = t.timers;
    rate_changes = t.rate_changes;
    fault_events = t.fault_events;
  }

let clear t =
  Array.fill t.ring 0 t.capacity None;
  t.next <- 0;
  t.total <- 0;
  t.sends <- 0;
  t.drops <- 0;
  t.delivers <- 0;
  t.timers <- 0;
  t.rate_changes <- 0;
  t.fault_events <- 0

let entry_to_string { time; obs } =
  match obs with
  | Engine.Obs_send { src; dst; edge; delay } ->
      Printf.sprintf "%10.4f  send     %d -> %d (edge %d, delay %.4f)" time src
        dst edge delay
  | Engine.Obs_drop { src; dst; edge } ->
      Printf.sprintf "%10.4f  drop     %d -> %d (edge %d)" time src dst edge
  | Engine.Obs_deliver { dst; port } ->
      Printf.sprintf "%10.4f  deliver  -> %d (port %d)" time dst port
  | Engine.Obs_timer { node; tag } ->
      Printf.sprintf "%10.4f  timer    @ %d (tag %d)" time node tag
  | Engine.Obs_rate_change { node; rate } ->
      Printf.sprintf "%10.4f  rate     @ %d -> %.6f" time node rate
  | Engine.Obs_node_down { node } ->
      Printf.sprintf "%10.4f  down     @ %d" time node
  | Engine.Obs_node_up { node; wipe } ->
      Printf.sprintf "%10.4f  up       @ %d%s" time node
        (if wipe then " (wiped)" else "")
  | Engine.Obs_edge_down { edge } ->
      Printf.sprintf "%10.4f  cut      edge %d" time edge
  | Engine.Obs_edge_up { edge } ->
      Printf.sprintf "%10.4f  healed   edge %d" time edge
  | Engine.Obs_fault_drop { src; dst; edge } ->
      Printf.sprintf "%10.4f  f-drop   %d -> %d (edge %d)" time src dst edge
  | Engine.Obs_duplicate { src; dst; edge } ->
      Printf.sprintf "%10.4f  dup      %d -> %d (edge %d)" time src dst edge
  | Engine.Obs_corrupt { src; dst; edge } ->
      Printf.sprintf "%10.4f  corrupt  %d -> %d (edge %d)" time src dst edge
  | Engine.Obs_lie { src; dst; edge } ->
      Printf.sprintf "%10.4f  lie      %d -> %d (edge %d)" time src dst edge

let pp ppf t =
  List.iter (fun e -> Format.fprintf ppf "%s@." (entry_to_string e)) (entries t)
