module Prng = Gcs_util.Prng
module Heap = Gcs_util.Heap
module Graph = Gcs_graph.Graph
module Hardware_clock = Gcs_clock.Hardware_clock

type 'msg api = {
  node : int;
  ports : int;
  hardware : unit -> float;
  send : port:int -> 'msg -> unit;
  set_timer : h:float -> tag:int -> unit;
  rng : Prng.t;
}

type 'msg handlers = {
  on_init : 'msg api -> unit;
  on_message : 'msg api -> port:int -> 'msg -> unit;
  on_timer : 'msg api -> tag:int -> unit;
}

type 'msg event =
  | Deliver of { dst : int; port : int; edge : int; msg : 'msg }
  | Timer_fire of { node : int; timer_id : int }
  | Control of (unit -> unit)

type pending_timer = { h_target : float; tag : int }

type observation =
  | Obs_send of { src : int; dst : int; edge : int; delay : float }
  | Obs_drop of { src : int; dst : int; edge : int }
  | Obs_deliver of { dst : int; port : int }
  | Obs_timer of { node : int; tag : int }
  | Obs_rate_change of { node : int; rate : float }
  | Obs_node_down of { node : int }
  | Obs_node_up of { node : int; wipe : bool }
  | Obs_edge_down of { edge : int }
  | Obs_edge_up of { edge : int }
  | Obs_fault_drop of { src : int; dst : int; edge : int }
  | Obs_duplicate of { src : int; dst : int; edge : int }
  | Obs_corrupt of { src : int; dst : int; edge : int }
  | Obs_lie of { src : int; dst : int; edge : int }

type 'msg tamper = {
  extra_delay : edge:int -> now:float -> rng:Prng.t -> float;
  corrupt : edge:int -> now:float -> rng:Prng.t -> 'msg -> 'msg option;
  duplicate : edge:int -> now:float -> rng:Prng.t -> bool;
}

(* Source-side Byzantine rewrite: unlike [tamper] (the network lies to the
   receiver), a lie is keyed by the *sender* and may differ per receiver
   (equivocation). [None] means the message goes out untouched. *)
type 'msg lie =
  src:int -> dst:int -> now:float -> rng:Prng.t -> 'msg -> 'msg option

type dispatch_kind = Dispatch_deliver | Dispatch_timer | Dispatch_control

type dispatch_hook = {
  before : dispatch_kind -> unit;
  after : dispatch_kind -> unit;
}

type 'msg t = {
  graph : Graph.t;
  clocks : Hardware_clock.t array;
  delays : Delay_model.t;
  heap : 'msg event Heap.t;
  handlers : 'msg handlers array;
  make_node : int -> 'msg handlers; (* kept for state-wiping recovery *)
  mutable apis : 'msg api array;
  (* Pending timers per node, keyed by a global timer id. Rescheduling a
     node's timers after a rate change re-keys them, which implicitly
     invalidates the heap entries carrying the old ids. *)
  timers : (int, pending_timer) Hashtbl.t array;
  link_rngs : Prng.t array; (* one per edge, for delay draws *)
  (* Dedicated per-edge streams for fault randomness (tampering draws,
     duplicate-copy delays). Split from the engine rng *after* node and link
     streams, so a run without faults is bit-identical to one on an engine
     built before faults existed. *)
  fault_rngs : Prng.t array;
  (* Dedicated per-node streams for Byzantine lie randomness, split after
     the fault streams for the same reason: engines running plans with no
     Byzantine events stay bit-identical to pre-Byzantine builds. *)
  byz_rngs : Prng.t array;
  node_up : bool array;
  edge_up : bool array;
  mutable tamper : 'msg tamper option;
  mutable lie : 'msg lie option;
  mutable now : float;
  mutable next_timer_id : int;
  mutable started : bool;
  mutable events_processed : int;
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;
  mutable messages_dropped_faults : int;
  mutable messages_duplicated : int;
  mutable messages_corrupted : int;
  mutable messages_lied : int;
  (* Any number of observer sinks; each sees every observation in emission
     order. The empty array makes the uninstrumented fast path one load and
     one comparison. *)
  mutable observers : (float -> observation -> unit) array;
  mutable dispatch_hook : dispatch_hook option;
  (* Sampling gate for the hook: only every [hook_every]-th dispatch pays
     the two indirect hook calls; the rest pay one countdown decrement.
     Exact per-kind dispatch counts come from the engine's own lifetime
     counters (messages_delivered / timers_fired / controls_run), so a
     sampling profiler still reports exact counts. *)
  mutable hook_every : int;
  mutable hook_left : int;
  mutable hook_armed : bool;
  mutable timers_fired : int;
  mutable controls_run : int;
  mutable heap_high_water : int;
  (* Cooperative early termination: set by an observer or control closure
     (e.g. an online invariant monitor that has seen enough); [run_until]
     checks it between dispatches, so the event being processed always
     finishes cleanly. *)
  mutable stop_requested : bool;
}

let observe t obs =
  let fs = t.observers in
  for i = 0 to Array.length fs - 1 do
    fs.(i) t.now obs
  done

let push_timer_event t ~node ~timer_id ~h_target =
  let clock = t.clocks.(node) in
  let h_now = Hardware_clock.value clock ~now:t.now in
  let fire_at =
    (* A deadline already reached (or predating the clock) fires now. *)
    if h_target <= h_now then t.now
    else Float.max t.now (Hardware_clock.inverse clock ~h:h_target)
  in
  Heap.push t.heap ~prio:fire_at (Timer_fire { node; timer_id })

let make_api t v =
  let g = t.graph in
  {
    node = v;
    ports = Graph.degree g v;
    hardware = (fun () -> Hardware_clock.value t.clocks.(v) ~now:t.now);
    send =
      (fun ~port msg ->
        let edge = Graph.edge_at_port g v port in
        let dst = Graph.neighbor_at_port g v port in
        let dst_port = Graph.port_of_neighbor g dst v in
        (* A crashed node's handlers never run, so this guard is defensive:
           nothing a down node "sends" may enter the network. *)
        if not t.node_up.(v) then ()
        else begin
          t.messages_sent <- t.messages_sent + 1;
          if not t.edge_up.(edge) then begin
            t.messages_dropped_faults <- t.messages_dropped_faults + 1;
            observe t (Obs_fault_drop { src = v; dst; edge })
          end
          else begin
            let drop_p =
              Delay_model.drop_probability t.delays ~edge ~src:v ~dst
                ~now:t.now
            in
            let dropped =
              drop_p > 0. && Prng.float t.link_rngs.(edge) 1.0 < drop_p
            in
            if dropped then begin
              t.messages_dropped <- t.messages_dropped + 1;
              observe t (Obs_drop { src = v; dst; edge })
            end
            else begin
              let delay =
                Delay_model.draw t.delays ~edge ~src:v ~dst ~now:t.now
                  ~rng:t.link_rngs.(edge)
              in
              let b = Delay_model.edge_bounds t.delays edge in
              if
                delay < b.Delay_model.d_min || delay > b.Delay_model.d_max
              then
                invalid_arg
                  (Printf.sprintf
                     "Engine.send: delay %g outside bounds [%g, %g] on edge \
                      %d (%d -> %d)"
                     delay b.Delay_model.d_min b.Delay_model.d_max edge v dst);
              (* The sender's lie applies first — a Byzantine node hands the
                 network an already-false value; tampering (below) then acts
                 on whatever was handed over, like for any other message. *)
              let msg =
                match t.lie with
                | None -> msg
                | Some lie -> (
                    match
                      lie ~src:v ~dst ~now:t.now ~rng:t.byz_rngs.(v) msg
                    with
                    | None -> msg
                    | Some msg' ->
                        t.messages_lied <- t.messages_lied + 1;
                        observe t (Obs_lie { src = v; dst; edge });
                        msg')
              in
              (* Tampering applies after the bounds check: a reorder fault
                 adds extra delay *by design* outside the paper's
                 uncertainty model. *)
              let delay, msg =
                match t.tamper with
                | None -> (delay, msg)
                | Some tm ->
                    let rng = t.fault_rngs.(edge) in
                    let extra = tm.extra_delay ~edge ~now:t.now ~rng in
                    let msg =
                      match tm.corrupt ~edge ~now:t.now ~rng msg with
                      | None -> msg
                      | Some msg' ->
                          t.messages_corrupted <- t.messages_corrupted + 1;
                          observe t (Obs_corrupt { src = v; dst; edge });
                          msg'
                    in
                    (delay +. extra, msg)
              in
              observe t (Obs_send { src = v; dst; edge; delay });
              Heap.push t.heap ~prio:(t.now +. delay)
                (Deliver { dst; port = dst_port; edge; msg });
              match t.tamper with
              | Some tm
                when tm.duplicate ~edge ~now:t.now
                       ~rng:t.fault_rngs.(edge) ->
                  t.messages_duplicated <- t.messages_duplicated + 1;
                  observe t (Obs_duplicate { src = v; dst; edge });
                  let dup_delay =
                    Delay_model.draw t.delays ~edge ~src:v ~dst ~now:t.now
                      ~rng:t.fault_rngs.(edge)
                  in
                  Heap.push t.heap ~prio:(t.now +. dup_delay)
                    (Deliver { dst; port = dst_port; edge; msg })
              | _ -> ()
            end
          end
        end);
    set_timer =
      (fun ~h ~tag ->
        let timer_id = t.next_timer_id in
        t.next_timer_id <- timer_id + 1;
        Hashtbl.replace t.timers.(v) timer_id { h_target = h; tag };
        push_timer_event t ~node:v ~timer_id ~h_target:h);
    rng = Prng.split (Prng.create ~seed:0) (* replaced in [create] *);
  }

let create ~graph ~clocks ~delays ~rng ~make_node ~t0 =
  let n = Graph.n graph in
  if Array.length clocks <> n then
    invalid_arg "Engine.create: one hardware clock per node required";
  Array.iter
    (fun c ->
      if Hardware_clock.start_time c > t0 then
        invalid_arg "Engine.create: clock starts after t0")
    clocks;
  let node_rngs = Prng.split_n rng n in
  let link_rngs = Prng.split_n rng (Graph.m graph) in
  (* Must come after node and link streams: see the [fault_rngs] comment. *)
  let fault_rngs = Prng.split_n rng (Graph.m graph) in
  (* And these after the fault streams: see the [byz_rngs] comment. *)
  let byz_rngs = Prng.split_n rng n in
  let t =
    {
      graph;
      clocks;
      delays;
      heap = Heap.create ();
      handlers = Array.init n make_node;
      make_node;
      apis = [||];
      timers = Array.init n (fun _ -> Hashtbl.create 8);
      link_rngs;
      fault_rngs;
      byz_rngs;
      node_up = Array.make n true;
      edge_up = Array.make (Graph.m graph) true;
      tamper = None;
      lie = None;
      now = t0;
      next_timer_id = 0;
      started = false;
      events_processed = 0;
      messages_sent = 0;
      messages_delivered = 0;
      messages_dropped = 0;
      messages_dropped_faults = 0;
      messages_duplicated = 0;
      messages_corrupted = 0;
      messages_lied = 0;
      observers = [||];
      dispatch_hook = None;
      hook_every = 1;
      hook_left = 1;
      hook_armed = false;
      timers_fired = 0;
      controls_run = 0;
      heap_high_water = 0;
      stop_requested = false;
    }
  in
  t.apis <-
    Array.init n (fun v -> { (make_api t v) with rng = node_rngs.(v) });
  t

let now t = t.now

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iteri (fun v h -> h.on_init t.apis.(v)) t.handlers
  end

(* Bracket an algorithm/control callback with the profiling hook (when
   installed). The split before/after shape — rather than handing the hook a
   thunk — keeps the instrumented path allocation-free, and the engine-side
   sampling gate keeps the common unsampled dispatch to one countdown
   decrement instead of two indirect calls. *)
let[@inline] hook_before t kind =
  match t.dispatch_hook with
  | None -> ()
  | Some h ->
      let left = t.hook_left - 1 in
      if left = 0 then begin
        t.hook_left <- t.hook_every;
        t.hook_armed <- true;
        h.before kind
      end
      else t.hook_left <- left

let[@inline] hook_after t kind =
  match t.dispatch_hook with
  | None -> ()
  | Some h ->
      if t.hook_armed then begin
        t.hook_armed <- false;
        h.after kind
      end

let dispatch t event =
  t.events_processed <- t.events_processed + 1;
  match event with
  | Deliver { dst; port; edge; msg } ->
      (* Messages in flight when a partition starts or the receiver crashes
         are lost at delivery time. *)
      if (not t.node_up.(dst)) || not t.edge_up.(edge) then begin
        t.messages_dropped_faults <- t.messages_dropped_faults + 1;
        observe t
          (Obs_fault_drop
             { src = Graph.neighbor_at_port t.graph dst port; dst; edge })
      end
      else begin
        t.messages_delivered <- t.messages_delivered + 1;
        observe t (Obs_deliver { dst; port });
        hook_before t Dispatch_deliver;
        t.handlers.(dst).on_message t.apis.(dst) ~port msg;
        hook_after t Dispatch_deliver
      end
  | Timer_fire { node; timer_id } -> (
      match Hashtbl.find_opt t.timers.(node) timer_id with
      | None -> () (* rescheduled or already fired under an old id *)
      | Some { h_target; tag } ->
          let h_now = Hardware_clock.value t.clocks.(node) ~now:t.now in
          if h_now +. 1e-9 >= h_target then begin
            Hashtbl.remove t.timers.(node) timer_id;
            t.timers_fired <- t.timers_fired + 1;
            observe t (Obs_timer { node; tag });
            hook_before t Dispatch_timer;
            t.handlers.(node).on_timer t.apis.(node) ~tag;
            hook_after t Dispatch_timer
          end
          else
            (* The clock slowed after this entry was pushed; re-aim. *)
            push_timer_event t ~node ~timer_id ~h_target)
  | Control f ->
      t.controls_run <- t.controls_run + 1;
      hook_before t Dispatch_control;
      f ();
      hook_after t Dispatch_control

let[@inline] note_heap_depth t =
  let sz = Heap.size t.heap in
  if sz > t.heap_high_water then t.heap_high_water <- sz

let step t =
  start t;
  note_heap_depth t;
  match Heap.pop t.heap with
  | None -> false
  | Some (time, event) ->
      assert (time +. 1e-9 >= t.now);
      t.now <- Float.max t.now time;
      dispatch t event;
      true

let run_until t horizon =
  start t;
  let continue = ref true in
  while !continue && not t.stop_requested do
    note_heap_depth t;
    match Heap.peek t.heap with
    | Some (time, _) when time <= horizon ->
        (match Heap.pop t.heap with
        | Some (time, event) ->
            t.now <- Float.max t.now time;
            dispatch t event
        | None -> assert false)
    | Some _ | None -> continue := false
  done;
  (* A stopped run keeps [now] at the last processed event so the caller
     can see where execution was cut short. *)
  if not t.stop_requested then t.now <- Float.max t.now horizon

let schedule_control t ~at f =
  Heap.push t.heap ~prio:(Float.max at t.now) (Control f)

let set_node_rate t ~node ~rate =
  let clock = t.clocks.(node) in
  Hardware_clock.set_rate clock ~now:t.now ~rate;
  observe t (Obs_rate_change { node; rate });
  (* Re-key every pending timer so stale heap entries become no-ops and
     fresh entries reflect the new rate. *)
  let pending = Hashtbl.fold (fun _ p acc -> p :: acc) t.timers.(node) [] in
  Hashtbl.reset t.timers.(node);
  List.iter
    (fun p ->
      let timer_id = t.next_timer_id in
      t.next_timer_id <- timer_id + 1;
      Hashtbl.replace t.timers.(node) timer_id p;
      push_timer_event t ~node ~timer_id ~h_target:p.h_target)
    pending

let crash_node t ~node =
  if t.node_up.(node) then begin
    t.node_up.(node) <- false;
    (* Dropping the table entries turns every pending heap entry for this
       node into a no-op, exactly like the re-keying in [set_node_rate]. *)
    Hashtbl.reset t.timers.(node);
    observe t (Obs_node_down { node })
  end

let recover_node t ~node ~wipe =
  if not t.node_up.(node) then begin
    t.node_up.(node) <- true;
    observe t (Obs_node_up { node; wipe });
    if wipe then t.handlers.(node) <- t.make_node node;
    t.handlers.(node).on_init t.apis.(node)
  end

let set_edge_up t ~edge ~up =
  if t.edge_up.(edge) <> up then begin
    t.edge_up.(edge) <- up;
    observe t (if up then Obs_edge_up { edge } else Obs_edge_down { edge })
  end

let request_stop t = t.stop_requested <- true
let stop_requested t = t.stop_requested
let node_is_up t node = t.node_up.(node)
let edge_is_up t edge = t.edge_up.(edge)
let set_tamper t tamper = t.tamper <- Some tamper
let clear_tamper t = t.tamper <- None
let set_lie t lie = t.lie <- Some lie
let clear_lie t = t.lie <- None
let set_observer t f = t.observers <- [| f |]
let add_observer t f = t.observers <- Array.append t.observers [| f |]
let clear_observer t = t.observers <- [||]
let observer_count t = Array.length t.observers
let set_dispatch_hook ?(every = 1) t h =
  if every <= 0 then invalid_arg "Engine.set_dispatch_hook: every must be > 0";
  t.hook_every <- every;
  t.hook_left <- every;
  t.hook_armed <- false;
  t.dispatch_hook <- Some h

let clear_dispatch_hook t =
  t.dispatch_hook <- None;
  t.hook_armed <- false

let dispatch_count t = function
  | Dispatch_deliver -> t.messages_delivered
  | Dispatch_timer -> t.timers_fired
  | Dispatch_control -> t.controls_run
let hardware_clock t v = t.clocks.(v)
let graph t = t.graph
let events_processed t = t.events_processed
let messages_sent t = t.messages_sent
let messages_delivered t = t.messages_delivered
let messages_dropped t = t.messages_dropped
let messages_dropped_faults t = t.messages_dropped_faults
let messages_duplicated t = t.messages_duplicated
let messages_corrupted t = t.messages_corrupted
let messages_lied t = t.messages_lied
let pending_events t = Heap.size t.heap
let heap_high_water t = t.heap_high_water

type 'msg pending =
  | Pending_deliver of { at : float; dst : int; port : int; edge : int; msg : 'msg }
  | Pending_timer of { at : float; node : int; h_target : float; tag : int }
  | Pending_control of { at : float }

let pending_snapshot t =
  (* [Heap.to_sorted_list] drains a copy in exact pop order (ties broken by
     insertion sequence), so the snapshot renders the queue in the precise
     order events would dispatch. Timer heap entries carrying ids no longer
     in the table are the no-op ghosts left behind by rescheduling — they
     are not part of the observable state and are dropped. *)
  Heap.to_sorted_list t.heap
  |> List.filter_map (fun (at, ev) ->
         match ev with
         | Deliver { dst; port; edge; msg } ->
             Some (Pending_deliver { at; dst; port; edge; msg })
         | Timer_fire { node; timer_id } -> (
             match Hashtbl.find_opt t.timers.(node) timer_id with
             | None -> None
             | Some { h_target; tag } ->
                 Some (Pending_timer { at; node; h_target; tag }))
         | Control _ -> Some (Pending_control { at }))
