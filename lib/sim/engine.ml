module Prng = Gcs_util.Prng
module Scheduler = Gcs_util.Scheduler
module Graph = Gcs_graph.Graph
module Hardware_clock = Gcs_clock.Hardware_clock

type 'msg api = {
  node : int;
  ports : int;
  hardware : unit -> float;
  send : port:int -> 'msg -> unit;
  set_timer : h:float -> tag:int -> unit;
  rng : Prng.t;
}

type 'msg handlers = {
  on_init : 'msg api -> unit;
  on_message : 'msg api -> port:int -> 'msg -> unit;
  on_timer : 'msg api -> tag:int -> unit;
}

(* Timer identity is (slot, gen) in the owning region's slot pool: a heap
   entry fires only if the slot still holds that generation, so re-keying
   and cancellation are one generation bump, never a queue traversal. *)
type 'msg event =
  | Deliver of { dst : int; port : int; edge : int; msg : 'msg }
  | Timer_fire of { node : int; slot : int; gen : int }
  | Control of (unit -> unit)

type observation =
  | Obs_send of { src : int; dst : int; edge : int; delay : float }
  | Obs_drop of { src : int; dst : int; edge : int }
  | Obs_deliver of { dst : int; port : int }
  | Obs_timer of { node : int; tag : int }
  | Obs_rate_change of { node : int; rate : float }
  | Obs_node_down of { node : int }
  | Obs_node_up of { node : int; wipe : bool }
  | Obs_edge_down of { edge : int }
  | Obs_edge_up of { edge : int }
  | Obs_fault_drop of { src : int; dst : int; edge : int }
  | Obs_duplicate of { src : int; dst : int; edge : int }
  | Obs_corrupt of { src : int; dst : int; edge : int }
  | Obs_lie of { src : int; dst : int; edge : int }

type 'msg tamper = {
  extra_delay : edge:int -> now:float -> rng:Prng.t -> float;
  corrupt : edge:int -> now:float -> rng:Prng.t -> 'msg -> 'msg option;
  duplicate : edge:int -> now:float -> rng:Prng.t -> bool;
}

(* Source-side Byzantine rewrite: unlike [tamper] (the network lies to the
   receiver), a lie is keyed by the *sender* and may differ per receiver
   (equivocation). [None] means the message goes out untouched. *)
type 'msg lie =
  src:int -> dst:int -> now:float -> rng:Prng.t -> 'msg -> 'msg option

type dispatch_kind = Dispatch_deliver | Dispatch_timer | Dispatch_control

type dispatch_hook = {
  before : dispatch_kind -> unit;
  after : dispatch_kind -> unit;
}

(* ------------------------------------------------------------------ *)
(* Per-node timer state, struct-of-arrays: one slot pool per region     *)
(* holding hardware deadlines, tags, owners, and generation counters in *)
(* parallel columns, with per-node intrusive doubly-linked slot lists   *)
(* so re-keying and crash cancellation walk only the node's own slots.  *)
(* ------------------------------------------------------------------ *)

type timer_pool = {
  mutable tp_h : float array; (* hardware deadline *)
  mutable tp_tag : int array;
  mutable tp_owner : int array; (* node id; -1 = free *)
  mutable tp_gen : int array; (* bumped on free/re-key: stale entries no-op *)
  mutable tp_next : int array; (* per-node slot list links *)
  mutable tp_prev : int array;
  mutable tp_free : int array; (* free-slot stack *)
  mutable tp_free_top : int;
  mutable tp_cap : int;
}

let pool_create () =
  {
    tp_h = [||];
    tp_tag = [||];
    tp_owner = [||];
    tp_gen = [||];
    tp_next = [||];
    tp_prev = [||];
    tp_free = [||];
    tp_free_top = 0;
    tp_cap = 0;
  }

let pool_grow p =
  let ncap = if p.tp_cap = 0 then 16 else 2 * p.tp_cap in
  let extend a fill =
    let na = Array.make ncap fill in
    Array.blit a 0 na 0 p.tp_cap;
    na
  in
  p.tp_h <- extend p.tp_h 0.;
  p.tp_tag <- extend p.tp_tag 0;
  p.tp_owner <- extend p.tp_owner (-1);
  p.tp_gen <- extend p.tp_gen 0;
  p.tp_next <- extend p.tp_next (-1);
  p.tp_prev <- extend p.tp_prev (-1);
  let nfree = Array.make ncap 0 in
  Array.blit p.tp_free 0 nfree 0 p.tp_free_top;
  p.tp_free <- nfree;
  (* Push fresh slots in reverse so low indices allocate first. *)
  for s = ncap - 1 downto p.tp_cap do
    p.tp_free.(p.tp_free_top) <- s;
    p.tp_free_top <- p.tp_free_top + 1
  done;
  p.tp_cap <- ncap

(* [heads.(node)] is the first slot of the node's pending-timer list. *)
let pool_alloc p heads ~node ~h ~tag =
  if p.tp_free_top = 0 then pool_grow p;
  p.tp_free_top <- p.tp_free_top - 1;
  let s = p.tp_free.(p.tp_free_top) in
  p.tp_h.(s) <- h;
  p.tp_tag.(s) <- tag;
  p.tp_owner.(s) <- node;
  let head = heads.(node) in
  p.tp_next.(s) <- head;
  p.tp_prev.(s) <- -1;
  if head >= 0 then p.tp_prev.(head) <- s;
  heads.(node) <- s;
  s

let pool_free p heads s =
  let node = p.tp_owner.(s) in
  let nx = p.tp_next.(s) and pv = p.tp_prev.(s) in
  if pv >= 0 then p.tp_next.(pv) <- nx else heads.(node) <- nx;
  if nx >= 0 then p.tp_prev.(nx) <- pv;
  p.tp_owner.(s) <- -1;
  p.tp_gen.(s) <- p.tp_gen.(s) + 1;
  p.tp_free.(p.tp_free_top) <- s;
  p.tp_free_top <- p.tp_free_top + 1

let[@inline] pool_live p ~slot ~gen =
  p.tp_gen.(slot) = gen && p.tp_owner.(slot) >= 0

(* ------------------------------------------------------------------ *)
(* Region context: one event queue, clock position, window buffers and  *)
(* counter deltas per partition region. A serial engine is exactly one  *)
(* region with no window machinery.                                     *)
(* ------------------------------------------------------------------ *)

(* Buffered effects of one window dispatch, replayed in serial order at
   the barrier (see "Conservative region-parallel execution" below). *)
type 'msg witem =
  | W_nop
  | W_obs of { at : float; obs : observation }
  | W_imm of int (* lane index of a push already made into the region queue *)
  | W_push of { prio : float; ev : 'msg event } (* arrival beyond the window *)
  | W_cross of {
      at : float;
      src : int;
      dst : int;
      edge : int;
      dst_port : int;
      msg : 'msg;
      lied : bool;
    }

type 'msg rctx = {
  rid : int;
  q : 'msg event Scheduler.t;
  pool : timer_pool;
  now_ref : float ref;
  mutable cur_wend : float;
  (* pop log: the window's dispatch order, (prio, seq, first-item index) *)
  mutable pop_prio : float array;
  mutable pop_seq : int array;
  mutable pop_item : int array;
  mutable pop_len : int;
  mutable items : 'msg witem array;
  mutable items_len : int;
  mutable lane_count : int; (* in-window pushes, for lane sequence numbers *)
  mutable final_seq : int array; (* lane index -> final seq (set at merge) *)
  (* counter deltas, folded into the engine totals at each barrier *)
  mutable c_events : int;
  mutable c_sent : int;
  mutable c_delivered : int;
  mutable c_dropped : int;
  mutable c_dropped_faults : int;
  mutable c_duplicated : int;
  mutable c_corrupted : int;
  mutable c_lied : int;
  mutable c_timers : int;
}

let rctx_create ~rid ~kind =
  {
    rid;
    q = Scheduler.make kind;
    pool = pool_create ();
    now_ref = ref 0.;
    cur_wend = infinity;
    pop_prio = [||];
    pop_seq = [||];
    pop_item = [||];
    pop_len = 0;
    items = [||];
    items_len = 0;
    lane_count = 0;
    final_seq = [||];
    c_events = 0;
    c_sent = 0;
    c_delivered = 0;
    c_dropped = 0;
    c_dropped_faults = 0;
    c_duplicated = 0;
    c_corrupted = 0;
    c_lied = 0;
    c_timers = 0;
  }

type 'msg t = {
  graph : Graph.t;
  clocks : Hardware_clock.t array;
  delays : Delay_model.t;
  sched_kind : Scheduler.kind;
  nregions : int; (* effective region count (1 = serial) *)
  node_region : int array;
  edge_cross : bool array;
  lookahead : float; (* min d_min over cross-region edges *)
  regions : 'msg rctx array;
  ctrl_q : 'msg event Scheduler.t; (* separate only when nregions > 1 *)
  mutable next_seq : int;
  mutable handlers : 'msg handlers array;
  make_node : int -> 'msg handlers; (* kept for state-wiping recovery *)
  mutable apis : 'msg api array;
  node_timer_head : int array; (* slot list heads (slots are region-local) *)
  link_rngs : Prng.t array; (* one per edge, for delay draws *)
  (* Dedicated per-edge streams for fault randomness (tampering draws,
     duplicate-copy delays). Split from the engine rng *after* node and link
     streams, so a run without faults is bit-identical to one on an engine
     built before faults existed. *)
  fault_rngs : Prng.t array;
  (* Dedicated per-node streams for Byzantine lie randomness, split after
     the fault streams for the same reason. *)
  byz_rngs : Prng.t array;
  node_up : bool array;
  edge_up : bool array;
  (* Struct-of-arrays clock columns: the live segment of each node's
     piecewise-linear hardware clock, so the hot path reads are one
     multiply-add on parallel float arrays instead of a segment search.
     Refreshed when the epoch (breakpoint count) moves or [now] leaves the
     cached segment. *)
  seg_t : float array;
  seg_v : float array;
  seg_r : float array;
  seg_until : float array;
  seg_epoch : int array;
  mutable tamper : 'msg tamper option;
  mutable lie : 'msg lie option;
  mutable now : float;
  mutable started : bool;
  mutable par_active : bool; (* a window is executing on the region domains *)
  mutable events_processed : int;
  mutable messages_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;
  mutable messages_dropped_faults : int;
  mutable messages_duplicated : int;
  mutable messages_corrupted : int;
  mutable messages_lied : int;
  mutable observers : (float -> observation -> unit) array;
  mutable dispatch_hook : dispatch_hook option;
  mutable hook_every : int;
  mutable hook_left : int;
  mutable hook_armed : bool;
  mutable timers_fired : int;
  mutable controls_run : int;
  mutable heap_high_water : int;
  mutable stop_requested : bool;
}

(* Lane sequence numbers: in-window pushes carry provisional sequence
   numbers above this base (strictly greater than any final sequence the
   global counter will ever hand out), distinct per region by residue.
   They exist only within one window — the barrier maps each to the final
   sequence the serial engine would have assigned. *)
let lane_base = max_int / 2

(* Region-local simulation time for the domain currently executing a
   window, so [now] (and through it every algorithm's [ctx.now ()]) reads
   the region clock while a window runs. *)
let dls_region_now : float ref option Domain.DLS.key =
  Domain.DLS.new_key (fun () -> None)

let now t =
  if t.nregions > 1 then
    match Domain.DLS.get dls_region_now with Some r -> !r | None -> t.now
  else t.now

(* ---------------- declarative construction ---------------- *)

type 'msg config = {
  cfg_graph : Graph.t;
  cfg_clocks : Hardware_clock.t array;
  cfg_delays : Delay_model.t;
  cfg_rng : Prng.t;
  cfg_make_node : int -> 'msg handlers;
  cfg_t0 : float;
  cfg_scheduler : Scheduler.kind;
  cfg_regions : int;
  cfg_observers : (float -> observation -> unit) list;
  cfg_hook : dispatch_hook option;
  cfg_hook_every : int;
  cfg_tamper : 'msg tamper option;
  cfg_lie : 'msg lie option;
}

let config ?(scheduler = Scheduler.Binary_heap) ?(regions = 1)
    ?(observers = []) ?hook ?(hook_every = 1) ?tamper ?lie ~graph ~clocks
    ~delays ~rng ~make_node ~t0 () =
  if regions < 1 then invalid_arg "Engine.config: regions must be >= 1";
  if hook_every <= 0 then
    invalid_arg "Engine.config: hook_every must be > 0";
  {
    cfg_graph = graph;
    cfg_clocks = clocks;
    cfg_delays = delays;
    cfg_rng = rng;
    cfg_make_node = make_node;
    cfg_t0 = t0;
    cfg_scheduler = scheduler;
    cfg_regions = regions;
    cfg_observers = observers;
    cfg_hook = hook;
    cfg_hook_every = hook_every;
    cfg_tamper = tamper;
    cfg_lie = lie;
  }

let observe t obs =
  let fs = t.observers in
  for i = 0 to Array.length fs - 1 do
    fs.(i) t.now obs
  done

let observe_at t at obs =
  let fs = t.observers in
  for i = 0 to Array.length fs - 1 do
    fs.(i) at obs
  done

(* ---------------- window buffers ---------------- *)

let witem_add c it =
  let cap = Array.length c.items in
  if c.items_len = cap then begin
    let ncap = if cap = 0 then 64 else 2 * cap in
    let na = Array.make ncap W_nop in
    Array.blit c.items 0 na 0 c.items_len;
    c.items <- na
  end;
  c.items.(c.items_len) <- it;
  c.items_len <- c.items_len + 1

let pop_log_add c prio seq =
  let cap = Array.length c.pop_prio in
  if c.pop_len = cap then begin
    let ncap = if cap = 0 then 64 else 2 * cap in
    let np = Array.make ncap 0. in
    let ns = Array.make ncap 0 in
    let ni = Array.make ncap 0 in
    Array.blit c.pop_prio 0 np 0 c.pop_len;
    Array.blit c.pop_seq 0 ns 0 c.pop_len;
    Array.blit c.pop_item 0 ni 0 c.pop_len;
    c.pop_prio <- np;
    c.pop_seq <- ns;
    c.pop_item <- ni
  end;
  c.pop_prio.(c.pop_len) <- prio;
  c.pop_seq.(c.pop_len) <- seq;
  c.pop_item.(c.pop_len) <- c.items_len;
  c.pop_len <- c.pop_len + 1

let lane_reserve c =
  let k = c.lane_count in
  c.lane_count <- k + 1;
  if k >= Array.length c.final_seq then begin
    let ncap = max 64 (2 * Array.length c.final_seq) in
    let na = Array.make ncap 0 in
    Array.blit c.final_seq 0 na 0 k;
    c.final_seq <- na
  end;
  k

(* ---------------- shared primitives ---------------- *)

let[@inline] fresh_seq t =
  let s = t.next_seq in
  t.next_seq <- s + 1;
  s

let[@inline] emit t wctx at obs =
  match wctx with
  | None -> observe t obs
  | Some c -> if Array.length t.observers > 0 then witem_add c (W_obs { at; obs })

(* Push an event destined for [region]'s queue. In window mode ([wctx]) a
   push landing inside the current window enters the queue immediately
   under a lane sequence (and is recorded for barrier re-sequencing);
   anything at or beyond the window end is deferred to the barrier so the
   region queues only ever hold finally-sequenced events between windows. *)
let push_region_event t wctx ~region ~prio ev =
  match wctx with
  | None -> Scheduler.(t.regions.(region).q.push) ~prio ~seq:(fresh_seq t) ev
  | Some c ->
      if prio < c.cur_wend then begin
        let k = lane_reserve c in
        witem_add c (W_imm k);
        c.q.Scheduler.push ~prio ~seq:(lane_base + (k * t.nregions) + c.rid) ev
      end
      else witem_add c (W_push { prio; ev })

let hw_value t v ~now =
  let ep = Hardware_clock.breakpoint_count t.clocks.(v) in
  if t.seg_epoch.(v) <> ep || now >= t.seg_until.(v) || now < t.seg_t.(v)
  then begin
    let ts, vs, rs, until = Hardware_clock.segment t.clocks.(v) ~now in
    t.seg_t.(v) <- ts;
    t.seg_v.(v) <- vs;
    t.seg_r.(v) <- rs;
    t.seg_until.(v) <- until;
    t.seg_epoch.(v) <- ep
  end;
  t.seg_v.(v) +. (t.seg_r.(v) *. (now -. t.seg_t.(v)))

let push_timer_event t wctx ~node ~slot ~gen ~h_target ~now =
  let h_now = hw_value t node ~now in
  let fire_at =
    (* A deadline already reached (or predating the clock) fires now. *)
    if h_target <= h_now then now
    else Float.max now (Hardware_clock.inverse t.clocks.(node) ~h:h_target)
  in
  push_region_event t wctx ~region:t.node_region.(node) ~prio:fire_at
    (Timer_fire { node; slot; gen })

(* The send path. Serial mode ([wctx = None]) performs every draw and push
   directly, exactly like the classic single-queue engine. Window mode
   splits by edge locality: an intra-region send draws from its (region-
   owned) edge streams inline, while a cross-region send is buffered with
   only the sender-side lie applied (the sender's own stream) and all
   edge-stream draws deferred to the barrier replay, which performs them
   in exact serial order. *)
let do_send t wctx v ~port msg =
  let g = t.graph in
  let edge = Graph.edge_at_port g v port in
  let dst = Graph.neighbor_at_port g v port in
  let dst_port = Graph.port_of_neighbor g dst v in
  (* A crashed node's handlers never run, so this guard is defensive:
     nothing a down node "sends" may enter the network. *)
  if not t.node_up.(v) then ()
  else begin
    let at = match wctx with None -> t.now | Some c -> !(c.now_ref) in
    (match wctx with
    | None -> t.messages_sent <- t.messages_sent + 1
    | Some c -> c.c_sent <- c.c_sent + 1);
    if not t.edge_up.(edge) then begin
      (match wctx with
      | None -> t.messages_dropped_faults <- t.messages_dropped_faults + 1
      | Some c -> c.c_dropped_faults <- c.c_dropped_faults + 1);
      emit t wctx at (Obs_fault_drop { src = v; dst; edge })
    end
    else
      match wctx with
      | Some c when t.edge_cross.(edge) ->
          (* The sender's lie applies inline so the per-node Byzantine
             stream sees draws in the sender's own send order; the lie
             observation and counter wait for the barrier's drop draw
             (they only exist for messages that enter the network). *)
          let msg, lied =
            match t.lie with
            | None -> (msg, false)
            | Some lie -> (
                match lie ~src:v ~dst ~now:at ~rng:t.byz_rngs.(v) msg with
                | None -> (msg, false)
                | Some msg' -> (msg', true))
          in
          witem_add c (W_cross { at; src = v; dst; edge; dst_port; msg; lied })
      | _ -> begin
          let drop_p =
            Delay_model.drop_probability t.delays ~edge ~src:v ~dst ~now:at
          in
          let dropped =
            drop_p > 0. && Prng.float t.link_rngs.(edge) 1.0 < drop_p
          in
          if dropped then begin
            (match wctx with
            | None -> t.messages_dropped <- t.messages_dropped + 1
            | Some c -> c.c_dropped <- c.c_dropped + 1);
            emit t wctx at (Obs_drop { src = v; dst; edge })
          end
          else begin
            let delay =
              Delay_model.draw t.delays ~edge ~src:v ~dst ~now:at
                ~rng:t.link_rngs.(edge)
            in
            let b = Delay_model.edge_bounds t.delays edge in
            if delay < b.Delay_model.d_min || delay > b.Delay_model.d_max
            then
              invalid_arg
                (Printf.sprintf
                   "Engine.send: delay %g outside bounds [%g, %g] on edge \
                    %d (%d -> %d)"
                   delay b.Delay_model.d_min b.Delay_model.d_max edge v dst);
            (* The sender's lie applies first — a Byzantine node hands the
               network an already-false value; tampering (below) then acts
               on whatever was handed over, like for any other message. *)
            let msg =
              match t.lie with
              | None -> msg
              | Some lie -> (
                  match lie ~src:v ~dst ~now:at ~rng:t.byz_rngs.(v) msg with
                  | None -> msg
                  | Some msg' ->
                      (match wctx with
                      | None -> t.messages_lied <- t.messages_lied + 1
                      | Some c -> c.c_lied <- c.c_lied + 1);
                      emit t wctx at (Obs_lie { src = v; dst; edge });
                      msg')
            in
            (* Tampering applies after the bounds check: a reorder fault
               adds extra delay *by design* outside the paper's
               uncertainty model. *)
            let delay, msg =
              match t.tamper with
              | None -> (delay, msg)
              | Some tm ->
                  let rng = t.fault_rngs.(edge) in
                  let extra = tm.extra_delay ~edge ~now:at ~rng in
                  let msg =
                    match tm.corrupt ~edge ~now:at ~rng msg with
                    | None -> msg
                    | Some msg' ->
                        (match wctx with
                        | None ->
                            t.messages_corrupted <- t.messages_corrupted + 1
                        | Some c -> c.c_corrupted <- c.c_corrupted + 1);
                        emit t wctx at (Obs_corrupt { src = v; dst; edge });
                        msg'
                  in
                  (delay +. extra, msg)
            in
            emit t wctx at (Obs_send { src = v; dst; edge; delay });
            push_region_event t wctx ~region:t.node_region.(dst)
              ~prio:(at +. delay)
              (Deliver { dst; port = dst_port; edge; msg });
            match t.tamper with
            | Some tm
              when tm.duplicate ~edge ~now:at ~rng:t.fault_rngs.(edge) ->
                (match wctx with
                | None ->
                    t.messages_duplicated <- t.messages_duplicated + 1
                | Some c -> c.c_duplicated <- c.c_duplicated + 1);
                emit t wctx at (Obs_duplicate { src = v; dst; edge });
                let dup_delay =
                  Delay_model.draw t.delays ~edge ~src:v ~dst ~now:at
                    ~rng:t.fault_rngs.(edge)
                in
                push_region_event t wctx ~region:t.node_region.(dst)
                  ~prio:(at +. dup_delay)
                  (Deliver { dst; port = dst_port; edge; msg })
            | _ -> ()
          end
        end
  end

let make_api t v =
  let wctx () =
    if t.par_active then Some t.regions.(t.node_region.(v)) else None
  in
  let vnow () =
    if t.par_active then !(t.regions.(t.node_region.(v)).now_ref) else t.now
  in
  {
    node = v;
    ports = Graph.degree t.graph v;
    hardware = (fun () -> hw_value t v ~now:(vnow ()));
    send = (fun ~port msg -> do_send t (wctx ()) v ~port msg);
    set_timer =
      (fun ~h ~tag ->
        let pool = t.regions.(t.node_region.(v)).pool in
        let slot = pool_alloc pool t.node_timer_head ~node:v ~h ~tag in
        push_timer_event t (wctx ()) ~node:v ~slot ~gen:pool.tp_gen.(slot)
          ~h_target:h ~now:(vnow ()));
    rng = Prng.create ~seed:0 (* replaced in [of_config] *);
  }

let of_config (cfg : 'msg config) =
  let graph = cfg.cfg_graph in
  let clocks = cfg.cfg_clocks in
  let n = Graph.n graph in
  let m = Graph.m graph in
  if Array.length clocks <> n then
    invalid_arg "Engine.create: one hardware clock per node required";
  Array.iter
    (fun c ->
      if Hardware_clock.start_time c > cfg.cfg_t0 then
        invalid_arg "Engine.create: clock starts after t0")
    clocks;
  (* Resolve the effective region count. Parallel execution needs a
     positive lookahead (every cross-region edge's d_min bounds how soon
     one region can affect another) and a hook-free dispatch path; anything
     else degrades to the serial single-region engine. *)
  let requested = min cfg.cfg_regions (max 1 n) in
  let partition r = Array.init n (fun v -> v * r / n) in
  let cross_of node_region =
    Array.init m (fun e ->
        let u, v = Graph.edge_endpoints graph e in
        node_region.(u) <> node_region.(v))
  in
  let lookahead_of node_region =
    let cross = cross_of node_region in
    let l = ref infinity in
    for e = 0 to m - 1 do
      if cross.(e) then begin
        let b = Delay_model.edge_bounds cfg.cfg_delays e in
        if b.Delay_model.d_min < !l then l := b.Delay_model.d_min
      end
    done;
    !l
  in
  let nregions =
    if requested <= 1 then 1
    else if cfg.cfg_hook <> None then 1
    else if lookahead_of (partition requested) <= 0. then 1
    else requested
  in
  let node_region = partition nregions in
  let edge_cross = cross_of node_region in
  let lookahead = if nregions > 1 then lookahead_of node_region else infinity in
  let node_rngs = Prng.split_n cfg.cfg_rng n in
  let link_rngs = Prng.split_n cfg.cfg_rng m in
  (* Must come after node and link streams: see the [fault_rngs] comment. *)
  let fault_rngs = Prng.split_n cfg.cfg_rng m in
  (* And these after the fault streams: see the [byz_rngs] comment. *)
  let byz_rngs = Prng.split_n cfg.cfg_rng n in
  let t =
    {
      graph;
      clocks;
      delays = cfg.cfg_delays;
      sched_kind = cfg.cfg_scheduler;
      nregions;
      node_region;
      edge_cross;
      lookahead;
      regions =
        Array.init nregions (fun rid ->
            let c = rctx_create ~rid ~kind:cfg.cfg_scheduler in
            c.now_ref := cfg.cfg_t0;
            c);
      ctrl_q = Scheduler.make cfg.cfg_scheduler;
      next_seq = 0;
      handlers = Array.init n cfg.cfg_make_node;
      make_node = cfg.cfg_make_node;
      apis = [||];
      node_timer_head = Array.make n (-1);
      link_rngs;
      fault_rngs;
      byz_rngs;
      node_up = Array.make n true;
      edge_up = Array.make m true;
      seg_t = Array.make n 0.;
      seg_v = Array.make n 0.;
      seg_r = Array.make n 1.;
      seg_until = Array.make n neg_infinity;
      seg_epoch = Array.make n (-1);
      tamper = cfg.cfg_tamper;
      lie = cfg.cfg_lie;
      now = cfg.cfg_t0;
      started = false;
      par_active = false;
      events_processed = 0;
      messages_sent = 0;
      messages_delivered = 0;
      messages_dropped = 0;
      messages_dropped_faults = 0;
      messages_duplicated = 0;
      messages_corrupted = 0;
      messages_lied = 0;
      observers = Array.of_list cfg.cfg_observers;
      dispatch_hook = cfg.cfg_hook;
      hook_every = cfg.cfg_hook_every;
      hook_left = cfg.cfg_hook_every;
      hook_armed = false;
      timers_fired = 0;
      controls_run = 0;
      heap_high_water = 0;
      stop_requested = false;
    }
  in
  t.apis <-
    Array.init n (fun v -> { (make_api t v) with rng = node_rngs.(v) });
  t

let create ~graph ~clocks ~delays ~rng ~make_node ~t0 =
  of_config (config ~graph ~clocks ~delays ~rng ~make_node ~t0 ())

let start t =
  if not t.started then begin
    t.started <- true;
    Array.iteri (fun v h -> h.on_init t.apis.(v)) t.handlers
  end

(* Bracket an algorithm/control callback with the profiling hook (when
   installed). The split before/after shape — rather than handing the hook a
   thunk — keeps the instrumented path allocation-free, and the engine-side
   sampling gate keeps the common unsampled dispatch to one countdown
   decrement instead of two indirect calls. Hooks only exist on the serial
   path ([of_config] degrades a hooked engine to one region). *)
let[@inline] hook_before t kind =
  match t.dispatch_hook with
  | None -> ()
  | Some h ->
      let left = t.hook_left - 1 in
      if left = 0 then begin
        t.hook_left <- t.hook_every;
        t.hook_armed <- true;
        h.before kind
      end
      else t.hook_left <- left

let[@inline] hook_after t kind =
  match t.dispatch_hook with
  | None -> ()
  | Some h ->
      if t.hook_armed then begin
        t.hook_armed <- false;
        h.after kind
      end

let dispatch t wctx event =
  (match wctx with
  | None -> t.events_processed <- t.events_processed + 1
  | Some c -> c.c_events <- c.c_events + 1);
  let now = match wctx with None -> t.now | Some c -> !(c.now_ref) in
  match event with
  | Deliver { dst; port; edge; msg } ->
      (* Messages in flight when a partition starts or the receiver crashes
         are lost at delivery time. *)
      if (not t.node_up.(dst)) || not t.edge_up.(edge) then begin
        (match wctx with
        | None -> t.messages_dropped_faults <- t.messages_dropped_faults + 1
        | Some c -> c.c_dropped_faults <- c.c_dropped_faults + 1);
        emit t wctx now
          (Obs_fault_drop
             { src = Graph.neighbor_at_port t.graph dst port; dst; edge })
      end
      else begin
        (match wctx with
        | None -> t.messages_delivered <- t.messages_delivered + 1
        | Some c -> c.c_delivered <- c.c_delivered + 1);
        emit t wctx now (Obs_deliver { dst; port });
        hook_before t Dispatch_deliver;
        t.handlers.(dst).on_message t.apis.(dst) ~port msg;
        hook_after t Dispatch_deliver
      end
  | Timer_fire { node; slot; gen } ->
      let pool = t.regions.(t.node_region.(node)).pool in
      if pool_live pool ~slot ~gen then begin
        let h_target = pool.tp_h.(slot) in
        let h_now = hw_value t node ~now in
        if h_now +. 1e-9 >= h_target then begin
          let tag = pool.tp_tag.(slot) in
          pool_free pool t.node_timer_head slot;
          (match wctx with
          | None -> t.timers_fired <- t.timers_fired + 1
          | Some c -> c.c_timers <- c.c_timers + 1);
          emit t wctx now (Obs_timer { node; tag });
          hook_before t Dispatch_timer;
          t.handlers.(node).on_timer t.apis.(node) ~tag;
          hook_after t Dispatch_timer
        end
        else
          (* The clock slowed after this entry was pushed; re-aim. *)
          push_timer_event t wctx ~node ~slot ~gen ~h_target ~now
      end
      (* else: rescheduled or already fired under an old generation *)
  | Control f ->
      t.controls_run <- t.controls_run + 1;
      hook_before t Dispatch_control;
      f ();
      hook_after t Dispatch_control

(* ---------------- serial execution (one region) ---------------- *)

let serial_q t = t.regions.(0).q

let[@inline] note_heap_depth t sz =
  if sz > t.heap_high_water then t.heap_high_water <- sz

let run_until_serial t horizon =
  let q = serial_q t in
  let continue = ref true in
  while !continue && not t.stop_requested do
    note_heap_depth t (q.Scheduler.size ());
    let time = q.Scheduler.min_prio () in
    if q.Scheduler.size () > 0 && time <= horizon then begin
      let event = q.Scheduler.pop_min () in
      t.now <- Float.max t.now time;
      dispatch t None event
    end
    else continue := false
  done;
  (* A stopped run keeps [now] at the last processed event so the caller
     can see where execution was cut short. *)
  if not t.stop_requested then t.now <- Float.max t.now horizon

(* ------------------------------------------------------------------ *)
(* Conservative region-parallel execution.                              *)
(*                                                                      *)
(* The topology is partitioned into contiguous node regions. Because a   *)
(* cross-region message takes at least [lookahead = min d_min] to        *)
(* arrive, all events in a window [W, W + lookahead) are causally        *)
(* independent across regions (Chandy–Misra: the per-edge d_min IS the   *)
(* lookahead), so each region's queue can drain the window on its own    *)
(* domain. Windows also never span a pending control event: controls     *)
(* (faults, probes) mutate or read global state and run between          *)
(* windows, on the main domain, exactly at their scheduled time.         *)
(*                                                                      *)
(* Byte-identity with the serial engine is by construction:             *)
(* - every push consumes exactly one final sequence number, assigned in  *)
(*   the order the serial engine would have pushed (the barrier merges   *)
(*   the regions' pop logs back into serial dispatch order and replays   *)
(*   buffered effects in that order);                                    *)
(* - per-stream RNG draw order is preserved: node and intra-region edge  *)
(*   streams draw inline (each is owned by one region), cross-region     *)
(*   edge streams draw at the barrier replay in serial send order;       *)
(* - observations buffer per region and flush at the barrier in serial   *)
(*   dispatch order, so sinks see the exact serial stream.               *)
(* The one divergence: a Byzantine lie that draws randomness combined    *)
(* with message loss on a cross-region edge would need the drop draw     *)
(* before the lie draw; callers gate that combination to the serial      *)
(* engine (see Runner).                                                  *)
(* ------------------------------------------------------------------ *)

let run_region_window t c ~wend =
  c.cur_wend <- wend;
  Domain.DLS.set dls_region_now (Some c.now_ref);
  let q = c.q in
  while q.Scheduler.min_prio () < wend do
    let prio = q.Scheduler.min_prio () in
    let seq = q.Scheduler.min_seq () in
    let ev = q.Scheduler.pop_min () in
    if prio > !(c.now_ref) then c.now_ref := prio;
    pop_log_add c prio seq;
    dispatch t (Some c) ev
  done;
  Domain.DLS.set dls_region_now None

let fold_region_counters t =
  Array.iter
    (fun c ->
      t.events_processed <- t.events_processed + c.c_events;
      t.messages_sent <- t.messages_sent + c.c_sent;
      t.messages_delivered <- t.messages_delivered + c.c_delivered;
      t.messages_dropped <- t.messages_dropped + c.c_dropped;
      t.messages_dropped_faults <-
        t.messages_dropped_faults + c.c_dropped_faults;
      t.messages_duplicated <- t.messages_duplicated + c.c_duplicated;
      t.messages_corrupted <- t.messages_corrupted + c.c_corrupted;
      t.messages_lied <- t.messages_lied + c.c_lied;
      t.timers_fired <- t.timers_fired + c.c_timers;
      c.c_events <- 0;
      c.c_sent <- 0;
      c.c_delivered <- 0;
      c.c_dropped <- 0;
      c.c_dropped_faults <- 0;
      c.c_duplicated <- 0;
      c.c_corrupted <- 0;
      c.c_lied <- 0;
      c.c_timers <- 0)
    t.regions

(* Replay one buffered cross-region send at the barrier: the deferred
   edge-stream draws happen here, in serial send order, and produce the
   exact observation sequence and queue pushes of a serial send. *)
let replay_cross t ~at ~src ~dst ~edge ~dst_port ~msg ~lied =
  let drop_p = Delay_model.drop_probability t.delays ~edge ~src ~dst ~now:at in
  let dropped = drop_p > 0. && Prng.float t.link_rngs.(edge) 1.0 < drop_p in
  if dropped then begin
    t.messages_dropped <- t.messages_dropped + 1;
    observe_at t at (Obs_drop { src; dst; edge })
  end
  else begin
    let delay =
      Delay_model.draw t.delays ~edge ~src ~dst ~now:at
        ~rng:t.link_rngs.(edge)
    in
    let b = Delay_model.edge_bounds t.delays edge in
    if delay < b.Delay_model.d_min || delay > b.Delay_model.d_max then
      invalid_arg
        (Printf.sprintf
           "Engine.send: delay %g outside bounds [%g, %g] on edge %d (%d -> \
            %d)"
           delay b.Delay_model.d_min b.Delay_model.d_max edge src dst);
    if lied then begin
      t.messages_lied <- t.messages_lied + 1;
      observe_at t at (Obs_lie { src; dst; edge })
    end;
    let delay, msg =
      match t.tamper with
      | None -> (delay, msg)
      | Some tm ->
          let rng = t.fault_rngs.(edge) in
          let extra = tm.extra_delay ~edge ~now:at ~rng in
          let msg =
            match tm.corrupt ~edge ~now:at ~rng msg with
            | None -> msg
            | Some msg' ->
                t.messages_corrupted <- t.messages_corrupted + 1;
                observe_at t at (Obs_corrupt { src; dst; edge });
                msg'
          in
          (delay +. extra, msg)
    in
    observe_at t at (Obs_send { src; dst; edge; delay });
    Scheduler.(t.regions.(t.node_region.(dst)).q.push) ~prio:(at +. delay)
      ~seq:(fresh_seq t)
      (Deliver { dst; port = dst_port; edge; msg });
    match t.tamper with
    | Some tm when tm.duplicate ~edge ~now:at ~rng:t.fault_rngs.(edge) ->
        t.messages_duplicated <- t.messages_duplicated + 1;
        observe_at t at (Obs_duplicate { src; dst; edge });
        let dup_delay =
          Delay_model.draw t.delays ~edge ~src ~dst ~now:at
            ~rng:t.fault_rngs.(edge)
        in
        Scheduler.(t.regions.(t.node_region.(dst)).q.push)
          ~prio:(at +. dup_delay) ~seq:(fresh_seq t)
          (Deliver { dst; port = dst_port; edge; msg })
    | _ -> ()
  end

(* Merge the window back into serial order: a k-way merge of the regions'
   pop logs keyed by (prio, final seq). Lane sequences resolve through the
   mapping the merge itself builds — an in-window event's push is always
   replayed (and finally sequenced) before its pop can reach a log head,
   because the push was recorded by an earlier pop of the same region. *)
let merge_window t =
  let r = t.nregions in
  let idx = Array.make r 0 in
  let final_of c seq =
    if seq < lane_base then seq else c.final_seq.((seq - lane_base) / r)
  in
  let replay_item c = function
    | W_nop -> ()
    | W_obs { at; obs } -> observe_at t at obs
    | W_imm k -> c.final_seq.(k) <- fresh_seq t
    | W_push { prio; ev } ->
        let region =
          match ev with
          | Deliver { dst; _ } -> t.node_region.(dst)
          | Timer_fire { node; _ } -> t.node_region.(node)
          | Control _ -> 0
        in
        Scheduler.(t.regions.(region).q.push) ~prio ~seq:(fresh_seq t) ev
    | W_cross { at; src; dst; edge; dst_port; msg; lied } ->
        replay_cross t ~at ~src ~dst ~edge ~dst_port ~msg ~lied
  in
  let exception Done in
  (try
     while true do
       let best = ref (-1) and bp = ref infinity and bs = ref max_int in
       for i = 0 to r - 1 do
         let c = t.regions.(i) in
         if idx.(i) < c.pop_len then begin
           let p = c.pop_prio.(idx.(i)) in
           let s = final_of c c.pop_seq.(idx.(i)) in
           if p < !bp || (p = !bp && s < !bs) then begin
             best := i;
             bp := p;
             bs := s
           end
         end
       done;
       if !best < 0 then raise Done;
       let c = t.regions.(!best) in
       let j = idx.(!best) in
       idx.(!best) <- j + 1;
       let it_start = c.pop_item.(j) in
       let it_end =
         if j + 1 < c.pop_len then c.pop_item.(j + 1) else c.items_len
       in
       for k = it_start to it_end - 1 do
         replay_item c c.items.(k)
       done
     done
   with Done -> ());
  Array.iter
    (fun c ->
      Array.fill c.items 0 c.items_len W_nop;
      c.items_len <- 0;
      c.pop_len <- 0;
      c.lane_count <- 0)
    t.regions

(* Minimum (prio, seq) over every queue; returns the queue holding it. *)
let global_min t =
  let best = ref t.ctrl_q in
  let bp = ref (t.ctrl_q.Scheduler.min_prio ()) in
  let bs = ref (t.ctrl_q.Scheduler.min_seq ()) in
  Array.iter
    (fun c ->
      let p = c.q.Scheduler.min_prio () in
      if p < !bp || (p = !bp && c.q.Scheduler.min_seq () < !bs) then begin
        best := c.q;
        bp := p;
        bs := c.q.Scheduler.min_seq ()
      end)
    t.regions;
  (!bp, !best)

let total_pending t =
  Array.fold_left
    (fun acc c -> acc + c.q.Scheduler.size ())
    (t.ctrl_q.Scheduler.size ())
    t.regions

(* Window synchronisation: persistent worker domains for the duration of
   one [run_until], released by a generation barrier. *)
type sync = {
  mutex : Mutex.t;
  work : Condition.t;
  done_ : Condition.t;
  mutable gen : int;
  mutable wend : float;
  mutable dones : int;
  mutable quit : bool;
}

let run_until_parallel t horizon =
  let r = t.nregions in
  let s =
    {
      mutex = Mutex.create ();
      work = Condition.create ();
      done_ = Condition.create ();
      gen = 0;
      wend = nan;
      dones = 0;
      quit = false;
    }
  in
  let worker rid =
    let my_gen = ref 0 in
    let running = ref true in
    while !running do
      Mutex.lock s.mutex;
      while (not s.quit) && s.gen = !my_gen do
        Condition.wait s.work s.mutex
      done;
      let quit = s.quit in
      let wend = s.wend in
      my_gen := s.gen;
      Mutex.unlock s.mutex;
      if quit then running := false
      else begin
        run_region_window t t.regions.(rid) ~wend;
        Mutex.lock s.mutex;
        s.dones <- s.dones + 1;
        Condition.broadcast s.done_;
        Mutex.unlock s.mutex
      end
    done
  in
  let domains =
    Array.init (r - 1) (fun i -> Domain.spawn (fun () -> worker (i + 1)))
  in
  let release_window wend =
    t.par_active <- true;
    Mutex.lock s.mutex;
    s.wend <- wend;
    s.gen <- s.gen + 1;
    s.dones <- 0;
    Condition.broadcast s.work;
    Mutex.unlock s.mutex;
    run_region_window t t.regions.(0) ~wend;
    Mutex.lock s.mutex;
    while s.dones < r - 1 do
      Condition.wait s.done_ s.mutex
    done;
    Mutex.unlock s.mutex;
    t.par_active <- false
  in
  let continue = ref true in
  while !continue && not t.stop_requested do
    let next_p, _ = global_min t in
    if total_pending t = 0 || next_p > horizon then continue := false
    else begin
      note_heap_depth t (total_pending t);
      let wend =
        Float.min
          (Float.min (next_p +. t.lookahead) (t.ctrl_q.Scheduler.min_prio ()))
          horizon
      in
      if wend > next_p then release_window wend;
      fold_region_counters t;
      merge_window t;
      Array.iter
        (fun c -> if !(c.now_ref) > t.now then t.now <- !(c.now_ref))
        t.regions;
      (* Boundary pass: events and controls at exactly the window end run
         serially in global (prio, seq) order — this is where faults fire,
         probes sample a settled global state, and same-time cascades
         stay exact. *)
      let boundary = ref true in
      while !boundary && not t.stop_requested do
        let p, q = global_min t in
        if total_pending t > 0 && p <= wend then begin
          note_heap_depth t (total_pending t);
          let ev = q.Scheduler.pop_min () in
          t.now <- Float.max t.now p;
          dispatch t None ev
        end
        else boundary := false
      done
    end
  done;
  Mutex.lock s.mutex;
  s.quit <- true;
  Condition.broadcast s.work;
  Mutex.unlock s.mutex;
  Array.iter Domain.join domains;
  if not t.stop_requested then t.now <- Float.max t.now horizon

let run_until t horizon =
  start t;
  if t.nregions = 1 then run_until_serial t horizon
  else begin
    let next_p, _ = global_min t in
    if total_pending t = 0 || next_p > horizon then begin
      if not t.stop_requested then t.now <- Float.max t.now horizon
    end
    else run_until_parallel t horizon
  end

let step t =
  start t;
  note_heap_depth t (total_pending t);
  if total_pending t = 0 then false
  else begin
    let p, q = global_min t in
    let event = q.Scheduler.pop_min () in
    assert (p +. 1e-9 >= t.now);
    t.now <- Float.max t.now p;
    dispatch t None event;
    true
  end

let schedule_control t ~at f =
  let q = if t.nregions > 1 then t.ctrl_q else serial_q t in
  q.Scheduler.push ~prio:(Float.max at t.now) ~seq:(fresh_seq t) (Control f)

let set_node_rate t ~node ~rate =
  let clock = t.clocks.(node) in
  Hardware_clock.set_rate clock ~now:t.now ~rate;
  (* A rate replaced at an existing breakpoint leaves the epoch unchanged;
     drop the cached segment explicitly. *)
  t.seg_epoch.(node) <- -1;
  observe t (Obs_rate_change { node; rate });
  (* Re-key every pending timer so stale queue entries become no-ops and
     fresh entries reflect the new rate. Slots walk in insertion order. *)
  let pool = t.regions.(t.node_region.(node)).pool in
  let slot = ref t.node_timer_head.(node) in
  while !slot >= 0 do
    let s = !slot in
    pool.tp_gen.(s) <- pool.tp_gen.(s) + 1;
    push_timer_event t None ~node ~slot:s ~gen:pool.tp_gen.(s)
      ~h_target:pool.tp_h.(s) ~now:t.now;
    slot := pool.tp_next.(s)
  done

let crash_node t ~node =
  if t.node_up.(node) then begin
    t.node_up.(node) <- false;
    (* Freeing the slots turns every pending queue entry for this node into
       a no-op, exactly like the re-keying in [set_node_rate]. *)
    let pool = t.regions.(t.node_region.(node)).pool in
    while t.node_timer_head.(node) >= 0 do
      pool_free pool t.node_timer_head t.node_timer_head.(node)
    done;
    observe t (Obs_node_down { node })
  end

let recover_node t ~node ~wipe =
  if not t.node_up.(node) then begin
    t.node_up.(node) <- true;
    observe t (Obs_node_up { node; wipe });
    if wipe then t.handlers.(node) <- t.make_node node;
    t.handlers.(node).on_init t.apis.(node)
  end

let set_edge_up t ~edge ~up =
  if t.edge_up.(edge) <> up then begin
    t.edge_up.(edge) <- up;
    observe t (if up then Obs_edge_up { edge } else Obs_edge_down { edge })
  end

let request_stop t = t.stop_requested <- true
let stop_requested t = t.stop_requested
let node_is_up t node = t.node_up.(node)
let edge_is_up t edge = t.edge_up.(edge)
let add_observer t f = t.observers <- Array.append t.observers [| f |]
let clear_observer t = t.observers <- [||]
let observer_count t = Array.length t.observers

let dispatch_count t = function
  | Dispatch_deliver -> t.messages_delivered
  | Dispatch_timer -> t.timers_fired
  | Dispatch_control -> t.controls_run

let hardware_clock t v = t.clocks.(v)
let graph t = t.graph
let regions t = t.nregions
let scheduler_kind t = t.sched_kind
let lookahead t = t.lookahead
let node_region t v = t.node_region.(v)
let events_processed t = t.events_processed
let messages_sent t = t.messages_sent
let messages_delivered t = t.messages_delivered
let messages_dropped t = t.messages_dropped
let messages_dropped_faults t = t.messages_dropped_faults
let messages_duplicated t = t.messages_duplicated
let messages_corrupted t = t.messages_corrupted
let messages_lied t = t.messages_lied
let pending_events t = total_pending t
let heap_high_water t = t.heap_high_water

type 'msg pending =
  | Pending_deliver of { at : float; dst : int; port : int; edge : int; msg : 'msg }
  | Pending_timer of { at : float; node : int; h_target : float; tag : int }
  | Pending_control of { at : float }

let pending_snapshot t =
  (* Each queue renders in exact pop order via [Scheduler.sorted], with the
     stale-timer filter pushed into the scheduler's [keep] hook: queue
     entries carrying a dead (slot, gen) are the no-op ghosts left behind by
     rescheduling and are not part of the observable state. The per-queue
     lists then merge by (prio, seq) — the same order a global pop loop
     would dispatch. *)
  let keep = function
    | Timer_fire { node; slot; gen } ->
        pool_live t.regions.(t.node_region.(node)).pool ~slot ~gen
    | Deliver _ | Control _ -> true
  in
  let lists =
    t.ctrl_q.Scheduler.sorted ~keep
    :: Array.to_list (Array.map (fun c -> c.q.Scheduler.sorted ~keep) t.regions)
  in
  let merged =
    List.sort
      (fun (p1, s1, _) (p2, s2, _) ->
        let c = Float.compare p1 p2 in
        if c <> 0 then c else Int.compare s1 s2)
      (List.concat lists)
  in
  List.map
    (fun (at, _, ev) ->
      match ev with
      | Deliver { dst; port; edge; msg } ->
          Pending_deliver { at; dst; port; edge; msg }
      | Timer_fire { node; slot; gen = _ } ->
          let pool = t.regions.(t.node_region.(node)).pool in
          Pending_timer
            { at; node; h_target = pool.tp_h.(slot); tag = pool.tp_tag.(slot) }
      | Control _ -> Pending_control { at })
    merged
