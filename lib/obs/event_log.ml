module Engine = Gcs_sim.Engine
module Csv = Gcs_util.Csv

type format = Jsonl | Csv

type entry = { seq : int; time : float; obs : Engine.observation }

(* Storage is parallel unboxed columns: each observation is flattened at
   record time into one packed int (kind tag + up to three small-int
   fields) plus a float slot for the kinds that carry one, and is
   reconstructed only at export. Retaining the engine's observation
   values instead would keep ~100k short-lived heap objects alive per
   run — the minor-heap promotion and major-GC scanning that causes, not
   the export formatting, is what used to blow the E21 overhead budget.
   Unboxed columns are invisible to the GC and recording allocates
   almost nothing (one short-lived tuple per event).

   Packed word layout: bits 0-3 kind tag, bits 4-22 / 23-41 / 42-60 the
   three 19-bit fields. Ids above 2^19 - 1 (524287 nodes or edges —
   far beyond any simulated topology) take the escape path: the raw
   observation goes into a side table keyed by storage slot. *)
type cols = { times : float array; xs : float array; packed : int array }

(* Float columns are created uninitialized: every slot is written before
   it can be read (exports stop at [recorded]; a ring overwrites a slot
   before re-reading it), and skipping the zeroing pass halves the fresh
   memory traffic a large unbounded log pays. The packed column must stay
   [Array.make] — uninitialized words are not valid OCaml values. *)
let make_cols n =
  {
    times = Array.create_float n;
    xs = Array.create_float n;
    packed = Array.make n 0;
  }

let field_bits = 19
let field_outside = lnot ((1 lsl field_bits) - 1)
let escape_tag = 13

let[@inline] fits3 a b c = (a lor b lor c) land field_outside = 0

let[@inline] pack tag a b c =
  tag
  lor (a lsl 4)
  lor (b lsl (4 + field_bits))
  lor (c lsl (4 + (2 * field_bits)))

let[@inline] unpack_field p shift = (p lsr shift) land ((1 lsl field_bits) - 1)

(* Unbounded logs store fixed-size chunks, so growth never re-copies or
   re-zeroes entry data — with ~100k observations per run, the doubling
   strategy's cumulative blits were a measurable slice of the budget. *)
let chunk_bits = 14
let chunk_size = 1 lsl chunk_bits
let chunk_mask = chunk_size - 1

type grow = { mutable chunks : cols array; mutable n_chunks : int }

type ring = { cols : cols; mutable next : int }

type store =
  | Grow of grow  (** unbounded; index = seq *)
  | Ring of ring
  | Stream of (string -> unit)

type t = {
  format_ : format;
  store : store;
  overflow : (int, Engine.observation) Hashtbl.t;
      (** escape-path entries, keyed by storage slot (Grow: seq; Ring:
          ring index) *)
  mutable recorded : int;
}

let create ?capacity ?stream ?(format_ = Jsonl) () =
  let store =
    match (stream, capacity) with
    | Some emit, _ -> Stream emit
    | None, Some c ->
        if c <= 0 then invalid_arg "Event_log.create: capacity must be > 0";
        Ring { cols = make_cols c; next = 0 }
    | None, None -> Grow { chunks = [||]; n_chunks = 0 }
  in
  { format_; store; overflow = Hashtbl.create 8; recorded = 0 }

let escape t cols i key obs =
  Array.unsafe_set cols.packed i escape_tag;
  Hashtbl.replace t.overflow key obs

(* One arm per kind with direct stores: building an intermediate
   (tag, a, b, c) tuple would allocate on every recorded event. *)
let[@inline] put t cols i key time obs =
  Array.unsafe_set cols.times i time;
  match obs with
  | Engine.Obs_send { src; dst; edge; delay } ->
      Array.unsafe_set cols.xs i delay;
      if fits3 src dst edge then
        Array.unsafe_set cols.packed i (pack 0 src dst edge)
      else escape t cols i key obs
  | Engine.Obs_drop { src; dst; edge } ->
      if fits3 src dst edge then
        Array.unsafe_set cols.packed i (pack 1 src dst edge)
      else escape t cols i key obs
  | Engine.Obs_deliver { dst; port } ->
      if fits3 dst port 0 then
        Array.unsafe_set cols.packed i (pack 2 dst port 0)
      else escape t cols i key obs
  | Engine.Obs_timer { node; tag } ->
      if fits3 node tag 0 then
        Array.unsafe_set cols.packed i (pack 3 node tag 0)
      else escape t cols i key obs
  | Engine.Obs_rate_change { node; rate } ->
      Array.unsafe_set cols.xs i rate;
      if fits3 node 0 0 then Array.unsafe_set cols.packed i (pack 4 node 0 0)
      else escape t cols i key obs
  | Engine.Obs_node_down { node } ->
      if fits3 node 0 0 then Array.unsafe_set cols.packed i (pack 5 node 0 0)
      else escape t cols i key obs
  | Engine.Obs_node_up { node; wipe } ->
      if fits3 node 0 0 then
        Array.unsafe_set cols.packed i
          (pack 6 node (if wipe then 1 else 0) 0)
      else escape t cols i key obs
  | Engine.Obs_edge_down { edge } ->
      if fits3 edge 0 0 then Array.unsafe_set cols.packed i (pack 7 edge 0 0)
      else escape t cols i key obs
  | Engine.Obs_edge_up { edge } ->
      if fits3 edge 0 0 then Array.unsafe_set cols.packed i (pack 8 edge 0 0)
      else escape t cols i key obs
  | Engine.Obs_fault_drop { src; dst; edge } ->
      if fits3 src dst edge then
        Array.unsafe_set cols.packed i (pack 9 src dst edge)
      else escape t cols i key obs
  | Engine.Obs_duplicate { src; dst; edge } ->
      if fits3 src dst edge then
        Array.unsafe_set cols.packed i (pack 10 src dst edge)
      else escape t cols i key obs
  | Engine.Obs_corrupt { src; dst; edge } ->
      if fits3 src dst edge then
        Array.unsafe_set cols.packed i (pack 11 src dst edge)
      else escape t cols i key obs
  | Engine.Obs_lie { src; dst; edge } ->
      if fits3 src dst edge then
        Array.unsafe_set cols.packed i (pack 12 src dst edge)
      else escape t cols i key obs

let get t cols i key =
  let p = cols.packed.(i) in
  let a = unpack_field p 4
  and b = unpack_field p (4 + field_bits)
  and c = unpack_field p (4 + (2 * field_bits)) in
  match p land 0xF with
  | 0 -> Engine.Obs_send { src = a; dst = b; edge = c; delay = cols.xs.(i) }
  | 1 -> Engine.Obs_drop { src = a; dst = b; edge = c }
  | 2 -> Engine.Obs_deliver { dst = a; port = b }
  | 3 -> Engine.Obs_timer { node = a; tag = b }
  | 4 -> Engine.Obs_rate_change { node = a; rate = cols.xs.(i) }
  | 5 -> Engine.Obs_node_down { node = a }
  | 6 -> Engine.Obs_node_up { node = a; wipe = b = 1 }
  | 7 -> Engine.Obs_edge_down { edge = a }
  | 8 -> Engine.Obs_edge_up { edge = a }
  | 9 -> Engine.Obs_fault_drop { src = a; dst = b; edge = c }
  | 10 -> Engine.Obs_duplicate { src = a; dst = b; edge = c }
  | 11 -> Engine.Obs_corrupt { src = a; dst = b; edge = c }
  | 12 -> Engine.Obs_lie { src = a; dst = b; edge = c }
  | _ -> Hashtbl.find t.overflow key

let format t = t.format_
let recorded t = t.recorded

(* %.17g round-trips every double exactly, so export -> parse -> re-export
   is byte-identical — the property the schema checker enforces. *)
let fnum x = Printf.sprintf "%.17g" x

let tag_of_obs = function
  | Engine.Obs_send _ -> "send"
  | Engine.Obs_drop _ -> "drop"
  | Engine.Obs_deliver _ -> "deliver"
  | Engine.Obs_timer _ -> "timer"
  | Engine.Obs_rate_change _ -> "rate"
  | Engine.Obs_node_down _ -> "node_down"
  | Engine.Obs_node_up _ -> "node_up"
  | Engine.Obs_edge_down _ -> "edge_down"
  | Engine.Obs_edge_up _ -> "edge_up"
  | Engine.Obs_fault_drop _ -> "fault_drop"
  | Engine.Obs_duplicate _ -> "dup"
  | Engine.Obs_corrupt _ -> "corrupt"
  | Engine.Obs_lie _ -> "lie"

type field = I of int | F of float | B of bool

let fields_of_obs = function
  | Engine.Obs_send { src; dst; edge; delay } ->
      [ ("src", I src); ("dst", I dst); ("edge", I edge); ("delay", F delay) ]
  | Engine.Obs_drop { src; dst; edge }
  | Engine.Obs_fault_drop { src; dst; edge }
  | Engine.Obs_duplicate { src; dst; edge }
  | Engine.Obs_corrupt { src; dst; edge }
  | Engine.Obs_lie { src; dst; edge } ->
      [ ("src", I src); ("dst", I dst); ("edge", I edge) ]
  | Engine.Obs_deliver { dst; port } -> [ ("dst", I dst); ("port", I port) ]
  | Engine.Obs_timer { node; tag } -> [ ("node", I node); ("tag", I tag) ]
  | Engine.Obs_rate_change { node; rate } ->
      [ ("node", I node); ("rate", F rate) ]
  | Engine.Obs_node_down { node } -> [ ("node", I node) ]
  | Engine.Obs_node_up { node; wipe } -> [ ("node", I node); ("wipe", B wipe) ]
  | Engine.Obs_edge_down { edge } | Engine.Obs_edge_up { edge } ->
      [ ("edge", I edge) ]

let field_to_string = function
  | I i -> string_of_int i
  | F x -> fnum x
  | B b -> if b then "true" else "false"

let encode_jsonl ?run e =
  let buf = Buffer.create 96 in
  Buffer.add_char buf '{';
  (match run with
  | Some r ->
      Buffer.add_string buf "\"run\":";
      Buffer.add_string buf (string_of_int r);
      Buffer.add_char buf ','
  | None -> ());
  Buffer.add_string buf "\"seq\":";
  Buffer.add_string buf (string_of_int e.seq);
  Buffer.add_string buf ",\"t\":";
  Buffer.add_string buf (fnum e.time);
  Buffer.add_string buf ",\"ev\":\"";
  Buffer.add_string buf (tag_of_obs e.obs);
  Buffer.add_char buf '"';
  List.iter
    (fun (k, v) ->
      Buffer.add_string buf ",\"";
      Buffer.add_string buf k;
      Buffer.add_string buf "\":";
      Buffer.add_string buf (field_to_string v))
    (fields_of_obs e.obs);
  Buffer.add_char buf '}';
  Buffer.contents buf

(* One fixed CSV column set covering every event kind; fields a kind does
   not carry stay empty. *)
let csv_columns =
  [
    "seq"; "time"; "ev"; "src"; "dst"; "edge"; "delay"; "node"; "port"; "tag";
    "rate"; "wipe";
  ]

let csv_header ?(run = false) () =
  if run then "run" :: csv_columns else csv_columns

let encode_csv ?run e =
  let fields = fields_of_obs e.obs in
  let cell name =
    match List.assoc_opt name fields with
    | Some v -> field_to_string v
    | None -> ""
  in
  let row =
    [ string_of_int e.seq; fnum e.time; tag_of_obs e.obs ]
    @ List.map cell [ "src"; "dst"; "edge"; "delay"; "node"; "port"; "tag";
                      "rate"; "wipe" ]
  in
  let row = match run with Some r -> string_of_int r :: row | None -> row in
  Csv.render_row row

let encode_line ?run format e =
  match format with Jsonl -> encode_jsonl ?run e | Csv -> encode_csv ?run e

let add_chunk g =
  let ci = g.n_chunks in
  if ci = Array.length g.chunks then begin
    let nc = Array.make (max 4 (2 * ci)) (make_cols 0) in
    Array.blit g.chunks 0 nc 0 ci;
    g.chunks <- nc
  end;
  g.chunks.(ci) <- make_cols chunk_size;
  g.n_chunks <- ci + 1

let record_grow t g time obs =
  let i = t.recorded in
  let ci = i lsr chunk_bits in
  if ci = g.n_chunks then add_chunk g;
  put t (Array.unsafe_get g.chunks ci) (i land chunk_mask) i time obs;
  t.recorded <- i + 1

let record_ring t r time obs =
  let i = r.next in
  if Hashtbl.length t.overflow > 0 then Hashtbl.remove t.overflow i;
  put t r.cols i i time obs;
  let j = i + 1 in
  r.next <- (if j = Array.length r.cols.packed then 0 else j);
  t.recorded <- t.recorded + 1

let record_stream t emit time obs =
  emit (encode_line t.format_ { seq = t.recorded; time; obs });
  t.recorded <- t.recorded + 1

let record t time obs =
  match t.store with
  | Grow g -> record_grow t g time obs
  | Ring r -> record_ring t r time obs
  | Stream emit -> record_stream t emit time obs

(* The observer closure is specialized to the storage mode (no per-event
   match) and eta-expanded to a direct two-argument closure; a partial
   application would route every call through the generic currying path. *)
let attach t engine =
  Engine.add_observer engine
    (match t.store with
    | Grow g -> fun time obs -> record_grow t g time obs
    | Ring r -> fun time obs -> record_ring t r time obs
    | Stream emit -> fun time obs -> record_stream t emit time obs)

let entries t =
  match t.store with
  | Grow g ->
      List.init t.recorded (fun i ->
          let cols = g.chunks.(i lsr chunk_bits) in
          let off = i land chunk_mask in
          { seq = i; time = cols.times.(off); obs = get t cols off i })
  | Ring r ->
      let cap = Array.length r.cols.packed in
      let count = min t.recorded cap in
      let start = if t.recorded > cap then r.next else 0 in
      List.init count (fun k ->
          let i = (start + k) mod cap in
          { seq = t.recorded - count + k;
            time = r.cols.times.(i);
            obs = get t r.cols i i })
  | Stream _ -> []

let retained t =
  match t.store with
  | Grow _ -> t.recorded
  | Ring r -> min t.recorded (Array.length r.cols.packed)
  | Stream _ -> 0

let to_lines ?run t = List.map (fun e -> encode_line ?run t.format_ e) (entries t)

let to_string ?run t =
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (encode_line ?run t.format_ e);
      Buffer.add_char buf '\n')
    (entries t);
  Buffer.contents buf

let write ?run t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      (match t.format_ with
      | Csv ->
          output_string oc (Csv.render_row (csv_header ~run:(run <> None) ()));
          output_char oc '\n'
      | Jsonl -> ());
      output_string oc (to_string ?run t))

(* --- JSONL parsing (the schema checker and round-trip tests) ----------- *)

type parsed = { run : int option; entry : entry }

exception Bad of string

let parse_obj line =
  (* Flat {"key":value,...} objects only — exactly what [encode_jsonl]
     emits. Values are integers, floats, booleans, or quote-delimited
     strings without escapes. *)
  let n = String.length line in
  let pos = ref 0 in
  let fail msg = raise (Bad msg) in
  let expect c =
    if !pos >= n || line.[!pos] <> c then
      fail (Printf.sprintf "expected '%c' at offset %d" c !pos);
    incr pos
  in
  let quoted () =
    expect '"';
    let start = !pos in
    while !pos < n && line.[!pos] <> '"' do
      if line.[!pos] = '\\' then fail "escapes are not part of the schema";
      incr pos
    done;
    if !pos >= n then fail "unterminated string";
    let s = String.sub line start (!pos - start) in
    incr pos;
    s
  in
  let raw_value () =
    if !pos < n && line.[!pos] = '"' then quoted ()
    else begin
      let start = !pos in
      while !pos < n && line.[!pos] <> ',' && line.[!pos] <> '}' do
        incr pos
      done;
      String.sub line start (!pos - start)
    end
  in
  expect '{';
  let pairs = ref [] in
  let rec loop () =
    let k = quoted () in
    expect ':';
    let v = raw_value () in
    if List.mem_assoc k !pairs then fail ("duplicate key " ^ k);
    pairs := (k, v) :: !pairs;
    if !pos < n && line.[!pos] = ',' then begin
      incr pos;
      loop ()
    end
  in
  if !pos < n && line.[!pos] <> '}' then loop ();
  expect '}';
  if !pos <> n then fail "trailing bytes after object";
  List.rev !pairs

let parse_line line =
  try
    let pairs = parse_obj line in
    let used = ref [] in
    let take k =
      match List.assoc_opt k pairs with
      | Some v ->
          used := k :: !used;
          v
      | None -> raise (Bad ("missing field " ^ k))
    in
    let take_opt k =
      Option.map
        (fun v ->
          used := k :: !used;
          v)
        (List.assoc_opt k pairs)
    in
    let int_of k v =
      match int_of_string_opt v with
      | Some i -> i
      | None -> raise (Bad (k ^ " is not an integer: " ^ v))
    in
    let float_of k v =
      match float_of_string_opt v with
      | Some x -> x
      | None -> raise (Bad (k ^ " is not a number: " ^ v))
    in
    let bool_of k = function
      | "true" -> true
      | "false" -> false
      | v -> raise (Bad (k ^ " is not a boolean: " ^ v))
    in
    let int k = int_of k (take k) in
    let float k = float_of k (take k) in
    let bool k = bool_of k (take k) in
    let run = Option.map (int_of "run") (take_opt "run") in
    let seq = int "seq" in
    let time = float "t" in
    let obs =
      match take "ev" with
      | "send" ->
          Engine.Obs_send
            { src = int "src"; dst = int "dst"; edge = int "edge";
              delay = float "delay" }
      | "drop" ->
          Engine.Obs_drop { src = int "src"; dst = int "dst"; edge = int "edge" }
      | "deliver" -> Engine.Obs_deliver { dst = int "dst"; port = int "port" }
      | "timer" -> Engine.Obs_timer { node = int "node"; tag = int "tag" }
      | "rate" ->
          Engine.Obs_rate_change { node = int "node"; rate = float "rate" }
      | "node_down" -> Engine.Obs_node_down { node = int "node" }
      | "node_up" -> Engine.Obs_node_up { node = int "node"; wipe = bool "wipe" }
      | "edge_down" -> Engine.Obs_edge_down { edge = int "edge" }
      | "edge_up" -> Engine.Obs_edge_up { edge = int "edge" }
      | "fault_drop" ->
          Engine.Obs_fault_drop
            { src = int "src"; dst = int "dst"; edge = int "edge" }
      | "dup" ->
          Engine.Obs_duplicate
            { src = int "src"; dst = int "dst"; edge = int "edge" }
      | "corrupt" ->
          Engine.Obs_corrupt
            { src = int "src"; dst = int "dst"; edge = int "edge" }
      | "lie" ->
          Engine.Obs_lie
            { src = int "src"; dst = int "dst"; edge = int "edge" }
      | ev -> raise (Bad ("unknown event tag " ^ ev))
    in
    List.iter
      (fun (k, _) ->
        if not (List.mem k !used) then raise (Bad ("unexpected field " ^ k)))
      pairs;
    Ok { run; entry = { seq; time; obs } }
  with Bad msg -> Error msg

let validate_line line =
  match parse_line line with
  | Error _ as e -> e
  | Ok p ->
      let again = encode_jsonl ?run:p.run p.entry in
      if String.equal again line then Ok p
      else Error "line is valid but not in canonical form"
