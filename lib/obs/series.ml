module Csv = Gcs_util.Csv

type point = {
  time : float;
  global_skew : float;
  local_skew : float;
  profile : (int * float) array;
  values : float array;
  rates : float array;
  watched : float array;
}

type t = { mutable rev : point list; mutable length : int }

let create () = { rev = []; length = 0 }

let record t p =
  t.rev <- p :: t.rev;
  t.length <- t.length + 1

let length t = t.length
let points t = Array.of_list (List.rev t.rev)

let fnum x = Printf.sprintf "%.17g" x

let csv_header ?(values = 0) ?(rates = 0) ?(hops = 0) ?(watched = 0) () =
  [ "time"; "global_skew"; "local_skew" ]
  @ List.init hops (fun h -> Printf.sprintf "skew_hop%d" (h + 1))
  @ List.init values (fun i -> Printf.sprintf "value%d" i)
  @ List.init rates (fun i -> Printf.sprintf "rate%d" i)
  @ List.init watched (fun i -> Printf.sprintf "watch%d" i)

let csv_row p =
  [ fnum p.time; fnum p.global_skew; fnum p.local_skew ]
  @ List.map (fun (_, s) -> fnum s) (Array.to_list p.profile)
  @ List.map fnum (Array.to_list p.values)
  @ List.map fnum (Array.to_list p.rates)
  @ List.map fnum (Array.to_list p.watched)

let csv_rows t = List.map csv_row (List.rev t.rev)

let write_csv t ~path =
  let pts = points t in
  let values, rates, hops, watched =
    if Array.length pts = 0 then (0, 0, 0, 0)
    else
      let p = pts.(0) in
      ( Array.length p.values,
        Array.length p.rates,
        Array.length p.profile,
        Array.length p.watched )
  in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc
        (Csv.render_row (csv_header ~values ~rates ~hops ~watched ()));
      output_char oc '\n';
      Array.iter
        (fun p ->
          output_string oc (Csv.render_row (csv_row p));
          output_char oc '\n')
        pts)
