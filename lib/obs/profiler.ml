module Engine = Gcs_sim.Engine

let n_kinds = 3

let kind_index = function
  | Engine.Dispatch_deliver -> 0
  | Engine.Dispatch_timer -> 1
  | Engine.Dispatch_control -> 2

type t = {
  sample_every : int;
  clock_cost : float;
  mutable t0 : float;
  sampled : int array;
  sampled_wall : float array;
  mutable phases_rev : (string * float) list;
}

(* A sampled interval spans one full clock read (the return of the first
   call plus the entry of the second), which on syscall-backed clocks can
   dwarf a sub-microsecond handler. Calibrate that cost once per process
   and subtract it from every sample. *)
let clock_cost =
  lazy
    (let n = 256 in
     let t0 = Unix.gettimeofday () in
     for _ = 1 to n do
       ignore (Sys.opaque_identity (Unix.gettimeofday ()))
     done;
     (Unix.gettimeofday () -. t0) /. float_of_int n)

let create ?(sample_every = 64) () =
  if sample_every <= 0 then
    invalid_arg "Profiler.create: sample_every must be > 0";
  {
    sample_every;
    clock_cost = Lazy.force clock_cost;
    t0 = 0.;
    sampled = Array.make n_kinds 0;
    sampled_wall = Array.make n_kinds 0.;
    phases_rev = [];
  }

let sample_every t = t.sample_every

(* The engine's sampling gate ([Engine.config]'s [?hook_every]) already
   skips unsampled dispatches and keeps exact per-kind counts, so these
   hooks only ever run for dispatches that are being timed. *)
let hooks t =
  let before _kind = t.t0 <- Unix.gettimeofday () in
  let after kind =
    let i = kind_index kind in
    t.sampled.(i) <- t.sampled.(i) + 1;
    let dt = Unix.gettimeofday () -. t.t0 -. t.clock_cost in
    t.sampled_wall.(i) <- t.sampled_wall.(i) +. Float.max 0. dt
  in
  { Engine.before; after }

let phase t name f =
  let start = Unix.gettimeofday () in
  Fun.protect
    ~finally:(fun () ->
      t.phases_rev <- (name, Unix.gettimeofday () -. start) :: t.phases_rev)
    f

type report = {
  events : int;
  messages : int;
  deliver_count : int;
  timer_count : int;
  control_count : int;
  deliver_wall : float;
  timer_wall : float;
  control_wall : float;
  heap_high_water : int;
  total_wall : float;
  phases : (string * float) list;
}

(* Per-kind walls are estimates: only every [sample_every]-th dispatch is
   timed, and the sampled total is scaled up by count/sampled. *)
let estimate t i count =
  if t.sampled.(i) = 0 then 0.
  else t.sampled_wall.(i) *. float_of_int count /. float_of_int t.sampled.(i)

let finish t ~events ~messages ~deliver_count ~timer_count ~control_count
    ~heap_high_water =
  let phases = List.rev t.phases_rev in
  let dw = estimate t 0 deliver_count
  and tw = estimate t 1 timer_count
  and cw = estimate t 2 control_count in
  let total_wall =
    match phases with
    | [] -> dw +. tw +. cw
    | ps -> List.fold_left (fun a (_, w) -> a +. w) 0. ps
  in
  {
    events;
    messages;
    deliver_count;
    timer_count;
    control_count;
    deliver_wall = dw;
    timer_wall = tw;
    control_wall = cw;
    heap_high_water;
    total_wall;
    phases;
  }

let events_per_sec r =
  if r.total_wall <= 0. then 0. else float_of_int r.events /. r.total_wall

let merge reports =
  match reports with
  | [] -> invalid_arg "Profiler.merge: empty list"
  | first :: _ ->
      let sum f = List.fold_left (fun a r -> a + f r) 0 reports in
      let sumf f = List.fold_left (fun a r -> a +. f r) 0. reports in
      let maxi f = List.fold_left (fun a r -> Stdlib.max a (f r)) 0 reports in
      let phases =
        (* Keep the first report's phase order; sum walls by name. *)
        List.map
          (fun (name, _) ->
            ( name,
              List.fold_left
                (fun a r ->
                  match List.assoc_opt name r.phases with
                  | Some w -> a +. w
                  | None -> a)
                0. reports ))
          first.phases
      in
      {
        events = sum (fun r -> r.events);
        messages = sum (fun r -> r.messages);
        deliver_count = sum (fun r -> r.deliver_count);
        timer_count = sum (fun r -> r.timer_count);
        control_count = sum (fun r -> r.control_count);
        deliver_wall = sumf (fun r -> r.deliver_wall);
        timer_wall = sumf (fun r -> r.timer_wall);
        control_wall = sumf (fun r -> r.control_wall);
        heap_high_water = maxi (fun r -> r.heap_high_water);
        total_wall = sumf (fun r -> r.total_wall);
        phases;
      }

let lines r =
  let f = Printf.sprintf in
  [
    f "events processed   %d" r.events;
    f "messages sent      %d" r.messages;
    f "events/sec         %.0f" (events_per_sec r);
    f "heap high-water    %d" r.heap_high_water;
    f "wall time          %.4fs" r.total_wall;
    f "  deliver          %d dispatches, ~%.4fs" r.deliver_count r.deliver_wall;
    f "  timer            %d dispatches, ~%.4fs" r.timer_count r.timer_wall;
    f "  control          %d dispatches, ~%.4fs" r.control_count r.control_wall;
  ]
  @ List.map (fun (name, w) -> f "  phase %-10s %.4fs" name w) r.phases
