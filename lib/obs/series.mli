(** Periodic time-series recorder for skew and per-node signals.

    A series is storage only: it does not know how to measure anything.
    The runner computes each point (from its samples, the metrics layer,
    and the hardware clocks) at its own cadence and calls {!record}; this
    module keeps the points in order and exports them as CSV. Keeping the
    measurement logic out of this library avoids a dependency cycle —
    [gcs.core] depends on [gcs.obs], not the other way round. *)

type point = {
  time : float;
  global_skew : float;  (** max pairwise logical-clock difference *)
  local_skew : float;  (** max difference across any live edge *)
  profile : (int * float) array;
      (** gradient profile: [(hops, max skew at that distance)], sorted by
          hop count; empty when profile capture is off *)
  values : float array;
      (** per-node logical clock values; empty when not captured *)
  rates : float array;
      (** per-node hardware rates; empty when not captured *)
  watched : float array;
      (** absolute skew of each watched node pair, in the order of the
          capture request's [series_watch]; empty when none *)
}

type t

val create : unit -> t
val record : t -> point -> unit
val length : t -> int

val points : t -> point array
(** Chronological order. *)

val csv_header :
  ?values:int -> ?rates:int -> ?hops:int -> ?watched:int -> unit -> string list
(** Column names for a series whose points carry the given array widths. *)

val csv_row : point -> string list
(** One row for one point, floats in ["%.17g"]. *)

val csv_rows : t -> string list list
(** One row per point; column count follows the widths of each point's
    arrays. *)

val write_csv : t -> path:string -> unit
(** Header (sized from the first point) plus all rows. *)
