(** Sink configuration and per-run capture results.

    A {!request} is a pure description of which sinks a run should
    install; the runner materialises fresh sinks from it for every run.
    Because the description carries no sink state, the same request can
    be shared across a seed sweep and across domains without any
    cross-run leakage — per-run byte identity of exports holds by
    construction. The one exception is [events_stream]: a streaming
    callback is shared mutable state, so it is only meaningful for
    single-run use. *)

type request = {
  events : bool;  (** record an event log *)
  events_format : Event_log.format;
  events_capacity : int option;  (** ring capacity; [None] = unbounded *)
  events_stream : (string -> unit) option;
      (** streaming emit callback (single-run only); takes precedence over
          [events_capacity] *)
  series_period : float option;
      (** record a skew series every this many time units; [None] = off *)
  series_values : bool;  (** include per-node logical clock values *)
  series_rates : bool;  (** include per-node hardware rates *)
  series_profile : bool;  (** include the per-hop gradient profile *)
  series_watch : (int * int) list;
      (** node pairs whose absolute skew is recorded as a dedicated series
          column — e.g. a churned edge whose decay curve an experiment
          plots; [[]] = none *)
  profile : bool;  (** run the sampled profiler *)
}

val none : request
(** Nothing captured — the default, and exactly the pre-redesign
    behaviour. *)

val full : ?series_period:float -> unit -> request
(** Event log (unbounded JSONL) + series (values, rates, profile; period
    defaults to 1.) + profiler. *)

type captured = {
  event_log : Event_log.t option;
  series : Series.t option;
  profile : Profiler.report option;
}
(** What a completed run hands back, populated according to the request.
    Always [empty] when the request was {!none}, which keeps
    [Runner.result] structural equality intact for determinism checks. *)

val empty : captured
