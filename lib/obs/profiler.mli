(** Sampled simulator profiler.

    Attaches to the engine's dispatch hooks and measures where simulation
    wall time goes without paying two clock reads per event: dispatch
    counts are exact, but only every [sample_every]-th dispatch is timed,
    and per-kind wall totals are scaled estimates. The hooks allocate
    nothing, so profiling stays within the observer-overhead budget that
    bench E21 asserts.

    The profiler never touches algorithm state or randomness; enabling it
    cannot change any simulation result. *)

type t

val create : ?sample_every:int -> unit -> t
(** [sample_every] defaults to 64 and must be positive; [1] times every
    dispatch (exact walls, higher overhead). The cost of one clock read
    is calibrated once per process and subtracted from every sampled
    interval, so syscall-backed clocks don't swamp cheap handlers. *)

val sample_every : t -> int

val hooks : t -> Gcs_sim.Engine.dispatch_hook
(** Install by passing [~hook:(hooks t) ~hook_every:(sample_every t)] to
    {!Gcs_sim.Engine.config}. The engine's sampling gate skips the hook
    calls on unsampled dispatches and keeps the exact per-kind counts, so
    the hooks themselves only start and stop the sample timer. *)

val phase : t -> string -> (unit -> 'a) -> 'a
(** [phase t name f] runs [f] and records its wall time under [name]
    (recorded even if [f] raises). The runner wraps its warm-up and
    measurement windows in phases. *)

type report = {
  events : int;  (** engine events processed (from the runner) *)
  messages : int;  (** messages sent (from the runner) *)
  deliver_count : int;
  timer_count : int;
  control_count : int;
  deliver_wall : float;  (** estimated seconds in message handlers *)
  timer_wall : float;  (** estimated seconds in timer handlers *)
  control_wall : float;  (** estimated seconds in control callbacks *)
  heap_high_water : int;  (** max pending events (from the engine) *)
  total_wall : float;
      (** sum of phase walls when phases were recorded, else the sum of
          the per-kind estimates *)
  phases : (string * float) list;  (** in recording order *)
}

val finish :
  t ->
  events:int ->
  messages:int ->
  deliver_count:int ->
  timer_count:int ->
  control_count:int ->
  heap_high_water:int ->
  report
(** Exact counts come from the engine ({!Gcs_sim.Engine.dispatch_count})
    or the caller's own bookkeeping; the profiler itself only holds the
    sampled walls. *)

val events_per_sec : report -> float
(** [0.] when no wall time was recorded. *)

val merge : report list -> report
(** Sums counts and walls, takes the max heap high-water, and sums phase
    walls by name (order taken from the first report). Used by the
    parallel runner to aggregate shard reports deterministically. Raises
    [Invalid_argument] on an empty list. *)

val lines : report -> string list
(** Human-readable summary, one line per string (no trailing newline). *)
