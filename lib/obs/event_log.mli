(** Structured event sink with a stable export schema.

    An event log is an engine observer that flattens {!Gcs_sim.Engine}
    observations into unboxed columns at record time and defers all
    formatting (and reconstruction) to export time, so recording neither
    allocates nor retains heap values the GC has to trace. Three storage
    modes:

    - unbounded (default): every event is retained;
    - ring: [~capacity] keeps only the most recent entries in bounded
      memory;
    - streaming: [~stream] formats each event immediately and hands the
      line to a callback; nothing is retained.

    Because observers never mutate algorithm state or consume algorithm
    randomness, attaching a log does not perturb the simulation, and the
    exported bytes are identical regardless of how runs are scheduled
    across domains. *)

type format = Jsonl | Csv

type entry = { seq : int; time : float; obs : Gcs_sim.Engine.observation }
(** [seq] numbers events from 0 in observation order; it survives ring
    eviction, so gaps at the front reveal how much was discarded. *)

type t

val create :
  ?capacity:int -> ?stream:(string -> unit) -> ?format_:format -> unit -> t
(** [format_] defaults to [Jsonl]. [capacity] must be positive and selects
    the ring mode; [stream] selects streaming mode and takes precedence
    over [capacity]. Streaming callbacks receive one formatted line per
    event, without a trailing newline. *)

val attach : t -> 'msg Gcs_sim.Engine.t -> unit
(** Register as one of the engine's observer sinks. *)

val record : t -> float -> Gcs_sim.Engine.observation -> unit
(** Record one observation directly (what [attach] wires up). *)

val format : t -> format

val recorded : t -> int
(** Total events seen, including any evicted from a ring. *)

val retained : t -> int
(** Events currently held (0 in streaming mode). *)

val entries : t -> entry list
(** Retained entries in chronological order (empty in streaming mode). *)

(** {1 Export}

    The JSONL schema is one flat object per line with fields in a fixed
    order: [{"run":R,]
    [{"seq":N,"t":T,"ev":"tag",...}] where the per-kind fields follow the
    tag and ["run"] is present only when the [?run] argument is given.
    Floats are printed with ["%.17g"] so they round-trip exactly; the
    output is therefore byte-identical across processes and [--jobs]
    values. *)

val encode_line : ?run:int -> format -> entry -> string
(** Format one entry (no trailing newline). *)

val csv_header : ?run:bool -> unit -> string list
(** Fixed CSV column set covering every event kind; [~run:true] prepends
    a [run] column. *)

val to_lines : ?run:int -> t -> string list
val to_string : ?run:int -> t -> string

val write : ?run:int -> t -> path:string -> unit
(** Write retained entries to [path]; CSV output starts with a header
    row, JSONL does not. *)

(** {1 Parsing and schema validation} *)

type parsed = { run : int option; entry : entry }

val parse_line : string -> (parsed, string) result
(** Parse one JSONL line, rejecting unknown tags, missing fields, extra
    fields, and malformed values. *)

val validate_line : string -> (parsed, string) result
(** [parse_line] plus a canonical-form check: re-encoding the parsed
    entry must reproduce the input bytes exactly. This is what
    [gcs-cli trace --check-schema] runs on every exported line. *)
