type request = {
  events : bool;
  events_format : Event_log.format;
  events_capacity : int option;
  events_stream : (string -> unit) option;
  series_period : float option;
  series_values : bool;
  series_rates : bool;
  series_profile : bool;
  series_watch : (int * int) list;
  profile : bool;
}

let none =
  {
    events = false;
    events_format = Event_log.Jsonl;
    events_capacity = None;
    events_stream = None;
    series_period = None;
    series_values = false;
    series_rates = false;
    series_profile = true;
    series_watch = [];
    profile = false;
  }

let full ?(series_period = 1.) () =
  {
    none with
    events = true;
    series_period = Some series_period;
    series_values = true;
    series_rates = true;
    profile = true;
  }

type captured = {
  event_log : Event_log.t option;
  series : Series.t option;
  profile : Profiler.report option;
}

let empty = { event_log = None; series = None; profile = None }
