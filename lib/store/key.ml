module Topology = Gcs_graph.Topology
module Fault_plan = Gcs_sim.Fault_plan

let current_schema_version = 1

type t = {
  schema_version : int;
  rho : float;
  mu : float;
  d_min : float;
  d_max : float;
  beacon_period : float;
  kappa : float;
  staleness_limit : float;
  topology : Topology.spec;
  algo : string;
  drift : string;
  loss : float;
  horizon : float;
  sample_period : float;
  warmup : float;
  seed : int;
  fault_plan : Fault_plan.t option;
}

(* Canonical float text: %.17g round-trips every finite float exactly
   through float_of_string, so equal floats always render identically. *)
let flt = Printf.sprintf "%.17g"

let canon_edge_spec = function
  | Fault_plan.All_edges -> Fault_plan.All_edges
  | Fault_plan.Edges pairs ->
      let orient (u, v) = if u <= v then (u, v) else (v, u) in
      Fault_plan.Edges (List.sort_uniq compare (List.map orient pairs))
  | Fault_plan.Cut nodes -> Fault_plan.Cut (List.sort_uniq compare nodes)

let canon_event (e : Fault_plan.event) : Fault_plan.event =
  match e with
  | Link_partition { at; edges } ->
      Link_partition { at; edges = canon_edge_spec edges }
  | Link_heal { at; edges } -> Link_heal { at; edges = canon_edge_spec edges }
  | Node_crash _ | Node_recover _ | Clock_jump _ | Clock_rate_fault _
  | Byzantine _ ->
      e
  | Msg_duplicate r -> Msg_duplicate { r with edges = canon_edge_spec r.edges }
  | Msg_reorder r -> Msg_reorder { r with edges = canon_edge_spec r.edges }
  | Msg_corrupt r -> Msg_corrupt { r with edges = canon_edge_spec r.edges }

let canonical_plan p =
  let p = Fault_plan.of_events (List.map canon_event (Fault_plan.events p)) in
  (* The textual codec renders times with %g; rounding the plan through it
     once makes [to_string] a fixed point, so the encoded key is stable
     however the plan's floats were produced. *)
  match Fault_plan.of_string (Fault_plan.to_string p) with
  | Ok p' -> p'
  | Error _ -> p

let canonical_topology topo =
  (* spec_name renders gnp/geometric parameters with %g; round once so
     encode/decode is a fixed point (mirrors [canonical_plan]). *)
  match Topology.spec_of_string (Topology.spec_name topo) with
  | Ok t -> t
  | Error _ -> topo

let make ?(schema_version = current_schema_version) ?(drift = "random")
    ?(loss = 0.) ?fault_plan ~rho ~mu ~d_min ~d_max ~beacon_period ~kappa
    ~staleness_limit ~topology ~algo ~horizon ~sample_period ~warmup ~seed () =
  {
    schema_version;
    rho;
    mu;
    d_min;
    d_max;
    beacon_period;
    kappa;
    staleness_limit;
    topology = canonical_topology topology;
    algo;
    drift;
    loss;
    horizon;
    sample_period;
    warmup;
    seed;
    fault_plan = Option.map canonical_plan fault_plan;
  }

let magic = "gcs.store:key:1"

let encode t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "schema=%d" t.schema_version;
  line "rho=%s" (flt t.rho);
  line "mu=%s" (flt t.mu);
  line "d_min=%s" (flt t.d_min);
  line "d_max=%s" (flt t.d_max);
  line "beacon_period=%s" (flt t.beacon_period);
  line "kappa=%s" (flt t.kappa);
  line "staleness_limit=%s" (flt t.staleness_limit);
  line "topology=%s" (Topology.spec_name t.topology);
  line "algo=%s" t.algo;
  line "drift=%s" t.drift;
  line "loss=%s" (flt t.loss);
  line "horizon=%s" (flt t.horizon);
  line "sample_period=%s" (flt t.sample_period);
  line "warmup=%s" (flt t.warmup);
  line "seed=%d" t.seed;
  (match t.fault_plan with
  | None -> ()
  | Some p -> line "plan=%s" (Fault_plan.to_string p));
  Buffer.contents b

exception Bad of string

let decode s =
  try
    let lines =
      match String.split_on_char '\n' s with
      | hd :: rest when String.equal hd magic ->
          (* encode emits a trailing newline, so the last fragment is "". *)
          List.filter (fun l -> l <> "") rest
      | hd :: _ -> raise (Bad (Printf.sprintf "bad magic %S" hd))
      | [] -> raise (Bad "empty input")
    in
    let remaining = ref lines in
    let field name =
      match !remaining with
      | [] -> raise (Bad (Printf.sprintf "missing field %s" name))
      | l :: rest -> (
          match String.index_opt l '=' with
          | None -> raise (Bad (Printf.sprintf "malformed line %S" l))
          | Some i ->
              let k = String.sub l 0 i in
              if k <> name then
                raise (Bad (Printf.sprintf "expected field %s, got %s" name k));
              remaining := rest;
              String.sub l (i + 1) (String.length l - i - 1))
    in
    let fltf name =
      let v = field name in
      match float_of_string_opt v with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "field %s: bad float %S" name v))
    in
    let intf name =
      let v = field name in
      match int_of_string_opt v with
      | Some i -> i
      | None -> raise (Bad (Printf.sprintf "field %s: bad int %S" name v))
    in
    let schema_version = intf "schema" in
    let rho = fltf "rho" in
    let mu = fltf "mu" in
    let d_min = fltf "d_min" in
    let d_max = fltf "d_max" in
    let beacon_period = fltf "beacon_period" in
    let kappa = fltf "kappa" in
    let staleness_limit = fltf "staleness_limit" in
    let topology =
      let v = field "topology" in
      match Topology.spec_of_string v with
      | Ok t -> t
      | Error e -> raise (Bad (Printf.sprintf "field topology: %s" e))
    in
    let algo = field "algo" in
    let drift = field "drift" in
    let loss = fltf "loss" in
    let horizon = fltf "horizon" in
    let sample_period = fltf "sample_period" in
    let warmup = fltf "warmup" in
    let seed = intf "seed" in
    let fault_plan =
      match !remaining with
      | [] -> None
      | _ -> (
          let v = field "plan" in
          match Fault_plan.of_string v with
          | Ok p -> Some p
          | Error e -> raise (Bad (Printf.sprintf "field plan: %s" e)))
    in
    (match !remaining with
    | [] -> ()
    | l :: _ -> raise (Bad (Printf.sprintf "trailing line %S" l)));
    Ok
      (make ~schema_version ~drift ~loss ?fault_plan ~rho ~mu ~d_min ~d_max
         ~beacon_period ~kappa ~staleness_limit ~topology ~algo ~horizon
         ~sample_period ~warmup ~seed ())
  with Bad msg -> Error msg

let hash t = Digest.to_hex (Digest.string (encode t))
