type fault = { transient : float; fault_drops : int; resync : float option }

type t = {
  nodes : int;
  edges : int;
  diameter : int;
  max_global : float;
  max_local : float;
  mean_local : float;
  p99_local : float;
  final_global : float;
  final_local : float;
  samples_used : int;
  messages : int;
  dropped : int;
  dropped_faults : int;
  events : int;
  jump_count : int;
  jump_total : float;
  jump_max : float;
  fault : fault option;
}

let magic = "gcs.store:outcome:1"
let flt = Printf.sprintf "%.17g"

let encode t =
  let b = Buffer.create 256 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  line "%s" magic;
  line "nodes=%d" t.nodes;
  line "edges=%d" t.edges;
  line "diameter=%d" t.diameter;
  line "max_global=%s" (flt t.max_global);
  line "max_local=%s" (flt t.max_local);
  line "mean_local=%s" (flt t.mean_local);
  line "p99_local=%s" (flt t.p99_local);
  line "final_global=%s" (flt t.final_global);
  line "final_local=%s" (flt t.final_local);
  line "samples_used=%d" t.samples_used;
  line "messages=%d" t.messages;
  line "dropped=%d" t.dropped;
  line "dropped_faults=%d" t.dropped_faults;
  line "events=%d" t.events;
  line "jump_count=%d" t.jump_count;
  line "jump_total=%s" (flt t.jump_total);
  line "jump_max=%s" (flt t.jump_max);
  (match t.fault with
  | None -> ()
  | Some f ->
      line "fault_transient=%s" (flt f.transient);
      line "fault_drops=%d" f.fault_drops;
      line "fault_resync=%s"
        (match f.resync with None -> "never" | Some r -> flt r));
  Buffer.contents b

exception Bad of string

let decode s =
  try
    let lines =
      match String.split_on_char '\n' s with
      | hd :: rest when String.equal hd magic ->
          List.filter (fun l -> l <> "") rest
      | hd :: _ -> raise (Bad (Printf.sprintf "bad magic %S" hd))
      | [] -> raise (Bad "empty input")
    in
    let remaining = ref lines in
    let field name =
      match !remaining with
      | [] -> raise (Bad (Printf.sprintf "missing field %s" name))
      | l :: rest -> (
          match String.index_opt l '=' with
          | None -> raise (Bad (Printf.sprintf "malformed line %S" l))
          | Some i ->
              let k = String.sub l 0 i in
              if k <> name then
                raise (Bad (Printf.sprintf "expected field %s, got %s" name k));
              remaining := rest;
              String.sub l (i + 1) (String.length l - i - 1))
    in
    let fltf name =
      let v = field name in
      match float_of_string_opt v with
      | Some f -> f
      | None -> raise (Bad (Printf.sprintf "field %s: bad float %S" name v))
    in
    let intf name =
      let v = field name in
      match int_of_string_opt v with
      | Some i -> i
      | None -> raise (Bad (Printf.sprintf "field %s: bad int %S" name v))
    in
    let nodes = intf "nodes" in
    let edges = intf "edges" in
    let diameter = intf "diameter" in
    let max_global = fltf "max_global" in
    let max_local = fltf "max_local" in
    let mean_local = fltf "mean_local" in
    let p99_local = fltf "p99_local" in
    let final_global = fltf "final_global" in
    let final_local = fltf "final_local" in
    let samples_used = intf "samples_used" in
    let messages = intf "messages" in
    let dropped = intf "dropped" in
    let dropped_faults = intf "dropped_faults" in
    let events = intf "events" in
    let jump_count = intf "jump_count" in
    let jump_total = fltf "jump_total" in
    let jump_max = fltf "jump_max" in
    let fault =
      match !remaining with
      | [] -> None
      | _ ->
          let transient = fltf "fault_transient" in
          let fault_drops = intf "fault_drops" in
          let resync =
            match field "fault_resync" with
            | "never" -> None
            | v -> (
                match float_of_string_opt v with
                | Some r -> Some r
                | None ->
                    raise
                      (Bad (Printf.sprintf "field fault_resync: bad value %S" v))
                )
          in
          Some { transient; fault_drops; resync }
    in
    (match !remaining with
    | [] -> ()
    | l :: _ -> raise (Bad (Printf.sprintf "trailing line %S" l)));
    Ok
      {
        nodes;
        edges;
        diameter;
        max_global;
        max_local;
        mean_local;
        p99_local;
        final_global;
        final_local;
        samples_used;
        messages;
        dropped;
        dropped_faults;
        events;
        jump_count;
        jump_total;
        jump_max;
        fault;
      }
  with Bad msg -> Error msg
