(** The durable result of one run: everything a sweep row or a baseline
    comparison needs, flattened to primitives so the store does not depend
    on [gcs.core] (which sits above it and threads store handles through
    its runners). [Gcs_core.Runner.outcome] bridges a runner result into
    this record.

    Encodes to a versioned line-oriented text block with [%.17g] floats, so
    decoding reproduces the original values bit-for-bit — cached sweep rows
    are byte-identical to freshly computed ones. *)

type fault = {
  transient : float;  (** worst transient skew across episodes *)
  fault_drops : int;  (** messages lost to partitions/crashes *)
  resync : float option;  (** max time-to-resync; [None] = never *)
}

type t = {
  nodes : int;
  edges : int;
  diameter : int;
  max_global : float;
  max_local : float;
  mean_local : float;
  p99_local : float;
  final_global : float;
  final_local : float;
  samples_used : int;
  messages : int;
  dropped : int;  (** messages lost to the loss law *)
  dropped_faults : int;
  events : int;
  jump_count : int;
  jump_total : float;
  jump_max : float;
  fault : fault option;  (** [Some] iff the run had a fault plan *)
}

val encode : t -> string
val decode : string -> (t, string) result
(** [decode (encode o) = Ok o], bit-for-bit on every float. *)
