let log_name = "log"
let index_name = "index"
let index_magic = "gcs.store:index:1"
let frame_magic = "GCSR1"

type entry = {
  off : int;
  len : int;  (** whole frame, header line through closing newline *)
  mutable cached : (Key.t * Outcome.t) option;
}

type t = {
  dir : string;
  log_path : string;
  index_path : string;
  tbl : (string, entry) Hashtbl.t;  (** hash -> live record *)
  mutable log_len : int;
  mutable out : out_channel;
  mutable inc : in_channel;
  mutable open_index_ok : bool;
  lock : Mutex.t;
}

let default_dir () =
  match Sys.getenv_opt "GCS_STORE_DIR" with
  | Some d when d <> "" -> d
  | _ -> (
      match Sys.getenv_opt "XDG_CACHE_HOME" with
      | Some d when d <> "" -> Filename.concat d "gcs"
      | _ -> (
          match Sys.getenv_opt "HOME" with
          | Some d when d <> "" ->
              Filename.concat (Filename.concat d ".cache") "gcs"
          | _ -> Filename.concat (Filename.get_temp_dir_name ()) "gcs"))

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let read_file path =
  if not (Sys.file_exists path) then ""
  else begin
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  end

(* Write [content] to [path] atomically: same-directory tmp + rename. *)
let write_file_atomic path content =
  let tmp = path ^ ".tmp" in
  let oc = open_out_bin tmp in
  (try
     output_string oc content;
     flush oc;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let frame key outcome =
  let kb = Key.encode key in
  let pb = Outcome.encode outcome in
  let digest = Digest.to_hex (Digest.string (kb ^ pb)) in
  Printf.sprintf "%s %d %d %s\n%s%s\n" frame_magic (String.length kb)
    (String.length pb) digest kb pb

(* One record starting at [off] in [content]:
   [`Rec] well-formed, [`Skip] well-framed but corrupt (digest or decode),
   [`Torn] cannot resync — everything from [off] is a torn tail. *)
let parse_record content off =
  let len = String.length content in
  match String.index_from_opt content off '\n' with
  | None -> `Torn
  | Some nl -> (
      let header = String.sub content off (nl - off) in
      match String.split_on_char ' ' header with
      | [ m; klen; plen; digest ] when m = frame_magic -> (
          match (int_of_string_opt klen, int_of_string_opt plen) with
          | Some klen, Some plen when klen >= 0 && plen >= 0 -> (
              let body = nl + 1 in
              let stop = body + klen + plen in
              if stop >= len then `Torn
              else if content.[stop] <> '\n' then `Torn
              else
                let frame_len = stop + 1 - off in
                let kb = String.sub content body klen in
                let pb = String.sub content (body + klen) plen in
                if Digest.to_hex (Digest.string (kb ^ pb)) <> digest then
                  `Skip (frame_len, "digest mismatch")
                else
                  match (Key.decode kb, Outcome.decode pb) with
                  | Ok k, Ok o -> `Rec (k, o, frame_len)
                  | Error e, _ -> `Skip (frame_len, "key: " ^ e)
                  | _, Error e -> `Skip (frame_len, "outcome: " ^ e))
          | _ -> `Torn)
      | _ -> `Torn)

type scan = {
  scan_tbl : (string, entry) Hashtbl.t;
  scan_records : int;  (** well-framed records (live and superseded) *)
  scan_corrupt : int;
  scan_end : int;  (** clean prefix length; bytes past it are torn *)
}

let scan_log content =
  let tbl = Hashtbl.create 64 in
  let records = ref 0 and corrupt = ref 0 in
  let off = ref 0 in
  let len = String.length content in
  let stop = ref false in
  while (not !stop) && !off < len do
    match parse_record content !off with
    | `Rec (k, o, flen) ->
        incr records;
        Hashtbl.replace tbl (Key.hash k)
          { off = !off; len = flen; cached = Some (k, o) };
        off := !off + flen
    | `Skip (flen, _) ->
        incr corrupt;
        off := !off + flen
    | `Torn -> stop := true
  done;
  {
    scan_tbl = tbl;
    scan_records = !records;
    scan_corrupt = !corrupt;
    scan_end = !off;
  }

let index_content t =
  let b = Buffer.create 256 in
  Buffer.add_string b
    (Printf.sprintf "%s %d %d\n" index_magic t.log_len (Hashtbl.length t.tbl));
  let rows =
    Hashtbl.fold (fun h e acc -> (h, e.off, e.len) :: acc) t.tbl []
    |> List.sort compare
  in
  List.iter
    (fun (h, off, len) -> Buffer.add_string b (Printf.sprintf "%s %d %d\n" h off len))
    rows;
  Buffer.contents b

let write_index t = write_file_atomic t.index_path (index_content t)

(* Load the index snapshot if it exactly covers the current log. *)
let try_index path log_len =
  match String.split_on_char '\n' (read_file path) with
  | header :: rows -> (
      match String.split_on_char ' ' header with
      | [ m; ilen; count ]
        when m = index_magic
             && int_of_string_opt ilen = Some log_len ->
          let count = int_of_string_opt count in
          let tbl = Hashtbl.create 64 in
          let ok =
            List.for_all
              (fun row ->
                row = ""
                ||
                match String.split_on_char ' ' row with
                | [ h; off; len ] -> (
                    match (int_of_string_opt off, int_of_string_opt len) with
                    | Some off, Some len
                      when off >= 0 && len > 0 && off + len <= log_len ->
                        Hashtbl.replace tbl h { off; len; cached = None };
                        true
                    | _ -> false)
                | _ -> false)
              rows
          in
          if ok && count = Some (Hashtbl.length tbl) then Some tbl else None
      | _ -> None)
  | [] -> None

let reopen_channels t =
  t.out <-
    open_out_gen [ Open_wronly; Open_append; Open_creat; Open_binary ] 0o644
      t.log_path;
  t.inc <- open_in_bin t.log_path

let open_ ?(create = true) dir =
  if create then mkdir_p dir
  else if not (Sys.file_exists dir) then
    invalid_arg (Printf.sprintf "Store.open_: no such directory %s" dir);
  let log_path = Filename.concat dir log_name in
  let index_path = Filename.concat dir index_name in
  let content = read_file log_path in
  let file_len = String.length content in
  let tbl, log_len, index_ok =
    match try_index index_path file_len with
    | Some tbl -> (tbl, file_len, true)
    | None ->
        let s = scan_log content in
        if s.scan_end < file_len then
          (* Torn tail (crash mid-append): truncate back to the clean
             prefix so the log is append-ready again. *)
          Unix.truncate log_path s.scan_end;
        ( s.scan_tbl,
          s.scan_end,
          file_len = 0 && not (Sys.file_exists index_path) )
  in
  let t =
    {
      dir;
      log_path;
      index_path;
      tbl;
      log_len;
      out = stdout;
      inc = stdin;
      open_index_ok = index_ok;
      lock = Mutex.create ();
    }
  in
  reopen_channels t;
  write_index t;
  t

let dir t = t.dir
let length t = Mutex.protect t.lock (fun () -> Hashtbl.length t.tbl)
let log_bytes t = Mutex.protect t.lock (fun () -> t.log_len)

(* Load an entry's record from the log; caller holds the lock. *)
let load t entry =
  match entry.cached with
  | Some kv -> kv
  | None -> (
      seek_in t.inc entry.off;
      let bytes = really_input_string t.inc entry.len in
      match parse_record bytes 0 with
      | `Rec (k, o, _) ->
          entry.cached <- Some (k, o);
          (k, o)
      | `Skip (_, e) -> failwith ("Store: corrupt indexed record: " ^ e)
      | `Torn -> failwith "Store: truncated indexed record")

let put t key outcome =
  Mutex.protect t.lock (fun () ->
      let fr = frame key outcome in
      output_string t.out fr;
      flush t.out;
      Hashtbl.replace t.tbl (Key.hash key)
        { off = t.log_len; len = String.length fr; cached = Some (key, outcome) };
      t.log_len <- t.log_len + String.length fr)

let find t key =
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.tbl (Key.hash key) with
      | None -> None
      | Some e -> Some (snd (load t e)))

let mem t key = Mutex.protect t.lock (fun () -> Hashtbl.mem t.tbl (Key.hash key))

let sorted_entries t =
  Hashtbl.fold (fun h e acc -> (h, e) :: acc) t.tbl [] |> List.sort compare

let iter t f =
  let kvs =
    Mutex.protect t.lock (fun () ->
        List.map (fun (_, e) -> load t e) (sorted_entries t))
  in
  List.iter (fun (k, o) -> f k o) kvs

let gc ?(keep_schema = Key.current_schema_version) t =
  Mutex.protect t.lock (fun () ->
      (* Count what the log actually holds (including superseded and
         corrupt records) so the dropped count is honest. *)
      let before = scan_log (read_file t.log_path) in
      let total = before.scan_records + before.scan_corrupt in
      let keep =
        List.filter_map
          (fun (_, e) ->
            let k, o = load t e in
            if k.Key.schema_version = keep_schema then Some (k, o) else None)
          (sorted_entries t)
      in
      let b = Buffer.create 4096 in
      List.iter (fun (k, o) -> Buffer.add_string b (frame k o)) keep;
      close_out_noerr t.out;
      close_in_noerr t.inc;
      write_file_atomic t.log_path (Buffer.contents b);
      Hashtbl.reset t.tbl;
      let off = ref 0 in
      List.iter
        (fun (k, o) ->
          let flen = String.length (frame k o) in
          Hashtbl.replace t.tbl (Key.hash k)
            { off = !off; len = flen; cached = Some (k, o) };
          off := !off + flen)
        keep;
      t.log_len <- !off;
      reopen_channels t;
      write_index t;
      total - List.length keep)

type verify_report = {
  records : int;
  live : int;
  bytes : int;
  corrupt : int;
  torn_bytes : int;
  index_ok : bool;
}

let verify t =
  Mutex.protect t.lock (fun () ->
      flush t.out;
      let content = read_file t.log_path in
      let s = scan_log content in
      let agrees =
        Hashtbl.length s.scan_tbl = Hashtbl.length t.tbl
        && Hashtbl.fold
             (fun h (e : entry) acc ->
               acc
               &&
               match Hashtbl.find_opt t.tbl h with
               | Some e' -> e'.off = e.off && e'.len = e.len
               | None -> false)
             s.scan_tbl true
      in
      {
        records = s.scan_records;
        live = Hashtbl.length s.scan_tbl;
        bytes = String.length content;
        corrupt = s.scan_corrupt;
        torn_bytes = String.length content - s.scan_end;
        index_ok = t.open_index_ok && agrees;
      })

let close t =
  Mutex.protect t.lock (fun () ->
      flush t.out;
      write_index t;
      close_out_noerr t.out;
      close_in_noerr t.inc)
