(** Durable, content-addressed store of completed runs.

    On disk a store directory holds two files:

    - [log] — append-only record log. Each record is one framed
      (key, outcome) pair: a header line
      [GCSR1 <key-bytes> <payload-bytes> <md5-hex of key ^ payload>]
      followed by the key encoding, the outcome encoding, and a closing
      newline. Records are only ever appended; a crash mid-append leaves a
      torn tail that {!open_} truncates away on the next open.
    - [index] — a snapshot of (hash, offset, length) per live record plus
      the log length it covers, rewritten atomically (tmp+rename) on close
      and after maintenance. Opening verifies the snapshot against the log
      and falls back to a full scan whenever anything disagrees, so the
      index is purely an acceleration structure: deleting it loses
      nothing.

    Everything in both files is line-oriented text — auditable with a
    pager, recoverable with a text editor.

    A store handle is safe to share across domains: mutating operations
    and lookups are serialized by an internal mutex (the simulation time
    dwarfs the critical sections). *)

type t

val default_dir : unit -> string
(** [$GCS_STORE_DIR], else [$XDG_CACHE_HOME/gcs], else [$HOME/.cache/gcs],
    else a [gcs] directory under the system temp dir. *)

val open_ : ?create:bool -> string -> t
(** Open (and with [create], default true, make) a store directory.
    Recovers from a torn tail record by truncating the log to the last
    well-framed record; skips (but keeps counting) framed records whose
    digest does not match. *)

val close : t -> unit
(** Flush the log and snapshot the index. The handle must not be used
    afterwards. *)

val dir : t -> string
val length : t -> int
(** Number of live (addressable) records. *)

val log_bytes : t -> int
(** Current log size in bytes. *)

val put : t -> Key.t -> Outcome.t -> unit
(** Persist one completed run. The record is flushed to the OS before
    [put] returns. Re-putting an existing key replaces its entry (last
    write wins; the log keeps both until [gc]). *)

val find : t -> Key.t -> Outcome.t option
val mem : t -> Key.t -> bool

val iter : t -> (Key.t -> Outcome.t -> unit) -> unit
(** Iterate over live records in hash order (deterministic). *)

val gc : ?keep_schema:int -> t -> int
(** Compact the log: drop superseded duplicates and every record whose
    [schema_version] differs from [keep_schema] (default
    {!Key.current_schema_version}). Rewrites log and index atomically.
    Returns the number of records dropped. *)

type verify_report = {
  records : int;  (** well-framed records seen in the log *)
  live : int;  (** addressable after duplicate resolution *)
  bytes : int;  (** log size *)
  corrupt : int;  (** framed records failing digest or decode *)
  torn_bytes : int;  (** trailing bytes past the last whole record *)
  index_ok : bool;  (** index snapshot agreed with the log at open *)
}

val verify : t -> verify_report
(** Re-scan the log from scratch and cross-check against the in-memory
    index. *)
