(** Canonical, content-addressed run keys.

    PR 1 made every run bit-identical for every [--jobs] and all of a
    run's randomness derives from its seed, so a completed run is a pure
    function of its canonical configuration: spec parameters, topology,
    algorithm, drift law, loss law, horizon/sampling window, seed, and
    fault plan. A {!t} is exactly that configuration, normalised so that
    equal configurations written differently (reordered fault-plan edge
    lists, [2-1] vs [1-2] endpoint pairs, duplicate cut members) produce
    the same canonical bytes — and therefore the same content address.

    Keys serialize to a versioned, line-oriented textual encoding
    ({!encode}/{!decode} round-trip), so every entry of a store is
    auditable with a pager. The address of a key is the hex digest of its
    encoding ({!hash}). [schema_version] names the engine semantics the
    result was computed under: bump {!current_schema_version} whenever a
    change makes old cached results incomparable, and stale entries stop
    being addressable (and are swept by [Store.gc]). *)

val current_schema_version : int
(** The engine-semantics generation new keys are minted with. *)

type t = private {
  schema_version : int;
  rho : float;
  mu : float;
  d_min : float;
  d_max : float;
  beacon_period : float;
  kappa : float;
  staleness_limit : float;
  topology : Gcs_graph.Topology.spec;
  algo : string;  (** canonical algorithm name, e.g. ["gradient"] *)
  drift : string;  (** canonical drift-pattern spec, e.g. ["random"] *)
  loss : float;  (** i.i.d. loss probability; [0.] = no loss *)
  horizon : float;
  sample_period : float;
  warmup : float;
  seed : int;
  fault_plan : Gcs_sim.Fault_plan.t option;  (** canonicalized *)
}

val make :
  ?schema_version:int ->
  ?drift:string ->
  ?loss:float ->
  ?fault_plan:Gcs_sim.Fault_plan.t ->
  rho:float ->
  mu:float ->
  d_min:float ->
  d_max:float ->
  beacon_period:float ->
  kappa:float ->
  staleness_limit:float ->
  topology:Gcs_graph.Topology.spec ->
  algo:string ->
  horizon:float ->
  sample_period:float ->
  warmup:float ->
  seed:int ->
  unit ->
  t
(** Build a key. [schema_version] defaults to {!current_schema_version},
    [drift] to ["random"] (the runner's default pattern), [loss] to [0.].
    The fault plan is canonicalized (see {!canonical_plan}), so two plans
    naming the same faults hash identically. *)

val canonical_plan : Gcs_sim.Fault_plan.t -> Gcs_sim.Fault_plan.t
(** Normalise a plan for hashing: endpoint pairs are oriented low-high,
    edge and cut lists sorted and deduplicated, and all numbers passed
    through the textual codec so the rendered form is a fixed point of
    [of_string . to_string]. *)

val encode : t -> string
(** Canonical textual encoding (line-oriented [field=value], versioned
    header, trailing newline). Same key, same bytes. *)

val decode : string -> (t, string) result
(** Parse {!encode}'s output. [decode (encode k) = Ok k]. *)

val hash : t -> string
(** Content address: hex digest of {!encode}. *)
