module Message = Gcs_core.Message

type error = Truncated | Bad_magic | Bad_version | Bad_tag | Length_mismatch

let error_to_string = function
  | Truncated -> "truncated frame"
  | Bad_magic -> "bad magic"
  | Bad_version -> "unsupported version"
  | Bad_tag -> "unknown message tag"
  | Length_mismatch -> "length prefix disagrees with payload"

let version = 1

(* Fixed header after the 2-byte length prefix: magic(2) version(1)
   src(2) seq(4) tag(1). *)
let header_len = 10
let prefix_len = 2

(* Largest payload: Probe_reply / Report at 4 + 8 + 8 bytes. *)
let max_frame = prefix_len + header_len + 20

let tag_of_msg = function
  | Message.Beacon _ -> 0
  | Message.Probe _ -> 1
  | Message.Probe_reply _ -> 2
  | Message.Flood _ -> 3
  | Message.Report _ -> 4
  | Message.Reset _ -> 5

let payload_len = function
  | 0 -> 8 (* value *)
  | 1 -> 12 (* seq, h_send *)
  | 2 -> 20 (* seq, h_send, remote_value *)
  | 3 -> 12 (* round, payload *)
  | 4 -> 20 (* round, lo, hi *)
  | 5 -> 12 (* round, payload *)
  | _ -> invalid_arg "Codec.payload_len"

let set_f64 b off x = Bytes.set_int64_be b off (Int64.bits_of_float x)
let get_f64 b off = Int64.float_of_bits (Bytes.get_int64_be b off)
let set_i32 b off x = Bytes.set_int32_be b off (Int32.of_int x)
let get_i32 b off = Int32.to_int (Bytes.get_int32_be b off)

let encode ~src ~seq msg =
  let tag = tag_of_msg msg in
  let plen = payload_len tag in
  let b = Bytes.create (prefix_len + header_len + plen) in
  Bytes.set_int16_be b 0 (header_len + plen);
  Bytes.set b 2 'G';
  Bytes.set b 3 'B';
  Bytes.set_uint8 b 4 version;
  Bytes.set_int16_be b 5 (src land 0xffff);
  Bytes.set_int32_be b 7 (Int32.of_int seq);
  Bytes.set_uint8 b 11 tag;
  let p = prefix_len + header_len in
  (match msg with
  | Message.Beacon { value } -> set_f64 b p value
  | Message.Probe { seq; h_send } ->
      set_i32 b p seq;
      set_f64 b (p + 4) h_send
  | Message.Probe_reply { seq; h_send; remote_value } ->
      set_i32 b p seq;
      set_f64 b (p + 4) h_send;
      set_f64 b (p + 12) remote_value
  | Message.Flood { round; payload } ->
      set_i32 b p round;
      set_f64 b (p + 4) payload
  | Message.Report { round; lo; hi } ->
      set_i32 b p round;
      set_f64 b (p + 4) lo;
      set_f64 b (p + 12) hi
  | Message.Reset { round; payload } ->
      set_i32 b p round;
      set_f64 b (p + 4) payload);
  b

let decode buf ~len =
  if len < prefix_len + header_len then Error Truncated
  else
    let n = Bytes.get_uint16_be buf 0 in
    if len <> prefix_len + n then Error Length_mismatch
    else if not (Bytes.get buf 2 = 'G' && Bytes.get buf 3 = 'B') then
      Error Bad_magic
    else if Bytes.get_uint8 buf 4 <> version then Error Bad_version
    else
      let tag = Bytes.get_uint8 buf 11 in
      if tag > 5 then Error Bad_tag
      else if n <> header_len + payload_len tag then Error Length_mismatch
      else begin
        let src = Bytes.get_uint16_be buf 5 in
        let seq = Int32.to_int (Bytes.get_int32_be buf 7) in
        let p = prefix_len + header_len in
        let msg =
          match tag with
          | 0 -> Message.Beacon { value = get_f64 buf p }
          | 1 -> Message.Probe { seq = get_i32 buf p; h_send = get_f64 buf (p + 4) }
          | 2 ->
              Message.Probe_reply
                {
                  seq = get_i32 buf p;
                  h_send = get_f64 buf (p + 4);
                  remote_value = get_f64 buf (p + 12);
                }
          | 3 ->
              Message.Flood
                { round = get_i32 buf p; payload = get_f64 buf (p + 4) }
          | 4 ->
              Message.Report
                {
                  round = get_i32 buf p;
                  lo = get_f64 buf (p + 4);
                  hi = get_f64 buf (p + 12);
                }
          | _ ->
              Message.Reset
                { round = get_i32 buf p; payload = get_f64 buf (p + 4) }
        in
        Ok (src, seq, msg)
      end
