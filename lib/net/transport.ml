module Engine = Gcs_sim.Engine

type delivery = { port : int; msg : Gcs_core.Message.t }

type t = {
  node : int;
  ports : int;
  mono : unit -> float;
  hardware : unit -> float;
  send : port:int -> Gcs_core.Message.t -> unit;
  set_timer : h:float -> tag:int -> unit;
  recv : deadline:float -> delivery option;
  pop_due_timer : unit -> int option;
  next_deadline : unit -> float option;
  rng : Gcs_util.Prng.t;
}

let api tr =
  {
    Engine.node = tr.node;
    ports = tr.ports;
    hardware = tr.hardware;
    send = tr.send;
    set_timer = tr.set_timer;
    rng = tr.rng;
  }

module Driver = struct
  type transport = t

  type nonrec t = {
    transport : transport;
    api : Gcs_core.Message.t Engine.api;
    mutable handlers : Gcs_core.Message.t Engine.handlers;
  }

  let create transport handlers =
    { transport; api = api transport; handlers }

  let handlers d = d.handlers
  let replace_handlers d h = d.handlers <- h
  let start d = d.handlers.Engine.on_init d.api
  let deliver d ~port msg = d.handlers.Engine.on_message d.api ~port msg
  let fire d ~tag = d.handlers.Engine.on_timer d.api ~tag

  let step d ~until =
    let tr = d.transport in
    if tr.mono () >= until then false
    else
      match tr.pop_due_timer () with
      | Some tag ->
          fire d ~tag;
          true
      | None -> (
          let deadline =
            match tr.next_deadline () with
            | Some t -> Float.min until t
            | None -> until
          in
          match tr.recv ~deadline with
          | Some { port; msg } ->
              deliver d ~port msg;
              true
          | None ->
              (* Deadline passed: either a timer came due (the next step
                 fires it) or the horizon arrived. Still a productive
                 step unless the horizon is the thing that expired. *)
              tr.mono () < until)

  let run d ~until = while step d ~until do () done
end
