(** Nonblocking UDP sockets as a transport substrate.

    One socket per node, bound to [base_port + node] on the given host
    (loopback by default; any shared LAN base works the same way). Peers
    are addressed by {e port} in the graph sense — position in the node's
    adjacency list — and resolved to socket addresses from the topology,
    so the algorithm layer stays inside the model's
    neighbors-by-local-port knowledge restriction.

    Every outgoing frame carries a per-peer sequence number
    ({!Codec.encode}); the receive path accounts gaps as loss and
    regressions as reordering without dropping anything — UDP loses and
    reorders for real, and {!stats} is how a live run quantifies it. *)

type stats = {
  sent : int;  (** frames handed to [sendto] *)
  received : int;  (** frames decoded and delivered upward *)
  lost : int;  (** sequence gaps summed over peers *)
  reordered : int;  (** frames arriving with a non-advancing sequence *)
  decode_errors : int;  (** frames rejected by the codec *)
}

type t

val create :
  node:int ->
  graph:Gcs_graph.Graph.t ->
  base_port:int ->
  ?host:string ->
  unit ->
  t
(** Bind this node's socket ([host] defaults to ["127.0.0.1"]) and
    precompute the peer address table. Raises [Unix.Unix_error] if the
    port is taken — live coordinators pick base ports per run. *)

val close : t -> unit

val send : t -> port:int -> Gcs_core.Message.t -> unit
(** Encode and transmit to the neighbor behind [port], advancing that
    peer's sequence counter. A full socket buffer ([EAGAIN]) counts the
    frame as sent-and-lost, matching UDP's fire-and-forget contract. *)

val recv : t -> timeout:float -> (int * Gcs_core.Message.t) option
(** Wait up to [timeout] seconds (0 = poll) for one frame; decode it,
    account its sequence number, and return [(port, message)]. [None] on
    timeout; frames from unknown senders or failing the codec are
    counted and skipped (the wait is not restarted — callers loop). *)

val fd : t -> Unix.file_descr
val stats : t -> stats
