(** Length-prefixed, versioned wire format for beacon frames.

    One frame carries one {!Gcs_core.Message.t} plus the routing header a
    receiver needs to account for it: the sender's node id (mapped back to
    a local port via the topology) and a per-peer sequence number (gaps
    reveal loss, regressions reveal reordering — the accounting
    {!Udp.stats} reports).

    Layout, all integers big-endian:

    {v
    offset  size  field
    0       2     payload length N (bytes after this prefix)
    2       2     magic "GB"
    4       1     version (currently 1)
    5       2     sender node id
    7       4     per-peer sequence number
    11      1     message tag (0..5)
    12      N-10  message payload (float64 bits / int32 fields per tag)
    v}

    The length prefix is redundant over UDP (datagram boundaries frame for
    free) but makes the codec transport-agnostic — the same frames stream
    over TCP unchanged — and gives the decoder a cheap structural check:
    a frame whose prefix disagrees with the bytes on the wire is rejected
    as {!Length_mismatch} rather than trusted. Decoding validates
    everything; no malformed frame reaches an algorithm. *)

type error = Truncated | Bad_magic | Bad_version | Bad_tag | Length_mismatch

val error_to_string : error -> string

val version : int

val max_frame : int
(** Upper bound on an encoded frame's size, for sizing receive buffers. *)

val encode : src:int -> seq:int -> Gcs_core.Message.t -> Bytes.t
(** The full frame, length prefix included. [src] must fit 16 bits and
    [seq] 32 bits (both are masked). *)

val decode : Bytes.t -> len:int -> (int * int * Gcs_core.Message.t, error) result
(** [decode buf ~len] parses the first [len] bytes of [buf] as one frame
    and returns [(src, seq, message)]. Every structural defect is a typed
    [Error]; decode never raises on wire input. *)
