module Graph = Gcs_graph.Graph
module Fault_plan = Gcs_sim.Fault_plan
module Message = Gcs_core.Message
module Prng = Gcs_util.Prng

type control =
  | Crash
  | Recover of bool
  | Jump of float
  | Rate of float
  | Edge_down of int
  | Edge_up of int

type verdict = {
  fault_drop : bool;
  sends : (float * Message.t) list;
  duplicated : bool;
  corrupted : bool;
  lied : bool;
}

type t = {
  node : int;
  controls : (float * control) array;  (** schedule order *)
  mutable cursor : int;
  toggles : (float * bool) list array;  (** per edge id, time-sorted *)
  dup_w : (float * float * float) list array;  (** from, until, prob *)
  reorder_w : (float * float * float * float) list array;
      (** from, until, prob, extra *)
  corrupt_w : (float * float * float * float) list array;
      (** from, until, prob, magnitude *)
  byz_w : (float * float * Fault_plan.byz_strategy) list;  (** self only *)
  edge_rng : Prng.t array;
  byz_rng : Prng.t;
}

let create ~graph ~node ~seed plan =
  (match Fault_plan.validate plan graph with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Inject: invalid fault plan: " ^ msg));
  let m = Graph.m graph in
  let controls = ref [] in
  let toggles = Array.make m [] in
  let dup_w = Array.make m [] in
  let reorder_w = Array.make m [] in
  let corrupt_w = Array.make m [] in
  let byz_w = ref [] in
  let add_control at c = controls := (at, c) :: !controls in
  let min_endpoint e = fst (Graph.edge_endpoints graph e) in
  let incident e =
    let u, v = Graph.edge_endpoints graph e in
    u = node || v = node
  in
  let add_window arr edges w =
    List.iter
      (fun e -> if incident e then arr.(e) <- arr.(e) @ [ w ])
      (Fault_plan.resolve_edges graph edges)
  in
  List.iter
    (fun ev ->
      match ev with
      | Fault_plan.Link_partition { at; edges } ->
          List.iter
            (fun e ->
              if incident e then begin
                toggles.(e) <- toggles.(e) @ [ (at, false) ];
                if min_endpoint e = node then add_control at (Edge_down e)
              end)
            (Fault_plan.resolve_edges graph edges)
      | Fault_plan.Link_heal { at; edges } ->
          List.iter
            (fun e ->
              if incident e then begin
                toggles.(e) <- toggles.(e) @ [ (at, true) ];
                if min_endpoint e = node then add_control at (Edge_up e)
              end)
            (Fault_plan.resolve_edges graph edges)
      | Fault_plan.Node_crash { at; node = v } ->
          if v = node then add_control at Crash
      | Fault_plan.Node_recover { at; node = v; wipe } ->
          if v = node then add_control at (Recover wipe)
      | Fault_plan.Clock_jump { at; node = v; delta } ->
          if v = node then add_control at (Jump delta)
      | Fault_plan.Clock_rate_fault { at; node = v; rate } ->
          if v = node then add_control at (Rate rate)
      | Fault_plan.Msg_duplicate { from_; until; edges; prob } ->
          add_window dup_w edges (from_, until, prob)
      | Fault_plan.Msg_reorder { from_; until; edges; prob; extra } ->
          add_window reorder_w edges (from_, until, prob, extra)
      | Fault_plan.Msg_corrupt { from_; until; edges; prob; magnitude } ->
          add_window corrupt_w edges (from_, until, prob, magnitude)
      | Fault_plan.Byzantine { from_; until; node = v; strategy } ->
          if v = node then byz_w := !byz_w @ [ (from_, until, strategy) ])
    (Fault_plan.events plan);
  let controls =
    (* The plan is already start-sorted; List.rev restores plan order and
       the stable sort keeps it on time ties. *)
    List.stable_sort
      (fun (a, _) (b, _) -> Float.compare a b)
      (List.rev !controls)
    |> Array.of_list
  in
  {
    node;
    controls;
    cursor = 0;
    toggles;
    dup_w;
    reorder_w;
    corrupt_w;
    byz_w = !byz_w;
    edge_rng =
      Array.init m (fun e ->
          Prng.create ~seed:(seed lxor (0x9e3779b9 * ((node * m) + e + 1))));
    byz_rng = Prng.create ~seed:(seed lxor (0x51ed270b * (node + 1)));
  }

let due t ~now =
  let acc = ref [] in
  while
    t.cursor < Array.length t.controls && fst t.controls.(t.cursor) <= now
  do
    acc := snd t.controls.(t.cursor) :: !acc;
    t.cursor <- t.cursor + 1
  done;
  List.rev !acc

let next_control t =
  if t.cursor < Array.length t.controls then Some (fst t.controls.(t.cursor))
  else None

let edge_up t ~edge ~now =
  List.fold_left
    (fun up (at, state) -> if at <= now then state else up)
    true t.toggles.(edge)

let active3 windows now =
  List.find_map
    (fun (from_, until, x) -> if from_ <= now && now < until then Some x else None)
    windows

let active4 windows now =
  List.find_map
    (fun (from_, until, x, y) ->
      if from_ <= now && now < until then Some (x, y) else None)
    windows

let perturb delta msg =
  match msg with
  | Message.Beacon { value } -> Some (Message.Beacon { value = value +. delta })
  | Message.Probe_reply { seq; h_send; remote_value } ->
      Some
        (Message.Probe_reply
           { seq; h_send; remote_value = remote_value +. delta })
  | Message.Flood { round; payload } ->
      Some (Message.Flood { round; payload = payload +. delta })
  | Message.Probe _ | Message.Report _ | Message.Reset _ -> None

let outgoing t ~now ~edge ~dst msg =
  if not (edge_up t ~edge ~now) then
    { fault_drop = true; sends = []; duplicated = false; corrupted = false;
      lied = false }
  else begin
    let lied = ref false in
    let msg =
      match
        List.find_map
          (fun (from_, until, s) ->
            if from_ <= now && now < until then Some (from_, s) else None)
          t.byz_w
      with
      | None -> msg
      | Some (from_, strategy) -> (
          let delta =
            match strategy with
            | Fault_plan.Lie_constant off -> off
            | Fault_plan.Lie_drifting rate -> rate *. (now -. from_)
            | Fault_plan.Lie_random mag ->
                Prng.uniform t.byz_rng ~lo:(-.mag) ~hi:mag
            | Fault_plan.Lie_equivocate mag ->
                if dst > t.node then mag else -.mag
          in
          match perturb delta msg with
          | Some m ->
              lied := true;
              m
          | None -> msg)
    in
    let rng = t.edge_rng.(edge) in
    let corrupted = ref false in
    let msg =
      match active4 t.corrupt_w.(edge) now with
      | None -> msg
      | Some (prob, magnitude) ->
          if Prng.float rng 1.0 >= prob then msg
          else begin
            let delta = Prng.uniform rng ~lo:(-.magnitude) ~hi:magnitude in
            match perturb delta msg with
            | Some m ->
                corrupted := true;
                m
            | None -> msg
          end
    in
    let extra_delay () =
      match active4 t.reorder_w.(edge) now with
      | None -> 0.
      | Some (prob, extra) ->
          if Prng.float rng 1.0 < prob then Prng.uniform rng ~lo:0. ~hi:extra
          else 0.
    in
    let duplicated =
      match active3 t.dup_w.(edge) now with
      | None -> false
      | Some prob -> Prng.float rng 1.0 < prob
    in
    let sends =
      let first = (extra_delay (), msg) in
      if duplicated then [ first; (extra_delay (), msg) ] else [ first ]
    in
    { fault_drop = false; sends; duplicated; corrupted = !corrupted;
      lied = !lied }
  end
