(** Deterministic fault injection for one live node.

    A {!Gcs_sim.Fault_plan.t} compiles, per node, into (a) a time-sorted
    list of control actions to apply to the local runtime and (b)
    send-side tampering: Byzantine lies, value corruption, extra delay
    and duplication, drawn from per-edge PRNG streams derived from the
    run seed. Every process compiles the same plan against the same
    graph and seed, so the fleet agrees on what happens when without any
    coordination traffic. Draws are deterministic per (seed, edge) but
    not bit-compatible with the simulator's streams — live runs share
    the plan's {e semantics} with simulated ones, not their exact
    randomness.

    Delivery-side faults (duplication, extra delay) are applied at the
    sender in live mode — the receiving process cannot tamper with a
    datagram it has not yet seen — which is observationally equivalent
    for the receiver. *)

type control =
  | Crash
  | Recover of bool  (** [wipe]: rebuild algorithm state from scratch *)
  | Jump of float  (** logical-clock jump by delta *)
  | Rate of float  (** hardware-clock rate forced out of band *)
  | Edge_down of int
  | Edge_up of int
      (** Edge status changes are reported only to the edge's minimum
          endpoint, for single-writer observation recording; use
          {!edge_up} for the actual send/receive gating on both ends. *)

type verdict = {
  fault_drop : bool;  (** the edge is partitioned: send nothing *)
  sends : (float * Gcs_core.Message.t) list;
      (** [(extra_delay, msg)] copies to transmit; the duplicate copy, if
          any, draws its own delay *)
  duplicated : bool;
  corrupted : bool;
  lied : bool;
}

type t

val create :
  graph:Gcs_graph.Graph.t -> node:int -> seed:int -> Gcs_sim.Fault_plan.t -> t
(** Compile the plan's view from [node]. Raises [Invalid_argument] on a
    plan that fails {!Gcs_sim.Fault_plan.validate}. *)

val due : t -> now:float -> control list
(** Control actions that have come due since the last call, in schedule
    order. Call with non-decreasing [now]. *)

val next_control : t -> float option
(** Time of the next pending control action, for wake-up scheduling. *)

val edge_up : t -> edge:int -> now:float -> bool
(** Partition status of an incident edge at [now]. *)

val outgoing :
  t ->
  now:float ->
  edge:int ->
  dst:int ->
  Gcs_core.Message.t ->
  verdict
(** Run one outgoing message through the node's send-side fault pipe:
    Byzantine lie, then corruption, then extra delay and duplication. *)
