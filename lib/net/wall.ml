(* Non-decreasing clamp over gettimeofday. The mutable high-water mark is
   per-process; live nodes are one process each, so there is no sharing to
   worry about. *)

let high_water = ref neg_infinity

let now () =
  let t = Unix.gettimeofday () in
  if t > !high_water then high_water := t;
  !high_water

let sleep_until target =
  let rec loop () =
    let t = now () in
    if t < target then begin
      (* Bounded slices: if the wall clock steps forward mid-sleep we
         re-evaluate within 50ms instead of sleeping out the old delta. *)
      (try Unix.sleepf (Float.min 0.05 (target -. t))
       with Unix.Unix_error (Unix.EINTR, _, _) -> ());
      loop ()
    end
  in
  loop ()
