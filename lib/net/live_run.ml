module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Fault_metrics = Gcs_core.Fault_metrics
module Fault_plan = Gcs_sim.Fault_plan
module Drift = Gcs_clock.Drift
module Logical_clock = Gcs_clock.Logical_clock
module Prng = Gcs_util.Prng
module Event_log = Gcs_obs.Event_log
module Series = Gcs_obs.Series
module Capture = Gcs_obs.Capture

type config = {
  topology : Topology.spec;
  algo : Algorithm.kind;
  spec : Spec.t;
  drift : string;
  horizon : float;
  sample_period : float;
  warmup : float;
  seed : int;
  base_port : int;
  host : string;
  fault_plan : Fault_plan.t option;
  startup : float;
}

let drift_pattern s =
  match Drift.pattern_of_string s with
  | Ok p -> p
  | Error msg -> invalid_arg ("Live_run: bad drift spec: " ^ msg)

let config ?(topology = Topology.Ring 4) ?(algo = Algorithm.Gradient_sync)
    ?(spec = Spec.make ~d_min:0.005 ~d_max:0.02 ~beacon_period:0.25 ())
    ?(drift = "random") ?(horizon = 6.) ?(sample_period = 0.5) ?warmup
    ?(seed = 42) ?(base_port = 9200) ?(host = "127.0.0.1") ?fault_plan
    ?(startup = 0.5) () =
  if horizon <= 0. then invalid_arg "Live_run.config: horizon must be > 0";
  if sample_period <= 0. then
    invalid_arg "Live_run.config: sample_period must be > 0";
  if startup < 0. then invalid_arg "Live_run.config: startup must be >= 0";
  ignore (drift_pattern drift);
  let warmup = match warmup with Some w -> w | None -> horizon /. 4. in
  {
    topology;
    algo;
    spec;
    drift;
    horizon;
    sample_period;
    warmup;
    seed;
    base_port;
    host;
    fault_plan;
    startup;
  }

(* Same derivation the CLI sweep uses, so a live run and [gcs-cli sweep]
   with the same topology and seed execute on the same graph. *)
let build_graph cfg =
  Topology.build cfg.topology ~rng:(Prng.create ~seed:(cfg.seed lxor 0x5eed))

type info = {
  topology : Topology.spec;
  algo : Algorithm.kind;
  horizon : float;
  sample_period : float;
  warmup : float;
  seed : int;
  fault_plan : Fault_plan.t option;
}

(* ------------------------------------------------------------------ *)
(* Child-process outcome files                                         *)

let write_outcome path (o : Live_node.outcome) =
  let oc = open_out path in
  let p fmt = Printf.fprintf oc fmt in
  p "sent %d\n" o.udp.Udp.sent;
  p "received %d\n" o.udp.Udp.received;
  p "lost %d\n" o.udp.Udp.lost;
  p "reordered %d\n" o.udp.Udp.reordered;
  p "decode_errors %d\n" o.udp.Udp.decode_errors;
  p "timers %d\n" o.timers;
  p "deliveries %d\n" o.deliveries;
  p "drops_fault %d\n" o.drops_fault;
  p "duplicates %d\n" o.duplicates;
  p "corruptions %d\n" o.corruptions;
  p "lies %d\n" o.lies;
  p "jumps_count %d\n" o.jumps.Logical_clock.count;
  p "jumps_total %.17g\n" o.jumps.Logical_clock.total_magnitude;
  p "jumps_max %.17g\n" o.jumps.Logical_clock.max_magnitude;
  p "#samples\n";
  List.iter (fun (t, v) -> p "%.17g %.17g\n" t v) o.samples;
  p "#events\n";
  List.iter (fun line -> p "%s\n" line) (Event_log.to_lines o.events);
  close_out oc

type child = {
  counters : (string * float) list;
  samples : (float * float) array;
  entries : Event_log.entry list;  (** child-local order *)
}

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
        close_in ic;
        List.rev acc
  in
  go []

let parse_outcome path =
  let lines = read_lines path in
  let counters = ref [] in
  let samples = ref [] in
  let entries = ref [] in
  let section = ref `Counters in
  List.iter
    (fun line ->
      if line = "#samples" then section := `Samples
      else if line = "#events" then section := `Events
      else if line <> "" then
        match !section with
        | `Counters -> (
            match String.index_opt line ' ' with
            | None -> failwith ("bad outcome line: " ^ line)
            | Some i ->
                let key = String.sub line 0 i in
                let v =
                  float_of_string
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                counters := (key, v) :: !counters)
        | `Samples -> (
            match String.index_opt line ' ' with
            | None -> failwith ("bad sample line: " ^ line)
            | Some i ->
                let t = float_of_string (String.sub line 0 i) in
                let v =
                  float_of_string
                    (String.sub line (i + 1) (String.length line - i - 1))
                in
                samples := (t, v) :: !samples)
        | `Events -> (
            match Event_log.parse_line line with
            | Ok { Event_log.entry; _ } -> entries := entry :: !entries
            | Error msg -> failwith ("bad event line: " ^ msg)))
    lines;
  {
    counters = !counters;
    samples = Array.of_list (List.rev !samples);
    entries = List.rev !entries;
  }

let counter child key =
  match List.assoc_opt key child.counters with
  | Some v -> v
  | None -> failwith ("outcome file missing counter: " ^ key)

let icounter child key = int_of_float (counter child key)

(* ------------------------------------------------------------------ *)
(* Merging                                                             *)

(* Linear interpolation along a node's recorded polyline, extrapolating
   past either end with the end segment's slope: discrete rates derived
   from the grid stay convex combinations of real segment rates, so grid
   realignment cannot manufacture a rate-bound violation. *)
let interp_at (pts : (float * float) array) t =
  let k = Array.length pts in
  if k = 0 then failwith "Live_run: child recorded no samples";
  if k = 1 then snd pts.(0)
  else begin
    let i = ref 0 in
    while !i < k - 2 && fst pts.(!i + 1) < t do
      incr i
    done;
    let t0, v0 = pts.(!i) and t1, v1 = pts.(!i + 1) in
    if t1 <= t0 then v1 else v0 +. ((v1 -. v0) *. (t -. t0) /. (t1 -. t0))
  end

let grid_samples ~horizon ~period (per_node : (float * float) array array) =
  let steps = int_of_float (Float.floor ((horizon /. period) +. 1e-9)) in
  Array.init (steps + 1) (fun k ->
      let t = float_of_int k *. period in
      {
        Metrics.time = t;
        values = Array.map (fun pts -> interp_at pts t) per_node;
      })

let merge_events (per_node : Event_log.entry list array) =
  let tagged = ref [] in
  Array.iteri
    (fun node entries ->
      List.iter (fun e -> tagged := (node, e) :: !tagged) entries)
    per_node;
  let sorted =
    List.stable_sort
      (fun (n1, (e1 : Event_log.entry)) (n2, (e2 : Event_log.entry)) ->
        match Float.compare e1.Event_log.time e2.Event_log.time with
        | 0 -> (
            match compare n1 n2 with
            | 0 -> compare e1.Event_log.seq e2.Event_log.seq
            | c -> c)
        | c -> c)
      (List.rev !tagged)
  in
  let log = Event_log.create () in
  List.iter
    (fun (_, (e : Event_log.entry)) ->
      Event_log.record log e.Event_log.time e.Event_log.obs)
    sorted;
  log

type counters = {
  messages : int;
  dropped : int;
  dropped_faults : int;
  dispatches : int;
  duplicated : int;
  corrupted : int;
  lied : int;
  jumps : Logical_clock.jump_stats;
}

let build_result ~graph ~spec ~warmup ~fault_plan ~samples ~counters ~log =
  let summary =
    match Metrics.summarize_opt graph samples ~after:warmup with
    | Some s -> s
    | None -> Metrics.summarize graph samples ~after:neg_infinity
  in
  let series = Series.create () in
  Array.iter
    (fun (s : Metrics.sample) ->
      Series.record series
        {
          Series.time = s.Metrics.time;
          global_skew = Metrics.global_skew s.Metrics.values;
          local_skew = Metrics.local_skew graph s.Metrics.values;
          profile = [||];
          values = Array.copy s.Metrics.values;
          rates = [||];
          watched = [||];
        })
    samples;
  let fault_report =
    match fault_plan with
    | None -> None
    | Some plan ->
        Some
          (Fault_metrics.evaluate
             ~byzantine:(Fault_plan.byzantine_nodes plan)
             ~lied:counters.lied ~after:warmup ~spec ~graph ~samples
             ~episodes:(Fault_plan.episodes plan graph)
             ~dropped_faults:counters.dropped_faults
             ~duplicated:counters.duplicated ~corrupted:counters.corrupted ())
  in
  {
    Runner.graph;
    spec;
    samples;
    summary;
    events = Event_log.recorded log;
    messages = counters.messages;
    dropped = counters.dropped;
    dropped_faults = counters.dropped_faults;
    dispatches = counters.dispatches;
    jumps = counters.jumps;
    fault_report;
    obs = { Capture.event_log = Some log; series = Some series; profile = None };
  }

let sum f children = Array.fold_left (fun acc c -> acc + f c) 0 children

let counters_of_children children =
  {
    messages = sum (fun c -> icounter c "sent") children;
    dropped = sum (fun c -> icounter c "lost") children;
    dropped_faults = sum (fun c -> icounter c "drops_fault") children;
    dispatches =
      sum (fun c -> icounter c "deliveries" + icounter c "timers") children;
    duplicated = sum (fun c -> icounter c "duplicates") children;
    corrupted = sum (fun c -> icounter c "corruptions") children;
    lied = sum (fun c -> icounter c "lies") children;
    jumps =
      Array.fold_left
        (fun acc c ->
          {
            Logical_clock.count =
              acc.Logical_clock.count + icounter c "jumps_count";
            total_magnitude =
              acc.Logical_clock.total_magnitude +. counter c "jumps_total";
            max_magnitude =
              Float.max acc.Logical_clock.max_magnitude
                (counter c "jumps_max");
          })
        { Logical_clock.count = 0; total_magnitude = 0.; max_magnitude = 0. }
        children;
  }

(* ------------------------------------------------------------------ *)
(* Spawning                                                            *)

let fresh_dir () =
  let base = Filename.get_temp_dir_name () in
  let rec try_ i =
    let dir =
      Filename.concat base
        (Printf.sprintf "gcs-live-%d-%d" (Unix.getpid ()) i)
    in
    match Unix.mkdir dir 0o700 with
    | () -> dir
    | exception Unix.Unix_error (Unix.EEXIST, _, _) -> try_ (i + 1)
  in
  try_ 0

let rec rm_rf path =
  match Unix.lstat path with
  | { Unix.st_kind = Unix.S_DIR; _ } ->
      Array.iter
        (fun name -> rm_rf (Filename.concat path name))
        (Sys.readdir path);
      Unix.rmdir path
  | _ -> Unix.unlink path
  | exception Unix.Unix_error _ -> ()

let run cfg =
  let graph = build_graph cfg in
  let pattern = drift_pattern cfg.drift in
  (match cfg.fault_plan with
  | None -> ()
  | Some plan -> (
      match Fault_plan.validate plan graph with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Live_run.run: invalid fault plan: " ^ msg)));
  let n = Graph.n graph in
  let dir = fresh_dir () in
  let t0 = Wall.now () +. cfg.startup in
  flush stdout;
  flush stderr;
  let child_path v = Filename.concat dir (Printf.sprintf "node%d.txt" v) in
  let pids =
    Array.init n (fun v ->
        match Unix.fork () with
        | 0 ->
            (* Child: run the node, persist the outcome, and leave without
               touching the parent's buffered channels. *)
            let code =
              try
                let outcome =
                  Live_node.run
                    {
                      Live_node.node = v;
                      graph;
                      spec = cfg.spec;
                      algo = cfg.algo;
                      drift_of_node = (fun _ -> pattern);
                      seed = cfg.seed;
                      t0;
                      horizon = cfg.horizon;
                      sample_period = cfg.sample_period;
                      base_port = cfg.base_port;
                      host = cfg.host;
                      fault_plan = cfg.fault_plan;
                    }
                in
                write_outcome (child_path v) outcome;
                0
              with e ->
                Printf.eprintf "live node %d: %s\n%!" v
                  (Printexc.to_string e);
                1
            in
            Unix._exit code
        | pid -> pid)
  in
  let failed = ref [] in
  Array.iteri
    (fun v pid ->
      let rec wait () =
        match Unix.waitpid [] pid with
        | _, Unix.WEXITED 0 -> ()
        | _, _ -> failed := v :: !failed
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> wait ()
      in
      wait ())
    pids;
  (match !failed with
  | [] -> ()
  | vs ->
      rm_rf dir;
      failwith
        (Printf.sprintf "Live_run: node(s) %s failed"
           (String.concat ", " (List.map string_of_int (List.rev vs)))));
  let children = Array.init n (fun v -> parse_outcome (child_path v)) in
  rm_rf dir;
  let log = merge_events (Array.map (fun c -> c.entries) children) in
  let samples =
    grid_samples ~horizon:cfg.horizon ~period:cfg.sample_period
      (Array.map (fun c -> c.samples) children)
  in
  build_result ~graph ~spec:cfg.spec ~warmup:cfg.warmup
    ~fault_plan:cfg.fault_plan ~samples
    ~counters:(counters_of_children children)
    ~log

(* ------------------------------------------------------------------ *)
(* Recorded-run directories                                            *)

let mkdir_p dir =
  let rec go d =
    if d <> "" && d <> "." && d <> "/" && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755
      with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

let meta_of_config cfg (result : Runner.result) =
  let spec = cfg.spec in
  let b = Buffer.create 512 in
  let p fmt = Printf.ksprintf (fun s -> Buffer.add_string b (s ^ "\n")) fmt in
  p "schema 1";
  p "topology %s" (Topology.spec_name cfg.topology);
  p "algo %s" (Algorithm.kind_name cfg.algo);
  p "drift %s" cfg.drift;
  p "horizon %.17g" cfg.horizon;
  p "sample_period %.17g" cfg.sample_period;
  p "warmup %.17g" cfg.warmup;
  p "seed %d" cfg.seed;
  p "rho %.17g" spec.Spec.rho;
  p "mu %.17g" spec.Spec.mu;
  p "d_min %.17g" (Spec.d_min spec);
  p "d_max %.17g" (Spec.d_max spec);
  p "beacon_period %.17g" spec.Spec.beacon_period;
  p "kappa %.17g" spec.Spec.kappa;
  p "staleness_limit %.17g" spec.Spec.staleness_limit;
  (match cfg.fault_plan with
  | Some plan -> p "fault_plan %s" (Fault_plan.to_string plan)
  | None -> ());
  p "messages %d" result.Runner.messages;
  p "dropped %d" result.Runner.dropped;
  p "dropped_faults %d" result.Runner.dropped_faults;
  p "dispatches %d" result.Runner.dispatches;
  p "duplicated %d"
    (match result.Runner.fault_report with
    | Some r -> r.Fault_metrics.duplicated
    | None -> 0);
  p "corrupted %d"
    (match result.Runner.fault_report with
    | Some r -> r.Fault_metrics.corrupted
    | None -> 0);
  p "lied %d"
    (match result.Runner.fault_report with
    | Some r -> r.Fault_metrics.lied
    | None -> 0);
  p "jumps_count %d" result.Runner.jumps.Logical_clock.count;
  p "jumps_total %.17g" result.Runner.jumps.Logical_clock.total_magnitude;
  p "jumps_max %.17g" result.Runner.jumps.Logical_clock.max_magnitude;
  Buffer.contents b

let save cfg (result : Runner.result) ~dir =
  mkdir_p dir;
  (match result.Runner.obs.Capture.event_log with
  | Some log -> Event_log.write log ~path:(Filename.concat dir "events.jsonl")
  | None -> ());
  let oc = open_out (Filename.concat dir "samples.csv") in
  let n = Graph.n result.Runner.graph in
  Printf.fprintf oc "time%s\n"
    (String.concat ""
       (List.init n (fun v -> Printf.sprintf ",node%d" v)));
  Array.iter
    (fun (s : Metrics.sample) ->
      Printf.fprintf oc "%.17g" s.Metrics.time;
      Array.iter (fun v -> Printf.fprintf oc ",%.17g" v) s.Metrics.values;
      Printf.fprintf oc "\n")
    result.Runner.samples;
  close_out oc;
  let oc = open_out (Filename.concat dir "meta") in
  output_string oc (meta_of_config cfg result);
  close_out oc

let load dir =
  try
    let meta_path = Filename.concat dir "meta" in
    let events_path = Filename.concat dir "events.jsonl" in
    let samples_path = Filename.concat dir "samples.csv" in
    if not (Sys.file_exists meta_path) then
      Error (dir ^ ": not a recorded run (no meta file)")
    else begin
      let meta = Hashtbl.create 32 in
      List.iter
        (fun line ->
          if line <> "" then
            match String.index_opt line ' ' with
            | None -> ()
            | Some i ->
                Hashtbl.replace meta (String.sub line 0 i)
                  (String.sub line (i + 1) (String.length line - i - 1)))
        (read_lines meta_path);
      let get key =
        match Hashtbl.find_opt meta key with
        | Some v -> v
        | None -> failwith ("meta: missing key " ^ key)
      in
      let getf key = float_of_string (get key) in
      let geti key = int_of_string (get key) in
      let topology =
        match Topology.spec_of_string (get "topology") with
        | Ok s -> s
        | Error msg -> failwith ("meta: " ^ msg)
      in
      let algo =
        match Algorithm.kind_of_string (get "algo") with
        | Ok a -> a
        | Error msg -> failwith ("meta: " ^ msg)
      in
      let fault_plan =
        match Hashtbl.find_opt meta "fault_plan" with
        | None -> None
        | Some s -> (
            match Fault_plan.of_string s with
            | Ok p -> Some p
            | Error msg -> failwith ("meta: " ^ msg))
      in
      let spec =
        Spec.make ~rho:(getf "rho") ~mu:(getf "mu") ~d_min:(getf "d_min")
          ~d_max:(getf "d_max") ~beacon_period:(getf "beacon_period")
          ~kappa:(getf "kappa") ~staleness_limit:(getf "staleness_limit") ()
      in
      let seed = geti "seed" in
      let graph =
        Topology.build topology ~rng:(Prng.create ~seed:(seed lxor 0x5eed))
      in
      let samples =
        match read_lines samples_path with
        | [] | [ _ ] -> failwith "samples.csv: no data rows"
        | _header :: rows ->
            Array.of_list
              (List.map
                 (fun row ->
                   match String.split_on_char ',' row with
                   | time :: values ->
                       {
                         Metrics.time = float_of_string time;
                         values =
                           Array.of_list (List.map float_of_string values);
                       }
                   | [] -> failwith "samples.csv: empty row")
                 rows)
      in
      let log = Event_log.create () in
      if Sys.file_exists events_path then
        List.iter
          (fun line ->
            if line <> "" then
              match Event_log.parse_line line with
              | Ok { Event_log.entry; _ } ->
                  Event_log.record log entry.Event_log.time
                    entry.Event_log.obs
              | Error msg -> failwith ("events.jsonl: " ^ msg))
          (read_lines events_path);
      let counters =
        {
          messages = geti "messages";
          dropped = geti "dropped";
          dropped_faults = geti "dropped_faults";
          dispatches = geti "dispatches";
          duplicated = geti "duplicated";
          corrupted = geti "corrupted";
          lied = geti "lied";
          jumps =
            {
              Logical_clock.count = geti "jumps_count";
              total_magnitude = getf "jumps_total";
              max_magnitude = getf "jumps_max";
            };
        }
      in
      let warmup = getf "warmup" in
      let info =
        {
          topology;
          algo;
          horizon = getf "horizon";
          sample_period = getf "sample_period";
          warmup;
          seed;
          fault_plan;
        }
      in
      Ok
        ( info,
          build_result ~graph ~spec ~warmup ~fault_plan ~samples ~counters
            ~log )
    end
  with
  | Failure msg -> Error msg
  | Sys_error msg -> Error msg
