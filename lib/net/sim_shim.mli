(** The simulator as a transport: proof the abstraction is lossless.

    [wrap] reroutes an algorithm's callbacks through a {!Transport.t}
    built from the engine's own node API — sends, timers, clock reads and
    RNG pass straight through, and deliveries take the transport's
    receive path (a one-slot inbox popped by the driver). Because every
    side effect reaches the engine through the same closures in the same
    order, a shim-run is {e byte-identical} to the direct run: equal
    {!Gcs_core.Runner.result} values and equal exported event-log bytes.
    The qcheck property in [test/test_net.ml] asserts exactly this over
    random topology x algorithm x seed x fault-plan configurations —
    which is what licenses reading live-transport executions of the same
    driver as executions of the stock algorithms. *)

val wrap : Gcs_core.Algorithm.t -> Gcs_core.Algorithm.t
(** Same name, same observable behaviour; every callback routed through
    a transport driver. *)

val run : Gcs_core.Runner.config -> Gcs_core.Runner.result
(** [Runner.run] with the config's algorithm (or override) wrapped. *)
