module Graph = Gcs_graph.Graph
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Message = Gcs_core.Message
module Registry = Gcs_core.Registry
module Engine = Gcs_sim.Engine
module Fault_plan = Gcs_sim.Fault_plan
module Drift = Gcs_clock.Drift
module Hardware_clock = Gcs_clock.Hardware_clock
module Logical_clock = Gcs_clock.Logical_clock
module Prng = Gcs_util.Prng
module Event_log = Gcs_obs.Event_log

type config = {
  node : int;
  graph : Graph.t;
  spec : Spec.t;
  algo : Algorithm.kind;
  drift_of_node : int -> Drift.pattern;
  seed : int;
  t0 : float;
  horizon : float;
  sample_period : float;
  base_port : int;
  host : string;
  fault_plan : Fault_plan.t option;
}

type outcome = {
  node : int;
  events : Event_log.t;
  samples : (float * float) list;
  udp : Udp.stats;
  timers : int;
  deliveries : int;
  drops_fault : int;
  duplicates : int;
  corruptions : int;
  lies : int;
  jumps : Logical_clock.jump_stats;
}

(* Insert into a list sorted ascending on the key produced by [key]. *)
let rec insert_by key x = function
  | [] -> [ x ]
  | y :: _ as l when key x < key y -> x :: l
  | y :: rest -> y :: insert_by key x rest

let run (cfg : config) =
  (match Spec.validate cfg.spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Live_node.run: " ^ msg));
  let v = cfg.node in
  let n = Graph.n cfg.graph in
  (* Clock construction mirrors [Runner.prepare] stream-for-stream: one
     master rng, a drift split consumed over all n nodes in order, and an
     (unused here) engine split, so rates agree with the simulator. *)
  let rng = Prng.create ~seed:cfg.seed in
  let drift_rng = Prng.split rng in
  let _engine_rng = Prng.split rng in
  let band = Drift.band ~rho:cfg.spec.Spec.rho in
  let clocks =
    Array.init n (fun w ->
        Drift.make_clock (cfg.drift_of_node w) ~band ~t0:0.
          ~horizon:cfg.horizon ~rng:drift_rng)
  in
  let logical =
    Array.init n (fun w ->
        Logical_clock.create ~hardware:clocks.(w) ~now:0. ~value:0. ~mult:1.)
  in
  let hw = clocks.(v) in
  let lc = logical.(v) in
  let udp =
    Udp.create ~node:v ~graph:cfg.graph ~base_port:cfg.base_port
      ~host:cfg.host ()
  in
  let inject =
    Option.map
      (fun p -> Inject.create ~graph:cfg.graph ~node:v ~seed:cfg.seed p)
      cfg.fault_plan
  in
  let log = Event_log.create () in
  let started = ref false in
  let now () =
    if not !started then 0. else Float.max 0. (Wall.now () -. cfg.t0)
  in
  let timers = ref 0 in
  let deliveries = ref 0 in
  let drops_fault = ref 0 in
  let duplicates = ref 0 in
  let corruptions = ref 0 in
  let lies = ref 0 in
  let down = ref false in
  let pending_timers = ref [] (* (h, tag), ascending h *) in
  let pending_sends = ref [] (* (release, port, msg), ascending release *) in
  let record obs = Event_log.record log (now ()) obs in
  let transmit ~port msg = Udp.send udp ~port msg in
  let flush_sends () =
    let t = now () in
    let due, later =
      List.partition (fun (release, _, _) -> release <= t) !pending_sends
    in
    pending_sends := later;
    List.iter (fun (_, port, msg) -> transmit ~port msg) due
  in
  let next_send_release () =
    match !pending_sends with (r, _, _) :: _ -> Some r | [] -> None
  in
  let do_send ~port msg =
    if not !down then begin
      let t = now () in
      let edge = Graph.edge_at_port cfg.graph v port in
      let dst = Graph.neighbor_at_port cfg.graph v port in
      match inject with
      | None ->
          record (Engine.Obs_send { src = v; dst; edge; delay = 0. });
          transmit ~port msg
      | Some inj ->
          let verdict = Inject.outgoing inj ~now:t ~edge ~dst msg in
          if verdict.Inject.fault_drop then begin
            incr drops_fault;
            record (Engine.Obs_fault_drop { src = v; dst; edge })
          end
          else begin
            if verdict.Inject.lied then begin
              incr lies;
              record (Engine.Obs_lie { src = v; dst; edge })
            end;
            if verdict.Inject.corrupted then begin
              incr corruptions;
              record (Engine.Obs_corrupt { src = v; dst; edge })
            end;
            if verdict.Inject.duplicated then begin
              incr duplicates;
              record (Engine.Obs_duplicate { src = v; dst; edge })
            end;
            List.iter
              (fun (extra, m) ->
                record (Engine.Obs_send { src = v; dst; edge; delay = extra });
                if extra <= 0. then transmit ~port m
                else
                  pending_sends :=
                    insert_by
                      (fun (r, _, _) -> r)
                      (t +. extra, port, m)
                      !pending_sends)
              verdict.Inject.sends
          end
    end
  in
  let set_timer ~h ~tag =
    pending_timers := insert_by fst (h, tag) !pending_timers
  in
  let pop_due_timer () =
    match !pending_timers with
    | (h, tag) :: rest when Hardware_clock.value hw ~now:(now ()) >= h ->
        pending_timers := rest;
        incr timers;
        record (Engine.Obs_timer { node = v; tag });
        Some tag
    | _ -> None
  in
  let next_deadline () =
    match !pending_timers with
    | [] -> None
    | (h, _) :: _ ->
        let t = now () in
        if Hardware_clock.value hw ~now:t >= h then Some t
        else Some (Hardware_clock.inverse hw ~h)
  in
  let recv ~deadline =
    flush_sends ();
    let t = now () in
    let timeout =
      let d = deadline -. t in
      match next_send_release () with
      | Some r -> Float.min d (r -. t)
      | None -> d
    in
    match Udp.recv udp ~timeout with
    | None -> None
    | Some (port, msg) ->
        let t = now () in
        let edge = Graph.edge_at_port cfg.graph v port in
        let src = Graph.neighbor_at_port cfg.graph v port in
        let edge_ok =
          match inject with
          | None -> true
          | Some inj -> Inject.edge_up inj ~edge ~now:t
        in
        if !down || not edge_ok then begin
          incr drops_fault;
          record (Engine.Obs_fault_drop { src; dst = v; edge });
          None
        end
        else begin
          incr deliveries;
          record (Engine.Obs_deliver { dst = v; port });
          Some { Transport.port; msg }
        end
  in
  let tr =
    {
      Transport.node = v;
      ports = Graph.degree cfg.graph v;
      mono = now;
      hardware = (fun () -> Hardware_clock.value hw ~now:(now ()));
      send = do_send;
      set_timer;
      recv;
      pop_due_timer;
      next_deadline;
      rng = Prng.create ~seed:(cfg.seed lxor (0x2545f491 * (v + 1)));
    }
  in
  let ctx =
    { Algorithm.spec = cfg.spec; graph = cfg.graph; logical; now }
  in
  let make_node = (Registry.get cfg.algo).Algorithm.prepare ctx in
  let driver = Transport.Driver.create tr (make_node v) in
  let samples = ref [] in
  let next_sample = ref 0. in
  let take_sample () =
    let t = now () in
    samples := (t, Logical_clock.value lc ~now:t) :: !samples;
    next_sample := !next_sample +. cfg.sample_period
  in
  let apply_control c =
    match c with
    | Inject.Crash ->
        down := true;
        pending_timers := [];
        pending_sends := [];
        record (Engine.Obs_node_down { node = v })
    | Inject.Recover wipe ->
        down := false;
        record (Engine.Obs_node_up { node = v; wipe });
        if wipe then Transport.Driver.replace_handlers driver (make_node v);
        Transport.Driver.start driver
    | Inject.Jump delta -> Logical_clock.advance lc ~now:(now ()) delta
    | Inject.Rate rate ->
        let t = now () in
        (* The drift schedule pre-applied the whole run; a rate fault can
           only take effect once real time passes the last scheduled
           breakpoint (the simulator has the same constraint, met there
           because control actions run in global time order). *)
        if t >= Hardware_clock.last_breakpoint hw then begin
          Hardware_clock.set_rate hw ~now:t ~rate;
          record (Engine.Obs_rate_change { node = v; rate })
        end
    | Inject.Edge_down e -> record (Engine.Obs_edge_down { edge = e })
    | Inject.Edge_up e -> record (Engine.Obs_edge_up { edge = e })
  in
  Wall.sleep_until cfg.t0;
  started := true;
  Transport.Driver.start driver;
  let rec loop () =
    let t = now () in
    if t < cfg.horizon then begin
      (match inject with
      | Some inj -> List.iter apply_control (Inject.due inj ~now:t)
      | None -> ());
      if now () >= !next_sample then take_sample ();
      let until =
        let u = Float.min cfg.horizon !next_sample in
        let u =
          match next_send_release () with
          | Some r -> Float.min u r
          | None -> u
        in
        match Option.bind inject Inject.next_control with
        | Some c -> Float.min u c
        | None -> u
      in
      if !down then
        (* Crashed: no timers, no deliveries — but keep draining the
           socket so arrivals are recorded as fault drops. *)
        ignore (recv ~deadline:until)
      else ignore (Transport.Driver.step driver ~until);
      loop ()
    end
  in
  loop ();
  take_sample ();
  Udp.close udp;
  {
    node = v;
    events = log;
    samples = List.rev !samples;
    udp = Udp.stats udp;
    timers = !timers;
    deliveries = !deliveries;
    drops_fault = !drops_fault;
    duplicates = !duplicates;
    corruptions = !corruptions;
    lies = !lies;
    jumps = Logical_clock.jump_stats lc;
  }
