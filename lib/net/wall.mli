(** Monotonic wall clock for live runs.

    The container's toolchain has no [clock_gettime] binding, so the live
    subsystem builds its run clock from [Unix.gettimeofday] wrapped in a
    per-process non-decreasing clamp: a backwards NTP step can stall the
    clock briefly but can never make it run backwards, which is all the
    timer and logical-clock layers require (both trap on time reversal).

    All live-run timestamps are expressed on the {e run clock} — seconds
    since the run's barrier instant — so recorded event logs from
    different processes merge on a common axis and look exactly like
    simulated time starting at [t0 = 0]. *)

val now : unit -> float
(** Current wall time in seconds, clamped non-decreasing within this
    process. *)

val sleep_until : float -> unit
(** Block until {!now} reaches the given wall time (no-op if already
    past). Sleeps in bounded slices so a clock step cannot oversleep by
    more than one slice. *)
