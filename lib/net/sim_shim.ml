module Engine = Gcs_sim.Engine
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner

(* One driver per node, built lazily at the node's first callback (the
   engine API record only exists once the engine does). The inbox is a
   queue for shape, but holds at most one delivery: the engine hands us a
   message, we push it, and the driver's recv pops it synchronously. *)
let wrap (inner : Algorithm.t) : Algorithm.t =
  {
    Algorithm.name = inner.Algorithm.name;
    prepare =
      (fun ctx ->
        let make_inner = inner.Algorithm.prepare ctx in
        fun v ->
          let inner_handlers = make_inner v in
          let cell = ref None in
          let driver_of (api : Gcs_core.Message.t Engine.api) =
            match !cell with
            | Some di -> di
            | None ->
                let inbox = Queue.create () in
                let tr =
                  {
                    Transport.node = api.Engine.node;
                    ports = api.Engine.ports;
                    mono = ctx.Algorithm.now;
                    hardware = api.Engine.hardware;
                    send = api.Engine.send;
                    set_timer = api.Engine.set_timer;
                    recv =
                      (fun ~deadline:_ ->
                        if Queue.is_empty inbox then None
                        else Some (Queue.pop inbox));
                    pop_due_timer = (fun () -> None);
                    next_deadline = (fun () -> None);
                    rng = api.Engine.rng;
                  }
                in
                let d = Transport.Driver.create tr inner_handlers in
                let di = (d, inbox, tr) in
                cell := Some di;
                di
          in
          {
            Engine.on_init =
              (fun api ->
                let d, _, _ = driver_of api in
                Transport.Driver.start d);
            on_message =
              (fun api ~port msg ->
                let d, inbox, tr = driver_of api in
                Queue.push { Transport.port; msg } inbox;
                match tr.Transport.recv ~deadline:(ctx.Algorithm.now ()) with
                | Some { Transport.port; msg } ->
                    Transport.Driver.deliver d ~port msg
                | None -> ());
            on_timer =
              (fun api ~tag ->
                let d, _, _ = driver_of api in
                Transport.Driver.fire d ~tag);
          })
  }

let run (cfg : Runner.config) =
  let impl =
    match cfg.Runner.override with
    | Some a -> a
    | None -> Gcs_core.Registry.get cfg.Runner.algo
  in
  Runner.run { cfg with Runner.override = Some (wrap impl) }
