(** Spawn, barrier, collect: a whole live execution as one value.

    [run] forks one {!Live_node} process per node of the topology, lines
    them all up on a wall-clock barrier, and collects their recorded
    executions into a standard {!Gcs_core.Runner.result} — the same type
    a simulated run produces — so reporting, tracing and monitor
    checking apply to live executions verbatim.

    Two mismatches between wall-clock execution and the simulator's
    sampling discipline are reconciled here rather than hidden:

    - {b Sampling jitter.} A process wakes {e near} its sample instant,
      never exactly on it; pinning the wake-up value to the grid time
      would manufacture phantom clock-rate violations of order
      jitter / period. Children therefore record (actual time, value)
      pairs and the coordinator linearly interpolates each node's
      polyline onto the common grid — interpolated rates are convex
      combinations of real segment rates, so a clean execution stays
      clean under every {!Gcs_check.Monitor} check.
    - {b Event-log merging.} Per-process logs are merged by recorded
      time (ties broken by node, then per-process order) and
      re-sequenced, yielding one canonical log that round-trips through
      {!Gcs_obs.Event_log.validate_line}.

    A recorded run [save]d to a directory ([events.jsonl], [samples.csv],
    [meta]) can be [load]ed back into a result by a later process —
    that is what [gcs-cli report --recorded], [trace --input] and
    [check run --recorded] consume. *)

type config = {
  topology : Gcs_graph.Topology.spec;
  algo : Gcs_core.Algorithm.kind;
  spec : Gcs_core.Spec.t;
  drift : string;  (** CLI drift spelling, e.g. ["random"], ["perfect"] *)
  horizon : float;  (** wall seconds after the barrier *)
  sample_period : float;
  warmup : float;
  seed : int;
  base_port : int;
  host : string;
  fault_plan : Gcs_sim.Fault_plan.t option;
  startup : float;  (** barrier lead time for spawning, in seconds *)
}

val config :
  ?topology:Gcs_graph.Topology.spec ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?spec:Gcs_core.Spec.t ->
  ?drift:string ->
  ?horizon:float ->
  ?sample_period:float ->
  ?warmup:float ->
  ?seed:int ->
  ?base_port:int ->
  ?host:string ->
  ?fault_plan:Gcs_sim.Fault_plan.t ->
  ?startup:float ->
  unit ->
  config
(** Defaults: 4-node ring, gradient, [Spec.make ()] scaled for wall time
    (beacon period 0.25, delays ignored live), drift ["random"],
    horizon 6, sample period 0.5, warmup [horizon / 4], seed 42, base
    port 9200, loopback host, no faults, startup 0.5. Raises
    [Invalid_argument] on a non-positive horizon/period or an unknown
    drift spelling. *)

val build_graph : config -> Gcs_graph.Graph.t
(** The run's graph, derived from topology and seed exactly as the CLI
    sweep convention does. *)

val run : config -> Gcs_core.Runner.result
(** Fork the fleet, wait for every child, merge. Raises [Failure] if a
    child exits abnormally. *)

type info = {
  topology : Gcs_graph.Topology.spec;
  algo : Gcs_core.Algorithm.kind;
  horizon : float;
  sample_period : float;
  warmup : float;
  seed : int;
  fault_plan : Gcs_sim.Fault_plan.t option;
}
(** Run parameters a recorded directory preserves alongside the result —
    what [check run --recorded] needs to rebuild the monitor spec. *)

val save : config -> Gcs_core.Runner.result -> dir:string -> unit
(** Write [events.jsonl], [samples.csv] and [meta] under [dir], creating
    it if needed. *)

val load : string -> (info * Gcs_core.Runner.result, string) result
(** Re-hydrate a recorded run from a directory written by [save]. The
    summary, series and fault report are recomputed from the recorded
    samples; counters come from [meta]. *)
