module Graph = Gcs_graph.Graph

type stats = {
  sent : int;
  received : int;
  lost : int;
  reordered : int;
  decode_errors : int;
}

type t = {
  node : int;
  socket : Unix.file_descr;
  peers : Unix.sockaddr array;  (** indexed by port *)
  port_of_src : (int, int) Hashtbl.t;  (** sender node id -> local port *)
  tx_seq : int array;  (** next sequence number per port *)
  rx_last : int array;  (** highest sequence seen per port, -1 initially *)
  buf : Bytes.t;
  mutable sent : int;
  mutable received : int;
  mutable lost : int;
  mutable reordered : int;
  mutable decode_errors : int;
}

let addr host port = Unix.ADDR_INET (Unix.inet_addr_of_string host, port)

let create ~node ~graph ~base_port ?(host = "127.0.0.1") () =
  let socket = Unix.socket Unix.PF_INET Unix.SOCK_DGRAM 0 in
  (try
     Unix.setsockopt socket Unix.SO_REUSEADDR true;
     Unix.bind socket (addr host (base_port + node));
     Unix.set_nonblock socket
   with e ->
     Unix.close socket;
     raise e);
  let nbrs = Graph.neighbors graph node in
  let ports = Array.length nbrs in
  let peers = Array.map (fun (w, _) -> addr host (base_port + w)) nbrs in
  let port_of_src = Hashtbl.create ports in
  Array.iteri (fun p (w, _) -> Hashtbl.replace port_of_src w p) nbrs;
  {
    node;
    socket;
    peers;
    port_of_src;
    tx_seq = Array.make ports 0;
    rx_last = Array.make ports (-1);
    buf = Bytes.create Codec.max_frame;
    sent = 0;
    received = 0;
    lost = 0;
    reordered = 0;
    decode_errors = 0;
  }

let close t = try Unix.close t.socket with Unix.Unix_error _ -> ()
let fd t = t.socket

let send t ~port msg =
  let seq = t.tx_seq.(port) in
  t.tx_seq.(port) <- seq + 1;
  let frame = Codec.encode ~src:t.node ~seq msg in
  t.sent <- t.sent + 1;
  try
    ignore
      (Unix.sendto t.socket frame 0 (Bytes.length frame) [] t.peers.(port))
  with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ENOBUFS), _, _) ->
      (* Fire-and-forget: a full buffer is indistinguishable from wire
         loss to the peer, so account it as such locally too. *)
      ()
  | Unix.Unix_error (Unix.ECONNREFUSED, _, _) ->
      (* Linux surfaces a peer's closed socket as a refusal on a
         connected-path datagram; the peer simply isn't up (yet). *)
      ()

let account t port seq =
  let last = t.rx_last.(port) in
  if seq > last then begin
    if last >= 0 && seq > last + 1 then t.lost <- t.lost + (seq - last - 1);
    t.rx_last.(port) <- seq
  end
  else t.reordered <- t.reordered + 1

let rec wait_readable t timeout =
  match Unix.select [ t.socket ] [] [] timeout with
  | [], _, _ -> false
  | _ -> true
  | exception Unix.Unix_error (Unix.EINTR, _, _) ->
      (* Imprecise re-wait is fine: the caller owns the deadline math. *)
      wait_readable t timeout

let recv t ~timeout =
  let timeout = Float.max 0. timeout in
  if not (wait_readable t timeout) then None
  else
    match Unix.recvfrom t.socket t.buf 0 (Bytes.length t.buf) [] with
    | exception
        Unix.Unix_error
          ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.ECONNREFUSED), _, _) ->
        None
    | len, _from -> (
        match Codec.decode t.buf ~len with
        | Error _ ->
            t.decode_errors <- t.decode_errors + 1;
            None
        | Ok (src, seq, msg) -> (
            match Hashtbl.find_opt t.port_of_src src with
            | None ->
                t.decode_errors <- t.decode_errors + 1;
                None
            | Some port ->
                account t port seq;
                t.received <- t.received + 1;
                Some (port, msg)))

let stats t =
  {
    sent = t.sent;
    received = t.received;
    lost = t.lost;
    reordered = t.reordered;
    decode_errors = t.decode_errors;
  }
