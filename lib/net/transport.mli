(** The transport abstraction: what an algorithm needs from a network.

    A transport is a record of operations — the repo's packed-closure
    idiom ({!Gcs_util.Scheduler} is the same shape) — covering exactly
    the surface of the engine's node API plus the two pull-side
    operations a live runtime needs (receive with a deadline, pop due
    timers). {!Sim_shim} instantiates it over the stock discrete-event
    engine; {!Udp} instantiates it over real sockets. Algorithms never
    see the transport directly: {!api} re-packages one as the ordinary
    {!Gcs_sim.Engine.api} record, so every registered algorithm runs
    against any transport unchanged. *)

type delivery = { port : int; msg : Gcs_core.Message.t }

type t = {
  node : int;  (** this node's id *)
  ports : int;  (** number of incident links *)
  mono : unit -> float;
      (** the run clock: simulation time for the sim shim, monotonic
          seconds since the barrier for live transports *)
  hardware : unit -> float;  (** local hardware clock at [mono ()] *)
  send : port:int -> Gcs_core.Message.t -> unit;
  set_timer : h:float -> tag:int -> unit;
      (** arm a one-shot timer in local hardware time (engine semantics:
          a value already in the past fires immediately) *)
  recv : deadline:float -> delivery option;
      (** block until a message arrives or [mono ()] reaches [deadline];
          [None] on deadline. Push-based transports (the sim shim) drain
          an inbox and never block. *)
  pop_due_timer : unit -> int option;
      (** the tag of the earliest pending timer whose real-time deadline
          has passed, removed from the pending set; [None] if none due *)
  next_deadline : unit -> float option;
      (** real-time deadline of the earliest pending timer, if any —
          what a pull loop sleeps towards *)
  rng : Gcs_util.Prng.t;  (** node-private deterministic randomness *)
}

val api : t -> Gcs_core.Message.t Gcs_sim.Engine.api
(** Repackage a transport as the engine's node-facing API record. The
    closures pass straight through, so a handler driven via [api] has
    side effects identical to one driven by the engine itself — the
    byte-identity property of {!Sim_shim} rests on this. *)

(** Drives a stock {!Gcs_sim.Engine.handlers} record over a transport:
    the glue that makes an unmodified algorithm a transport client. *)
module Driver : sig
  type transport = t
  type t

  val create : transport -> Gcs_core.Message.t Gcs_sim.Engine.handlers -> t

  val handlers : t -> Gcs_core.Message.t Gcs_sim.Engine.handlers
  val replace_handlers : t -> Gcs_core.Message.t Gcs_sim.Engine.handlers -> unit
  (** Swap the handler record (state-wiping recovery rebuilds a node's
      handlers from the algorithm factory, engine [recover ~wipe]
      semantics). *)

  val start : t -> unit
  (** Run [on_init]. *)

  val deliver : t -> port:int -> Gcs_core.Message.t -> unit
  (** Run [on_message] through the transport-derived API. *)

  val fire : t -> tag:int -> unit
  (** Run [on_timer] through the transport-derived API. *)

  val step : t -> until:float -> bool
  (** One pull-loop step: fire one due timer if any, otherwise receive
      with a deadline of [min until (next timer deadline)] and deliver.
      [false] once [mono ()] has reached [until] (nothing dispatched). *)

  val run : t -> until:float -> unit
  (** Pull-loop [step] to the horizon. Live runtimes with their own
      bookkeeping (sampling, fault injection) interleave [step] calls
      instead. *)
end
