(** One real process running one node of a synchronization algorithm.

    A live node rebuilds the {e entire} fleet's hardware-clock schedules
    from the shared run seed — drift streams are consumed in node order
    during setup, exactly as in {!Gcs_core.Runner.prepare} — so its own
    simulated drift matches what the same seed produces in the simulator
    bit-for-bit, while it reads only its own clock at runtime. Real time
    for the run is the wall clock relative to the shared barrier instant
    [t0]: every process sleeps until [t0] and then counts from zero, so
    recorded event times across processes share one origin (up to OS
    scheduling noise, which is part of what live mode measures).

    The node drives its algorithm's stock engine handlers through a
    {!Transport.Driver} over a {!Udp} transport, applies its slice of
    the fault plan via {!Inject}, samples its own logical clock on the
    configured period (recording {e actual} sample instants — the
    coordinator realigns them onto the grid), and records every event
    through the standard {!Gcs_obs.Event_log} schema so the recorded
    execution is checkable by the stock observability pipeline. *)

type config = {
  node : int;
  graph : Gcs_graph.Graph.t;
  spec : Gcs_core.Spec.t;
  algo : Gcs_core.Algorithm.kind;
  drift_of_node : int -> Gcs_clock.Drift.pattern;
  seed : int;
  t0 : float;  (** absolute wall-clock barrier; run time 0 *)
  horizon : float;  (** run duration in wall seconds *)
  sample_period : float;
  base_port : int;
  host : string;
  fault_plan : Gcs_sim.Fault_plan.t option;
}

type outcome = {
  node : int;
  events : Gcs_obs.Event_log.t;
  samples : (float * float) list;
      (** [(run_time, logical_value)] at actual sample instants,
          time-ascending *)
  udp : Udp.stats;
  timers : int;  (** timer callbacks fired *)
  deliveries : int;  (** messages handed to the algorithm *)
  drops_fault : int;  (** messages dropped by partition or crash *)
  duplicates : int;
  corruptions : int;
  lies : int;
  jumps : Gcs_clock.Logical_clock.jump_stats;
}

val run : config -> outcome
(** Bind the socket, sleep to the barrier, run the algorithm for
    [horizon] wall seconds, and return the recorded execution. Raises
    [Unix.Unix_error] if the socket cannot be bound and
    [Invalid_argument] on an invalid spec or fault plan. *)
