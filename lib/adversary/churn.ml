module Graph = Gcs_graph.Graph
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Prng = Gcs_util.Prng
module Fault_plan = Gcs_sim.Fault_plan

type config = {
  spec : Spec.t;
  graph : Graph.t;
  algo : Algorithm.kind;
  duty : float;
  mean_down : float;
  horizon : float;
  seed : int;
}

type report = {
  result : Runner.result;
  forced_local : float;
  forced_global : float;
  downtime_fraction : float;
}

let default_config ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync)
    ?(duty = 0.2) ?(mean_down = 10.) ?(horizon = 600.) ?(seed = 42) ~graph () =
  if duty < 0. || duty >= 1. then
    invalid_arg "Churn.default_config: duty must be in [0, 1)";
  if mean_down <= 0. then
    invalid_arg "Churn.default_config: mean_down must be > 0";
  { spec; graph; algo; duty; mean_down; horizon; seed }

let windows ~duty ~mean_down ~horizon ~rng =
  if duty <= 0. then [||]
  else begin
    let mean_up = mean_down *. (1. -. duty) /. duty in
    let acc = ref [] in
    let t = ref (Prng.exponential rng ~rate:(1. /. mean_up)) in
    while !t < horizon do
      let down = Prng.exponential rng ~rate:(1. /. mean_down) in
      let stop = Float.min horizon (!t +. down) in
      acc := (!t, stop) :: !acc;
      t := stop +. Prng.exponential rng ~rate:(1. /. mean_up)
    done;
    Array.of_list (List.rev !acc)
  end

let run cfg =
  let rng = Prng.create ~seed:(cfg.seed lxor 0xC0FFEE) in
  let per_edge =
    Array.init (Graph.m cfg.graph) (fun _ ->
        windows ~duty:cfg.duty ~mean_down:cfg.mean_down ~horizon:cfg.horizon
          ~rng:(Prng.split rng))
  in
  (* Thin front-end over the fault subsystem: each down-window becomes a
     partition/heal pair on that single edge. *)
  let ends = Graph.edges cfg.graph in
  let plan =
    Fault_plan.of_events
      (List.concat
         (List.mapi
            (fun e ws ->
              let pair = Fault_plan.Edges [ ends.(e) ] in
              List.concat_map
                (fun (start, stop) ->
                  [
                    Fault_plan.Link_partition { at = start; edges = pair };
                    Fault_plan.Link_heal { at = stop; edges = pair };
                  ])
                (Array.to_list ws))
            (Array.to_list per_edge)))
  in
  let run_cfg =
    Runner.config ~spec:cfg.spec ~algo:cfg.algo ~fault_plan:plan
      ~horizon:cfg.horizon ~warmup:0. ~seed:cfg.seed cfg.graph
  in
  let result = Runner.run run_cfg in
  let tail =
    Metrics.summarize cfg.graph result.Runner.samples
      ~after:(0.5 *. cfg.horizon)
  in
  let downtime_fraction =
    if result.Runner.messages = 0 then 0.
    else
      float_of_int result.Runner.dropped_faults
      /. float_of_int result.Runner.messages
  in
  {
    result;
    forced_local = tail.Metrics.max_local;
    forced_global = tail.Metrics.max_global;
    downtime_fraction;
  }
