(** Crash faults: nodes that fall silent.

    A thin front-end over {!Gcs_sim.Fault_plan}: each crash becomes a
    [Node_crash] event, so the node genuinely crash-stops — no sends, no
    deliveries, no timers — while its logical clock keeps freewheeling at
    the hardware rate. What matters is the *live* part of the network: do
    the surviving nodes keep their mutual skew bounded once the crashed
    node's stale estimates age out of their triggers?

    The estimate staleness limit ([Spec.staleness_limit]) is the mechanism
    under test: without expiry, a live neighbor keeps extrapolating the
    crashed node's clock, concludes it is falling ever further behind, and
    the fast-trigger's blocking clause freezes the neighbor out of
    synchronization permanently. With expiry, the phantom disappears after
    a few silent periods and the survivors re-converge. Experiment E16
    shows both behaviours. *)

type config = {
  spec : Gcs_core.Spec.t;
  graph : Gcs_graph.Graph.t;
  algo : Gcs_core.Algorithm.kind;
  crashes : (int * float) list;  (** (node, crash time) pairs *)
  drift_of_node : int -> Gcs_clock.Drift.pattern;
      (** the phantom-estimate problem only bites when drift forces the
          survivors to actually use the fast trigger *)
  horizon : float;
  seed : int;
}

type report = {
  result : Gcs_core.Runner.result;
  alive : int -> bool;  (** nodes that never crash *)
  live_local : float;
      (** max local skew among live-live edges over the final quarter *)
  live_global : float;  (** max global skew among live nodes, final quarter *)
}

val default_config :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?drift_of_node:(int -> Gcs_clock.Drift.pattern) ->
  ?horizon:float ->
  ?seed:int ->
  crashes:(int * float) list ->
  graph:Gcs_graph.Graph.t ->
  unit ->
  config

val run : config -> report
(** Raises [Invalid_argument] if a crash names a node outside the graph.
    The caller is responsible for the live subgraph staying connected if
    the live skews are to be meaningful. *)
