module Engine = Gcs_sim.Engine
module Delay_model = Gcs_sim.Delay_model
module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics

type move = {
  fast_side : [ `Left | `Right | `None ];
  bias : [ `Forward | `Backward | `Neutral ];
}

let all_moves =
  List.concat_map
    (fun fast_side ->
      List.map
        (fun bias -> { fast_side; bias })
        [ `Forward; `Backward; `Neutral ])
    [ `Left; `Right; `None ]

type config = {
  spec : Spec.t;
  n : int;
  algo : Algorithm.kind;
  segments : int;
  segment_len : float;
  beam : int;
  seed : int;
}

type outcome = {
  forced_local : float;
  forced_global : float;
  plan : move list;
  evaluations : int;
}

let default_config ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync)
    ?(segments = 6) ?segment_len ?(beam = 12) ?(seed = 42) ~n () =
  if n < 2 then invalid_arg "Search.default_config: n must be >= 2";
  if segments < 1 then invalid_arg "Search.default_config: segments >= 1";
  if beam < 1 then invalid_arg "Search.default_config: beam >= 1";
  let segment_len =
    match segment_len with
    | Some l -> l
    | None ->
        4. *. float_of_int n *. spec.Spec.delay.Delay_model.d_max
        |> Float.max (4. *. spec.Spec.beacon_period)
  in
  { spec; n; algo; segments; segment_len; beam; seed }

(* Wire a move sequence into a prepared run: the delay chooser follows the
   current move's bias, and each segment boundary re-splits the node set
   into a fast and a slow half. Everything the moves need (spec, node
   count) comes from the live run's own config, so the same installer
   drives both the beam search and counterexample replay/shrinking
   (Gcs_check), where the run config was rebuilt from a store key. *)
let install (live : Runner.live) ~segment_len plan =
  let rc = live.Runner.cfg in
  let spec = rc.Runner.spec in
  let n = Gcs_graph.Graph.n rc.Runner.graph in
  let b = spec.Spec.delay in
  let mid = 0.5 *. (b.Delay_model.d_min +. b.Delay_model.d_max) in
  let current = ref { fast_side = `None; bias = `Neutral } in
  live.Runner.chooser :=
    Some
      (fun ~edge:_ ~src ~dst ~now:_ ->
        let forward = dst > src in
        match (!current).bias with
        | `Neutral -> mid
        | `Forward -> if forward then b.Delay_model.d_max else b.Delay_model.d_min
        | `Backward -> if forward then b.Delay_model.d_min else b.Delay_model.d_max);
  let midpoint = (n - 1) / 2 in
  let apply_move move =
    current := move;
    for v = 0 to n - 1 do
      let fast =
        match move.fast_side with
        | `None -> false
        | `Left -> v <= midpoint
        | `Right -> v > midpoint
      in
      Engine.set_node_rate live.Runner.engine ~node:v
        ~rate:(if fast then Spec.vartheta spec else 1.)
    done
  in
  List.iteri
    (fun i move ->
      Engine.schedule_control live.Runner.engine
        ~at:(float_of_int i *. segment_len)
        (fun () -> apply_move move))
    plan

(* Play a move sequence deterministically and return (local, global) skew
   maxima over the final segment. *)
let evaluate cfg plan =
  let graph = Topology.line cfg.n in
  let horizon = float_of_int (List.length plan) *. cfg.segment_len in
  let run_cfg =
    Runner.config ~spec:cfg.spec ~algo:cfg.algo
      ~drift_of_node:(fun _ -> Drift.Constant 1.)
      ~delay_kind:Runner.Controlled_delays ~horizon
      ~sample_period:(Float.max 0.5 (cfg.segment_len /. 50.))
      ~warmup:0. ~seed:cfg.seed graph
  in
  let live = Runner.prepare run_cfg in
  install live ~segment_len:cfg.segment_len plan;
  let result = Runner.complete live in
  let tail_start = horizon -. cfg.segment_len in
  let tail =
    Metrics.summarize graph result.Runner.samples ~after:tail_start
  in
  (tail.Metrics.max_local, tail.Metrics.max_global)

let search cfg =
  let evaluations = ref 0 in
  let score plan =
    incr evaluations;
    evaluate cfg plan
  in
  (* Beam search over prefixes, scored by the skew at the prefix's end. *)
  let initial = [ (0., 0., []) ] in
  let expand beam_entries =
    let candidates =
      List.concat_map
        (fun (_, _, prefix) ->
          List.map
            (fun move ->
              let plan = prefix @ [ move ] in
              let local, global = score plan in
              (local, global, plan))
            all_moves)
        beam_entries
    in
    let sorted =
      List.sort
        (fun (l1, _, _) (l2, _, _) -> Float.compare l2 l1)
        candidates
    in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take (min cfg.beam (List.length sorted)) sorted
  in
  let rec go depth beam_entries =
    if depth >= cfg.segments then beam_entries
    else go (depth + 1) (expand beam_entries)
  in
  match go 0 initial with
  | (local, global, plan) :: _ ->
      {
        forced_local = local;
        forced_global = global;
        plan;
        evaluations = !evaluations;
      }
  | [] -> { forced_local = 0.; forced_global = 0.; plan = []; evaluations = 0 }
