module Engine = Gcs_sim.Engine
module Delay_model = Gcs_sim.Delay_model
module Topology = Gcs_graph.Topology
module Drift = Gcs_clock.Drift
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics

type move = {
  fast_side : [ `Left | `Right | `None ];
  bias : [ `Forward | `Backward | `Neutral ];
}

let all_moves =
  List.concat_map
    (fun fast_side ->
      List.map
        (fun bias -> { fast_side; bias })
        [ `Forward; `Backward; `Neutral ])
    [ `Left; `Right; `None ]

type config = {
  spec : Spec.t;
  n : int;
  algo : Algorithm.kind;
  segments : int;
  segment_len : float;
  beam : int;
  seed : int;
}

type outcome = {
  forced_local : float;
  forced_global : float;
  plan : move list;
  evaluations : int;
}

let default_config ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync)
    ?(segments = 6) ?segment_len ?(beam = 12) ?(seed = 42) ~n () =
  if n < 2 then invalid_arg "Search.default_config: n must be >= 2";
  if segments < 1 then invalid_arg "Search.default_config: segments >= 1";
  if beam < 1 then invalid_arg "Search.default_config: beam >= 1";
  let segment_len =
    match segment_len with
    | Some l -> l
    | None ->
        4. *. float_of_int n *. spec.Spec.delay.Delay_model.d_max
        |> Float.max (4. *. spec.Spec.beacon_period)
  in
  { spec; n; algo; segments; segment_len; beam; seed }

(* Wire a move sequence into a prepared run: the delay chooser follows the
   current move's bias, and each segment boundary re-splits the node set
   into a fast and a slow half. Everything the moves need (spec, node
   count) comes from the live run's own config, so the same installer
   drives both the beam search and counterexample replay/shrinking
   (Gcs_check), where the run config was rebuilt from a store key. *)
let install (live : Runner.live) ~segment_len plan =
  let rc = live.Runner.cfg in
  let spec = rc.Runner.spec in
  let n = Gcs_graph.Graph.n rc.Runner.graph in
  let b = spec.Spec.delay in
  let mid = 0.5 *. (b.Delay_model.d_min +. b.Delay_model.d_max) in
  let current = ref { fast_side = `None; bias = `Neutral } in
  live.Runner.chooser :=
    Some
      (fun ~edge:_ ~src ~dst ~now:_ ->
        let forward = dst > src in
        match (!current).bias with
        | `Neutral -> mid
        | `Forward -> if forward then b.Delay_model.d_max else b.Delay_model.d_min
        | `Backward -> if forward then b.Delay_model.d_min else b.Delay_model.d_max);
  let midpoint = (n - 1) / 2 in
  let apply_move move =
    current := move;
    for v = 0 to n - 1 do
      let fast =
        match move.fast_side with
        | `None -> false
        | `Left -> v <= midpoint
        | `Right -> v > midpoint
      in
      Engine.set_node_rate live.Runner.engine ~node:v
        ~rate:(if fast then Spec.vartheta spec else 1.)
    done
  in
  List.iteri
    (fun i move ->
      Engine.schedule_control live.Runner.engine
        ~at:(float_of_int i *. segment_len)
        (fun () -> apply_move move))
    plan

(* Play a move sequence deterministically and return (local, global) skew
   maxima over the final segment. With a fault plan carrying Byzantine
   nodes, the maxima are taken over correct nodes only — the adversary is
   scored on the damage its lies force between honest clocks, not on the
   arbitrary values its own clock advertises. *)
let evaluate ?fault_plan cfg plan =
  let graph = Topology.line cfg.n in
  let horizon = float_of_int (List.length plan) *. cfg.segment_len in
  let run_cfg =
    Runner.config ~spec:cfg.spec ~algo:cfg.algo
      ~drift_of_node:(fun _ -> Drift.Constant 1.)
      ~delay_kind:Runner.Controlled_delays ~horizon
      ~sample_period:(Float.max 0.5 (cfg.segment_len /. 50.))
      ~warmup:0. ~seed:cfg.seed ?fault_plan graph
  in
  let live = Runner.prepare run_cfg in
  install live ~segment_len:cfg.segment_len plan;
  let result = Runner.complete live in
  let tail_start = horizon -. cfg.segment_len in
  let byzantine =
    match fault_plan with
    | None -> []
    | Some p -> Gcs_sim.Fault_plan.byzantine_nodes p
  in
  if byzantine = [] then begin
    let tail =
      Metrics.summarize graph result.Runner.samples ~after:tail_start
    in
    (tail.Metrics.max_local, tail.Metrics.max_global)
  end
  else begin
    let is_byz = Array.make cfg.n false in
    List.iter (fun v -> if v < cfg.n then is_byz.(v) <- true) byzantine;
    match
      Metrics.summarize_opt
        ~alive:(fun v -> not is_byz.(v))
        graph result.Runner.samples ~after:tail_start
    with
    | Some tail -> (tail.Metrics.max_local, tail.Metrics.max_global)
    | None -> (0., 0.)
  end

let search ?fault_plan cfg =
  let evaluations = ref 0 in
  let score plan =
    incr evaluations;
    evaluate ?fault_plan cfg plan
  in
  (* Beam search over prefixes, scored by the skew at the prefix's end. *)
  let initial = [ (0., 0., []) ] in
  let expand beam_entries =
    let candidates =
      List.concat_map
        (fun (_, _, prefix) ->
          List.map
            (fun move ->
              let plan = prefix @ [ move ] in
              let local, global = score plan in
              (local, global, plan))
            all_moves)
        beam_entries
    in
    let sorted =
      List.sort
        (fun (l1, _, _) (l2, _, _) -> Float.compare l2 l1)
        candidates
    in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take (min cfg.beam (List.length sorted)) sorted
  in
  let rec go depth beam_entries =
    if depth >= cfg.segments then beam_entries
    else go (depth + 1) (expand beam_entries)
  in
  match go 0 initial with
  | (local, global, plan) :: _ ->
      {
        forced_local = local;
        forced_global = global;
        plan;
        evaluations = !evaluations;
      }
  | [] -> { forced_local = 0.; forced_global = 0.; plan = []; evaluations = 0 }

(* ---------------------------------------------------------------- *)
(* Byzantine strategy co-optimization                               *)

module Fault_plan = Gcs_sim.Fault_plan

type byz_outcome = {
  forced_correct_local : float;
  byz_plan : Fault_plan.t;
  byz_moves : move list;
  byz_evaluations : int;
}

let byz_search ?(f = 1) ?magnitude cfg =
  if f < 1 || f >= cfg.n then
    invalid_arg "Search.byz_search: need 1 <= f < n";
  let magnitude =
    match magnitude with
    | Some m -> m
    | None -> 20. *. cfg.spec.Spec.kappa
  in
  let horizon = float_of_int cfg.segments *. cfg.segment_len in
  let neutral =
    List.init cfg.segments (fun _ -> { fast_side = `None; bias = `Neutral })
  in
  (* Candidate liar placements: [f] nodes at a fixed stride, tried at a
     few phase offsets (an end, the middle of a stride, the stride edge).
     Exhausting all (n choose f) placements buys little: on a line the
     damage depends on where the liars cut the gradient, which the phase
     sweep already varies. *)
  let stride = max 1 (cfg.n / f) in
  let placements =
    List.sort_uniq compare
      (List.map
         (fun off ->
           List.sort_uniq compare
             (List.init f (fun i -> (off + (i * stride)) mod cfg.n)))
         [ 0; stride / 2; max 0 (stride - 1) ])
  in
  let drift_rate = 2. *. magnitude /. horizon in
  let strategies =
    [
      Fault_plan.Lie_equivocate magnitude;
      Fault_plan.Lie_constant magnitude;
      Fault_plan.Lie_constant (-.magnitude);
      Fault_plan.Lie_drifting drift_rate;
      Fault_plan.Lie_drifting (-.drift_rate);
      Fault_plan.Lie_random magnitude;
    ]
  in
  let plans =
    List.concat_map
      (fun nodes ->
        List.map
          (fun strategy ->
            Fault_plan.of_events
              (List.map
                 (fun node ->
                   Fault_plan.Byzantine
                     { from_ = 0.; until = horizon; node; strategy })
                 nodes))
          strategies)
      placements
  in
  (* Stage 1: rank lying strategies under neutral delays and rates. *)
  let evaluations = ref 0 in
  let best_local, best_plan =
    List.fold_left
      (fun (bl, bp) p ->
        incr evaluations;
        let local, _ = evaluate ~fault_plan:p cfg neutral in
        if local > bl then (local, p) else (bl, bp))
      (neg_infinity, List.hd plans)
      plans
  in
  (* Stage 2: co-optimize the delay/rate move sequence against the best
     lying strategy — the beam search now scores correct-correct skew. *)
  let o = search ~fault_plan:best_plan cfg in
  let forced_correct_local, byz_moves =
    if o.forced_local > best_local then (o.forced_local, o.plan)
    else (best_local, neutral)
  in
  {
    forced_correct_local;
    byz_plan = best_plan;
    byz_moves;
    byz_evaluations = !evaluations + o.evaluations;
  }
