(** Link churn: edges go down for random intervals and come back.

    The GCS literature (dynamic-graph gradient synchronization) asks how the
    algorithms behave when the communication graph is only intermittently
    available. A thin front-end over {!Gcs_sim.Fault_plan}: each sampled
    down-window becomes a [Link_partition]/[Link_heal] pair, so a down edge
    drops sends *and* messages still in flight when the outage starts.
    Beacon-based algorithms carry soft state, so they coast on stale
    estimates through an outage and re-converge afterwards.

    Windows are sampled per edge as an alternating renewal process:
    exponentially distributed up and down durations tuned so that each link
    is down a [duty] fraction of the time. *)

type config = {
  spec : Gcs_core.Spec.t;
  graph : Gcs_graph.Graph.t;
  algo : Gcs_core.Algorithm.kind;
  duty : float;  (** long-run fraction of time each link is down, in [0, 1) *)
  mean_down : float;  (** mean duration of one outage *)
  horizon : float;
  seed : int;
}

type report = {
  result : Gcs_core.Runner.result;
  forced_local : float;  (** max local skew over the final half *)
  forced_global : float;
  downtime_fraction : float;
      (** realized fraction of messages lost to the churn windows
          specifically ([result.dropped_faults / result.messages]) — loss
          from any other configured law is not conflated into it *)
}

val default_config :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?duty:float ->
  ?mean_down:float ->
  ?horizon:float ->
  ?seed:int ->
  graph:Gcs_graph.Graph.t ->
  unit ->
  config
(** Defaults: duty 0.2, mean outage 10 time units, horizon 600. *)

val windows :
  duty:float ->
  mean_down:float ->
  horizon:float ->
  rng:Gcs_util.Prng.t ->
  (float * float) array
(** Sample one edge's down-windows (sorted, disjoint [start, stop) pairs).
    Exposed for tests. *)

val run : config -> report
