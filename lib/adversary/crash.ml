module Graph = Gcs_graph.Graph
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Fault_plan = Gcs_sim.Fault_plan

type config = {
  spec : Spec.t;
  graph : Graph.t;
  algo : Algorithm.kind;
  crashes : (int * float) list;
  drift_of_node : int -> Gcs_clock.Drift.pattern;
  horizon : float;
  seed : int;
}

type report = {
  result : Runner.result;
  alive : int -> bool;
  live_local : float;
  live_global : float;
}

let default_config ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync)
    ?(drift_of_node = fun _ -> Gcs_clock.Drift.Random_constant)
    ?(horizon = 600.) ?(seed = 42) ~crashes ~graph () =
  { spec; graph; algo; crashes; drift_of_node; horizon; seed }

let run cfg =
  let n = Graph.n cfg.graph in
  List.iter
    (fun (v, _) ->
      if v < 0 || v >= n then invalid_arg "Crash.run: node out of range")
    cfg.crashes;
  let crash_time = Array.make n infinity in
  List.iter
    (fun (v, t) -> crash_time.(v) <- Float.min crash_time.(v) t)
    cfg.crashes;
  (* Thin front-end over the fault subsystem: one Node_crash per node at
     its earliest crash time, never recovered. *)
  let plan =
    Fault_plan.of_events
      (List.concat_map
         (fun v ->
           if Float.is_finite crash_time.(v) then
             [ Fault_plan.Node_crash { at = crash_time.(v); node = v } ]
           else [])
         (List.init n Fun.id))
  in
  let run_cfg =
    Runner.config ~spec:cfg.spec ~algo:cfg.algo
      ~drift_of_node:cfg.drift_of_node ~fault_plan:plan ~horizon:cfg.horizon
      ~warmup:0. ~seed:cfg.seed cfg.graph
  in
  let result = Runner.run run_cfg in
  let alive v = not (Float.is_finite crash_time.(v)) in
  let tail =
    Metrics.summarize ~alive cfg.graph result.Runner.samples
      ~after:(0.75 *. cfg.horizon)
  in
  {
    result;
    alive;
    live_local = tail.Metrics.max_local;
    live_global = tail.Metrics.max_global;
  }
