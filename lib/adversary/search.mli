(** Automated worst-case search over the adversary's decision space.

    The hand-crafted attacks ([Fan_lynch], [Linear], [Bias]) encode the
    strategies from the proofs. This module instead *searches* for bad
    executions: time is cut into segments, in each segment the adversary
    picks one of a small set of moves (which half of the line runs fast,
    and how message delays are biased), and a beam search over move
    sequences maximizes the local skew the algorithm ends up with.

    Because the engine cannot snapshot mid-run, every candidate prefix is
    re-simulated from time zero — determinism makes that exact. The search
    is exhaustive when the beam is wide enough ([beam >= moves^segments]),
    and a beam-limited heuristic otherwise.

    This serves two purposes: it validates the hand-crafted adversaries
    (the searched optimum should not be dramatically stronger — if it
    were, the crafted attack missed something), and it attacks *new*
    algorithms for which no proof-derived strategy exists. *)

type move = {
  fast_side : [ `Left | `Right | `None ];
      (** which half of the line runs at maximum drift this segment *)
  bias : [ `Forward | `Backward | `Neutral ];
      (** delay bias direction: [`Forward] delivers left-to-right messages
          at [d_max] and right-to-left at [d_min] *)
}

val all_moves : move list
(** The nine-element move alphabet. *)

type config = {
  spec : Gcs_core.Spec.t;
  n : int;  (** line length *)
  algo : Gcs_core.Algorithm.kind;
  segments : int;  (** number of decision points *)
  segment_len : float;  (** real-time length of each segment *)
  beam : int;  (** beam width; [max_int] makes the search exhaustive *)
  seed : int;
}

type outcome = {
  forced_local : float;  (** best max-local-skew found (final segment) *)
  forced_global : float;
  plan : move list;  (** the move sequence achieving it *)
  evaluations : int;  (** simulations executed *)
}

val default_config :
  ?spec:Gcs_core.Spec.t ->
  ?algo:Gcs_core.Algorithm.kind ->
  ?segments:int ->
  ?segment_len:float ->
  ?beam:int ->
  ?seed:int ->
  n:int ->
  unit ->
  config
(** Defaults: 6 segments of [4 * n * d_max] each, beam 12. *)

val install : Gcs_core.Runner.live -> segment_len:float -> move list -> unit
(** Wire a move sequence into a prepared run (built with
    [Controlled_delays]): installs the bias-following delay chooser and
    schedules each move's fast-half rate split at its segment boundary.
    Node count and spec come from the live run's own config, so the same
    installer serves the beam search and counterexample replay
    ([Gcs_check]), where the config was rebuilt from a store key. *)

val evaluate :
  ?fault_plan:Gcs_sim.Fault_plan.t -> config -> move list -> float * float
(** [(max local, max global)] over the final segment of the execution that
    plays the given move sequence. With a [fault_plan] carrying Byzantine
    nodes, the maxima are over correct nodes only — the adversary is
    scored on the damage it forces between honest clocks. Exposed for
    tests. *)

val search : ?fault_plan:Gcs_sim.Fault_plan.t -> config -> outcome
(** Beam search over move sequences; an optional [fault_plan] (typically
    with Byzantine events) is installed in every candidate execution. *)

type byz_outcome = {
  forced_correct_local : float;
      (** worst correct-correct local skew found (final segment) *)
  byz_plan : Gcs_sim.Fault_plan.t;  (** the lying strategy achieving it *)
  byz_moves : move list;
      (** the co-optimized move sequence ([all-neutral] when no move
          sequence beat the neutral schedule) *)
  byz_evaluations : int;  (** simulations executed across both stages *)
}

val byz_search : ?f:int -> ?magnitude:float -> config -> byz_outcome
(** Co-optimize a Byzantine lying strategy with the delay/rate adversary:
    stage 1 ranks [f]-liar placements (a stride sweep) crossed with the
    strategy alphabet (equivocation, constant/drifting lead and lag,
    random) under neutral moves; stage 2 runs the move beam search
    against the winner. Default [f = 1], default [magnitude] [20 *
    kappa]. Everything is expressed as an ordinary {!Gcs_sim.Fault_plan},
    so the winning strategy replays through runner configs, store keys,
    and [.repro] artifacts unchanged. Raises unless [1 <= f < n]. *)
