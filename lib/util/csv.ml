let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_cell s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\""
        else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let render_row row = String.concat "," (List.map escape_cell row)

let render ~header ~rows =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (render_row header);
  Buffer.add_char buf '\n';
  List.iter
    (fun row ->
      Buffer.add_string buf (render_row row);
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

let write ~path ~header ~rows =
  let dir = Filename.dirname path in
  if dir <> "." && not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  (* tmp + rename in the same directory: a crashed or killed writer leaves
     at worst a stale .tmp, never a truncated CSV at [path]. *)
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (try
     output_string oc (render ~header ~rows);
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path

let parse_line line =
  let n = String.length line in
  let cells = ref [] in
  let buf = Buffer.create 32 in
  let push () =
    cells := Buffer.contents buf :: !cells;
    Buffer.clear buf
  in
  (* States: [`Plain] inside an unquoted cell (or at a cell boundary),
     [`Quoted] inside quotes, [`Closed] just after a closing quote (only
     a comma, end of line, or a doubled quote may follow). *)
  let rec go i state =
    if i >= n then
      match state with
      | `Quoted -> Error "unterminated quoted cell"
      | `Plain | `Closed ->
          push ();
          Ok (List.rev !cells)
    else
      let c = line.[i] in
      match (state, c) with
      | `Plain, ',' | `Closed, ',' ->
          push ();
          go (i + 1) `Plain
      | `Plain, '"' ->
          if Buffer.length buf > 0 then
            Error (Printf.sprintf "stray quote at offset %d" i)
          else go (i + 1) `Quoted
      | `Plain, c ->
          Buffer.add_char buf c;
          go (i + 1) `Plain
      | `Quoted, '"' ->
          if i + 1 < n && line.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) `Quoted
          end
          else go (i + 1) `Closed
      | `Quoted, c ->
          Buffer.add_char buf c;
          go (i + 1) `Quoted
      | `Closed, c ->
          Error (Printf.sprintf "unexpected %C after closing quote at offset %d" c i)
  in
  if n = 0 then Ok [ "" ] else go 0 `Plain
