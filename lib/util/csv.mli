(** Minimal CSV writing for experiment artifacts.

    Every experiment in the bench harness can persist its table as a CSV
    file (under `results/` by default) so the "figures" are regenerable,
    diffable artifacts rather than only console output. Quoting follows RFC
    4180 for the characters that need it. *)

val escape_cell : string -> string
(** Quote a cell if it contains a comma, quote, or newline. *)

val render_row : string list -> string
(** One CSV line (no trailing newline) — the building block the streaming
    exporters (event logs, series) use to emit rows incrementally. *)

val render : header:string list -> rows:string list list -> string
(** CSV text with a trailing newline. Rows are not padded: callers are
    expected to pass rows matching the header (the table layer guarantees
    this). *)

val write : path:string -> header:string list -> rows:string list list -> unit
(** Write (creating parent directories up to one level if needed). The
    write is atomic — the content goes to [path ^ ".tmp"] and is renamed
    into place — so an interrupted writer never leaves a truncated CSV
    behind, only either the old file or the new one. *)

val parse_line : string -> (string list, string) result
(** Parse one CSV line (no trailing newline) back into its cells,
    inverting {!render_row}: handles quoted cells, escaped quotes,
    embedded commas and newlines, and empty fields. [Error] on a stray
    quote inside an unquoted cell, text after a closing quote, or an
    unterminated quoted cell. *)
