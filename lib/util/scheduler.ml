(* Pending-event schedulers for the discrete-event engine.

   A scheduler is a priority queue keyed by (float priority, int sequence):
   the engine orders events by simulation time and breaks ties by a
   monotonically increasing sequence number it assigns at push time, which
   makes pop order total and runs reproducible. The sequence lives in the
   caller (the engine owns event identity); implementations only have to
   respect it.

   Two implementations are provided behind one signature: the binary heap
   (the reference — O(log n), branchy, order-oblivious) and a calendar
   queue (amortized O(1) for the time-localized access pattern of a
   simulation, where most pushes land a bounded horizon ahead of the pop
   front). Both store entries as struct-of-arrays columns — unboxed float
   priorities, int sequences, and a value column — so a push allocates
   nothing beyond amortized growth. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] is a size hint; both implementations grow on demand. *)

  val size : 'a t -> int
  val is_empty : 'a t -> bool

  val push : 'a t -> prio:float -> seq:int -> 'a -> unit
  (** Insert with explicit tiebreaker. Pop order is ascending [(prio, seq)];
      the caller is responsible for sequence monotonicity if it wants
      insertion-order tie-breaking. *)

  val min_prio : 'a t -> float
  (** Priority of the next pop; [infinity] when empty (so schedulers merge
      with a bare [Float.min]). *)

  val min_seq : 'a t -> int
  (** Sequence of the next pop; [max_int] when empty. *)

  val min_value : 'a t -> 'a
  (** Value of the next pop without removing it. @raise Invalid_argument
      when empty. *)

  val pop_min : 'a t -> 'a
  (** Remove and return the minimum entry's value (read [min_prio] /
      [min_seq] first if the key is needed). @raise Invalid_argument when
      empty. *)

  val clear : 'a t -> unit

  val sorted : ?keep:('a -> bool) -> 'a t -> (float * int * 'a) list
  (** The queue's contents in exact pop order, without modifying it.
      [keep] filters entries out of the rendering — the hook the engine
      uses to drop stale timer entries (ghosts invalidated by re-keying)
      so snapshot consumers never re-derive liveness by hand. *)
end

(* ------------------------------------------------------------------ *)
(* Binary heap: the reference implementation.                          *)
(* ------------------------------------------------------------------ *)

module Binary_heap : S = struct
  type 'a t = {
    mutable prios : float array; (* unboxed float column *)
    mutable seqs : int array;
    mutable vals : 'a array;
    mutable size : int;
    hint : int;
  }

  let create ?(capacity = 64) () =
    { prios = [||]; seqs = [||]; vals = [||]; size = 0; hint = max capacity 1 }

  let size t = t.size
  let is_empty t = t.size = 0

  let grow t v =
    let cap = Array.length t.prios in
    if t.size = cap then begin
      let ncap = if cap = 0 then t.hint else 2 * cap in
      let np = Array.make ncap 0. in
      let ns = Array.make ncap 0 in
      let nv = Array.make ncap v in
      Array.blit t.prios 0 np 0 t.size;
      Array.blit t.seqs 0 ns 0 t.size;
      Array.blit t.vals 0 nv 0 t.size;
      t.prios <- np;
      t.seqs <- ns;
      t.vals <- nv
    end

  let[@inline] lt t i j =
    t.prios.(i) < t.prios.(j)
    || (t.prios.(i) = t.prios.(j) && t.seqs.(i) < t.seqs.(j))

  let[@inline] swap t i j =
    let p = t.prios.(i) and s = t.seqs.(i) and v = t.vals.(i) in
    t.prios.(i) <- t.prios.(j);
    t.seqs.(i) <- t.seqs.(j);
    t.vals.(i) <- t.vals.(j);
    t.prios.(j) <- p;
    t.seqs.(j) <- s;
    t.vals.(j) <- v

  let rec sift_up t i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if lt t i parent then begin
        swap t i parent;
        sift_up t parent
      end
    end

  let rec sift_down t i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < t.size && lt t l !smallest then smallest := l;
    if r < t.size && lt t r !smallest then smallest := r;
    if !smallest <> i then begin
      swap t i !smallest;
      sift_down t !smallest
    end

  let push t ~prio ~seq v =
    grow t v;
    let i = t.size in
    t.prios.(i) <- prio;
    t.seqs.(i) <- seq;
    t.vals.(i) <- v;
    t.size <- t.size + 1;
    sift_up t i

  let min_prio t = if t.size = 0 then infinity else t.prios.(0)
  let min_seq t = if t.size = 0 then max_int else t.seqs.(0)

  let min_value t =
    if t.size = 0 then invalid_arg "Scheduler.Binary_heap.min_value: empty";
    t.vals.(0)

  let pop_min t =
    if t.size = 0 then invalid_arg "Scheduler.Binary_heap.pop_min: empty";
    let v = t.vals.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.prios.(0) <- t.prios.(t.size);
      t.seqs.(0) <- t.seqs.(t.size);
      t.vals.(0) <- t.vals.(t.size);
      sift_down t 0
    end;
    v

  let clear t =
    t.size <- 0;
    t.prios <- [||];
    t.seqs <- [||];
    t.vals <- [||]

  let sorted ?(keep = fun _ -> true) t =
    let idx = Array.init t.size (fun i -> i) in
    Array.sort
      (fun i j ->
        let c = Float.compare t.prios.(i) t.prios.(j) in
        if c <> 0 then c else Int.compare t.seqs.(i) t.seqs.(j))
      idx;
    Array.fold_right
      (fun i acc ->
        if keep t.vals.(i) then (t.prios.(i), t.seqs.(i), t.vals.(i)) :: acc
        else acc)
      idx []
end

(* ------------------------------------------------------------------ *)
(* Calendar queue (Brown 1988): an array of day buckets of width        *)
(* [width]; an event with priority p lives in bucket                    *)
(* floor(p / width) mod nbuckets. Dequeue scans forward from the        *)
(* current day and only considers events of the current day of the      *)
(* current year, so with a well-chosen width both operations are        *)
(* amortized O(1). Each bucket is itself a small binary heap ordered    *)
(* by (prio, seq) — not a sorted array: a heap keeps bucket access      *)
(* O(log k) even when an adversarial or degenerate workload (say, a     *)
(* million timers armed at the same instant) piles one bucket high,     *)
(* where a sorted array's insert/pop-head blits would go quadratic.     *)
(* Pop order is identical to the binary heap's.                         *)
(* ------------------------------------------------------------------ *)

module Calendar : S = struct
  type 'a bucket = {
    mutable bp : float array;
    mutable bs : int array;
    mutable bv : 'a array;
    mutable blen : int;
  }

  type 'a t = {
    mutable buckets : 'a bucket array;
    mutable mask : int; (* nbuckets - 1; nbuckets is a power of two *)
    mutable width : float;
    mutable size : int;
    mutable last_prio : float; (* dequeue position *)
    mutable peeked : int; (* bucket holding the cached min; -1 = unknown *)
    mutable respread_at : int;
        (* once the bucket count is capped, re-run the width heuristic
           whenever the population doubles past this size, so the calendar
           keeps adapting to the priority distribution *)
    hint : int;
  }

  let new_bucket () = { bp = [||]; bs = [||]; bv = [||]; blen = 0 }

  let init_nbuckets = 8

  let create ?(capacity = 64) () =
    ignore capacity;
    {
      buckets = Array.init init_nbuckets (fun _ -> new_bucket ());
      mask = init_nbuckets - 1;
      width = 1.0;
      size = 0;
      last_prio = neg_infinity;
      peeked = -1;
      respread_at = max_int;
      hint = 4;
    }

  let size t = t.size
  let is_empty t = t.size = 0

  (* Day number of a priority. The year scan tests bucket membership with
     this exact expression — the same floor the placement below buckets by —
     so scan and placement can never disagree (an accumulated [top +. width]
     bound would drift in the last ulp and misorder entries near a day
     boundary). Day numbers are integral floats, exact up to 2^53. *)
  let[@inline] day_of t prio = Float.floor (prio /. t.width)

  let[@inline] bucket_of_day t d =
    (* Simulation priorities are finite and non-negative in practice, but
       stay total anyway: any finite float maps to some bucket, and
       correctness never depends on which (the year scan falls back to a
       direct minimum search). *)
    if Float.abs d >= 1e18 then 0 else Float.to_int d land t.mask

  let[@inline] index_of t prio = bucket_of_day t (day_of t prio)

  let bucket_grow t b v =
    let cap = Array.length b.bp in
    if b.blen = cap then begin
      let ncap = if cap = 0 then t.hint else 2 * cap in
      let np = Array.make ncap 0. in
      let ns = Array.make ncap 0 in
      let nv = Array.make ncap v in
      Array.blit b.bp 0 np 0 b.blen;
      Array.blit b.bs 0 ns 0 b.blen;
      Array.blit b.bv 0 nv 0 b.blen;
      b.bp <- np;
      b.bs <- ns;
      b.bv <- nv
    end

  (* Min-heap order on (prio, seq) within a bucket; index 0 is the bucket
     head every consumer below reads. *)
  let[@inline] blt b i j =
    b.bp.(i) < b.bp.(j) || (b.bp.(i) = b.bp.(j) && b.bs.(i) < b.bs.(j))

  let[@inline] bswap b i j =
    let p = b.bp.(i) and s = b.bs.(i) and v = b.bv.(i) in
    b.bp.(i) <- b.bp.(j);
    b.bs.(i) <- b.bs.(j);
    b.bv.(i) <- b.bv.(j);
    b.bp.(j) <- p;
    b.bs.(j) <- s;
    b.bv.(j) <- v

  let rec bsift_up b i =
    if i > 0 then begin
      let parent = (i - 1) / 2 in
      if blt b i parent then begin
        bswap b i parent;
        bsift_up b parent
      end
    end

  let rec bsift_down b i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let smallest = ref i in
    if l < b.blen && blt b l !smallest then smallest := l;
    if r < b.blen && blt b r !smallest then smallest := r;
    if !smallest <> i then begin
      bswap b i !smallest;
      bsift_down b !smallest
    end

  let bucket_insert t b ~prio ~seq v =
    bucket_grow t b v;
    let i = b.blen in
    b.bp.(i) <- prio;
    b.bs.(i) <- seq;
    b.bv.(i) <- v;
    b.blen <- b.blen + 1;
    bsift_up b i

  let bucket_pop_head b =
    let v = b.bv.(0) in
    b.blen <- b.blen - 1;
    if b.blen > 0 then begin
      b.bp.(0) <- b.bp.(b.blen);
      b.bs.(0) <- b.bs.(b.blen);
      b.bv.(0) <- b.bv.(b.blen);
      bsift_down b 0
    end;
    v

  (* Align the dequeue position on [prio]; the scan day is derived from
     [last_prio] on demand, so this is the whole of the position state. *)
  let align t prio = t.last_prio <- prio

  let iter_entries t f =
    Array.iter
      (fun b ->
        for i = 0 to b.blen - 1 do
          f b.bp.(i) b.bs.(i) b.bv.(i)
        done)
      t.buckets

  (* Pick a width from the current population: spread the middle of the
     sorted priorities over ~3 entries per day. Any positive value is
     correct; this one keeps buckets short for clustered priorities while
     ignoring far outliers. The sample strides evenly across the whole
     population — sampling the first entries encountered would see only
     one or two buckets and miss the distribution's spread entirely when
     a single priority cluster dominates. *)
  let choose_width t =
    let want = min t.size 64 in
    if want < 2 then t.width
    else begin
      let sample = Array.make want 0. in
      let step = max 1 (t.size / want) in
      let k = ref 0 and i = ref 0 in
      iter_entries t (fun p _ _ ->
          if !i mod step = 0 && !k < want then begin
            sample.(!k) <- p;
            incr k
          end;
          incr i);
      let n = !k in
      if n < 2 then t.width
      else begin
        let sample = Array.sub sample 0 n in
        Array.sort Float.compare sample;
        let lo = sample.(n / 4) and hi = sample.(n - 1 - (n / 4)) in
        let span = hi -. lo in
        if span <= 0. then t.width
        else
          let gap = span /. float_of_int (n - (2 * (n / 4)) + 1) in
          Float.max 1e-9 (3. *. gap)
      end
    end

  let resize t nbuckets' =
    let old = t.buckets in
    let width' = choose_width t in
    t.buckets <- Array.init nbuckets' (fun _ -> new_bucket ());
    t.mask <- nbuckets' - 1;
    t.width <- width';
    let n = t.size in
    t.size <- 0;
    Array.iter
      (fun b ->
        for i = 0 to b.blen - 1 do
          let bkt = t.buckets.(index_of t b.bp.(i)) in
          bucket_insert t bkt ~prio:b.bp.(i) ~seq:b.bs.(i) b.bv.(i)
        done)
      old;
    t.size <- n;
    t.peeked <- -1;
    t.respread_at <- 2 * t.size;
    (* Re-anchor the scan position on the global minimum. *)
    if t.size > 0 then begin
      let best = ref nan and found = ref false in
      iter_entries t (fun p _ _ ->
          if (not !found) || p < !best then begin
            best := p;
            found := true
          end);
      align t !best
    end

  let push t ~prio ~seq v =
    let b = t.buckets.(index_of t prio) in
    bucket_insert t b ~prio ~seq v;
    t.size <- t.size + 1;
    if t.size = 1 then align t prio
    else if prio < t.last_prio then align t prio;
    (* A new entry at or before the cached minimum's priority may displace
       it — including at equal priority with a smaller sequence (callers
       are free to hand out non-monotone sequences; the region-parallel
       engine does). *)
    if t.peeked >= 0 && prio <= t.buckets.(t.peeked).bp.(0) then
      t.peeked <- -1;
    if t.size > 2 * (t.mask + 1) then begin
      if t.mask < 0xFFFF then resize t (2 * (t.mask + 1))
      else if t.size >= t.respread_at then
        (* Bucket count is capped: rebuild at the same size to refresh the
           width, so late-arriving priority spreads still get spread out. *)
        resize t (t.mask + 1)
    end

  (* Find the bucket holding the minimum (prio, seq) entry; caches the
     result for the pop that typically follows a peek. Returns -1 when
     empty. *)
  let find_min t =
    if t.size = 0 then -1
    else if t.peeked >= 0 then t.peeked
    else begin
      let nbuckets = t.mask + 1 in
      let found = ref (-1) in
      (* Year scan: walk whole days forward from the dequeue position. An
         entry belongs to the scanned day iff [day_of] agrees — the same
         computation that placed it, so the test cannot misfile an entry
         the way an accumulated floating-point day bound can. *)
      let day = ref (day_of t t.last_prio) in
      (try
         for _ = 0 to nbuckets - 1 do
           let i = bucket_of_day t !day in
           let b = t.buckets.(i) in
           if b.blen > 0 && day_of t b.bp.(0) = !day then begin
             found := i;
             raise Exit
           end;
           day := !day +. 1.
         done
       with Exit -> ());
      if !found < 0 then begin
        (* Sparse year: direct search over bucket heads. *)
        let best = ref (-1) in
        for j = 0 to nbuckets - 1 do
          let b = t.buckets.(j) in
          if b.blen > 0 then
            if
              !best < 0
              ||
              let c = t.buckets.(!best) in
              b.bp.(0) < c.bp.(0)
              || (b.bp.(0) = c.bp.(0) && b.bs.(0) < c.bs.(0))
            then best := j
        done;
        found := !best;
        align t t.buckets.(!best).bp.(0)
      end;
      t.peeked <- !found;
      !found
    end

  let min_prio t =
    let i = find_min t in
    if i < 0 then infinity else t.buckets.(i).bp.(0)

  let min_seq t =
    let i = find_min t in
    if i < 0 then max_int else t.buckets.(i).bs.(0)

  let min_value t =
    let i = find_min t in
    if i < 0 then invalid_arg "Scheduler.Calendar.min_value: empty";
    t.buckets.(i).bv.(0)

  let pop_min t =
    let i = find_min t in
    if i < 0 then invalid_arg "Scheduler.Calendar.pop_min: empty";
    let b = t.buckets.(i) in
    t.last_prio <- b.bp.(0);
    let v = bucket_pop_head b in
    t.size <- t.size - 1;
    t.peeked <- -1;
    if t.size < (t.mask + 1) / 2 && t.mask + 1 > init_nbuckets then
      resize t ((t.mask + 1) / 2);
    v

  let clear t =
    t.buckets <- Array.init init_nbuckets (fun _ -> new_bucket ());
    t.mask <- init_nbuckets - 1;
    t.width <- 1.0;
    t.size <- 0;
    t.last_prio <- neg_infinity;
    t.peeked <- -1;
    t.respread_at <- max_int

  let sorted ?(keep = fun _ -> true) t =
    let acc = ref [] in
    iter_entries t (fun p s v -> if keep v then acc := (p, s, v) :: !acc);
    List.sort
      (fun (p1, s1, _) (p2, s2, _) ->
        let c = Float.compare p1 p2 in
        if c <> 0 then c else Int.compare s1 s2)
      !acc
end

(* ------------------------------------------------------------------ *)
(* Packed instances: a scheduler as a value, so the engine can be       *)
(* functorized over [S] yet still select the implementation per run.    *)
(* ------------------------------------------------------------------ *)

type 'a t = {
  size : unit -> int;
  push : prio:float -> seq:int -> 'a -> unit;
  min_prio : unit -> float;
  min_seq : unit -> int;
  min_value : unit -> 'a;
  pop_min : unit -> 'a;
  clear : unit -> unit;
  sorted : keep:('a -> bool) -> (float * int * 'a) list;
}

module Pack (Q : S) = struct
  let make ?capacity () =
    let q = Q.create ?capacity () in
    {
      size = (fun () -> Q.size q);
      push = (fun ~prio ~seq v -> Q.push q ~prio ~seq v);
      min_prio = (fun () -> Q.min_prio q);
      min_seq = (fun () -> Q.min_seq q);
      min_value = (fun () -> Q.min_value q);
      pop_min = (fun () -> Q.pop_min q);
      clear = (fun () -> Q.clear q);
      sorted = (fun ~keep -> Q.sorted ~keep q);
    }
end

module Packed_heap = Pack (Binary_heap)
module Packed_calendar = Pack (Calendar)

type kind = Binary_heap | Calendar

let make ?capacity = function
  | Binary_heap -> Packed_heap.make ?capacity ()
  | Calendar -> Packed_calendar.make ?capacity ()

let kind_name = function Binary_heap -> "heap" | Calendar -> "calendar"

let kind_of_string = function
  | "heap" | "binary-heap" -> Ok Binary_heap
  | "calendar" | "calendar-queue" -> Ok Calendar
  | s -> Error (Printf.sprintf "unknown scheduler %S (heap|calendar)" s)

let all_kinds = [ Binary_heap; Calendar ]
