(** Pending-event schedulers: priority queues keyed by [(prio, seq)].

    The engine orders events by simulation time ([prio]) and breaks ties
    with a monotone sequence number it assigns at push time, making pop
    order total and runs reproducible. Implementations store entries as
    struct-of-arrays columns so pushes allocate nothing beyond amortized
    growth. *)

module type S = sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** [capacity] is a size hint; implementations grow on demand. *)

  val size : 'a t -> int
  val is_empty : 'a t -> bool

  val push : 'a t -> prio:float -> seq:int -> 'a -> unit
  (** Insert with an explicit tiebreaker. Pop order is ascending
      [(prio, seq)]. *)

  val min_prio : 'a t -> float
  (** Priority of the next pop; [infinity] when empty. *)

  val min_seq : 'a t -> int
  (** Sequence of the next pop; [max_int] when empty. *)

  val min_value : 'a t -> 'a
  (** Value of the next pop without removing it.
      @raise Invalid_argument when empty. *)

  val pop_min : 'a t -> 'a
  (** Remove and return the minimum entry's value.
      @raise Invalid_argument when empty. *)

  val clear : 'a t -> unit

  val sorted : ?keep:('a -> bool) -> 'a t -> (float * int * 'a) list
  (** Contents in exact pop order, without modification. [keep] filters
      entries out of the rendering — used by the engine to hide stale
      timer entries from snapshot consumers. *)
end

module Binary_heap : S
(** Reference implementation: array-backed binary min-heap. *)

module Calendar : S
(** Calendar queue (Brown 1988): amortized O(1) push/pop for the
    time-localized access pattern of a simulation. Pop order is identical
    to {!Binary_heap}'s. *)

(** {1 Packed instances}

    A scheduler as a first-class value, so callers functorized over {!S}
    can still select the implementation per run. *)

type 'a t = {
  size : unit -> int;
  push : prio:float -> seq:int -> 'a -> unit;
  min_prio : unit -> float;
  min_seq : unit -> int;
  min_value : unit -> 'a;
  pop_min : unit -> 'a;
  clear : unit -> unit;
  sorted : keep:('a -> bool) -> (float * int * 'a) list;
}

module Pack (Q : S) : sig
  val make : ?capacity:int -> unit -> 'a t
end

type kind = Binary_heap | Calendar

val make : ?capacity:int -> kind -> 'a t
val kind_name : kind -> string
val kind_of_string : string -> (kind, string) result
val all_kinds : kind list
