(** Shard-per-domain parallel execution for independent tasks.

    A batch of pure, independent thunks is partitioned statically into one
    contiguous shard per OCaml 5 domain — no work stealing, no shared queue,
    no locks. Each worker owns its shard of the result array outright, so
    the only synchronization is [Domain.join], and the output is always in
    input order regardless of how many domains ran. Combined with tasks
    whose randomness derives only from their own inputs (every simulation
    here seeds a private {!Prng.t} from its config), serial and parallel
    execution are bit-identical.

    The static partition is the right trade for this repo's workload:
    replicate sweeps are batches of simulations with similar costs, so
    stealing buys little, while determinism of the merge order is
    load-bearing for reproducibility. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] — a sensible [~jobs] for "use the
    machine". *)

val run : ?jobs:int -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] evaluates every task and returns their results in
    input order. [jobs] defaults to {!default_jobs}[ ()] and is clamped to
    [1 .. Array.length tasks]; with an empty batch or [jobs <= 1] (after
    clamping) everything runs in the calling domain and no domain is
    spawned. Task [i] runs on the domain owning the shard containing [i];
    within a shard, tasks run in index order.

    If any task raises, the exception with the smallest task index is
    re-raised (with its backtrace) after all domains have joined, so a
    failure cannot leak running domains. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map ~jobs f xs] is [run ~jobs] over [fun () -> f xs.(i)]. *)

val mapi : ?jobs:int -> (int -> 'a -> 'b) -> 'a array -> 'b array

val shards : jobs:int -> int -> (int * int) array
(** [shards ~jobs n] is the static partition used by [run]: an array of
    [(offset, length)] pairs, one per worker, covering [0 .. n - 1] in
    order with lengths differing by at most one. Exposed for tests and for
    callers that want to mirror the pool's task placement. *)
