(** Descriptive statistics over float samples, plus a streaming accumulator.

    Used by the metrics layer to summarize skew time series and by the
    benchmark harness to aggregate repeated trials. *)

val mean : float array -> float
(** Arithmetic mean. Returns [nan] on an empty array. *)

val variance : float array -> float
(** Unbiased sample variance (n-1 denominator); [0.] for fewer than two
    samples. *)

val stddev : float array -> float

val min : float array -> float
(** Minimum; [nan] on empty input. *)

val max : float array -> float
(** Maximum; [nan] on empty input. *)

val minmax : float array -> float * float
(** Both extrema in one pass; [(nan, nan)] on empty input. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [0, 100], linear interpolation between
    order statistics. Does not mutate its argument. [nan] on empty input. *)

val median : float array -> float

(** Streaming mean/variance/extrema accumulator (Welford's algorithm),
    usable when storing a full sample array would be wasteful. *)
module Running : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  val variance : t -> float
  val stddev : t -> float
  val min : t -> float
  val max : t -> float
end

val linear_fit : float array -> float array -> float * float
(** [linear_fit xs ys] least-squares fit returning [(slope, intercept)].
    Requires equal-length arrays of length at least two. *)

val log2 : float -> float
