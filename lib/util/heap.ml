(* Binary min-heap with an internal insertion-order tiebreaker.

   Since the scheduler redesign this is a thin front over
   [Scheduler.Binary_heap] — the reference instance of the [Scheduler.S]
   signature — that owns the sequence counter so existing callers keep
   the old [push ~prio] interface. *)

module Q = Scheduler.Binary_heap

type 'a t = { q : 'a Q.t; mutable next_seq : int }

let create ?capacity () = { q = Q.create ?capacity (); next_seq = 0 }

let push t ~prio value =
  Q.push t.q ~prio ~seq:t.next_seq value;
  t.next_seq <- t.next_seq + 1

let pop t =
  if Q.is_empty t.q then None
  else
    let prio = Q.min_prio t.q in
    let v = Q.pop_min t.q in
    Some (prio, v)

let peek t =
  if Q.is_empty t.q then None else Some (Q.min_prio t.q, Q.min_value t.q)

let size t = Q.size t.q
let is_empty t = Q.is_empty t.q
let clear t = Q.clear t.q

let to_sorted_list t =
  List.map (fun (p, _, v) -> (p, v)) (Q.sorted t.q)
