let default_jobs () = Domain.recommended_domain_count ()

let shards ~jobs n =
  if jobs <= 0 then invalid_arg "Pool.shards: jobs must be positive";
  let jobs = min jobs (max n 1) in
  let base = n / jobs and extra = n mod jobs in
  Array.init jobs (fun w ->
      let len = base + if w < extra then 1 else 0 in
      let off = (w * base) + min w extra in
      (off, len))

(* One slot per task: the worker owning the shard is the only writer of its
   slots, and Domain.join orders those writes before the collector's reads,
   so plain arrays are race-free here. *)
type 'a slot =
  | Pending
  | Done of 'a
  | Failed of exn * Printexc.raw_backtrace

let run ?jobs tasks =
  let n = Array.length tasks in
  let jobs =
    match jobs with Some j -> max 1 (min j (max n 1)) | None -> default_jobs ()
  in
  let slots = Array.make n Pending in
  let run_shard (off, len) =
    for i = off to off + len - 1 do
      slots.(i) <-
        (try Done (tasks.(i) ())
         with e -> Failed (e, Printexc.get_raw_backtrace ()))
    done
  in
  let parts = shards ~jobs n in
  if jobs <= 1 || n <= 1 then Array.iter run_shard parts
  else begin
    (* The calling domain takes shard 0; spawned domains take the rest. All
       spawns are joined before any result is read — including on task
       failure, which is recorded in the slot rather than raised mid-run. *)
    let spawned =
      Array.map (fun part -> Domain.spawn (fun () -> run_shard part))
        (Array.sub parts 1 (Array.length parts - 1))
    in
    run_shard parts.(0);
    Array.iter Domain.join spawned
  end;
  Array.map
    (function
      | Done v -> v
      | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
      | Pending -> assert false)
    slots

let mapi ?jobs f xs = run ?jobs (Array.mapi (fun i x () -> f i x) xs)
let map ?jobs f xs = mapi ?jobs (fun _ x -> f x) xs
