let mean xs =
  let n = Array.length xs in
  if n = 0 then nan else Array.fold_left ( +. ) 0. xs /. float_of_int n

let variance xs =
  let n = Array.length xs in
  if n < 2 then 0.
  else begin
    let m = mean xs in
    let acc = Array.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
    acc /. float_of_int (n - 1)
  end

let stddev xs = sqrt (variance xs)

let min xs =
  if Array.length xs = 0 then nan else Array.fold_left Float.min xs.(0) xs

let max xs =
  if Array.length xs = 0 then nan else Array.fold_left Float.max xs.(0) xs

let minmax xs =
  if Array.length xs = 0 then (nan, nan)
  else
    Array.fold_left
      (fun (lo, hi) x -> (Float.min lo x, Float.max hi x))
      (xs.(0), xs.(0))
      xs

let percentile xs p =
  let n = Array.length xs in
  if n = 0 then nan
  else begin
    let sorted = Array.copy xs in
    Array.sort Float.compare sorted;
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = Stdlib.min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let median xs = percentile xs 50.

module Running = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean

  let variance t =
    if t.count < 2 then 0. else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = if t.count = 0 then nan else t.min
  let max t = if t.count = 0 then nan else t.max
end

let linear_fit xs ys =
  let n = Array.length xs in
  assert (n = Array.length ys && n >= 2);
  let mx = mean xs and my = mean ys in
  let sxy = ref 0. and sxx = ref 0. in
  for i = 0 to n - 1 do
    sxy := !sxy +. ((xs.(i) -. mx) *. (ys.(i) -. my));
    sxx := !sxx +. ((xs.(i) -. mx) *. (xs.(i) -. mx))
  done;
  let slope = if !sxx = 0. then 0. else !sxy /. !sxx in
  (slope, my -. (slope *. mx))

let log2 x = log x /. log 2.
