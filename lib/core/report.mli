(** Shared result presentation: the one CSV row layout for a completed
    run, plus small console-rendering helpers.

    The sweep subcommand and the bench harness used to each hand-roll the
    same column list; this module is the single source of truth, so the
    artifacts stay diffable against each other. *)

val result_header : ?faults:bool -> unit -> string list
(** Column names matching {!result_row}; [~faults:true] appends the three
    fault-recovery columns. *)

val outcome_row :
  label:string -> algo:string -> seed:int -> Gcs_store.Outcome.t -> string list
(** One CSV row from a stored outcome. Because outcomes round-trip floats
    bit-for-bit, a cached row is byte-identical to the row of the fresh
    run that produced it. The fault columns are present iff the outcome
    carries a fault report. *)

val result_row : label:string -> Runner.config -> Runner.result -> string list
(** One CSV row for a completed run. [label] fills the [topology] column
    (callers usually pass the topology spec name). Floats are rendered
    with [%.6f]. The fault columns are present iff [result.fault_report]
    is [Some] — pair with [result_header ~faults:true]. Equals
    [outcome_row] applied to [Runner.outcome result]. *)

val sparkline : ?width:int -> float array -> string
(** Render a series as a row of eight-level Unicode block characters,
    resampled to [width] cells (default 40). Empty string on empty
    input; a flat series renders at the lowest level. *)
