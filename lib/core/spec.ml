module Delay_model = Gcs_sim.Delay_model

type t = {
  rho : float;
  mu : float;
  delay : Delay_model.bounds;
  beacon_period : float;
  kappa : float;
  staleness_limit : float;
}

let uncertainty t = Delay_model.uncertainty t.delay
let d_min t = t.delay.Delay_model.d_min
let d_max t = t.delay.Delay_model.d_max
let vartheta t = 1. +. t.rho
let sigma t = if t.rho = 0. then infinity else t.mu /. t.rho

let estimate_error_bound_of ~u ~rho ~beacon_period ~d_max =
  (u /. 2.) +. (rho *. ((2. *. beacon_period) +. d_max))

let default_kappa ~u ~rho ~beacon_period =
  (* Error per estimate, doubled for the two estimates a condition compares,
     and doubled again for slack between the fast and slow thresholds. *)
  4. *. estimate_error_bound_of ~u ~rho ~beacon_period ~d_max:(2. *. u)

let estimate_error_bound t =
  estimate_error_bound_of ~u:(uncertainty t) ~rho:t.rho
    ~beacon_period:t.beacon_period ~d_max:t.delay.Delay_model.d_max

let validate t =
  let err fmt = Printf.ksprintf (fun s -> Error s) fmt in
  if t.rho < 0. then err "rho must be >= 0 (got %g)" t.rho
  else if t.mu <= 0. then err "mu must be > 0 (got %g)" t.mu
  else if t.mu <= t.rho then
    err "mu (%g) must exceed rho (%g) for the gradient algorithm to catch up"
      t.mu t.rho
  else if t.beacon_period <= 0. then
    err "beacon_period must be > 0 (got %g)" t.beacon_period
  else if t.kappa <= 0. then err "kappa must be > 0 (got %g)" t.kappa
  else if t.staleness_limit <= 0. then
    err "staleness_limit must be > 0 (got %g)" t.staleness_limit
  else Ok ()

let make ?(rho = 0.01) ?(mu = 0.1) ?(d_min = 0.5) ?(d_max = 1.5)
    ?(beacon_period = 1.) ?kappa ?staleness_limit () =
  let delay = Delay_model.bounds ~d_min ~d_max in
  let u = Delay_model.uncertainty delay in
  let kappa =
    match kappa with
    | Some k -> k
    | None ->
        let k = default_kappa ~u ~rho ~beacon_period in
        (* A zero-uncertainty, zero-drift instance still needs a positive
           quantum for the trigger arithmetic. *)
        if k > 0. then k else 1e-6
  in
  let staleness_limit =
    match staleness_limit with
    | Some s -> s
    | None -> 4. *. beacon_period
  in
  let t = { rho; mu; delay; beacon_period; kappa; staleness_limit } in
  match validate t with Ok () -> t | Error msg -> invalid_arg ("Spec.make: " ^ msg)
