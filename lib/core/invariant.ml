module Graph = Gcs_graph.Graph
module Shortest_path = Gcs_graph.Shortest_path

type violation = {
  time : float;
  node : int;
  peer : int option;
  what : string;
}

let eps = 1e-6

let check_rate_envelope (samples : Metrics.sample array) ~lo ~hi =
  let violations = ref [] in
  for i = 1 to Array.length samples - 1 do
    let prev = samples.(i - 1) and cur = samples.(i) in
    let dt = cur.Metrics.time -. prev.Metrics.time in
    if dt > 0. then
      Array.iteri
        (fun v x ->
          let rate = (x -. prev.Metrics.values.(v)) /. dt in
          if rate < lo -. eps || rate > hi +. eps then
            violations :=
              {
                time = cur.Metrics.time;
                node = v;
                peer = None;
                what =
                  Printf.sprintf "rate %.6f outside [%.6f, %.6f]" rate lo hi;
              }
              :: !violations)
        cur.Metrics.values
  done;
  List.rev !violations

let check_monotonic (samples : Metrics.sample array) =
  let violations = ref [] in
  for i = 1 to Array.length samples - 1 do
    let prev = samples.(i - 1) and cur = samples.(i) in
    Array.iteri
      (fun v x ->
        if x < prev.Metrics.values.(v) -. eps then
          violations :=
            {
              time = cur.Metrics.time;
              node = v;
              peer = None;
              what =
                Printf.sprintf "clock went backwards: %.6f -> %.6f"
                  prev.Metrics.values.(v) x;
            }
            :: !violations)
      cur.Metrics.values
  done;
  List.rev !violations

(* Argmax skew pair: the adjacent pair realizing the local skew, or the
   (max, min) clock-value pair realizing the global skew. Returned with
   the lower node id first so reports are stable across metrics. *)
let worst_local_pair graph values =
  let best = ref neg_infinity and bu = ref 0 and bv = ref 0 in
  Array.iter
    (fun (u, v) ->
      let s = Float.abs (values.(u) -. values.(v)) in
      if s > !best then begin
        best := s;
        bu := min u v;
        bv := max u v
      end)
    (Graph.edges graph);
  (!bu, !bv)

let worst_global_pair values =
  let lo = ref 0 and hi = ref 0 in
  Array.iteri
    (fun v x ->
      if x < values.(!lo) then lo := v;
      if x > values.(!hi) then hi := v)
    values;
  (min !lo !hi, max !lo !hi)

let check_skew_bound graph (samples : Metrics.sample array) ~after ~bound
    metric =
  let violations = ref [] in
  Array.iter
    (fun (s : Metrics.sample) ->
      if s.Metrics.time >= after then begin
        let value, name =
          match metric with
          | `Local -> (Metrics.local_skew graph s.Metrics.values, "local")
          | `Global -> (Metrics.global_skew s.Metrics.values, "global")
        in
        if value > bound +. eps then begin
          let u, v =
            match metric with
            | `Local -> worst_local_pair graph s.Metrics.values
            | `Global -> worst_global_pair s.Metrics.values
          in
          violations :=
            {
              time = s.Metrics.time;
              node = u;
              peer = Some v;
              what =
                Printf.sprintf "%s skew %.6f exceeds bound %.6f" name value
                  bound;
            }
            :: !violations
        end
      end)
    samples;
  List.rev !violations

type envelope = { rate_lo : float; rate_hi : float; jumps_allowed : bool }

let expected_envelope (spec : Spec.t) = function
  | Algorithm.Free_run ->
      { rate_lo = 1.; rate_hi = Spec.vartheta spec; jumps_allowed = false }
  | Algorithm.Gradient_sync | Algorithm.Dynamic_gradient_sync
  | Algorithm.Ft_gradient_sync _ | Algorithm.Max_slew_sync ->
      {
        rate_lo = 1.;
        rate_hi = (1. +. spec.Spec.mu) *. Spec.vartheta spec;
        jumps_allowed = false;
      }
  | Algorithm.Tree_sync ->
      {
        rate_lo = Float.max 0.5 (1. -. (spec.Spec.mu /. 2.));
        rate_hi = (1. +. spec.Spec.mu) *. Spec.vartheta spec;
        jumps_allowed = false;
      }
  | Algorithm.Max_sync ->
      {
        rate_lo = 1.;
        rate_hi = (1. +. spec.Spec.mu) *. Spec.vartheta spec;
        jumps_allowed = true;
      }

let check_result (r : Runner.result) ~algo =
  let env = expected_envelope r.Runner.spec algo in
  let monotonic = check_monotonic r.Runner.samples in
  let rates =
    if env.jumps_allowed then []
    else check_rate_envelope r.Runner.samples ~lo:env.rate_lo ~hi:env.rate_hi
  in
  let skew =
    match algo with
    | Algorithm.Gradient_sync ->
        let d = Shortest_path.diameter r.Runner.graph in
        check_skew_bound r.Runner.graph r.Runner.samples
          ~after:(match r.Runner.samples with
                 | [||] -> 0.
                 | s ->
                     let last = s.(Array.length s - 1).Metrics.time in
                     last /. 4.)
          ~bound:(Bounds.gradient_local_upper r.Runner.spec ~diameter:d)
          `Local
    | Algorithm.Free_run | Algorithm.Max_sync | Algorithm.Max_slew_sync
    | Algorithm.Tree_sync | Algorithm.Ft_gradient_sync _
    | Algorithm.Dynamic_gradient_sync ->
        (* The ft variant's clamp weakens the faultless bound even in benign
           runs, so it is checked by the containment monitor instead; the
           dynamic variant's fresh-edge allowance is checked by the
           age-parameterized edge-age monitor. *)
        []
  in
  monotonic @ rates @ skew

let to_string { time; node; peer; what } =
  match peer with
  | Some p -> Printf.sprintf "[t=%.3f, nodes %d~%d] %s" time node p what
  | None ->
      if node < 0 then Printf.sprintf "[t=%.3f] %s" time what
      else Printf.sprintf "[t=%.3f, node %d] %s" time node what
