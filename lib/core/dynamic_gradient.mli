(** Gradient clock synchronization for dynamic networks.

    The static gradient algorithm treats every neighbor's offset estimate
    at face value: a neighbor far ahead forces the node into fast mode at
    once. On a dynamic network that is exactly wrong — a freshly formed
    edge may connect two nodes whose clocks legitimately differ by up to
    the *global* bound, and chasing the new neighbor at full speed rips
    open the skew on the node's *old* edges, which were promised the tight
    local gradient bound.

    Following the dynamic-GCS model (Kuhn, Lenzen, Locher, Oshman), this
    variant indexes each neighbor's influence by the edge's age: a port
    that just became live is granted a skew allowance of
    {!fresh_allowance} (the weak global bound), and the allowance decays
    linearly at {!tighten_rate} per unit time until it reaches zero —
    from then on the edge is "settled" and behaves exactly like a static
    gradient edge. Offsets are discounted by the current allowance before
    the trigger evaluates, so a fresh neighbor only influences the node
    once its estimated offset exceeds what a fresh edge is still allowed.
    The pairwise guarantee on a formed edge therefore tightens gradually
    from the global bound toward the static gradient bound, reaching it
    after [fresh_allowance / tighten_rate] time — the stabilization time
    asserted by experiment E28 and the {!Gcs_check.Monitor} edge-age
    conformance kind.

    Edge age is observed purely locally: a beacon arriving after a silence
    longer than [spec.staleness_limit] — counted from process start, so an
    edge first heard from late in the run is fresh too — restarts the
    port's age from zero. Ports that speak within the first staleness
    window are *born settled* (age infinity): every clock starts
    synchronized, so startup edges need no allowance, and granting one
    would let real skew open under the drift split before any churn even
    happens. No global knowledge of the churn schedule is required. *)

val fresh_allowance : Spec.t -> diameter:int -> float
(** Extra skew allowance granted to a just-formed edge, beyond the static
    bound: the global skew bound {!Bounds.gradient_global_upper}, the most
    two nodes that were connected through the rest of the network can
    legitimately differ by at the instant the edge appears. *)

val tighten_rate : Spec.t -> float
(** Linear decay rate of the fresh-edge allowance, per unit real time.
    Chosen at a quarter of the worst-case closing speed [mu - 2 rho] a
    fast node can guarantee against a slow drifting neighbor (capped at
    [mu / 8]): draining a fresh-edge gap is not a single-edge affair —
    the chasing node is itself held back by the level-set rule whenever
    its other neighbors trail, so the drain propagates through a chase
    chain and the effective rate is well below the pairwise closing
    speed. A quarter leaves that chain-lag headroom, keeping real skew
    inside the shrinking allowance; falls back to [mu / 8] when
    [mu <= 2 rho]. *)

val algorithm : Algorithm.t
(** The ["dynamic-gradient"] algorithm. *)
