type ctx = {
  spec : Spec.t;
  graph : Gcs_graph.Graph.t;
  logical : Gcs_clock.Logical_clock.t array;
  now : unit -> float;
}

type t = {
  name : string;
  prepare : ctx -> int -> Message.t Gcs_sim.Engine.handlers;
}

type kind =
  | Free_run
  | Max_sync
  | Max_slew_sync
  | Tree_sync
  | Gradient_sync
  | Dynamic_gradient_sync
  | Ft_gradient_sync of int

let kind_name = function
  | Free_run -> "free-run"
  | Max_sync -> "max"
  | Max_slew_sync -> "max-slew"
  | Tree_sync -> "tree"
  | Gradient_sync -> "gradient"
  | Dynamic_gradient_sync -> "dynamic-gradient"
  | Ft_gradient_sync f -> Printf.sprintf "ft-gradient-%d" f

let kind_of_string = function
  | "free-run" | "free" | "none" -> Ok Free_run
  | "max" -> Ok Max_sync
  | "max-slew" | "maxslew" -> Ok Max_slew_sync
  | "tree" | "ntp" -> Ok Tree_sync
  | "gradient" | "gcs" -> Ok Gradient_sync
  | "dynamic-gradient" | "dynamic" | "dgcs" -> Ok Dynamic_gradient_sync
  | "ft-gradient" | "ft" -> Ok (Ft_gradient_sync 1)
  | s -> (
      let prefix = "ft-gradient-" in
      let plen = String.length prefix in
      if String.length s > plen && String.sub s 0 plen = prefix then
        match int_of_string_opt (String.sub s plen (String.length s - plen)) with
        | Some f when f >= 0 -> Ok (Ft_gradient_sync f)
        | Some _ | None ->
            Error (Printf.sprintf "bad fault budget in algorithm %S" s)
      else Error (Printf.sprintf "unknown algorithm %S" s))

let all_kinds =
  [ Free_run; Max_sync; Max_slew_sync; Tree_sync; Gradient_sync;
    Dynamic_gradient_sync; Ft_gradient_sync 1 ]

let timer_beacon = 0
let timer_recheck = 1
