module Stats = Gcs_util.Stats

type summary = {
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
  trials : int;
}

let summary_of xs =
  let n = Array.length xs in
  let stddev = Stats.stddev xs in
  {
    mean = Stats.mean xs;
    stddev;
    min = Stats.min xs;
    max = Stats.max xs;
    ci95 = (if n < 2 then 0. else 1.96 *. stddev /. sqrt (float_of_int n));
    trials = n;
  }

let measure ?(jobs = 1) ~seeds f =
  if seeds = [] then invalid_arg "Replicate.measure: no seeds";
  summary_of (Gcs_util.Pool.map ~jobs f (Array.of_list seeds))

let measure_runs ?jobs ?store ~seeds ~key ~config ~metric () =
  if seeds = [] then invalid_arg "Replicate.measure_runs: no seeds";
  let cells =
    Array.of_list (List.map (fun seed -> (key seed, config seed)) seeds)
  in
  let outcomes, stats = Parallel_run.run_cached ?jobs ?store cells in
  (summary_of (Array.map metric outcomes), stats)

let seeds ?(base = 1000) n = List.init n (fun i -> base + (7919 * i))

let to_string ?(digits = 3) s =
  Printf.sprintf "%.*f ± %.*f" digits s.mean digits s.ci95
