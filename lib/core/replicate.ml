module Stats = Gcs_util.Stats

type summary = {
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;
  trials : int;
}

let measure ?(jobs = 1) ~seeds f =
  if seeds = [] then invalid_arg "Replicate.measure: no seeds";
  let xs = Gcs_util.Pool.map ~jobs f (Array.of_list seeds) in
  let n = Array.length xs in
  let stddev = Stats.stddev xs in
  {
    mean = Stats.mean xs;
    stddev;
    min = Stats.min xs;
    max = Stats.max xs;
    ci95 = (if n < 2 then 0. else 1.96 *. stddev /. sqrt (float_of_int n));
    trials = n;
  }

let seeds ?(base = 1000) n = List.init n (fun i -> base + (7919 * i))

let to_string ?(digits = 3) s =
  Printf.sprintf "%.*f ± %.*f" digits s.mean digits s.ci95
