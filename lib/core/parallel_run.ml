module Pool = Gcs_util.Pool
module Logical_clock = Gcs_clock.Logical_clock

let run ?jobs cfgs = Pool.map ?jobs Runner.run cfgs
let map ?jobs ~f cfgs = Pool.map ?jobs (fun cfg -> f (Runner.run cfg)) cfgs

type cache_stats = { hits : int; misses : int; fresh_dispatches : int }

let run_cached ?jobs ?store cells =
  let n = Array.length cells in
  let outcomes : Gcs_store.Outcome.t option array = Array.make n None in
  let miss_rev = ref [] in
  Array.iteri
    (fun i (key, _) ->
      match (store, key) with
      | Some st, Some k -> (
          match Gcs_store.Store.find st k with
          | Some o -> outcomes.(i) <- Some o
          | None -> miss_rev := i :: !miss_rev)
      | _ -> miss_rev := i :: !miss_rev)
    cells;
  let miss = Array.of_list (List.rev !miss_rev) in
  (* Simulate only the misses, sharded like [run]; each worker persists
     its cell as soon as it finishes, so an interrupted batch resumes
     from whatever completed (the store serializes writers internally). *)
  let fresh =
    Pool.map ?jobs
      (fun i ->
        let key, cfg = cells.(i) in
        let r = Runner.run cfg in
        let o = Runner.outcome r in
        (match (store, key) with
        | Some st, Some k -> Gcs_store.Store.put st k o
        | _ -> ());
        (o, r.Runner.dispatches))
      miss
  in
  let fresh_dispatches = ref 0 in
  Array.iteri
    (fun j i ->
      let o, d = fresh.(j) in
      outcomes.(i) <- Some o;
      fresh_dispatches := !fresh_dispatches + d)
    miss;
  let outcomes = Array.map Option.get outcomes in
  ( outcomes,
    {
      hits = n - Array.length miss;
      misses = Array.length miss;
      fresh_dispatches = !fresh_dispatches;
    } )

type merged = {
  summaries : Metrics.summary array;
  samples : (int * Metrics.sample) array;
  events : int;
  messages : int;
  dropped : int;
  dropped_faults : int;
  jumps : Logical_clock.jump_stats;
  series : (int * Gcs_obs.Series.point) array;
  profile : Gcs_obs.Profiler.report option;
}

let merge (results : Runner.result array) =
  let summaries = Array.map (fun r -> r.Runner.summary) results in
  let tagged =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i (r : Runner.result) ->
              Array.map (fun s -> (i, s)) r.Runner.samples)
            results))
  in
  (* Stable sort on time only: runs are concatenated in input order and
     each run's samples are already time-ordered, so ties keep run-index
     (then within-run) order. *)
  let samples = tagged in
  Array.stable_sort
    (fun (_, a) (_, b) -> compare a.Metrics.time b.Metrics.time)
    samples;
  (* Series points merge exactly like samples: concatenate in input order,
     tag with run index, stable-sort on time only. *)
  let series =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i (r : Runner.result) ->
              match r.Runner.obs.Gcs_obs.Capture.series with
              | None -> [||]
              | Some s -> Array.map (fun p -> (i, p)) (Gcs_obs.Series.points s))
            results))
  in
  Array.stable_sort
    (fun (_, (a : Gcs_obs.Series.point)) (_, (b : Gcs_obs.Series.point)) ->
      compare a.Gcs_obs.Series.time b.Gcs_obs.Series.time)
    series;
  let profile =
    match
      Array.to_list results
      |> List.filter_map (fun (r : Runner.result) ->
             r.Runner.obs.Gcs_obs.Capture.profile)
    with
    | [] -> None
    | reports -> Some (Gcs_obs.Profiler.merge reports)
  in
  let events = ref 0 and messages = ref 0 in
  let dropped = ref 0 and dropped_faults = ref 0 in
  let jumps =
    ref { Logical_clock.count = 0; total_magnitude = 0.; max_magnitude = 0. }
  in
  Array.iter
    (fun (r : Runner.result) ->
      events := !events + r.Runner.events;
      messages := !messages + r.Runner.messages;
      dropped := !dropped + r.Runner.dropped;
      dropped_faults := !dropped_faults + r.Runner.dropped_faults;
      let j = r.Runner.jumps in
      jumps :=
        {
          Logical_clock.count = !jumps.Logical_clock.count + j.Logical_clock.count;
          total_magnitude =
            !jumps.Logical_clock.total_magnitude
            +. j.Logical_clock.total_magnitude;
          max_magnitude =
            Float.max !jumps.Logical_clock.max_magnitude
              j.Logical_clock.max_magnitude;
        })
    results;
  {
    summaries;
    samples;
    events = !events;
    messages = !messages;
    dropped = !dropped;
    dropped_faults = !dropped_faults;
    jumps = !jumps;
    series;
    profile;
  }
