module Pool = Gcs_util.Pool
module Logical_clock = Gcs_clock.Logical_clock

let run ?jobs cfgs = Pool.map ?jobs Runner.run cfgs
let map ?jobs ~f cfgs = Pool.map ?jobs (fun cfg -> f (Runner.run cfg)) cfgs

type merged = {
  summaries : Metrics.summary array;
  samples : (int * Metrics.sample) array;
  events : int;
  messages : int;
  dropped : int;
  dropped_faults : int;
  jumps : Logical_clock.jump_stats;
  series : (int * Gcs_obs.Series.point) array;
  profile : Gcs_obs.Profiler.report option;
}

let merge (results : Runner.result array) =
  let summaries = Array.map (fun r -> r.Runner.summary) results in
  let tagged =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i (r : Runner.result) ->
              Array.map (fun s -> (i, s)) r.Runner.samples)
            results))
  in
  (* Stable sort on time only: runs are concatenated in input order and
     each run's samples are already time-ordered, so ties keep run-index
     (then within-run) order. *)
  let samples = tagged in
  Array.stable_sort
    (fun (_, a) (_, b) -> compare a.Metrics.time b.Metrics.time)
    samples;
  (* Series points merge exactly like samples: concatenate in input order,
     tag with run index, stable-sort on time only. *)
  let series =
    Array.concat
      (Array.to_list
         (Array.mapi
            (fun i (r : Runner.result) ->
              match r.Runner.obs.Gcs_obs.Capture.series with
              | None -> [||]
              | Some s -> Array.map (fun p -> (i, p)) (Gcs_obs.Series.points s))
            results))
  in
  Array.stable_sort
    (fun (_, (a : Gcs_obs.Series.point)) (_, (b : Gcs_obs.Series.point)) ->
      compare a.Gcs_obs.Series.time b.Gcs_obs.Series.time)
    series;
  let profile =
    match
      Array.to_list results
      |> List.filter_map (fun (r : Runner.result) ->
             r.Runner.obs.Gcs_obs.Capture.profile)
    with
    | [] -> None
    | reports -> Some (Gcs_obs.Profiler.merge reports)
  in
  let events = ref 0 and messages = ref 0 in
  let dropped = ref 0 and dropped_faults = ref 0 in
  let jumps =
    ref { Logical_clock.count = 0; total_magnitude = 0.; max_magnitude = 0. }
  in
  Array.iter
    (fun (r : Runner.result) ->
      events := !events + r.Runner.events;
      messages := !messages + r.Runner.messages;
      dropped := !dropped + r.Runner.dropped;
      dropped_faults := !dropped_faults + r.Runner.dropped_faults;
      let j = r.Runner.jumps in
      jumps :=
        {
          Logical_clock.count = !jumps.Logical_clock.count + j.Logical_clock.count;
          total_magnitude =
            !jumps.Logical_clock.total_magnitude
            +. j.Logical_clock.total_magnitude;
          max_magnitude =
            Float.max !jumps.Logical_clock.max_magnitude
              j.Logical_clock.max_magnitude;
        })
    results;
  {
    summaries;
    samples;
    events = !events;
    messages = !messages;
    dropped = !dropped;
    dropped_faults = !dropped_faults;
    jumps = !jumps;
    series;
    profile;
  }
