module Graph = Gcs_graph.Graph
module Shortest_path = Gcs_graph.Shortest_path

type sample = { time : float; values : float array }

let global_skew values =
  let lo = Array.fold_left Float.min infinity values in
  let hi = Array.fold_left Float.max neg_infinity values in
  hi -. lo

let local_skew g values =
  Array.fold_left
    (fun acc (u, v) -> Float.max acc (Float.abs (values.(u) -. values.(v))))
    0. (Graph.edges g)

let local_skew_edges g values =
  Array.map
    (fun (u, v) -> Float.abs (values.(u) -. values.(v)))
    (Graph.edges g)

let skew_on_edges g edge_ids values =
  let ends = Graph.edges g in
  List.fold_left
    (fun acc e ->
      let u, v = ends.(e) in
      Float.max acc (Float.abs (values.(u) -. values.(v))))
    0. edge_ids

let real_time_skew ~time values =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs (v -. time))) 0. values

let gradient_profile ~dist values =
  let n = Array.length values in
  let diameter =
    Array.fold_left
      (fun acc row -> Array.fold_left (fun a d -> max a d) acc row)
      0 dist
  in
  let profile = Array.make diameter 0. in
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      let d = dist.(v).(w) in
      if d >= 1 then
        profile.(d - 1) <-
          Float.max profile.(d - 1) (Float.abs (values.(v) -. values.(w)))
    done
  done;
  profile

let global_skew_alive ~alive values =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iteri
    (fun v x ->
      if alive v then begin
        if x < !lo then lo := x;
        if x > !hi then hi := x
      end)
    values;
  if !hi < !lo then 0. else !hi -. !lo

let local_skew_alive g ~alive values =
  Array.fold_left
    (fun acc (u, v) ->
      if alive u && alive v then
        Float.max acc (Float.abs (values.(u) -. values.(v)))
      else acc)
    0. (Graph.edges g)

type summary = {
  max_global : float;
  max_local : float;
  mean_local : float;
  p99_local : float;
  final_global : float;
  final_local : float;
  samples_used : int;
}

let qualifying samples ~after =
  let q = Array.of_list (List.filter (fun s -> s.time >= after)
                           (Array.to_list samples)) in
  if Array.length q = 0 then
    invalid_arg "Metrics.summarize: no samples after warm-up";
  q

let summarize ?(alive = fun _ -> true) g samples ~after =
  let q = qualifying samples ~after in
  let globals = Array.map (fun s -> global_skew_alive ~alive s.values) q in
  let locals = Array.map (fun s -> local_skew_alive g ~alive s.values) q in
  let last = q.(Array.length q - 1) in
  {
    max_global = Gcs_util.Stats.max globals;
    max_local = Gcs_util.Stats.max locals;
    mean_local = Gcs_util.Stats.mean locals;
    p99_local = Gcs_util.Stats.percentile locals 99.;
    final_global = global_skew_alive ~alive last.values;
    final_local = local_skew_alive g ~alive last.values;
    samples_used = Array.length q;
  }

let max_gradient_profile g samples ~after =
  let q = qualifying samples ~after in
  let dist = Shortest_path.all_pairs g in
  let acc = ref (gradient_profile ~dist q.(0).values) in
  Array.iter
    (fun s ->
      let p = gradient_profile ~dist s.values in
      acc := Array.mapi (fun i x -> Float.max x p.(i)) !acc)
    q;
  !acc
