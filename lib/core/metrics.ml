module Graph = Gcs_graph.Graph
module Shortest_path = Gcs_graph.Shortest_path

type sample = { time : float; values : float array }

let global_skew values =
  let lo = Array.fold_left Float.min infinity values in
  let hi = Array.fold_left Float.max neg_infinity values in
  hi -. lo

let local_skew g values =
  Array.fold_left
    (fun acc (u, v) -> Float.max acc (Float.abs (values.(u) -. values.(v))))
    0. (Graph.edges g)

let local_skew_edges g values =
  Array.map
    (fun (u, v) -> Float.abs (values.(u) -. values.(v)))
    (Graph.edges g)

let skew_on_edges g edge_ids values =
  let ends = Graph.edges g in
  List.fold_left
    (fun acc e ->
      let u, v = ends.(e) in
      Float.max acc (Float.abs (values.(u) -. values.(v))))
    0. edge_ids

let real_time_skew ~time values =
  Array.fold_left (fun acc v -> Float.max acc (Float.abs (v -. time))) 0. values

(* Flattened pair list for repeated profiling (one entry per unordered
   reachable pair). Building it costs one matrix scan; each subsequent
   profile is a single pass over flat arrays with no row indirection and
   no per-call diameter search — the time-series recorder calls this once
   per series point. *)
type profile_ctx = {
  diameter : int;
  pv : int array;
  pw : int array;
  pd : int array;  (** hop distance - 1, the profile slot *)
}

let profile_ctx ~dist =
  let n = Array.length dist in
  let diameter = ref 0 in
  let count = ref 0 in
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      let d = dist.(v).(w) in
      if d >= 1 then begin
        incr count;
        if d > !diameter then diameter := d
      end
    done
  done;
  let pv = Array.make !count 0
  and pw = Array.make !count 0
  and pd = Array.make !count 0 in
  let k = ref 0 in
  for v = 0 to n - 1 do
    for w = v + 1 to n - 1 do
      let d = dist.(v).(w) in
      if d >= 1 then begin
        pv.(!k) <- v;
        pw.(!k) <- w;
        pd.(!k) <- d - 1;
        incr k
      end
    done
  done;
  { diameter = !diameter; pv; pw; pd }

let gradient_profile_ctx ctx values =
  let profile = Array.make ctx.diameter 0. in
  for k = 0 to Array.length ctx.pv - 1 do
    let s =
      Float.abs
        (Array.unsafe_get values (Array.unsafe_get ctx.pv k)
        -. Array.unsafe_get values (Array.unsafe_get ctx.pw k))
    in
    let d = Array.unsafe_get ctx.pd k in
    if s > Array.unsafe_get profile d then Array.unsafe_set profile d s
  done;
  profile

let gradient_profile ~dist values = gradient_profile_ctx (profile_ctx ~dist) values

let global_skew_alive ~alive values =
  let lo = ref infinity and hi = ref neg_infinity in
  Array.iteri
    (fun v x ->
      if alive v then begin
        if x < !lo then lo := x;
        if x > !hi then hi := x
      end)
    values;
  if !hi < !lo then 0. else !hi -. !lo

let local_skew_alive g ~alive values =
  Array.fold_left
    (fun acc (u, v) ->
      if alive u && alive v then
        Float.max acc (Float.abs (values.(u) -. values.(v)))
      else acc)
    0. (Graph.edges g)

type summary = {
  max_global : float;
  max_local : float;
  mean_local : float;
  p99_local : float;
  final_global : float;
  final_local : float;
  samples_used : int;
}

let qualifying_opt samples ~after =
  let q = Array.of_list (List.filter (fun s -> s.time >= after)
                           (Array.to_list samples)) in
  if Array.length q = 0 then None else Some q

let qualifying samples ~after =
  match qualifying_opt samples ~after with
  | Some q -> q
  | None -> invalid_arg "Metrics.summarize: no samples after warm-up"

let summarize_qualifying ~alive g q =
  let globals = Array.map (fun s -> global_skew_alive ~alive s.values) q in
  let locals = Array.map (fun s -> local_skew_alive g ~alive s.values) q in
  let last = q.(Array.length q - 1) in
  {
    max_global = Gcs_util.Stats.max globals;
    max_local = Gcs_util.Stats.max locals;
    mean_local = Gcs_util.Stats.mean locals;
    p99_local = Gcs_util.Stats.percentile locals 99.;
    final_global = global_skew_alive ~alive last.values;
    final_local = local_skew_alive g ~alive last.values;
    samples_used = Array.length q;
  }

let summarize ?(alive = fun _ -> true) g samples ~after =
  summarize_qualifying ~alive g (qualifying samples ~after)

let summarize_opt ?(alive = fun _ -> true) g samples ~after =
  Option.map (summarize_qualifying ~alive g) (qualifying_opt samples ~after)

let max_gradient_profile g samples ~after =
  let q = qualifying samples ~after in
  let dist = Shortest_path.all_pairs g in
  let acc = ref (gradient_profile ~dist q.(0).values) in
  Array.iter
    (fun s ->
      let p = gradient_profile ~dist s.values in
      acc := Array.mapi (fun i x -> Float.max x p.(i)) !acc)
    q;
  !acc
