module Graph = Gcs_graph.Graph
module Fault_plan = Gcs_sim.Fault_plan

type episode_report = {
  label : string;
  start : float;
  stop : float option;
  band : float;
  worst_transient : float;
  time_to_resync : float option;
  decay : (float * float) array;
}

type report = {
  episodes : episode_report list;
  dropped_faults : int;
  duplicated : int;
  corrupted : int;
  lied : int;
  correct : Metrics.summary option;
}

let skew graph (ep : Fault_plan.episode) (s : Metrics.sample) =
  Metrics.skew_on_edges graph ep.edges s.Metrics.values

(* Steady-state band for one episode: 1.25x the worst pre-fault skew on the
   affected edges over [start/2, start) — widening to all pre-fault samples
   if that half-window is empty — and never below kappa. *)
let episode_band ~kappa ~graph ~samples (ep : Fault_plan.episode) =
  let before lo s = s.Metrics.time >= lo && s.Metrics.time < ep.start in
  let pre =
    let half = List.filter (before (ep.start /. 2.)) samples in
    if half <> [] then half else List.filter (before neg_infinity) samples
  in
  let baseline =
    List.fold_left (fun acc s -> Float.max acc (skew graph ep s)) 0. pre
  in
  Float.max kappa (1.25 *. baseline)

let eval_episode ~kappa ~graph ~samples (ep : Fault_plan.episode) =
  let band = episode_band ~kappa ~graph ~samples ep in
  let last_time =
    match List.rev samples with [] -> ep.start | s :: _ -> s.Metrics.time
  in
  let window_end = Option.value ep.stop ~default:last_time in
  let worst_transient =
    List.fold_left
      (fun acc s ->
        if s.Metrics.time >= ep.start && s.Metrics.time <= window_end then
          Float.max acc (skew graph ep s)
        else acc)
      0. samples
  in
  let time_to_resync =
    match ep.stop with
    | None -> None
    | Some heal ->
        let post = List.filter (fun s -> s.Metrics.time >= heal) samples in
        (* Longest suffix of post-heal samples entirely within the band:
           its first sample is when the skew re-entered and stayed. *)
        let tau =
          List.fold_left
            (fun acc s ->
              if skew graph ep s <= band then
                match acc with Some _ -> acc | None -> Some s.Metrics.time
              else None)
            None post
        in
        Option.map (fun t -> t -. heal) tau
  in
  (* The post-heal convergence curve: skew on the episode's edges as a
     function of time since the heal. For a dynamic-network edge formation
     this is the decay the paper predicts — from (up to) the global bound
     at age 0 down below the static gradient bound within the
     stabilization time (E28 plots and asserts it). *)
  let decay =
    match ep.stop with
    | None -> [||]
    | Some heal ->
        samples
        |> List.filter (fun s -> s.Metrics.time >= heal)
        |> List.map (fun s -> (s.Metrics.time -. heal, skew graph ep s))
        |> Array.of_list
  in
  { label = ep.label; start = ep.start; stop = ep.stop; band; worst_transient;
    time_to_resync; decay }

let evaluate ?(byzantine = []) ?(lied = 0) ?(after = neg_infinity) ~spec
    ~graph ~samples ~episodes ~dropped_faults ~duplicated ~corrupted () =
  (* With Byzantine nodes in the plan, also summarize skew over correct
     nodes only — a liar's advertised values are arbitrary by design, so
     aggregates that include it measure the attack, not the algorithm. *)
  let correct =
    if byzantine = [] then None
    else begin
      let is_byz = Array.make (Graph.n graph) false in
      List.iter (fun v -> is_byz.(v) <- true) byzantine;
      Metrics.summarize_opt ~alive:(fun v -> not is_byz.(v)) graph samples
        ~after
    end
  in
  let samples = Array.to_list samples in
  let kappa = spec.Spec.kappa in
  {
    episodes = List.map (eval_episode ~kappa ~graph ~samples) episodes;
    dropped_faults;
    duplicated;
    corrupted;
    lied;
    correct;
  }

let worst_transient r =
  List.fold_left (fun acc e -> Float.max acc e.worst_transient) 0. r.episodes

let max_time_to_resync r =
  let healed = List.filter (fun e -> e.stop <> None) r.episodes in
  if healed = [] then None
  else
    List.fold_left
      (fun acc e ->
        match (acc, e.time_to_resync) with
        | None, _ | _, None -> None
        | Some a, Some t -> Some (Float.max a t))
      (Some 0.) healed

let episode_to_string e =
  Printf.sprintf "%-14s [%g, %s) band %.4g transient %.4g resync %s" e.label
    e.start
    (match e.stop with Some s -> Printf.sprintf "%g" s | None -> "inf")
    e.band e.worst_transient
    (match e.time_to_resync with
    | Some t -> Printf.sprintf "%.4g" t
    | None -> "never")
