(** Recovery observability for faulted runs.

    Evaluates a run's samples against the fault episodes extracted from its
    {!Gcs_sim.Fault_plan}: for each episode, the worst transient skew on the
    affected edges during the fault window, and the *time-to-resync* — how
    long after the heal/recover the skew on those edges takes to re-enter
    the steady-state band and stay there for the rest of the run.

    The band is derived per episode from the run itself: the maximum skew on
    the affected edges over the pre-fault half-window [[start/2, start)]
    (falling back to all pre-fault samples, then to [kappa] alone), scaled
    by a 25% tolerance, and never below the spec's [kappa]. Measuring
    against the run's own steady state makes the verdict meaningful for any
    algorithm, not just ones that achieve the paper's bound. *)

type episode_report = {
  label : string;  (** from {!Gcs_sim.Fault_plan.episode} *)
  start : float;
  stop : float option;  (** heal/recover time; [None] if never healed *)
  band : float;  (** steady-state skew band used for this episode *)
  worst_transient : float;
      (** max skew on affected edges over [[start, stop]] (to run end if
          never healed) *)
  time_to_resync : float option;
      (** first sample time [tau >= stop] with skew on affected edges
          [<= band] from [tau] through the end of the run, minus [stop];
          [None] if the run never (or never durably) re-entered the band,
          or the fault never healed *)
  decay : (float * float) array;
      (** post-heal convergence curve: [(age, skew on the episode's
          edges)] per sample, age measured from the heal instant — for a
          churned edge this is the dynamic-network skew-decay curve;
          [[||]] when the episode never healed *)
}

type report = {
  episodes : episode_report list;
  dropped_faults : int;  (** messages lost to partitions/crashes *)
  duplicated : int;
  corrupted : int;
  lied : int;  (** messages rewritten at the source by a Byzantine node *)
  correct : Metrics.summary option;
      (** skew summary over correct nodes only — present exactly when the
          plan has Byzantine nodes, so liars never pollute the aggregates *)
}

val evaluate :
  ?byzantine:int list ->
  ?lied:int ->
  ?after:float ->
  spec:Spec.t ->
  graph:Gcs_graph.Graph.t ->
  samples:Metrics.sample array ->
  episodes:Gcs_sim.Fault_plan.episode list ->
  dropped_faults:int ->
  duplicated:int ->
  corrupted:int ->
  unit ->
  report
(** [byzantine] (default none) are the plan's lying nodes: when non-empty,
    [correct] summarizes skew excluding them, over samples at or after
    [after] (default: all). Episodes for Byzantine windows already carry
    only correct-correct edges (see {!Gcs_sim.Fault_plan.correct_edges}),
    so transient/resync numbers need no extra masking here. *)

val worst_transient : report -> float
(** Max over episodes ([0.] if none). *)

val max_time_to_resync : report -> float option
(** Slowest recovery over the healed episodes: [None] if any healed episode
    failed to resync (or there are no healed episodes), otherwise the
    largest time-to-resync. *)

val episode_to_string : episode_report -> string
(** One human-readable line, e.g.
    ["partition [40, 80) band 0.31 transient 2.74 resync 12.0"]. *)
