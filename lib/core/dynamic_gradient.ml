module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Shortest_path = Gcs_graph.Shortest_path
module Prng = Gcs_util.Prng

let fresh_allowance spec ~diameter = Bounds.gradient_global_upper spec ~diameter

let tighten_rate (spec : Spec.t) =
  let cap = 0.125 *. spec.mu in
  let closing = spec.mu -. (2. *. spec.rho) in
  if closing > 0. then Float.min cap (0.25 *. closing) else cap

(* Shrink an offset estimate toward zero by the port's current allowance:
   a fresh neighbor is invisible to the trigger until it drifts beyond
   what a fresh edge is still entitled to. *)
let discount ~allow o =
  if o > allow then o -. allow else if o < -.allow then o +. allow else 0.

let make_node ~allow0 ~tighten (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let spec = ctx.spec in
  let period = spec.beacon_period in
  let kappa = spec.kappa in
  let fast_mult = 1. +. spec.mu in
  let bounds = spec.delay in
  let flight_guess =
    0.5 *. (bounds.Delay_model.d_min +. bounds.Delay_model.d_max)
  in
  let estimators = ref [||] in
  (* [neg_infinity] = the edge existed at startup, when all clocks began
     synchronized — it is born settled (allowance 0), not fresh. Only an
     edge that (re)forms after a silence longer than the staleness limit
     gets the fresh allowance, with its age restarting at that beacon. *)
  let live_since = ref [||] in
  let last_heard = ref [||] in
  let offsets_now (api : Message.t Engine.api) =
    let h = api.hardware () in
    let own = Logical_clock.value lc ~now:(ctx.now ()) in
    let known = ref [] in
    Array.iteri
      (fun port est ->
        match Offset_estimator.offset ~max_age:spec.Spec.staleness_limit est
                ~h_local:h ~own_value:own with
        | Some o ->
            let age = h -. !live_since.(port) in
            let allow = Float.max 0. (allow0 -. (tighten *. age)) in
            known := discount ~allow o :: !known
        | None -> ())
      !estimators;
    Array.of_list !known
  in
  let evaluate (api : Message.t Engine.api) =
    let offsets = offsets_now api in
    let target =
      if Gradient_sync.fast_trigger ~kappa ~offsets then fast_mult else 1.
    in
    if Logical_clock.mult lc <> target then
      Logical_clock.set_mult lc ~now:(ctx.now ()) target
  in
  let broadcast (api : Message.t Engine.api) =
    let value = Logical_clock.value lc ~now:(ctx.now ()) in
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Beacon { value })
    done
  in
  let arm (api : Message.t Engine.api) ~tag delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag
  in
  {
    Engine.on_init =
      (fun api ->
        estimators := Array.init api.ports (fun _ -> Offset_estimator.create ());
        live_since := Array.make api.ports neg_infinity;
        last_heard := Array.make api.ports 0.;
        arm api ~tag:Algorithm.timer_beacon (Prng.uniform api.rng ~lo:0. ~hi:period);
        arm api ~tag:Algorithm.timer_recheck
          (Prng.uniform api.rng ~lo:0. ~hi:(period /. 2.)));
    on_message =
      (fun api ~port msg ->
        match msg with
        | Message.Beacon { value } ->
            let h = api.hardware () in
            (* A gap longer than the staleness limit since the port last
               spoke — counted from process start, so an edge first heard
               from late in the run is fresh too — means the edge has just
               (re)formed: its age restarts now. *)
            if h -. !last_heard.(port) > spec.Spec.staleness_limit then
              !live_since.(port) <- h;
            !last_heard.(port) <- h;
            Offset_estimator.update !estimators.(port) ~h_local:h
              ~remote_value:value ~elapsed_guess:flight_guess;
            evaluate api
        | Message.Probe _ | Message.Probe_reply _ | Message.Flood _
        | Message.Report _ | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          broadcast api;
          arm api ~tag:Algorithm.timer_beacon period
        end
        else if tag = Algorithm.timer_recheck then begin
          evaluate api;
          arm api ~tag:Algorithm.timer_recheck (period /. 2.)
        end);
  }

let algorithm =
  {
    Algorithm.name = "dynamic-gradient";
    prepare =
      (fun ctx ->
        let diameter = Shortest_path.diameter ctx.graph in
        let allow0 = fresh_allowance ctx.spec ~diameter in
        let tighten = tighten_rate ctx.spec in
        make_node ~allow0 ~tighten ctx);
  }
