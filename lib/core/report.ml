module Graph = Gcs_graph.Graph
module Shortest_path = Gcs_graph.Shortest_path
module Lc = Gcs_clock.Logical_clock

let result_header ?(faults = false) () =
  [
    "topology"; "algorithm"; "seed"; "nodes"; "edges"; "diameter"; "max_local";
    "mean_local"; "p99_local"; "max_global"; "final_local"; "final_global";
    "messages"; "dropped"; "events"; "jumps";
  ]
  @ if faults then [ "fault_transient"; "fault_drops"; "fault_resync" ] else []

let result_row ~label (cfg : Runner.config) (r : Runner.result) =
  let graph = r.Runner.graph in
  let s = r.Runner.summary in
  let f x = Printf.sprintf "%.6f" x in
  [
    label;
    Algorithm.kind_name cfg.Runner.algo;
    string_of_int cfg.Runner.seed;
    string_of_int (Graph.n graph);
    string_of_int (Graph.m graph);
    string_of_int (Shortest_path.diameter graph);
    f s.Metrics.max_local;
    f s.Metrics.mean_local;
    f s.Metrics.p99_local;
    f s.Metrics.max_global;
    f s.Metrics.final_local;
    f s.Metrics.final_global;
    string_of_int r.Runner.messages;
    string_of_int r.Runner.dropped;
    string_of_int r.Runner.events;
    string_of_int r.Runner.jumps.Lc.count;
  ]
  @
  match r.Runner.fault_report with
  | None -> []
  | Some rep ->
      [
        f (Fault_metrics.worst_transient rep);
        string_of_int rep.Fault_metrics.dropped_faults;
        (match Fault_metrics.max_time_to_resync rep with
        | Some t -> f t
        | None -> "never");
      ]

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 40) xs =
  let n = Array.length xs in
  if n = 0 || width <= 0 then ""
  else begin
    (* Bucket the series down (or stretch it up) to [width] cells, then
       map each cell's mean to one of eight block heights. *)
    let cells =
      Array.init width (fun i ->
          let lo = i * n / width and hi = max ((i + 1) * n / width) (i * n / width + 1) in
          let hi = min hi n in
          let sum = ref 0. in
          for j = lo to hi - 1 do
            sum := !sum +. xs.(j)
          done;
          !sum /. float_of_int (hi - lo))
    in
    let lo, hi = Gcs_util.Stats.minmax cells in
    let span = hi -. lo in
    let buf = Buffer.create (width * 3) in
    Array.iter
      (fun x ->
        let level =
          if span <= 0. then 0
          else
            Stdlib.min 7
              (int_of_float (Float.of_int 8 *. (x -. lo) /. span))
        in
        Buffer.add_string buf spark_levels.(level))
      cells;
    Buffer.contents buf
  end
