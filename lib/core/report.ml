let result_header ?(faults = false) () =
  [
    "topology"; "algorithm"; "seed"; "nodes"; "edges"; "diameter"; "max_local";
    "mean_local"; "p99_local"; "max_global"; "final_local"; "final_global";
    "messages"; "dropped"; "events"; "jumps";
  ]
  @ if faults then [ "fault_transient"; "fault_drops"; "fault_resync" ] else []

let outcome_row ~label ~algo ~seed (o : Gcs_store.Outcome.t) =
  let f x = Printf.sprintf "%.6f" x in
  [
    label;
    algo;
    string_of_int seed;
    string_of_int o.Gcs_store.Outcome.nodes;
    string_of_int o.Gcs_store.Outcome.edges;
    string_of_int o.Gcs_store.Outcome.diameter;
    f o.Gcs_store.Outcome.max_local;
    f o.Gcs_store.Outcome.mean_local;
    f o.Gcs_store.Outcome.p99_local;
    f o.Gcs_store.Outcome.max_global;
    f o.Gcs_store.Outcome.final_local;
    f o.Gcs_store.Outcome.final_global;
    string_of_int o.Gcs_store.Outcome.messages;
    string_of_int o.Gcs_store.Outcome.dropped;
    string_of_int o.Gcs_store.Outcome.events;
    string_of_int o.Gcs_store.Outcome.jump_count;
  ]
  @
  match o.Gcs_store.Outcome.fault with
  | None -> []
  | Some fr ->
      [
        f fr.Gcs_store.Outcome.transient;
        string_of_int fr.Gcs_store.Outcome.fault_drops;
        (match fr.Gcs_store.Outcome.resync with
        | Some t -> f t
        | None -> "never");
      ]

let result_row ~label (cfg : Runner.config) (r : Runner.result) =
  outcome_row ~label
    ~algo:(Algorithm.kind_name cfg.Runner.algo)
    ~seed:cfg.Runner.seed (Runner.outcome r)

let spark_levels = [| "\xe2\x96\x81"; "\xe2\x96\x82"; "\xe2\x96\x83";
                     "\xe2\x96\x84"; "\xe2\x96\x85"; "\xe2\x96\x86";
                     "\xe2\x96\x87"; "\xe2\x96\x88" |]

let sparkline ?(width = 40) xs =
  let n = Array.length xs in
  if n = 0 || width <= 0 then ""
  else begin
    (* Bucket the series down (or stretch it up) to [width] cells, then
       map each cell's mean to one of eight block heights. *)
    let cells =
      Array.init width (fun i ->
          let lo = i * n / width and hi = max ((i + 1) * n / width) (i * n / width + 1) in
          let hi = min hi n in
          let sum = ref 0. in
          for j = lo to hi - 1 do
            sum := !sum +. xs.(j)
          done;
          !sum /. float_of_int (hi - lo))
    in
    let lo, hi = Gcs_util.Stats.minmax cells in
    let span = hi -. lo in
    let buf = Buffer.create (width * 3) in
    Array.iter
      (fun x ->
        let level =
          if span <= 0. then 0
          else
            Stdlib.min 7
              (int_of_float (Float.of_int 8 *. (x -. lo) /. span))
        in
        Buffer.add_string buf spark_levels.(level))
      cells;
    Buffer.contents buf
  end
