(** Sharded parallel execution of independent simulation configs.

    This is the batch entry point for experiment campaigns: a sweep over
    seeds × topologies × algorithms is an array of {!Runner.config}s, each
    carrying its own seed, and every run derives all of its randomness from
    that seed alone (see {!Gcs_util.Prng}). Partitioning the batch across
    domains with {!Gcs_util.Pool} therefore changes wall-clock time and
    nothing else: [run ~jobs:n] returns results bit-identical to
    [run ~jobs:1], in input order. That determinism guarantee is tested
    (qcheck, over random graph families / algorithms / seeds / loss laws)
    and is what makes parallel sweeps directly comparable to — and
    regression-checkable against — serial ones. *)

val run : ?jobs:int -> Runner.config array -> Runner.result array
(** [run ~jobs cfgs] executes every config ([jobs] defaults to
    {!Gcs_util.Pool.default_jobs}[ ()]) and returns results in input
    order. *)

val map : ?jobs:int -> f:(Runner.result -> 'a) -> Runner.config array -> 'a array
(** [map ~jobs ~f cfgs] additionally applies [f] to each result on the
    worker that produced it, so large intermediate results can be reduced
    to scalars without crossing domains. [f] must be pure. *)

(** How a cached batch was served. [fresh_dispatches] sums
    [Runner.result.dispatches] over the cells that actually simulated, so
    a fully warm batch asserts as [misses = 0] {e and}
    [fresh_dispatches = 0] — the cache provably did not run the engine. *)
type cache_stats = { hits : int; misses : int; fresh_dispatches : int }

val run_cached :
  ?jobs:int ->
  ?store:Gcs_store.Store.t ->
  (Gcs_store.Key.t option * Runner.config) array ->
  Gcs_store.Outcome.t array * cache_stats
(** [run_cached ~store cells] serves each [(key, config)] cell from the
    store when its key is present, and simulates the rest exactly as
    {!run} would (same sharding, bit-identical results in input order).
    Each worker persists its outcome the moment the run completes — not
    at batch end — so a killed sweep keeps everything finished so far.
    Cells with no key (configs a canonical key cannot describe) always
    simulate and are never persisted. Without [?store] every cell is a
    miss: the output equals [Array.map Runner.outcome (run cfgs)]. *)

(** Order-preserving aggregate of a batch, merged deterministically. *)
type merged = {
  summaries : Metrics.summary array;  (** one per config, input order *)
  samples : (int * Metrics.sample) array;
      (** all samples of all runs, tagged with their run index, sorted by
          sample time with run index (then within-run order) breaking
          ties — a deterministic interleaving suitable for one combined
          time-series artifact *)
  events : int;  (** total engine events across the batch *)
  messages : int;  (** total messages sent *)
  dropped : int;  (** total messages lost to loss laws *)
  dropped_faults : int;  (** total messages lost to partitions/crashes *)
  jumps : Gcs_clock.Logical_clock.jump_stats;
      (** clock discontinuities aggregated across all runs *)
  series : (int * Gcs_obs.Series.point) array;
      (** all captured series points, merged like [samples]: tagged with
          their run index and stable-sorted on time only; empty when no
          run captured a series *)
  profile : Gcs_obs.Profiler.report option;
      (** {!Gcs_obs.Profiler.merge} of every captured profiler report;
          [None] when no run profiled *)
}

val merge : Runner.result array -> merged
(** Pure fold over results; independent of how they were computed. *)
