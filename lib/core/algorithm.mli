(** The common shape of a synchronization algorithm.

    An algorithm receives a static context — the problem spec, the graph
    (used only for *static* precomputation such as the BFS tree a deployed
    system would configure at installation time), and the array of logical
    clocks — and yields per-node engine handlers. The handlers for node [v]
    may touch only [logical.(v)] and the information reaching them through
    the engine API; the shared context mirrors what a real deployment
    distributes out of band. *)

type ctx = {
  spec : Spec.t;
  graph : Gcs_graph.Graph.t;
  logical : Gcs_clock.Logical_clock.t array;
  now : unit -> float;
      (** Real time of the current event, supplied by the runner. Algorithms
          use it only to evaluate their own logical clock (which is a
          function of their hardware clock); they never compare it across
          nodes. *)
}

type t = {
  name : string;
  prepare : ctx -> int -> Message.t Gcs_sim.Engine.handlers;
      (** [prepare ctx] performs per-run static precomputation (e.g. the BFS
          tree) and returns the node factory; the runner applies it once and
          reuses the closure for every node. *)
}

(** Which of the built-in algorithms to run. [Dynamic_gradient_sync] is
    the dynamic-network gradient variant whose fresh edges tighten
    gradually (see {!Dynamic_gradient}); [Ft_gradient_sync f] is the
    fault-containing gradient variant tolerating up to [f] Byzantine
    neighbors per node (see {!Ft_gradient}). *)
type kind =
  | Free_run
  | Max_sync
  | Max_slew_sync
  | Tree_sync
  | Gradient_sync
  | Dynamic_gradient_sync
  | Ft_gradient_sync of int

val kind_name : kind -> string

val kind_of_string : string -> (kind, string) result
(** Accepts the [kind_name] spellings plus aliases; for the fault-tolerant
    gradient, ["ft-gradient-N"] selects budget [N], and ["ft-gradient"] or
    ["ft"] default to [N = 1]. *)

val all_kinds : kind list
(** One representative per algorithm family ([Ft_gradient_sync 1] for the
    fault-tolerant gradient). *)

val timer_beacon : int
(** Timer tag used by all algorithms for their periodic beacon/probe. *)

val timer_recheck : int
(** Timer tag used for trigger re-evaluation between beacons. *)
