module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Prng = Gcs_util.Prng

(* Two-stage estimate filter.

   Stage 1 *discards* every estimate outside the plausibility window
   [-w, w], w = (2f+1)*kappa. Discarding — rather than clamping — is what
   makes outrageous lies harmless rather than merely damped: an estimate
   pinned at the window edge would keep satisfying the fast trigger's
   "behind <= level" test forever (letting an ahead-lie drag a node away
   from its genuine neighbors without limit), whereas a discarded one is
   simply a silent neighbor. An outrageous liar is thereby exactly as
   harmful as a crashed node, and an in-window liar is bounded by [w] by
   construction: it can pin "behind" at [w] and stall the fast trigger,
   but only until the genuine skew itself reaches level [w]. [w] must be
   an odd multiple of kappa — the trigger fires at levels (2s+1)*kappa,
   so a window between the levels would leave the stalled trigger no
   level to fire at.

   Stage 2 trims the [f] highest and [f] lowest survivors, Bund-et-al
   style, but only down to a floor of 2f+1 — the connectivity their
   fault-tolerant gradient analysis requires. Below that the trigger's
   extremes may be a *single* genuine neighbor, and trimming would erase
   exactly the signal the gradient update needs (a node that can no
   longer see its one genuine leader will not chase it, and that skew has
   no other bound). On sparse topologies (lines, rings, grids: degree <=
   4) the trim is therefore inert and the window carries the weight; in
   dense neighborhoods it removes in-window lies before they can stall
   anything at all. *)
let filter_offsets ~f ~kappa offsets =
  let w = float_of_int ((2 * f) + 1) *. kappa in
  let kept =
    List.filter (fun o -> Float.abs o <= w) (Array.to_list offsets)
  in
  let kept = Array.of_list kept in
  let n = Array.length kept in
  let t = max 0 (min f ((n - (2 * f) - 1) / 2)) in
  if t = 0 then kept
  else begin
    Array.sort Float.compare kept;
    Array.sub kept t (n - (2 * t))
  end

let make_node ~f (ctx : Algorithm.ctx) v =
  let lc = ctx.logical.(v) in
  let spec = ctx.spec in
  let period = spec.beacon_period in
  let kappa = spec.kappa in
  let fast_mult = 1. +. spec.mu in
  let bounds = spec.delay in
  let flight_guess =
    0.5 *. (bounds.Delay_model.d_min +. bounds.Delay_model.d_max)
  in
  let estimators = ref [||] in
  let offsets_now (api : Message.t Engine.api) =
    let h = api.hardware () in
    let own = Logical_clock.value lc ~now:(ctx.now ()) in
    let known = ref [] in
    Array.iter
      (fun est ->
        match Offset_estimator.offset ~max_age:spec.Spec.staleness_limit est
                ~h_local:h ~own_value:own with
        | Some o -> known := o :: !known
        | None -> ())
      !estimators;
    Array.of_list !known
  in
  let evaluate (api : Message.t Engine.api) =
    let offsets = filter_offsets ~f ~kappa (offsets_now api) in
    let target =
      if Gradient_sync.fast_trigger ~kappa ~offsets then fast_mult else 1.
    in
    if Logical_clock.mult lc <> target then
      Logical_clock.set_mult lc ~now:(ctx.now ()) target
  in
  let broadcast (api : Message.t Engine.api) =
    let value = Logical_clock.value lc ~now:(ctx.now ()) in
    for port = 0 to api.ports - 1 do
      api.send ~port (Message.Beacon { value })
    done
  in
  let arm (api : Message.t Engine.api) ~tag delay =
    api.set_timer ~h:(api.hardware () +. delay) ~tag
  in
  {
    Engine.on_init =
      (fun api ->
        estimators := Array.init api.ports (fun _ -> Offset_estimator.create ());
        arm api ~tag:Algorithm.timer_beacon (Prng.uniform api.rng ~lo:0. ~hi:period);
        arm api ~tag:Algorithm.timer_recheck
          (Prng.uniform api.rng ~lo:0. ~hi:(period /. 2.)));
    on_message =
      (fun api ~port msg ->
        match msg with
        | Message.Beacon { value } ->
            Offset_estimator.update !estimators.(port)
              ~h_local:(api.hardware ()) ~remote_value:value
              ~elapsed_guess:flight_guess;
            evaluate api
        | Message.Probe _ | Message.Probe_reply _ | Message.Flood _
        | Message.Report _ | Message.Reset _ ->
            ());
    on_timer =
      (fun api ~tag ->
        if tag = Algorithm.timer_beacon then begin
          broadcast api;
          arm api ~tag:Algorithm.timer_beacon period
        end
        else if tag = Algorithm.timer_recheck then begin
          evaluate api;
          arm api ~tag:Algorithm.timer_recheck (period /. 2.)
        end);
  }

let algorithm f =
  if f < 0 then invalid_arg "Ft_gradient.algorithm: f must be >= 0";
  {
    Algorithm.name = Printf.sprintf "ft-gradient-%d" f;
    prepare = make_node ~f;
  }
