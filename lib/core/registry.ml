let get = function
  | Algorithm.Free_run -> Free_run.algorithm
  | Algorithm.Max_sync -> Max_sync.algorithm
  | Algorithm.Max_slew_sync -> Max_slew.algorithm
  | Algorithm.Tree_sync -> Tree_sync.algorithm
  | Algorithm.Gradient_sync -> Gradient_sync.algorithm
  | Algorithm.Dynamic_gradient_sync -> Dynamic_gradient.algorithm
  | Algorithm.Ft_gradient_sync f -> Ft_gradient.algorithm f

let all = List.map (fun k -> (k, get k)) Algorithm.all_kinds
