(** Fault-containing gradient synchronization.

    The plain gradient algorithm trusts every neighbor estimate, so a single
    Byzantine node that always advertises a lagging clock suppresses the
    fast trigger on its correct neighbors — the trigger needs a level [s]
    with [ahead >= (2s+1)*kappa] {e and} [behind <= (2s+1)*kappa], and the
    liar keeps [behind] pinned arbitrarily high while genuine drift grows
    the correct-correct skew without bound.

    This variant, in the spirit of Bund, Lenzen & Rosenbaum's fault-tolerant
    gradient clock synchronization, filters the neighbor estimates before
    the trigger. First it discards every estimate outside the plausibility
    window [[-w, w]] with [w = (2f+1)*kappa] — the trigger level of step
    [f] — so an outrageous liar degrades to a crashed (silent) neighbor,
    while an in-window liar can pin "behind" at [w] and stall the fast
    trigger only until the genuine skew itself reaches level [w]. Then it
    trims the [f] highest and [f] lowest survivors, down to a floor of
    [2f+1] estimates (the connectivity Bund et al.'s analysis requires;
    below it the extremes may be a single genuine neighbor whose signal
    trimming would erase). The result is a weakened-but-bounded
    correct-correct guarantee of roughly [(2f+1)*kappa] per edge plus
    estimation slack instead of the faultless bound — the classic
    fault-tolerance price. With no liars the filter is inert in steady
    state (all estimates sit well inside the window), so the algorithm
    degrades gracefully to the plain gradient's behaviour. *)

val filter_offsets : f:int -> kappa:float -> float array -> float array
(** [filter_offsets ~f ~kappa offsets] drops estimates with magnitude
    above [(2f+1)*kappa], then trims [min f ((n-2f-1)/2)] entries from
    each end of the sorted survivors (never going below [2f+1] kept).
    Exposed for unit tests. *)

val algorithm : int -> Algorithm.t
(** [algorithm f] tolerates up to [f] Byzantine neighbors per node. Raises
    [Invalid_argument] if [f < 0]. *)
