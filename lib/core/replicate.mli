(** Replication across seeds: mean and spread for any scalar measurement.

    A single simulation is one sample from the seed space; experiment
    tables that report a lone number conflate signal with seed luck. This
    helper reruns a measurement over a seed batch and reports mean, sample
    standard deviation, extremes, and a normal-approximation 95% confidence
    half-width — enough to print "12.3 ± 0.4" rows. *)

type summary = {
  mean : float;
  stddev : float;
  min : float;
  max : float;
  ci95 : float;  (** 1.96 * stddev / sqrt n; 0 for a single seed *)
  trials : int;
}

val measure : ?jobs:int -> seeds:int list -> (int -> float) -> summary
(** [measure ~seeds f] runs [f seed] for each seed. Raises
    [Invalid_argument] on an empty seed list. With [~jobs] > 1 the seeds
    are sharded across that many domains via {!Gcs_util.Pool} (default 1,
    i.e. serial); [f] must be pure modulo its seed, in which case the
    summary is identical for every [jobs]. *)

val measure_runs :
  ?jobs:int ->
  ?store:Gcs_store.Store.t ->
  seeds:int list ->
  key:(int -> Gcs_store.Key.t option) ->
  config:(int -> Runner.config) ->
  metric:(Gcs_store.Outcome.t -> float) ->
  unit ->
  summary * Parallel_run.cache_stats
(** Cache-aware {!measure} for measurements that are full simulation runs:
    [key seed] names the run (return [None] for uncacheable configs),
    [config seed] builds it, [metric] reduces its stored outcome to the
    scalar being replicated. Runs found in [store] are not re-simulated;
    fresh runs are persisted as they complete. The summary is identical to
    [measure ~seeds (fun s -> metric (Runner.outcome (Runner.run (config
    s))))] whatever mix of hits and misses served it. *)

val seeds : ?base:int -> int -> int list
(** [seeds n] is a standard batch of [n] distinct seeds. *)

val to_string : ?digits:int -> summary -> string
(** ["mean ± ci95"] with the given precision (default 3). *)
