module Engine = Gcs_sim.Engine
module Delay_model = Gcs_sim.Delay_model
module Fault_plan = Gcs_sim.Fault_plan
module Graph = Gcs_graph.Graph
module Drift = Gcs_clock.Drift
module Hardware_clock = Gcs_clock.Hardware_clock
module Logical_clock = Gcs_clock.Logical_clock
module Prng = Gcs_util.Prng
module Scheduler = Gcs_util.Scheduler
module Capture = Gcs_obs.Capture
module Event_log = Gcs_obs.Event_log
module Series = Gcs_obs.Series
module Profiler = Gcs_obs.Profiler

type delay_kind =
  | Uniform_delays
  | Fixed_delays
  | Midpoint_delays
  | Controlled_delays
  | Per_edge_delays of (int -> Delay_model.bounds)

type loss_law =
  | No_loss
  | Uniform_loss of float
  | Custom_loss of (edge:int -> src:int -> dst:int -> now:float -> float)

type config = {
  spec : Spec.t;
  graph : Graph.t;
  algo : Algorithm.kind;
  drift_of_node : int -> Drift.pattern;
  delay_kind : delay_kind;
  loss : loss_law;
  horizon : float;
  sample_period : float;
  warmup : float;
  seed : int;
  initial_value_of_node : int -> float;
  override : Algorithm.t option;
  fault_plan : Fault_plan.t option;
  obs : Capture.request;
  scheduler : Scheduler.kind;
  regions : int;
}

let config ?(spec = Spec.make ()) ?(algo = Algorithm.Gradient_sync)
    ?(drift_of_node = fun _ -> Drift.Random_constant)
    ?(delay_kind = Uniform_delays) ?(loss = No_loss) ?(horizon = 200.)
    ?(sample_period = 1.) ?warmup ?(seed = 42)
    ?(initial_value_of_node = fun _ -> 0.) ?override ?fault_plan
    ?(obs = Capture.none) ?(scheduler = Scheduler.Binary_heap) ?(regions = 1)
    graph =
  let warmup = match warmup with Some w -> w | None -> horizon /. 4. in
  if horizon <= 0. then invalid_arg "Runner.config: horizon must be > 0";
  if sample_period <= 0. then
    invalid_arg "Runner.config: sample_period must be > 0";
  if regions < 1 then invalid_arg "Runner.config: regions must be >= 1";
  (match obs.Capture.series_period with
  | Some p when p <= 0. ->
      invalid_arg "Runner.config: series period must be > 0"
  | Some _ | None -> ());
  (match loss with
  | Uniform_loss p when p < 0. || p > 1. ->
      invalid_arg "Runner.config: loss probability out of [0, 1]"
  | No_loss | Uniform_loss _ | Custom_loss _ -> ());
  {
    spec;
    graph;
    algo;
    drift_of_node;
    delay_kind;
    loss;
    horizon;
    sample_period;
    warmup;
    seed;
    initial_value_of_node;
    override;
    fault_plan;
    obs;
    scheduler;
    regions;
  }

type live = {
  cfg : config;
  engine : Message.t Engine.t;
  logical : Logical_clock.t array;
  chooser : Delay_model.chooser option ref;
  samples_rev : Metrics.sample list ref;
  event_log : Event_log.t option;
  series : Series.t option;
  profiler : Profiler.t option;
}

type result = {
  graph : Graph.t;
  spec : Spec.t;
  samples : Metrics.sample array;
  summary : Metrics.summary;
  events : int;
  messages : int;
  dropped : int;
  dropped_faults : int;
  dispatches : int;
  jumps : Logical_clock.jump_stats;
  fault_report : Fault_metrics.report option;
  obs : Capture.captured;
}

let snapshot_values live =
  let now = Engine.now live.engine in
  Array.map (fun lc -> Logical_clock.value lc ~now) live.logical

let snapshot live =
  { Metrics.time = Engine.now live.engine; values = snapshot_values live }

(* The message-level windows of a fault plan, compiled to the engine's
   tamper and lie hooks. Pure construction — no engine required — so the
   hooks travel in the engine's declarative {!Engine.config} rather than
   being bolted on after creation. All tampering randomness comes from the
   engine's dedicated per-edge fault streams (the [rng] each hook
   receives), so the node and link streams — and with them any fault-free
   portion of the run — are untouched. *)
let fault_hooks (cfg : config) plan =
  (match Fault_plan.validate plan cfg.graph with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner: invalid fault plan: " ^ msg));
  let g = cfg.graph in
  let m = Graph.m g in
  let dup_w = Array.make m [] in
  let reorder_w = Array.make m [] in
  let corrupt_w = Array.make m [] in
  let byz_w = Array.make (Graph.n g) [] in
  let add_window arr edges w =
    List.iter (fun e -> arr.(e) <- arr.(e) @ [ w ]) (Fault_plan.resolve_edges g edges)
  in
  List.iter
    (fun ev ->
      match ev with
      | Fault_plan.Link_partition _ | Fault_plan.Link_heal _
      | Fault_plan.Node_crash _ | Fault_plan.Node_recover _
      | Fault_plan.Clock_jump _ | Fault_plan.Clock_rate_fault _ ->
          () (* timed actions; scheduled by [schedule_fault_controls] *)
      | Fault_plan.Msg_duplicate { from_; until; edges; prob } ->
          add_window dup_w edges (from_, until, prob)
      | Fault_plan.Msg_reorder { from_; until; edges; prob; extra } ->
          add_window reorder_w edges (from_, until, (prob, extra))
      | Fault_plan.Msg_corrupt { from_; until; edges; prob; magnitude } ->
          add_window corrupt_w edges (from_, until, (prob, magnitude))
      | Fault_plan.Byzantine { from_; until; node; strategy } ->
          byz_w.(node) <- byz_w.(node) @ [ (from_, until, strategy) ])
    (Fault_plan.events plan);
  let has_windows a = Array.exists (fun l -> l <> []) a in
  let active windows now =
    List.find_map
      (fun (from_, until, x) ->
        if from_ <= now && now < until then Some x else None)
      windows
  in
  let tamper =
    if not (has_windows dup_w || has_windows reorder_w || has_windows corrupt_w)
    then None
    else
      Some
        {
        Engine.extra_delay =
          (fun ~edge ~now ~rng ->
            match active reorder_w.(edge) now with
            | None -> 0.
            | Some (prob, extra) ->
                if Prng.float rng 1.0 < prob then
                  Prng.uniform rng ~lo:0. ~hi:extra
                else 0.);
        corrupt =
          (fun ~edge ~now ~rng msg ->
            match active corrupt_w.(edge) now with
            | None -> None
            | Some (prob, magnitude) ->
                if Prng.float rng 1.0 >= prob then None
                else
                  (* Draw unconditionally so the stream advances the same
                     way whatever the message variant. *)
                  let delta =
                    Prng.uniform rng ~lo:(-.magnitude) ~hi:magnitude
                  in
                  (match msg with
                  | Message.Beacon { value } ->
                      Some (Message.Beacon { value = value +. delta })
                  | Message.Probe_reply { seq; h_send; remote_value } ->
                      Some
                        (Message.Probe_reply
                           { seq; h_send; remote_value = remote_value +. delta })
                  | Message.Flood { round; payload } ->
                      Some (Message.Flood { round; payload = payload +. delta })
                  | Message.Probe _ | Message.Report _ | Message.Reset _ ->
                      None));
          duplicate =
            (fun ~edge ~now ~rng ->
              match active dup_w.(edge) now with
              | None -> false
              | Some prob -> Prng.float rng 1.0 < prob);
        }
  in
  (* Byzantine rewrite, keyed by the sending node. Randomness (Lie_random
     only) comes from the sender's dedicated Byzantine stream, split after
     every other stream, so plans without Byzantine events never perturb a
     draw — the whole run stays bit-identical to a pre-Byzantine engine. *)
  let lie =
    if not (has_windows byz_w) then None
    else
      Some
        (fun ~src ~dst ~now ~rng msg ->
        match
          List.find_map
            (fun (from_, until, s) ->
              if from_ <= now && now < until then Some (from_, s) else None)
            byz_w.(src)
        with
        | None -> None
        | Some (from_, strategy) ->
            let delta =
              match strategy with
              | Fault_plan.Lie_constant off -> off
              | Fault_plan.Lie_drifting rate -> rate *. (now -. from_)
              | Fault_plan.Lie_random mag ->
                  Prng.uniform rng ~lo:(-.mag) ~hi:mag
              | Fault_plan.Lie_equivocate mag ->
                  (* A deterministic split-brain: everyone on the liar's
                     higher-id side hears "ahead", the lower-id side hears
                     "behind" — no two sides can reconcile what they saw. *)
                  if dst > src then mag else -.mag
            in
            (match msg with
            | Message.Beacon { value } ->
                Some (Message.Beacon { value = value +. delta })
            | Message.Probe_reply { seq; h_send; remote_value } ->
                Some
                  (Message.Probe_reply
                     { seq; h_send; remote_value = remote_value +. delta })
            | Message.Flood { round; payload } ->
                Some (Message.Flood { round; payload = payload +. delta })
            | Message.Probe _ | Message.Report _ | Message.Reset _ -> None))
  in
  (tamper, lie)

(* The timed actions of a fault plan, scheduled as engine controls. Runs
   after the metric probes are armed so control sequence numbers are
   assigned in the same order they always were (run byte-identity depends
   on it). The plan was validated by [fault_hooks]. *)
let schedule_fault_controls engine logical plan =
  let g = Engine.graph engine in
  let sched at f = Engine.schedule_control engine ~at f in
  List.iter
    (fun ev ->
      match ev with
      | Fault_plan.Link_partition { at; edges } ->
          let ids = Fault_plan.resolve_edges g edges in
          sched at (fun () ->
              List.iter (fun e -> Engine.set_edge_up engine ~edge:e ~up:false) ids)
      | Fault_plan.Link_heal { at; edges } ->
          let ids = Fault_plan.resolve_edges g edges in
          sched at (fun () ->
              List.iter (fun e -> Engine.set_edge_up engine ~edge:e ~up:true) ids)
      | Fault_plan.Node_crash { at; node } ->
          sched at (fun () -> Engine.crash_node engine ~node)
      | Fault_plan.Node_recover { at; node; wipe } ->
          sched at (fun () -> Engine.recover_node engine ~node ~wipe)
      | Fault_plan.Clock_jump { at; node; delta } ->
          sched at (fun () ->
              Logical_clock.advance logical.(node) ~now:(Engine.now engine)
                delta)
      | Fault_plan.Clock_rate_fault { at; node; rate } ->
          sched at (fun () -> Engine.set_node_rate engine ~node ~rate)
      | Fault_plan.Msg_duplicate _ | Fault_plan.Msg_reorder _
      | Fault_plan.Msg_corrupt _ | Fault_plan.Byzantine _ ->
          () (* window faults; compiled into hooks by [fault_hooks] *))
    (Fault_plan.events plan)

(* Resolve the effective region count for one run. Parallel execution is
   an optimisation that must be invisible: any configuration whose replay
   at a window barrier could consume randomness in a different order than
   the serial engine — an adversarial delay chooser (installed mid-run),
   a custom loss closure, a Byzantine plan combined with message loss
   (the serial engine draws the drop before the lie; the parallel engine
   applies the lie at send time) — falls back to serial, as does a
   profiled run (the dispatch hook brackets handlers on one thread).
   Everything else is byte-identical at any region count. *)
let effective_regions (cfg : config) =
  if cfg.regions <= 1 then 1
  else if cfg.obs.Capture.profile then 1
  else
    match cfg.delay_kind with
    | Controlled_delays -> 1
    | Uniform_delays | Fixed_delays | Midpoint_delays | Per_edge_delays _ -> (
        let has_byz =
          match cfg.fault_plan with
          | Some plan -> Fault_plan.byzantine_nodes plan <> []
          | None -> false
        in
        match cfg.loss with
        | Custom_loss _ -> 1
        | Uniform_loss p when p > 0. && has_byz -> 1
        | No_loss | Uniform_loss _ -> cfg.regions)

let prepare (cfg : config) =
  (match Spec.validate cfg.spec with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Runner.prepare: " ^ msg));
  let n = Graph.n cfg.graph in
  let t0 = 0. in
  let rng = Prng.create ~seed:cfg.seed in
  let drift_rng = Prng.split rng in
  let engine_rng = Prng.split rng in
  let band = Drift.band ~rho:cfg.spec.rho in
  let clocks =
    Array.init n (fun v ->
        Drift.make_clock (cfg.drift_of_node v) ~band ~t0 ~horizon:cfg.horizon
          ~rng:drift_rng)
  in
  let logical =
    Array.init n (fun v ->
        Logical_clock.create ~hardware:clocks.(v) ~now:t0
          ~value:(cfg.initial_value_of_node v) ~mult:1.)
  in
  let chooser = ref None in
  let delays =
    let b = cfg.spec.delay in
    let base =
      match cfg.delay_kind with
      | Uniform_delays -> Delay_model.uniform b
      | Fixed_delays -> Delay_model.fixed b
      | Midpoint_delays -> Delay_model.midpoint b
      | Controlled_delays ->
          Delay_model.controlled b ~default:(Delay_model.uniform b) chooser
      | Per_edge_delays edge_bounds -> Delay_model.per_edge edge_bounds
    in
    match cfg.loss with
    | No_loss -> base
    | Uniform_loss p ->
        Delay_model.with_loss (fun ~edge:_ ~src:_ ~dst:_ ~now:_ -> p) base
    | Custom_loss f -> Delay_model.with_loss f base
  in
  let engine_cell = ref None in
  let now () =
    match !engine_cell with Some e -> Engine.now e | None -> t0
  in
  let ctx = { Algorithm.spec = cfg.spec; graph = cfg.graph; logical; now } in
  let implementation =
    match cfg.override with Some a -> a | None -> Registry.get cfg.algo
  in
  let make_node = implementation.Algorithm.prepare ctx in
  (* Everything the engine needs is described up front — observers,
     instrumentation, fault hooks, scheduler, parallelism — and handed to
     [Engine.of_config] in one declarative value. Sinks are materialised
     fresh for every run from the pure [obs] request, so captures never
     leak across the runs of a sweep. *)
  let tamper, lie =
    match cfg.fault_plan with
    | None -> (None, None)
    | Some plan -> fault_hooks cfg plan
  in
  let event_log =
    if not cfg.obs.Capture.events then None
    else
      Some
        (Event_log.create ?capacity:cfg.obs.Capture.events_capacity
           ?stream:cfg.obs.Capture.events_stream
           ~format_:cfg.obs.Capture.events_format ())
  in
  let series =
    match cfg.obs.Capture.series_period with
    | None -> None
    | Some _ -> Some (Series.create ())
  in
  let profiler =
    if not cfg.obs.Capture.profile then None else Some (Profiler.create ())
  in
  let engine =
    Engine.of_config
      (Engine.config ~scheduler:cfg.scheduler
         ~regions:(effective_regions cfg)
         ~observers:
           (match event_log with
           | None -> []
           | Some log -> [ Event_log.record log ])
         ?hook:(Option.map Profiler.hooks profiler)
         ~hook_every:
           (match profiler with
           | None -> 1
           | Some p -> Profiler.sample_every p)
         ?tamper ?lie ~graph:cfg.graph ~clocks ~delays ~rng:engine_rng
         ~make_node ~t0 ())
  in
  engine_cell := Some engine;
  let live =
    { cfg; engine; logical; chooser; samples_rev = ref []; event_log; series;
      profiler }
  in
  let rec probe at =
    Engine.schedule_control engine ~at (fun () ->
        live.samples_rev := snapshot live :: !(live.samples_rev);
        let next = at +. cfg.sample_period in
        if next <= cfg.horizon +. 1e-9 then probe next)
  in
  probe t0;
  (match (series, cfg.obs.Capture.series_period) with
  | Some series, Some period ->
      let pctx =
        if cfg.obs.Capture.series_profile then
          Some
            (Metrics.profile_ctx
               ~dist:(Gcs_graph.Shortest_path.all_pairs cfg.graph))
        else None
      in
      let point () =
        let now = Engine.now engine in
        let values = snapshot_values live in
        let profile =
          match pctx with
          | None -> [||]
          | Some ctx ->
              Array.mapi
                (fun i s -> (i + 1, s))
                (Metrics.gradient_profile_ctx ctx values)
        in
        {
          Series.time = now;
          global_skew = Metrics.global_skew values;
          local_skew = Metrics.local_skew cfg.graph values;
          profile;
          values = (if cfg.obs.Capture.series_values then values else [||]);
          rates =
            (if cfg.obs.Capture.series_rates then
               Array.map (fun c -> Hardware_clock.rate_at c ~now) clocks
             else [||]);
          watched =
            (match cfg.obs.Capture.series_watch with
            | [] -> [||]
            | pairs ->
                Array.of_list
                  (List.map
                     (fun (u, v) ->
                       Float.abs (values.(u) -. values.(v)))
                     pairs));
        }
      in
      let rec sprobe at =
        Engine.schedule_control engine ~at (fun () ->
            Series.record series (point ());
            let next = at +. period in
            if next <= cfg.horizon +. 1e-9 then sprobe next)
      in
      sprobe t0
  | _ -> ());
  (match cfg.fault_plan with
  | None -> ()
  | Some plan -> schedule_fault_controls engine logical plan);
  live

let aggregate_jumps logical =
  Array.fold_left
    (fun acc lc ->
      let s = Logical_clock.jump_stats lc in
      {
        Logical_clock.count = acc.Logical_clock.count + s.Logical_clock.count;
        total_magnitude =
          acc.Logical_clock.total_magnitude +. s.Logical_clock.total_magnitude;
        max_magnitude =
          Float.max acc.Logical_clock.max_magnitude
            s.Logical_clock.max_magnitude;
      })
    { Logical_clock.count = 0; total_magnitude = 0.; max_magnitude = 0. }
    logical

let complete live =
  let cfg = live.cfg in
  (match live.profiler with
  | None -> Engine.run_until live.engine cfg.horizon
  | Some prof ->
      (* Same event sequence as a single run_until — the engine only ever
         advances monotonically — but each window gets its own phase. *)
      let split = Float.min (Float.max cfg.warmup 0.) cfg.horizon in
      Profiler.phase prof "warmup" (fun () ->
          Engine.run_until live.engine split);
      Profiler.phase prof "measure" (fun () ->
          Engine.run_until live.engine cfg.horizon));
  (* The delay model's closure captured [live.chooser] at [prepare] time;
     clearing the cell here ends the chooser's lifetime with the run, so an
     adversary installed for this run can never leak into later draws on a
     retained engine (or into an unrelated run sharing the installer). *)
  live.chooser := None;
  let samples = Array.of_list (List.rev !(live.samples_rev)) in
  let summary =
    (* A horizon shorter than the warm-up leaves no qualifying samples;
       fall back to summarizing everything instead of trapping. *)
    match Metrics.summarize_opt cfg.graph samples ~after:cfg.warmup with
    | Some s -> s
    | None -> Metrics.summarize cfg.graph samples ~after:neg_infinity
  in
  let fault_report =
    match cfg.fault_plan with
    | None -> None
    | Some plan ->
        Some
          (Fault_metrics.evaluate
             ~byzantine:(Fault_plan.byzantine_nodes plan)
             ~lied:(Engine.messages_lied live.engine)
             ~after:cfg.warmup ~spec:cfg.spec ~graph:cfg.graph ~samples
             ~episodes:(Fault_plan.episodes plan cfg.graph)
             ~dropped_faults:(Engine.messages_dropped_faults live.engine)
             ~duplicated:(Engine.messages_duplicated live.engine)
             ~corrupted:(Engine.messages_corrupted live.engine) ())
  in
  {
    graph = cfg.graph;
    spec = cfg.spec;
    samples;
    summary;
    events = Engine.events_processed live.engine;
    messages = Engine.messages_sent live.engine;
    dropped = Engine.messages_dropped live.engine;
    dropped_faults = Engine.messages_dropped_faults live.engine;
    dispatches =
      Engine.dispatch_count live.engine Engine.Dispatch_deliver
      + Engine.dispatch_count live.engine Engine.Dispatch_timer
      + Engine.dispatch_count live.engine Engine.Dispatch_control;
    jumps = aggregate_jumps live.logical;
    fault_report;
    obs =
      {
        Capture.event_log = live.event_log;
        series = live.series;
        profile =
          Option.map
            (fun p ->
              Profiler.finish p
                ~events:(Engine.events_processed live.engine)
                ~messages:(Engine.messages_sent live.engine)
                ~deliver_count:
                  (Engine.dispatch_count live.engine Engine.Dispatch_deliver)
                ~timer_count:
                  (Engine.dispatch_count live.engine Engine.Dispatch_timer)
                ~control_count:
                  (Engine.dispatch_count live.engine Engine.Dispatch_control)
                ~heap_high_water:(Engine.heap_high_water live.engine))
            live.profiler;
      };
  }

let run cfg = complete (prepare cfg)

let store_key ?(drift = "random") ?(loss = 0.) ?(sample_period = 1.) ?warmup
    ?fault_plan ~spec ~topology ~algo ~horizon ~seed () =
  let warmup = match warmup with Some w -> w | None -> horizon /. 4. in
  Gcs_store.Key.make ~drift ~loss ?fault_plan ~rho:spec.Spec.rho
    ~mu:spec.Spec.mu ~d_min:(Spec.d_min spec) ~d_max:(Spec.d_max spec)
    ~beacon_period:spec.Spec.beacon_period ~kappa:spec.Spec.kappa
    ~staleness_limit:spec.Spec.staleness_limit ~topology
    ~algo:(Algorithm.kind_name algo) ~horizon ~sample_period ~warmup ~seed ()

(* The inverse of [store_key] over the describable subset: rebuild the
   runnable config a canonical key denotes. The graph is reconstructed with
   the sweep convention (seed lxor 0x5eed), so re-simulating the config
   reproduces the run the key addresses bit for bit. *)
let config_of_key (key : Gcs_store.Key.t) =
  match
    ( Algorithm.kind_of_string key.Gcs_store.Key.algo,
      Drift.pattern_of_string key.Gcs_store.Key.drift )
  with
  | Error msg, _ -> Error ("config_of_key: " ^ msg)
  | _, Error msg -> Error ("config_of_key: " ^ msg)
  | Ok algo, Ok pattern -> (
      try
        let spec =
          Spec.make ~rho:key.Gcs_store.Key.rho ~mu:key.Gcs_store.Key.mu
            ~d_min:key.Gcs_store.Key.d_min ~d_max:key.Gcs_store.Key.d_max
            ~beacon_period:key.Gcs_store.Key.beacon_period
            ~kappa:key.Gcs_store.Key.kappa
            ~staleness_limit:key.Gcs_store.Key.staleness_limit ()
        in
        let graph =
          Gcs_graph.Topology.build key.Gcs_store.Key.topology
            ~rng:(Prng.create ~seed:(key.Gcs_store.Key.seed lxor 0x5eed))
        in
        let loss =
          if key.Gcs_store.Key.loss > 0. then
            Uniform_loss key.Gcs_store.Key.loss
          else No_loss
        in
        Ok
          (config ~spec ~algo
             ~drift_of_node:(fun _ -> pattern)
             ~loss ~horizon:key.Gcs_store.Key.horizon
             ~sample_period:key.Gcs_store.Key.sample_period
             ~warmup:key.Gcs_store.Key.warmup ~seed:key.Gcs_store.Key.seed
             ?fault_plan:key.Gcs_store.Key.fault_plan graph)
      with Invalid_argument msg -> Error ("config_of_key: " ^ msg))

let outcome (r : result) =
  let fault =
    Option.map
      (fun rep ->
        {
          Gcs_store.Outcome.transient = Fault_metrics.worst_transient rep;
          fault_drops = rep.Fault_metrics.dropped_faults;
          resync = Fault_metrics.max_time_to_resync rep;
        })
      r.fault_report
  in
  {
    Gcs_store.Outcome.nodes = Graph.n r.graph;
    edges = Graph.m r.graph;
    diameter = Gcs_graph.Shortest_path.diameter r.graph;
    max_global = r.summary.Metrics.max_global;
    max_local = r.summary.Metrics.max_local;
    mean_local = r.summary.Metrics.mean_local;
    p99_local = r.summary.Metrics.p99_local;
    final_global = r.summary.Metrics.final_global;
    final_local = r.summary.Metrics.final_local;
    samples_used = r.summary.Metrics.samples_used;
    messages = r.messages;
    dropped = r.dropped;
    dropped_faults = r.dropped_faults;
    events = r.events;
    jump_count = r.jumps.Logical_clock.count;
    jump_total = r.jumps.Logical_clock.total_magnitude;
    jump_max = r.jumps.Logical_clock.max_magnitude;
    fault;
  }
