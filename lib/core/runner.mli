(** Assemble a full simulation: topology + clocks + delays + algorithm.

    [run] is the one-call entry point used by examples and benchmarks.
    [prepare] / [complete] split the same pipeline so that a controller
    (the lower-bound adversary, a failure injector, a custom probe) can
    attach to the live engine between construction and execution. *)

type delay_kind =
  | Uniform_delays  (** i.i.d. uniform in the delay band (benign default) *)
  | Fixed_delays  (** always d_max: zero jitter, maximal latency *)
  | Midpoint_delays  (** always the band midpoint: zero effective error *)
  | Controlled_delays
      (** uniform until a chooser is installed in [live.chooser] *)
  | Per_edge_delays of (int -> Gcs_sim.Delay_model.bounds)
      (** heterogeneous networks: uniform draw within each edge's own
          bounds (pair with [Gradient_hetero]) *)

(** Message-loss law applied on top of the delay model. Beacon-based
    synchronization is soft state, so algorithms degrade gracefully rather
    than wedging when messages vanish. *)
type loss_law =
  | No_loss
  | Uniform_loss of float  (** i.i.d. drop probability per message *)
  | Custom_loss of (edge:int -> src:int -> dst:int -> now:float -> float)
      (** per-edge, per-direction, time-dependent; probability 1 during an
          interval models a down link (churn), probability 1 for all
          messages out of a node models a crashed/silenced node *)

type config = {
  spec : Spec.t;
  graph : Gcs_graph.Graph.t;
  algo : Algorithm.kind;
  drift_of_node : int -> Gcs_clock.Drift.pattern;
  delay_kind : delay_kind;
  loss : loss_law;
  horizon : float;  (** real-time length of the run *)
  sample_period : float;  (** metric sampling interval *)
  warmup : float;  (** samples before this time are excluded from summaries *)
  seed : int;
  initial_value_of_node : int -> float;
      (** initial logical clock values (the model allows adversarial
          initialization; default 0 everywhere) *)
  override : Algorithm.t option;
      (** when set, run this implementation instead of the one [algo] names
          (used for wrapped algorithms, e.g. {!Stabilize.wrap}) *)
  fault_plan : Gcs_sim.Fault_plan.t option;
      (** scheduled fault injection (partitions, crash-recover, message
          tampering, clock faults); installed on the engine by [prepare]
          and evaluated into [result.fault_report] by [complete] *)
  obs : Gcs_obs.Capture.request;
      (** which observability sinks to install. [prepare] materialises
          fresh sinks from this pure description for every run, so the
          same request is safe to share across a sweep; the finished sinks
          come back in [result.obs]. Sinks are engine observers: they
          never touch algorithm state or randomness, so enabling them
          changes no summary (only [result.events], since the series
          probe schedules control events). *)
  scheduler : Gcs_util.Scheduler.kind;
      (** event-queue implementation the engine runs on; pure execution
          strategy, so results are byte-identical for every kind (which is
          why it is absent from [store_key]) *)
  regions : int;
      (** requested region-parallel domains (default 1 = serial). Also a
          pure execution strategy: any configuration the parallel engine
          could not reproduce bit-for-bit (adversarial delay choosers,
          custom loss closures, Byzantine plans under message loss,
          profiled runs) silently falls back to serial, so results are
          byte-identical for every value — and, like [scheduler], it is
          excluded from [store_key]. *)
}

val config :
  ?spec:Spec.t ->
  ?algo:Algorithm.kind ->
  ?drift_of_node:(int -> Gcs_clock.Drift.pattern) ->
  ?delay_kind:delay_kind ->
  ?loss:loss_law ->
  ?horizon:float ->
  ?sample_period:float ->
  ?warmup:float ->
  ?seed:int ->
  ?initial_value_of_node:(int -> float) ->
  ?override:Algorithm.t ->
  ?fault_plan:Gcs_sim.Fault_plan.t ->
  ?obs:Gcs_obs.Capture.request ->
  ?scheduler:Gcs_util.Scheduler.kind ->
  ?regions:int ->
  Gcs_graph.Graph.t ->
  config
(** Defaults: default spec, [Gradient_sync], random-constant drift per node,
    uniform delays, horizon 200, sampling every 1, warm-up 1/4 of the
    horizon, seed 42, all clocks starting at 0, no faults, no capture
    ([Gcs_obs.Capture.none]), binary-heap scheduler, serial execution
    ([regions = 1]). *)

type live = {
  cfg : config;
  engine : Message.t Gcs_sim.Engine.t;
  logical : Gcs_clock.Logical_clock.t array;
  chooser : Gcs_sim.Delay_model.chooser option ref;
      (** Adversarial delay hook; only honoured under [Controlled_delays]. *)
  samples_rev : Metrics.sample list ref;
      (** Collected samples, newest first; consumed by [complete]. *)
  event_log : Gcs_obs.Event_log.t option;
      (** Installed when [cfg.obs.events]; already attached. *)
  series : Gcs_obs.Series.t option;
      (** Installed when [cfg.obs.series_period] is set; fed by its own
          control-event probe at that cadence. *)
  profiler : Gcs_obs.Profiler.t option;
      (** Installed when [cfg.obs.profile]; wired to the engine's dispatch
          hooks. [complete] finishes it into [result.obs.profile]. *)
}

type result = {
  graph : Gcs_graph.Graph.t;
  spec : Spec.t;
  samples : Metrics.sample array;
  summary : Metrics.summary;
  events : int;
  messages : int;
  dropped : int;  (** messages lost to the loss law *)
  dropped_faults : int;
      (** messages lost to partitions or crashed receivers (zero without a
          fault plan) *)
  dispatches : int;
      (** total engine dispatches (deliveries + timers + control events)
          this run performed — exactly zero for a result served from the
          experiment store, which is how cache-correctness assertions
          distinguish "simulated" from "recalled" *)
  jumps : Gcs_clock.Logical_clock.jump_stats;
      (** aggregate clock discontinuities across all nodes; non-zero only
          for jump-based algorithms, which thereby step outside the
          model's bounded-rate output requirement *)
  fault_report : Fault_metrics.report option;
      (** recovery metrics per fault episode; [Some] iff a fault plan was
          configured *)
  obs : Gcs_obs.Capture.captured;
      (** the sinks requested by [config.obs], now holding this run's
          capture; [Gcs_obs.Capture.empty] when nothing was requested, so
          results without capture still compare structurally equal (the
          determinism checks rely on this) *)
}

val prepare : config -> live
(** Build the engine with the algorithm installed and the metric probe
    armed, without running anything. *)

val complete : live -> result
(** Run to the horizon and package metrics. Also resets [live.chooser] to
    [None]: a chooser's lifetime ends with the run it was installed for,
    so an adversary hook can never leak into later draws on a retained
    engine or into an unrelated run. *)

val run : config -> result
(** [complete (prepare cfg)]. *)

val snapshot : live -> Metrics.sample
(** Current true logical clock values (observer access; usable from control
    closures while the run is live). *)

val store_key :
  ?drift:string ->
  ?loss:float ->
  ?sample_period:float ->
  ?warmup:float ->
  ?fault_plan:Gcs_sim.Fault_plan.t ->
  spec:Spec.t ->
  topology:Gcs_graph.Topology.spec ->
  algo:Algorithm.kind ->
  horizon:float ->
  seed:int ->
  unit ->
  Gcs_store.Key.t
(** The canonical store key of the run a [config] built from these inputs
    would perform. Defaults mirror {!config}: [drift] ["random"]
    (per-node random-constant), [loss] [0.], [sample_period] [1.],
    [warmup] [horizon /. 4.]. A key exists only for describable runs —
    topology by spec (the graph must be built from it with the sweep
    convention, [Topology.build ~rng:(Prng.create ~seed:(seed lxor
    0x5eed))]), drift by pattern string, loss by uniform probability — so
    custom delay choosers, overrides, or bespoke graphs are simply
    uncacheable, not mis-cached. *)

val config_of_key : Gcs_store.Key.t -> (config, string) Stdlib.result
(** The inverse of {!store_key} over the describable subset: rebuild the
    runnable config a canonical key denotes, reconstructing the graph from
    the topology spec with the sweep convention, the drift law from its
    pattern string, and the loss law from its probability. Re-running the
    config reproduces the addressed run bit for bit — this is how the
    conformance harness replays and shrinks counterexamples from a
    [.repro] artifact alone. [Error] on unparseable algorithm or drift
    names and on spec/config values {!config} would reject. *)

val outcome : result -> Gcs_store.Outcome.t
(** Flatten a result to the primitive record the store persists (summary,
    counters, jump stats, fault report; the graph reduced to
    nodes/edges/diameter). Lossless for everything a sweep row needs:
    [Report.outcome_row] renders identical bytes from a fresh result and
    its stored outcome. *)
