(** Skew metrics: the quantities the GCS problem is about.

    All metrics are computed by the omniscient observer from true logical
    clock values sampled during a run; algorithms never see them. *)

type sample = { time : float; values : float array }
(** Logical clock readings of every node at one real time. *)

val global_skew : float array -> float
(** max_{v,w} (L_v - L_w). *)

val local_skew : Gcs_graph.Graph.t -> float array -> float
(** max over edges of |L_v - L_w|. *)

val local_skew_edges : Gcs_graph.Graph.t -> float array -> float array
(** Per-edge |L_v - L_w|, indexed by edge id. *)

val skew_on_edges : Gcs_graph.Graph.t -> int list -> float array -> float
(** Max |L_v - L_w| over the given edge ids ([0.] for an empty list); the
    restriction of local skew used by fault-recovery metrics. *)

val real_time_skew : time:float -> float array -> float
(** max_v |L_v - t|: offset to true time (meaningful only for experiments
    that compare against real time; internal synchronization cannot bound
    it). *)

val global_skew_alive : alive:(int -> bool) -> float array -> float
(** Global skew restricted to nodes for which [alive] holds (crashed nodes
    freewheel and are excluded from the objective). *)

val local_skew_alive :
  Gcs_graph.Graph.t -> alive:(int -> bool) -> float array -> float
(** Local skew over edges whose both endpoints are alive. *)

val gradient_profile : dist:int array array -> float array -> float array
(** [gradient_profile ~dist values] returns an array [g] of length
    [diameter] where [g.(k - 1)] is the maximum |L_v - L_w| over node pairs
    at hop distance exactly [k] — the empirical gradient function f(k). *)

type profile_ctx
(** Precomputed flat pair list for repeated profile evaluation. *)

val profile_ctx : dist:int array array -> profile_ctx
(** Build once per graph; amortises the distance-matrix scan so each
    {!gradient_profile_ctx} call is a single flat pass over the pairs.
    The time-series recorder evaluates a profile every series point. *)

val gradient_profile_ctx : profile_ctx -> float array -> float array
(** Same result as {!gradient_profile} for the matrix the context was
    built from. *)

type summary = {
  max_global : float;
  max_local : float;
  mean_local : float;  (** time-average of the per-sample max local skew *)
  p99_local : float;
  final_global : float;
  final_local : float;
  samples_used : int;
}

val summarize :
  ?alive:(int -> bool) ->
  Gcs_graph.Graph.t ->
  sample array ->
  after:float ->
  summary
(** Aggregate over samples with [time >= after] (skipping warm-up),
    optionally restricted to alive nodes. Raises [Invalid_argument] if no
    sample qualifies. *)

val summarize_opt :
  ?alive:(int -> bool) ->
  Gcs_graph.Graph.t ->
  sample array ->
  after:float ->
  summary option
(** Like {!summarize} but [None] when no sample qualifies — the total
    variant for callers (e.g. runs with [horizon < warmup]) that want to
    fall back rather than trap. *)

val max_gradient_profile :
  Gcs_graph.Graph.t -> sample array -> after:float -> float array
(** Pointwise maximum of {!gradient_profile} over the qualifying samples. *)
