(** Problem parameters of a gradient clock synchronization instance.

    These are the quantities the Fan-Lynch model fixes globally and makes
    known to every node: the hardware drift bound, the per-hop message delay
    bounds (whose width is the uncertainty u), and algorithm tuning
    parameters (beacon period, the gradient algorithm's speedup [mu] and
    skew quantum [kappa]). *)

type t = {
  rho : float;  (** drift bound: hardware rates lie in [1, 1 + rho] *)
  mu : float;  (** gradient-algorithm speedup: logical mult in [1, 1 + mu] *)
  delay : Gcs_sim.Delay_model.bounds;  (** per-hop delay bounds *)
  beacon_period : float;  (** hardware time between beacons / probes *)
  kappa : float;  (** per-edge skew quantum of the gradient algorithm *)
  staleness_limit : float;
      (** hardware-time age beyond which a neighbor estimate is discarded;
          makes silent neighbors (crashed nodes, dead links) fade out of
          the trigger instead of poisoning it with unbounded extrapolation
          error *)
}

val make :
  ?rho:float ->
  ?mu:float ->
  ?d_min:float ->
  ?d_max:float ->
  ?beacon_period:float ->
  ?kappa:float ->
  ?staleness_limit:float ->
  unit ->
  t
(** Defaults: [rho = 0.01], [mu = 0.1], delays in [0.5, 1.5] (so u = 1),
    [beacon_period = 1.], [kappa] computed from the other parameters via
    {!default_kappa}, [staleness_limit = 4 * beacon_period]. Raises
    [Invalid_argument] on inconsistent values (non-positive mu, mu <= rho,
    bad delay bounds, ...). *)

val uncertainty : t -> float
(** Per-hop delay uncertainty [u = d_max - d_min]. *)

val d_min : t -> float
val d_max : t -> float
(** The delay-bound components, for callers (canonical store keys, key
    grids) that flatten a spec to primitives. *)

val vartheta : t -> float
(** Maximum hardware rate [1 + rho]. *)

val sigma : t -> float
(** The base [mu / rho] of the logarithm in the gradient algorithm's local
    skew bound (infinite when [rho = 0]). *)

val default_kappa : u:float -> rho:float -> beacon_period:float -> float
(** The smallest safe skew quantum: one-way beacon estimates carry error at
    most [u / 2] from delay uncertainty plus [rho * (beacon_period + d_max)]
    from drift during extrapolation; the conditions of the gradient
    algorithm need a separation of four estimate errors. *)

val estimate_error_bound : t -> float
(** Worst-case error of one beacon-based offset estimate under this spec. *)

val validate : t -> (unit, string) result
