(** Execution conformance checking against the model's output requirements.

    The GCS model requires logical clocks to (i) advance within a rate
    envelope [alpha, beta] and (ii) never run backwards; the metrics layer
    additionally guarantees local skew <= global skew by construction.
    This module checks those requirements over a recorded run, so tests
    (and the CLI's [--check] flag) can validate any algorithm — including
    future ones — against the rules instead of re-deriving ad hoc loops.

    Checks work on the sampled trajectory: between two samples dt apart,
    the discrete rate (L(t+dt) - L(t)) / dt must lie in the envelope. A
    forward jump shows up as a rate spike, which is exactly how jump-based
    algorithms fail the envelope check — by design ([expected_envelope]
    encodes which algorithms are exempt and how). *)

type violation = {
  time : float;  (** sample time at which the violation was detected *)
  node : int;  (** offending node, or [-1] for whole-system checks *)
  peer : int option;
      (** for pairwise checks (skew bounds), the other node of the worst
          offending pair; [node] then holds the lower id of the pair *)
  what : string;  (** human-readable description *)
}

val check_rate_envelope :
  Metrics.sample array -> lo:float -> hi:float -> violation list
(** Discrete per-node rates between consecutive samples within
    [lo - eps, hi + eps]. *)

val check_monotonic : Metrics.sample array -> violation list
(** No logical clock ever decreases between samples. *)

val check_skew_bound :
  Gcs_graph.Graph.t ->
  Metrics.sample array ->
  after:float ->
  bound:float ->
  [ `Local | `Global ] ->
  violation list
(** The chosen skew metric stays [<= bound] at every sample past [after].
    A violation names the worst offending pair: the adjacent pair
    realizing the local skew, or the (argmin, argmax) clock-value pair
    realizing the global skew — lower node id in [node], the other in
    [peer]. *)

type envelope = {
  rate_lo : float;
  rate_hi : float;
  jumps_allowed : bool;  (** skip the envelope check (jump-based algorithms) *)
}

val expected_envelope : Spec.t -> Algorithm.kind -> envelope
(** The rate envelope each built-in algorithm promises: [1, vartheta] for
    [Free_run], [1, (1+mu) vartheta] for the gradient family and max-slew,
    [1 - mu/2, (1+mu) vartheta] for [Tree_sync] (bidirectional slew), and
    jumps-allowed for [Max_sync]. *)

val check_result : Runner.result -> algo:Algorithm.kind -> violation list
(** All applicable checks for a finished run: monotonicity always, the rate
    envelope unless the algorithm is jump-based, and the gradient local
    envelope when the algorithm is [Gradient_sync]. *)

val to_string : violation -> string
