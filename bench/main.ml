(* Experiment harness: regenerates every "table and figure" of the
   reproduction (E1-E24 in DESIGN.md). Run everything with

     dune exec bench/main.exe

   or a subset with e.g.

     dune exec bench/main.exe -- e1 e3

   The Fan-Lynch PODC 2004 paper is pure theory, so each experiment
   operationalizes one of its claims (or an explicitly cited context
   result); EXPERIMENTS.md records the measured outcomes next to the
   expected shapes. *)

module Graph = Gcs_graph.Graph
module Topology = Gcs_graph.Topology
module Shortest_path = Gcs_graph.Shortest_path
module Drift = Gcs_clock.Drift
module Lc = Gcs_clock.Logical_clock
module Hc = Gcs_clock.Hardware_clock
module Spec = Gcs_core.Spec
module Algorithm = Gcs_core.Algorithm
module Runner = Gcs_core.Runner
module Metrics = Gcs_core.Metrics
module Bounds = Gcs_core.Bounds
module Gradient_sync = Gcs_core.Gradient_sync
module Fan_lynch = Gcs_adversary.Fan_lynch
module Linear = Gcs_adversary.Linear
module Bias = Gcs_adversary.Bias
module Table = Gcs_util.Table
module Prng = Gcs_util.Prng
module Stats = Gcs_util.Stats
module Heap = Gcs_util.Heap

let spec = Spec.make ()
let u = Spec.uncertainty spec
let fmt = Table.fmt_float ~digits:3

let header id title =
  Printf.printf "\n\n### %s — %s\n" id title;
  flush stdout

(* When --csv DIR is on the command line, every table is also persisted as
   DIR/<name>.csv so the "figures" are regenerable artifacts. *)
let csv_dir : string option ref = ref None

(* -jobs N shards replicate batches (E7) and the E19 sweep benchmark
   across that many domains; results are identical for every N. *)
let jobs = ref (Gcs_util.Pool.default_jobs ())

let print_table ~name ~title ~columns ~rows =
  Table.print ~title ~columns ~rows;
  match !csv_dir with
  | None -> ()
  | Some dir ->
      let header = List.map (fun c -> c.Table.header) columns in
      Gcs_util.Csv.write
        ~path:(Filename.concat dir (name ^ ".csv"))
        ~header ~rows

(* E1: the main theorem. Adversaries controlling only drift and delays
   force local skew above the c * u * log D / log log D line, growing with
   D, while the gradient algorithm stays within its analytic envelope. Two
   attacks are reported against the gradient algorithm: the paper's
   scale-recursive schedule and the sustained-pressure attack (one drift
   split + hiding bias held for the whole run) that the automated adversary
   search of E14 discovered to be the stronger of the two against this
   implementation. *)
let e1 () =
  header "E1" "Lower-bound adversaries: forced local skew vs diameter (line)";
  let algos = [ Algorithm.Gradient_sync; Algorithm.Tree_sync; Algorithm.Max_sync ] in
  let rows =
    List.map
      (fun d ->
        let n = d + 1 in
        let forced algo =
          let cfg = Fan_lynch.default_config ~spec ~algo ~n ~seed:17 () in
          (Fan_lynch.attack cfg).Fan_lynch.forced_local
        in
        let sustained =
          (Linear.attack ~spec ~algo:Algorithm.Gradient_sync ~n ~seed:17 ())
            .Linear.forced_local
        in
        let cells = List.map (fun a -> fmt (forced a)) algos in
        (string_of_int d :: cells)
        @ [
            fmt sustained;
            fmt (Bounds.fan_lynch_lower ~u ~diameter:d);
            fmt (Bounds.gradient_local_upper spec ~diameter:d);
          ])
      [ 8; 16; 32; 64; 128; 256 ]
  in
  print_table ~name:"e1_forced_local"
    ~title:"Forced local skew (higher = attack stronger)"
    ~columns:
      ([ Table.column ~align:Table.Left "D" ]
      @ List.map (fun a -> Table.column (Algorithm.kind_name a)) algos
      @ [
          Table.column "sustained (vs gradient)";
          Table.column "theorem line";
          Table.column "gradient envelope";
        ])
    ~rows

(* E2: the gradient property. Max skew as a function of hop distance on a
   benign line: for the gradient algorithm the curve flattens (nearby nodes
   are much better synchronized than distant ones); the profile is the
   empirical gradient function f(k). *)
let e2 () =
  header "E2" "Empirical gradient function f(k) on line:33 (benign run)";
  let graph = Topology.line 33 in
  let profile algo =
    let cfg = Runner.config ~spec ~algo ~horizon:600. ~seed:23 graph in
    let r = Runner.run cfg in
    Metrics.max_gradient_profile graph r.Runner.samples ~after:cfg.Runner.warmup
  in
  let algos = [ Algorithm.Gradient_sync; Algorithm.Tree_sync; Algorithm.Max_sync ] in
  let profiles = List.map (fun a -> (a, profile a)) algos in
  let ks = [ 1; 2; 4; 8; 16; 24; 32 ] in
  let rows =
    List.map
      (fun k ->
        string_of_int k
        :: List.map (fun (_, p) -> fmt p.(k - 1)) profiles)
      ks
  in
  print_table ~name:"e2_gradient_profile" ~title:"max skew between nodes at hop distance k"
    ~columns:
      (Table.column ~align:Table.Left "k"
      :: List.map (fun (a, _) -> Table.column (Algorithm.kind_name a)) profiles)
    ~rows

(* E3: the separation. Under a consistent directional delay bias on a ring,
   tree-based synchronization accumulates Theta(D) skew across the
   cycle-closing edge while the gradient algorithm stays near its
   logarithmic envelope. *)
let e3 () =
  header "E3" "Ring-bias adversary: forced local skew vs diameter (ring)";
  let algos = [ Algorithm.Gradient_sync; Algorithm.Tree_sync; Algorithm.Max_sync ] in
  let rows =
    List.map
      (fun d ->
        let n = 2 * d in
        let forced algo =
          (Bias.attack_ring ~spec ~algo ~n ~seed:29 ()).Bias.forced_local
        in
        (string_of_int d :: List.map (fun a -> fmt (forced a)) algos)
        @ [ fmt (Bounds.gradient_local_upper spec ~diameter:d) ])
      [ 4; 8; 16; 32; 64 ]
  in
  print_table ~name:"e3_ring_bias"
    ~title:"Forced local skew on ring of diameter D (tree should grow ~ D)"
    ~columns:
      ([ Table.column ~align:Table.Left "D" ]
      @ List.map (fun a -> Table.column (Algorithm.kind_name a)) algos
      @ [ Table.column "gradient envelope" ])
    ~rows

(* E4: the context bound. The single-phase linear adversary forces global
   skew Omega(u * D) on a line regardless of the algorithm. *)
let e4 () =
  header "E4" "Linear adversary: forced global skew vs diameter (line)";
  let algos = [ Algorithm.Gradient_sync; Algorithm.Tree_sync; Algorithm.Max_sync ] in
  let rows =
    List.map
      (fun d ->
        let n = d + 1 in
        let forced algo =
          (Linear.attack ~spec ~algo ~n ~seed:31 ()).Linear.forced_global
        in
        (string_of_int d :: List.map (fun a -> fmt (forced a)) algos)
        @ [ fmt (u *. float_of_int d /. 4.) ])
      [ 8; 16; 32; 64 ]
  in
  print_table ~name:"e4_global_skew" ~title:"Forced global skew (all must exceed u*D/4)"
    ~columns:
      ([ Table.column ~align:Table.Left "D" ]
      @ List.map (fun a -> Table.column (Algorithm.kind_name a)) algos
      @ [ Table.column "u*D/4" ])
    ~rows

(* E5: skew dynamics. Time series of global/local skew while the Fan-Lynch
   adversary works over a line; the phase structure of the attack (stretch,
   refocus, press) is visible in the curves. *)
let e5 () =
  header "E5" "Skew build-up over time under the Fan-Lynch attack (line:65)";
  let n = 65 in
  let cfg =
    Fan_lynch.default_config ~spec ~algo:Algorithm.Gradient_sync ~n ~seed:37 ()
  in
  let report = Fan_lynch.attack cfg in
  let samples = report.Fan_lynch.result.Runner.samples in
  let graph = report.Fan_lynch.result.Runner.graph in
  let count = Array.length samples in
  let picks = 16 in
  let rows =
    List.init picks (fun i ->
        let idx = i * (count - 1) / (picks - 1) in
        let s = samples.(idx) in
        [
          fmt s.Metrics.time;
          fmt (Metrics.global_skew s.Metrics.values);
          fmt (Metrics.local_skew graph s.Metrics.values);
        ])
  in
  print_table ~name:"e5_timeseries" ~title:"global and local skew over the attack"
    ~columns:
      [ Table.column ~align:Table.Left "time"; Table.column "global"; Table.column "local" ]
    ~rows;
  Printf.printf "phases: %d, forced local: %s, theorem line: %s\n"
    report.Fan_lynch.phases (fmt report.Fan_lynch.forced_local)
    (fmt report.Fan_lynch.lower_bound)

(* E6: parameter sensitivity. (a) Forced local skew scales with the per-hop
   uncertainty u; (b) benign local skew tracks kappa, which scales with
   drift rho through the spec derivation. *)
let e6 () =
  header "E6" "Parameter sensitivity";
  let rows =
    List.map
      (fun u_i ->
        let spec_u =
          Spec.make ~d_min:(0.5 *. u_i) ~d_max:(1.5 *. u_i)
            ~beacon_period:(Float.max 1. u_i) ()
        in
        let cfg =
          Fan_lynch.default_config ~spec:spec_u
            ~algo:Algorithm.Gradient_sync ~n:33 ~seed:41 ()
        in
        let r = Fan_lynch.attack cfg in
        [
          fmt u_i;
          fmt spec_u.Spec.kappa;
          fmt r.Fan_lynch.forced_local;
          fmt (Bounds.fan_lynch_lower ~u:u_i ~diameter:32);
        ])
      [ 0.25; 0.5; 1.; 2.; 4. ]
  in
  print_table ~name:"e6a_u_sweep" ~title:"(a) forced local skew vs uncertainty u (line:33)"
    ~columns:
      [
        Table.column ~align:Table.Left "u";
        Table.column "kappa";
        Table.column "forced local";
        Table.column "theorem line";
      ]
    ~rows;
  let rows =
    List.map
      (fun rho ->
        let spec_r = Spec.make ~rho ~mu:(10. *. rho) () in
        let cfg =
          Runner.config ~spec:spec_r ~algo:Algorithm.Gradient_sync
            ~horizon:600. ~seed:43 (Topology.ring 32)
        in
        let r = Runner.run cfg in
        [
          fmt rho;
          fmt spec_r.Spec.kappa;
          fmt r.Runner.summary.Metrics.max_local;
          fmt (Bounds.gradient_local_upper spec_r ~diameter:16);
        ])
      [ 0.002; 0.01; 0.05 ]
  in
  print_table ~name:"e6b_rho_sweep" ~title:"(b) benign local skew vs drift rho (ring:32, mu = 10 rho)"
    ~columns:
      [
        Table.column ~align:Table.Left "rho";
        Table.column "kappa";
        Table.column "max local";
        Table.column "envelope";
      ]
    ~rows

(* E7: topology generality. The gradient algorithm keeps local skew within
   its envelope on every graph family. *)
let e7 () =
  header "E7" "Gradient algorithm across topologies (benign runs)";
  let rng = Prng.create ~seed:47 in
  let cases =
    [
      ("line:65", Topology.line 65);
      ("ring:64", Topology.ring 64);
      ("grid:8x8", Topology.grid ~rows:8 ~cols:8);
      ("torus:8x8", Topology.torus ~rows:8 ~cols:8);
      ("btree:5", Topology.binary_tree ~depth:5);
      ("hypercube:6", Topology.hypercube ~dim:6);
      ("gnp:64:0.08", Topology.random_gnp ~n:64 ~p:0.08 ~rng);
      ("geometric:64:0.2", fst (Topology.random_geometric ~n:64 ~radius:0.2 ~rng));
    ]
  in
  let seeds = Gcs_core.Replicate.seeds 5 in
  let rows =
    List.map
      (fun (name, graph) ->
        let d = Shortest_path.diameter graph in
        let measure f =
          Gcs_core.Replicate.measure ~jobs:!jobs ~seeds (fun seed ->
              let cfg =
                Runner.config ~spec ~algo:Algorithm.Gradient_sync
                  ~horizon:500. ~seed graph
              in
              f (Runner.run cfg))
        in
        let local = measure (fun r -> r.Runner.summary.Metrics.max_local) in
        let global = measure (fun r -> r.Runner.summary.Metrics.max_global) in
        [
          name;
          string_of_int (Graph.n graph);
          string_of_int d;
          Gcs_core.Replicate.to_string local;
          Gcs_core.Replicate.to_string global;
          fmt (Bounds.gradient_local_upper spec ~diameter:d);
        ])
      cases
  in
  print_table ~name:"e7_topologies" ~title:"local skew stays under the envelope everywhere"
    ~columns:
      [
        Table.column ~align:Table.Left "topology";
        Table.column "n";
        Table.column "D";
        Table.column "max local";
        Table.column "max global";
        Table.column "envelope";
      ]
    ~rows

(* E9: robustness. Message loss and link churn degrade skew gracefully —
   beacon state is soft, so the gradient algorithm coasts on stale
   estimates through outages. *)
let e9 () =
  header "E9" "Loss and churn tolerance (gradient on ring:32)";
  let graph = Topology.ring 32 in
  let rows =
    List.map
      (fun duty ->
        let cfg =
          Gcs_adversary.Churn.default_config ~spec ~duty ~graph ~seed:59 ()
        in
        let r = Gcs_adversary.Churn.run cfg in
        [
          fmt duty;
          fmt r.Gcs_adversary.Churn.downtime_fraction;
          fmt r.Gcs_adversary.Churn.forced_local;
          fmt r.Gcs_adversary.Churn.forced_global;
        ])
      [ 0.; 0.1; 0.3; 0.5; 0.8 ]
  in
  print_table ~name:"e9a_churn" ~title:"link churn (per-edge outages, exponential renewal)"
    ~columns:
      [
        Table.column ~align:Table.Left "duty";
        Table.column "drop rate";
        Table.column "max local";
        Table.column "max global";
      ]
    ~rows;
  let rows =
    List.map
      (fun p ->
        let cfg =
          Runner.config ~spec ~algo:Algorithm.Gradient_sync
            ~loss:(Runner.Uniform_loss p) ~horizon:600. ~seed:61 graph
        in
        let r = Runner.run cfg in
        [
          fmt p;
          fmt r.Runner.summary.Metrics.max_local;
          fmt r.Runner.summary.Metrics.max_global;
        ])
      [ 0.; 0.25; 0.5; 0.75; 0.9 ]
  in
  print_table ~name:"e9b_loss" ~title:"i.i.d. message loss"
    ~columns:
      [
        Table.column ~align:Table.Left "loss p";
        Table.column "max local";
        Table.column "max global";
      ]
    ~rows

(* E10: self-stabilization. Recovery from transient faults of growing
   magnitude: the bare gradient algorithm needs time proportional to the
   fault, the monitor-and-reset wrapper needs one detection round. *)
let e10 () =
  header "E10" "Self-stabilization: recovery from a corrupted clock (line:16)";
  let graph = Topology.line 16 in
  let rows =
    List.map
      (fun fault ->
        let init v = if v = 7 then fault else 0. in
        let bare =
          Runner.run
            (Runner.config ~spec ~algo:Algorithm.Gradient_sync
               ~initial_value_of_node:init ~horizon:400. ~warmup:350. ~seed:67
               graph)
        in
        let wrapped, stats =
          Gcs_core.Stabilize.wrap
            ~inner:(Gcs_core.Registry.get Algorithm.Gradient_sync)
            ()
        in
        let healed =
          Runner.run
            (Runner.config ~spec ~algo:Algorithm.Gradient_sync
               ~override:wrapped ~initial_value_of_node:init ~horizon:400.
               ~warmup:350. ~seed:67 graph)
        in
        [
          Printf.sprintf "%.0e" fault;
          fmt bare.Runner.summary.Metrics.final_global;
          fmt healed.Runner.summary.Metrics.final_global;
          string_of_int stats.Gcs_core.Stabilize.resets;
        ])
      [ 1e2; 1e4; 1e6 ]
  in
  print_table ~name:"e10_stabilization"
    ~title:"global skew 400 time units after a fault of the given size"
    ~columns:
      [
        Table.column ~align:Table.Left "fault";
        Table.column "bare gradient";
        Table.column "stabilized";
        Table.column "resets";
      ]
    ~rows

(* E11: external synchronization. Real-time skew versus anchor density:
   denser anchors shorten the distance to the virtual reference node. *)
let e11 () =
  header "E11" "External synchronization: real-time skew vs anchors (line:33)";
  let graph = Topology.line 33 in
  let gps =
    Gcs_core.External_sync.noisy_reference ~bias:0.1 ~wander:0.2 ~period:150.
      ~phase:0.7
  in
  let max_rt (r : Runner.result) =
    Array.fold_left
      (fun acc (s : Metrics.sample) ->
        if s.Metrics.time >= 1000. then
          Float.max acc
            (Metrics.real_time_skew ~time:s.Metrics.time s.Metrics.values)
        else acc)
      0. r.Runner.samples
  in
  let rows =
    List.map
      (fun (name, anchors) ->
        let algo = Gcs_core.External_sync.algorithm ~anchors in
        let r =
          Runner.run
            (Runner.config ~spec ~algo:Algorithm.Gradient_sync ~override:algo
               ~horizon:2000. ~sample_period:2. ~seed:71 graph)
        in
        [
          name;
          fmt (max_rt r);
          fmt r.Runner.summary.Metrics.max_local;
          fmt r.Runner.summary.Metrics.max_global;
        ])
      [
        ("none", fun _ -> None);
        ("node 0 only", fun v -> if v = 0 then Some gps else None);
        ("every 8th", fun v -> if v mod 8 = 0 then Some gps else None);
        ("all", fun _ -> Some gps);
      ]
  in
  print_table ~name:"e11_external" ~title:"max |L_v - t| after convergence (reference error ~0.3)"
    ~columns:
      [
        Table.column ~align:Table.Left "anchors";
        Table.column "real-time skew";
        Table.column "max local";
        Table.column "max global";
      ]
    ~rows

(* E12: heterogeneous networks. Per-edge skew quanta confine the cost of a
   bad link to that link; the uniform algorithm taxes every edge at the
   system-wide worst case. *)
let e12 () =
  header "E12" "Heterogeneous edges: one bad link on a line of 17";
  let graph = Topology.line 17 in
  let bad_edge = 8 in
  let rows =
    List.map
      (fun bad_u ->
        let edge_bounds e =
          if e = bad_edge then
            Gcs_sim.Delay_model.bounds ~d_min:0.1 ~d_max:(0.1 +. bad_u)
          else Gcs_sim.Delay_model.bounds ~d_min:0.9 ~d_max:1.1
        in
        (* The uniform spec must assume the worst edge everywhere. *)
        let spec_worst =
          Spec.make ~d_min:0.1 ~d_max:(0.1 +. bad_u) ~beacon_period:2. ()
        in
        let good_edge_skew ~override =
          let cfg =
            Runner.config ~spec:spec_worst ~algo:Algorithm.Gradient_sync
              ?override
              ~delay_kind:(Runner.Per_edge_delays edge_bounds) ~horizon:800.
              ~seed:33 graph
          in
          let r = Runner.run cfg in
          let worst_good = ref 0. and worst_bad = ref 0. in
          Array.iter
            (fun (s : Metrics.sample) ->
              if s.Metrics.time >= cfg.Runner.warmup then begin
                let per_edge =
                  Metrics.local_skew_edges graph s.Metrics.values
                in
                Array.iteri
                  (fun e x ->
                    if e = bad_edge then worst_bad := Float.max !worst_bad x
                    else worst_good := Float.max !worst_good x)
                  per_edge
              end)
            r.Runner.samples;
          (!worst_good, !worst_bad)
        in
        let ug, ub = good_edge_skew ~override:None in
        let hg, hb =
          good_edge_skew
            ~override:(Some (Gcs_core.Gradient_hetero.algorithm ~edge_bounds))
        in
        [ fmt bad_u; fmt ug; fmt ub; fmt hg; fmt hb ])
      [ 1.; 2.; 4. ]
  in
  print_table ~name:"e12_hetero"
    ~title:
      "max skew on good edges / on the bad edge (uniform vs per-edge quanta)"
    ~columns:
      [
        Table.column ~align:Table.Left "bad-edge u";
        Table.column "uniform good";
        Table.column "uniform bad";
        Table.column "hetero good";
        Table.column "hetero bad";
      ]
    ~rows

(* E13: ablations of the gradient algorithm's two tuning knobs.
   (a) The speedup mu sets sigma = mu / rho, the base of the logarithm in
       the local-skew bound: more speedup, fewer levels, less skew under
       attack — at the cost of a worse output-rate envelope.
   (b) The beacon period trades message cost against estimate staleness
       (kappa grows with the period, and the achieved skew follows it). *)
let e13 () =
  header "E13" "Ablations: mu and beacon period (gradient algorithm)";
  let rows =
    List.map
      (fun mu ->
        let spec_mu = Spec.make ~mu () in
        let report =
          Bias.attack_ring ~spec:spec_mu ~algo:Algorithm.Gradient_sync ~n:32
            ~seed:73 ()
        in
        [
          fmt mu;
          fmt (Spec.sigma spec_mu);
          fmt report.Gcs_adversary.Bias.forced_local;
          fmt (Bounds.gradient_local_upper spec_mu ~diameter:16);
          fmt ((1. +. mu) *. Spec.vartheta spec_mu);
        ])
      [ 0.02; 0.05; 0.1; 0.3 ]
  in
  print_table ~name:"e13a_mu_sweep"
    ~title:"(a) forced local skew under ring bias vs speedup mu (ring:32)"
    ~columns:
      [
        Table.column ~align:Table.Left "mu";
        Table.column "sigma";
        Table.column "forced local";
        Table.column "envelope";
        Table.column "max rate beta";
      ]
    ~rows;
  let rows =
    List.map
      (fun period ->
        let spec_p = Spec.make ~beacon_period:period () in
        let cfg =
          Runner.config ~spec:spec_p ~algo:Algorithm.Gradient_sync
            ~horizon:600. ~seed:79 (Topology.ring 32)
        in
        let r = Runner.run cfg in
        [
          fmt period;
          fmt spec_p.Spec.kappa;
          fmt r.Runner.summary.Metrics.max_local;
          string_of_int r.Runner.messages;
        ])
      [ 0.5; 1.; 2.; 4. ]
  in
  print_table ~name:"e13b_period_sweep"
    ~title:"(b) benign local skew vs beacon period (ring:32): accuracy/cost"
    ~columns:
      [
        Table.column ~align:Table.Left "period";
        Table.column "kappa";
        Table.column "max local";
        Table.column "messages";
      ]
    ~rows

(* E14: searched adversaries vs crafted adversaries. The beam search over
   the adversary's move alphabet should roughly reproduce (or beat) the
   hand-crafted attacks — validating them — while never breaking the
   gradient algorithm's envelope. The printed plan strings read one move
   per segment: L/R/- for the fast half, >/</. for the delay bias. *)
let e14 () =
  header "E14" "Automated adversary search vs crafted attacks (line)";
  let plan_to_string plan =
    String.concat ""
      (List.map
         (fun m ->
           let f =
             match m.Gcs_adversary.Search.fast_side with
             | `Left -> "L"
             | `Right -> "R"
             | `None -> "-"
           in
           let b =
             match m.Gcs_adversary.Search.bias with
             | `Forward -> ">"
             | `Backward -> "<"
             | `Neutral -> "."
           in
           f ^ b)
         plan)
  in
  let rows =
    List.map
      (fun algo ->
        let n = 9 in
        let searched =
          Gcs_adversary.Search.search
            (Gcs_adversary.Search.default_config ~spec ~algo ~n ~segments:5
               ~beam:8 ~seed:83 ())
        in
        let crafted =
          Fan_lynch.attack (Fan_lynch.default_config ~spec ~algo ~n ~seed:83 ())
        in
        [
          Algorithm.kind_name algo;
          fmt searched.Gcs_adversary.Search.forced_local;
          fmt crafted.Fan_lynch.forced_local;
          plan_to_string searched.Gcs_adversary.Search.plan;
          fmt (Bounds.gradient_local_upper spec ~diameter:(n - 1));
        ])
      [ Algorithm.Gradient_sync; Algorithm.Tree_sync; Algorithm.Max_sync ]
  in
  print_table ~name:"e14_search_vs_crafted"
    ~title:"forced local skew at D = 8: search vs the Fan-Lynch construction"
    ~columns:
      [
        Table.column ~align:Table.Left "algorithm";
        Table.column "searched";
        Table.column "crafted";
        Table.column ~align:Table.Left "best plan";
        Table.column "envelope";
      ]
    ~rows

(* E15: estimation method ablation. With one-way beacons the skew quantum
   kappa must cover the full delay band (the receiver guesses the in-flight
   time); two-way round-trip estimation is self-calibrating, so kappa only
   needs to cover jitter and drift. On edges whose typical delay sits far
   from the band midpoint this decouples the achieved skew from the
   worst-case delay bound — the adaptivity theme of the follow-on GCS
   literature. *)
let e15 () =
  header "E15" "One-way vs two-way offset estimation (ring:24, wide band)";
  let graph = Topology.ring 24 in
  let rng = Prng.create ~seed:91 in
  let centers =
    Array.init 24 (fun _ -> Prng.uniform rng ~lo:0.4 ~hi:3.6)
  in
  let jitter = 0.1 in
  let edge_bounds e =
    Gcs_sim.Delay_model.bounds
      ~d_min:(centers.(e) -. jitter)
      ~d_max:(centers.(e) +. jitter)
  in
  let kappa_band = Spec.default_kappa ~u:3.8 ~rho:0.01 ~beacon_period:1. in
  let kappa_jitter =
    Spec.default_kappa ~u:(2. *. jitter) ~rho:0.01 ~beacon_period:1. +. 0.3
  in
  let run kappa override =
    let spec_k = Spec.make ~d_min:0.1 ~d_max:3.9 ~kappa () in
    let cfg =
      Runner.config ~spec:spec_k ~algo:Algorithm.Gradient_sync ?override
        ~delay_kind:(Runner.Per_edge_delays edge_bounds) ~horizon:600.
        ~seed:92 graph
    in
    Runner.run cfg
  in
  let rows =
    List.map
      (fun (name, kappa, override) ->
        let r = run kappa override in
        [
          name;
          fmt kappa;
          fmt r.Runner.summary.Metrics.max_local;
          fmt r.Runner.summary.Metrics.max_global;
          string_of_int r.Runner.messages;
        ])
      [
        ("one-way, band kappa", kappa_band, None);
        ("one-way, jitter kappa (unsound)", kappa_jitter, None);
        ( "two-way, jitter kappa",
          kappa_jitter,
          Some Gcs_core.Gradient_rtt.algorithm );
      ]
  in
  print_table ~name:"e15_estimation"
    ~title:
      "edges with random mean delays in [0.4, 3.6], jitter 0.1, band [0.1, 3.9]"
    ~columns:
      [
        Table.column ~align:Table.Left "estimation";
        Table.column "kappa";
        Table.column "max local";
        Table.column "max global";
        Table.column "messages";
      ]
    ~rows

(* E16: crash faults. A crashed node falls silent; survivors must keep
   their mutual skew bounded. The mechanism under test is estimate
   staleness expiry: without it, a live neighbor keeps extrapolating the
   dead clock, sees a phantom ever-lagging neighbor, and the blocking
   clause freezes it out of the fast trigger exactly when drift pressure
   makes racing necessary. *)
let e16 () =
  header "E16" "Crash tolerance and staleness expiry (ring:24, drift split)";
  let n = 24 in
  let graph = Topology.ring n in
  let drift v = if v < n / 2 then Drift.Extreme_high else Drift.Extreme_low in
  let run spec crashes =
    Gcs_adversary.Crash.run
      (Gcs_adversary.Crash.default_config ~spec ~drift_of_node:drift ~crashes
         ~graph ~horizon:1500. ~seed:87 ())
  in
  let rows =
    List.map
      (fun (name, spec, crashes) ->
        let r = run spec crashes in
        [
          name;
          fmt r.Gcs_adversary.Crash.live_local;
          fmt r.Gcs_adversary.Crash.live_global;
        ])
      [
        ("no crashes", Spec.make (), []);
        ("crash @ slow side, expiry on", Spec.make (), [ (18, 300.) ]);
        ( "crash @ slow side, expiry off",
          Spec.make ~staleness_limit:1e9 (),
          [ (18, 300.) ] );
        ( "3 crashes, expiry on",
          Spec.make (),
          [ (4, 300.); (11, 500.); (18, 300.) ] );
      ]
  in
  print_table ~name:"e16_crash"
    ~title:"skew among surviving nodes (final quarter of a 1500-unit run)"
    ~columns:
      [
        Table.column ~align:Table.Left "scenario";
        Table.column "live local";
        Table.column "live global";
      ]
    ~rows

(* E17: scalability soak. End-to-end simulator throughput on growing rings
   (the headline result's D-sweeps need exactly these sizes to be cheap).
   Wall-clock time is measured around the full runner pipeline. *)
let e17 () =
  header "E17" "Scalability soak: gradient ring, 60 time units";
  let rows =
    List.map
      (fun n ->
        let graph = Topology.ring n in
        let cfg =
          Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:60.
            ~sample_period:5. ~warmup:30. ~seed:101 graph
        in
        let t0 = Unix.gettimeofday () in
        let r = Runner.run cfg in
        let dt = Unix.gettimeofday () -. t0 in
        [
          string_of_int n;
          string_of_int r.Runner.events;
          Table.fmt_float ~digits:2 (float_of_int r.Runner.events /. dt /. 1e6);
          Table.fmt_float ~digits:3 dt;
          fmt r.Runner.summary.Metrics.max_local;
        ])
      [ 64; 256; 1024; 4096 ]
  in
  print_table ~name:"e17_scalability"
    ~title:"simulator throughput (events are sends+delivers+timers+controls)"
    ~columns:
      [
        Table.column ~align:Table.Left "nodes";
        Table.column "events";
        Table.column "M events/s";
        Table.column "wall s";
        Table.column "max local";
      ]
    ~rows

(* E18: mobility. Delays track node motion (random waypoint); faster motion
   means faster-changing estimation errors, which eat into the deadband.
   The gradient algorithm should degrade smoothly with speed, not fall off
   a cliff. *)
let e18 () =
  header "E18" "Mobile delays: local skew vs node speed (geometric graph)";
  let rng = Prng.create ~seed:109 in
  let graph, _ = Topology.random_geometric ~n:30 ~radius:0.3 ~rng in
  let rows =
    List.map
      (fun speed ->
        let cfg =
          Runner.config ~spec ~algo:Algorithm.Gradient_sync
            ~delay_kind:Runner.Controlled_delays ~horizon:400. ~seed:110
            graph
        in
        let live = Runner.prepare cfg in
        let m =
          Gcs_sim.Mobility.random_waypoint ~n:30 ~speed ~horizon:400.
            ~rng:(Prng.create ~seed:111)
        in
        live.Runner.chooser :=
          Some (Gcs_sim.Mobility.delay_chooser m ~bounds:spec.Spec.delay);
        let r = Runner.complete live in
        [
          fmt speed;
          fmt r.Runner.summary.Metrics.max_local;
          fmt r.Runner.summary.Metrics.max_global;
        ])
      [ 0.; 0.02; 0.3; 2.; 8. ]
  in
  print_table ~name:"e18_mobility"
    ~title:"random-waypoint motion; delay = linear in current distance"
    ~columns:
      [
        Table.column ~align:Table.Left "speed";
        Table.column "max local";
        Table.column "max global";
      ]
    ~rows

(* E19: the parallel sharded runner. A 64-replicate sweep (the exact shape
   of every D-sweep and robustness table above) is run through
   Parallel_run once serially and once sharded across -jobs domains. The
   summaries must agree exactly — determinism under sharding is part of
   the contract — and the wall-clock ratio is the realized speedup (≈ the
   domain count on idle multicore hardware; 1x on a single-core box). *)
let e19 () =
  header "E19"
    (Printf.sprintf "Parallel sharded sweep: 64 replicates, -jobs %d" !jobs);
  let graph = Topology.ring 32 in
  let configs =
    Array.of_list
      (List.map
         (fun seed ->
           Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:200.
             ~seed graph)
         (Gcs_core.Replicate.seeds 64))
  in
  let timed jobs =
    let t0 = Unix.gettimeofday () in
    let rs = Gcs_core.Parallel_run.run ~jobs configs in
    (Unix.gettimeofday () -. t0, rs)
  in
  let t_serial, serial = timed 1 in
  let t_par, par = timed !jobs in
  let identical =
    serial = par
  in
  let m = Gcs_core.Parallel_run.merge par in
  let rows =
    [
      [ "1"; Table.fmt_float ~digits:3 t_serial; "1.00"; "-" ];
      [
        string_of_int !jobs;
        Table.fmt_float ~digits:3 t_par;
        Table.fmt_float ~digits:2 (t_serial /. t_par);
        (if identical then "yes" else "NO");
      ];
    ]
  in
  print_table ~name:"e19_parallel_sweep"
    ~title:"wall-clock for the same 64-config batch; results must be identical"
    ~columns:
      [
        Table.column ~align:Table.Left "jobs";
        Table.column "wall s";
        Table.column "speedup";
        Table.column "bit-identical";
      ]
    ~rows;
  Printf.printf
    "batch: %d runs, %d events, %d messages, %d dropped, %d clock jumps\n"
    (Array.length m.Gcs_core.Parallel_run.summaries)
    m.Gcs_core.Parallel_run.events m.Gcs_core.Parallel_run.messages
    m.Gcs_core.Parallel_run.dropped
    m.Gcs_core.Parallel_run.jumps.Lc.count;
  if not identical then begin
    prerr_endline "E19: parallel results diverged from serial results";
    exit 1
  end

(* E20: the fault battery. Every algorithm runs under the same composed
   fault plan — a partition isolating node 0, a state-wiping crash-recover
   of node 8, and a beacon-corruption window — and the recovery metrics say
   how hard each fault hit (worst transient skew on the affected edges) and
   how long re-convergence took after the heal. Free-run is the control: it
   never resynchronizes anything, so its transients persist, while gradient
   and tree should show finite time-to-resync for every healed episode. *)
let e20 () =
  header "E20" "Fault battery: partition + crash-recover + corruption";
  let module Fault_plan = Gcs_sim.Fault_plan in
  let module Fault_metrics = Gcs_core.Fault_metrics in
  let graph = Topology.ring 32 in
  let horizon = 600. in
  (* A tight kappa plus a fast/slow drift split makes the faults bite: the
     partition cuts the ring into its fast and slow halves (so they diverge
     at relative rate ~rho while cut), and the crashed node is in the slow
     half (gradient sync is max-driven, so a freewheeling slow node falls
     behind its steered neighbors). *)
  let spec_e20 = Spec.make ~kappa:0.5 () in
  let drift_of_node v =
    if v < 16 then Drift.Extreme_high else Drift.Extreme_low
  in
  let half = String.concat "," (List.init 16 string_of_int) in
  let plan =
    match
      Fault_plan.of_string
        (Printf.sprintf
           "partition@150:cut=%s;heal@250:cut=%s;\
            crash@300:node=24;recover@380:node=24:wipe;\
            corrupt@450..500:p=0.2:mag=3"
           half half)
    with
    | Ok p -> p
    | Error msg -> failwith ("E20 plan: " ^ msg)
  in
  let algos =
    [ Algorithm.Gradient_sync; Algorithm.Tree_sync; Algorithm.Free_run ]
  in
  let rows =
    List.map
      (fun algo ->
        let cfg =
          Runner.config ~spec:spec_e20 ~algo ~drift_of_node ~horizon ~seed:23
            ~fault_plan:plan graph
        in
        let r = Runner.run cfg in
        let rep = Option.get r.Runner.fault_report in
        let resync =
          match Fault_metrics.max_time_to_resync rep with
          | Some t -> fmt t
          | None -> "never"
        in
        [
          Algorithm.kind_name algo;
          fmt (Fault_metrics.worst_transient rep);
          resync;
          string_of_int rep.Gcs_core.Fault_metrics.dropped_faults;
          string_of_int rep.Gcs_core.Fault_metrics.corrupted;
          fmt r.Runner.summary.Metrics.max_local;
        ])
      algos
  in
  print_table ~name:"e20_fault_battery"
    ~title:
      "recovery under the standard battery (ring:32 split in half, kappa 0.5, \
       horizon 600)"
    ~columns:
      [
        Table.column ~align:Table.Left "algorithm";
        Table.column "worst transient";
        Table.column "time to resync";
        Table.column "fault drops";
        Table.column "corrupted";
        Table.column "max local";
      ]
    ~rows

(* E21: observer overhead. The same ring:48 config runs bare and under
   several capture modes. Observers are pure — they never touch algorithm
   state or randomness — so every instrumented summary must be identical to
   the bare one (hard assertion, exit 1), and the always-on "flight
   recorder" mode (bounded ring event log + series + sampled profiler) must
   cost < 10% extra wall time (also asserted; the verdict is printed so the
   target is auditable in the output). Trials are interleaved and each
   mode's overhead is the median of per-pass ratios against the same pass's
   bare run, which is robust to machine-speed drift. Runs are also rendered
   through the shared Report.result_row schema, the same rows the sweep CSV
   emits. *)
let e21 () =
  header "E21" "Observer overhead: capture modes vs bare run (ring:48)";
  let module Capture = Gcs_obs.Capture in
  let module Event_log = Gcs_obs.Event_log in
  let module Series = Gcs_obs.Series in
  let module Profiler = Gcs_obs.Profiler in
  let module Report = Gcs_core.Report in
  let graph = Topology.ring 48 in
  let make_cfg obs =
    Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:1000. ~seed:77
      ~obs graph
  in
  (* The asserted mode is the always-on "flight recorder": bounded ring
     event log, coarse series cadence, sampled profiler. The unbounded
     export log pays extra fresh-memory traffic proportional to the run
     and is reported but not held to the target. *)
  let flight =
    { (Capture.full ~series_period:5. ()) with events_capacity = Some 4096 }
  in
  let modes =
    [|
      ("bare", Capture.none);
      ("flight", flight);
      ("full", Capture.full ~series_period:2. ());
      ("events", { Capture.none with events = true });
    |]
  in
  let cfgs = Array.map (fun (_, obs) -> make_cfg obs) modes in
  let n = Array.length modes in
  let trials = 9 in
  let walls = Array.make_matrix n trials 0. in
  let results = Array.make n None in
  (* Interleave the trials so machine-speed drift hits every mode equally,
     then compare each mode against the bare run of the same sweep pass:
     the median of the per-pass ratios is robust to a single lucky or
     unlucky trial on either side. *)
  for k = 0 to trials - 1 do
    Array.iteri
      (fun i cfg ->
        let t0 = Unix.gettimeofday () in
        let r = Runner.run cfg in
        walls.(i).(k) <- Unix.gettimeofday () -. t0;
        results.(i) <- Some r)
      cfgs
  done;
  let results = Array.map Option.get results in
  let r_bare = results.(0) in
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let wall i = median walls.(i) in
  let overhead i =
    let ratios =
      Array.init trials (fun k -> walls.(i).(k) /. walls.(0).(k))
    in
    100. *. (median ratios -. 1.)
  in
  (* Control events of the series probe are counted in [events], so compare
     the skew summaries, which instrumentation must not perturb. *)
  let summaries_equal i = r_bare.Runner.summary = results.(i).Runner.summary in
  let log_lines i =
    match results.(i).Runner.obs.Capture.event_log with
    | Some log -> Event_log.recorded log
    | None -> 0
  in
  let series_points i =
    match results.(i).Runner.obs.Capture.series with
    | Some s -> Series.length s
    | None -> 0
  in
  print_table ~name:"e21_observer_overhead"
    ~title:
      (Printf.sprintf
         "capture modes vs bare, median of %d interleaved paired trials \
          (flight = ring log + series + profiler)"
         trials)
    ~columns:
      [
        Table.column ~align:Table.Left "mode";
        Table.column "wall s";
        Table.column "overhead %";
        Table.column "log lines";
        Table.column "series pts";
        Table.column "summary identical";
      ]
    ~rows:
      (List.init n (fun i ->
           let name, _ = modes.(i) in
           [
             name;
             Table.fmt_float ~digits:4 (wall i);
             (if i = 0 then "-" else Table.fmt_float ~digits:1 (overhead i));
             string_of_int (log_lines i);
             string_of_int (series_points i);
             (if i = 0 then "-" else if summaries_equal i then "yes" else "NO");
           ]));
  Printf.printf "result rows (shared sweep schema):\n";
  print_endline (Gcs_util.Csv.render_row (Report.result_header ()));
  print_endline
    (Gcs_util.Csv.render_row (Report.result_row ~label:"ring:48" cfgs.(0) r_bare));
  print_endline
    (Gcs_util.Csv.render_row
       (Report.result_row ~label:"ring:48" cfgs.(1) results.(1)));
  (match results.(1).Runner.obs.Capture.profile with
  | None -> ()
  | Some rep ->
      Printf.printf "profiler (flight):\n";
      List.iter (fun l -> Printf.printf "  %s\n" l) (Profiler.lines rep));
  let flight_overhead = overhead 1 in
  Printf.printf "flight-recorder overhead: %.1f%% (target <10%%: %s)\n"
    flight_overhead
    (if flight_overhead < 10. then "yes" else "NO");
  let diverged = ref false in
  for i = 1 to n - 1 do
    if not (summaries_equal i) then begin
      Printf.eprintf "E21: %s summary diverged from the bare run\n"
        (fst modes.(i));
      diverged := true
    end
  done;
  if !diverged then exit 1;
  if flight_overhead >= 10. then begin
    prerr_endline "E21: flight-recorder overhead exceeded the 10% target";
    exit 1
  end

(* E22: warm-vs-cold cache-aware sweep. The same >= 200-cell faulted
   campaign runs twice against one experiment store: the cold pass
   simulates and persists every cell, the warm pass must be served
   entirely from the store — zero misses, zero engine dispatches, rows
   byte-identical — and at least 10x faster than simulating. *)
let e22 () =
  header "E22" "Experiment store: warm vs cold sweep (cache-aware execution)";
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "gcs-e22-%d" (Unix.getpid ()))
  in
  (* Fresh store for every invocation: stale entries would turn the cold
     pass into a warm one and void the measurement. *)
  if Sys.file_exists dir then
    Array.iter
      (fun f -> Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
  let plan =
    match
      Gcs_sim.Fault_plan.of_string "partition@15:cut=0,1,2;heal@25:cut=0,1,2"
    with
    | Ok p -> p
    | Error e -> failwith e
  in
  let horizon = 60. in
  let cells =
    List.concat_map
      (fun topo ->
        List.concat_map
          (fun algo ->
            List.map (fun seed -> (topo, algo, seed))
              (Gcs_core.Replicate.seeds 50))
          [ Algorithm.Gradient_sync; Algorithm.Tree_sync ])
      [ Topology.Ring 12; Topology.Line 13 ]
  in
  let keyed =
    Array.of_list
      (List.map
         (fun (topo, algo, seed) ->
           let graph =
             Topology.build topo ~rng:(Prng.create ~seed:(seed lxor 0x5eed))
           in
           ( Some
               (Runner.store_key ~fault_plan:plan ~spec ~topology:topo ~algo
                  ~horizon ~seed ()),
             Runner.config ~spec ~algo ~horizon ~seed ~fault_plan:plan graph ))
         cells)
  in
  let rows_of outcomes =
    List.mapi
      (fun i (topo, algo, seed) ->
        Gcs_core.Report.outcome_row
          ~label:(Topology.spec_name topo)
          ~algo:(Algorithm.kind_name algo) ~seed outcomes.(i))
      cells
  in
  let pass () =
    let store = Gcs_store.Store.open_ ~create:true dir in
    let t0 = Unix.gettimeofday () in
    let outcomes, stats =
      Gcs_core.Parallel_run.run_cached ~jobs:!jobs ~store keyed
    in
    let wall = Unix.gettimeofday () -. t0 in
    Gcs_store.Store.close store;
    (wall, outcomes, stats)
  in
  let t_cold, cold_out, cold = pass () in
  let t_warm, warm_out, warm = pass () in
  let identical = rows_of cold_out = rows_of warm_out in
  let speedup = t_cold /. t_warm in
  let row label wall (s : Gcs_core.Parallel_run.cache_stats) =
    [
      label;
      Table.fmt_float ~digits:3 wall;
      string_of_int s.Gcs_core.Parallel_run.hits;
      string_of_int s.Gcs_core.Parallel_run.misses;
      string_of_int s.Gcs_core.Parallel_run.fresh_dispatches;
    ]
  in
  print_table ~name:"e22_store_warm_cold"
    ~title:
      (Printf.sprintf
         "same %d-cell faulted sweep, cold then warm against one store"
         (Array.length keyed))
    ~columns:
      [
        Table.column ~align:Table.Left "pass";
        Table.column "wall s";
        Table.column "hits";
        Table.column "misses";
        Table.column "fresh dispatches";
      ]
    ~rows:[ row "cold" t_cold cold; row "warm" t_warm warm ];
  Printf.printf "rows byte-identical: %s; warm/cold speedup: %.1fx\n"
    (if identical then "yes" else "NO")
    speedup;
  let fail msg =
    prerr_endline ("E22: " ^ msg);
    exit 1
  in
  if cold.Gcs_core.Parallel_run.misses <> Array.length keyed then
    fail "cold pass was not fully cold (stale store?)";
  if warm.Gcs_core.Parallel_run.misses <> 0 then
    fail "warm pass missed the cache";
  if warm.Gcs_core.Parallel_run.fresh_dispatches <> 0 then
    fail "warm pass dispatched engine events";
  if not identical then fail "warm rows diverged from cold rows";
  if speedup < 10. then
    fail (Printf.sprintf "warm/cold speedup %.1fx below the 10x target" speedup)

(* E8: substrate micro-benchmarks (Bechamel). *)
let e8 () =
  header "E8" "Substrate micro-benchmarks (ns per operation, OLS estimate)";
  let open Bechamel in
  let heap_bench () =
    let h = Heap.create () in
    for i = 0 to 999 do
      Heap.push h ~prio:(float_of_int ((i * 7919) mod 1000)) i
    done;
    let rec drain () = match Heap.pop h with None -> () | Some _ -> drain () in
    drain ()
  in
  let grid = Topology.grid ~rows:32 ~cols:32 in
  let bfs_bench () = ignore (Shortest_path.bfs grid ~src:0) in
  let clock =
    let rng = Prng.create ~seed:59 in
    Drift.make_clock
      (Drift.Random_walk { step = 1.; sigma = 0.002 })
      ~band:(Drift.band ~rho:0.01) ~t0:0. ~horizon:1000. ~rng
  in
  let clock_bench () = ignore (Hc.value clock ~now:523.7) in
  let offsets = Array.init 8 (fun i -> (float_of_int i -. 3.5) *. 1.3) in
  let trigger_bench () =
    ignore (Gradient_sync.fast_trigger ~kappa:2. ~offsets)
  in
  let engine_bench () =
    let cfg =
      Runner.config ~spec ~algo:Algorithm.Gradient_sync ~horizon:20.
        ~sample_period:5. ~warmup:0. ~seed:61 (Topology.ring 16)
    in
    ignore (Runner.run cfg)
  in
  let tests =
    Test.make_grouped ~name:"gcs"
      [
        Test.make ~name:"heap-1k-push-pop" (Staged.stage heap_bench);
        Test.make ~name:"bfs-grid-32x32" (Staged.stage bfs_bench);
        Test.make ~name:"clock-query" (Staged.stage clock_bench);
        Test.make ~name:"fast-trigger" (Staged.stage trigger_bench);
        Test.make ~name:"sim-ring16-20s" (Staged.stage engine_bench);
      ]
  in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg_b = Benchmark.cfg ~limit:300 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg_b [ instance ] tests in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  let rows =
    Hashtbl.fold
      (fun name ols_result acc ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (x :: _) -> x
          | Some [] | None -> nan
        in
        let r2 =
          match Analyze.OLS.r_square ols_result with Some r -> r | None -> nan
        in
        [ name; Table.fmt_float ~digits:1 est; Table.fmt_float ~digits:4 r2 ]
        :: acc)
      results []
    |> List.sort compare
  in
  print_table ~name:"e8_micro" ~title:"time per run"
    ~columns:
      [
        Table.column ~align:Table.Left "benchmark";
        Table.column "ns/run";
        Table.column "r²";
      ]
    ~rows

(* E23: conformance-monitor overhead. The gcs.check online monitors ride
   the observer multiplexer and check rate + monotonicity at every event;
   the acceptance target is that this flight-recorder mode stays under
   10% wall-time overhead (median of interleaved paired ratios, as in
   E21) and perturbs no run summary. The skew-checking mode additionally
   scans each node's neighborhood per event and is reported but not held
   to the target. *)
let e23 () =
  header "E23" "Monitor overhead: online invariant monitors vs bare (ring:48)";
  let module Monitor = Gcs_check.Monitor in
  let module Check_run = Gcs_check.Check_run in
  let graph = Topology.ring 48 in
  let algo = Algorithm.Gradient_sync in
  let cfg = Runner.config ~spec ~algo ~horizon:1000. ~seed:77 graph in
  let envelope = Check_run.default_spec spec algo in
  let with_skew =
    Check_run.default_spec
      ~skew_bound:
        (Bounds.gradient_local_upper spec
           ~diameter:(Shortest_path.diameter graph))
      ~after:250. spec algo
  in
  let modes =
    [|
      ("bare", None);
      ("monitor", Some envelope);
      ("monitor+skew", Some with_skew);
    |]
  in
  let n = Array.length modes in
  let trials = 9 in
  let walls = Array.make_matrix n trials 0. in
  let results = Array.make n None in
  let checks = Array.make n None in
  (* Interleaved paired trials, exactly as in E21: machine-speed drift
     hits every mode equally, and each mode is compared against the bare
     run of the same pass. *)
  for k = 0 to trials - 1 do
    Array.iteri
      (fun i (_, monitor) ->
        let t0 = Unix.gettimeofday () in
        (match monitor with
        | None -> results.(i) <- Some (Runner.run cfg)
        | Some monitor ->
            let checked = Check_run.run ~monitor cfg in
            results.(i) <- Some checked.Check_run.result;
            checks.(i) <- Some checked);
        walls.(i).(k) <- Unix.gettimeofday () -. t0)
      modes
  done;
  let results = Array.map Option.get results in
  let r_bare = results.(0) in
  let median a =
    let s = Array.copy a in
    Array.sort compare s;
    s.(Array.length s / 2)
  in
  let wall i = median walls.(i) in
  let overhead i =
    let ratios =
      Array.init trials (fun k -> walls.(i).(k) /. walls.(0).(k))
    in
    100. *. (median ratios -. 1.)
  in
  let summaries_equal i = r_bare.Runner.summary = results.(i).Runner.summary in
  let events_checked i =
    match checks.(i) with
    | Some c -> c.Check_run.events_checked
    | None -> 0
  in
  let violated i =
    match checks.(i) with
    | Some { Check_run.violation = Some _; _ } -> true
    | _ -> false
  in
  print_table ~name:"e23_monitor_overhead"
    ~title:
      (Printf.sprintf
         "online monitors vs bare, median of %d interleaved paired trials"
         trials)
    ~columns:
      [
        Table.column ~align:Table.Left "mode";
        Table.column "wall s";
        Table.column "overhead %";
        Table.column "events checked";
        Table.column "violation";
        Table.column "summary identical";
      ]
    ~rows:
      (List.init n (fun i ->
           let name, _ = modes.(i) in
           [
             name;
             Table.fmt_float ~digits:4 (wall i);
             (if i = 0 then "-" else Table.fmt_float ~digits:1 (overhead i));
             string_of_int (events_checked i);
             (if i = 0 then "-" else if violated i then "YES" else "none");
             (if i = 0 then "-" else if summaries_equal i then "yes" else "NO");
           ]));
  let mon_overhead = overhead 1 in
  Printf.printf "monitor overhead: %.1f%% (target <10%%: %s)\n" mon_overhead
    (if mon_overhead < 10. then "yes" else "NO");
  let failed = ref false in
  for i = 1 to n - 1 do
    if not (summaries_equal i) then begin
      Printf.eprintf "E23: %s summary diverged from the bare run\n"
        (fst modes.(i));
      failed := true
    end;
    if violated i then begin
      Printf.eprintf "E23: %s reported a violation on a conforming run\n"
        (fst modes.(i));
      failed := true
    end
  done;
  if !failed then exit 1;
  if mon_overhead >= 10. then begin
    prerr_endline "E23: monitor overhead exceeded the 10% target";
    exit 1
  end

(* E24: explorer throughput and exhaustiveness. The gcs.explore model
   checker re-simulates every decision-trace prefix from time zero, so its
   cost is (prefixes x mean run cost); this experiment reports prefixes
   per second on the two golden instances with dedup off and on, and
   cross-checks the exact visited/execution counts the proof claim rests
   on (they are pinned in the tier-1 test suite). *)
let e24 () =
  header "E24" "Explorer throughput: exhaustive enumeration on golden instances";
  let module Choice = Gcs_explore.Choice in
  let module Instance = Gcs_explore.Instance in
  let module Explorer = Gcs_explore.Explorer in
  let instances =
    [|
      ( "line:2/delay/d3",
        Instance.make ~topology:(Topology.Line 2) ~alphabet:Choice.delay_only
          (),
        false, 39, 27 );
      ( "ring:3/extreme/d3",
        Instance.make (), false, 84, 64 );
      ( "ring:3/extreme/d3 +dedup",
        Instance.make (), true, 52, 32 );
    |]
  in
  let failed = ref false in
  let rows =
    Array.to_list instances
    |> List.map (fun (name, inst, dedup, want_visited, want_execs) ->
           let t0 = Unix.gettimeofday () in
           let o = Explorer.explore ~dedup inst in
           let wall = Unix.gettimeofday () -. t0 in
           let s = o.Explorer.stats in
           let proved = o.Explorer.verdict = Explorer.Proved in
           let counts_ok =
             s.Explorer.states_visited = want_visited
             && s.Explorer.executions = want_execs
           in
           if not (proved && counts_ok) then begin
             Printf.eprintf
               "E24: %s expected proved with %d/%d, got %d/%d\n" name
               want_visited want_execs s.Explorer.states_visited
               s.Explorer.executions;
             failed := true
           end;
           [
             name;
             string_of_int s.Explorer.states_visited;
             string_of_int s.Explorer.executions;
             string_of_int s.Explorer.pruned;
             string_of_int s.Explorer.events_checked;
             Table.fmt_float ~digits:4 wall;
             Table.fmt_float ~digits:0
               (float_of_int s.Explorer.states_visited /. wall);
             (if proved then "proved" else "NO");
           ])
  in
  print_table ~name:"e24_explore_throughput"
    ~title:"exhaustive enumeration, one pass per instance"
    ~columns:
      [
        Table.column ~align:Table.Left "instance";
        Table.column "prefixes";
        Table.column "executions";
        Table.column "pruned";
        Table.column "events checked";
        Table.column "wall s";
        Table.column "prefixes/s";
        Table.column "verdict";
      ]
    ~rows;
  if !failed then exit 1

(* E25: what does fault containment buy, and what does it cost? Plain
   gradient and the ft variant run the same Byzantine batteries: f = 0
   (benign control — the filter must be free), f = 1, f = 2 liars drawn by
   Check_run.byz_plan with lies 20x kappa. Reported skew is over correct
   nodes only; "bound" is the weakened containment bound the online
   monitor enforces. Plain gradient should blow through it under
   ahead-lies while ft-gradient stays under with margin. *)
let e25 () =
  header "E25" "Byzantine containment: gradient vs ft-gradient under liars";
  let module Check_run = Gcs_check.Check_run in
  let spec_e25 = Check_run.attack_spec () in
  let graph = Topology.ring 16 in
  let horizon = 400. in
  let seeds = [ 1; 7920; 15839 ] in
  let run_one ~algo ~f ~seed =
    let fault_plan =
      if f = 0 then None
      else
        Some
          (Check_run.byz_plan ~seed ~horizon ~nodes:16 ~f
             ~kappa:spec_e25.Spec.kappa)
    in
    let byz =
      match fault_plan with
      | None -> []
      | Some p -> Gcs_sim.Fault_plan.byzantine_nodes p
    in
    let cfg =
      Runner.config ~spec:spec_e25 ~algo ~horizon ~seed ?fault_plan graph
    in
    let r = Runner.run cfg in
    let is_byz = Array.make 16 false in
    List.iter (fun v -> is_byz.(v) <- true) byz;
    match
      Metrics.summarize_opt
        ~alive:(fun v -> not is_byz.(v))
        graph r.Runner.samples ~after:(horizon /. 4.)
    with
    | Some s -> (s.Metrics.max_local, s.Metrics.max_global)
    | None -> (0., 0.)
  in
  let rows =
    List.concat_map
      (fun f ->
        let bound =
          Check_run.containment_bound spec_e25 ~f:(max 1 f)
        in
        List.map
          (fun algo ->
            let locals, globals =
              List.split (List.map (fun seed -> run_one ~algo ~f ~seed) seeds)
            in
            let worst_local = List.fold_left Float.max 0. locals in
            let worst_global = List.fold_left Float.max 0. globals in
            [
              string_of_int f;
              Algorithm.kind_name algo;
              fmt worst_local;
              fmt worst_global;
              fmt bound;
              (if worst_local <= bound then "contained" else "VIOLATED");
            ])
          [ Algorithm.Gradient_sync; Algorithm.Ft_gradient_sync (max 1 f) ])
      [ 0; 1; 2 ]
  in
  print_table ~name:"e25_byzantine_containment"
    ~title:
      "worst correct-node skew over 3 seeds (ring:16, lies 20x kappa over \
       the middle half, horizon 400)"
    ~columns:
      [
        Table.column "liars f";
        Table.column ~align:Table.Left "algorithm";
        Table.column "max correct local";
        Table.column "max correct global";
        Table.column "containment bound";
        Table.column ~align:Table.Left "verdict";
      ]
    ~rows

(* E26: the million-node engine core. Two parts. (1) Identity: the
   scheduler kind and the region count are execution strategies, not
   semantics — every (scheduler x regions) cell of a faulted golden run
   must reproduce the serial binary-heap reference bit for bit (the full
   battery, including Byzantine rows and the observation stream, lives in
   test/test_region_parallel.ml; this is the standing smoke row). (2)
   Throughput: a raw-engine soak on grid:1000x1000 — one million nodes,
   each beaconing to its neighbors once per unit of hardware time —
   reporting events/sec for heap vs calendar, serial vs region-parallel.
   The speedup column is informational on a single-core host (conservative
   windowed execution cannot beat serial without real parallelism), so the
   regression warning fires only where multicore is available. *)
let e26 () =
  header "E26" "Million-node engine core: schedulers and region-parallel soak";
  let module Scheduler = Gcs_util.Scheduler in
  let module Fault_plan = Gcs_sim.Fault_plan in
  let module Engine = Gcs_sim.Engine in
  let module Dm = Gcs_sim.Delay_model in
  (* Part 1: identity on the faulted golden ring. *)
  let plan =
    match
      Fault_plan.of_string
        "partition@20:cut=0; heal@40:cut=0; crash@50:node=5; \
         recover@60:node=5:wipe; corrupt@30..45:p=0.3:mag=1"
    with
    | Ok p -> p
    | Error msg -> failwith ("E26 plan: " ^ msg)
  in
  let identity_cfg ~scheduler ~regions =
    Runner.config
      ~spec:(Spec.make ~kappa:0.5 ())
      ~drift_of_node:(fun v ->
        if v < 12 then Drift.Extreme_high else Drift.Extreme_low)
      ~horizon:80. ~seed:7 ~fault_plan:plan ~scheduler ~regions
      (Topology.ring 24)
  in
  let reference =
    Runner.run (identity_cfg ~scheduler:Scheduler.Binary_heap ~regions:1)
  in
  let divergent = ref 0 in
  let identity_rows =
    List.concat_map
      (fun scheduler ->
        List.map
          (fun regions ->
            let r = Runner.run (identity_cfg ~scheduler ~regions) in
            let same =
              Runner.outcome r = Runner.outcome reference
              && r.Runner.samples = reference.Runner.samples
              && r.Runner.events = reference.Runner.events
            in
            if not same then incr divergent;
            [
              Scheduler.kind_name scheduler;
              string_of_int regions;
              string_of_int r.Runner.events;
              fmt r.Runner.summary.Metrics.max_local;
              (if same then "identical" else "DIVERGED");
            ])
          [ 1; 2; 4 ])
      Scheduler.all_kinds
  in
  print_table ~name:"e26_identity"
    ~title:"faulted ring:24 vs serial heap reference (bit-for-bit)"
    ~columns:
      [
        Table.column ~align:Table.Left "scheduler";
        Table.column "regions";
        Table.column "events";
        Table.column "max local";
        Table.column ~align:Table.Left "verdict";
      ]
    ~rows:identity_rows;
  if !divergent > 0 then begin
    Printf.eprintf "E26: %d scheduler/regions cell(s) diverged\n" !divergent;
    exit 1
  end;
  (* Part 2: the soak. Raw engine, no metrics probe, no store, no diameter
     computation — this measures the event core alone. *)
  let rows_g = 1000 and cols_g = 1000 in
  let graph = Topology.grid ~rows:rows_g ~cols:cols_g in
  let n = Graph.n graph in
  let horizon = 3.0 and period = 1.0 in
  let delays = Dm.uniform (Dm.bounds ~d_min:0.5 ~d_max:1.5) in
  let make_node _ =
    {
      Engine.on_init = (fun api -> api.Engine.set_timer ~h:period ~tag:0);
      on_message = (fun _ ~port:_ () -> ());
      on_timer =
        (fun api ~tag:_ ->
          for p = 0 to api.Engine.ports - 1 do
            api.Engine.send ~port:p ()
          done;
          api.Engine.set_timer
            ~h:(api.Engine.hardware () +. period)
            ~tag:0);
    }
  in
  let soak ~scheduler ~regions =
    let clocks = Array.init n (fun _ -> Hc.create ~t0:0. ~rate:1. ()) in
    let t_build = Unix.gettimeofday () in
    let engine =
      Engine.of_config
        (Engine.config ~scheduler ~regions ~graph ~clocks ~delays
           ~rng:(Prng.create ~seed:3) ~make_node ~t0:0. ())
    in
    let t_run = Unix.gettimeofday () in
    Engine.run_until engine horizon;
    let dt = Unix.gettimeofday () -. t_run in
    ( Engine.events_processed engine,
      Engine.messages_sent engine,
      Engine.regions engine,
      t_run -. t_build,
      dt )
  in
  let multicore = Domain.recommended_domain_count () > 1 in
  let par_regions =
    if multicore then min 8 (Domain.recommended_domain_count ()) else 4
  in
  let cells =
    List.concat_map
      (fun scheduler ->
        List.map (fun regions -> (scheduler, regions)) [ 1; par_regions ])
      Scheduler.all_kinds
  in
  let soaked =
    List.map
      (fun (scheduler, regions) ->
        let events, messages, eff, build, dt = soak ~scheduler ~regions in
        (scheduler, regions, events, messages, eff, build, dt))
      cells
  in
  (* Counters are part of the identity contract too: every cell must agree
     with the first. *)
  (match soaked with
  | (_, _, ev0, msg0, _, _, _) :: rest ->
      List.iter
        (fun (s, r, ev, msg, _, _, _) ->
          if ev <> ev0 || msg <> msg0 then begin
            Printf.eprintf "E26: soak counters diverged for %s x%d\n"
              (Scheduler.kind_name s) r;
            exit 1
          end)
        rest
  | [] -> ());
  print_table ~name:"e26_soak"
    ~title:
      (Printf.sprintf
         "grid:%dx%d (%d nodes, %d edges), horizon %g, beacon period %g"
         rows_g cols_g n (Graph.m graph) horizon period)
    ~columns:
      [
        Table.column ~align:Table.Left "scheduler";
        Table.column "regions";
        Table.column "events";
        Table.column "build s";
        Table.column "run s";
        Table.column "events/sec";
      ]
    ~rows:
      (List.map
         (fun (s, _, ev, _, eff, build, dt) ->
           [
             Scheduler.kind_name s;
             string_of_int eff;
             string_of_int ev;
             Table.fmt_float ~digits:2 build;
             Table.fmt_float ~digits:2 dt;
             Printf.sprintf "%.0f" (float_of_int ev /. Float.max 1e-9 dt);
           ])
         soaked);
  if multicore then
    List.iter
      (fun (s, r, ev, _, _, _, dt) ->
        if r > 1 then begin
          let serial_dt =
            List.find_map
              (fun (s', r', _, _, _, _, dt') ->
                if s' = s && r' = 1 then Some dt' else None)
              soaked
          in
          match serial_dt with
          | Some sdt when dt > sdt ->
              Printf.eprintf
                "E26: %s x%d slower than serial on a multicore host (%.2fs \
                 vs %.2fs, %d events)\n"
                (Gcs_util.Scheduler.kind_name s) r dt sdt ev
          | Some _ | None -> ()
        end)
      soaked

(* E27: the live transport subsystem. One topology and spec executed twice
   — as four real UDP processes on loopback (wall clock, real sockets,
   real scheduling jitter) and as a simulation — with both results flowing
   through the same Report.result_row schema and the same summary
   comparison against the predicted gradient bound. The two executions
   share the plan semantics and the spec but not randomness or timing, so
   the claim is not bit-identity (that is the sim-shim property in
   test/test_net.ml); it is that a real execution of the very same
   algorithm code lands inside the same predicted envelope the simulation
   does. Wall clock: the live leg takes ~horizon seconds of real time. *)
let e27 () =
  header "E27" "Live UDP vs simulated: same spec, one report path";
  let module Live_run = Gcs_net.Live_run in
  let spec_e27 = Spec.make ~d_min:0.005 ~d_max:0.02 ~beacon_period:0.25 () in
  let horizon = 6. and sample_period = 0.25 and seed = 7 in
  let lcfg =
    Live_run.config ~topology:(Topology.Ring 4) ~algo:Algorithm.Gradient_sync
      ~spec:spec_e27 ~horizon ~sample_period ~seed
      ~base_port:(21000 + (Unix.getpid () mod 20000))
      ()
  in
  let graph = Live_run.build_graph lcfg in
  let pattern =
    match Drift.pattern_of_string "random" with
    | Ok p -> p
    | Error msg -> failwith ("E27 drift: " ^ msg)
  in
  let scfg =
    Runner.config ~spec:spec_e27 ~algo:Algorithm.Gradient_sync
      ~drift_of_node:(fun _ -> pattern)
      ~horizon ~sample_period ~warmup:lcfg.Live_run.warmup ~seed graph
  in
  let r_sim = Runner.run scfg in
  let r_live = Live_run.run lcfg in
  let bound =
    Bounds.gradient_local_upper spec_e27
      ~diameter:(Shortest_path.diameter graph)
  in
  let module Report = Gcs_core.Report in
  Printf.printf "\n%s\n"
    (Gcs_util.Csv.render_row (Report.result_header ()));
  Printf.printf "%s\n"
    (Gcs_util.Csv.render_row (Report.result_row ~label:"sim:ring:4" scfg r_sim));
  Printf.printf "%s\n"
    (Gcs_util.Csv.render_row
       (Report.result_row ~label:"live:ring:4" scfg r_live));
  let row label (r : Runner.result) =
    [
      label;
      fmt r.Runner.summary.Metrics.max_local;
      fmt r.Runner.summary.Metrics.max_global;
      fmt bound;
      string_of_int r.Runner.messages;
      string_of_int r.Runner.dispatches;
      (if r.Runner.summary.Metrics.max_local <= bound then "within"
       else "EXCEEDED");
    ]
  in
  print_table ~name:"e27_live_vs_sim"
    ~title:
      (Printf.sprintf
         "ring:4, beacon period %gs, delay %g..%gs, horizon %gs, seed %d"
         spec_e27.Spec.beacon_period (Spec.d_min spec_e27)
         (Spec.d_max spec_e27) horizon seed)
    ~columns:
      [
        Table.column ~align:Table.Left "execution";
        Table.column "max local";
        Table.column "max global";
        Table.column "predicted bound";
        Table.column "messages";
        Table.column "dispatches";
        Table.column ~align:Table.Left "verdict";
      ]
    ~rows:[ row "simulated" r_sim; row "live UDP x4" r_live ];
  if r_live.Runner.summary.Metrics.max_local > bound then begin
    Printf.eprintf "E27: live execution exceeded the predicted bound\n";
    exit 1
  end

(* E28: dynamic networks — the skew on a freshly formed edge must decay
   from (at most) the fresh allowance down to the static gradient bound
   within the predicted stabilization time allow0 / tighten_rate (the
   dynamic-GCS shape of Kuhn-Lenzen-Locher-Oshman), and the edge-age
   conformance monitor separates the algorithms under the very same churn
   plan. Setup: a line in three sections at three drift rates — fast,
   a two-node mid pair, slow; both section-boundary edges go down
   mid-run, the sections drift apart while disconnected, and the edges
   re-form with skews just inside the fresh bound. The dynamic gradient
   discounts every fresh edge by its decaying allowance: nothing chases,
   settled sections stay settled, and the fresh-edge skews track the
   allowance down to the static bound. The static gradient has no notion
   of edge age: the mid pair's left node chases the fast section at full
   speed while its right node is *anchored* — the level-set trigger
   blocks a node whose other neighbor trails by more than any separating
   level — and because the tear opens faster than the slow section can
   catch up, the long-settled mid edge is torn open past the static
   bound, and the monitor catches it. *)
let e28 () =
  header "E28" "Dynamic networks: fresh-edge skew decay, edge-age conformance";
  let module Check_run = Gcs_check.Check_run in
  let module Monitor = Gcs_check.Monitor in
  let module Churn_plan = Gcs_sim.Churn_plan in
  let module Fault_plan = Gcs_sim.Fault_plan in
  let module Fault_metrics = Gcs_core.Fault_metrics in
  let module Dynamic_gradient = Gcs_core.Dynamic_gradient in
  let spec28 = Check_run.attack_spec () in
  let n = 24 in
  let graph = Topology.line n in
  let diameter = Shortest_path.diameter graph in
  (* Fast section [0..17], mid pair [18,19], slow section [20..23]. The
     slow section is kept short on purpose: it is the only side that has
     to cascade upward when its boundary edge re-forms (the fast side is
     ahead, nobody there chases), and the chase-chain lag it leaks onto
     the mid pair grows with its length — long enough to anchor, short
     enough that the dynamic gradient's settled edges stay clear of the
     static bound. *)
  let mid_lo = 18 in
  let mid_hi = 19 in
  let cuts = [ (mid_lo - 1, mid_lo); (mid_hi, mid_hi + 1) ] in
  let allow0 = Dynamic_gradient.fresh_allowance spec28 ~diameter in
  let rate = Dynamic_gradient.tighten_rate spec28 in
  let settled = Bounds.gradient_local_upper spec28 ~diameter in
  let stabilization = allow0 /. rate in
  (* Startup edges are born settled (see {!Dynamic_gradient}), so the cut
     can start mid-run with every surviving edge already held to the
     settled bound. The mid pair drifts at rho/2, so both boundary gaps
     open at rho/2 while disconnected; the down window is sized so they
     re-form well inside the fresh bound allow0 + settled but deep
     enough that the anchored tear on the settled mid edge — which opens
     at ~mu while the slow section only closes its gap at ~mu - rho/2 —
     peaks past the settled bound before the anchor releases. *)
  let down = 60. in
  let form = down +. 560. in
  let horizon = form +. stabilization +. 100. in
  let churn =
    Churn_plan.of_processes
      [
        Churn_plan.Edge_down { at = down; edges = Fault_plan.Edges cuts };
        Churn_plan.Edge_up { at = form; edges = Fault_plan.Edges cuts };
      ]
  in
  let plan =
    match Churn_plan.compile churn ~graph ~seed:1 ~horizon with
    | Some p -> p
    | None -> failwith "E28: churn plan compiled to nothing"
  in
  let ea =
    {
      (Check_run.edge_age_bounds spec28 ~diameter) with
      Monitor.windows = Churn_plan.up_windows plan ~graph ~horizon;
    }
  in
  let run_one algo =
    let cfg =
      Runner.config ~spec:spec28 ~algo ~horizon ~seed:1 ~fault_plan:plan
        ~drift_of_node:(fun v ->
          if v < mid_lo then Drift.Extreme_high
          else if v <= mid_hi then
            Drift.Constant (1. +. (spec28.Spec.rho /. 2.))
          else Drift.Extreme_low)
        graph
    in
    let monitor = Check_run.default_spec ~edge_age:ea spec28 algo in
    let checked = Check_run.run ~monitor cfg in
    let report =
      Fault_metrics.evaluate ~spec:spec28 ~graph
        ~samples:checked.Check_run.result.Runner.samples
        ~episodes:(Fault_plan.episodes plan graph)
        ~dropped_faults:0 ~duplicated:0 ~corrupted:0 ()
    in
    (* One partition episode per cut edge, all healing at [form]: merge
       their post-heal curves pointwise (same sample grid) into the skew
       of the worst fresh edge at each age. *)
    let decay =
      match report.Fault_metrics.episodes with
      | [] -> failwith "E28: no churn episodes"
      | ep :: rest ->
          List.fold_left
            (fun acc (e : Fault_metrics.episode_report) ->
              if Array.length e.Fault_metrics.decay <> Array.length acc then
                failwith "E28: episode decay grids differ";
              Array.mapi
                (fun i (a, s) ->
                  (a, Float.max s (snd e.Fault_metrics.decay.(i))))
                acc)
            ep.Fault_metrics.decay rest
    in
    (checked, decay)
  in
  let at_age decay age =
    Array.fold_left
      (fun acc (a, s) ->
        match acc with
        | Some _ when fst (Option.get acc) >= age -> acc
        | _ when a >= age -> Some (a, s)
        | _ -> acc)
      None decay
  in
  let results =
    List.map
      (fun algo -> (algo, run_one algo))
      [ Algorithm.Dynamic_gradient_sync; Algorithm.Gradient_sync ]
  in
  let rows =
    List.map
      (fun (algo, ((checked : Check_run.checked), decay)) ->
        let skew0 = if Array.length decay = 0 then nan else snd decay.(0) in
        let skew_stab =
          match at_age decay stabilization with
          | Some (_, s) -> s
          | None -> nan
        in
        [
          Algorithm.kind_name algo;
          fmt skew0;
          fmt skew_stab;
          fmt settled;
          fmt allow0;
          (match checked.Check_run.violation with
          | None -> "conforms"
          | Some v -> "VIOLATES " ^ Monitor.kind_name v.Monitor.kind);
        ])
      results
  in
  print_table ~name:"e28_dynamic_networks"
    ~title:
      (Printf.sprintf
         "line:%d, sections at drift 1+rho / 1+rho/2 / 1 (rho %g), section \
          boundaries re-form at t=%g, stabilization %g"
         n spec28.Spec.rho form stabilization)
    ~columns:
      [
        Table.column ~align:Table.Left "algorithm";
        Table.column "skew at formation";
        Table.column "skew at +stab";
        Table.column "settled bound";
        Table.column "fresh allowance";
        Table.column ~align:Table.Left "edge-age verdict";
      ]
    ~rows;
  (* The three claims, hard-asserted. *)
  (match results with
  | [ (_, (dyn, decay)); (_, (grad, _)) ] ->
      (match dyn.Check_run.violation with
      | Some v ->
          Printf.eprintf "E28: dynamic-gradient violated its monitor: %s\n"
            (Monitor.violation_to_string v);
          exit 1
      | None -> ());
      (match grad.Check_run.violation with
      | Some { Monitor.kind = Monitor.Edge_age; _ } -> ()
      | Some v ->
          Printf.eprintf
            "E28: static gradient violated %s, expected the edge-age bound\n"
            (Monitor.kind_name v.Monitor.kind);
          exit 1
      | None ->
          Printf.eprintf
            "E28: static gradient conformed; expected an edge-age violation\n";
          exit 1);
      let late_bad =
        Array.exists
          (fun (a, s) -> a >= stabilization && s > settled)
          decay
      in
      if late_bad then begin
        Printf.eprintf
          "E28: fresh-edge skew still above the static bound after the \
           stabilization time\n";
        exit 1
      end;
      if Array.length decay = 0 || snd decay.(0) <= spec28.Spec.kappa then begin
        Printf.eprintf
          "E28: formation skew too small to demonstrate decay (%.3f)\n"
          (if Array.length decay = 0 then nan else snd decay.(0));
        exit 1
      end
  | _ -> assert false)

let experiments =
  [
    ("e1", e1); ("e2", e2); ("e3", e3); ("e4", e4);
    ("e5", e5); ("e6", e6); ("e7", e7); ("e9", e9);
    ("e10", e10); ("e11", e11); ("e12", e12); ("e13", e13);
    ("e14", e14); ("e15", e15); ("e16", e16); ("e17", e17);
    ("e18", e18); ("e19", e19); ("e20", e20); ("e21", e21); ("e22", e22);
    ("e23", e23); ("e24", e24); ("e25", e25); ("e26", e26); ("e27", e27);
    ("e28", e28);
    ("e8", e8);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let rec strip_opts acc = function
    | "--csv" :: dir :: rest ->
        csv_dir := Some dir;
        strip_opts acc rest
    | ("-jobs" | "--jobs") :: n :: rest ->
        (match int_of_string_opt n with
        | Some j when j >= 1 -> jobs := j
        | Some _ | None ->
            Printf.eprintf "-jobs expects a positive integer, got %S\n" n;
            exit 2);
        strip_opts acc rest
    | x :: rest -> strip_opts (x :: acc) rest
    | [] -> List.rev acc
  in
  let names = strip_opts [] args in
  let requested = if names = [] then List.map fst experiments else names in
  Printf.printf
    "Gradient Clock Synchronization (Fan & Lynch, PODC 2004) — experiments\n";
  Printf.printf "spec: u = %g, rho = %g, mu = %g, kappa = %.3f\n" u
    spec.Spec.rho spec.Spec.mu spec.Spec.kappa;
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.eprintf "unknown experiment %S (known: %s)\n" name
            (String.concat ", " (List.map fst experiments));
          exit 2)
    requested
