lib/sim/engine.mli: Delay_model Gcs_clock Gcs_graph Gcs_util
