lib/sim/delay_model.ml: Float Gcs_util
