lib/sim/delay_model.mli: Gcs_util
