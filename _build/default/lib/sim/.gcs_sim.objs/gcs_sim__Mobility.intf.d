lib/sim/mobility.mli: Delay_model Gcs_util
