lib/sim/mobility.ml: Array Delay_model Float Gcs_util List
