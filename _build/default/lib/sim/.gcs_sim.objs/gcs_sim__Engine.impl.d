lib/sim/engine.ml: Array Delay_model Float Gcs_clock Gcs_graph Gcs_util Hashtbl List
