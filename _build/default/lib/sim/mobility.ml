module Prng = Gcs_util.Prng

(* Per node: waypoints as (arrival_time, x, y), sorted by time; position is
   linear interpolation between consecutive waypoints. *)
type t = { waypoints : (float * float * float) array array; horizon : float }

let random_waypoint ~n ~speed ~horizon ~rng =
  if n < 1 then invalid_arg "Mobility.random_waypoint: n must be >= 1";
  if speed < 0. then invalid_arg "Mobility.random_waypoint: negative speed";
  if horizon <= 0. then invalid_arg "Mobility.random_waypoint: horizon <= 0";
  let trajectory _ =
    let x0 = Prng.float rng 1.0 and y0 = Prng.float rng 1.0 in
    if speed = 0. then [| (0., x0, y0) |]
    else begin
      let acc = ref [ (0., x0, y0) ] in
      let t = ref 0. and x = ref x0 and y = ref y0 in
      while !t < horizon do
        let tx = Prng.float rng 1.0 and ty = Prng.float rng 1.0 in
        let dist = Float.hypot (tx -. !x) (ty -. !y) in
        let dt = dist /. speed in
        t := !t +. Float.max dt 1e-9;
        x := tx;
        y := ty;
        acc := (!t, tx, ty) :: !acc
      done;
      Array.of_list (List.rev !acc)
    end
  in
  { waypoints = Array.init n trajectory; horizon }

let position t ~node ~now =
  let wps = t.waypoints.(node) in
  let len = Array.length wps in
  let now = Float.max 0. now in
  (* Find the last waypoint reached at or before [now]. *)
  let rec find lo hi =
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      let tm, _, _ = wps.(mid) in
      if tm <= now then find mid hi else find lo mid
    end
  in
  let i = find 0 (len - 1) in
  if i = len - 1 then begin
    let _, x, y = wps.(i) in
    (x, y)
  end
  else begin
    let t0, x0, y0 = wps.(i) and t1, x1, y1 = wps.(i + 1) in
    let frac = if t1 = t0 then 0. else (now -. t0) /. (t1 -. t0) in
    let frac = Float.min 1. (Float.max 0. frac) in
    (x0 +. (frac *. (x1 -. x0)), y0 +. (frac *. (y1 -. y0)))
  end

let distance t ~a ~b ~now =
  let xa, ya = position t ~node:a ~now in
  let xb, yb = position t ~node:b ~now in
  Float.hypot (xa -. xb) (ya -. yb)

let delay_chooser t ~bounds:(b : Delay_model.bounds) ~edge:_ ~src ~dst ~now =
  let diagonal = sqrt 2. in
  let frac = Float.min 1. (distance t ~a:src ~b:dst ~now /. diagonal) in
  b.Delay_model.d_min +. (frac *. (b.Delay_model.d_max -. b.Delay_model.d_min))
