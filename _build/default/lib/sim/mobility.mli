(** Node mobility: time-varying message delays driven by motion.

    The wireless motivation for gradient clock synchronization lives in
    networks whose propagation delays change as nodes move. This module
    provides random-waypoint trajectories over the unit square and a delay
    chooser that makes each message's delay track the current distance
    between its endpoints — deterministically, so runs stay replayable.

    The communication graph itself stays fixed (links are provisioned at
    deployment); only the delays move. The algorithm's spec band must
    cover the full range the chooser can produce; the chooser clamps to be
    safe. *)

type t

val random_waypoint :
  n:int ->
  speed:float ->
  horizon:float ->
  rng:Gcs_util.Prng.t ->
  t
(** [n] nodes start at uniform positions and repeatedly pick a uniform
    target, moving toward it at [speed] units per time unit ([speed = 0.]
    freezes everyone). Trajectories are precomputed up to [horizon]. *)

val position : t -> node:int -> now:float -> float * float
(** Position at a time within the horizon (clamped beyond it). *)

val distance : t -> a:int -> b:int -> now:float -> float
(** Euclidean distance between two nodes at a time. *)

val delay_chooser :
  t ->
  bounds:Delay_model.bounds ->
  Delay_model.chooser
(** A chooser mapping current distance linearly onto the delay band:
    distance 0 gives [d_min], the square's diagonal gives [d_max].
    Install it in a [Runner.Controlled_delays] run. *)
