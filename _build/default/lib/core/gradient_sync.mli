(** The gradient clock synchronization algorithm (fast/slow conditions).

    This is the blocking/level algorithm of the GCS line of work that the
    Fan-Lynch paper initiated (Lenzen-Locher-Wattenhofer; the Kuhn-Oshman
    trigger formulation). Node [v] keeps beacon-based offset estimates
    o_{v,w} to each neighbor [w] and runs its logical clock at the *fast*
    multiplier [1 + mu] exactly when the fast trigger holds:

    there exists an integer level s >= 0 such that
    - some neighbor is ahead of v by at least (2s + 1) * kappa, and
    - no neighbor is behind v by more than (2s + 1) * kappa;

    otherwise it runs at multiplier 1. The quantum [kappa] must dominate
    four estimate errors (see {!Spec.default_kappa}) so that the trigger,
    evaluated on noisy estimates, is sandwiched between the ideal fast and
    slow conditions on true offsets. The resulting local skew is
    O(kappa * log_sigma D) with sigma = mu / rho — exponentially better
    than the Theta(D) of max- and tree-based synchronization, and within
    the log log factor of the Fan-Lynch lower bound.

    Estimates are refreshed by periodic beacons and the trigger is
    re-evaluated on every beacon arrival plus on a half-period re-check
    timer (estimates extrapolate between beacons, so a trigger can flip
    without a message arriving). *)

val algorithm : Algorithm.t

val fast_trigger : kappa:float -> offsets:float array -> bool
(** Pure trigger evaluation, exposed for unit and property tests.
    [offsets.(i)] is o_{v,w_i} = (estimated) own - neighbor; an empty array
    never triggers. *)

val slow_trigger : kappa:float -> offsets:float array -> bool
(** The complementary slow trigger (some neighbor behind by >= 2s * kappa,
    none ahead by more than 2s * kappa, for some level s >= 1). Used in the
    analysis and in tests for mutual exclusivity; the implementation runs
    slow whenever the fast trigger does not hold. *)
