type ctx = {
  spec : Spec.t;
  graph : Gcs_graph.Graph.t;
  logical : Gcs_clock.Logical_clock.t array;
  now : unit -> float;
}

type t = {
  name : string;
  prepare : ctx -> int -> Message.t Gcs_sim.Engine.handlers;
}

type kind = Free_run | Max_sync | Max_slew_sync | Tree_sync | Gradient_sync

let kind_name = function
  | Free_run -> "free-run"
  | Max_sync -> "max"
  | Max_slew_sync -> "max-slew"
  | Tree_sync -> "tree"
  | Gradient_sync -> "gradient"

let kind_of_string = function
  | "free-run" | "free" | "none" -> Ok Free_run
  | "max" -> Ok Max_sync
  | "max-slew" | "maxslew" -> Ok Max_slew_sync
  | "tree" | "ntp" -> Ok Tree_sync
  | "gradient" | "gcs" -> Ok Gradient_sync
  | s -> Error (Printf.sprintf "unknown algorithm %S" s)

let all_kinds = [ Free_run; Max_sync; Max_slew_sync; Tree_sync; Gradient_sync ]

let timer_beacon = 0
let timer_recheck = 1
