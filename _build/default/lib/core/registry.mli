(** Lookup from algorithm kind to implementation. *)

val get : Algorithm.kind -> Algorithm.t
val all : (Algorithm.kind * Algorithm.t) list
