module Engine = Gcs_sim.Engine
module Logical_clock = Gcs_clock.Logical_clock
module Delay_model = Gcs_sim.Delay_model
module Graph = Gcs_graph.Graph
module Spanning_tree = Gcs_graph.Spanning_tree
module Shortest_path = Gcs_graph.Shortest_path

type stats = {
  mutable rounds_completed : int;
  mutable resets : int;
  mutable last_estimate : float;
}

let timer_monitor = 100

(* Report-deadline timers encode the round they guard so stale deadlines
   from abandoned rounds are ignored. *)
let timer_deadline_base = 200

let default_threshold spec ~diameter =
  (2. *. Bounds.gradient_global_upper spec ~diameter)
  +. (4. *. spec.Spec.kappa)

type node_state = {
  mutable round : int;
  mutable lo : float;
  mutable hi : float;
  mutable reports_pending : int;
}

let wrap ?monitor_period ?threshold ~inner () =
  let stats = { rounds_completed = 0; resets = 0; last_estimate = 0. } in
  let prepare (ctx : Algorithm.ctx) =
    let inner_factory = inner.Algorithm.prepare ctx in
    let graph = ctx.graph in
    let tree = Spanning_tree.bfs_tree graph ~root:0 in
    let spec = ctx.spec in
    let d_max = spec.Spec.delay.Delay_model.d_max in
    let mid_delay =
      0.5 *. (spec.Spec.delay.Delay_model.d_min +. d_max)
    in
    let height = float_of_int (max 1 (Spanning_tree.height tree)) in
    (* Height of the subtree under each node, for report deadlines. *)
    let height_below = Array.make (Graph.n graph) 0 in
    Array.iter
      (fun v ->
        Array.iter
          (fun c ->
            height_below.(v) <- max height_below.(v) (height_below.(c) + 1))
          tree.Spanning_tree.children.(v))
      (let order = Array.copy tree.Spanning_tree.order in
       (* bottom-up: reverse BFS order *)
       let n = Array.length order in
       Array.init n (fun i -> order.(n - 1 - i)));
    let period =
      match monitor_period with
      | Some p -> p
      | None ->
          Float.max (6. *. height *. d_max) (8. *. spec.Spec.beacon_period)
    in
    let threshold =
      match threshold with
      | Some th -> th
      | None -> default_threshold spec ~diameter:(Shortest_path.diameter graph)
    in
    fun v ->
      let inner_handlers = inner_factory v in
      let lc = ctx.logical.(v) in
      let is_root = v = tree.Spanning_tree.root in
      let parent_port =
        if is_root then None
        else
          Some (Graph.port_of_neighbor graph v tree.Spanning_tree.parent.(v))
      in
      let child_ports =
        Array.map
          (fun c -> Graph.port_of_neighbor graph v c)
          tree.Spanning_tree.children.(v)
      in
      let st = { round = -1; lo = 0.; hi = 0.; reports_pending = 0 } in
      let own_value () = Logical_clock.value lc ~now:(ctx.now ()) in
      let send_to_children (api : Message.t Engine.api) msg =
        Array.iter (fun port -> api.send ~port msg) child_ports
      in
      let send_report (api : Message.t Engine.api) =
        match parent_port with
        | None ->
            (* Root: the round is complete; judge the estimate. *)
            let estimate = st.hi -. st.lo in
            stats.rounds_completed <- stats.rounds_completed + 1;
            stats.last_estimate <- estimate;
            if estimate > threshold then begin
              stats.resets <- stats.resets + 1;
              send_to_children api
                (Message.Reset { round = st.round; payload = own_value () })
            end
        | Some port ->
            api.send ~port
              (Message.Report { round = st.round; lo = st.lo; hi = st.hi })
      in
      let begin_round (api : Message.t Engine.api) ~round ~delta =
        st.round <- round;
        st.lo <- delta;
        st.hi <- delta;
        st.reports_pending <- Array.length child_ports;
        if st.reports_pending = 0 then send_report api
        else begin
          (* Arm a deadline so a lost report degrades the round to a
             partial view instead of wedging it. *)
          let budget =
            2.2 *. d_max *. float_of_int (height_below.(v) + 1)
          in
          api.set_timer
            ~h:(api.hardware () +. budget)
            ~tag:(timer_deadline_base + round)
        end
      in
      let on_monitor_timer (api : Message.t Engine.api) =
        (* Root only: start a fresh round (an unfinished one is abandoned —
           its stale reports are discarded by the round check). *)
        begin_round api ~round:(st.round + 1) ~delta:0.;
        send_to_children api
          (Message.Flood { round = st.round; payload = own_value () });
        api.set_timer ~h:(api.hardware () +. period) ~tag:timer_monitor
      in
      {
        Engine.on_init =
          (fun api ->
            inner_handlers.Engine.on_init api;
            if is_root then
              api.set_timer ~h:(api.hardware () +. period) ~tag:timer_monitor);
        on_message =
          (fun api ~port msg ->
            match msg with
            | Message.Flood { round; payload } ->
                if Some port = parent_port && round <> st.round then begin
                  let est_root = payload +. mid_delay in
                  begin_round api ~round ~delta:(own_value () -. est_root);
                  send_to_children api
                    (Message.Flood { round; payload = est_root })
                end
            | Message.Report { round; lo; hi } ->
                if round = st.round && st.reports_pending > 0 then begin
                  st.lo <- Float.min st.lo lo;
                  st.hi <- Float.max st.hi hi;
                  st.reports_pending <- st.reports_pending - 1;
                  if st.reports_pending = 0 then send_report api
                end
            | Message.Reset { round; payload } ->
                if Some port = parent_port then begin
                  let est_root = payload +. mid_delay in
                  Logical_clock.jump_to lc ~now:(ctx.now ()) est_root;
                  send_to_children api
                    (Message.Reset { round; payload = est_root })
                end
            | Message.Beacon _ | Message.Probe _ | Message.Probe_reply _ ->
                inner_handlers.Engine.on_message api ~port msg);
        on_timer =
          (fun api ~tag ->
            if tag >= timer_deadline_base then begin
              (* Deadline for round [tag - timer_deadline_base]: if that
                 round is still open here, report what we have. *)
              if tag - timer_deadline_base = st.round && st.reports_pending > 0
              then begin
                st.reports_pending <- 0;
                send_report api
              end
            end
            else if tag = timer_monitor then on_monitor_timer api
            else inner_handlers.Engine.on_timer api ~tag);
      }
  in
  ( { Algorithm.name = "stabilized-" ^ inner.Algorithm.name; prepare }, stats )
